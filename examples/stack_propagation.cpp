// Worked reproduction of the paper's Figures 7-9: how single stack-bit
// errors behave on each architecture.
//
//   * P4-like machine (Figures 7/8): a corrupted stack value propagates —
//     there is no stack-overflow detection, so the crash surfaces later,
//     in a different subsystem, as Bad Paging / NULL Pointer.  We also
//     show the Figure 7/14 instruction re-grouping on real kernel bytes.
//   * G4-like machine (Figure 9): the exception-entry wrapper catches a
//     corrupted stack pointer fast (Stack Overflow), and single-word
//     corruption crashes close to its origin ("kernel access of bad
//     area") with much shorter latency.
#include <cstdio>

#include "cisca/decode.hpp"
#include "inject/campaign.hpp"
#include "kernel/layout.hpp"
#include "kernel/machine.hpp"
#include "workload/workload.hpp"

using namespace kfi;

namespace {

void disassemble_cisca(kernel::Machine& machine, Addr addr, int count) {
  Addr pc = addr;
  for (int i = 0; i < count; ++i) {
    cisca::FetchWindow w;
    w.pc = pc;
    for (u32 k = 0; k < cisca::kMaxInsnBytes; ++k) {
      const auto tr =
          machine.space().translate(pc + k, 1, mem::Access::kRead);
      if (!tr.ok()) break;
      w.bytes[k] = machine.space().phys().read8(tr.phys);
      w.valid = static_cast<u8>(k + 1);
    }
    const auto dec = cisca::decode(w);
    std::printf("    %08x: ", pc);
    for (u8 b = 0; b < dec.insn.length; ++b) std::printf("%02x ", w.bytes[b]);
    std::printf("  %s\n", dec.insn.to_string().c_str());
    pc += dec.insn.length;
  }
}

void run_targeted_stack_campaign(isa::Arch arch, const char* title) {
  std::printf("\n=== %s ===\n", title);
  kernel::Machine machine(arch, kernel::MachineOptions{});
  auto wl = workload::make_suite();

  // A small stack campaign with a fixed seed; report each crash the way
  // the paper's worked examples do.
  inject::CampaignSpec spec;
  spec.arch = arch;
  spec.kind = inject::CampaignKind::kStack;
  spec.injections = 150;
  spec.seed = 99;
  const auto result = inject::run_campaign(spec);

  int shown = 0;
  for (const auto& r : result.records) {
    if (r.outcome != inject::OutcomeCategory::kKnownCrash || shown >= 5) {
      continue;
    }
    const auto* fn = machine.image().function_at(r.crash.pc);
    const auto* region = machine.space().region_of(r.crash.addr);
    std::printf("  stack bit %2u of task %u -> %s at pc=%08x (%s)",
                r.target.site().bit, r.target.site().task,
                kernel::crash_cause_name(r.crash.cause).c_str(), r.crash.pc,
                fn != nullptr ? fn->name.c_str() : "?");
    if (r.crash.has_addr) {
      std::printf(", faulting address %08x (%s)", r.crash.addr,
                  region != nullptr ? region->name.c_str() : "unmapped");
    }
    std::printf(", crash latency %llu cycles\n",
                static_cast<unsigned long long>(r.cycles_to_crash));
    ++shown;
  }
}

}  // namespace

int main() {
  // --- Figure 7/14 preamble: the epilogue re-grouping on real bytes. ---
  std::puts("=== Figure 7 mechanism: one bit flip re-groups the P4 "
            "epilogue ===");
  kernel::Machine p4(isa::Arch::kCisca, kernel::MachineOptions{});
  // Find a function epilogue: scan free_pages_ok (the paper's example
  // function!) for the lea -12(%ebp),%esp sequence (8d 65 f4).
  const auto& fn = p4.image().function("free_pages_ok");
  Addr lea_addr = 0;
  for (Addr a = fn.addr; a < fn.addr + fn.size - 3; ++a) {
    if (p4.space().vread8(a) == 0x8D && p4.space().vread8(a + 1) == 0x65 &&
        p4.space().vread8(a + 2) == 0xF4) {
      lea_addr = a;
      break;
    }
  }
  if (lea_addr != 0) {
    std::puts("  original code (mm/page_alloc.c free_pages_ok epilogue):");
    disassemble_cisca(p4, lea_addr, 5);
    // The paper's flip: ModRM 0x65 -> 0x64 turns lea+pop into one insn.
    p4.space().vflip_bit(lea_addr + 1, 0);
    std::puts("  corrupted code (bit 0 of the ModRM byte flipped):");
    disassemble_cisca(p4, lea_addr, 5);
    p4.space().vflip_bit(lea_addr + 1, 0);  // restore
    std::puts("  -> the pop %ebx is consumed; ESP gets a wild value and is");
    std::puts("     NOT detected (no stack-overflow exception on the P4).");
  }

  run_targeted_stack_campaign(
      isa::Arch::kCisca,
      "Figure 7/8 behaviour: P4-like stack errors propagate before "
      "crashing");
  run_targeted_stack_campaign(
      isa::Arch::kRiscf,
      "Figure 9 behaviour: G4-like stack errors crash fast, near the "
      "origin");
  return 0;
}
