// Worked reproduction of the paper's Figure 13: a data error in a spinlock
// magic word is detected by the kernel's SPINLOCK_DEBUG check and raised
// as an Invalid/Illegal Instruction exception — an OS-level checking
// scheme that detects fast but MISLABELS the error class.
#include <cstdio>

#include "cisca/decode.hpp"
#include "inject/campaign.hpp"
#include "kernel/machine.hpp"
#include "workload/workload.hpp"

using namespace kfi;

int main() {
  std::puts("=== Figure 13 reproduction: spinlock magic check -> "
            "invalid-instruction BUG() ===\n");
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    kernel::Machine machine(arch, kernel::MachineOptions{});
    auto wl = workload::make_suite();

    // The big kernel lock's magic word — checked on every system call.
    const auto& lock = machine.image().object("kernel_flag_cacheline");
    const Addr magic_addr =
        lock.addr + lock.field_named("magic").offset;
    std::printf("--- %s: kernel_flag_cacheline.magic @ %08x = %08x ---\n",
                isa::arch_name(arch).c_str(), magic_addr,
                machine.space().vread32(magic_addr));

    // Inject exactly the paper's scenario: one bit of the magic word.
    const inject::InjectionTarget target = inject::InjectionTarget::data(
        magic_addr, 22);  // 4E -> 0E in the paper's example byte
    const auto record = inject::run_single_injection(machine, *wl, target, 5);

    std::printf("outcome: %s", inject::outcome_name(record.outcome).c_str());
    if (record.crashed) {
      const auto* fn = machine.image().function_at(record.crash.pc);
      std::printf(" — %s at pc=%08x (%s), %llu cycles after activation\n",
                  kernel::crash_cause_name(record.crash.cause).c_str(),
                  record.crash.pc, fn != nullptr ? fn->name.c_str() : "?",
                  static_cast<unsigned long long>(record.cycles_to_crash));
      std::puts("the exception says \"invalid instruction\", but the real");
      std::puts("cause is corrupted DATA — the paper's diagnosability trap.");
    } else {
      std::puts("");
    }
    std::puts("");
  }
  return 0;
}
