// Register sensitivity map (paper Section 5.2): systematically flip bits
// in EVERY system register of both processors and report which registers
// can crash the kernel at all.
//
// The paper found that "out of 99 system registers in the G4 and
// approximately 20 in the P4, only 15 G4 registers and 7 P4 registers
// contribute to the crashes and hangs" — most system-register state is
// either reserved, rarely consulted, or overwritten before use.
#include <cstdio>
#include <map>

#include "inject/experiment.hpp"
#include "inject/target_gen.hpp"
#include "kernel/machine.hpp"
#include "workload/profiler.hpp"
#include "workload/workload.hpp"

using namespace kfi;

int main() {
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    kernel::Machine machine(arch, kernel::MachineOptions{});
    auto wl = workload::make_suite();
    const auto hot = workload::profile_hot_functions(machine, *wl, 0.95, 1);

    inject::UdpChannel channel(0.0, 7);
    inject::CrashCollector collector;
    inject::ExperimentRunner runner(machine, *wl, channel, collector,
                                    60'000'000, 200'000'000);

    isa::SystemRegisterBank& bank = machine.cpu().sysregs();
    std::printf("=== %s: %u system registers, 4 bit-flip trials each (bits 0, 5, 14, 31) ===\n",
                isa::arch_name(arch).c_str(), bank.count());

    std::map<std::string, std::map<std::string, int>> sensitivity;
    u32 sequence = 0;
    for (u32 reg = 0; reg < bank.count(); ++reg) {
      for (const u32 bit : {0u, 5u, 14u, 31u}) {
        inject::InjectionTarget target =
            inject::InjectionTarget::sysreg(reg, bit % bank.info(reg).bits);
        target.inject_at_frac = 0.3;
        const auto record =
            runner.run_one(target, 1000 + reg * 7 + bit, sequence++);
        if (record.outcome == inject::OutcomeCategory::kKnownCrash) {
          sensitivity[bank.info(reg).name]
                     [kernel::crash_cause_name(record.crash.cause)]++;
        } else if (record.outcome ==
                   inject::OutcomeCategory::kHangOrUnknownCrash) {
          sensitivity[bank.info(reg).name]["hang/unknown"]++;
        }
      }
    }

    std::printf("registers that produced any failure: %zu of %u\n",
                sensitivity.size(), bank.count());
    for (const auto& [reg, causes] : sensitivity) {
      std::printf("  %-12s ->", reg.c_str());
      for (const auto& [cause, n] : causes) {
        std::printf("  %s x%d", cause.c_str(), n);
      }
      std::puts("");
    }
    std::puts("");
  }
  std::puts("Compare with Section 5.2: ESP/EIP-class state, CR0/IDTR (P4)");
  std::puts("and SP, MSR.IR/DR, SPRG scratch registers, HID0.BTIC (G4) are");
  std::puts("the sensitive few; debug, performance-monitor and thermal");
  std::puts("registers never matter.");
  return 0;
}
