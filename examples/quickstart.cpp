// Quickstart: boot both simulated machines, run a workload, inject a small
// code-error campaign on each, and print the outcome distribution.
//
//   $ ./build/examples/quickstart
//
// This touches the whole public API surface in ~80 lines: Machine,
// Workload, profiling, TargetGenerator, ExperimentRunner, and the
// analysis tallies.
#include <cstdio>

#include "analysis/report.hpp"
#include "common/table.hpp"
#include "analysis/tally.hpp"
#include "inject/campaign.hpp"
#include "kernel/layout.hpp"
#include "kernel/machine.hpp"
#include "workload/workload.hpp"

using namespace kfi;

int main() {
  std::puts("kfisim quickstart: Linux-2.4-like kernel error sensitivity on "
            "two simulated processors\n");

  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    std::printf("--- %s ---\n", isa::arch_name(arch).c_str());

    // 1. Boot a machine and talk to its kernel directly.
    kernel::Machine machine(arch, kernel::MachineOptions{});
    const kernel::Event pid = machine.syscall(kernel::Syscall::kGetpid);
    std::printf("getpid() -> %u   (kernel text: %zu bytes, %zu functions)\n",
                pid.ret, machine.image().code.size(),
                machine.image().functions.size());

    // 2. Run one benchmark program and validate its output.
    auto wl = workload::make_fileops();
    wl->reset(1);
    u32 syscalls = 0;
    bool valid = true;
    while (auto req = wl->next(machine)) {
      const kernel::Event ev =
          machine.syscall(req->nr, req->a0, req->a1, req->a2);
      valid = valid && ev.kind == kernel::EventKind::kSyscallDone &&
              wl->check(machine, ev.ret);
      ++syscalls;
    }
    std::printf("fileops workload: %u syscalls, output %s\n", syscalls,
                valid && wl->final_check(machine) ? "valid" : "CORRUPTED");

    // 3. Run a small code-injection campaign (Figure 2's automated loop:
    //    profile -> generate targets -> inject -> classify -> reboot).
    inject::CampaignSpec spec;
    spec.arch = arch;
    spec.kind = inject::CampaignKind::kCode;
    spec.injections = 60;
    spec.seed = 2026;
    const inject::CampaignResult result = inject::run_campaign(spec);
    const analysis::OutcomeTally tally =
        analysis::tally_records(result.records);

    std::printf("code campaign: %u injections, %s activated, %s manifested\n",
                tally.injected,
                format_percent(tally.activation_rate()).c_str(),
                format_percent(tally.manifestation_rate()).c_str());
    for (const auto& cause : tally.crash_causes.keys()) {
      std::printf("  crash cause %-24s %s\n", cause.c_str(),
                  format_count_percent(tally.crash_causes.get(cause),
                                       tally.crash_causes.fraction(cause))
                      .c_str());
    }
    std::puts("");
  }
  std::puts("Next: run the benches under build/bench/ to regenerate every");
  std::puts("table and figure of the paper (see EXPERIMENTS.md).");
  return 0;
}
