// Anatomy of cycles-to-crash (the paper's Figure 3): inject the same
// deterministic error on both machines and decompose the measured latency
// into the paper's three stages —
//   Stage 1: kernel runs until a bad instruction executes,
//   Stage 2: hardware exception handling (the deep-pipeline P4 pays far
//            more here: compare Figures 8 and 9 — 12,864 vs 1,592 cycles
//            for near-immediate crashes),
//   Stage 3: the software exception handler.
#include <cstdio>

#include "inject/campaign.hpp"
#include "kernel/machine.hpp"
#include "workload/workload.hpp"

using namespace kfi;

namespace {

void anatomy(isa::Arch arch) {
  kernel::Machine machine(arch, kernel::MachineOptions{});
  auto wl = workload::make_suite();

  // The same error on both machines: corrupt the skb free-list head (the
  // paper's Figure 7 crash site, alloc_skb) with a high bit flip; it is
  // consumed by the first send() syscall.
  const inject::InjectionTarget t =
      inject::InjectionTarget::data(machine.image().object("skb_head").addr, 29);
  const auto record = inject::run_single_injection(machine, *wl, t, 3);

  std::printf("--- %s ---\n", isa::arch_name(arch).c_str());
  if (!record.crashed) {
    std::puts("(did not crash with this seed)");
    return;
  }
  const auto* fn = machine.image().function_at(record.crash.pc);
  std::printf("cause: %s in %s, faulting address %08x\n",
              kernel::crash_cause_name(record.crash.cause).c_str(),
              fn != nullptr ? fn->name.c_str() : "?", record.crash.addr);
  const u64 stage1 = record.activation_cycle - record.latency_base_cycle;
  const u64 stages23 = record.cycles_to_crash - stage1;
  std::printf("latency from injection:     %10llu cycles\n",
              static_cast<unsigned long long>(record.cycles_to_crash));
  std::printf("  stage 1 (run to consumption): %8llu cycles (dominated by\n"
              "           how long the error sits before first access)\n",
              static_cast<unsigned long long>(stage1));
  std::printf("  stages 2+3 (hw + sw handling): %7llu cycles\n",
              static_cast<unsigned long long>(stages23));
}

}  // namespace

int main() {
  std::puts("=== Figure 3: the three stages of cycles-to-crash ===\n");
  anatomy(isa::Arch::kCisca);
  std::puts("");
  anatomy(isa::Arch::kRiscf);
  std::puts("\nNote the exception-handling floor: it is several times");
  std::puts("higher on the P4-like machine, which is why even immediate");
  std::puts("G4 crashes report ~1.5-2k cycles while immediate P4 crashes");
  std::puts("report ~4-11k (paper Figures 8 and 9).");
  return 0;
}
