#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from bench_output.txt plus per-experiment
reproduction commentary.  Run from the repo root after
`for b in build/bench/*; do $b; done > bench_output.txt`."""
import re

RAW = open('bench_output.txt').read()


def section(name):
    m = re.search(r'^##### ' + re.escape(name) + r'\n(.*?)(?=^##### |\Z)',
                  RAW, re.S | re.M)
    return m.group(1).strip() if m else '(missing from bench_output.txt)'


COMMENTARY = {}

COMMENTARY['table5_p4'] = """### Table 5 — P4 activation and failure distribution  `bench/table5_p4`

Paper claims to check: stack errors manifest strongly (56.1% of activated);
data errors even more (66%); registers weakly (~11% of injected); code
errors activate often (54.9%) and crash or hang in two thirds of cases; no
stack FSVs; small code FSVs.

Status: **[match]** on every ordering.  Known divergences: our code
activation is higher (the profile covers exactly the benchmarked window,
so hot-function breakpoints are almost always reached) and stack/data
activation is lower in absolute terms (see DESIGN.md sections 6.4/6.7)."""

COMMENTARY['table6_g4'] = """### Table 6 — G4 activation and failure distribution  `bench/table6_g4`

Paper claims to check: everything manifests LESS than on the P4 — stack
21.1%, data 21.7%, registers ~4.9% — while code errors stay comparable;
data errors can produce FSVs (1%).

Status: **[match]**.  The G4-vs-P4 manifestation ratios reproduce with the
right factors (stack ~2.5x lower, register ~3-4x lower), and they emerge
from the layout/ISA mechanisms, not tuning: see the ablations below."""

COMMENTARY['fig4_5_crash_causes'] = """### Figures 4 & 5 — overall crash-cause distributions  `bench/fig4_5_crash_causes`

Campaigns are weighted by the paper's per-campaign injection counts so the
overall mix is comparable.  Paper claims: ~71% of P4 crashes and ~67% of
G4 crashes are invalid memory accesses; illegal instructions ~16% on both;
stack overflow only on the G4; panics ~0.1%.

Status: **[match]** for the invalid-memory dominance and the G4-only
Stack Overflow slice; Invalid/Illegal Instruction shares trend high on the
G4 and low on the P4 relative to the paper (see the Figure 6/11 notes)."""

COMMENTARY['fig6_stack_causes'] = """### Figure 6 — stack-injection crash causes  `bench/fig6_stack_causes`

Paper claims: Stack Overflow (41.9%) and Bad Area (53.5%) dominate the G4;
Bad Paging (45.4%) and NULL Pointer (31.5%) dominate the P4, with NO stack
overflow category on the P4 at all.

Status: **[match]** for the central claim (G4 Stack Overflow present at a
large share, P4 at exactly zero; P4 dominated by paging-class faults).
**[gap]**: the P4's Invalid Instruction (15.9%) and GP (5.5%) slices are
under-produced — our wild jumps land in valid kernel text more often than
on a real machine with a vastly larger address space (DESIGN.md 6.7)."""

COMMENTARY['fig10_register_causes'] = """### Figure 10 — system-register crash causes  `bench/fig10_register_causes`

Paper claims: on the P4 — GP (CR0/FS/GS class), Bad Paging + NULL (ESP),
Invalid Instruction (EIP), a little Invalid TSS (EFLAGS.NT); on the G4 —
Bad Area dominates (75.4%, SP class), Illegal Instruction (SPRG2/HID0),
some machine checks (MSR.IR/DR).

Status: **[match]**: every register-to-cause pathway the paper names is
implemented and observed (see also examples/register_sensitivity and the
worked-example tests).  The G4's Stack Overflow share runs higher than the
paper's 4.3% because our wrapper classifies any out-of-range SP at
exception entry."""

COMMENTARY['fig11_code_causes'] = """### Figure 11 — code-injection crash causes  `bench/fig11_code_causes`

Paper claims: invalid memory accesses ~70% (P4) vs ~50% (G4); Illegal
Instruction 41.5% (G4) vs 24.2% (P4) — the direct signature of fixed-width
sparse encodings vs variable-length dense ones; small G4-only stack
overflow (4.7%) because corrupted instructions rarely hit the few
stack-carrying registers.

Status: **[match]** — this is the reproduction's strongest figure; all
four contrasts land within a few points."""

COMMENTARY['fig12_data_causes'] = """### Figure 12 — data-injection crash causes  `bench/fig12_data_causes`

Paper claims: invalid memory accesses dominate both (89% G4 / 80% P4);
Invalid/Illegal Instruction present on both (17.7% / 9.1%) because the
kernel's own checking (Figure 13's spinlock magic) reports data corruption
as an instruction exception.

Status: **[match]** in direction; small-sample noise is visible (data
campaigns produce few crashes at bench scale, like the paper's 96/55)."""

COMMENTARY['fig14_regroup_study'] = """### Figures 14 & 15 — bit flips vs. instruction encodings  `bench/fig14_regroup_study`

An exhaustive decoder study over every instruction and bit of both kernel
images.  Paper claims: on the P4 a flip usually yields a different VALID
instruction and can re-group the downstream stream (Figure 14); on the G4
a flip stays within one word and often lands on a reserved encoding
(Figure 15), whose exact mflr->lhax example is reproduced bit-for-bit.

Status: **[match]** — ~95% of P4 flips stay executable and ~23% re-align
the stream (averaging ~4.5 corrupted instructions before re-sync); ~14% of
G4 text flips are immediately illegal, with the rest staying valid
(crash-level illegal shares are higher because corrupted execution also
reaches data and zero words)."""

COMMENTARY['fig16_latency'] = """### Figure 16 — cycles-to-crash distributions  `bench/fig16_latency`

Paper claims: (A) G4 stack crashes are fast (80% < 3k, the wrapper) while
P4 stack crashes sit in 3k-100k (undetected propagation); (B) register
errors are long-lived, with the G4's SP/SPRG2 crashes taking millions of
cycles; (C) the trend INVERTS for code errors — P4 fast (70% < 10k,
re-aligned streams fail fast), G4 slow (values linger in its 32 registers);
(D) data errors have a long latent tail on both.

Status: **[match]** for (A)'s inversion (G4 fast / P4 slower; the P4's
exception-handling floor alone is 4-10k, cf. the paper's Figure 8), for
(B) including the long G4 SP/SPRG2 latencies, and for (D)'s long tail.
**[partial]** for (C): the P4-faster-than-G4 ordering in the short buckets
reproduces, but our G4 mass sits lower (3k-10k) than the paper's
10k-100k — our kernel functions are an order of magnitude shorter than
Linux's, so intra-function distance from activation to the corrupted
instruction is structurally smaller (DESIGN.md 6.7)."""

COMMENTARY['ablation_p4_stackcheck'] = """### Ablation X1 — the paper's proposed P4 PUSH/POP stack check  `bench/ablation_p4_stackcheck`

Section 7 of the paper proposes extending PUSH/POP semantics to check ESP
against the allocated stack.  With the extension enabled, wild-ESP cases
are intercepted at the stack operation itself (as GP-class faults) instead
of surfacing later as Bad Paging elsewhere."""

COMMENTARY['ablation_g4_wrapper'] = """### Ablation X2 — the G4 exception-entry stack wrapper  `bench/ablation_g4_wrapper`

Disabling the wrapper makes the G4 behave like the P4 exactly as Section 6
describes: the Stack Overflow category disappears and those crashes
re-surface as Bad Area with slower detection."""

COMMENTARY['ablation_spinlock_checks'] = """### Ablation X3 — SPINLOCK_DEBUG magic checks  `bench/ablation_spinlock_checks`

Targeted flips into every spinlock magic word: with the checks compiled in
(Figure 13), 100% are caught within ~10k cycles and reported as
Invalid/Illegal Instruction; without them the same flips are completely
silent.  This quantifies the paper's diagnosability point: the detector is
fast but mislabels data corruption as an instruction exception."""

COMMENTARY['micro_simulators'] = """### M1 — simulator microbenchmarks  `bench/micro_simulators`

Throughput/cost numbers for the substrate itself (syscall round-trips,
snapshot-restore "reboots", kernel image builds, full injection
experiments) — the numbers that size practical campaigns."""

ORDER = ['table5_p4', 'table6_g4', 'fig4_5_crash_causes', 'fig6_stack_causes',
         'fig10_register_causes', 'fig11_code_causes', 'fig12_data_causes',
         'fig14_regroup_study', 'fig16_latency', 'ablation_p4_stackcheck',
         'ablation_g4_wrapper', 'ablation_spinlock_checks',
         'micro_simulators']

HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction log for every table and figure in the evaluation of
*"Error Sensitivity of the Linux Kernel Executing on PowerPC G4 and
Pentium 4 Processors"* (DSN 2004).  All measured numbers below come from
one deterministic sweep of the bench binaries
(`for b in build/bench/*; do $b; done`, seed 1, default injection counts;
the full raw output is `bench_output.txt`).  Re-running reproduces them
bit-for-bit; `KFI_INJECTIONS`/`KFI_SEED` scale or vary the campaigns.

**Reading guide.**  Absolute agreement with a 2004 hardware testbed is not
the goal and not possible; the substrate is a simulator (see DESIGN.md
§1/§6).  Each experiment below states the paper's qualitative claim and
whether the reproduction shows the same *shape*: orderings, dominant
categories, and approximate factors.  Campaigns run a few hundred
injections (vs. the paper's 1,790–46,000 per campaign), so categories
below ~2% fluctuate between seeds.

> Status legend: **[match]** shape reproduced • **[partial]** direction
> reproduced, magnitudes differ • **[gap]** documented divergence.

This file is assembled by `scripts/make_experiments_md.py` from the raw
sweep output; the quoted blocks below are verbatim bench output.

## Summary of headline claims

| Paper claim (Section 1) | Status |
|---|---|
| Error activation similar on both processors; P4 manifestation ≈ 2× G4 | **[match]** across stack/data/register campaigns |
| Stack errors: 56% (P4) vs 21% (G4) manifested | **[match]** 42% vs 17% |
| Data errors: 66% (P4) vs 21% (G4) manifested as crashes | **[match]** 67% vs 33%, with the G4's extra benign activations coming from word-per-item padding, as the paper argues |
| Register errors manifest less on both (P4 ≈ 11%, G4 ≈ 5%) | **[match]** 12.5% vs 2.7% |
| Variable-length P4 instructions re-group after a flip → worse diagnosability, more invalid-memory crashes, faster code-error crashes | **[match]** (Figure 14 bench quantifies it; Figure 7 example reproduces byte-for-byte) |
| Fixed 32-bit G4 instructions → high Illegal Instruction share | **[match]** ~41–48% vs paper's 41.5% |
| G4-only Stack Overflow category from the exception-entry wrapper | **[match]** present only on G4; ablation removes it |

The rest of this file walks each table and figure."""

with open('EXPERIMENTS.md', 'w') as f:
    f.write(HEADER)
    f.write('\n\n---\n')
    for name in ORDER:
        f.write('\n' + COMMENTARY[name] + '\n\n')
        f.write('```\n' + section(name) + '\n```\n')
    f.write("""
---

## Reproducing

```sh
cmake -B build -G Ninja && cmake --build build
for b in build/bench/*; do $b; done          # regenerate everything
KFI_INJECTIONS=2000 ./build/bench/table5_p4  # larger campaigns
./build/tools/kfi_campaign --arch g4 --kind stack --n 1000 --csv out
```
All campaigns are seeded and bit-reproducible; see DESIGN.md for the
fidelity notes behind every [partial]/[gap] above.
""")
print('wrote EXPERIMENTS.md')
