// Propagation study: where Figure 16 measures how long an error took to
// crash the kernel, this bench traces what the error DID in between.
//
// For each modeled processor, every campaign kind is run with the
// shadow-state trace subsystem attached.  Output per arch:
//   * per-kind and overall propagation segments — first-use (dormancy)
//     latency in instructions and producer->consumer chain depth
//     distributions, the propagation-distance axis Fig. 16 lacks;
//   * the fail-silence ledger: every run whose tainted syscall result
//     crossed the kernel boundary, flagged loudly when the workload's
//     own checks missed it (a silent data corruption the paper's
//     check-based detection could not see).
//
// Knobs: KFI_INJECTIONS (default 300 per kind), KFI_SEED, KFI_JOBS.
#include <cstdio>
#include <vector>

#include "analysis/propagation.hpp"
#include "bench_common.hpp"

using namespace kfi;

namespace {

constexpr inject::CampaignKind kKinds[] = {
    inject::CampaignKind::kStack, inject::CampaignKind::kRegister,
    inject::CampaignKind::kData, inject::CampaignKind::kCode};

}  // namespace

int main() {
  const u32 jobs = bench::env_jobs();

  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    std::vector<inject::InjectionRecord> all;
    std::vector<std::pair<inject::CampaignKind, size_t>> origin;  // per record

    for (const auto kind : kKinds) {
      auto spec = bench::base_spec(arch, kind, 300);
      const inject::CampaignPlan plan = inject::build_campaign_plan(spec);
      inject::RunControl control;
      control.trace = true;
      const inject::CampaignResult result =
          inject::CampaignEngine(jobs).run(plan, {}, control);

      std::fputs(analysis::render_propagation(
                     isa::arch_name(arch) + " " + campaign_kind_name(kind),
                     analysis::tally_propagation(result.records))
                     .c_str(),
                 stdout);
      std::puts("");
      for (size_t i = 0; i < result.records.size(); ++i) {
        origin.emplace_back(kind, i);
        all.push_back(result.records[i]);
      }
    }

    std::fputs(analysis::render_propagation(
                   isa::arch_name(arch) + " overall",
                   analysis::tally_propagation(all))
                   .c_str(),
               stdout);

    // Fail-silence ledger: taint that reached the workload's result.
    u32 flagged = 0;
    for (size_t i = 0; i < all.size(); ++i) {
      const auto& r = all[i];
      if (!r.propagation_valid || !r.propagation.syscall_result_tainted) {
        continue;
      }
      const bool missed =
          r.outcome != inject::OutcomeCategory::kFailSilenceViolation;
      if (missed) ++flagged;
      std::printf("  %s run %s#%zu: tainted syscall result, outcome=%s%s\n",
                  missed ? "FSV-MISSED" : "fsv",
                  campaign_kind_name(origin[i].first).c_str(),
                  origin[i].second, outcome_name(r.outcome).c_str(),
                  missed ? "  <- checks saw nothing" : "");
    }
    std::printf("%s: %u fail-silence-violation runs flagged by shadow state "
                "that the workload checks missed\n\n",
                isa::arch_name(arch).c_str(), flagged);
  }
  return 0;
}
