// Reproduces one of Figures 6/10/11/12: per-campaign crash-cause
// distributions on both processors.  The campaign kind is baked in at
// compile time so each figure has its own bench binary:
//   fig6_stack_causes, fig10_register_causes, fig11_code_causes,
//   fig12_data_causes.
#include <cstdio>

#include "bench/bench_common.hpp"

#ifndef KFI_BENCH_KIND
#define KFI_BENCH_KIND kStack
#endif
#ifndef KFI_BENCH_FIG
#define KFI_BENCH_FIG "6"
#endif

int main() {
  const auto kind = kfi::inject::CampaignKind::KFI_BENCH_KIND;
  std::printf("=== Figure %s reproduction: Crash Causes for %s ===\n",
              KFI_BENCH_FIG, kfi::bench::fig_title(kind));
  for (const auto arch : {kfi::isa::Arch::kCisca, kfi::isa::Arch::kRiscf}) {
    const auto result =
        kfi::bench::run_with_progress(kfi::bench::base_spec(arch, kind, 400));
    const auto tally = kfi::analysis::tally_records(result.records);
    std::fputs(kfi::analysis::render_cause_comparison(
                   arch, std::string("Figure ") + KFI_BENCH_FIG, tally,
                   kfi::analysis::paper_campaign_crash_causes(arch, kind))
                   .c_str(),
               stdout);
    std::puts("");
  }
  return 0;
}
