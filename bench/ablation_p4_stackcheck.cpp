// Ablation X1 — the paper's Section 7 proposal: "stack overflow detection
// ... could be added [to the P4] by extending the semantics of PUSH and
// POP instructions ... to enable checking for a memory access beyond the
// currently allocated stack."
//
// We run the P4-like stack campaign with and without that hypothetical
// hardware extension and report how detection and latency change.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "common/table.hpp"

int main() {
  using kfi::inject::CampaignKind;
  std::puts("=== Ablation X1: P4 PUSH/POP stack-limit checking extension "
            "(paper Section 7 proposal) ===");
  for (const bool extension : {false, true}) {
    auto spec = kfi::bench::base_spec(kfi::isa::Arch::kCisca,
                                      CampaignKind::kStack, 500);
    spec.machine.p4_stack_limit_check = extension;
    const auto result = kfi::bench::run_with_progress(spec);
    const auto tally = kfi::analysis::tally_records(result.records);
    std::printf("\n--- PUSH/POP stack checking %s ---\n",
                extension ? "ON (proposed hardware)" : "OFF (faithful P4)");
    std::printf("manifested: %s   known crashes: %u\n",
                kfi::format_percent(tally.manifestation_rate()).c_str(),
                tally.count(kfi::inject::OutcomeCategory::kKnownCrash));
    for (const auto& name : tally.crash_causes.keys()) {
      std::printf("  %-26s %s\n", name.c_str(),
                  kfi::format_count_percent(
                      tally.crash_causes.get(name),
                      tally.crash_causes.fraction(name))
                      .c_str());
    }
    // Early-detection measure: share of crashes within 3k cycles.
    std::printf("  crashes within 3k cycles: %s (early detection)\n",
                kfi::format_percent(tally.latency.fraction(0)).c_str());
  }
  std::puts("\nExpectation: with the extension on, wild-ESP propagation is");
  std::puts("caught at the PUSH/POP itself — detection gets earlier, and");
  std::puts("fewer errors surface as late Bad Paging in other subsystems");
  std::puts("(the paper's Figure 7 propagation scenario).");
  return 0;
}
