// Microbenchmarks (google-benchmark) for the simulation substrate itself:
// interpreter throughput on both ISAs, syscall round-trip cost, machine
// snapshot/restore ("reboot") cost, and the cost of a full injection
// experiment — the numbers that determine how large a campaign is
// practical.
#include <benchmark/benchmark.h>

#include "inject/experiment.hpp"
#include "inject/target_gen.hpp"
#include "kernel/abi.hpp"
#include "kernel/layout.hpp"
#include "kernel/machine.hpp"
#include "workload/profiler.hpp"
#include "workload/workload.hpp"

namespace {

using namespace kfi;

isa::Arch arch_of(const benchmark::State& state) {
  return state.range(0) == 0 ? isa::Arch::kCisca : isa::Arch::kRiscf;
}

void BM_InterpreterSyscallThroughput(benchmark::State& state) {
  kernel::Machine machine(arch_of(state), kernel::MachineOptions{});
  u64 syscalls = 0;
  for (auto _ : state) {
    const kernel::Event ev = machine.syscall(kernel::Syscall::kRead, 0,
                                             kernel::kUserBufBase, 64);
    benchmark::DoNotOptimize(ev.ret);
    ++syscalls;
    if (machine.read_global("syscall_count") > 100000) {
      state.PauseTiming();
      machine.restore(machine.boot_snapshot());
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<i64>(syscalls));
}
BENCHMARK(BM_InterpreterSyscallThroughput)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("arch(0=cisca,1=riscf)");

void BM_SnapshotRestoreReboot(benchmark::State& state) {
  // Per-injection reboot cost.  Each iteration dirties memory the way a
  // short experiment does (one syscall, untimed) and restores the boot
  // snapshot (timed).  arg1 selects dirty-page fast restore vs the
  // full-copy baseline; pages/reboot shows the O(memory) -> O(dirty
  // pages) drop.
  kernel::MachineOptions opts;
  opts.fast_reboot = state.range(1) != 0;
  kernel::Machine machine(arch_of(state), opts);
  auto& pm = machine.space().phys();
  const u64 pages_before = pm.restore_pages_copied();
  for (auto _ : state) {
    state.PauseTiming();
    machine.syscall(kernel::Syscall::kGetpid);
    state.ResumeTiming();
    machine.restore(machine.boot_snapshot());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          kernel::kPhysBytes);
  state.counters["pages/reboot"] =
      static_cast<double>(pm.restore_pages_copied() - pages_before) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_SnapshotRestoreReboot)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 0})
    ->Args({1, 0})
    ->ArgNames({"arch", "fast"});

void BM_KernelImageBuild(benchmark::State& state) {
  for (auto _ : state) {
    const kir::Image image = kernel::build_kernel_image(arch_of(state));
    benchmark::DoNotOptimize(image.code.size());
  }
}
BENCHMARK(BM_KernelImageBuild)->Arg(0)->Arg(1)->ArgName("arch");

void BM_FullInjectionExperiment(benchmark::State& state) {
  const isa::Arch arch = arch_of(state);
  kernel::Machine machine(arch, kernel::MachineOptions{});
  auto wl = workload::make_suite(1);
  const auto hot = workload::profile_hot_functions(machine, *wl, 0.95, 1);
  inject::TargetGenerator gen(machine.image(), hot,
                              machine.cpu().sysregs().count(), 3);
  inject::UdpChannel channel(0.03, 5);
  inject::CrashCollector collector;
  inject::ExperimentRunner runner(machine, *wl, channel, collector,
                                  40'000'000, 120'000'000);
  u32 seq = 0;
  u64 seed = 11;
  for (auto _ : state) {
    const auto target = gen.next(inject::CampaignKind::kCode);
    const auto record = runner.run_one(target, ++seed, seq++);
    benchmark::DoNotOptimize(record.outcome);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_FullInjectionExperiment)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("arch")
    ->Unit(benchmark::kMillisecond);

void BM_RawInstructionRate(benchmark::State& state) {
  // Pure interpreter speed: run the hot read syscall and count simulated
  // instructions per wall second via cycle deltas (cycles ~ instructions
  // within a few percent for this code).  arg1 toggles the predecoded-
  // instruction cache and arg2 toggles superblock (multi-instruction
  // trace) execution; {dcache=1, sb=0} is the pre-superblock fast path,
  // so sb=1 vs sb=0 at dcache=1 is the superblock speedup.  Superblock
  // runs report hit rate, mean block length, and blocks invalidated
  // (non-zero = restores/stores touched cached code and were caught).
  kernel::MachineOptions opts;
  opts.decode_cache = state.range(1) != 0;
  opts.superblock = state.range(2) != 0;
  kernel::Machine machine(arch_of(state), opts);
  u64 cycles = 0;
  for (auto _ : state) {
    const u64 before = machine.cpu().cycles();
    machine.syscall(kernel::Syscall::kWrite, 1, kernel::kUserBufBase, 64);
    cycles += machine.cpu().cycles() - before;
    if (machine.read_global("syscall_count") > 100000) {
      state.PauseTiming();
      machine.restore(machine.boot_snapshot());
      state.ResumeTiming();
    }
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  const isa::DecodeCacheStats stats = machine.cpu().decode_cache_stats();
  state.counters["dcache_hit_rate"] = stats.hit_rate();
  state.counters["dcache_invalidations"] =
      static_cast<double>(stats.invalidations);
  const isa::SuperblockStats sb = machine.cpu().superblock_stats();
  state.counters["sb_hit_rate"] = sb.hit_rate();
  state.counters["sb_mean_block_len"] = sb.mean_block_len();
  state.counters["sb_invalidated"] = static_cast<double>(sb.invalidations);
}
BENCHMARK(BM_RawInstructionRate)
    ->Args({0, 1, 1})
    ->Args({1, 1, 1})
    ->Args({0, 1, 0})
    ->Args({1, 1, 0})
    ->Args({0, 0, 0})
    ->Args({1, 0, 0})
    ->ArgNames({"arch", "dcache", "sb"});

}  // namespace

BENCHMARK_MAIN();
