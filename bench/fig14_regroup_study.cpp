// Reproduces the decoder-level mechanism studies of Figures 14 and 15:
//
//   Figure 14 (P4): a single bit flip in a variable-length instruction
//   stream re-groups the downstream bytes into different — usually still
//   valid — instructions.  We quantify, over every instruction and bit of
//   the kernel's hot functions: how often the flip changes the stream
//   alignment, and how far re-alignment propagates before converging.
//
//   Figure 15 (G4): a flip stays confined to one fixed-width instruction;
//   we quantify how often the result is still a valid encoding versus an
//   illegal one (the G4's Illegal Instruction source), and reproduce the
//   paper's exact mflr->lhax example.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cisca/decode.hpp"
#include "kernel/machine.hpp"
#include "riscf/insn.hpp"

namespace {

using namespace kfi;

/// Decode the cisca stream starting at `start` for up to `len` bytes;
/// returns the instruction boundary offsets.
std::vector<u32> boundaries(const std::vector<u8>& code, u32 start, u32 len) {
  std::vector<u32> out;
  u32 off = start;
  while (off < start + len && off < code.size()) {
    out.push_back(off);
    cisca::FetchWindow w;
    w.pc = off;
    for (u32 k = 0; k < cisca::kMaxInsnBytes && off + k < code.size(); ++k) {
      w.bytes[k] = code[off + k];
      w.valid = static_cast<u8>(k + 1);
    }
    off += cisca::decode(w).insn.length;
  }
  return out;
}

void cisca_study() {
  const kir::Image image = kernel::build_kernel_image(isa::Arch::kCisca);
  u64 flips = 0, realigned = 0, still_valid_stream = 0, became_invalid = 0;
  u64 resync_insns_total = 0, resync_count = 0;

  for (const auto& fn : image.functions) {
    const u32 fn_off = fn.addr - image.code_base;
    const auto orig = boundaries(image.code, fn_off, fn.size);
    for (size_t i = 0; i + 1 < orig.size(); ++i) {
      const u32 insn_off = orig[i];
      const u32 insn_len = orig[i + 1] - insn_off;
      for (u32 bit = 0; bit < insn_len * 8; ++bit) {
        std::vector<u8> mutated = image.code;
        mutated[insn_off + bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        ++flips;
        const auto now = boundaries(mutated, insn_off, fn.size - (insn_off - fn_off));
        // Compare downstream boundaries: find when the streams re-sync.
        bool diverged = now.size() < 2 || now[1] != orig[i + 1];
        if (diverged) {
          ++realigned;
          // Count instructions until a boundary matches the original set.
          u32 steps = 0;
          for (const u32 b : now) {
            bool match = false;
            for (const u32 o : orig) {
              if (o == b && b > insn_off) match = true;
            }
            if (match) break;
            ++steps;
            if (steps > 16) break;
          }
          resync_insns_total += steps;
          ++resync_count;
        }
        // Is the first corrupted instruction itself a valid encoding?
        cisca::FetchWindow w;
        w.pc = insn_off;
        for (u32 k = 0;
             k < cisca::kMaxInsnBytes && insn_off + k < mutated.size(); ++k) {
          w.bytes[k] = mutated[insn_off + k];
          w.valid = static_cast<u8>(k + 1);
        }
        if (cisca::decode(w).insn.op == cisca::Op::kInvalid) {
          ++became_invalid;
        } else {
          ++still_valid_stream;
        }
      }
    }
  }
  std::puts("--- Figure 14 mechanism study: P4-like variable-length stream ---");
  std::printf("bit flips analyzed:                 %llu\n",
              static_cast<unsigned long long>(flips));
  std::printf("flip yields a VALID instruction:    %.1f%%  (dense opcode map;"
              " paper: most flips execute)\n",
              100.0 * still_valid_stream / flips);
  std::printf("flip yields an invalid encoding:    %.1f%%\n",
              100.0 * became_invalid / flips);
  std::printf("flip re-aligns downstream stream:   %.1f%%  (the Figure 14 "
              "regrouping)\n",
              100.0 * realigned / flips);
  if (resync_count > 0) {
    std::printf("mean corrupted insns before resync: %.2f\n",
                static_cast<double>(resync_insns_total) / resync_count);
  }
}

void riscf_study() {
  const kir::Image image = kernel::build_kernel_image(isa::Arch::kRiscf);
  u64 flips = 0, still_valid = 0, became_illegal = 0, opcode_changed = 0;
  for (u32 off = 0; off + 4 <= image.code.size(); off += 4) {
    const u32 word = (static_cast<u32>(image.code[off]) << 24) |
                     (static_cast<u32>(image.code[off + 1]) << 16) |
                     (static_cast<u32>(image.code[off + 2]) << 8) |
                     image.code[off + 3];
    const riscf::Insn orig = riscf::decode(word);
    if (orig.op == riscf::Op::kInvalid) continue;
    for (u32 bit = 0; bit < 32; ++bit) {
      ++flips;
      const riscf::Insn mutated = riscf::decode(word ^ (1u << bit));
      if (mutated.op == riscf::Op::kInvalid) {
        ++became_illegal;
      } else {
        ++still_valid;
        if (mutated.op != orig.op) ++opcode_changed;
      }
    }
  }
  std::puts("\n--- Figure 15 mechanism study: G4-like fixed-width stream ---");
  std::printf("bit flips analyzed:                 %llu\n",
              static_cast<unsigned long long>(flips));
  std::printf("flip yields an ILLEGAL instruction: %.1f%%  (sparse opcode "
              "map; paper: 41.5%% of G4 code crashes are Illegal Instr.)\n",
              100.0 * became_illegal / flips);
  std::printf("flip stays a valid instruction:     %.1f%% "
              "(of which %.1f%% change operation)\n",
              100.0 * still_valid / flips,
              still_valid ? 100.0 * opcode_changed / still_valid : 0.0);
  std::puts("alignment never changes: every flip stays within its own "
            "32-bit word.");

  // The paper's exact example: mflr r0 -> lhax r0,r8,r0 via one bit.
  const riscf::Insn mflr = riscf::decode(0x7C0802A6u);
  const riscf::Insn lhax = riscf::decode(0x7C0802A6u ^ (1u << 3));
  std::printf("\nFigure 15 worked example: %08x %-18s -> flip bit 3 -> "
              "%08x %s\n",
              0x7C0802A6u, mflr.to_string().c_str(), 0x7C0802A6u ^ 8u,
              lhax.to_string().c_str());
}

}  // namespace

int main() {
  std::puts("=== Figures 14 & 15 reproduction: bit flips vs. instruction "
            "encodings ===");
  cisca_study();
  riscf_study();
  return 0;
}
