// Propagation-tracing cost gate: the trace subsystem must be free when
// off and strictly observational when on.
//
// One frozen CampaignPlan per arch, executed three ways: tracing off
// (twice) and tracing on.  Gates, per arch:
//   1. All three merged results fingerprint bit-identically — tracing can
//      never change an outcome (the observational contract).
//   2. The two tracing-off runs agree in step rate within the tolerance
//      (default 2%): with no sink attached every hook is one predictable
//      null check, so any systematic cost would show up here against the
//      run-to-run noise floor.
// The tracing-on overhead (shadow-state bookkeeping) is measured and
// reported, not gated — it is the price of the propagation study, paid
// only when --trace is requested.
//
// Knobs: KFI_INJECTIONS (default 96), KFI_SEED, KFI_JOBS, KFI_REPS,
//        KFI_OFF_TOLERANCE_PCT (default 2).
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

using namespace kfi;

namespace {

struct Timed {
  u64 fingerprint = 0;
  double rate = 0.0;  // simulated cycles per wall second
};

Timed run_variant(const inject::CampaignPlan& plan, u32 jobs, bool trace) {
  inject::RunControl control;
  control.trace = trace;
  const inject::CampaignResult result =
      inject::CampaignEngine(jobs).run(plan, {}, control);
  return Timed{inject::result_fingerprint(result),
               result.throughput.simulated_cycles_per_second()};
}

/// Best-of-`reps` rate (and the fingerprint, identical across reps by the
/// determinism contract): scheduler hiccups only ever slow a run down, so
/// the max rate is the stable estimator.
Timed run_best(const inject::CampaignPlan& plan, u32 jobs, bool trace,
               u32 reps) {
  Timed best = run_variant(plan, jobs, trace);
  for (u32 i = 1; i < reps; ++i) {
    const Timed t = run_variant(plan, jobs, trace);
    if (t.rate > best.rate) best.rate = t.rate;
  }
  return best;
}

}  // namespace

int main() {
  const u32 n = bench::env_u32("KFI_INJECTIONS", 96);
  const u32 jobs = bench::env_jobs();
  const double tolerance =
      static_cast<double>(bench::env_u32("KFI_OFF_TOLERANCE_PCT", 2)) / 100.0;
  bool ok = true;

  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    auto spec = bench::base_spec(arch, inject::CampaignKind::kStack, n);
    const inject::CampaignPlan plan = inject::build_campaign_plan(spec);

    // Untimed warm-up: the first campaign on a plan pays one-off costs
    // (allocator growth, page-cache population) that would otherwise bias
    // the first timed off run.
    run_variant(plan, jobs, false);

    const u32 reps = bench::env_u32("KFI_REPS", 2);
    const Timed off_a = run_best(plan, jobs, false, reps);
    const Timed off_b = run_best(plan, jobs, false, reps);
    const Timed on = run_best(plan, jobs, true, reps);

    const double off_rate = std::max(off_a.rate, off_b.rate);
    const double off_delta =
        off_rate > 0.0 ? std::abs(off_a.rate - off_b.rate) / off_rate : 0.0;
    const double on_overhead =
        on.rate > 0.0 ? off_rate / on.rate - 1.0 : 0.0;

    std::printf(
        "%s n=%u jobs=%u: off %.2f / %.2f Mcyc/s (delta %.2f%%), "
        "on %.2f Mcyc/s (overhead %.1f%%)\n",
        isa::arch_name(arch).c_str(), plan.spec.injections, jobs,
        off_a.rate / 1e6, off_b.rate / 1e6, off_delta * 100.0, on.rate / 1e6,
        on_overhead * 100.0);

    if (off_a.fingerprint != off_b.fingerprint ||
        off_a.fingerprint != on.fingerprint) {
      std::fprintf(stderr,
                   "FATAL: %s results diverge with tracing "
                   "(off %" PRIx64 "/%" PRIx64 " vs on %" PRIx64 ")\n",
                   isa::arch_name(arch).c_str(), off_a.fingerprint,
                   off_b.fingerprint, on.fingerprint);
      ok = false;
    }
    if (off_delta > tolerance) {
      std::fprintf(stderr,
                   "FATAL: %s tracing-off step-rate cost %.2f%% exceeds "
                   "%.0f%% tolerance\n",
                   isa::arch_name(arch).c_str(), off_delta * 100.0,
                   tolerance * 100.0);
      ok = false;
    }
  }

  std::printf("propagation_overhead: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
