// Syscall errno-injection cascade sweep: how far a forced error return at
// the syscall boundary cascades through the workload, swept over syscall
// sets (read / write / read+write / alloc+free / send+recv / all) and
// triggers (one forced error at a drawn invocation; Poisson rate of 2 per
// run), on both architectures.  This is the interface axis of OS error
// sensitivity the 2004 testbed never measured — the physical campaigns
// answer "what fails when state corrupts", this table answers "what
// happens when the kernel merely *reports* failure".
//
// Every row prints its result fingerprint, and the bench self-checks the
// engine's determinism contract on a subset of rows: the serial and
// KFI_JOBS executions of the same plan must merge bit-identically (the
// bench exits non-zero otherwise, so CI can gate on it).  A legacy
// control row per arch runs the paper's plain data campaign with the
// errno model disabled — with KFI_INJECTIONS=16 KFI_SEED=77 its
// fingerprint is the pre-errno seed value, which CI pins to prove the
// errno seam costs legacy campaigns nothing, bit for bit.
//
// Knobs: KFI_INJECTIONS (default 60), KFI_SEED, KFI_JOBS.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/cascade.hpp"
#include "bench_common.hpp"
#include "errnoinj/errno_model.hpp"

namespace {

using namespace kfi;

struct Row {
  std::string label;
  errnoinj::ErrnoModel model;
  bool parity_check = false;  // also run at KFI_JOBS and compare
};

int g_parity_failures = 0;

void print_header() {
  std::printf("%-24s %7s %7s %9s %10s %7s %8s %7s  %s\n", "model", "forced",
              "contain", "propagate", "silent", "check@", "statedev",
              "crash", "fingerprint");
}

void run_row(isa::Arch arch, const Row& row) {
  inject::CampaignSpec spec =
      bench::base_spec(arch, inject::CampaignKind::kErrno, 60);
  spec.errno_model = row.model;
  const inject::CampaignPlan plan = inject::build_campaign_plan(spec);
  const inject::CampaignResult result = inject::CampaignEngine(1).run(plan);
  const u64 fp = inject::result_fingerprint(result);
  const analysis::CascadeTally t = analysis::tally_cascades(result.records);
  std::printf("%-24s %7u %6.1f%% %8.1f%% %9.1f%% %6.1f%% %8u %7u  %016" PRIx64
              "\n",
              row.label.c_str(), t.forced_runs,
              t.fraction_contained() * 100.0, t.fraction_propagated() * 100.0,
              t.fraction_silent() * 100.0,
              t.forced_runs == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(t.checked_at_site) /
                        t.forced_runs,
              t.state_deviations, t.crashes, fp);
  if (row.parity_check) {
    const u32 jobs = bench::env_jobs();
    const inject::CampaignResult par =
        inject::CampaignEngine(jobs == 1 ? 4 : jobs).run(plan);
    if (inject::result_fingerprint(par) != fp) {
      std::printf("  ^ PARITY FAILURE: jobs run diverged from serial\n");
      ++g_parity_failures;
    }
  }
}

void legacy_control_row(isa::Arch arch) {
  // The paper's plain data campaign, errno model disabled: its fingerprint
  // must be byte-identical to the pre-errno build (CI pins it at
  // KFI_INJECTIONS=16 KFI_SEED=77).
  const inject::CampaignSpec spec =
      bench::base_spec(arch, inject::CampaignKind::kData, 60);
  const inject::CampaignPlan plan = inject::build_campaign_plan(spec);
  const inject::CampaignResult result = inject::CampaignEngine(1).run(plan);
  std::printf("%-24s legacy control fingerprint %016" PRIx64 "\n",
              "data single-bit", inject::result_fingerprint(result));
}

void sweep(isa::Arch arch) {
  std::printf("\n== %s: errno cascade sweep ==\n",
              isa::arch_name(arch).c_str());
  print_header();
  const std::vector<std::string> sets = {"read",       "write",
                                         "read,write", "alloc,free",
                                         "send,recv",  "all"};
  std::vector<Row> rows;
  for (const std::string& set : sets) {
    std::string bad;
    const auto mask = errnoinj::parse_syscall_list(set, &bad);
    // nth trigger, invocation drawn per run, forced -1 return.
    Row nth;
    nth.label = "nth[" + set + "]";
    nth.model.syscalls = *mask;
    nth.parity_check = set == "read,write";
    rows.push_back(nth);
    // Poisson rate of 2 forced errors per run, drawn negative returns.
    Row rate;
    rate.label = "rate=2 drawn[" + set + "]";
    rate.model.syscalls = *mask;
    rate.model.trigger = errnoinj::ErrnoTrigger::kRate;
    rate.model.value = errnoinj::ErrnoValue::kDrawnNegative;
    rate.model.rate = 2.0;
    rate.parity_check = set == "all";
    rows.push_back(rate);
  }
  for (const Row& row : rows) run_row(arch, row);
  legacy_control_row(arch);

  // One full cascade report for the broadest sweep row, so the bench
  // output carries the per-syscall histogram table CI logs can be read
  // against.
  inject::CampaignSpec spec =
      bench::base_spec(arch, inject::CampaignKind::kErrno, 60);
  spec.errno_model.syscalls = errnoinj::eligible_syscall_mask();
  spec.errno_model.trigger = errnoinj::ErrnoTrigger::kRate;
  spec.errno_model.rate = 2.0;
  const inject::CampaignPlan plan = inject::build_campaign_plan(spec);
  const inject::CampaignResult result = inject::CampaignEngine(1).run(plan);
  std::printf("%s", analysis::render_cascades(
                        isa::arch_name(arch) + " " + spec.errno_model.name(),
                        analysis::tally_cascades(result.records),
                        analysis::tally_cascades_by_syscall(result.records))
                        .c_str());
}

}  // namespace

int main() {
  for (const isa::Arch arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    sweep(arch);
  }
  if (g_parity_failures > 0) {
    std::printf("\n%d parity failure(s)\n", g_parity_failures);
    return 1;
  }
  std::printf("\nall parity self-checks passed\n");
  return 0;
}
