// Reproduces Figure 16 (A)-(D): the distribution of cycles-to-crash for
// each injection campaign, on both processors, in the paper's buckets.
#include <cstdio>

#include "bench/bench_common.hpp"

int main() {
  using kfi::inject::CampaignKind;
  std::puts("=== Figure 16 reproduction: Distribution of Cycles-to-Crash ===");
  const struct {
    CampaignKind kind;
    const char* panel;
  } panels[] = {
      {CampaignKind::kStack, "(A) Stack Error Injection"},
      {CampaignKind::kRegister, "(B) System Register Error Injection"},
      {CampaignKind::kCode, "(C) Code Error Injection"},
      {CampaignKind::kData, "(D) Data Error Injection"},
  };
  for (const auto& panel : panels) {
    const auto cisca_result = kfi::bench::run_with_progress(
        kfi::bench::base_spec(kfi::isa::Arch::kCisca, panel.kind, 400));
    const auto riscf_result = kfi::bench::run_with_progress(
        kfi::bench::base_spec(kfi::isa::Arch::kRiscf, panel.kind, 400));
    std::fputs(kfi::analysis::render_latency_comparison(
                   std::string("Figure 16") + panel.panel, panel.kind,
                   kfi::analysis::tally_records(cisca_result.records),
                   kfi::analysis::tally_records(riscf_result.records))
                   .c_str(),
               stdout);
    std::puts("");
  }
  std::puts("Paper columns are approximate values read off the published");
  std::puts("plots, anchored to the percentages stated in Section 6.");
  return 0;
}
