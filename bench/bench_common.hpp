// Shared plumbing for the reproduction benches: environment-variable
// configuration, campaign execution with progress output, and common
// printing.
//
// Every bench prints measured-vs-paper numbers.  Absolute agreement with a
// 2004 hardware testbed is not expected (see EXPERIMENTS.md); what the
// benches demonstrate is the SHAPE of each table/figure: which platform
// manifests more, which crash causes dominate, where the latency mass sits.
//
// Environment knobs:
//   KFI_INJECTIONS  per-campaign injection count   (default per bench)
//   KFI_SEED        campaign seed                  (default 1)
//   KFI_JOBS        campaign worker threads        (default 1 = serial,
//                   0 = hardware concurrency; results are bit-identical
//                   for any value)
//   KFI_DECODE_CACHE  0 disables the predecoded-instruction cache
//                     (default 1; bit-identical results either way)
//   KFI_FAST_REBOOT   0 forces full-copy snapshot restores
//                     (default 1; bit-identical results either way)
//   KFI_SUPERBLOCK    0 disables superblock (multi-instruction trace)
//                     execution (default 1; bit-identical either way)
//   KFI_COW           0 disables copy-on-write page sharing
//                     (default 1; bit-identical either way)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/report.hpp"
#include "analysis/tally.hpp"
#include "inject/campaign.hpp"

namespace kfi::bench {

inline u32 env_u32(const char* name, u32 fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? static_cast<u32>(std::strtoul(value, nullptr, 10))
                          : fallback;
}

inline u64 env_u64(const char* name, u64 fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

/// KFI_JOBS resolved to a worker count (unset -> 1, 0 -> hw concurrency).
inline u32 env_jobs() {
  return inject::CampaignEngine::resolve_jobs(env_u32("KFI_JOBS", 1));
}

inline inject::CampaignSpec base_spec(isa::Arch arch,
                                      inject::CampaignKind kind,
                                      u32 default_injections) {
  inject::CampaignSpec spec;
  spec.arch = arch;
  spec.kind = kind;
  spec.injections = env_u32("KFI_INJECTIONS", default_injections);
  spec.seed = env_u64("KFI_SEED", 1);
  spec.machine.decode_cache = env_u32("KFI_DECODE_CACHE", 1) != 0;
  spec.machine.fast_reboot = env_u32("KFI_FAST_REBOOT", 1) != 0;
  spec.machine.superblock = env_u32("KFI_SUPERBLOCK", 1) != 0;
  spec.machine.cow_memory = env_u32("KFI_COW", 1) != 0;
  return spec;
}

inline inject::CampaignResult run_with_progress(
    const inject::CampaignSpec& spec) {
  const u32 jobs = env_jobs();
  std::fprintf(stderr, "[campaign] %s %s n=%u seed=%llu jobs=%u ...\n",
               isa::arch_name(spec.arch).c_str(),
               campaign_kind_name(spec.kind).c_str(), spec.injections,
               static_cast<unsigned long long>(spec.seed), jobs);
  const inject::CampaignPlan plan = inject::build_campaign_plan(spec);
  const inject::CampaignResult result =
      inject::CampaignEngine(jobs).run(plan);
  std::fprintf(stderr, "[campaign] %s\n",
               analysis::summarize_campaign(result).c_str());
  return result;
}

inline const char* fig_title(inject::CampaignKind kind) {
  switch (kind) {
    case inject::CampaignKind::kStack: return "Kernel Stack Injection";
    case inject::CampaignKind::kRegister: return "System Register Injection";
    case inject::CampaignKind::kData: return "Kernel Data Injection";
    case inject::CampaignKind::kCode: return "Code Injection";
    case inject::CampaignKind::kErrno: return "Syscall Errno Injection";
  }
  return "";
}

}  // namespace kfi::bench
