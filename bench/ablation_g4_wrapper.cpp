// Ablation X2 — the G4 kernel's exception-entry checking wrapper
// (Section 6): "This wrapper examines the correctness of the current stack
// pointer [and] raises a Stack Overflow exception ... the detection of the
// corrupted stack pointers is relatively fast."
//
// Disabling it should make the G4 behave like the P4: stack-pointer
// corruption propagates and surfaces later under other exception types.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "common/table.hpp"

int main() {
  using kfi::inject::CampaignKind;
  std::puts("=== Ablation X2: G4 exception-entry stack-range wrapper ===");
  for (const bool wrapper : {true, false}) {
    auto spec = kfi::bench::base_spec(kfi::isa::Arch::kRiscf,
                                      CampaignKind::kStack, 500);
    spec.machine.g4_stack_wrapper = wrapper;
    const auto result = kfi::bench::run_with_progress(spec);
    const auto tally = kfi::analysis::tally_records(result.records);
    std::printf("\n--- wrapper %s ---\n",
                wrapper ? "ON (faithful G4 kernel)" : "OFF (P4-like kernel)");
    for (const auto& name : tally.crash_causes.keys()) {
      std::printf("  %-26s %s\n", name.c_str(),
                  kfi::format_count_percent(
                      tally.crash_causes.get(name),
                      tally.crash_causes.fraction(name))
                      .c_str());
    }
    std::printf("  crashes within 3k cycles: %s\n",
                kfi::format_percent(tally.latency.fraction(0)).c_str());
  }
  std::puts("\nExpectation: with the wrapper off, the explicit Stack");
  std::puts("Overflow category disappears and those crashes re-surface as");
  std::puts("Bad Area with longer latencies — exactly the cross-platform");
  std::puts("difference the paper traces to this wrapper (Section 6).");
  return 0;
}
