// Ablation X3 — the spinlock magic checks of the paper's Figure 13: the
// kernel's frequent spin_lock/spin_unlock magic comparison converts data
// corruption of lock words into quick Invalid/Illegal Instruction BUG()s.
//
// Random data sampling rarely lands on the handful of lock words, so this
// ablation injects into every spinlock's magic word directly (each bit of
// each lock), with and without SPINLOCK_DEBUG in the kernel build.
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/table.hpp"
#include "inject/experiment.hpp"
#include "workload/profiler.hpp"

int main() {
  using namespace kfi;
  std::puts("=== Ablation X3: SPINLOCK_DEBUG magic checks (Figure 13) ===");
  const char* lock_names[] = {"kernel_flag_cacheline", "runqueue_lock",
                              "bdev_lock", "journal_datalist_lock",
                              "page_table_lock", "net_lock"};
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    for (const bool checks : {true, false}) {
      kernel::MachineOptions mopts;
      mopts.spinlock_debug = checks;
      kernel::Machine machine(arch, mopts);
      auto wl = workload::make_suite();
      inject::UdpChannel channel(0.0, 1);
      inject::CrashCollector collector;
      inject::ExperimentRunner runner(machine, *wl, channel, collector,
                                      60'000'000, 200'000'000);
      analysis::OutcomeTally tally;
      std::vector<inject::InjectionRecord> records;
      u32 seq = 0;
      for (const char* name : lock_names) {
        const auto& lock = machine.image().object(name);
        const Addr magic = lock.addr + lock.field_named("magic").offset;
        for (u32 bit = 0; bit < 32; bit += 2) {
          const inject::InjectionTarget t =
              inject::InjectionTarget::data(magic, bit);
          records.push_back(runner.run_one(t, 100 + bit, seq++));
        }
      }
      tally = analysis::tally_records(records);
      std::printf("\n--- %s, SPINLOCK_DEBUG %s: %zu lock-magic flips ---\n",
                  isa::arch_name(arch).c_str(), checks ? "on" : "off",
                  records.size());
      std::printf("activated: %u  manifested: %s\n", tally.activated,
                  format_percent(tally.manifestation_rate()).c_str());
      for (const auto& cause : tally.crash_causes.keys()) {
        std::printf("  %-26s %s\n", cause.c_str(),
                    format_count_percent(tally.crash_causes.get(cause),
                                         tally.crash_causes.fraction(cause))
                        .c_str());
      }
      // Detection speed: fraction of crashes within 10k cycles.
      std::printf("  crashes within 10k cycles: %s\n",
                  format_percent(tally.latency.fraction(0) +
                                 tally.latency.fraction(1))
                      .c_str());
    }
  }
  std::puts("\nExpectation (Figure 13): with SPINLOCK_DEBUG on, corrupted");
  std::puts("magic words are caught by the frequent checks and surface as");
  std::puts("Invalid/Illegal Instruction BUG()s almost immediately; without");
  std::puts("the checks the same flips are silent or propagate.");
  return 0;
}
