// Reproduces Table 5 (Pentium-like) or Table 6 (PowerPC-like): activation
// and failure distribution across all four injection campaigns.
//
// The arch is baked in at compile time via KFI_BENCH_ARCH_RISCF so that
// `table5_p4` and `table6_g4` are separate binaries, one per paper table.
#include <cstdio>

#include "bench/bench_common.hpp"

int main() {
#ifdef KFI_BENCH_ARCH_RISCF
  const kfi::isa::Arch arch = kfi::isa::Arch::kRiscf;
  std::puts("=== Table 6 reproduction: Statistics on Error Activation and "
            "Failure Distribution on the G4-like processor ===");
#else
  const kfi::isa::Arch arch = kfi::isa::Arch::kCisca;
  std::puts("=== Table 5 reproduction: Statistics on Error Activation and "
            "Failure Distribution on the P4-like processor ===");
#endif
  using kfi::inject::CampaignKind;

  std::vector<std::pair<CampaignKind, kfi::analysis::OutcomeTally>> rows;
  for (const CampaignKind kind :
       {CampaignKind::kStack, CampaignKind::kRegister, CampaignKind::kData,
        CampaignKind::kCode}) {
    const auto spec = kfi::bench::base_spec(arch, kind, 400);
    const auto result = kfi::bench::run_with_progress(spec);
    rows.emplace_back(kind, kfi::analysis::tally_records(result.records));
  }
  std::fputs(kfi::analysis::render_failure_table(arch, rows).c_str(), stdout);
  std::puts("\nNote: percentages are measured | paper.  Activation is over");
  std::puts("injected errors; all other columns over activated errors");
  std::puts("(injected errors for the register row), as in the paper.");
  return 0;
}
