// Fault-model dose-response study: how the outcome distribution shifts as
// the fault "dose" grows — multi-bit k in {1, 2, 4, 8}, a 4-bit burst,
// and Poisson rates in {0.5, 2, 8} events/run over the data campaign, plus
// opclass-targeted code campaigns, one row per functional-unit class.
// The 2004 testbed could only deliver the k=1 single-shot row of these
// tables; the rest is the extrapolation axis the simulator unlocks.
//
// Every row prints its result fingerprint, and the bench self-checks the
// engine's determinism contract on a subset of rows: the serial and
// KFI_JOBS executions of the same plan must merge bit-identically (the
// bench exits non-zero otherwise, so CI can gate on it).  The k=1 row is
// the legacy model — with KFI_INJECTIONS=16 KFI_SEED=77 its fingerprint
// is the pre-FaultModel seed value, which CI pins.
//
// Knobs: KFI_INJECTIONS (default 400), KFI_SEED, KFI_JOBS.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "inject/fault_model.hpp"

namespace {

using namespace kfi;

struct Row {
  std::string label;
  inject::FaultModel model;
  bool parity_check = false;  // also run at KFI_JOBS and compare
};

int g_parity_failures = 0;

void print_header() {
  std::printf("%-18s %8s %9s %8s %6s %8s %8s  %s\n", "model", "injected",
              "activated", "notman", "fsv", "crash", "hang", "fingerprint");
}

void run_row(isa::Arch arch, inject::CampaignKind kind, const Row& row) {
  inject::CampaignSpec spec = bench::base_spec(arch, kind, 400);
  spec.model = row.model;
  const inject::CampaignPlan plan = inject::build_campaign_plan(spec);
  const inject::CampaignResult result = inject::CampaignEngine(1).run(plan);
  const u64 fp = inject::result_fingerprint(result);
  const analysis::OutcomeTally t = analysis::tally_records(result.records);
  using inject::OutcomeCategory;
  std::printf("%-18s %8u %9s %7.1f%% %5.1f%% %7.1f%% %7.1f%%  %016" PRIx64
              "\n",
              row.label.c_str(), t.injected,
              t.activation_known
                  ? (std::to_string(t.activated) + " (" +
                     std::to_string(static_cast<int>(
                         t.activation_rate() * 100.0 + 0.5)) +
                     "%)")
                        .c_str()
                  : "N/A",
              t.fraction(OutcomeCategory::kNotManifested) * 100.0,
              t.fraction(OutcomeCategory::kFailSilenceViolation) * 100.0,
              t.fraction(OutcomeCategory::kKnownCrash) * 100.0,
              t.fraction(OutcomeCategory::kHangOrUnknownCrash) * 100.0, fp);
  if (row.parity_check) {
    const u32 jobs = bench::env_jobs();
    const inject::CampaignResult par =
        inject::CampaignEngine(jobs == 1 ? 4 : jobs).run(plan);
    if (inject::result_fingerprint(par) != fp) {
      std::printf("  ^ PARITY FAILURE: jobs run diverged from serial\n");
      ++g_parity_failures;
    }
  }
  // Opclass-targeted rows additionally break the outcome down per class
  // (for the targeted class the table is that row's whole campaign).
  if (kind == inject::CampaignKind::kCode &&
      row.model.shape == inject::FaultShape::kSingleBit) {
    const auto by_class = analysis::tally_by_opclass(result.records);
    std::printf("%s",
                analysis::render_opclass_breakdown(arch, by_class).c_str());
  }
}

void dose_section(isa::Arch arch) {
  std::printf("\n== %s: data-campaign dose response ==\n",
              isa::arch_name(arch).c_str());
  print_header();
  std::vector<Row> rows;
  {
    Row r;  // k=1 == the paper's legacy model; CI pins this fingerprint.
    r.label = "single-bit";
    r.parity_check = true;
    rows.push_back(r);
  }
  for (const u32 k : {2u, 4u, 8u}) {
    Row r;
    r.label = "multi-bit k=" + std::to_string(k);
    r.model.shape = inject::FaultShape::kMultiBit;
    r.model.bits = k;
    r.parity_check = k == 4;
    rows.push_back(r);
  }
  {
    Row r;
    r.label = "burst span=4";
    r.model.shape = inject::FaultShape::kBurst;
    r.model.burst_span = 4;
    rows.push_back(r);
  }
  for (const double rate : {0.5, 2.0, 8.0}) {
    Row r;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "rate=%g/run", rate);
    r.label = buf;
    r.model.trigger = inject::FaultTrigger::kRate;
    r.model.rate = rate;
    r.parity_check = rate == 2.0;
    rows.push_back(r);
  }
  for (const Row& row : rows) {
    run_row(arch, inject::CampaignKind::kData, row);
  }
}

void opclass_section(isa::Arch arch) {
  std::printf("\n== %s: opclass-targeted code campaigns ==\n",
              isa::arch_name(arch).c_str());
  print_header();
  {
    Row natural;  // the paper's code campaign: natural instruction mix
    natural.label = "code (natural)";
    run_row(arch, inject::CampaignKind::kCode, natural);
  }
  for (const isa::OpClass cls :
       {isa::OpClass::kAlu, isa::OpClass::kLoadStore, isa::OpClass::kBranch,
        isa::OpClass::kSystem}) {
    Row r;
    r.label = "opclass=" + isa::opclass_name(cls);
    r.model.shape = inject::FaultShape::kOpclass;
    r.model.opclass = cls;
    try {
      run_row(arch, inject::CampaignKind::kCode, r);
    } catch (const inject::FaultModelError& e) {
      // A class can be absent from the hot-function set (e.g. no system
      // instructions survive profiling); report instead of aborting.
      std::printf("%-18s  (skipped: %s)\n", r.label.c_str(), e.what());
    }
  }
}

}  // namespace

int main() {
  for (const isa::Arch arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    dose_section(arch);
    opclass_section(arch);
  }
  if (g_parity_failures > 0) {
    std::printf("\n%d parity failure(s)\n", g_parity_failures);
    return 1;
  }
  std::printf("\nall parity self-checks passed\n");
  return 0;
}
