// Reproduces Figures 4 and 5: the overall distribution of known-crash
// causes (union of all four campaigns) on each processor.
#include <cstdio>

#include <algorithm>

#include "bench/bench_common.hpp"

int main() {
  using kfi::inject::CampaignKind;
  std::puts("=== Figures 4 & 5 reproduction: Overall Distribution of Crash "
            "Causes (Known Crash Category) ===");
  for (const auto arch : {kfi::isa::Arch::kCisca, kfi::isa::Arch::kRiscf}) {
    std::vector<kfi::inject::InjectionRecord> all;
    for (const CampaignKind kind :
         {CampaignKind::kStack, CampaignKind::kRegister, CampaignKind::kData,
          CampaignKind::kCode}) {
      // Weight campaigns in the paper's injected proportions so the
      // overall crash mix is comparable with Figures 4/5 (the paper ran
      // vastly different counts per campaign).
      const auto row = kfi::analysis::paper_table_row(arch, kind);
      const kfi::u32 base = kfi::bench::env_u32("KFI_INJECTIONS", 300);
      const kfi::u32 n = std::max<kfi::u32>(
          40, static_cast<kfi::u32>(
                  static_cast<kfi::u64>(row.injected) * 4 * base / 61799));
      const auto result =
          kfi::bench::run_with_progress(kfi::bench::base_spec(arch, kind, n));
      all.insert(all.end(), result.records.begin(), result.records.end());
    }
    const auto tally = kfi::analysis::tally_records(all);
    std::fputs(
        kfi::analysis::render_cause_comparison(
            arch,
            arch == kfi::isa::Arch::kCisca ? "Figure 4: Crash Causes (all campaigns)"
                                           : "Figure 5: Crash Causes (all campaigns)",
            tally, kfi::analysis::paper_overall_crash_causes(arch))
            .c_str(),
        stdout);
    std::puts("");
  }
  return 0;
}
