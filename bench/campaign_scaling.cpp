// Campaign-engine scaling: one frozen CampaignPlan per arch, executed at
// several worker counts.  Reports wall-clock, injections/sec, simulated
// cycles/sec, and speedup vs serial, and verifies that every worker count
// produced the bit-identical merged result (the engine's determinism
// contract).  On a multicore host the stack campaign reaches >= 2x at
// --jobs 4; on a single hardware thread the rows collapse to ~1x, which
// is itself evidence that the parallel path adds no overhead.
//
// Knobs: KFI_INJECTIONS (default 2000), KFI_SEED, KFI_JOBS_MAX (default 4).
#include <cinttypes>
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace kfi;

/// FNV-1a over every determinism-relevant field of the merged result.
u64 result_fingerprint(const inject::CampaignResult& result) {
  u64 h = 0xcbf29ce484222325ull;
  auto mix = [&h](u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  mix(result.nominal_cycles);
  mix(result.reboots);
  mix(result.datagrams_sent);
  mix(result.datagrams_dropped);
  for (const auto& r : result.records) {
    mix(static_cast<u64>(r.outcome));
    mix(r.activated ? 1 : 0);
    mix(r.activation_cycle);
    mix(r.latency_base_cycle);
    mix(r.cycles_to_crash);
    mix(r.crashed ? 1 : 0);
    mix(r.crash_report_received ? 1 : 0);
    mix(static_cast<u64>(r.crash.cause));
    mix(r.crash.pc);
    mix(r.syscalls_completed);
  }
  return h;
}

}  // namespace

int main() {
  const u32 n = bench::env_u32("KFI_INJECTIONS", 2000);
  const u32 jobs_max = bench::env_u32("KFI_JOBS_MAX", 4);

  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    auto spec = bench::base_spec(arch, inject::CampaignKind::kStack, n);
    std::printf("== %s stack campaign, n=%u ==\n",
                isa::arch_name(arch).c_str(), spec.injections);
    const inject::CampaignPlan plan = inject::build_campaign_plan(spec);
    std::printf("plan: %.2fs (codegen + calibrate + profile + %zu targets)\n",
                plan.plan_seconds, plan.targets.size());

    double serial_seconds = 0.0;
    u64 serial_fp = 0;
    for (u32 jobs = 1; jobs <= jobs_max; jobs *= 2) {
      const inject::CampaignResult result =
          inject::CampaignEngine(jobs).run(plan);
      const u64 fp = result_fingerprint(result);
      if (jobs == 1) {
        serial_seconds = result.throughput.run_seconds;
        serial_fp = fp;
      }
      const bool identical = fp == serial_fp;
      std::printf(
          "jobs=%u  run=%6.2fs  %7.1f inj/s  %8.1f Msim-cyc/s  "
          "speedup=%.2fx  result=%s\n",
          jobs, result.throughput.run_seconds,
          result.throughput.injections_per_second(result.records.size()),
          result.throughput.simulated_cycles_per_second() / 1e6,
          serial_seconds / result.throughput.run_seconds,
          identical ? "bit-identical" : "DIVERGED");
      if (!identical) {
        std::fprintf(stderr, "FATAL: jobs=%u diverged from serial (fp %" PRIx64
                             " vs %" PRIx64 ")\n",
                     jobs, fp, serial_fp);
        return 1;
      }
    }
    std::printf("\n");
  }
  return 0;
}
