// Campaign-engine scaling: one frozen CampaignPlan per arch, executed at
// several worker counts.  Reports wall-clock, injections/sec, simulated
// cycles/sec, speedup vs serial, and resident memory per worker (private
// pages held at campaign end; with copy-on-write boot-snapshot sharing
// this is the dirty working set, not a full image copy, so it stays
// roughly flat as jobs grow — sublinear total memory).  Verifies that
// every worker count produced the bit-identical merged result (the
// engine's determinism contract).  On a multicore host the stack campaign
// reaches >= 2x at --jobs 4; on a single hardware thread the rows
// collapse to ~1x, which is itself evidence that the parallel path adds
// no overhead.
//
// Also measures the durability tax: the same serial campaign with the
// supervisor's append-only journal enabled (one flushed entry per
// injection), cross-checked bit-identical and resumable.
//
// Knobs: KFI_INJECTIONS (default 2000), KFI_SEED, KFI_JOBS_MAX (default 4).
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "inject/journal.hpp"
#include "kernel/abi.hpp"
#include "kernel/layout.hpp"
#include "mem/phys_mem.hpp"

namespace {

using namespace kfi;

/// Per-injection "reboot" cost, fast (dirty-page) vs full-copy restore:
/// each rep dirties memory with one syscall (untimed intent; it is cheap
/// next to a full copy) and restores the boot snapshot (the measured op).
void report_reboot_cost(isa::Arch arch) {
  for (const bool fast : {true, false}) {
    kernel::MachineOptions opts;
    opts.fast_reboot = fast;
    kernel::Machine machine(arch, opts);
    auto& pm = machine.space().phys();
    constexpr u32 kReps = 200;
    const u64 pages_before = pm.restore_pages_copied();
    const auto t0 = std::chrono::steady_clock::now();
    for (u32 i = 0; i < kReps; ++i) {
      machine.syscall(kernel::Syscall::kGetpid);
      machine.restore(machine.boot_snapshot());
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kReps;
    const double pages =
        static_cast<double>(pm.restore_pages_copied() - pages_before) / kReps;
    std::printf(
        "reboot(%s, %s): %7.2f us/reboot  %6.1f pages copied (of %u)\n",
        isa::arch_name(arch).c_str(), fast ? "dirty-page" : "full-copy", us,
        pages, pm.num_pages());
  }
}

/// Journal overhead: serial campaign with every record flushed to the
/// append-only journal, vs the in-memory serial baseline.  Also proves
/// the journaled result is bit-identical and that a resume of the
/// completed journal replays it without executing anything.
int report_journal_cost(const inject::CampaignPlan& plan, u64 serial_fp,
                        double serial_seconds) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "kfi_scaling_bench.kfij")
          .string();
  std::filesystem::remove(path);
  {
    inject::InjectionJournal journal =
        inject::InjectionJournal::create(path, plan);
    inject::RunControl ctl;
    ctl.journal = &journal;
    const inject::CampaignResult result =
        inject::CampaignEngine(1).run(plan, {}, ctl);
    const u64 fp = inject::result_fingerprint(result);
    std::printf(
        "journal: run=%6.2fs  overhead=%+5.1f%%  %llu flushes  %.1f KiB  "
        "result=%s\n",
        result.throughput.run_seconds,
        serial_seconds > 0.0
            ? 100.0 * (result.throughput.run_seconds / serial_seconds - 1.0)
            : 0.0,
        static_cast<unsigned long long>(result.journal_flushes),
        static_cast<double>(std::filesystem::file_size(path)) / 1024.0,
        fp == serial_fp ? "bit-identical" : "DIVERGED");
    if (fp != serial_fp) {
      std::fprintf(stderr, "FATAL: journaled run diverged from serial\n");
      return 1;
    }
  }
  inject::InjectionJournal journal =
      inject::InjectionJournal::resume(path, plan);
  inject::RunControl ctl;
  ctl.journal = &journal;
  const inject::CampaignResult replayed =
      inject::CampaignEngine(1).run(plan, {}, ctl);
  std::filesystem::remove(path);
  if (inject::result_fingerprint(replayed) != serial_fp ||
      replayed.resumed_records != plan.targets.size()) {
    std::fprintf(stderr, "FATAL: journal replay diverged from serial\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  const u32 n = bench::env_u32("KFI_INJECTIONS", 2000);
  const u32 jobs_max = bench::env_u32("KFI_JOBS_MAX", 4);

  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    auto spec = bench::base_spec(arch, inject::CampaignKind::kStack, n);
    std::printf("== %s stack campaign, n=%u ==\n",
                isa::arch_name(arch).c_str(), spec.injections);
    const inject::CampaignPlan plan = inject::build_campaign_plan(spec);
    std::printf("plan: %.2fs (codegen + calibrate + profile + %zu targets)\n",
                plan.plan_seconds, plan.targets.size());

    double serial_seconds = 0.0;
    u64 serial_fp = 0;
    for (u32 jobs = 1; jobs <= jobs_max; jobs *= 2) {
      const inject::CampaignResult result =
          inject::CampaignEngine(jobs).run(plan);
      const u64 fp = inject::result_fingerprint(result);
      if (jobs == 1) {
        serial_seconds = result.throughput.run_seconds;
        serial_fp = fp;
      }
      const bool identical = fp == serial_fp;
      // COW proof: private pages per worker vs the full-image page count.
      // Sharing the boot snapshot means each worker holds only the pages
      // it dirtied since its last restore.
      const u32 total_pages =
          static_cast<u32>(kernel::kPhysBytes / mem::kPageSize);
      const double priv_per_worker =
          result.throughput.jobs > 0
              ? static_cast<double>(result.throughput.worker_private_pages) /
                    result.throughput.jobs
              : 0.0;
      std::printf(
          "jobs=%u  run=%6.2fs  %7.1f inj/s  %8.1f Msim-cyc/s  "
          "speedup=%.2fx  priv-pages/worker=%5.1f (max %u of %u)  "
          "result=%s\n",
          jobs, result.throughput.run_seconds,
          result.throughput.injections_per_second(result.records.size()),
          result.throughput.simulated_cycles_per_second() / 1e6,
          serial_seconds / result.throughput.run_seconds, priv_per_worker,
          result.throughput.max_worker_private_pages, total_pages,
          identical ? "bit-identical" : "DIVERGED");
      if (!identical) {
        std::fprintf(stderr, "FATAL: jobs=%u diverged from serial (fp %" PRIx64
                             " vs %" PRIx64 ")\n",
                     jobs, fp, serial_fp);
        return 1;
      }
    }
    if (report_journal_cost(plan, serial_fp, serial_seconds) != 0) return 1;
    report_reboot_cost(arch);
    std::printf("\n");
  }
  return 0;
}
