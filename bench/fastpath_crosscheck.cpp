// Fast-path cross-check: the predecoded-instruction cache, the dirty-page
// reboot, and superblock execution are pure speedups, so a campaign run
// with any of them disabled must produce the bit-identical merged result.
// This is the acceptance gate for those optimizations: one frozen plan per
// arch x campaign kind, executed with every knob combination, compared
// through inject::result_fingerprint.  Exits non-zero on any divergence.
//
// Knobs: KFI_INJECTIONS (default 96), KFI_SEED, KFI_JOBS.
#include <cinttypes>
#include <cstdio>

#include "bench_common.hpp"

using namespace kfi;

namespace {

struct Variant {
  const char* name;
  bool decode_cache;
  bool fast_reboot;
  bool superblock;
};

// Full cross of the three bit-exact perf knobs (COW is exercised
// separately by the parity tests: it changes restore mechanics, not the
// step path, and every engine run above jobs=1 already goes through it).
constexpr Variant kVariants[] = {
    {"cache+fast+sb", true, true, true},
    {"nocache      ", false, true, true},
    {"fullcopy     ", true, false, true},
    {"nosb         ", true, true, false},
    {"nocache+nosb ", false, true, false},
    {"fullcopy+nosb", true, false, false},
    {"cache-only   ", true, false, false},
    {"neither      ", false, false, false},
};

}  // namespace

int main() {
  const u32 n = bench::env_u32("KFI_INJECTIONS", 96);
  const u32 jobs = bench::env_jobs();
  bool ok = true;

  // CI guards on this count: adding a bit-exact knob must extend the
  // variant table (see .github/workflows).
  std::printf("variants=%zu\n", sizeof(kVariants) / sizeof(kVariants[0]));

  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    for (const auto kind :
         {inject::CampaignKind::kCode, inject::CampaignKind::kData,
          inject::CampaignKind::kStack, inject::CampaignKind::kRegister}) {
      auto spec = bench::base_spec(arch, kind, n);
      // The plan is knob-independent (calibration runs on a default
      // machine); build it once and only vary the workers' options.
      const inject::CampaignPlan plan = inject::build_campaign_plan(spec);
      u64 reference_fp = 0;
      std::printf("%s %-8s n=%u:", isa::arch_name(arch).c_str(),
                  campaign_kind_name(kind).c_str(), plan.spec.injections);
      for (const Variant& v : kVariants) {
        inject::CampaignPlan variant = plan;
        variant.spec.machine.decode_cache = v.decode_cache;
        variant.spec.machine.fast_reboot = v.fast_reboot;
        variant.spec.machine.superblock = v.superblock;
        const inject::CampaignResult result =
            inject::CampaignEngine(jobs).run(variant);
        const u64 fp = inject::result_fingerprint(result);
        if (v.decode_cache && v.fast_reboot && v.superblock) reference_fp = fp;
        const bool same = fp == reference_fp;
        std::printf(" %s=%s", v.name, same ? "ok" : "DIVERGED");
        if (!same) {
          ok = false;
          std::fprintf(stderr,
                       "FATAL: %s %s %s diverged (fp %" PRIx64 " vs %" PRIx64
                       ")\n",
                       isa::arch_name(arch).c_str(),
                       campaign_kind_name(kind).c_str(), v.name, fp,
                       reference_fp);
        }
      }
      std::printf("\n");
    }
  }
  std::printf("%s\n", ok ? "fast paths bit-identical" : "FAST PATHS DIVERGED");
  return ok ? 0 : 1;
}
