// Cascade analysis for forced syscall errors.
//
// Each errno run replays its frozen schedule of forced error returns while
// the workload's own per-op checks act as the deviation oracle: wl.check()
// compares every syscall result (and side effects) against the workload's
// model of what a fault-free kernel would have produced.  The tracker
// folds those per-op observations into a CascadeSummary:
//
//   cascade length   workload ops from the first forced error to the last
//                    observed deviation (the sriramz11 cascade metric, in
//                    ops rather than wall-clock)
//   containment      kContained  — deviations only at the forced ops
//                    kPropagated — deviation after the forced op, a failed
//                                  end-of-run state check, or a crash/hang
//                    kSilent     — the forced error produced no observable
//                                  deviation at all (absorbed)
//   error realism    checked_at_site: did the workload's check actually
//                    look at the forced return (a check failed at a forced
//                    op)?  Mirrors the "does anyone read this errno"
//                    realism tag of the kretprobe study.
#pragma once

#include "common/types.hpp"

namespace kfi::errnoinj {

enum class CascadeClass : u8 { kNone = 0, kContained, kPropagated, kSilent };

const char* cascade_class_name(CascadeClass c);

/// Per-injection digest of how far the forced error(s) spread.
struct CascadeSummary {
  u32 forced = 0;              ///< forced error returns delivered this run
  u32 first_forced_op = 0;     ///< workload op index of the first force
  u32 first_forced_syscall = 0;  ///< syscall nr of the first force
  u32 natural_ret = 0;         ///< return the kernel actually produced
  u32 forced_ret = 0;          ///< return the injector substituted
  u32 deviating_ops = 0;       ///< ops whose check() flagged a deviation
  u32 cascade_length = 0;      ///< ops from first force to last deviation
  CascadeClass containment = CascadeClass::kNone;
  bool checked_at_site = false;   ///< a check fired at a forced op
  bool state_deviation = false;   ///< end-of-run final_check failed
};

/// Streaming builder: the runner feeds one record_op per workload op.
class CascadeTracker {
 public:
  /// `forced_events` = forced errors delivered inside this op (usually 0
  /// or 1); `check_ok` = the workload's per-op check passed.
  void record_op(u32 op_index, u32 forced_events, bool check_ok);

  /// `completed` = the run reached the workload's end (no crash/hang);
  /// `final_ok` = the end-of-run state check passed; `total_ops` = ops
  /// executed before the run ended.
  CascadeSummary finalize(bool completed, bool final_ok, u32 total_ops) const;

 private:
  bool any_forced_ = false;
  u32 first_forced_op_ = 0;
  u32 forced_total_ = 0;
  u32 deviating_ops_ = 0;
  u32 last_deviating_op_ = 0;
  bool checked_at_site_ = false;
  bool deviation_off_site_ = false;
};

}  // namespace kfi::errnoinj
