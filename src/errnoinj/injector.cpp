#include "errnoinj/injector.hpp"

namespace kfi::errnoinj {

void ErrnoInjector::arm(std::vector<ScheduledError> schedule) {
  schedule_ = std::move(schedule);
  next_ = 0;
  eligible_seen_ = 0;
  forced_.clear();
}

void ErrnoInjector::disarm() { arm({}); }

bool ErrnoInjector::on_syscall_result(kernel::Syscall nr, u32* ret) {
  if (!model_.eligible(nr)) return false;
  const u32 idx = static_cast<u32>(eligible_seen_++);
  if (next_ >= schedule_.size() || schedule_[next_].index != idx) {
    return false;
  }
  ForcedError log;
  log.eligible_index = idx;
  log.syscall = static_cast<u32>(nr);
  log.natural_ret = *ret;
  log.forced_ret = schedule_[next_].ret;
  forced_.push_back(log);
  *ret = schedule_[next_].ret;
  ++next_;
  if (taint_ != nullptr) taint_->seed_register(result_slot_);
  return true;
}

}  // namespace kfi::errnoinj
