// ErrnoInjector: the SyscallResultHook that replays a frozen schedule of
// forced error returns.
//
// The plan pre-draws, per run, a sorted list of (eligible-invocation
// index, forced return) pairs.  At every completed syscall the hook
// counts eligible invocations (per the model's syscall mask) and, when
// the counter matches the next scheduled index, swaps the return value
// and seeds the taint engine at the result register — so the PR 5 shadow
// tracer follows the forced errno exactly as it follows a flipped bit.
// Everything is deterministic: the hook consumes no entropy and charges
// no cycles.
//
// An injector with a disabled model (or an empty schedule) declines every
// call; installing one must leave results bit-identical to a hook-free
// machine (the parity tests assert this).
#pragma once

#include <vector>

#include "errnoinj/errno_model.hpp"
#include "kernel/machine.hpp"
#include "trace/taint.hpp"

namespace kfi::errnoinj {

/// One planned forced error: at the `index`-th eligible invocation of the
/// run (0-based), force return value `ret`.
struct ScheduledError {
  u32 index = 0;
  u32 ret = kernel::kErrReturn;
};

/// Log entry for a force that actually happened.
struct ForcedError {
  u32 eligible_index = 0;
  u32 syscall = 0;
  u32 natural_ret = 0;
  u32 forced_ret = 0;
};

class ErrnoInjector final : public kernel::SyscallResultHook {
 public:
  ErrnoInjector(ErrnoModel model, trace::RegSlot result_slot)
      : model_(model), result_slot_(result_slot) {}

  /// Optional: seed forced results into the shadow tracer.
  void set_taint_engine(trace::TaintEngine* taint) { taint_ = taint; }

  /// Load this run's schedule (must be sorted by index, indices unique)
  /// and reset the invocation counter and force log.
  void arm(std::vector<ScheduledError> schedule);

  /// Drop the schedule; the hook declines every call until re-armed.
  void disarm();

  // kernel::SyscallResultHook
  bool on_syscall_result(kernel::Syscall nr, u32* ret) override;

  /// Eligible invocations observed since arm()/disarm().
  u64 eligible_seen() const { return eligible_seen_; }
  /// Forces delivered since arm()/disarm(), in delivery order.
  const std::vector<ForcedError>& forced() const { return forced_; }

 private:
  ErrnoModel model_;
  trace::RegSlot result_slot_;
  trace::TaintEngine* taint_ = nullptr;
  std::vector<ScheduledError> schedule_;
  size_t next_ = 0;
  u64 eligible_seen_ = 0;
  std::vector<ForcedError> forced_;
};

}  // namespace kfi::errnoinj
