#include "errnoinj/errno_model.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace kfi::errnoinj {

namespace {

struct SyscallEntry {
  const char* name;
  kernel::Syscall nr;
};

// The six fallible syscalls; yield/getpid cannot return an error in minux
// so forcing one would test a contract the kernel never exercises.
constexpr SyscallEntry kEligible[] = {
    {"read", kernel::Syscall::kRead},   {"write", kernel::Syscall::kWrite},
    {"alloc", kernel::Syscall::kAlloc}, {"free", kernel::Syscall::kFree},
    {"send", kernel::Syscall::kSend},   {"recv", kernel::Syscall::kRecv},
};

}  // namespace

u32 eligible_syscall_mask() {
  u32 mask = 0;
  for (const SyscallEntry& e : kEligible) {
    mask |= 1u << static_cast<u32>(e.nr);
  }
  return mask;
}

std::optional<u32> parse_syscall_list(const std::string& text,
                                      std::string* bad_token) {
  u32 mask = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string token =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (token.empty()) {
      if (bad_token) *bad_token = "(empty)";
      return std::nullopt;
    }
    if (token == "all") {
      mask |= eligible_syscall_mask();
      continue;
    }
    bool found = false;
    for (const SyscallEntry& e : kEligible) {
      if (token == e.name) {
        mask |= 1u << static_cast<u32>(e.nr);
        found = true;
        break;
      }
    }
    if (!found) {
      if (bad_token) *bad_token = token;
      return std::nullopt;
    }
  }
  return mask;
}

std::string syscall_name(u32 nr) {
  for (const SyscallEntry& e : kEligible) {
    if (static_cast<u32>(e.nr) == nr) return e.name;
  }
  switch (static_cast<kernel::Syscall>(nr)) {
    case kernel::Syscall::kYield: return "yield";
    case kernel::Syscall::kGetpid: return "getpid";
    default: break;
  }
  return "sys" + std::to_string(nr);
}

std::string syscall_list_name(u32 mask) {
  if ((mask & eligible_syscall_mask()) == eligible_syscall_mask()) {
    return "all";
  }
  std::string s;
  for (const SyscallEntry& e : kEligible) {
    if ((mask & (1u << static_cast<u32>(e.nr))) == 0) continue;
    if (!s.empty()) s += ',';
    s += e.name;
  }
  return s.empty() ? "(none)" : s;
}

void ErrnoModel::validate() const {
  if (!enabled()) {
    // Disabled models still refuse leftover knobs so a half-built CLI
    // state cannot silently drop its trigger settings.
    if (rate != 0.0) {
      throw ErrnoModelError(
          "errno model: --errno-rate set without --errno-syscalls, got " +
          std::to_string(rate));
    }
    return;
  }
  const u32 stray = syscalls & ~eligible_syscall_mask();
  if (stray != 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%x", stray);
    throw ErrnoModelError(
        std::string("errno model: syscall mask has ineligible bits ") + buf +
        " (eligible: read,write,alloc,free,send,recv)");
  }
  if (trigger == ErrnoTrigger::kNth) {
    if (rate != 0.0) {
      throw ErrnoModelError(
          "errno model: --errno-rate set on the nth trigger, got " +
          std::to_string(rate));
    }
  } else {
    if (!std::isfinite(rate) || rate <= 0.0) {
      throw ErrnoModelError(
          "errno model: --errno-rate must be a positive event count per "
          "run, got " +
          std::to_string(rate));
    }
    if (rate > 1024.0) {
      throw ErrnoModelError(
          "errno model: --errno-rate above 1024 events/run, got " +
          std::to_string(rate));
    }
    if (nth != kNthDraw) {
      throw ErrnoModelError(
          "errno model: --errno-nth set on the rate trigger, got " +
          std::to_string(nth));
    }
  }
}

std::string ErrnoModel::name() const {
  std::string s = "errno ";
  if (trigger == ErrnoTrigger::kNth) {
    s += nth == kNthDraw ? "nth" : ("nth=" + std::to_string(nth));
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "rate=%.3g/run", rate);
    s += buf;
  }
  if (value == ErrnoValue::kDrawnNegative) s += " drawn";
  s += "[" + syscall_list_name(syscalls) + "]";
  return s;
}

u64 errno_model_fingerprint(const ErrnoModel& model) {
  u64 h = 0xcbf29ce484222325ull;
  auto mix = [&h](u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  mix(model.syscalls);
  mix(static_cast<u64>(model.value));
  mix(static_cast<u64>(model.trigger));
  mix(model.nth);
  u64 rate_bits = 0;
  std::memcpy(&rate_bits, &model.rate, sizeof(rate_bits));
  mix(rate_bits);
  return h;
}

}  // namespace kfi::errnoinj
