#include "errnoinj/cascade.hpp"

namespace kfi::errnoinj {

const char* cascade_class_name(CascadeClass c) {
  switch (c) {
    case CascadeClass::kNone: return "none";
    case CascadeClass::kContained: return "contained";
    case CascadeClass::kPropagated: return "propagated";
    case CascadeClass::kSilent: return "silent";
  }
  return "?";
}

void CascadeTracker::record_op(u32 op_index, u32 forced_events,
                               bool check_ok) {
  if (forced_events > 0) {
    if (!any_forced_) {
      any_forced_ = true;
      first_forced_op_ = op_index;
    }
    forced_total_ += forced_events;
  }
  if (check_ok) return;
  // Deviations before the first force belong to some other fault source;
  // an errno run has none, so in practice this only counts post-force.
  if (!any_forced_) return;
  ++deviating_ops_;
  last_deviating_op_ = op_index;
  if (forced_events > 0) {
    checked_at_site_ = true;
  } else {
    deviation_off_site_ = true;
  }
}

CascadeSummary CascadeTracker::finalize(bool completed, bool final_ok,
                                        u32 total_ops) const {
  CascadeSummary s;
  s.forced = forced_total_;
  s.first_forced_op = first_forced_op_;
  s.deviating_ops = deviating_ops_;
  s.checked_at_site = checked_at_site_;
  s.state_deviation = completed && !final_ok;
  if (!any_forced_) {
    s.containment = CascadeClass::kNone;
    return s;
  }
  if (!completed) {
    // Crash or hang after the force: the error escaped the workload's
    // control entirely.  Length runs to the end of the truncated run.
    s.containment = CascadeClass::kPropagated;
    const u32 end = total_ops > first_forced_op_ ? total_ops : first_forced_op_ + 1;
    s.cascade_length = end - first_forced_op_;
    return s;
  }
  if (deviating_ops_ == 0 && final_ok) {
    s.containment = CascadeClass::kSilent;
    s.cascade_length = 0;
    return s;
  }
  if (!deviation_off_site_ && final_ok) {
    // Every deviation sat exactly at a forced op and the end-of-run state
    // matched: the workload observed the error and absorbed it.
    s.containment = CascadeClass::kContained;
    s.cascade_length =
        deviating_ops_ > 0 ? last_deviating_op_ - first_forced_op_ + 1 : 0;
    return s;
  }
  s.containment = CascadeClass::kPropagated;
  const u32 last = deviating_ops_ > 0 ? last_deviating_op_ + 1 : total_ops;
  s.cascade_length =
      last > first_forced_op_ ? last - first_forced_op_ : 1;
  return s;
}

}  // namespace kfi::errnoinj
