// ErrnoModel: which syscall error returns get forced, and when.
//
// The errno campaign family corrupts nothing physical.  Instead it forces
// error returns at minux's syscall boundary — the dominant real-world
// error channel — and measures how far each forced error cascades through
// the workload (sriramz11's kretprobe/errno study is the model; see
// PAPERS.md).  Mirroring inject::FaultModel, everything the model decides
// is frozen into the CampaignPlan at plan time: the runner only replays a
// pre-drawn (eligible-invocation index, forced return) schedule, so errno
// campaigns stay deterministic and resumable.
//
//   syscalls  bitmask of eligible kernel::Syscall numbers; only the six
//             fallible calls (read/write/alloc/free/send/recv) may be
//             targeted — yield and getpid cannot fail in minux.
//   value     kErrReturn forces the kernel's reserved -1; kDrawnNegative
//             draws a negative errno-style code in [-34, -1] from the
//             plan RNG per scheduled event.
//   trigger   kNth   one forced error per run at the nth eligible
//                    invocation (nth == kNthDraw -> drawn per run);
//             kRate  a Poisson-distributed event count per run, reusing
//                    Rng::poisson exactly like FaultTrigger::kRate.
#pragma once

#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"
#include "kernel/abi.hpp"

namespace kfi::errnoinj {

enum class ErrnoValue : u8 { kErrReturn = 0, kDrawnNegative };
enum class ErrnoTrigger : u8 { kNth = 0, kRate };

/// Typed failure for an inconsistent or out-of-range errno model (bad CLI
/// knobs, empty syscall set, rate on an nth-trigger model, ...).
class ErrnoModelError : public Error {
 public:
  explicit ErrnoModelError(const std::string& what) : Error(what) {}
};

struct ErrnoModel {
  /// Sentinel for `nth`: draw the invocation index per run at plan time.
  static constexpr u32 kNthDraw = 0xFFFFFFFFu;

  /// Bitmask over kernel::Syscall numbers (bit `1u << nr`).  Zero means
  /// the model is disabled (no errno campaign).
  u32 syscalls = 0;
  ErrnoValue value = ErrnoValue::kErrReturn;
  ErrnoTrigger trigger = ErrnoTrigger::kNth;
  /// kNth: 0-based eligible-invocation index to force, or kNthDraw.
  u32 nth = kNthDraw;
  /// kRate: expected forced errors per run (> 0, <= 1024).
  double rate = 0.0;

  bool enabled() const { return syscalls != 0; }
  bool eligible(kernel::Syscall nr) const {
    const u32 n = static_cast<u32>(nr);
    return n < 32 && (syscalls & (1u << n)) != 0;
  }

  /// Throws ErrnoModelError if the model is inconsistent.  A disabled
  /// model (syscalls == 0) is always valid.
  void validate() const;

  /// Human-readable tag, e.g. "errno nth[read,write]" (report headers).
  std::string name() const;
};

/// Bitmask of the syscalls an errno model may target (the six fallible
/// calls: read, write, alloc, free, send, recv).
u32 eligible_syscall_mask();

/// Parse a comma-separated syscall list ("read,write" or "all") into a
/// mask.  Returns nullopt on a bad token and stores it in *bad_token.
std::optional<u32> parse_syscall_list(const std::string& text,
                                      std::string* bad_token);

/// Lower-case name of one syscall number ("read", ...; "sys<N>" fallback).
std::string syscall_name(u32 nr);

/// Render a mask back to "read,write" form ("all" for the full set).
std::string syscall_list_name(u32 mask);

/// Stable 64-bit digest of every model field; mixed into plan and journal
/// fingerprints so a resume under a different errno model is refused.
u64 errno_model_fingerprint(const ErrnoModel& model);

}  // namespace kfi::errnoinj
