// Crash-cause taxonomy: the union of the paper's Table 3 (Pentium 4) and
// Table 4 (PowerPC G4) categories, plus the mapping from raw architectural
// traps to those categories.
//
// The mapping encodes the OS-level classification the paper's crash
// handlers performed: on the P4 a page fault below the first page is a
// "NULL pointer" and anything else is "bad paging"; on the G4 the
// exception-entry wrapper reclassifies any exception taken with the stack
// pointer outside the current kernel stack as "stack overflow" — the
// category the P4 lacks entirely (Sections 5.1 and 6).
#pragma once

#include <string>

#include "cisca/cause.hpp"
#include "common/types.hpp"
#include "isa/arch.hpp"
#include "isa/trap.hpp"
#include "riscf/cause.hpp"

namespace kfi::kernel {

enum class CrashCause : u8 {
  // Pentium 4 categories (Table 3).
  kNullPointer = 0,     // kernel NULL pointer dereference
  kBadPaging,           // other bad page access
  kInvalidInstruction,  // P4 naming of undefined-encoding execution
  kGeneralProtection,
  kKernelPanic,
  kInvalidTss,
  kDivideError,
  kBoundsTrap,
  // PowerPC G4 categories (Table 4).
  kBadArea,             // kernel access of bad area
  kIllegalInstruction,  // G4 naming of undefined-encoding execution
  kStackOverflow,       // produced by the kernel's exception-entry wrapper
  kMachineCheck,
  kAlignment,
  kBusError,            // protection fault
  kBadTrap,             // unknown exception
  kNumCauses,
};

std::string crash_cause_name(CrashCause cause);

/// True for the invalid-memory-access causes the paper groups together in
/// its analysis (NULL pointer + bad paging on P4; bad area on G4).
bool is_invalid_memory_access(CrashCause cause);

struct CrashReport {
  CrashCause cause = CrashCause::kKernelPanic;
  Addr pc = 0;
  Addr addr = 0;
  bool has_addr = false;
  Cycles cycles_to_crash = 0;  // filled by the injection framework
  std::string detail;
};

/// Classify a fatal cisca trap the way the P4 Linux kernel would.
CrashCause classify_cisca(const isa::Trap& trap);

/// Classify a fatal riscf trap the way the G4 Linux kernel would.
/// `sp_out_of_range` is the verdict of the exception-entry checking
/// wrapper (true => reclassified as stack overflow).
CrashCause classify_riscf(const isa::Trap& trap, bool sp_out_of_range);

}  // namespace kfi::kernel
