#include "kernel/crash.hpp"

#include "common/error.hpp"

namespace kfi::kernel {

std::string crash_cause_name(CrashCause cause) {
  switch (cause) {
    case CrashCause::kNullPointer: return "NULL Pointer";
    case CrashCause::kBadPaging: return "Bad Paging";
    case CrashCause::kInvalidInstruction: return "Invalid Instruction";
    case CrashCause::kGeneralProtection: return "General Protection Fault";
    case CrashCause::kKernelPanic: return "Kernel Panic";
    case CrashCause::kInvalidTss: return "Invalid TSS";
    case CrashCause::kDivideError: return "Divide Error";
    case CrashCause::kBoundsTrap: return "Bounds Trap";
    case CrashCause::kBadArea: return "Bad Area";
    case CrashCause::kIllegalInstruction: return "Illegal Instruction";
    case CrashCause::kStackOverflow: return "Stack Overflow";
    case CrashCause::kMachineCheck: return "Machine Check";
    case CrashCause::kAlignment: return "Alignment";
    case CrashCause::kBusError: return "Bus Error";
    case CrashCause::kBadTrap: return "Bad Trap";
    case CrashCause::kNumCauses: break;
  }
  return "unknown";
}

bool is_invalid_memory_access(CrashCause cause) {
  return cause == CrashCause::kNullPointer || cause == CrashCause::kBadPaging ||
         cause == CrashCause::kBadArea;
}

CrashCause classify_cisca(const isa::Trap& trap) {
  switch (static_cast<cisca::Cause>(trap.cause)) {
    case cisca::Cause::kPageFault:
      // Linux/x86 distinguishes "unable to handle kernel NULL pointer
      // dereference" from other paging requests by the fault address.
      return trap.addr < 4096 ? CrashCause::kNullPointer
                              : CrashCause::kBadPaging;
    case cisca::Cause::kInvalidOpcode:
      return CrashCause::kInvalidInstruction;
    case cisca::Cause::kGeneralProtection:
      return CrashCause::kGeneralProtection;
    case cisca::Cause::kInvalidTss:
      return CrashCause::kInvalidTss;
    case cisca::Cause::kDivideError:
      return CrashCause::kDivideError;
    case cisca::Cause::kBoundsTrap:
      return CrashCause::kBoundsTrap;
    case cisca::Cause::kBreakpointTrap:
    case cisca::Cause::kKernelPanic:
      return CrashCause::kKernelPanic;
    default:
      KFI_CHECK(false, "classify_cisca on non-fatal trap");
      return CrashCause::kKernelPanic;
  }
}

CrashCause classify_riscf(const isa::Trap& trap, bool sp_out_of_range) {
  // The wrapper runs before any handler: a corrupted kernel stack pointer
  // is reported as Stack Overflow regardless of which exception fired.
  if (sp_out_of_range) return CrashCause::kStackOverflow;
  switch (static_cast<riscf::Cause>(trap.cause)) {
    case riscf::Cause::kDataStorage:
    case riscf::Cause::kInstrStorage:
      return CrashCause::kBadArea;
    case riscf::Cause::kIllegalInstruction:
      return CrashCause::kIllegalInstruction;
    case riscf::Cause::kMachineCheck:
      return CrashCause::kMachineCheck;
    case riscf::Cause::kAlignment:
      return CrashCause::kAlignment;
    case riscf::Cause::kProtection:
      return CrashCause::kBusError;
    case riscf::Cause::kTrapWord:
    case riscf::Cause::kPrivileged:
      return CrashCause::kBadTrap;
    case riscf::Cause::kKernelPanic:
      return CrashCause::kKernelPanic;
    default:
      KFI_CHECK(false, "classify_riscf on non-fatal trap");
      return CrashCause::kKernelPanic;
  }
}

}  // namespace kfi::kernel
