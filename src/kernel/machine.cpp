#include "kernel/machine.hpp"

#include <unordered_map>

#include "cisca/cpu.hpp"
#include "cisca/regs.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "kernel/program.hpp"
#include "riscf/cpu.hpp"
#include "riscf/regs.hpp"

namespace kfi::kernel {

namespace {

constexpr u32 kPercpuBase = 0xC0003000u;

/// Map from pc to function index, built once per machine for profiling.
std::unordered_map<Addr, u32> build_entry_map(const kir::Image& image) {
  std::unordered_map<Addr, u32> map;
  for (u32 i = 0; i < image.functions.size(); ++i) {
    map[image.functions[i].addr] = i;
  }
  return map;
}

}  // namespace

kir::Image build_kernel_image(isa::Arch arch, bool spinlock_debug) {
  auto backend = arch == isa::Arch::kCisca
                     ? kir::make_cisca_backend(kTextBase, kDataBase)
                     : kir::make_riscf_backend(kTextBase, kDataBase);
  backend->set_spinlock_checks(spinlock_debug);
  build_kernel(*backend);
  return backend->finish();
}

kir::ImagePtr build_shared_kernel_image(isa::Arch arch, bool spinlock_debug) {
  return std::make_shared<const kir::Image>(
      build_kernel_image(arch, spinlock_debug));
}

trace::RegSlot syscall_result_slot(isa::Arch arch) {
  return arch == isa::Arch::kCisca ? static_cast<trace::RegSlot>(cisca::kEax)
                                   : static_cast<trace::RegSlot>(3);
}

Machine::Machine(isa::Arch arch, MachineOptions options)
    : Machine(arch, options,
              build_shared_kernel_image(arch, options.spinlock_debug)) {}

Machine::Machine(isa::Arch arch, MachineOptions options, kir::ImagePtr image)
    : arch_(arch),
      options_(options),
      space_(kPhysBytes, arch == isa::Arch::kCisca ? mem::Endian::kLittle
                                                   : mem::Endian::kBig),
      image_(std::move(image)),
      rng_(options.seed) {
  KFI_CHECK(image_ != nullptr, "Machine requires a built kernel image");
  KFI_CHECK(image_->arch == arch, "kernel image built for a different arch");
  helper_backend_ = arch == isa::Arch::kCisca
                        ? kir::make_cisca_backend(kTextBase, kDataBase)
                        : kir::make_riscf_backend(kTextBase, kDataBase);
  if (arch == isa::Arch::kCisca) {
    cisca::CiscaCpu::Options copts;
    copts.stack_limit_check = options.p4_stack_limit_check;
    auto cpu = std::make_unique<cisca::CiscaCpu>(space_, copts);
    cisca_cpu_ = cpu.get();
    cpu_ = std::move(cpu);
  } else {
    auto cpu = std::make_unique<riscf::RiscfCpu>(space_);
    riscf_cpu_ = cpu.get();
    cpu_ = std::move(cpu);
  }
  cpu_->set_decode_cache_enabled(options.decode_cache);
  cpu_->set_superblocks_enabled(options.superblock);
  space_.phys().set_cow_enabled(options.cow_memory);
  entry_map_ = build_entry_map(*image_);
  boot();
}

Machine::Machine(isa::Arch arch, MachineOptions options, kir::ImagePtr image,
                 const MachineSnapshot& boot_snap)
    : arch_(arch),
      options_(options),
      space_(kPhysBytes, arch == isa::Arch::kCisca ? mem::Endian::kLittle
                                                   : mem::Endian::kBig),
      image_(std::move(image)),
      rng_(options.seed) {
  KFI_CHECK(image_ != nullptr, "Machine requires a built kernel image");
  KFI_CHECK(image_->arch == arch, "kernel image built for a different arch");
  helper_backend_ = arch == isa::Arch::kCisca
                        ? kir::make_cisca_backend(kTextBase, kDataBase)
                        : kir::make_riscf_backend(kTextBase, kDataBase);
  if (arch == isa::Arch::kCisca) {
    cisca::CiscaCpu::Options copts;
    copts.stack_limit_check = options.p4_stack_limit_check;
    auto cpu = std::make_unique<cisca::CiscaCpu>(space_, copts);
    cisca_cpu_ = cpu.get();
    cpu_ = std::move(cpu);
  } else {
    auto cpu = std::make_unique<riscf::RiscfCpu>(space_);
    riscf_cpu_ = cpu.get();
    cpu_ = std::move(cpu);
  }
  cpu_->set_decode_cache_enabled(options.decode_cache);
  cpu_->set_superblocks_enabled(options.superblock);
  space_.phys().set_cow_enabled(options.cow_memory);
  entry_map_ = build_entry_map(*image_);

  // Boot by adoption: establish the address-space layout and cached
  // symbols, then take ALL memory and CPU state from the donor snapshot.
  // No image-load writes happen, so with COW on this machine starts with
  // zero private pages.
  map_address_space();
  dispatch_entry_ = image_->function(KernelEntryPoints::kDispatch).addr;
  timer_entry_ = image_->function(KernelEntryPoints::kTimerTick).addr;
  current_addr_ = image_->object("current").addr;
  if (cisca_cpu_ != nullptr) {
    cisca_cpu_->set_stack_bounds(
        kStackRegion, kStackRegion + kNumTasks * stack_slot(arch_));
  }
  profile_counts_.assign(image_->functions.size(), 0);
  boot_snapshot_ = boot_snap;
  restore(boot_snap);
  if (riscf_cpu_ != nullptr) {
    // The boot-time SPRG2 value the exception prologue's stack switch is
    // checked against (the donor recorded the same value at its boot).
    expected_sprg2_ = riscf_cpu_->regs().sprg[2];
  }
}

Machine::~Machine() = default;

void Machine::map_address_space() {
  // --- address space layout ---
  // 2004-era MMUs had no per-page no-execute: any readable kernel page is
  // executable, so a corrupted jump into data or stack executes whatever
  // bytes are there (a major Invalid/Illegal Instruction source).
  space_.note_unmapped("null_page", 0, 4096);
  space_.map_region("percpu", kPercpuBase, 4096,
                    {.read = true, .write = true, .execute = true});
  space_.map_region("glue", kGlueBase, 4096,
                    {.read = true, .write = false, .execute = true});
  space_.map_region("text", kTextBase,
                    (static_cast<u32>(image_->code.size()) + 4095) & ~4095u,
                    {.read = true, .write = false, .execute = true});
  space_.map_region("data", kDataBase,
                    (static_cast<u32>(image_->data.size()) + 8191) & ~4095u,
                    {.read = true, .write = true, .execute = true});
  for (u32 t = 0; t < kNumTasks; ++t) {
    space_.note_unmapped("stack_guard" + std::to_string(t),
                         stack_base(arch_, t) - 4096, 4096);
    space_.map_region("stack" + std::to_string(t), stack_base(arch_, t),
                      stack_size(arch_),
                      {.read = true, .write = true, .execute = true});
  }
  space_.map_region("user_buffers", kUserBufBase, kUserBufSize,
                    {.read = true, .write = true, .execute = true});
  space_.map_region("local_bus", kBusRegion, kBusRegionSize, {.bus = true});
}

void Machine::boot() {
  map_address_space();

  // --- load image ---
  space_.vwrite_bytes(kTextBase, image_->code.data(),
                      static_cast<u32>(image_->code.size()));
  space_.vwrite_bytes(kDataBase, image_->data.data(),
                      static_cast<u32>(image_->data.size()));
  write_glue_stubs();

  dispatch_entry_ = image_->function(KernelEntryPoints::kDispatch).addr;
  timer_entry_ = image_->function(KernelEntryPoints::kTimerTick).addr;
  current_addr_ = image_->object("current").addr;

  // --- boot-time task setup (the bootloader's job) ---
  const char* thread_entries[kNumTasks] = {
      nullptr, KernelEntryPoints::kKupdate, KernelEntryPoints::kKjournald,
      KernelEntryPoints::kKsoftirqd};
  for (u32 t = 0; t < kNumTasks; ++t) {
    write_global("task_structs", stack_base(arch_, t), t, "stack_base");
    write_global("task_structs", stack_top(arch_, t), t, "stack_top");
    Addr sp = stack_top(arch_, t);
    if (thread_entries[t] != nullptr) {
      const Addr entry = image_->function(thread_entries[t]).addr;
      sp = helper_backend_->prepare_initial_stack(
          space_, stack_top(arch_, t), entry);
    }
    write_global("task_structs", sp, t, "sp");
  }

  // --- CPU initial state ---
  if (cisca_cpu_ != nullptr) {
    cisca_cpu_->regs().gpr[cisca::kEsp] = stack_top(arch_, 0);
    cisca_cpu_->set_stack_bounds(
        kStackRegion, kStackRegion + kNumTasks * stack_slot(arch_));
  } else {
    riscf_cpu_->regs().gpr[riscf::kSp] = stack_top(arch_, 0);
    riscf_cpu_->regs().gpr[13] = kDataBase;  // small-data base
    expected_sprg2_ = riscf_cpu_->regs().sprg[2];
  }
  cpu_->set_pc(glue_addr(kGlueSyscallReturn));

  next_timer_ = options_.timer_period;
  profile_counts_.assign(image_->functions.size(), 0);

  boot_snapshot_ = snapshot();
}

void Machine::write_glue_stubs() {
  if (arch_ == isa::Arch::kCisca) {
    const u8 stub[2] = {0xCD, 0x83};  // int 0x83
    for (const u32 off : {kGlueSyscallReturn, kGlueIsrReturn}) {
      space_.phys().write_bytes(
          space_.translate(kGlueBase + off, 1, mem::Access::kRead).phys, stub,
          2);
    }
  } else {
    for (const u32 off : {kGlueSyscallReturn, kGlueIsrReturn}) {
      space_.phys().write32(
          space_.translate(kGlueBase + off, 4, mem::Access::kRead).phys,
          0x44000002u, mem::Endian::kBig);  // sc
    }
  }
}

u64 Machine::jitter(u64 lo, u64 hi) { return rng_.range(lo, hi); }

bool Machine::interrupts_enabled() const {
  if (cisca_cpu_ != nullptr) {
    return test_bit(cisca_cpu_->regs().eflags, cisca::kFlagIF);
  }
  return (riscf_cpu_->regs().msr & riscf::kMsrEE) != 0;
}

namespace {

/// Where the field's VALUE lives within its storage slot: at the slot's
/// start on the little-endian machine (storage == width there anyway) and
/// at the slot's end on the big-endian one (word-per-item layout).
u32 value_offset(isa::Arch arch, const kir::FieldLayout& f) {
  if (arch == isa::Arch::kCisca) return 0;
  return f.storage_bytes - static_cast<u32>(f.width);
}

}  // namespace

u32 Machine::read_global(const std::string& object, u32 index,
                         const std::string& field) const {
  const kir::DataObject& obj = image_->object(object);
  const kir::FieldLayout& f =
      field.empty() ? obj.field(0) : obj.field_named(field);
  const Addr addr = obj.addr + index * obj.elem_size + f.offset +
                    value_offset(arch_, f);
  switch (static_cast<u32>(f.width)) {
    case 1: return space_.vread8(addr);
    case 2: return space_.vread16(addr);
    default: return space_.vread32(addr);
  }
}

void Machine::write_global(const std::string& object, u32 value, u32 index,
                           const std::string& field) {
  const kir::DataObject& obj = image_->object(object);
  const kir::FieldLayout& f =
      field.empty() ? obj.field(0) : obj.field_named(field);
  const Addr addr = obj.addr + index * obj.elem_size + f.offset +
                    value_offset(arch_, f);
  switch (static_cast<u32>(f.width)) {
    case 1: space_.vwrite8(addr, static_cast<u8>(value)); break;
    case 2: space_.vwrite16(addr, static_cast<u16>(value)); break;
    default: space_.vwrite32(addr, value); break;
  }
}

Addr Machine::global_field_addr(const std::string& object, u32 index,
                                const std::string& field) const {
  const kir::DataObject& obj = image_->object(object);
  const kir::FieldLayout& f =
      field.empty() ? obj.field(0) : obj.field_named(field);
  return obj.addr + index * obj.elem_size + f.offset;
}

u32 Machine::current_task() const { return space_.vread32(current_addr_); }

void Machine::set_profiling(bool enabled) { profiling_ = enabled; }

void Machine::set_trace_sink(trace::TraceSink* sink) {
  trace_ = sink;
  cpu_->set_trace_sink(sink);
}

void Machine::begin_syscall(Syscall nr, u32 a0, u32 a1, u32 a2) {
  KFI_CHECK(idle(), "begin_syscall while machine busy");
  // Simulated user-mode time since the last kernel entry.
  const u64 mean = options_.user_cycles_mean;
  const u64 user = jitter(mean / 2, mean + mean / 2);
  user_cycles_total_ += user;
  cpu_->add_cycles(user);
  while (next_timer_ <= cpu_->cycles()) {
    ++pending_user_ticks_;
    next_timer_ += options_.timer_period;
  }
  pending_syscall_ = PendingSyscall{static_cast<u32>(nr), a0, a1, a2};
}

bool Machine::sp_out_of_any_stack(Addr sp) const {
  for (u32 t = 0; t < kNumTasks; ++t) {
    if (sp > stack_base(arch_, t) && sp <= stack_top(arch_, t)) return false;
  }
  return true;
}

Event Machine::make_crash_event(const isa::Trap& trap) {
  Event event;
  CrashReport report;
  report.pc = trap.pc;
  report.addr = trap.addr;
  report.has_addr = trap.has_addr;

  // Stage 2 (Figure 3): hardware exception handling, >1000 cycles.  The
  // deep-pipeline P4 pays far more here than the G4 — the paper's own
  // worked examples show an immediate NULL dereference costing 12,864
  // cycles end-to-end on the P4 (Figure 8) versus 1,592 on the G4
  // (Figure 9).
  if (arch_ == isa::Arch::kCisca) {
    cpu_->add_cycles(jitter(2500, 8000));
  } else {
    cpu_->add_cycles(jitter(1000, 1600));
  }

  if (arch_ == isa::Arch::kRiscf) {
    const auto cause = static_cast<riscf::Cause>(trap.cause);
    if (cause == riscf::Cause::kMachineCheck && trap.aux == 1) {
      event.kind = EventKind::kCheckstop;
      report.cause = CrashCause::kMachineCheck;
      report.detail = "checkstop: machine check with MSR.ME cleared";
      event.crash = report;
      return event;
    }
    // The kernel's exception-entry checking wrapper (Section 6): examine
    // the stack pointer before running any handler.
    bool sp_bad = false;
    if (options_.g4_stack_wrapper) {
      cpu_->add_cycles(jitter(40, 90));  // wrapper cost: fast detection
      sp_bad = sp_out_of_any_stack(cpu_->stack_pointer());
    }
    report.cause = classify_riscf(trap, sp_bad);
    if (!sp_bad) {
      // Stage 3: the software exception handler, 150-200 instructions.
      cpu_->add_cycles(jitter(225, 320));
    }
    report.detail = riscf::cause_name(cause);
  } else {
    report.cause = classify_cisca(trap);
    cpu_->add_cycles(jitter(700, 1800));  // the P4 kernel's longer handler
    report.detail = cisca::cause_name(static_cast<cisca::Cause>(trap.cause));
  }
  report.cycles_to_crash = cpu_->cycles();  // absolute; caller re-bases
  event.kind = EventKind::kCrash;
  event.crash = report;
  return event;
}

namespace {

/// Build the architecture's fault for a failed runtime (glue) access.
isa::Trap glue_access_fault(isa::Arch arch, Addr addr, bool is_write, Addr pc) {
  isa::Trap trap;
  trap.pc = pc;
  trap.addr = addr;
  trap.has_addr = true;
  if (arch == isa::Arch::kCisca) {
    trap.cause = static_cast<u32>(cisca::Cause::kPageFault);
  } else {
    trap.cause = static_cast<u32>((addr & 3) != 0
                                      ? riscf::Cause::kAlignment
                                      : riscf::Cause::kDataStorage);
  }
  (void)is_write;
  return trap;
}

}  // namespace

void Machine::setup_syscall_frame(const PendingSyscall& req) {
  current_syscall_nr_ = req.nr;
  cpu_->add_cycles(jitter(150, 260));  // kernel entry cost
  if (cisca_cpu_ != nullptr) {
    auto& regs = cisca_cpu_->regs();
    // int 0x80 vectors through the IDT; a relocated table or a limit that
    // cuts off the used vectors is fatal here.  (Limit flips that only
    // grow the table, or shrink it above the last used vector, are
    // harmless — most IDTR_LIMIT bits are inconsequential.)
    if (regs.idtr_base != 0xC0002800u || regs.idtr_limit < 0x420u) {
      isa::Trap trap;
      trap.cause = static_cast<u32>(cisca::Cause::kGeneralProtection);
      trap.pc = regs.eip;
      trap.aux = regs.idtr_base;
      fatal_pending_ = trap;
      return;
    }
    // Entering the kernel reloads the task's segment state from the TSS
    // (paper footnote 6: FS and GS are stored per context switch), so a
    // flip that landed in these registers is overwritten unless something
    // consumed it first.
    regs.fs = 0x30;
    regs.gs = 0x38;
    if (trace_ != nullptr) {
      trace_->on_glue_reg_set(cisca::kSlotFs);
      trace_->on_glue_reg_set(cisca::kSlotGs);
    }
    Addr sp = stack_top(arch_, 0);
    const u32 words[5] = {req.nr, req.a0, req.a1, req.a2,
                          glue_addr(kGlueSyscallReturn)};
    for (const u32 w : words) {
      sp -= 4;
      space_.vwrite32(sp, w);
      if (trace_ != nullptr) {
        // Frame words come from outside the simulation: always clean.
        trace_->on_glue_mem_set(
            space_.translate(sp, 4, mem::Access::kWrite).phys, 4);
      }
    }
    regs.gpr[cisca::kEsp] = sp;
    regs.eip = dispatch_entry_;
    if (trace_ != nullptr) {
      trace_->on_glue_reg_set(cisca::kEsp);
      trace_->on_glue_reg_set(cisca::kSlotEip);
    }
  } else {
    auto& regs = riscf_cpu_->regs();
    regs.gpr[riscf::kSp] = stack_top(arch_, 0) - 16;
    regs.gpr[3] = req.nr;
    regs.gpr[4] = req.a0;
    regs.gpr[5] = req.a1;
    regs.gpr[6] = req.a2;
    regs.lr = glue_addr(kGlueSyscallReturn);
    if (trace_ != nullptr) {
      trace_->on_glue_reg_set(riscf::kSp);
      for (u16 g = 3; g <= 6; ++g) trace_->on_glue_reg_set(g);
      trace_->on_glue_reg_set(riscf::kSlotLr);
      // SRR0/SRR1 capture live state: their shadow moves with the value.
      trace_->on_glue_reg_copy(riscf::kSlotSrr0, riscf::kSlotPc);
      trace_->on_glue_reg_copy(riscf::kSlotSrr1, riscf::kSlotMsr);
      trace_->on_glue_reg_set(riscf::kSlotPc);
    }
    regs.srr0 = regs.pc;
    regs.srr1 = regs.msr;
    regs.pc = dispatch_entry_;
  }
  if (trace_ != nullptr) {
    trace_->on_priv_transition(trace::PrivEvent::kSyscallEntry);
  }
  glue_stack_.push_back(GlueFrame{GlueKind::kSyscall, /*from_user=*/true});
  syscall_active_ = true;
}

void Machine::enter_isr(bool from_user) {
  cpu_->add_cycles(jitter(150, 260));
  if (cisca_cpu_ != nullptr) {
    auto& regs = cisca_cpu_->regs();
    if (regs.idtr_base != 0xC0002800u || regs.idtr_limit < 0x420u) {
      isa::Trap trap;
      trap.cause = static_cast<u32>(cisca::Cause::kGeneralProtection);
      trap.pc = regs.eip;
      trap.aux = regs.idtr_base;
      fatal_pending_ = trap;
      return;
    }
    Addr sp = from_user ? stack_top(arch_, 0) : regs.gpr[cisca::kEsp];
    // Interrupted context saved in simulated stack memory (so injected
    // stack errors can corrupt it): eflags, eip, eax, ecx, edx.
    const u32 words[6] = {regs.eflags,           regs.eip,
                          regs.gpr[cisca::kEax], regs.gpr[cisca::kEcx],
                          regs.gpr[cisca::kEdx], glue_addr(kGlueIsrReturn)};
    static constexpr trace::RegSlot kSaveSlots[6] = {
        cisca::kSlotEflags, cisca::kSlotEip, cisca::kEax,
        cisca::kEcx,        cisca::kEdx,     trace::kNoSlot};
    for (u32 i = 0; i < 6; ++i) {
      sp -= 4;
      const auto tr = space_.translate(sp, 4, mem::Access::kWrite);
      if (!tr.ok()) {
        fatal_pending_ = glue_access_fault(arch_, sp, true, regs.eip);
        return;
      }
      space_.phys().write32(tr.phys, words[i], mem::Endian::kLittle);
      if (trace_ != nullptr) {
        if (kSaveSlots[i] != trace::kNoSlot) {
          trace_->on_ctx_save(kSaveSlots[i], tr.phys);
        } else {
          trace_->on_glue_mem_set(tr.phys, 4);  // stub return address
        }
      }
    }
    regs.gpr[cisca::kEsp] = sp;
    regs.eip = timer_entry_;
    if (trace_ != nullptr) {
      if (from_user) trace_->on_glue_reg_set(cisca::kEsp);
      trace_->on_glue_reg_set(cisca::kSlotEip);
      trace_->on_priv_transition(trace::PrivEvent::kIsrEntry);
    }
  } else {
    auto& regs = riscf_cpu_->regs();
    if (from_user) {
      // The low-level exception prologue switches stacks through SPRG2
      // (the paper's SPR274).  If it has been corrupted, the processor
      // ends up fetching from wherever it points (Section 5.2).
      if (regs.sprg[2] != expected_sprg2_) {
        regs.pc = regs.sprg[2];
        if (trace_ != nullptr) {
          // The corrupted stack-switch base becomes the fetch address.
          trace_->on_glue_reg_copy(riscf::kSlotPc,
                                   riscf::kSlotSprg0 + 2);
          trace_->on_priv_transition(trace::PrivEvent::kIsrEntry);
        }
        glue_stack_.push_back(GlueFrame{GlueKind::kIsr, from_user});
        return;
      }
      regs.gpr[riscf::kSp] = stack_top(arch_, 0);
      if (trace_ != nullptr) trace_->on_glue_reg_set(riscf::kSp);
    }
    const Addr old_sp = regs.gpr[riscf::kSp];
    const Addr frame = old_sp - 72;
    u32 words[18];
    words[0] = old_sp;  // back chain
    words[1] = regs.msr;
    words[2] = regs.gpr[0];  // r0 is live across prologue/epilogue pairs
    for (u32 i = 0; i < 10; ++i) words[3 + i] = regs.gpr[3 + i];
    words[13] = regs.lr;
    words[14] = regs.cr;
    words[15] = regs.pc;   // interrupted pc (SRR0 image)
    words[16] = regs.ctr;
    words[17] = regs.gpr[2];  // r2 kept for frame symmetry (TOC slot)
    static constexpr trace::RegSlot kFrameSlots[18] = {
        riscf::kSp,       riscf::kSlotMsr, 0,  3, 4, 5, 6, 7, 8, 9, 10, 11,
        12,               riscf::kSlotLr,  riscf::kSlotCr,
        riscf::kSlotPc,   riscf::kSlotCtr, 2};
    for (u32 i = 0; i < 18; ++i) {
      const Addr a = frame + i * 4;
      const auto tr = space_.translate(a, 4, mem::Access::kWrite);
      if (!tr.ok() || (a & 3) != 0) {
        fatal_pending_ = glue_access_fault(arch_, a, true, regs.pc);
        return;
      }
      space_.phys().write32(tr.phys, words[i], mem::Endian::kBig);
      if (trace_ != nullptr) trace_->on_ctx_save(kFrameSlots[i], tr.phys);
    }
    if (trace_ != nullptr) {
      trace_->on_glue_reg_copy(riscf::kSlotSrr0, riscf::kSlotPc);
      trace_->on_glue_reg_copy(riscf::kSlotSrr1, riscf::kSlotMsr);
      // SP stays frame-derived from the old SP: shadow untouched.
      trace_->on_glue_reg_set(riscf::kSlotLr);
      trace_->on_glue_reg_set(riscf::kSlotPc);
      trace_->on_priv_transition(trace::PrivEvent::kIsrEntry);
    }
    regs.srr0 = regs.pc;
    regs.srr1 = regs.msr;
    regs.gpr[riscf::kSp] = frame;
    regs.lr = glue_addr(kGlueIsrReturn);
    regs.pc = timer_entry_;
  }
  glue_stack_.push_back(GlueFrame{GlueKind::kIsr, from_user});
}

bool Machine::isr_return() {
  cpu_->add_cycles(jitter(60, 120));
  if (cisca_cpu_ != nullptr) {
    auto& regs = cisca_cpu_->regs();
    // iret semantics: restore edx, ecx, eax, eip, eflags from the stack.
    Addr sp = regs.gpr[cisca::kEsp];
    u32 words[5];
    static constexpr trace::RegSlot kRestoreSlots[5] = {
        cisca::kEdx, cisca::kEcx, cisca::kEax, cisca::kSlotEip,
        cisca::kSlotEflags};
    for (u32 i = 0; i < 5; ++i) {
      const auto tr = space_.translate(sp + i * 4, 4, mem::Access::kRead);
      if (!tr.ok()) {
        fatal_pending_ = glue_access_fault(arch_, sp + i * 4, false, regs.eip);
        return false;
      }
      words[i] = space_.phys().read32(tr.phys, mem::Endian::kLittle);
      if (trace_ != nullptr) trace_->on_ctx_restore(kRestoreSlots[i], tr.phys);
    }
    // Restored flags with NT set mean a nested-task backlink return: #TS.
    if (test_bit(words[4], cisca::kFlagNT) ||
        test_bit(regs.eflags, cisca::kFlagNT)) {
      isa::Trap trap;
      trap.cause = static_cast<u32>(cisca::Cause::kInvalidTss);
      trap.pc = regs.eip;
      fatal_pending_ = trap;
      return false;
    }
    regs.gpr[cisca::kEdx] = words[0];
    regs.gpr[cisca::kEcx] = words[1];
    regs.gpr[cisca::kEax] = words[2];
    regs.eip = words[3];
    regs.eflags = words[4];
    regs.gpr[cisca::kEsp] = sp + 20;
  } else {
    auto& regs = riscf_cpu_->regs();
    const Addr frame = regs.gpr[riscf::kSp];
    u32 words[18];
    static constexpr trace::RegSlot kFrameSlots[18] = {
        riscf::kSp,       riscf::kSlotMsr, 0,  3, 4, 5, 6, 7, 8, 9, 10, 11,
        12,               riscf::kSlotLr,  riscf::kSlotCr,
        riscf::kSlotPc,   riscf::kSlotCtr, 2};
    for (u32 i = 0; i < 18; ++i) {
      const Addr a = frame + i * 4;
      const auto tr = space_.translate(a, 4, mem::Access::kRead);
      if (!tr.ok() || (a & 3) != 0) {
        fatal_pending_ = glue_access_fault(arch_, a, false, regs.pc);
        return false;
      }
      words[i] = space_.phys().read32(tr.phys, mem::Endian::kBig);
      if (trace_ != nullptr) trace_->on_ctx_restore(kFrameSlots[i], tr.phys);
    }
    regs.msr = words[1];
    regs.gpr[0] = words[2];
    for (u32 i = 0; i < 10; ++i) regs.gpr[3 + i] = words[3 + i];
    regs.lr = words[13];
    regs.cr = words[14];
    regs.pc = words[15];
    regs.ctr = words[16];
    regs.gpr[2] = words[17];
    regs.gpr[riscf::kSp] = words[0];  // back chain restore
  }
  if (trace_ != nullptr) {
    trace_->on_priv_transition(trace::PrivEvent::kIsrReturn);
  }
  glue_stack_.pop_back();
  return true;
}

bool Machine::syscall_return(u32& ret_out) {
  cpu_->add_cycles(jitter(60, 120));
  trace::RegSlot ret_slot;
  trace::RegSlot sp_slot;
  if (cisca_cpu_ != nullptr) {
    auto& regs = cisca_cpu_->regs();
    // Return to user via iret: NT must be clear.
    if (test_bit(regs.eflags, cisca::kFlagNT)) {
      isa::Trap trap;
      trap.cause = static_cast<u32>(cisca::Cause::kInvalidTss);
      trap.pc = regs.eip;
      fatal_pending_ = trap;
      return false;
    }
    ret_out = regs.gpr[cisca::kEax];
    regs.gpr[cisca::kEsp] = stack_top(arch_, 0);
    ret_slot = cisca::kEax;
    sp_slot = cisca::kEsp;
  } else {
    auto& regs = riscf_cpu_->regs();
    ret_out = regs.gpr[3];
    regs.gpr[riscf::kSp] = stack_top(arch_, 0);
    ret_slot = 3;
    sp_slot = riscf::kSp;
  }
  if (result_hook_ != nullptr &&
      result_hook_->on_syscall_result(
          static_cast<Syscall>(current_syscall_nr_), &ret_out)) {
    // The hook forced a different result: write it back into the return
    // register so user code (and the trace sink) sees the forced value.
    if (cisca_cpu_ != nullptr) {
      cisca_cpu_->regs().gpr[cisca::kEax] = ret_out;
    } else {
      riscf_cpu_->regs().gpr[3] = ret_out;
    }
  }
  if (trace_ != nullptr) {
    // A tainted return value is the fail-silence-violation signal: the
    // error escaped the kernel into a caller-visible result.
    trace_->on_syscall_result(ret_slot);
    trace_->on_glue_reg_set(sp_slot);
    trace_->on_priv_transition(trace::PrivEvent::kSyscallReturn);
  }
  glue_stack_.pop_back();
  syscall_active_ = false;
  return true;
}

void Machine::maybe_deliver_timer() {
  if (cpu_->cycles() < next_timer_) return;
  if (!interrupts_enabled()) return;
  // No nested timer interrupts: defer while an ISR frame is live.
  for (const GlueFrame& frame : glue_stack_) {
    if (frame.kind == GlueKind::kIsr) return;
  }
  next_timer_ += options_.timer_period;
  enter_isr(/*from_user=*/false);
}

Event Machine::run(u64 stop_cycles) {
  u64 steps = 0;
  for (;;) {
    if (harness_interrupt_ != nullptr) {
      if (harness_interrupt_->requested.load(std::memory_order_relaxed)) {
        throw StallInterrupt("wall-clock watchdog interrupted the run");
      }
      if (harness_interrupt_->step_budget != 0 &&
          ++steps > harness_interrupt_->step_budget) {
        throw StallInterrupt("per-run step budget exhausted");
      }
    }
    if (fatal_pending_) {
      const isa::Trap trap = *fatal_pending_;
      fatal_pending_.reset();
      return make_crash_event(trap);
    }
    if (!syscall_active_ && glue_stack_.empty()) {
      if (pending_user_ticks_ > 0 && interrupts_enabled()) {
        --pending_user_ticks_;
        enter_isr(/*from_user=*/true);
        continue;
      }
      if (pending_syscall_) {
        const PendingSyscall req = *pending_syscall_;
        pending_syscall_.reset();
        setup_syscall_frame(req);
        continue;
      }
      return Event{};  // kIdle
    }
    if (stop_cycles != 0 && cpu_->cycles() >= stop_cycles) {
      Event event;
      event.kind = EventKind::kCycleStop;
      return event;
    }
    maybe_deliver_timer();
    if (fatal_pending_) continue;

    if (profiling_) {
      const auto it = entry_map_.find(cpu_->pc());
      if (it != entry_map_.end()) profile_counts_[it->second] += 1;
    }

    isa::StepResult sr;
    if (options_.superblock && !profiling_) {
      // One block dispatch stands for up to kMaxBlockInsns iterations of
      // this loop.  The limits reproduce the per-iteration checks above
      // exactly: the cycle bound is the nearest of stop_cycles and the
      // next eligible timer tick (eligibility cannot change inside a
      // block — interrupt-flag writes and glue transitions all end one),
      // and the instruction bound is what remains of the harness step
      // budget.  The CPU stops the block where the checks would have
      // fired and reports how many loop iterations it stood in for.
      isa::BlockLimits limits;
      u64 bound = stop_cycles;
      if (interrupts_enabled()) {
        bool isr_live = false;
        for (const GlueFrame& frame : glue_stack_) {
          if (frame.kind == GlueKind::kIsr) isr_live = true;
        }
        if (!isr_live && (bound == 0 || next_timer_ < bound)) {
          bound = next_timer_;
        }
      }
      limits.cycle_bound = bound;
      if (harness_interrupt_ != nullptr &&
          harness_interrupt_->step_budget != 0) {
        limits.max_insns = harness_interrupt_->step_budget - steps + 1;
      }
      u64 consumed = 1;
      sr = cpu_->step_block(limits, &consumed);
      steps += consumed - 1;
    } else {
      sr = cpu_->step();
    }
    switch (sr.status) {
      case isa::StepStatus::kInsnBp: {
        Event event;
        event.kind = EventKind::kInsnBp;
        return event;
      }
      case isa::StepStatus::kHalted: {
        // A hlt reached in kernel context (usually re-aligned garbage
        // code): the CPU sleeps until the next interrupt, or forever if
        // interrupts are masked.
        if (interrupts_enabled() && next_timer_ > cpu_->cycles()) {
          cpu_->add_cycles(next_timer_ - cpu_->cycles());
        } else if (!interrupts_enabled()) {
          cpu_->add_cycles(10'000'000);  // burn budget: effectively hung
        }
        break;
      }
      case isa::StepStatus::kOk:
        if (sr.num_data_hits > 0) {
          Event event;
          event.kind = EventKind::kDataBp;
          event.hit = sr.data_hits[0];
          return event;
        }
        break;
      case isa::StepStatus::kTrap: {
        const isa::Trap& trap = sr.trap;
        const bool is_cisca = cisca_cpu_ != nullptr;
        const u32 sys_cause =
            is_cisca ? static_cast<u32>(cisca::Cause::kSyscallReturn)
                     : static_cast<u32>(riscf::Cause::kSyscall);
        if (trap.cause == sys_cause) {
          // Which stub (or stray trap) was this?
          const Addr trap_site = is_cisca ? trap.pc - 2 : trap.pc - 4;
          if (trap_site == glue_addr(kGlueSyscallReturn) &&
              !glue_stack_.empty() &&
              glue_stack_.back().kind == GlueKind::kSyscall) {
            // riscf: the wrapper also guards the syscall-return exception.
            if (arch_ == isa::Arch::kRiscf && options_.g4_stack_wrapper &&
                sp_out_of_any_stack(cpu_->stack_pointer())) {
              return make_crash_event(trap);
            }
            u32 ret = 0;
            if (!syscall_return(ret)) continue;
            Event event;
            event.kind = EventKind::kSyscallDone;
            event.ret = ret;
            return event;
          }
          if (trap_site == glue_addr(kGlueIsrReturn) && !glue_stack_.empty() &&
              glue_stack_.back().kind == GlueKind::kIsr) {
            if (arch_ == isa::Arch::kRiscf && options_.g4_stack_wrapper &&
                sp_out_of_any_stack(cpu_->stack_pointer())) {
              return make_crash_event(trap);
            }
            isr_return();
            continue;
          }
          // A corrupted unwind can "return" into one of the stubs using a
          // stale saved return address without a live glue frame.  The
          // real stubs end in a return-from-exception: model rfi/iret
          // with whatever (stale) state is present.
          if (trap_site == glue_addr(kGlueSyscallReturn) ||
              trap_site == glue_addr(kGlueIsrReturn)) {
            cpu_->add_cycles(jitter(60, 120));
            if (is_cisca) {
              // iret pops eip/cs/eflags from wherever esp points.
              auto& regs = cisca_cpu_->regs();
              const Addr sp = regs.gpr[cisca::kEsp];
              u32 eip = 0;
              const auto tr = space_.translate(sp, 4, mem::Access::kRead);
              if (!tr.ok()) {
                return make_crash_event(
                    glue_access_fault(arch_, sp, false, trap.pc));
              }
              eip = space_.phys().read32(tr.phys, mem::Endian::kLittle);
              regs.gpr[cisca::kEsp] = sp + 12;
              regs.eip = eip;
              if (trace_ != nullptr) {
                trace_->on_ctx_restore(cisca::kSlotEip, tr.phys);
              }
            } else {
              // rfi: resume at SRR0 with the SRR1 machine state.
              auto& regs = riscf_cpu_->regs();
              regs.pc = regs.srr0 & ~3u;
              regs.msr = regs.srr1;
              if (trace_ != nullptr) {
                trace_->on_glue_reg_copy(riscf::kSlotPc, riscf::kSlotSrr0);
                trace_->on_glue_reg_copy(riscf::kSlotMsr, riscf::kSlotSrr1);
              }
            }
            break;
          }
          // Stray sc / int 0x83: panic hypercall or a nested syscall.
          if (!is_cisca && riscf_cpu_->regs().gpr[0] == kPanicHypercall) {
            isa::Trap panic = trap;
            panic.cause = static_cast<u32>(riscf::Cause::kKernelPanic);
            return make_crash_event(panic);
          }
          // A stray trap instruction reached through corrupted code or a
          // bad jump behaves like an unexpected system call: the kernel
          // dispatches it, finds a garbage number, and returns -ENOSYS.
          cpu_->add_cycles(jitter(300, 500));
          if (is_cisca) {
            cisca_cpu_->regs().gpr[cisca::kEax] = kErrReturn;
            if (trace_ != nullptr) trace_->on_glue_reg_set(cisca::kEax);
          } else {
            riscf_cpu_->regs().gpr[3] = kErrReturn;
            if (trace_ != nullptr) trace_->on_glue_reg_set(3);
          }
          break;
        }
        if (is_cisca &&
            trap.cause == static_cast<u32>(cisca::Cause::kSyscall)) {
          // Stray int 0x80: same nested-syscall treatment.
          cpu_->add_cycles(jitter(300, 500));
          cisca_cpu_->regs().gpr[cisca::kEax] = kErrReturn;
          if (trace_ != nullptr) trace_->on_glue_reg_set(cisca::kEax);
          break;
        }
        return make_crash_event(trap);
      }
    }
  }
}

Event Machine::syscall(Syscall nr, u32 a0, u32 a1, u32 a2, u64 budget_cycles) {
  begin_syscall(nr, a0, a1, a2);
  const u64 stop = cpu_->cycles() + budget_cycles;
  for (;;) {
    Event event = run(stop);
    switch (event.kind) {
      case EventKind::kSyscallDone:
      case EventKind::kCrash:
      case EventKind::kCheckstop:
      case EventKind::kCycleStop:
        return event;
      default:
        continue;  // breakpoint noise without an armed consumer
    }
  }
}

MachineSnapshot Machine::snapshot() {
  KFI_CHECK(glue_stack_.empty() && !syscall_active_,
            "snapshot only supported when idle");
  MachineSnapshot snap;
  snap.memory = space_.phys().snapshot_shared();
  snap.cpu = cpu_->snapshot();
  snap.next_timer = next_timer_;
  snap.user_cycles = user_cycles_total_;
  snap.rng_state = rng_.state();
  return snap;
}

void Machine::restore(const MachineSnapshot& snap) {
  if (options_.fast_reboot) {
    space_.phys().restore(snap.memory);
  } else {
    space_.phys().restore_full(snap.memory);
  }
  cpu_->restore(snap.cpu);
  next_timer_ = snap.next_timer;
  user_cycles_total_ = snap.user_cycles;
  rng_.set_state(snap.rng_state);
  glue_stack_.clear();
  pending_syscall_.reset();
  pending_user_ticks_ = 0;
  syscall_active_ = false;
  fatal_pending_.reset();
  std::fill(profile_counts_.begin(), profile_counts_.end(), 0);
}

}  // namespace kfi::kernel
