#include "kernel/program.hpp"

#include "kernel/abi.hpp"
#include "kir/backend.hpp"

namespace kfi::kernel {

namespace {

using kir::Backend;
using kir::BinOp;
using kir::Cond;
using kir::FuncId;
using kir::GlobalId;
using kir::LabelId;
using kir::LocalId;
using kir::StructDecl;
using kir::Width;

// Field indices (positional; names are carried into the image layout).
enum TaskField : u32 {
  TF_STATE = 0,   // 0 = runnable/running, 1 = interruptible sleep
  TF_FLAGS,
  TF_PID,
  TF_COUNTER,
  TF_TIMEOUT,
  TF_SP,
  TF_STACK_BASE,
  TF_STACK_TOP,
};

enum BufField : u32 {
  BF_STATE = 0,  // 0 clean, 1 dirty
  BF_DEV,
  BF_BLOCKNR,
  BF_COUNT,
  BF_DATA_PTR,   // address of the cached block's bytes
};

enum JournalField : u32 {
  JF_RUNNING_TRANSACTION = 0,  // address of the running transaction, or 0
  JF_COMMIT_COUNT,
  JF_FLAGS,
};

enum TransField : u32 {
  XF_EXPIRES = 0,
  XF_STATE,
  XF_NBLOCKS,
};

enum FileField : u32 {
  FF_USED = 0,
  FF_POS,
  FF_START_BLOCK,
  FF_NBLOCKS,
};

enum SkbField : u32 {
  KF_NEXT = 0,   // address of next free skb, 0 terminates (NULL-deref bait)
  KF_DATA_PTR,
  KF_LEN,
  KF_USED,
};

/// All kernel global/function handles, threaded through the builders.
struct Ctx {
  Backend& b;

  // sched
  GlobalId tasks, current, jiffies, need_resched, runqueue_lock, kernel_flag;
  // fs
  GlobalId buffer_heads, buffer_data, bh_clock, bdev_lock;
  GlobalId journal, transactions, journal_lock;
  GlobalId disk_blocks, file_table;
  // mm
  GlobalId page_free_list, free_count, mem_lock, page_pool;
  // net
  GlobalId skbs, skb_data, skb_head, rx_ring, tx_ring, rx_head, rx_tail,
      tx_head, tx_tail, net_lock;
  // stats
  GlobalId syscall_count, flush_count, intr_count, commit_count;

  // functions
  FuncId f_switch_to, f_schedule, f_schedule_timeout, f_do_timer_tick;
  FuncId f_memcpy_user, f_checksum;
  FuncId f_getblk, f_flush_buffer, f_sync_old_buffers, f_sys_read, f_sys_write;
  FuncId f_kupdate, f_kjournald;
  FuncId f_alloc_pages, f_free_pages_ok, f_sys_alloc, f_sys_free;
  FuncId f_alloc_skb, f_kfree_skb, f_net_tx_action, f_sys_send, f_sys_recv;
  FuncId f_ksoftirqd, f_sys_yield, f_sys_getpid, f_sys_dispatch;

  explicit Ctx(Backend& backend) : b(backend) {}
};

void declare_data(Ctx& c) {
  Backend& b = c.b;

  const StructDecl task_decl{
      "task_struct",
      {{"state", Width::kU8},
       {"flags", Width::kU8},
       {"pid", Width::kU16},
       {"counter", Width::kU32},
       {"timeout", Width::kU32},
       {"sp", Width::kU32},
       {"stack_base", Width::kU32},
       {"stack_top", Width::kU32}}};
  const StructDecl lock_decl{
      "spinlock_t", {{"lock", Width::kU8}, {"magic", Width::kU32}}};
  const StructDecl buf_decl{"buffer_head",
                            {{"state", Width::kU8},
                             {"dev", Width::kU8},
                             {"blocknr", Width::kU16},
                             {"count", Width::kU16},
                             {"data_ptr", Width::kU32}}};
  const StructDecl journal_decl{"journal_t",
                                {{"j_running_transaction", Width::kU32},
                                 {"j_commit_count", Width::kU32},
                                 {"j_flags", Width::kU8}}};
  const StructDecl trans_decl{"transaction_t",
                              {{"t_expires", Width::kU32},
                               {"t_state", Width::kU8},
                               {"t_nblocks", Width::kU16}}};
  const StructDecl file_decl{"file",
                             {{"used", Width::kU8},
                              {"pos", Width::kU32},
                              {"start_block", Width::kU16},
                              {"nblocks", Width::kU16}}};
  const StructDecl skb_decl{"sk_buff",
                            {{"next", Width::kU32},
                             {"data_ptr", Width::kU32},
                             {"len", Width::kU16},
                             {"used", Width::kU8}}};

  // --- sched ---
  c.tasks = b.declare_struct_array("task_structs", task_decl, kNumTasks);
  c.current = b.declare_scalar("current", Width::kU32, 0);
  c.jiffies = b.declare_scalar("jiffies", Width::kU32, 0);
  c.need_resched = b.declare_scalar("need_resched", Width::kU8, 0);
  c.runqueue_lock = b.declare_struct_array("runqueue_lock", lock_decl, 1);
  c.kernel_flag = b.declare_struct_array("kernel_flag_cacheline", lock_decl, 1);

  // --- fs ---
  c.buffer_heads = b.declare_struct_array("buffer_heads", buf_decl, kNumBuffers);
  c.buffer_data =
      b.declare_array("buffer_data", Width::kU8, kNumBuffers * kBlockSize,
                      /*initialized=*/true, /*structural=*/false);
  c.bh_clock = b.declare_scalar("bh_clock", Width::kU32, 0);
  c.bdev_lock = b.declare_struct_array("bdev_lock", lock_decl, 1);
  c.journal = b.declare_struct_array("journal", journal_decl, 1);
  c.transactions = b.declare_struct_array("transactions", trans_decl, 4);
  c.journal_lock = b.declare_struct_array("journal_datalist_lock", lock_decl, 1);
  c.disk_blocks =
      b.declare_array("disk_blocks", Width::kU8, kNumDiskBlocks * kBlockSize,
                      /*initialized=*/true, /*structural=*/false);
  c.file_table = b.declare_struct_array("file_table", file_decl, kNumFiles);

  // --- mm ---
  c.page_free_list = b.declare_array("page_free_list", Width::kU32, kNumPages);
  c.free_count = b.declare_scalar("free_count", Width::kU32, kNumPages);
  c.mem_lock = b.declare_struct_array("page_table_lock", lock_decl, 1);
  c.page_pool =
      b.declare_array("page_pool", Width::kU8, kNumPages * kPoolBlockSize,
                      /*initialized=*/false, /*structural=*/false);

  // --- net ---
  c.skbs = b.declare_struct_array("skbs", skb_decl, kNumSkbs);
  c.skb_data =
      b.declare_array("skb_data", Width::kU8, kNumSkbs * kSkbDataSize,
                      /*initialized=*/false, /*structural=*/false);
  c.skb_head = b.declare_scalar("skb_head", Width::kU32, 0);
  c.rx_ring = b.declare_array("rx_ring", Width::kU32, kRingSize);
  c.tx_ring = b.declare_array("tx_ring", Width::kU32, kRingSize);
  c.rx_head = b.declare_scalar("rx_head", Width::kU32, 0);
  c.rx_tail = b.declare_scalar("rx_tail", Width::kU32, 0);
  c.tx_head = b.declare_scalar("tx_head", Width::kU32, 0);
  c.tx_tail = b.declare_scalar("tx_tail", Width::kU32, 0);
  c.net_lock = b.declare_struct_array("net_lock", lock_decl, 1);

  // --- cold structural data ---
  // Realistic kernels carry large, rarely-touched tables in .data/.bss;
  // they give the data campaign its low activation rate (paper: 0.5-1.5%).
  const StructDecl inode_decl{"inode",
                              {{"i_mode", Width::kU16},
                               {"i_uid", Width::kU16},
                               {"i_size", Width::kU32},
                               {"i_blocks", Width::kU32},
                               {"i_flags", Width::kU32}}};
  const StructDecl exent_decl{
      "exception_entry", {{"insn", Width::kU32}, {"fixup", Width::kU32}}};
  const StructDecl sysctl_decl{"ctl_table",
                               {{"ctl_name", Width::kU32},
                                {"mode", Width::kU16},
                                {"data", Width::kU32}}};
  const StructDecl proto_decl{"proto_ops",
                              {{"family", Width::kU16},
                               {"type", Width::kU8},
                               {"handler", Width::kU32}}};
  const StructDecl dentry_decl{"dentry",
                               {{"d_hash", Width::kU32},
                                {"d_parent", Width::kU32},
                                {"d_inode", Width::kU32},
                                {"d_flags", Width::kU16}}};
  const StructDecl module_decl{"module_entry",
                               {{"init", Width::kU32},
                                {"cleanup", Width::kU32},
                                {"refcount", Width::kU16},
                                {"flags", Width::kU8},
                                {"next", Width::kU32}}};
  const GlobalId inode_table =
      b.declare_struct_array("inode_table", inode_decl, 128);
  const GlobalId exception_table =
      b.declare_struct_array("exception_table", exent_decl, 192);
  const GlobalId sysctl_table =
      b.declare_struct_array("sysctl_table", sysctl_decl, 96);
  const GlobalId proto_table =
      b.declare_struct_array("proto_ops_table", proto_decl, 64);
  const GlobalId dentry_table =
      b.declare_struct_array("dentry_hashtable", dentry_decl, 128);
  const GlobalId module_list =
      b.declare_struct_array("module_list", module_decl, 48);
  b.declare_array("pid_hash", Width::kU32, 256);
  b.declare_array("irq_desc_ptrs", Width::kU32, 128);
  // Plausible pointer-heavy contents (text/data addresses and flags).
  for (u32 i = 0; i < 128; ++i) {
    b.set_initial(inode_table, i, 0, 0x81A4);            // S_IFREG | 0644
    b.set_initial(inode_table, i, 2, (i * 1021) & 0xFFFF);
    b.set_initial(inode_table, i, 4, 0x10);
  }
  for (u32 i = 0; i < 192; ++i) {
    b.set_initial(exception_table, i, 0, 0xC0100000u + i * 8);
    b.set_initial(exception_table, i, 1, 0xC0100004u + i * 8);
  }
  for (u32 i = 0; i < 96; ++i) {
    b.set_initial(sysctl_table, i, 0, i + 1);
    b.set_initial(sysctl_table, i, 1, 0644);
    b.set_initial(sysctl_table, i, 2, 0xC0200000u + i * 4);
  }
  for (u32 i = 0; i < 64; ++i) {
    b.set_initial(proto_table, i, 0, 2);  // AF_INET
    b.set_initial(proto_table, i, 2, 0xC0100200u + i * 16);
  }
  for (u32 i = 0; i < 128; ++i) {
    b.set_initial(dentry_table, i, 1, 0xC0200100u + i * 16);
    b.set_initial(dentry_table, i, 2, 0xC0200200u + i * 20);
  }
  for (u32 i = 0; i < 48; ++i) {
    b.set_initial(module_list, i, 0, 0xC0100800u + i * 32);
    b.set_initial(module_list, i, 4,
                  i + 1 < 48 ? 0xC0210000u + (i + 1) * 20 : 0);
  }

  // --- stats ---
  c.syscall_count = b.declare_scalar("syscall_count", Width::kU32, 0);
  c.flush_count = b.declare_scalar("flush_count", Width::kU32, 0);
  c.intr_count = b.declare_scalar("intr_count", Width::kU32, 0);
  c.commit_count = b.declare_scalar("commit_count", Width::kU32, 0);

  // ---- initial values ----
  for (const GlobalId lock :
       {c.runqueue_lock, c.kernel_flag, c.bdev_lock, c.journal_lock,
        c.mem_lock, c.net_lock}) {
    b.set_initial(lock, 0, 1, kir::kSpinlockMagic);
  }
  for (u32 i = 0; i < kNumTasks; ++i) {
    b.set_initial(c.tasks, i, TF_PID, i + 1);
    b.set_initial(c.tasks, i, TF_COUNTER, kQuantum);
  }
  for (u32 i = 0; i < kNumBuffers; ++i) {
    b.set_initial(c.buffer_heads, i, BF_DATA_PTR,
                  b.global_addr(c.buffer_data) + i * kBlockSize);
  }
  // Deterministic "disk" contents the workload can validate end to end.
  for (u32 block = 0; block < kNumDiskBlocks; ++block) {
    for (u32 i = 0; i < kBlockSize; ++i) {
      b.set_initial(c.disk_blocks, block * kBlockSize + i, 0,
                    (block * 31 + i * 7 + 3) & 0xFF);
    }
  }
  for (u32 f = 0; f < kNumFiles; ++f) {
    b.set_initial(c.file_table, f, FF_USED, 1);
    b.set_initial(c.file_table, f, FF_START_BLOCK, f * 16);
    b.set_initial(c.file_table, f, FF_NBLOCKS, 16);
  }
  for (u32 i = 0; i < kNumPages; ++i) {
    b.set_initial(c.page_free_list, i, 0,
                  b.global_addr(c.page_pool) + i * kPoolBlockSize);
  }
  const Addr skb_base = b.global_addr(c.skbs);
  const u32 skb_size = b.global_elem_size(c.skbs);
  for (u32 i = 0; i < kNumSkbs; ++i) {
    b.set_initial(c.skbs, i, KF_NEXT,
                  i + 1 < kNumSkbs ? skb_base + (i + 1) * skb_size : 0);
    b.set_initial(c.skbs, i, KF_DATA_PTR,
                  b.global_addr(c.skb_data) + i * kSkbDataSize);
  }
  b.set_initial(c.skb_head, 0, 0, skb_base);
}

void declare_functions(Ctx& c) {
  Backend& b = c.b;
  c.f_switch_to = b.declare_function("__switch_to", 2);
  c.f_schedule = b.declare_function("schedule", 0);
  c.f_schedule_timeout = b.declare_function("schedule_timeout", 1);
  c.f_do_timer_tick = b.declare_function("do_timer_tick", 0);
  c.f_memcpy_user = b.declare_function("memcpy_user", 3);
  c.f_checksum = b.declare_function("checksum", 2);
  c.f_getblk = b.declare_function("getblk", 2);
  c.f_flush_buffer = b.declare_function("flush_buffer", 1);
  c.f_sync_old_buffers = b.declare_function("sync_old_buffers", 0);
  c.f_sys_read = b.declare_function("sys_read", 3);
  c.f_sys_write = b.declare_function("sys_write", 3);
  c.f_kupdate = b.declare_function("kupdate_thread", 0);
  c.f_kjournald = b.declare_function("kjournald_thread", 0);
  c.f_alloc_pages = b.declare_function("alloc_pages", 0);
  c.f_free_pages_ok = b.declare_function("free_pages_ok", 1);
  c.f_sys_alloc = b.declare_function("sys_alloc", 0);
  c.f_sys_free = b.declare_function("sys_free", 1);
  c.f_alloc_skb = b.declare_function("alloc_skb", 0);
  c.f_kfree_skb = b.declare_function("kfree_skb", 1);
  c.f_net_tx_action = b.declare_function("net_tx_action", 0);
  c.f_sys_send = b.declare_function("sys_send", 2);
  c.f_sys_recv = b.declare_function("sys_recv", 2);
  c.f_ksoftirqd = b.declare_function("ksoftirqd_thread", 0);
  c.f_sys_yield = b.declare_function("sys_yield", 0);
  c.f_sys_getpid = b.declare_function("sys_getpid", 0);
  c.f_sys_dispatch = b.declare_function("sys_dispatch", 4);
}

// Convenience: return constant.
void ret_const(Backend& b, u32 v) {
  b.push_const(v);
  b.ret();
}

// ---------------------------------------------------------------- lib ----

void build_memcpy_user(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_memcpy_user);
  const LocalId dst = b.param(0), src = b.param(1), n = b.param(2);
  const LocalId i = b.add_local("i");
  // Sanity check, as the 2.4 copy routines did: a wild length means a
  // corrupted caller — BUG() (surfaces as Invalid/Illegal Instruction).
  const LabelId len_ok = b.new_label();
  b.push_local(n);
  b.push_const(0x10000);
  b.branch_cmp(Cond::kLeU, len_ok);
  b.bug();
  b.bind(len_ok);
  b.push_const(0);
  b.pop_local(i);
  const LabelId top = b.new_label(), end = b.new_label();
  b.bind(top);
  b.push_local(i);
  b.push_local(n);
  b.branch_cmp(Cond::kGeU, end);
  // byte = *(src + i)
  b.push_local(src);
  b.push_local(i);
  b.binop(BinOp::kAdd);
  b.load_ind(Width::kU8);
  // *(dst + i) = byte
  b.push_local(dst);
  b.push_local(i);
  b.binop(BinOp::kAdd);
  b.store_ind(Width::kU8);
  b.push_local(i);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.pop_local(i);
  b.jump(top);
  b.bind(end);
  b.push_local(n);
  b.ret();
  b.end_function();
}

void build_checksum(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_checksum);
  const LocalId addr = b.param(0), n = b.param(1);
  const LocalId i = b.add_local("i"), sum = b.add_local("sum");
  b.push_const(0);
  b.pop_local(i);
  b.push_const(0);
  b.pop_local(sum);
  const LabelId top = b.new_label(), end = b.new_label();
  b.bind(top);
  b.push_local(i);
  b.push_local(n);
  b.branch_cmp(Cond::kGeU, end);
  // sum = sum * 31 + byte
  b.push_local(sum);
  b.push_const(31);
  b.binop(BinOp::kMul);
  b.push_local(addr);
  b.push_local(i);
  b.binop(BinOp::kAdd);
  b.load_ind(Width::kU8);
  b.binop(BinOp::kAdd);
  b.pop_local(sum);
  b.push_local(i);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.pop_local(i);
  b.jump(top);
  b.bind(end);
  b.push_local(sum);
  b.ret();
  b.end_function();
}

// -------------------------------------------------------------- sched ----

void build_do_timer_tick(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_do_timer_tick);
  const LocalId i = b.add_local("i"), cnt = b.add_local("cnt");
  // jiffies++, intr_count++, per-CPU tick counter++
  b.load_global(c.jiffies);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.store_global(c.jiffies);
  b.bump_percpu_counter(0x10);
  b.load_global(c.intr_count);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.store_global(c.intr_count);
  // Wake sleepers whose timeout expired.
  b.push_const(0);
  b.pop_local(i);
  const LabelId top = b.new_label(), next = b.new_label(), end = b.new_label();
  b.bind(top);
  b.push_local(i);
  b.push_const(kNumTasks);
  b.branch_cmp(Cond::kGeU, end);
  b.push_local(i);
  b.load_elem(c.tasks, TF_STATE);
  b.push_const(1);
  b.branch_cmp(Cond::kNe, next);
  b.push_local(i);
  b.load_elem(c.tasks, TF_TIMEOUT);
  b.load_global(c.jiffies);
  b.branch_cmp(Cond::kGtU, next);
  b.push_const(0);  // value
  b.push_local(i);  // index
  b.store_elem(c.tasks, TF_STATE);
  b.bind(next);
  b.push_local(i);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.pop_local(i);
  b.jump(top);
  b.bind(end);
  // Quantum accounting on the current task.
  b.load_global(c.current);
  b.load_elem(c.tasks, TF_COUNTER);
  b.pop_local(cnt);
  const LabelId nonzero = b.new_label(), done = b.new_label();
  b.push_local(cnt);
  b.branch_if_nonzero(nonzero);
  b.push_const(1);
  b.store_global(c.need_resched);
  b.push_const(kQuantum);  // value
  b.load_global(c.current);
  b.store_elem(c.tasks, TF_COUNTER);
  b.jump(done);
  b.bind(nonzero);
  b.push_local(cnt);
  b.push_const(1);
  b.binop(BinOp::kSub);
  b.load_global(c.current);
  b.store_elem(c.tasks, TF_COUNTER);
  b.bind(done);
  ret_const(b, 0);
  b.end_function();
}

void build_schedule(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_schedule);
  const LocalId prev = b.add_local("prev"), next_t = b.add_local("next");
  const LocalId i = b.add_local("i"), cand = b.add_local("cand");
  b.spin_lock(c.runqueue_lock);
  b.load_global(c.current);
  b.pop_local(prev);
  b.push_local(prev);
  b.pop_local(next_t);
  b.push_const(1);
  b.pop_local(i);
  const LabelId top = b.new_label(), found = b.new_label(),
                cont = b.new_label(), decided = b.new_label();
  b.bind(top);
  b.push_local(i);
  b.push_const(kNumTasks);
  b.branch_cmp(Cond::kGtU, decided);
  // cand = (prev + i) mod kNumTasks
  b.push_local(prev);
  b.push_local(i);
  b.binop(BinOp::kAdd);
  b.pop_local(cand);
  b.push_local(cand);
  b.push_const(kNumTasks);
  b.branch_cmp(Cond::kLtU, cont);
  b.push_local(cand);
  b.push_const(kNumTasks);
  b.binop(BinOp::kSub);
  b.pop_local(cand);
  b.bind(cont);
  b.push_local(cand);
  b.load_elem(c.tasks, TF_STATE);
  b.branch_if_zero(found);
  b.push_local(i);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.pop_local(i);
  b.jump(top);
  b.bind(found);
  b.push_local(cand);
  b.pop_local(next_t);
  b.bind(decided);
  b.push_local(next_t);
  b.store_global(c.current);
  b.push_const(0);
  b.store_global(c.need_resched);
  b.spin_unlock(c.runqueue_lock);
  const LabelId same = b.new_label();
  b.push_local(next_t);
  b.push_local(prev);
  b.branch_cmp(Cond::kEq, same);
  b.push_local(prev);
  b.push_local(next_t);
  b.call(c.f_switch_to, 2);
  b.drop();
  b.bind(same);
  ret_const(b, 0);
  b.end_function();
}

void build_schedule_timeout(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_schedule_timeout);
  const LocalId ticks = b.param(0);
  // tasks[current].state = TASK_INTERRUPTIBLE (paper Figure 8 pattern)
  b.push_const(1);
  b.load_global(c.current);
  b.store_elem(c.tasks, TF_STATE);
  b.load_global(c.jiffies);
  b.push_local(ticks);
  b.binop(BinOp::kAdd);
  b.load_global(c.current);
  b.store_elem(c.tasks, TF_TIMEOUT);
  b.call(c.f_schedule, 0);
  b.ret();
  b.end_function();
}

void build_sys_yield(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_sys_yield);
  b.call(c.f_schedule, 0);
  b.drop();
  ret_const(b, 0);
  b.end_function();
}

void build_sys_getpid(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_sys_getpid);
  b.load_global(c.current);
  b.load_elem(c.tasks, TF_PID);
  b.ret();
  b.end_function();
}

// ----------------------------------------------------------------- fs ----

void build_flush_buffer(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_flush_buffer);
  const LocalId idx = b.param(0);
  const LocalId dst = b.add_local("dst"), src = b.add_local("src");
  const LabelId clean = b.new_label();
  b.push_local(idx);
  b.load_elem(c.buffer_heads, BF_STATE);
  b.branch_if_zero(clean);
  // dst = &disk_blocks[blocknr * kBlockSize]
  b.push_local(idx);
  b.load_elem(c.buffer_heads, BF_BLOCKNR);
  b.push_const(kBlockSize);
  b.binop(BinOp::kMul);
  b.elem_addr(c.disk_blocks);
  b.pop_local(dst);
  b.push_local(idx);
  b.load_elem(c.buffer_heads, BF_DATA_PTR);
  b.pop_local(src);
  b.push_local(dst);
  b.push_local(src);
  b.push_const(kBlockSize);
  b.call(c.f_memcpy_user, 3);
  b.drop();
  b.push_const(0);  // clean
  b.push_local(idx);
  b.store_elem(c.buffer_heads, BF_STATE);
  b.load_global(c.flush_count);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.store_global(c.flush_count);
  b.bind(clean);
  ret_const(b, 0);
  b.end_function();
}

void build_sync_old_buffers(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_sync_old_buffers);
  const LocalId i = b.add_local("i");
  b.push_const(0);
  b.pop_local(i);
  const LabelId top = b.new_label(), end = b.new_label();
  b.bind(top);
  b.push_local(i);
  b.push_const(kNumBuffers);
  b.branch_cmp(Cond::kGeU, end);
  b.push_local(i);
  b.call(c.f_flush_buffer, 1);
  b.drop();
  b.push_local(i);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.pop_local(i);
  b.jump(top);
  b.bind(end);
  ret_const(b, 0);
  b.end_function();
}

void build_getblk(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_getblk);
  const LocalId dev = b.param(0), block = b.param(1);
  const LocalId slot = b.add_local("slot");
  const LocalId dst = b.add_local("dst"), src = b.add_local("src");
  b.spin_lock(c.bdev_lock);
  // Hash probe, Linux-2.4 buffer-cache style (direct-mapped here): only
  // the hashed slot is examined, so lookups touch one buffer_head.
  b.push_local(block);
  b.push_local(dev);
  b.push_const(7);
  b.binop(BinOp::kMul);
  b.binop(BinOp::kXor);
  b.push_const(kNumBuffers - 1);
  b.binop(BinOp::kAnd);
  b.pop_local(slot);
  const LabelId miss = b.new_label();
  b.push_local(slot);
  b.load_elem(c.buffer_heads, BF_DEV);
  b.push_local(dev);
  b.branch_cmp(Cond::kNe, miss);
  b.push_local(slot);
  b.load_elem(c.buffer_heads, BF_BLOCKNR);
  b.push_local(block);
  b.branch_cmp(Cond::kNe, miss);
  // Hit.
  b.push_local(slot);
  b.load_elem(c.buffer_heads, BF_COUNT);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.push_local(slot);
  b.store_elem(c.buffer_heads, BF_COUNT);
  b.spin_unlock(c.bdev_lock);
  b.push_local(slot);
  b.ret();
  // Miss: evict the hashed slot (write back if dirty), fill from "disk".
  b.bind(miss);
  b.push_local(slot);
  b.call(c.f_flush_buffer, 1);
  b.drop();
  b.push_local(dev);
  b.push_local(slot);
  b.store_elem(c.buffer_heads, BF_DEV);
  b.push_local(block);
  b.push_local(slot);
  b.store_elem(c.buffer_heads, BF_BLOCKNR);
  b.push_const(0);
  b.push_local(slot);
  b.store_elem(c.buffer_heads, BF_STATE);
  b.push_const(1);
  b.push_local(slot);
  b.store_elem(c.buffer_heads, BF_COUNT);
  b.push_local(slot);
  b.load_elem(c.buffer_heads, BF_DATA_PTR);
  b.pop_local(dst);
  b.push_local(block);
  b.push_const(kBlockSize);
  b.binop(BinOp::kMul);
  b.elem_addr(c.disk_blocks);
  b.pop_local(src);
  b.push_local(dst);
  b.push_local(src);
  b.push_const(kBlockSize);
  b.call(c.f_memcpy_user, 3);
  b.drop();
  b.spin_unlock(c.bdev_lock);
  b.push_local(slot);
  b.ret();
  b.end_function();
}

/// Shared shape of sys_read/sys_write: whole-block transfers between a
/// user buffer and the buffer cache.
void build_sys_rw(Ctx& c, FuncId func, bool is_write) {
  Backend& b = c.b;
  b.begin_function(func);
  const LocalId fd = b.param(0), ubuf = b.param(1), len = b.param(2);
  const LocalId copied = b.add_local("copied"), block = b.add_local("block");
  const LocalId bh = b.add_local("bh"), pos = b.add_local("pos");
  const LocalId bufp = b.add_local("bufp");
  const LabelId bad = b.new_label();
  b.push_local(fd);
  b.push_const(kNumFiles);
  b.branch_cmp(Cond::kGeU, bad);
  b.push_local(fd);
  b.load_elem(c.file_table, FF_USED);
  b.branch_if_zero(bad);
  b.push_const(0);
  b.pop_local(copied);
  const LabelId top = b.new_label(), end = b.new_label();
  b.bind(top);
  b.push_local(copied);
  b.push_local(len);
  b.branch_cmp(Cond::kGeU, end);
  // pos wraps at file end
  b.push_local(fd);
  b.load_elem(c.file_table, FF_POS);
  b.pop_local(pos);
  const LabelId inrange = b.new_label();
  b.push_local(pos);
  b.push_local(fd);
  b.load_elem(c.file_table, FF_NBLOCKS);
  b.push_const(kBlockSize);
  b.binop(BinOp::kMul);
  b.branch_cmp(Cond::kLtU, inrange);
  b.push_const(0);
  b.pop_local(pos);
  b.bind(inrange);
  // block = start_block + pos / kBlockSize
  b.push_local(fd);
  b.load_elem(c.file_table, FF_START_BLOCK);
  b.push_local(pos);
  b.push_const(6);  // log2(kBlockSize)
  b.binop(BinOp::kShrU);
  b.binop(BinOp::kAdd);
  b.pop_local(block);
  b.push_const(1);  // dev
  b.push_local(block);
  b.call(c.f_getblk, 2);
  b.pop_local(bh);
  b.push_local(bh);
  b.load_elem(c.buffer_heads, BF_DATA_PTR);
  b.pop_local(bufp);
  if (is_write) {
    b.push_local(bufp);
    b.push_local(ubuf);
    b.push_local(copied);
    b.binop(BinOp::kAdd);
    b.push_const(kBlockSize);
    b.call(c.f_memcpy_user, 3);
    b.drop();
    b.push_const(1);  // dirty
    b.push_local(bh);
    b.store_elem(c.buffer_heads, BF_STATE);
  } else {
    b.push_local(ubuf);
    b.push_local(copied);
    b.binop(BinOp::kAdd);
    b.push_local(bufp);
    b.push_const(kBlockSize);
    b.call(c.f_memcpy_user, 3);
    b.drop();
  }
  // release reference; a zero count here is a corrupted buffer head
  const LabelId ref_ok = b.new_label();
  b.push_local(bh);
  b.load_elem(c.buffer_heads, BF_COUNT);
  b.branch_if_nonzero(ref_ok);
  b.bug();
  b.bind(ref_ok);
  b.push_local(bh);
  b.load_elem(c.buffer_heads, BF_COUNT);
  b.push_const(1);
  b.binop(BinOp::kSub);
  b.push_local(bh);
  b.store_elem(c.buffer_heads, BF_COUNT);
  b.push_local(pos);
  b.push_const(kBlockSize);
  b.binop(BinOp::kAdd);
  b.push_local(fd);
  b.store_elem(c.file_table, FF_POS);
  b.push_local(copied);
  b.push_const(kBlockSize);
  b.binop(BinOp::kAdd);
  b.pop_local(copied);
  b.jump(top);
  b.bind(end);
  b.push_local(copied);
  b.ret();
  b.bind(bad);
  ret_const(b, kErrReturn);
  b.end_function();
}

void build_kupdate(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_kupdate);
  // for (;;) { sync_old_buffers(); schedule_timeout(interval); }  (Fig. 8)
  const LabelId top = b.new_label();
  b.bind(top);
  b.call(c.f_sync_old_buffers, 0);
  b.drop();
  b.push_const(kKupdateInterval);
  b.call(c.f_schedule_timeout, 1);
  b.drop();
  b.jump(top);
  b.end_function();
}

void build_kjournald(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_kjournald);
  const LocalId trans = b.add_local("trans"), expires = b.add_local("expires");
  const u32 off_expires = b.field_offset(c.transactions, XF_EXPIRES);
  const u32 off_state = b.field_offset(c.transactions, XF_STATE);
  const LabelId top = b.new_label(), have = b.new_label(),
                sleep = b.new_label(), not_due = b.new_label();
  b.bind(top);
  b.spin_lock(c.journal_lock);
  // transaction = journal->j_running_transaction  (paper Figure 9)
  b.load_global(c.journal, JF_RUNNING_TRANSACTION);
  b.pop_local(trans);
  b.push_local(trans);
  b.branch_if_nonzero(have);
  // Start a new transaction: transactions[jiffies & 3].
  b.load_global(c.jiffies);
  b.push_const(3);
  b.binop(BinOp::kAnd);
  b.elem_addr(c.transactions);
  b.pop_local(trans);
  b.push_const(1);  // value: running
  b.push_local(trans);
  b.push_const(off_state);
  b.binop(BinOp::kAdd);
  b.store_ind(Width::kU8);
  b.load_global(c.jiffies);
  b.push_const(kJournalInterval);
  b.binop(BinOp::kAdd);
  b.push_local(trans);
  b.push_const(off_expires);
  b.binop(BinOp::kAdd);
  b.store_ind(Width::kU32);
  b.push_local(trans);
  b.store_global(c.journal, JF_RUNNING_TRANSACTION);
  b.jump(sleep);
  b.bind(have);
  // expires = transaction->t_expires  (the Figure 9 crash site)
  b.push_local(trans);
  b.push_const(off_expires);
  b.binop(BinOp::kAdd);
  b.load_ind(Width::kU32);
  b.pop_local(expires);
  b.push_local(expires);
  b.load_global(c.jiffies);
  b.branch_cmp(Cond::kGtU, not_due);
  // Commit.
  b.push_const(2);  // committed
  b.push_local(trans);
  b.push_const(off_state);
  b.binop(BinOp::kAdd);
  b.store_ind(Width::kU8);
  b.push_const(0);
  b.store_global(c.journal, JF_RUNNING_TRANSACTION);
  b.load_global(c.commit_count);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.store_global(c.commit_count);
  b.bind(not_due);
  b.bind(sleep);
  b.spin_unlock(c.journal_lock);
  b.push_const(kJournalInterval);
  b.call(c.f_schedule_timeout, 1);
  b.drop();
  b.jump(top);
  b.end_function();
}

// ----------------------------------------------------------------- mm ----

void build_alloc_pages(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_alloc_pages);
  const LocalId page = b.add_local("page");
  b.spin_lock(c.mem_lock);
  // free_count beyond the pool size means the freelist is corrupt: the
  // allocator cannot trust anything — panic() (OS self-detected error).
  const LabelId count_ok = b.new_label();
  b.load_global(c.free_count);
  b.push_const(kNumPages);
  b.branch_cmp(Cond::kLeU, count_ok);
  b.panic();
  b.bind(count_ok);
  const LabelId empty = b.new_label();
  b.load_global(c.free_count);
  b.branch_if_zero(empty);
  b.load_global(c.free_count);
  b.push_const(1);
  b.binop(BinOp::kSub);
  b.store_global(c.free_count);
  b.load_global(c.free_count);
  b.load_elem(c.page_free_list);
  b.pop_local(page);
  b.spin_unlock(c.mem_lock);
  b.push_local(page);
  b.ret();
  b.bind(empty);
  b.spin_unlock(c.mem_lock);
  ret_const(b, 0);
  b.end_function();
}

void build_free_pages_ok(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_free_pages_ok);
  const LocalId page = b.param(0);
  b.spin_lock(c.mem_lock);
  const LabelId ok = b.new_label();
  b.load_global(c.free_count);
  b.push_const(kNumPages);
  b.branch_cmp(Cond::kLtU, ok);
  b.bug();  // double free / corrupted free count: BUG() like Linux mm
  b.bind(ok);
  b.push_local(page);  // value
  b.load_global(c.free_count);  // index
  b.store_elem(c.page_free_list);
  b.load_global(c.free_count);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.store_global(c.free_count);
  b.spin_unlock(c.mem_lock);
  ret_const(b, 0);
  b.end_function();
}

void build_sys_alloc(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_sys_alloc);
  const LocalId page = b.add_local("page");
  b.call(c.f_alloc_pages, 0);
  b.pop_local(page);
  const LabelId fail = b.new_label();
  b.push_local(page);
  b.branch_if_zero(fail);
  // Stamp the page so sys_free can validate it round-trip.
  b.push_local(page);
  b.push_const(0x5A5A5A5Au);
  b.binop(BinOp::kXor);
  b.push_local(page);
  b.store_ind(Width::kU32);
  b.push_local(page);
  b.ret();
  b.bind(fail);
  ret_const(b, 0);
  b.end_function();
}

void build_sys_free(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_sys_free);
  const LocalId page = b.param(0);
  const LabelId bad = b.new_label();
  b.push_local(page);
  b.load_ind(Width::kU32);
  b.push_local(page);
  b.push_const(0x5A5A5A5Au);
  b.binop(BinOp::kXor);
  b.branch_cmp(Cond::kNe, bad);
  b.push_local(page);
  b.call(c.f_free_pages_ok, 1);
  b.ret();
  b.bind(bad);
  ret_const(b, kErrReturn);
  b.end_function();
}

// ---------------------------------------------------------------- net ----

void build_alloc_skb(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_alloc_skb);
  const LocalId skb = b.add_local("skb");
  const u32 off_next = b.field_offset(c.skbs, KF_NEXT);
  const u32 off_used = b.field_offset(c.skbs, KF_USED);
  b.spin_lock(c.net_lock);
  const LabelId empty = b.new_label();
  b.load_global(c.skb_head);
  b.pop_local(skb);
  b.push_local(skb);
  b.branch_if_zero(empty);
  // skb_head = skb->next   (paper Figure 7: mov (%eax),%ecx crash site)
  b.push_local(skb);
  b.push_const(off_next);
  b.binop(BinOp::kAdd);
  b.load_ind(Width::kU32);
  b.store_global(c.skb_head);
  b.push_const(1);
  b.push_local(skb);
  b.push_const(off_used);
  b.binop(BinOp::kAdd);
  b.store_ind(Width::kU8);
  b.spin_unlock(c.net_lock);
  b.push_local(skb);
  b.ret();
  b.bind(empty);
  b.spin_unlock(c.net_lock);
  ret_const(b, 0);
  b.end_function();
}

void build_kfree_skb(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_kfree_skb);
  const LocalId skb = b.param(0);
  const u32 off_next = b.field_offset(c.skbs, KF_NEXT);
  const u32 off_used = b.field_offset(c.skbs, KF_USED);
  b.spin_lock(c.net_lock);
  // Double-free / corrupted-skb check (BUG on a clear used flag).
  const LabelId used_ok = b.new_label();
  b.push_local(skb);
  b.push_const(off_used);
  b.binop(BinOp::kAdd);
  b.load_ind(Width::kU8);
  b.push_const(1);
  b.branch_cmp(Cond::kEq, used_ok);
  b.bug();
  b.bind(used_ok);
  b.load_global(c.skb_head);  // value
  b.push_local(skb);
  b.push_const(off_next);
  b.binop(BinOp::kAdd);  // addr
  b.store_ind(Width::kU32);
  b.push_local(skb);
  b.store_global(c.skb_head);
  b.push_const(0);
  b.push_local(skb);
  b.push_const(off_used);
  b.binop(BinOp::kAdd);
  b.store_ind(Width::kU8);
  b.spin_unlock(c.net_lock);
  ret_const(b, 0);
  b.end_function();
}

void build_net_tx_action(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_net_tx_action);
  const LocalId skb = b.add_local("skb");
  b.spin_lock(c.net_lock);
  const LabelId top = b.new_label(), done = b.new_label();
  b.bind(top);
  b.load_global(c.tx_tail);
  b.load_global(c.tx_head);
  b.branch_cmp(Cond::kEq, done);
  b.load_global(c.tx_tail);
  b.push_const(kRingSize - 1);
  b.binop(BinOp::kAnd);
  b.load_elem(c.tx_ring);
  b.pop_local(skb);
  b.load_global(c.tx_tail);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.store_global(c.tx_tail);
  // Loopback delivery into the rx ring.
  b.push_local(skb);  // value
  b.load_global(c.rx_head);
  b.push_const(kRingSize - 1);
  b.binop(BinOp::kAnd);  // index
  b.store_elem(c.rx_ring);
  b.load_global(c.rx_head);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.store_global(c.rx_head);
  b.jump(top);
  b.bind(done);
  b.spin_unlock(c.net_lock);
  ret_const(b, 0);
  b.end_function();
}

void build_sys_send(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_sys_send);
  const LocalId ubuf = b.param(0), len = b.param(1);
  const LocalId skb = b.add_local("skb"), dst = b.add_local("dst");
  const u32 off_len = b.field_offset(c.skbs, KF_LEN);
  const u32 off_data = b.field_offset(c.skbs, KF_DATA_PTR);
  const LabelId bad = b.new_label();
  b.push_local(len);
  b.push_const(kSkbDataSize);
  b.branch_cmp(Cond::kGtU, bad);
  b.call(c.f_alloc_skb, 0);
  b.pop_local(skb);
  b.push_local(skb);
  b.branch_if_zero(bad);
  b.push_local(len);  // value
  b.push_local(skb);
  b.push_const(off_len);
  b.binop(BinOp::kAdd);
  b.store_ind(Width::kU16);
  b.push_local(skb);
  b.push_const(off_data);
  b.binop(BinOp::kAdd);
  b.load_ind(Width::kU32);
  b.pop_local(dst);
  b.push_local(dst);
  b.push_local(ubuf);
  b.push_local(len);
  b.call(c.f_memcpy_user, 3);
  b.drop();
  b.spin_lock(c.net_lock);
  b.push_local(skb);  // value
  b.load_global(c.tx_head);
  b.push_const(kRingSize - 1);
  b.binop(BinOp::kAnd);  // index
  b.store_elem(c.tx_ring);
  b.load_global(c.tx_head);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.store_global(c.tx_head);
  b.spin_unlock(c.net_lock);
  b.push_local(len);
  b.ret();
  b.bind(bad);
  ret_const(b, kErrReturn);
  b.end_function();
}

void build_sys_recv(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_sys_recv);
  const LocalId ubuf = b.param(0), maxlen = b.param(1);
  const LocalId skb = b.add_local("skb"), len = b.add_local("len");
  const LocalId src = b.add_local("src");
  const u32 off_len = b.field_offset(c.skbs, KF_LEN);
  const u32 off_data = b.field_offset(c.skbs, KF_DATA_PTR);
  b.spin_lock(c.net_lock);
  const LabelId empty = b.new_label();
  b.load_global(c.rx_tail);
  b.load_global(c.rx_head);
  b.branch_cmp(Cond::kEq, empty);
  b.load_global(c.rx_tail);
  b.push_const(kRingSize - 1);
  b.binop(BinOp::kAnd);
  b.load_elem(c.rx_ring);
  b.pop_local(skb);
  b.load_global(c.rx_tail);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.store_global(c.rx_tail);
  b.spin_unlock(c.net_lock);
  b.push_local(skb);
  b.push_const(off_len);
  b.binop(BinOp::kAdd);
  b.load_ind(Width::kU16);
  b.pop_local(len);
  const LabelId fits = b.new_label();
  b.push_local(len);
  b.push_local(maxlen);
  b.branch_cmp(Cond::kLeU, fits);
  b.push_local(maxlen);
  b.pop_local(len);
  b.bind(fits);
  b.push_local(skb);
  b.push_const(off_data);
  b.binop(BinOp::kAdd);
  b.load_ind(Width::kU32);
  b.pop_local(src);
  b.push_local(ubuf);
  b.push_local(src);
  b.push_local(len);
  b.call(c.f_memcpy_user, 3);
  b.drop();
  b.push_local(skb);
  b.call(c.f_kfree_skb, 1);
  b.drop();
  b.push_local(len);
  b.ret();
  b.bind(empty);
  b.spin_unlock(c.net_lock);
  ret_const(b, 0);
  b.end_function();
}

void build_ksoftirqd(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_ksoftirqd);
  const LabelId top = b.new_label();
  b.bind(top);
  b.call(c.f_net_tx_action, 0);
  b.drop();
  b.push_const(1);
  b.call(c.f_schedule_timeout, 1);
  b.drop();
  b.jump(top);
  b.end_function();
}

// ------------------------------------------------------------ dispatch ---

void build_sys_dispatch(Ctx& c) {
  Backend& b = c.b;
  b.begin_function(c.f_sys_dispatch);
  const LocalId nr = b.param(0), a0 = b.param(1), a1 = b.param(2),
                a2 = b.param(3);
  const LocalId result = b.add_local("result");
  // The big kernel lock: every syscall touches kernel_flag_cacheline, so
  // its magic word is checked at high frequency (paper Figure 13).
  b.spin_lock(c.kernel_flag);

  struct Case {
    Syscall nr;
    FuncId func;
    u32 argc;
  };
  const Case cases[] = {
      {Syscall::kRead, c.f_sys_read, 3},   {Syscall::kWrite, c.f_sys_write, 3},
      {Syscall::kAlloc, c.f_sys_alloc, 0}, {Syscall::kFree, c.f_sys_free, 1},
      {Syscall::kSend, c.f_sys_send, 2},   {Syscall::kRecv, c.f_sys_recv, 2},
      {Syscall::kYield, c.f_sys_yield, 0}, {Syscall::kGetpid, c.f_sys_getpid, 0},
  };

  const LabelId done = b.new_label();
  b.push_const(kErrReturn);
  b.pop_local(result);
  for (const Case& cs : cases) {
    const LabelId skip = b.new_label();
    b.push_local(nr);
    b.push_const(static_cast<u32>(cs.nr));
    b.branch_cmp(Cond::kNe, skip);
    const LocalId args[3] = {a0, a1, a2};
    for (u32 i = 0; i < cs.argc; ++i) b.push_local(args[i]);
    b.call(cs.func, cs.argc);
    b.pop_local(result);
    b.jump(done);
    b.bind(skip);
  }
  b.bind(done);
  b.load_global(c.syscall_count);
  b.push_const(1);
  b.binop(BinOp::kAdd);
  b.store_global(c.syscall_count);
  b.spin_unlock(c.kernel_flag);
  // Kernel preemption point at syscall exit (Linux 2.4 style).
  const LabelId no_resched = b.new_label();
  b.load_global(c.need_resched);
  b.branch_if_zero(no_resched);
  b.call(c.f_schedule, 0);
  b.drop();
  b.bind(no_resched);
  b.push_local(result);
  b.ret();
  b.end_function();
}

}  // namespace

void build_kernel(kir::Backend& backend) {
  Ctx c(backend);
  declare_data(c);
  declare_functions(c);

  backend.define_switch_function(c.f_switch_to, c.tasks, TF_SP);

  build_memcpy_user(c);
  build_checksum(c);
  build_do_timer_tick(c);
  build_schedule(c);
  build_schedule_timeout(c);
  build_sys_yield(c);
  build_sys_getpid(c);
  build_flush_buffer(c);
  build_sync_old_buffers(c);
  build_getblk(c);
  build_sys_rw(c, c.f_sys_read, /*is_write=*/false);
  build_sys_rw(c, c.f_sys_write, /*is_write=*/true);
  build_kupdate(c);
  build_kjournald(c);
  build_alloc_pages(c);
  build_free_pages_ok(c);
  build_sys_alloc(c);
  build_sys_free(c);
  build_alloc_skb(c);
  build_kfree_skb(c);
  build_net_tx_action(c);
  build_sys_send(c);
  build_sys_recv(c);
  build_ksoftirqd(c);
  build_sys_dispatch(c);
}

}  // namespace kfi::kernel
