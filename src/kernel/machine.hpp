// Machine: one booted minux system (CPU + memory + kernel image + runtime
// glue), the unit the injection framework experiments on.
//
// The runtime glue plays the role of the hardware exception plumbing and
// the lowest-level kernel entry stubs:
//   * system-call entry/exit (int 0x80-style on cisca, sc on riscf),
//   * periodic timer interrupts delivered on the current kernel stack,
//     with the interrupted context SAVED IN SIMULATED STACK MEMORY so that
//     stack injections can corrupt saved frames exactly as on hardware,
//   * the cisca IDTR sanity and EFLAGS.NT checks (-> #GP / Invalid TSS),
//   * the riscf SPRG2 stack-switch use on user-mode interrupts and the
//     exception-entry stack-range checking wrapper that yields the G4's
//     explicit Stack Overflow category (paper Section 6),
//   * the three-stage cycles-to-crash model of Figure 3.
//
// Machine exposes an event-driven run loop: the injection framework arms
// breakpoints, calls run(), and receives breakpoint/crash/completion
// events, mirroring how NFTAPE's kernel injector drove the real machines.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "isa/cpu.hpp"
#include "kernel/abi.hpp"
#include "kernel/crash.hpp"
#include "kernel/layout.hpp"
#include "kir/backend.hpp"
#include "kir/image.hpp"
#include "mem/address_space.hpp"

namespace kfi::cisca {
class CiscaCpu;
}
namespace kfi::riscf {
class RiscfCpu;
}

namespace kfi::kernel {

enum class EventKind : u8 {
  kSyscallDone,  // syscall completed; Event::ret holds the return value
  kCrash,        // fatal exception; Event::crash holds the classified report
  kCheckstop,    // machine check with MSR.ME off: processor stopped dead
  kCycleStop,    // reached the requested stop_cycles
  kInsnBp,       // armed instruction breakpoint hit (before execution)
  kDataBp,       // armed data breakpoint hit (after access)
  kIdle,         // nothing queued to run
};

struct Event {
  EventKind kind = EventKind::kIdle;
  u32 ret = 0;
  CrashReport crash{};
  isa::DataBpHit hit{};
};

/// Cooperative harness interrupt, shared between a Machine and the
/// campaign supervisor's wall-clock watchdog.  Machine::run polls
/// `requested` between steps and throws kfi::StallInterrupt when it is
/// set, so a livelocked simulation can be pulled out of run() without
/// killing the process; `step_budget` (0 = off) additionally bounds the
/// steps one run() call may execute, catching livelocks that stop
/// advancing the cycle counter entirely.  After a StallInterrupt the
/// machine is mid-run garbage; restore a snapshot before reusing it.
struct HarnessInterrupt {
  std::atomic<bool> requested{false};
  u64 step_budget = 0;
};

/// Interception seam at the syscall boundary: called once per completed
/// system call with the kernel's natural return value, before the trace
/// sink observes it.  Return true after overwriting *ret to force a
/// different result (the machine writes it back into the return register
/// so the workload sees the forced value); return false to leave the
/// result untouched.  Null-guarded like the trace sink — the default path
/// pays one pointer test, no virtual dispatch.  Glue-generated error
/// returns (stray-trap ENOSYS) never reach the hook: those are harness
/// artifacts, not kernel results.
class SyscallResultHook {
 public:
  virtual ~SyscallResultHook() = default;
  virtual bool on_syscall_result(Syscall nr, u32* ret) = 0;
};

struct MachineOptions {
  /// Cycles between timer ticks (the 100Hz-ish decrementer / PIT).
  u64 timer_period = 1'000'000;
  /// Mean simulated user-mode cycles charged between system calls.
  u64 user_cycles_mean = 30'000;
  /// G4 exception-entry stack-range checking wrapper (ablation X2).
  bool g4_stack_wrapper = true;
  /// Paper-Section-7 PUSH/POP stack-limit extension on the P4 (ablation X1).
  bool p4_stack_limit_check = false;
  /// SPINLOCK_DEBUG magic checks in the kernel build (ablation X3).
  bool spinlock_debug = true;
  /// Seed for runtime jitter (user time, exception-stage costs).
  u64 seed = 0x1234;
  /// Predecoded-instruction cache in the CPU model.  Bit-exact: results
  /// must not change with this off (the fingerprint cross-check enforces
  /// it); off is only useful for that cross-check and for measuring the
  /// speedup.
  bool decode_cache = true;
  /// Dirty-page snapshot restore.  Also bit-exact; off forces the
  /// O(memory) full-copy restore the cross-check compares against.
  bool fast_reboot = true;
  /// Superblock execution: cache straight-line runs of predecoded
  /// instructions and dispatch them through per-op handler pointers.
  /// Bit-exact like the decode cache (the fingerprint cross-check
  /// enforces it); off is only useful for that cross-check and for
  /// measuring the speedup.
  bool superblock = true;
  /// Copy-on-write page sharing: restores re-point pages at the shared
  /// snapshot instead of copying, so worker machines rebooting from one
  /// boot snapshot hold ~1 memory image plus their dirty pages.  Also
  /// bit-exact; off keeps every page private (the pre-COW behavior).
  bool cow_memory = true;
};

/// Snapshot of a whole machine (memory + CPU + runtime), used to "reboot"
/// between injections in microseconds.  Memory is a shared immutable
/// buffer: copying a MachineSnapshot (e.g. handing the boot snapshot to a
/// watchdog) no longer duplicates the whole RAM image.
struct MachineSnapshot {
  mem::PhysicalMemory::SnapshotPtr memory;
  isa::CpuSnapshot cpu;
  u64 next_timer = 0;
  u64 user_cycles = 0;
  std::array<u64, 4> rng_state{};
};

class Machine {
 public:
  /// Build the kernel image (codegen) and boot.  For one-off machines.
  Machine(isa::Arch arch, MachineOptions options);
  /// Boot from an already-built image, skipping codegen entirely.  This is
  /// the cheap-replication path the parallel campaign engine uses: every
  /// worker Machine shares one immutable image and only pays for its own
  /// memory + boot.
  Machine(isa::Arch arch, MachineOptions options, kir::ImagePtr image);
  /// Boot by adopting another machine's boot snapshot instead of writing a
  /// fresh memory image.  With COW on, the worker starts with ZERO private
  /// pages — every page aliases the donor's shared snapshot buffer — which
  /// is what makes a 64-worker engine's resident memory sublinear in the
  /// worker count.  The snapshot must come from a machine built on the
  /// same image with the same options.
  Machine(isa::Arch arch, MachineOptions options, kir::ImagePtr image,
          const MachineSnapshot& boot_snap);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  isa::Arch arch() const { return arch_; }
  isa::CpuCore& cpu() { return *cpu_; }
  mem::AddressSpace& space() { return space_; }
  const kir::Image& image() const { return *image_; }
  const kir::ImagePtr& shared_image() const { return image_; }
  const MachineOptions& options() const { return options_; }

  /// Queue one system call (sets up the kernel entry frame and any timer
  /// ticks that accrued during the simulated user time).  Must be idle.
  void begin_syscall(Syscall nr, u32 a0 = 0, u32 a1 = 0, u32 a2 = 0);

  /// Execute until an event occurs or `stop_cycles` is reached (0 = no
  /// cycle stop).  Breakpoint events leave the machine resumable.
  Event run(u64 stop_cycles = 0);

  bool idle() const { return !syscall_active_ && glue_stack_.empty(); }

  /// Attach (or detach, with nullptr) the supervisor's interrupt channel.
  /// The pointee must outlive the machine or a later set call.
  void set_harness_interrupt(HarnessInterrupt* interrupt) {
    harness_interrupt_ = interrupt;
  }

  /// Attach (or detach, with nullptr) an error-propagation trace sink.
  /// Forwards to the CPU for instruction-level events; the machine itself
  /// reports the runtime glue's context save/restore and privilege
  /// transitions.  Strictly observational: simulation results are
  /// bit-identical with or without a sink attached.
  void set_trace_sink(trace::TraceSink* sink);

  /// Attach (or detach, with nullptr) a syscall-result interception hook.
  /// The pointee must outlive the machine or a later set call.  With no
  /// hook — or an attached hook that declines every call — simulation
  /// results are bit-identical to a hook-free machine.
  void set_syscall_result_hook(SyscallResultHook* hook) {
    result_hook_ = hook;
  }

  /// Total simulated user-mode cycles charged so far (for estimating the
  /// kernel-time fraction of wall-clock, used by the register injector).
  u64 user_cycles() const { return user_cycles_total_; }

  /// Convenience: run one syscall to completion (no breakpoints in play).
  Event syscall(Syscall nr, u32 a0 = 0, u32 a1 = 0, u32 a2 = 0,
                u64 budget_cycles = 200'000'000);

  // --- introspection / experiment support ---
  u32 read_global(const std::string& object, u32 index = 0,
                  const std::string& field = "") const;
  void write_global(const std::string& object, u32 value, u32 index = 0,
                    const std::string& field = "");
  Addr global_field_addr(const std::string& object, u32 index,
                         const std::string& field) const;
  u32 current_task() const;
  /// Live stack pointer and configured stack range of a task.
  Addr task_stack_base(u32 task) const {
    return stack_base(arch_, task);
  }
  Addr task_stack_top(u32 task) const { return stack_top(arch_, task); }

  /// Per-function entry counters (enable before running a profile pass).
  void set_profiling(bool enabled);
  const std::vector<u64>& profile_counts() const { return profile_counts_; }

  /// Non-const: taking a snapshot (re)establishes the memory's dirty-page
  /// restore baseline.
  MachineSnapshot snapshot();
  void restore(const MachineSnapshot& snap);

  /// The snapshot taken right after boot (the "reboot" target).
  const MachineSnapshot& boot_snapshot() const { return boot_snapshot_; }

 private:
  enum class GlueKind : u8 { kSyscall, kIsr };
  struct GlueFrame {
    GlueKind kind;
    bool from_user = false;
  };
  struct PendingSyscall {
    u32 nr, a0, a1, a2;
  };

  void boot();
  void map_address_space();
  void write_glue_stubs();
  void setup_syscall_frame(const PendingSyscall& req);
  void enter_isr(bool from_user);
  bool isr_return();      // false => fatal raised into fatal_
  bool syscall_return(u32& ret_out);
  void maybe_deliver_timer();
  bool interrupts_enabled() const;
  Event make_crash_event(const isa::Trap& trap);
  bool sp_out_of_any_stack(Addr sp) const;
  u64 jitter(u64 lo, u64 hi);
  Addr glue_addr(u32 offset) const { return kGlueBase + offset; }

  isa::Arch arch_;
  MachineOptions options_;
  mem::AddressSpace space_;
  kir::ImagePtr image_;
  std::unique_ptr<isa::CpuCore> cpu_;
  cisca::CiscaCpu* cisca_cpu_ = nullptr;  // set when arch == kCisca
  riscf::RiscfCpu* riscf_cpu_ = nullptr;  // set when arch == kRiscf
  std::unique_ptr<kir::Backend> helper_backend_;  // prepare_initial_stack
  std::unordered_map<Addr, u32> entry_map_;       // function entry profiling
  Rng rng_;

  // Cached symbol info.
  Addr dispatch_entry_ = 0;
  Addr timer_entry_ = 0;
  Addr current_addr_ = 0;

  // Runtime state.
  std::vector<GlueFrame> glue_stack_;
  std::optional<PendingSyscall> pending_syscall_;
  u32 pending_user_ticks_ = 0;
  bool syscall_active_ = false;
  u64 next_timer_ = 0;
  u64 user_cycles_total_ = 0;
  u32 expected_sprg2_ = 0;
  std::optional<isa::Trap> fatal_pending_;  // raised by runtime glue

  // Profiling.
  bool profiling_ = false;
  std::vector<u64> profile_counts_;

  HarnessInterrupt* harness_interrupt_ = nullptr;
  trace::TraceSink* trace_ = nullptr;
  SyscallResultHook* result_hook_ = nullptr;
  u32 current_syscall_nr_ = 0;  // nr of the in-flight syscall (hook arg)

  MachineSnapshot boot_snapshot_;
};

/// Build and finalize a kernel image for the given architecture (exposed
/// for tests and decoder studies that want the image without a Machine).
kir::Image build_kernel_image(isa::Arch arch, bool spinlock_debug = true);

/// Build an image once for sharing across Machines (the campaign engine's
/// one-codegen-per-campaign path).
kir::ImagePtr build_shared_kernel_image(isa::Arch arch,
                                        bool spinlock_debug = true);

/// Register slot carrying the syscall return value on `arch` (eax / r3);
/// the slot a forced-result injector seeds in the taint engine.
trace::RegSlot syscall_result_slot(isa::Arch arch);

}  // namespace kfi::kernel
