// Kernel/user ABI of minux, the miniature Linux-2.4-like kernel.
//
// The workload (UnixBench stand-in) invokes the kernel exclusively through
// these system calls, like the paper's benchmark programs did.  The glue
// addresses are fixed stubs the runtime uses for returns from generated
// code (syscall exit, interrupt exit, scheduler-call exit).
#pragma once

#include "common/types.hpp"

namespace kfi::kernel {

enum class Syscall : u32 {
  kRead = 1,   // read(fd, ubuf, len)        -> bytes read
  kWrite = 2,  // write(fd, ubuf, len)       -> bytes written
  kAlloc = 3,  // alloc()                    -> page address or 0
  kFree = 4,   // free(page_addr)            -> 0 ok, -1 validation failed
  kSend = 5,   // send(ubuf, len)            -> len or -1
  kRecv = 6,   // recv(ubuf, maxlen)         -> bytes or 0 if empty
  kYield = 7,  // yield()                    -> 0
  kGetpid = 8, // getpid()                   -> pid of current
};

/// Number of kernel tasks: task 0 runs user system calls; 1..3 are the
/// kernel threads kupdate, kjournald and ksoftirqd.
constexpr u32 kNumTasks = 4;

/// Scheduler quantum in ticks and thread wakeup intervals.
constexpr u32 kQuantum = 4;
constexpr u32 kKupdateInterval = 5;
constexpr u32 kJournalInterval = 8;

// File-system shape.
constexpr u32 kNumBuffers = 16;
constexpr u32 kBlockSize = 64;
constexpr u32 kNumDiskBlocks = 64;
constexpr u32 kNumFiles = 4;

// Memory-management shape.
constexpr u32 kNumPages = 32;
constexpr u32 kPoolBlockSize = 128;

// Network shape.
constexpr u32 kNumSkbs = 12;
constexpr u32 kSkbDataSize = 96;
constexpr u32 kRingSize = 8;

/// r0 value of the riscf panic hypercall (sc with this marker).
constexpr u32 kPanicHypercall = 0x7F01;

/// The reserved "-1" error return.
constexpr u32 kErrReturn = 0xFFFFFFFFu;

}  // namespace kfi::kernel
