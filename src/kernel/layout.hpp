// Virtual-memory layout of the minux kernel, mirroring Linux 2.4 on both
// target machines: kernel text/data high at 0xC0000000+, one fixed-size
// kernel stack per process with guard pages, the NULL page unmapped, and a
// processor-local-bus window whose access raises a machine check (the G4's
// Table 4 category).
#pragma once

#include "common/types.hpp"
#include "isa/arch.hpp"

namespace kfi::kernel {

constexpr Addr kTextBase = 0xC0100000u;
constexpr Addr kGlueBase = 0xC00FF000u;  // return stubs (one page)
constexpr Addr kDataBase = 0xC0200000u;
constexpr Addr kStackRegion = 0xC0300000u;
constexpr Addr kUserBufBase = 0xC0500000u;  // workload I/O buffers
constexpr u32 kUserBufSize = 0x4000;
constexpr Addr kBusRegion = 0xFE000000u;  // processor-local bus window
constexpr u32 kBusRegionSize = 0x10000;

/// Offsets of the glue stubs within the glue page.
constexpr u32 kGlueSyscallReturn = 0x00;
constexpr u32 kGlueIsrReturn = 0x10;
constexpr u32 kGlueSchedReturn = 0x20;

/// Kernel stack sizes: the paper reports the average G4 runtime kernel
/// stack was about twice the P4's; Linux used 4 KB stacks on x86 and 8 KB
/// on PPC.
constexpr u32 stack_size(isa::Arch arch) {
  return arch == isa::Arch::kCisca ? 4096u : 8192u;
}

/// Each task's stack slot is stack_size + one guard page below it.
constexpr u32 stack_slot(isa::Arch arch) { return stack_size(arch) + 4096u; }

constexpr Addr stack_base(isa::Arch arch, u32 task) {
  return kStackRegion + task * stack_slot(arch) + 4096u;  // skip guard page
}

constexpr Addr stack_top(isa::Arch arch, u32 task) {
  return stack_base(arch, task) + stack_size(arch);
}

/// Physical memory given to each simulated machine.  Sized to fit the
/// kernel image, stacks, and buffers with headroom; kept small because the
/// injection framework snapshots/restores all of it on every "reboot".
constexpr u32 kPhysBytes = 1u * 1024 * 1024;

}  // namespace kfi::kernel
