// minux: the miniature Linux-2.4-like kernel, written once in kir.
//
// Subsystems mirror the ones the paper's profiling found hottest and whose
// functions appear in its worked examples:
//   sched — schedule / schedule_timeout / __switch_to / timer tick
//   fs    — buffer cache (getblk, flush), kupdate and kjournald threads
//           (Figures 8 and 9), block "disk", file table, sys_read/sys_write
//   mm    — page free-list allocator (alloc_pages / free_pages_ok,
//           Figure 7's mm-side function)
//   net   — skb pool with a pointer-linked free list (alloc_skb is
//           Figure 7's crash site), loopback tx/rx rings, ksoftirqd
//   locks — spinlocks with the SPINLOCK_DEBUG magic check (Figure 13),
//           including the big kernel lock taken on every syscall
//   lib   — memcpy_user / checksum
//
// build_kernel() emits the whole kernel through a Backend; the same source
// therefore produces the packed/stack-frame cisca kernel and the
// sparse/register-resident riscf kernel.
#pragma once

#include "kir/backend.hpp"

namespace kfi::kernel {

/// Well-known entry points (resolved from the image by name).
struct KernelEntryPoints {
  static constexpr const char* kDispatch = "sys_dispatch";
  static constexpr const char* kSchedule = "schedule";
  static constexpr const char* kTimerTick = "do_timer_tick";
  static constexpr const char* kSwitchTo = "__switch_to";
  static constexpr const char* kKupdate = "kupdate_thread";
  static constexpr const char* kKjournald = "kjournald_thread";
  static constexpr const char* kKsoftirqd = "ksoftirqd_thread";
};

/// Emit the complete kernel into `backend`.  Call backend.finish()
/// afterwards to obtain the image.
void build_kernel(kir::Backend& backend);

}  // namespace kfi::kernel
