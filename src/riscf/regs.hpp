// Register model of the riscf (G4-like) processor.
//
// Thirty-two 32-bit GPRs with the PowerPC EABI roles the paper leans on:
// r1 is the stack pointer, r3-r12 are volatile argument/scratch registers,
// r14-r31 are callee-saved non-volatiles.  Having 32 registers (versus the
// P4's 8) is what lets compiled kernel code keep values live in registers
// for a long time — lengthening code-error latency (Figure 16(C)) and
// making stack traffic, and therefore stack-error sensitivity, much lower
// than on the P4.
#pragma once

#include "common/types.hpp"

namespace kfi::riscf {

constexpr u32 kNumGprs = 32;
constexpr u8 kSp = 1;  // r1: stack frame pointer per PowerPC EABI

/// MSR bits (PowerPC numbering via LSB masks).  IR/DR are the two bits the
/// paper found error-sensitive: clearing either disables instruction/data
/// address translation and the machine immediately checks.
enum MsrBit : u32 {
  kMsrLE = 0x1,
  kMsrRI = 0x2,
  kMsrDR = 0x10,      // data address translation
  kMsrIR = 0x20,      // instruction address translation
  kMsrIP = 0x40,
  kMsrFE1 = 0x100,
  kMsrBE = 0x200,
  kMsrSE = 0x400,
  kMsrFE0 = 0x800,
  kMsrME = 0x1000,    // machine-check enable
  kMsrFP = 0x2000,
  kMsrPR = 0x4000,    // problem (user) state
  kMsrEE = 0x8000,    // external interrupt enable
};

/// SPR numbers with simulator semantics (the full supervisor bank is
/// enumerated in sysregs.cpp).
enum Spr : u32 {
  kSprXer = 1,
  kSprLr = 8,
  kSprCtr = 9,
  kSprDsisr = 18,
  kSprDar = 19,
  kSprDec = 22,
  kSprSdr1 = 25,
  kSprSrr0 = 26,
  kSprSrr1 = 27,
  kSprSprg0 = 272,
  kSprSprg1 = 273,
  kSprSprg2 = 274,  // exception stack-switch base (paper Section 5.2)
  kSprSprg3 = 275,
  kSprPvr = 287,
  kSprHid0 = 1008,  // cache/branch-unit control (paper Section 5.2)
  kSprHid1 = 1009,
};

/// HID0 bits with simulator semantics.
enum Hid0Bit : u32 {
  kHid0Btic = 0x00000020,  // branch target instruction cache enable
  kHid0Ice = 0x00008000,   // instruction cache enable
  kHid0Dce = 0x00004000,   // data cache enable
};

/// Condition-register helpers.  PowerPC numbers CR bits 0..31 from the MSB;
/// CR field 0 (used by record forms and cmpw) is bits 0-3.
constexpr u32 cr_bit_mask(u32 ppc_bit) { return 1u << (31 - ppc_bit); }

enum Cr0Bit : u32 {
  kCr0Lt = 0,  // PPC bit 0
  kCr0Gt = 1,
  kCr0Eq = 2,
  kCr0So = 3,
};

/// Trace register slots (trace::RegSlot values) for the shadow taint
/// engine.  GPRs occupy slots 0..31 directly; named special registers
/// follow; the 84 inert supervisor SPRs get dense slots starting at
/// kSlotInertSprBase (in inert_supervisor_sprs() order).
enum TraceSlot : u16 {
  kSlotPc = 32,
  kSlotLr = 33,
  kSlotCtr = 34,
  kSlotCr = 35,
  kSlotXer = 36,
  kSlotMsr = 37,
  kSlotSrr0 = 38,
  kSlotSrr1 = 39,
  kSlotDsisr = 40,
  kSlotDar = 41,
  kSlotDec = 42,
  kSlotSdr1 = 43,
  kSlotSprg0 = 44,  // SPRG0..SPRG3 contiguously
  kSlotHid0 = 48,
  kSlotHid1 = 49,
  kSlotPvr = 50,
  kSlotInertSprBase = 51,
};

struct RegFile {
  u32 gpr[kNumGprs] = {};
  u32 pc = 0;
  u32 lr = 0;
  u32 ctr = 0;
  u32 cr = 0;
  u32 xer = 0;
  u32 msr = kMsrIR | kMsrDR | kMsrME | kMsrEE | kMsrFP;  // kernel state
  u32 srr0 = 0, srr1 = 0;
  u32 dsisr = 0, dar = 0;
  u32 dec = 0x7FFFFFFF;
  u32 sdr1 = 0x00100000;  // hashed page table base (symbolic)
  // SPRG0: per-CPU data pointer; SPRG2: exception stack-switch base.
  u32 sprg[4] = {0xC0003000u, 0, 0xC0003000u, 0};
  u32 hid0 = kHid0Ice | kHid0Dce;        // caches on, BTIC off
  u32 hid1 = 0;
};

}  // namespace kfi::riscf
