// Architectural exception causes of the riscf (G4-like) processor.
//
// These are the PowerPC exception classes behind the paper's Table 4 crash
// categories: DSI/ISI ("kernel access of bad area"), program/illegal
// ("illegal instruction"), alignment, machine check (processor-local bus
// and translation-off errors), protection ("bus error" in the paper's
// taxonomy), trap-word ("bad trap"), and the software panic.  The "stack
// overflow" category is NOT an architectural exception — it is produced by
// the kernel's exception-entry checking wrapper (Section 6), modeled in
// kernel/runtime_riscf.
#pragma once

#include <string>

#include "common/types.hpp"

namespace kfi::riscf {

enum class Cause : u32 {
  kNone = 0,
  kMachineCheck,        // processor-local bus error, translation disabled
  kDataStorage,         // DSI: data access to unmapped address ("bad area")
  kInstrStorage,        // ISI: fetch from unmapped address ("bad area")
  kIllegalInstruction,  // program exception: reserved/illegal encoding
  kPrivileged,          // program exception: privileged op in problem state
  kTrapWord,            // tw/twi trap taken ("bad trap" unless kernel BUG)
  kAlignment,           // unaligned lwz/stw/lhz/... effective address
  kProtection,          // store to a write-protected page ("bus error")
  kKernelPanic,         // software panic hypercall (panic())
  kSyscall,             // sc: system call entry (not a failure)
  kSyscallReturn,       // sc from the return stub (not a failure)
};

std::string cause_name(Cause cause);

/// True for causes that represent kernel failures rather than the normal
/// syscall entry/exit traps.
bool is_fatal(Cause cause);

}  // namespace kfi::riscf
