// Assembler for the riscf (G4-like) processor.
//
// Emits fixed 32-bit big-endian instruction words with label/fixup support
// for the two branch displacement forms (26-bit I-form, 16-bit B-form).
// Used by the kir RiscfBackend, tests, and the decoder-study benches.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "riscf/regs.hpp"

namespace kfi::riscf {

class Asm {
 public:
  using Label = u32;

  explicit Asm(Addr base) : base_(base) {}

  Addr base() const { return base_; }
  Addr here() const { return base_ + static_cast<u32>(words_.size()) * 4; }
  u32 size_bytes() const { return static_cast<u32>(words_.size()) * 4; }

  Label new_label();
  void bind(Label label);
  Addr label_addr(Label label) const;

  // --- D-form arithmetic/logical ---
  void addi(u8 rt, u8 ra, i32 simm);
  void addis(u8 rt, u8 ra, i32 simm);
  void addic(u8 rt, u8 ra, i32 simm);
  void mulli(u8 rt, u8 ra, i32 simm);
  void li(u8 rt, i32 simm) { addi(rt, 0, simm); }
  void lis(u8 rt, i32 simm) { addis(rt, 0, simm); }
  /// Load a full 32-bit constant (lis + ori pair, or single insn if small).
  void li32(u8 rt, u32 value);
  void ori(u8 ra, u8 rs, u32 uimm);
  void oris(u8 ra, u8 rs, u32 uimm);
  void xori(u8 ra, u8 rs, u32 uimm);
  void andi_rec(u8 ra, u8 rs, u32 uimm);
  void rlwinm(u8 ra, u8 rs, u8 sh, u8 mb, u8 me, bool rc = false);
  void mr(u8 ra, u8 rs) { or_(ra, rs, rs); }
  void nop() { ori(0, 0, 0); }

  // --- compares ---
  void cmpwi(u8 ra, i32 simm, u8 crfd = 0);
  void cmplwi(u8 ra, u32 uimm, u8 crfd = 0);
  void cmpw(u8 ra, u8 rb, u8 crfd = 0);
  void cmplw(u8 ra, u8 rb, u8 crfd = 0);

  // --- D-form loads/stores ---
  void lwz(u8 rt, i32 d, u8 ra);
  void lwzu(u8 rt, i32 d, u8 ra);
  void lbz(u8 rt, i32 d, u8 ra);
  void lhz(u8 rt, i32 d, u8 ra);
  void lha(u8 rt, i32 d, u8 ra);
  void stw(u8 rs, i32 d, u8 ra);
  void stwu(u8 rs, i32 d, u8 ra);
  void stb(u8 rs, i32 d, u8 ra);
  void sth(u8 rs, i32 d, u8 ra);

  // --- X-form register-register ---
  void add(u8 rt, u8 ra, u8 rb, bool rc = false);
  void subf(u8 rt, u8 ra, u8 rb, bool rc = false);  // rt = rb - ra
  void neg(u8 rt, u8 ra);
  void mullw(u8 rt, u8 ra, u8 rb, bool rc = false);
  void divw(u8 rt, u8 ra, u8 rb);
  void divwu(u8 rt, u8 ra, u8 rb);
  void and_(u8 ra, u8 rs, u8 rb, bool rc = false);
  void or_(u8 ra, u8 rs, u8 rb, bool rc = false);
  void xor_(u8 ra, u8 rs, u8 rb, bool rc = false);
  void nor(u8 ra, u8 rs, u8 rb);
  void cntlzw(u8 ra, u8 rs);
  void slw(u8 ra, u8 rs, u8 rb);
  void srw(u8 ra, u8 rs, u8 rb);
  void sraw(u8 ra, u8 rs, u8 rb);
  void srawi(u8 ra, u8 rs, u8 sh);

  // --- X-form loads/stores ---
  void lwzx(u8 rt, u8 ra, u8 rb);
  void stwx(u8 rs, u8 ra, u8 rb);
  void lbzx(u8 rt, u8 ra, u8 rb);
  void stbx(u8 rs, u8 ra, u8 rb);
  void lhzx(u8 rt, u8 ra, u8 rb);
  void lhax(u8 rt, u8 ra, u8 rb);
  void sthx(u8 rs, u8 ra, u8 rb);

  // --- branches ---
  void b(Label label);
  void bl(Label label);
  void bl_addr(Addr target);
  void bc(u8 bo, u8 bi, Label label);
  void blr();
  void blrl();
  void bctr();
  void bctrl();
  /// CR0-based conditional branches (PPC extended mnemonics).
  void beq(Label label) { bc(12, 2, label); }
  void bne(Label label) { bc(4, 2, label); }
  void blt(Label label) { bc(12, 0, label); }
  void bge(Label label) { bc(4, 0, label); }
  void bgt(Label label) { bc(12, 1, label); }
  void ble(Label label) { bc(4, 1, label); }
  void bdnz(Label label) { bc(16, 0, label); }

  // --- special registers, traps ---
  void mfspr(u8 rt, u32 spr);
  void mtspr(u32 spr, u8 rs);
  void mflr(u8 rt) { mfspr(rt, kSprLr); }
  void mtlr(u8 rs) { mtspr(kSprLr, rs); }
  void mfctr(u8 rt) { mfspr(rt, kSprCtr); }
  void mtctr(u8 rs) { mtspr(kSprCtr, rs); }
  void mfmsr(u8 rt);
  void mtmsr(u8 rs);
  void mfcr(u8 rt);
  void sc();
  void tw(u8 to, u8 ra, u8 rb);
  void trap() { tw(31, 0, 0); }  // unconditional trap (kernel BUG)
  void sync();
  void isync();

  /// Raw word (tests, deliberately-corrupt encodings).
  void emit_word(u32 word) { words_.push_back(word); }

  /// Finalize: apply fixups; returns big-endian byte image.
  std::vector<u8> finish();

 private:
  void emit(u32 word) { words_.push_back(word); }
  void emit_d(u32 opcd, u8 rt, u8 ra, u32 d16);
  void emit_x(u32 ext, u8 rt, u8 ra, u8 rb, bool rc);
  static u32 spr_field(u32 spr);

  enum class FixKind { kRel24, kRel14 };
  struct Fixup {
    u32 word_index;
    Label label;
    FixKind kind;
  };

  Addr base_;
  std::vector<u32> words_;
  std::vector<i64> labels_;
  std::vector<Fixup> fixups_;
  bool finished_ = false;
};

}  // namespace kfi::riscf
