#include "riscf/sysregs.hpp"

#include <array>

#include "common/error.hpp"
#include "riscf/cpu.hpp"

namespace kfi::riscf {

namespace {

enum class Kind : u8 { kMsr, kGpr1, kSpr };

struct BankEntry {
  isa::SysRegInfo info;
  Kind kind;
  u32 spr;  // when kind == kSpr
};

std::vector<BankEntry> build_bank() {
  std::vector<BankEntry> bank;
  auto add = [&bank](const char* name, Kind kind, u32 spr = 0) {
    bank.push_back(BankEntry{{name, 32}, kind, spr});
  };

  add("MSR", Kind::kMsr);
  add("GPR1/SP", Kind::kGpr1);

  // Exception handling.
  add("DSISR", Kind::kSpr, 18);
  add("DAR", Kind::kSpr, 19);
  add("DEC", Kind::kSpr, 22);
  add("SDR1", Kind::kSpr, 25);
  add("SRR0", Kind::kSpr, 26);
  add("SRR1", Kind::kSpr, 27);
  for (u32 i = 0; i < 8; ++i) {
    add(("SPRG" + std::to_string(i)).c_str(), Kind::kSpr, 272 + i);
  }
  add("EAR", Kind::kSpr, 282);
  add("TBL", Kind::kSpr, 284);
  add("TBU", Kind::kSpr, 285);
  add("PVR", Kind::kSpr, 287);

  // Block address translation (memory management).
  for (u32 i = 0; i < 8; ++i) {
    const u32 base = i < 4 ? 528 + i * 2 : 560 + (i - 4) * 2;
    add(("IBAT" + std::to_string(i) + "U").c_str(), Kind::kSpr, base);
    add(("IBAT" + std::to_string(i) + "L").c_str(), Kind::kSpr, base + 1);
  }
  for (u32 i = 0; i < 8; ++i) {
    const u32 base = i < 4 ? 536 + i * 2 : 568 + (i - 4) * 2;
    add(("DBAT" + std::to_string(i) + "U").c_str(), Kind::kSpr, base);
    add(("DBAT" + std::to_string(i) + "L").c_str(), Kind::kSpr, base + 1);
  }

  // Performance monitor (supervisor + user-visible copies).
  add("MMCR2", Kind::kSpr, 944);
  add("PMC5", Kind::kSpr, 945);
  add("PMC6", Kind::kSpr, 946);
  add("BAMR", Kind::kSpr, 951);
  add("MMCR0", Kind::kSpr, 952);
  add("PMC1", Kind::kSpr, 953);
  add("PMC2", Kind::kSpr, 954);
  add("SIA", Kind::kSpr, 955);
  add("MMCR1", Kind::kSpr, 956);
  add("PMC3", Kind::kSpr, 957);
  add("PMC4", Kind::kSpr, 958);
  add("SDA", Kind::kSpr, 959);
  add("UMMCR2", Kind::kSpr, 928);
  add("UPMC5", Kind::kSpr, 929);
  add("UPMC6", Kind::kSpr, 930);
  add("UBAMR", Kind::kSpr, 935);
  add("UMMCR0", Kind::kSpr, 936);
  add("UPMC1", Kind::kSpr, 937);
  add("UPMC2", Kind::kSpr, 938);
  add("USIA", Kind::kSpr, 939);
  add("UMMCR1", Kind::kSpr, 940);
  add("UPMC3", Kind::kSpr, 941);
  add("UPMC4", Kind::kSpr, 942);
  add("USDA", Kind::kSpr, 943);

  // Configuration and cache/memory subsystem.
  add("HID0", Kind::kSpr, 1008);
  add("HID1", Kind::kSpr, 1009);
  add("IABR", Kind::kSpr, 1010);
  add("ICTRL", Kind::kSpr, 1011);
  add("LDSTDB", Kind::kSpr, 1012);
  add("DABR", Kind::kSpr, 1013);
  add("MSSCR0", Kind::kSpr, 1014);
  add("MSSSR0", Kind::kSpr, 1015);
  add("LDSTCR", Kind::kSpr, 1016);
  add("L2CR", Kind::kSpr, 1017);
  add("L3CR", Kind::kSpr, 1018);
  add("ICTC", Kind::kSpr, 1019);
  add("THRM1", Kind::kSpr, 1020);
  add("THRM2", Kind::kSpr, 1021);
  add("THRM3", Kind::kSpr, 1022);
  add("PIR", Kind::kSpr, 1023);

  // Software TLB-miss assist registers.
  add("DMISS", Kind::kSpr, 976);
  add("DCMP", Kind::kSpr, 977);
  add("HASH1", Kind::kSpr, 978);
  add("HASH2", Kind::kSpr, 979);
  add("IMISS", Kind::kSpr, 980);
  add("ICMP", Kind::kSpr, 981);
  add("RPA", Kind::kSpr, 982);

  KFI_CHECK(bank.size() == 99, "riscf supervisor bank must have 99 registers");
  return bank;
}

const std::vector<BankEntry>& bank() {
  static const std::vector<BankEntry> kBank = build_bank();
  return kBank;
}

}  // namespace

const std::vector<u32>& inert_supervisor_sprs() {
  static const std::vector<u32> kInert = [] {
    std::vector<u32> sprs;
    for (const auto& entry : bank()) {
      if (entry.kind != Kind::kSpr) continue;
      // Semantic SPRs are backed by named RegFile fields.
      switch (entry.spr) {
        case 18: case 19: case 22: case 25: case 26: case 27:
        case 272: case 273: case 274: case 275:
        case 287: case 1008: case 1009:
          continue;
        default:
          sprs.push_back(entry.spr);
      }
    }
    return sprs;
  }();
  return kInert;
}

trace::RegSlot RiscfCpu::spr_slot(u32 spr) {
  switch (spr) {
    case kSprXer: return kSlotXer;
    case kSprLr: return kSlotLr;
    case kSprCtr: return kSlotCtr;
    case kSprDsisr: return kSlotDsisr;
    case kSprDar: return kSlotDar;
    case kSprDec: return kSlotDec;
    case kSprSdr1: return kSlotSdr1;
    case kSprSrr0: return kSlotSrr0;
    case kSprSrr1: return kSlotSrr1;
    case kSprSprg0: case kSprSprg1: case kSprSprg2: case kSprSprg3:
      return static_cast<trace::RegSlot>(kSlotSprg0 + (spr - kSprSprg0));
    case kSprPvr: return kSlotPvr;
    case kSprHid0: return kSlotHid0;
    case kSprHid1: return kSlotHid1;
    default: {
      const std::vector<u32>& inert = inert_supervisor_sprs();
      for (size_t i = 0; i < inert.size(); ++i) {
        if (inert[i] == spr) {
          return static_cast<trace::RegSlot>(kSlotInertSprBase + i);
        }
      }
      return trace::kNoSlot;
    }
  }
}

trace::RegSlot RiscfCpu::sysreg_slot(u32 index) const {
  if (index >= bank().size()) return trace::kNoSlot;
  const BankEntry& entry = bank()[index];
  switch (entry.kind) {
    case Kind::kMsr: return kSlotMsr;
    case Kind::kGpr1: return kSp;  // GPR shadow slots are the GPR numbers
    case Kind::kSpr: return spr_slot(entry.spr);
  }
  return trace::kNoSlot;
}

u32 RiscfSysRegs::count() const { return static_cast<u32>(bank().size()); }

const isa::SysRegInfo& RiscfSysRegs::info(u32 index) const {
  KFI_CHECK(index < bank().size(), "riscf sysreg index out of range");
  return bank()[index].info;
}

u32 RiscfSysRegs::read(u32 index) const {
  KFI_CHECK(index < bank().size(), "riscf sysreg index out of range");
  const BankEntry& entry = bank()[index];
  switch (entry.kind) {
    case Kind::kMsr: return cpu_.regs_.msr;
    case Kind::kGpr1: return cpu_.regs_.gpr[kSp];
    case Kind::kSpr: {
      u32 value = 0;
      KFI_CHECK(cpu_.read_spr(entry.spr, value), "bank SPR unreadable");
      return value;
    }
  }
  return 0;
}

void RiscfSysRegs::write(u32 index, u32 value) {
  KFI_CHECK(index < bank().size(), "riscf sysreg index out of range");
  const BankEntry& entry = bank()[index];
  switch (entry.kind) {
    case Kind::kMsr: cpu_.regs_.msr = value; return;
    case Kind::kGpr1: cpu_.regs_.gpr[kSp] = value; return;
    case Kind::kSpr:
      KFI_CHECK(cpu_.write_spr(entry.spr, value), "bank SPR unwritable");
      return;
  }
}

}  // namespace kfi::riscf
