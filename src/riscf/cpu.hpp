// Instruction-level interpreter for the riscf (G4-like) processor.
//
// Faithful to the properties the paper's analysis rests on:
//   * fixed 32-bit big-endian instructions over a sparse opcode map, so a
//     text bit flip corrupts exactly one instruction and frequently lands
//     on a reserved encoding (illegal instruction, Figure 15);
//   * word-aligned memory access with alignment exceptions;
//   * supervisor state in the MSR — clearing IR or DR (address
//     translation) machine-checks immediately, as the paper observed;
//   * HID0's branch-target-instruction-cache enable: switching BTIC on
//     over invalid contents corrupts the next taken branch (Section 5.2);
//   * no divide trap (PPC division does not except — Table 4 has no
//     divide-error category);
//   * a cycle counter standing in for the performance monitor.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "isa/cpu.hpp"
#include "mem/address_space.hpp"
#include "riscf/cause.hpp"
#include "riscf/insn.hpp"
#include "riscf/regs.hpp"

namespace kfi::riscf {

class RiscfSysRegs;  // defined in sysregs.hpp
struct RiscfOps;     // per-op execute handlers (cpu.cpp)

class RiscfCpu final : public isa::CpuCore {
 public:
  explicit RiscfCpu(mem::AddressSpace& space);
  ~RiscfCpu() override;

  RiscfCpu(const RiscfCpu&) = delete;
  RiscfCpu& operator=(const RiscfCpu&) = delete;

  // isa::CpuCore
  isa::StepResult step() override;
  Addr pc() const override { return regs_.pc; }
  void set_pc(Addr pc) override { regs_.pc = pc; }
  Cycles cycles() const override { return cycles_; }
  void add_cycles(Cycles n) override { cycles_ += n; }
  isa::DebugUnit& debug() override { return debug_; }
  isa::SystemRegisterBank& sysregs() override;
  Addr stack_pointer() const override { return regs_.gpr[kSp]; }
  isa::CpuSnapshot snapshot() const override;
  void restore(const isa::CpuSnapshot& snap) override;
  void set_decode_cache_enabled(bool enabled) override;
  bool decode_cache_enabled() const override { return dcache_enabled_; }
  isa::DecodeCacheStats decode_cache_stats() const override {
    return dcache_stats_;
  }
  isa::StepResult step_block(const isa::BlockLimits& limits,
                             u64* consumed) override;
  void set_superblocks_enabled(bool enabled) override;
  bool superblocks_enabled() const override { return sblocks_enabled_; }
  isa::SuperblockStats superblock_stats() const override { return sb_stats_; }
  void set_trace_sink(trace::TraceSink* sink) override { sink_ = sink; }
  trace::RegSlot sysreg_slot(u32 index) const override;

  RegFile& regs() { return regs_; }
  const RegFile& regs() const { return regs_; }
  mem::AddressSpace& space() { return space_; }

  /// Trace slot for an SPR number (kNoSlot if unimplemented); defined in
  /// sysregs.cpp next to the bank enumeration it must stay in sync with.
  static trace::RegSlot spr_slot(u32 spr);

  /// Generic SPR access (also used by mfspr/mtspr execution).  Returns
  /// false if the SPR is not implemented.
  bool read_spr(u32 spr, u32& value) const;
  bool write_spr(u32 spr, u32 value);

  /// Decode (without executing) the word at `pc`; diagnostics only.
  Insn decode_at(Addr pc) const;

 private:
  friend class RiscfSysRegs;
  friend struct RiscfOps;
  struct TrapException {
    isa::Trap trap;
  };

  /// Superblock cache: straight-line runs of predecoded instructions plus
  /// their pre-resolved execute handlers, direct-mapped on the physical
  /// word address of the first instruction.  Instructions are fixed-size
  /// and aligned, so a block covers consecutive words of exactly one
  /// physical page and is valid only while that page's write version is
  /// unchanged — stores, injected flips, and reboots into cached code
  /// force a rebuild.
  struct BlockInsn {
    Insn insn{};
    void (*fn)(RiscfCpu&, const Insn&) = nullptr;
    u32 phys = 0;
  };
  struct Superblock {
    u32 tag = 0xFFFFFFFFu;  // physical address (never valid: unaligned)
    Addr vpc = 0;           // virtual pc (guards against phys aliasing)
    u32 page = 0;
    u64 ver = 0;
    std::vector<BlockInsn> insns;
  };
  static constexpr u32 kSuperblockEntries = 2048;
  static constexpr u32 kMaxBlockInsns = 32;

  /// (Re)build the block starting at vpc/phys0 in place; false when no
  /// block can start here (invalid first instruction) and the caller must
  /// single-step.
  bool build_block(Superblock& blk, Addr vpc, u32 phys0);
  static bool block_terminator(const Insn& insn);

  /// Predecoded-instruction cache: direct-mapped on the physical word
  /// address (instructions are fixed 32-bit and aligned, so one entry
  /// covers exactly one word in exactly one page).  Entries are validated
  /// against the page's write version, so stores, injected flips, and
  /// reboots into cached code force a re-decode.
  struct DecodeCacheEntry {
    u32 tag = 0xFFFFFFFFu;  // physical word address (never valid: unaligned)
    u64 ver = 0;
    Insn insn{};
  };
  static constexpr u32 kDecodeCacheEntries = 8192;

  /// Fetch + decode the word at physical address `phys`, through the
  /// cache when enabled.  Reference valid until the next call.
  const Insn& decode_cached(u32 phys);

  [[noreturn]] void raise(Cause cause, Addr addr = 0, bool has_addr = false,
                          u32 aux = 0);
  u32 read_mem(Addr addr, u8 width);
  void write_mem(Addr addr, u8 width, u32 value);
  void check_alignment(Addr ea, u8 width);
  void set_cr_field(u8 field, u32 bits4);
  void record_cr0(u32 result);
  void compare(u8 crfd, i64 a, i64 b);
  bool branch_cond(u8 bo, u8 bi);
  void taken_branch_check();
  void require_supervisor();
  void execute(const Insn& insn);

  /// Declarative register-flow passes around execute(): reads fold into
  /// the sink's per-instruction accumulator before the instruction runs,
  /// writes commit after it retires (skipped when the instruction traps,
  /// which matches the partial-retirement the trap leaves behind).  The
  /// four branch ops and the CR/SPR helpers hook themselves instead,
  /// because their register traffic depends on taken/not-taken outcomes.
  void trace_reads(const Insn& insn);
  void trace_writes(const Insn& insn);

  // Trace-hook shorthands: one predictable null check when tracing is off,
  // mirroring the current_result_ guard on debug-access recording.
  void trace_rr(trace::RegSlot slot) const {
    if (sink_ != nullptr) sink_->on_reg_read(slot);
  }
  void trace_rw(trace::RegSlot slot) {
    if (sink_ != nullptr) sink_->on_reg_write(slot);
  }
  void trace_rm(trace::RegSlot slot) {
    if (sink_ != nullptr) sink_->on_reg_merge(slot);
  }
  void trace_branch() const {
    if (sink_ != nullptr) sink_->on_branch_decision();
  }

  mem::AddressSpace& space_;
  RegFile regs_;
  isa::DebugUnit debug_;
  Cycles cycles_ = 0;
  isa::StepResult* current_result_ = nullptr;
  trace::TraceSink* sink_ = nullptr;
  std::map<u32, u32> spr_storage_;  // inert supervisor SPRs (BATs, PMCs, ...)
  bool dcache_enabled_ = false;
  std::vector<DecodeCacheEntry> dcache_;  // allocated when enabled
  Insn dcache_scratch_{};                 // cache-off path
  isa::DecodeCacheStats dcache_stats_;
  bool sblocks_enabled_ = false;
  std::vector<Superblock> sblocks_;  // allocated when enabled
  isa::SuperblockStats sb_stats_;
  std::unique_ptr<RiscfSysRegs> sysregs_;
};

}  // namespace kfi::riscf
