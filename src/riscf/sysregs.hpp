// System-register bank of the riscf (G4-like) processor.
//
// The paper's G4 register campaign targeted the 99 registers of the
// PowerPC supervisor model: memory-management registers, configuration
// registers, performance-monitor registers, exception-handling registers,
// and cache/memory-subsystem registers (Section 5.2).  This bank
// enumerates the MPC7455-style supervisor set — MSR, the kernel stack
// pointer (injected by the paper's G4 campaign alongside the supervisor
// registers), and 97 SPRs.  Only a handful carry simulator semantics
// (MSR.IR/DR, SPRG2, HID0, SRR0/1, SDR1); the rest are architecturally
// present but inert, which is itself faithful: the paper found only 15 of
// the 99 registers contributed any crash at all.
#pragma once

#include <vector>

#include "isa/sysreg.hpp"

namespace kfi::riscf {

class RiscfCpu;

class RiscfSysRegs final : public isa::SystemRegisterBank {
 public:
  explicit RiscfSysRegs(RiscfCpu& cpu) : cpu_(cpu) {}

  u32 count() const override;
  const isa::SysRegInfo& info(u32 index) const override;
  u32 read(u32 index) const override;
  void write(u32 index, u32 value) override;

 private:
  RiscfCpu& cpu_;
};

/// SPR numbers in the supervisor bank that have no simulator semantics;
/// the CPU backs them with plain storage so mfspr/mtspr and injection
/// round-trip.
const std::vector<u32>& inert_supervisor_sprs();

}  // namespace kfi::riscf
