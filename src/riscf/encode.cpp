#include "riscf/encode.hpp"

#include "common/error.hpp"

namespace kfi::riscf {

Asm::Label Asm::new_label() {
  labels_.push_back(-1);
  return static_cast<Label>(labels_.size() - 1);
}

void Asm::bind(Label label) {
  KFI_CHECK(label < labels_.size(), "bind: bad label");
  KFI_CHECK(labels_[label] < 0, "bind: label already bound");
  labels_[label] = static_cast<i64>(words_.size()) * 4;
}

Addr Asm::label_addr(Label label) const {
  KFI_CHECK(label < labels_.size() && labels_[label] >= 0,
            "label_addr: unbound label");
  return base_ + static_cast<u32>(labels_[label]);
}

void Asm::emit_d(u32 opcd, u8 rt, u8 ra, u32 d16) {
  emit((opcd << 26) | (static_cast<u32>(rt & 31) << 21) |
       (static_cast<u32>(ra & 31) << 16) | (d16 & 0xFFFF));
}

void Asm::emit_x(u32 ext, u8 rt, u8 ra, u8 rb, bool rc) {
  emit((31u << 26) | (static_cast<u32>(rt & 31) << 21) |
       (static_cast<u32>(ra & 31) << 16) | (static_cast<u32>(rb & 31) << 11) |
       ((ext & 0x3FF) << 1) | (rc ? 1 : 0));
}

u32 Asm::spr_field(u32 spr) {
  return ((spr & 0x1F) << 16) | (((spr >> 5) & 0x1F) << 11);
}

void Asm::addi(u8 rt, u8 ra, i32 simm) { emit_d(14, rt, ra, static_cast<u32>(simm)); }
void Asm::addis(u8 rt, u8 ra, i32 simm) { emit_d(15, rt, ra, static_cast<u32>(simm)); }
void Asm::addic(u8 rt, u8 ra, i32 simm) { emit_d(12, rt, ra, static_cast<u32>(simm)); }
void Asm::mulli(u8 rt, u8 ra, i32 simm) { emit_d(7, rt, ra, static_cast<u32>(simm)); }

void Asm::li32(u8 rt, u32 value) {
  const i32 sv = static_cast<i32>(value);
  if (sv >= -32768 && sv <= 32767) {
    li(rt, sv);
    return;
  }
  // lis shifts the (masked) 16-bit field left; ori zero-extends, so the
  // lis/ori pair composes any 32-bit constant without sign correction.
  lis(rt, static_cast<i16>(value >> 16));
  if ((value & 0xFFFF) != 0) ori(rt, rt, value & 0xFFFF);
}

void Asm::ori(u8 ra, u8 rs, u32 uimm) { emit_d(24, rs, ra, uimm); }
void Asm::oris(u8 ra, u8 rs, u32 uimm) { emit_d(25, rs, ra, uimm); }
void Asm::xori(u8 ra, u8 rs, u32 uimm) { emit_d(26, rs, ra, uimm); }
void Asm::andi_rec(u8 ra, u8 rs, u32 uimm) { emit_d(28, rs, ra, uimm); }

void Asm::rlwinm(u8 ra, u8 rs, u8 sh, u8 mb, u8 me, bool rc) {
  emit((21u << 26) | (static_cast<u32>(rs & 31) << 21) |
       (static_cast<u32>(ra & 31) << 16) | (static_cast<u32>(sh & 31) << 11) |
       (static_cast<u32>(mb & 31) << 6) | (static_cast<u32>(me & 31) << 1) |
       (rc ? 1 : 0));
}

void Asm::cmpwi(u8 ra, i32 simm, u8 crfd) {
  emit_d(11, static_cast<u8>(crfd << 2), ra, static_cast<u32>(simm));
}

void Asm::cmplwi(u8 ra, u32 uimm, u8 crfd) {
  emit_d(10, static_cast<u8>(crfd << 2), ra, uimm);
}

void Asm::cmpw(u8 ra, u8 rb, u8 crfd) {
  emit_x(0, static_cast<u8>(crfd << 2), ra, rb, false);
}

void Asm::cmplw(u8 ra, u8 rb, u8 crfd) {
  emit_x(32, static_cast<u8>(crfd << 2), ra, rb, false);
}

void Asm::lwz(u8 rt, i32 d, u8 ra) { emit_d(32, rt, ra, static_cast<u32>(d)); }
void Asm::lwzu(u8 rt, i32 d, u8 ra) { emit_d(33, rt, ra, static_cast<u32>(d)); }
void Asm::lbz(u8 rt, i32 d, u8 ra) { emit_d(34, rt, ra, static_cast<u32>(d)); }
void Asm::lhz(u8 rt, i32 d, u8 ra) { emit_d(40, rt, ra, static_cast<u32>(d)); }
void Asm::lha(u8 rt, i32 d, u8 ra) { emit_d(42, rt, ra, static_cast<u32>(d)); }
void Asm::stw(u8 rs, i32 d, u8 ra) { emit_d(36, rs, ra, static_cast<u32>(d)); }
void Asm::stwu(u8 rs, i32 d, u8 ra) { emit_d(37, rs, ra, static_cast<u32>(d)); }
void Asm::stb(u8 rs, i32 d, u8 ra) { emit_d(38, rs, ra, static_cast<u32>(d)); }
void Asm::sth(u8 rs, i32 d, u8 ra) { emit_d(44, rs, ra, static_cast<u32>(d)); }

void Asm::add(u8 rt, u8 ra, u8 rb, bool rc) { emit_x(266, rt, ra, rb, rc); }
void Asm::subf(u8 rt, u8 ra, u8 rb, bool rc) { emit_x(40, rt, ra, rb, rc); }
void Asm::neg(u8 rt, u8 ra) { emit_x(104, rt, ra, 0, false); }
void Asm::mullw(u8 rt, u8 ra, u8 rb, bool rc) { emit_x(235, rt, ra, rb, rc); }
void Asm::divw(u8 rt, u8 ra, u8 rb) { emit_x(491, rt, ra, rb, false); }
void Asm::divwu(u8 rt, u8 ra, u8 rb) { emit_x(459, rt, ra, rb, false); }
void Asm::and_(u8 ra, u8 rs, u8 rb, bool rc) { emit_x(28, rs, ra, rb, rc); }
void Asm::or_(u8 ra, u8 rs, u8 rb, bool rc) { emit_x(444, rs, ra, rb, rc); }
void Asm::xor_(u8 ra, u8 rs, u8 rb, bool rc) { emit_x(316, rs, ra, rb, rc); }
void Asm::nor(u8 ra, u8 rs, u8 rb) { emit_x(124, rs, ra, rb, false); }
void Asm::cntlzw(u8 ra, u8 rs) { emit_x(26, rs, ra, 0, false); }
void Asm::slw(u8 ra, u8 rs, u8 rb) { emit_x(24, rs, ra, rb, false); }
void Asm::srw(u8 ra, u8 rs, u8 rb) { emit_x(536, rs, ra, rb, false); }
void Asm::sraw(u8 ra, u8 rs, u8 rb) { emit_x(792, rs, ra, rb, false); }
void Asm::srawi(u8 ra, u8 rs, u8 sh) { emit_x(824, rs, ra, sh, false); }

void Asm::lwzx(u8 rt, u8 ra, u8 rb) { emit_x(23, rt, ra, rb, false); }
void Asm::stwx(u8 rs, u8 ra, u8 rb) { emit_x(151, rs, ra, rb, false); }
void Asm::lbzx(u8 rt, u8 ra, u8 rb) { emit_x(87, rt, ra, rb, false); }
void Asm::stbx(u8 rs, u8 ra, u8 rb) { emit_x(215, rs, ra, rb, false); }
void Asm::lhzx(u8 rt, u8 ra, u8 rb) { emit_x(279, rt, ra, rb, false); }
void Asm::lhax(u8 rt, u8 ra, u8 rb) { emit_x(343, rt, ra, rb, false); }
void Asm::sthx(u8 rs, u8 ra, u8 rb) { emit_x(407, rs, ra, rb, false); }

void Asm::b(Label label) {
  fixups_.push_back(Fixup{static_cast<u32>(words_.size()), label, FixKind::kRel24});
  emit(18u << 26);
}

void Asm::bl(Label label) {
  fixups_.push_back(Fixup{static_cast<u32>(words_.size()), label, FixKind::kRel24});
  emit((18u << 26) | 1);
}

void Asm::bl_addr(Addr target) {
  const i32 rel = static_cast<i32>(target - here());
  KFI_CHECK(rel >= -(1 << 25) && rel < (1 << 25), "bl target out of range");
  emit((18u << 26) | (static_cast<u32>(rel) & 0x03FFFFFC) | 1);
}

void Asm::bc(u8 bo, u8 bi, Label label) {
  fixups_.push_back(Fixup{static_cast<u32>(words_.size()), label, FixKind::kRel14});
  emit((16u << 26) | (static_cast<u32>(bo & 31) << 21) |
       (static_cast<u32>(bi & 31) << 16));
}

void Asm::blr() { emit((19u << 26) | (20u << 21) | (16u << 1)); }
void Asm::blrl() { emit((19u << 26) | (20u << 21) | (16u << 1) | 1); }
void Asm::bctr() { emit((19u << 26) | (20u << 21) | (528u << 1)); }
void Asm::bctrl() { emit((19u << 26) | (20u << 21) | (528u << 1) | 1); }

void Asm::mfspr(u8 rt, u32 spr) {
  emit((31u << 26) | (static_cast<u32>(rt & 31) << 21) | spr_field(spr) |
       (339u << 1));
}

void Asm::mtspr(u32 spr, u8 rs) {
  emit((31u << 26) | (static_cast<u32>(rs & 31) << 21) | spr_field(spr) |
       (467u << 1));
}

void Asm::mfmsr(u8 rt) { emit_x(83, rt, 0, 0, false); }
void Asm::mtmsr(u8 rs) { emit_x(146, rs, 0, 0, false); }
void Asm::mfcr(u8 rt) { emit_x(19, rt, 0, 0, false); }

void Asm::sc() { emit((17u << 26) | 2); }

void Asm::tw(u8 to, u8 ra, u8 rb) { emit_x(4, to, ra, rb, false); }

void Asm::sync() { emit_x(598, 0, 0, 0, false); }
void Asm::isync() { emit((19u << 26) | (150u << 1)); }

std::vector<u8> Asm::finish() {
  KFI_CHECK(!finished_, "Asm::finish called twice");
  finished_ = true;
  for (const Fixup& fx : fixups_) {
    KFI_CHECK(fx.label < labels_.size() && labels_[fx.label] >= 0,
              "unbound label at finish");
    const i64 target = labels_[fx.label];
    const i64 rel = target - static_cast<i64>(fx.word_index) * 4;
    u32& word = words_[fx.word_index];
    if (fx.kind == FixKind::kRel24) {
      KFI_CHECK(rel >= -(1 << 25) && rel < (1 << 25), "rel24 out of range");
      word |= static_cast<u32>(rel) & 0x03FFFFFC;
    } else {
      KFI_CHECK(rel >= -(1 << 15) && rel < (1 << 15), "rel14 out of range");
      word |= static_cast<u32>(rel) & 0xFFFC;
    }
  }
  std::vector<u8> bytes;
  bytes.reserve(words_.size() * 4);
  for (const u32 w : words_) {
    bytes.push_back(static_cast<u8>(w >> 24));
    bytes.push_back(static_cast<u8>(w >> 16));
    bytes.push_back(static_cast<u8>(w >> 8));
    bytes.push_back(static_cast<u8>(w));
  }
  return bytes;
}

}  // namespace kfi::riscf
