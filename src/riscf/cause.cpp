#include "riscf/cause.hpp"

namespace kfi::riscf {

std::string cause_name(Cause cause) {
  switch (cause) {
    case Cause::kNone: return "none";
    case Cause::kMachineCheck: return "machine-check";
    case Cause::kDataStorage: return "data-storage";
    case Cause::kInstrStorage: return "instr-storage";
    case Cause::kIllegalInstruction: return "illegal-instruction";
    case Cause::kPrivileged: return "privileged";
    case Cause::kTrapWord: return "trap-word";
    case Cause::kAlignment: return "alignment";
    case Cause::kProtection: return "protection";
    case Cause::kKernelPanic: return "kernel-panic";
    case Cause::kSyscall: return "syscall";
    case Cause::kSyscallReturn: return "syscall-return";
  }
  return "unknown";
}

bool is_fatal(Cause cause) {
  switch (cause) {
    case Cause::kNone:
    case Cause::kSyscall:
    case Cause::kSyscallReturn:
      return false;
    default:
      return true;
  }
}

}  // namespace kfi::riscf
