#include "common/bits.hpp"
#include "riscf/insn.hpp"

namespace kfi::riscf {

namespace {

Insn base_fields(u32 word) {
  Insn insn;
  insn.raw = word;
  insn.rt = static_cast<u8>((word >> 21) & 31);
  insn.ra = static_cast<u8>((word >> 16) & 31);
  insn.rb = static_cast<u8>((word >> 11) & 31);
  insn.simm = sign_extend32(word & 0xFFFF, 16);
  insn.uimm = word & 0xFFFF;
  insn.rc = (word & 1) != 0;
  return insn;
}

Op decode_x_form(u32 ext) {
  switch (ext) {
    case 0: return Op::kCmp;
    case 11: return Op::kMulhwu;
    case 20: return Op::kLwarx;
    case 54: return Op::kDcbt;  // dcbst: harmless cache maintenance
    case 60: return Op::kAndc;
    case 75: return Op::kMulhw;
    case 144: return Op::kMtcrf;
    case 246: return Op::kDcbt;
    case 278: return Op::kDcbt;
    case 284: return Op::kEqv;
    case 371: return Op::kMftb;
    case 412: return Op::kOrc;
    case 476: return Op::kNand;
    case 534: return Op::kLwarx;   // lwbrx: modeled as a plain word load
    case 662: return Op::kStwcx;   // stwbrx: modeled as a plain word store
    case 922: return Op::kExtsh;
    case 954: return Op::kExtsb;
    case 1014: return Op::kDcbz;
    case 4: return Op::kTw;
    case 23: return Op::kLwzx;
    case 26: return Op::kCntlzw;
    case 28: return Op::kAnd;
    case 24: return Op::kSlw;
    case 32: return Op::kCmpl;
    case 40: return Op::kSubf;
    case 83: return Op::kMfmsr;
    case 86: return Op::kDcbf;
    case 87: return Op::kLbzx;
    case 104: return Op::kNeg;
    case 124: return Op::kNor;
    case 146: return Op::kMtmsr;
    case 150: return Op::kIsync;  // (actually 19/150; accepted here)
    case 151: return Op::kStwx;
    case 19: return Op::kMfcr;
    case 215: return Op::kStbx;
    case 235: return Op::kMullw;
    case 266: return Op::kAdd;
    case 279: return Op::kLhzx;
    case 316: return Op::kXor;
    case 339: return Op::kMfspr;
    case 343: return Op::kLhax;
    case 407: return Op::kSthx;
    case 444: return Op::kOr;
    case 459: return Op::kDivwu;
    case 467: return Op::kMtspr;
    case 491: return Op::kDivw;
    case 536: return Op::kSrw;
    case 598: return Op::kSync;
    case 792: return Op::kSraw;
    case 824: return Op::kSrawi;
    case 982: return Op::kIcbi;
    default: return Op::kInvalid;
  }
}

}  // namespace

Insn decode(u32 word) {
  Insn insn = base_fields(word);
  const u32 opcd = word >> 26;

  switch (opcd) {
    case 3:
      insn.op = Op::kTwi;
      insn.to = insn.rt;
      return insn;
    case 4:
      // AltiVec (the G4's vector unit): modeled as a timing no-op.
      insn.op = Op::kVecArith;
      return insn;
    case 7: insn.op = Op::kMulli; return insn;
    case 8: insn.op = Op::kSubfic; return insn;
    case 13: insn.op = Op::kAddicRec; return insn;
    case 10:
      insn.op = Op::kCmplwi;
      insn.crfd = static_cast<u8>((word >> 23) & 7);
      return insn;
    case 11:
      insn.op = Op::kCmpwi;
      insn.crfd = static_cast<u8>((word >> 23) & 7);
      return insn;
    case 12: insn.op = Op::kAddic; return insn;
    case 14: insn.op = Op::kAddi; return insn;
    case 15: insn.op = Op::kAddis; return insn;
    case 16:
      insn.op = Op::kBc;
      insn.bo = static_cast<u8>((word >> 21) & 31);
      insn.bi = static_cast<u8>((word >> 16) & 31);
      insn.bd = sign_extend32(word & 0xFFFC, 16);
      insn.aa = (word & 2) != 0;
      insn.lk = (word & 1) != 0;
      return insn;
    case 17:
      // sc: the architecture requires bit 30 set; other encodings reserved.
      if ((word & 2) == 0) {
        insn.op = Op::kInvalid;
        return insn;
      }
      insn.op = Op::kSc;
      return insn;
    case 18:
      insn.op = Op::kB;
      insn.li = sign_extend32(word & 0x03FFFFFC, 26);
      insn.aa = (word & 2) != 0;
      insn.lk = (word & 1) != 0;
      return insn;
    case 19: {
      const u32 ext = (word >> 1) & 0x3FF;
      insn.bo = static_cast<u8>((word >> 21) & 31);
      insn.bi = static_cast<u8>((word >> 16) & 31);
      insn.lk = (word & 1) != 0;
      if (ext == 16) {
        insn.op = Op::kBclr;
      } else if (ext == 528) {
        insn.op = Op::kBcctr;
      } else if (ext == 150) {
        insn.op = Op::kIsync;
      } else if (ext == 0) {
        insn.op = Op::kMcrf;
      } else if (ext == 33 || ext == 129 || ext == 193 || ext == 225 ||
                 ext == 257 || ext == 289 || ext == 417 || ext == 449) {
        insn.op = Op::kCrLogical;  // crnor/crandc/crxor/crnand/crand/...
      } else {
        insn.op = Op::kInvalid;
      }
      return insn;
    }
    case 20:
      insn.op = Op::kRlwimi;
      insn.sh = static_cast<u8>((word >> 11) & 31);
      insn.mb = static_cast<u8>((word >> 6) & 31);
      insn.me = static_cast<u8>((word >> 1) & 31);
      return insn;
    case 21:
      insn.op = Op::kRlwinm;
      insn.sh = static_cast<u8>((word >> 11) & 31);
      insn.mb = static_cast<u8>((word >> 6) & 31);
      insn.me = static_cast<u8>((word >> 1) & 31);
      return insn;
    case 23:
      insn.op = Op::kRlwnm;
      insn.mb = static_cast<u8>((word >> 6) & 31);
      insn.me = static_cast<u8>((word >> 1) & 31);
      return insn;
    case 24: insn.op = Op::kOri; return insn;
    case 25: insn.op = Op::kOris; return insn;
    case 26: insn.op = Op::kXori; return insn;
    case 27: insn.op = Op::kXoris; return insn;
    case 28: insn.op = Op::kAndiRec; return insn;
    case 29: insn.op = Op::kAndisRec; return insn;
    case 31: {
      const u32 ext = (word >> 1) & 0x3FF;
      insn.op = decode_x_form(ext);
      if (insn.op == Op::kMfspr || insn.op == Op::kMtspr) {
        insn.spr = ((word >> 16) & 0x1F) | (((word >> 11) & 0x1F) << 5);
      }
      if (insn.op == Op::kSrawi) insn.sh = insn.rb;
      if (insn.op == Op::kTw) insn.to = insn.rt;
      return insn;
    }
    case 32: insn.op = Op::kLwz; return insn;
    case 33: insn.op = Op::kLwzu; return insn;
    case 34: insn.op = Op::kLbz; return insn;
    case 35: insn.op = Op::kLbzu; return insn;
    case 36: insn.op = Op::kStw; return insn;
    case 37: insn.op = Op::kStwu; return insn;
    case 38: insn.op = Op::kStb; return insn;
    case 39: insn.op = Op::kStbu; return insn;
    case 40: insn.op = Op::kLhz; return insn;
    case 41: insn.op = Op::kLhzu; return insn;
    case 42: insn.op = Op::kLha; return insn;
    case 43: insn.op = Op::kLhau; return insn;
    case 44: insn.op = Op::kSth; return insn;
    case 45: insn.op = Op::kSthu; return insn;
    case 46: insn.op = Op::kLmw; return insn;
    case 47: insn.op = Op::kStmw; return insn;
    case 48: insn.op = Op::kLfs; return insn;
    case 49: insn.op = Op::kLfsu; return insn;
    case 50: insn.op = Op::kLfd; return insn;
    case 51: insn.op = Op::kLfdu; return insn;
    case 52: insn.op = Op::kStfs; return insn;
    case 53: insn.op = Op::kStfsu; return insn;
    case 54: insn.op = Op::kStfd; return insn;
    case 55: insn.op = Op::kStfdu; return insn;
    case 59:
    case 63:
      // Floating-point arithmetic: the FP register file is not modeled;
      // these execute as timing no-ops (no memory side effects).
      insn.op = Op::kFpArith;
      return insn;
    default:
      insn.op = Op::kInvalid;
      return insn;
  }
}

}  // namespace kfi::riscf
