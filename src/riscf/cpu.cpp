#include "riscf/cpu.hpp"

#include <array>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "riscf/sysregs.hpp"

namespace kfi::riscf {

namespace {

u32 rotl32(u32 v, u32 n) { return n == 0 ? v : (v << n) | (v >> (32 - n)); }

constexpr size_t kNumOps = static_cast<size_t>(Op::kMcrf) + 1;

}  // namespace

RiscfCpu::RiscfCpu(mem::AddressSpace& space)
    : space_(space), sysregs_(std::make_unique<RiscfSysRegs>(*this)) {
  // Pre-touch every inert supervisor SPR so snapshots have a fixed shape.
  for (const u32 spr : inert_supervisor_sprs()) spr_storage_[spr] = 0;
}

RiscfCpu::~RiscfCpu() = default;

isa::SystemRegisterBank& RiscfCpu::sysregs() { return *sysregs_; }

void RiscfCpu::raise(Cause cause, Addr addr, bool has_addr, u32 aux) {
  isa::Trap trap;
  trap.cause = static_cast<u32>(cause);
  trap.pc = regs_.pc;
  trap.addr = addr;
  trap.has_addr = has_addr;
  trap.aux = aux;
  if (cause == Cause::kDataStorage || cause == Cause::kAlignment ||
      cause == Cause::kProtection) {
    regs_.dar = addr;
    regs_.dsisr = 0x40000000;
  }
  // A machine check with MSR.ME cleared is a checkstop: the processor
  // stops dead.  aux=1 flags this so the kernel runtime can treat it as a
  // hang rather than a handled exception.
  if (cause == Cause::kMachineCheck && (regs_.msr & kMsrME) == 0) {
    trap.aux = 1;
  }
  throw TrapException{trap};
}

void RiscfCpu::check_alignment(Addr ea, u8 width) {
  // Like the MPC7455, most unaligned accesses are handled in hardware
  // (with a cycle penalty); the alignment interrupt fires only when an
  // unaligned access straddles a cache-line boundary.
  if (width == 1 || (ea & (width - 1)) == 0) return;
  if ((ea & 31) + width > 32) raise(Cause::kAlignment, ea, true);
  cycles_ += 3;
}

u32 RiscfCpu::read_mem(Addr addr, u8 width) {
  if ((regs_.msr & kMsrDR) == 0) raise(Cause::kMachineCheck, addr, true);
  check_alignment(addr, width);
  const auto tr = space_.translate(addr, width, mem::Access::kRead);
  if (!tr.ok()) {
    if (tr.fault->kind == mem::FaultKind::kBusRegion) {
      raise(Cause::kMachineCheck, addr, true);
    }
    raise(Cause::kDataStorage, addr, true);
  }
  cycles_ += 2;
  u32 value = 0;
  switch (width) {
    case 1: value = space_.phys().read8(tr.phys); break;
    case 2: value = space_.phys().read16(tr.phys, mem::Endian::kBig); break;
    case 4: value = space_.phys().read32(tr.phys, mem::Endian::kBig); break;
    default: KFI_CHECK(false, "bad width");
  }
  if (current_result_ != nullptr && debug_.data_bp_any()) {
    debug_.record_access(addr, width, /*is_write=*/false, *current_result_);
  }
  if (sink_ != nullptr) sink_->on_mem_read(addr, tr.phys, width);
  return value;
}

void RiscfCpu::write_mem(Addr addr, u8 width, u32 value) {
  if ((regs_.msr & kMsrDR) == 0) raise(Cause::kMachineCheck, addr, true);
  check_alignment(addr, width);
  const auto tr = space_.translate(addr, width, mem::Access::kWrite);
  if (!tr.ok()) {
    switch (tr.fault->kind) {
      case mem::FaultKind::kBusRegion:
        raise(Cause::kMachineCheck, addr, true);
      case mem::FaultKind::kNoWrite:
        // Store to a protected page: the paper's Table 4 "bus error
        // (protection fault)" category.
        raise(Cause::kProtection, addr, true);
      default:
        raise(Cause::kDataStorage, addr, true);
    }
  }
  cycles_ += 2;
  switch (width) {
    case 1: space_.phys().write8(tr.phys, static_cast<u8>(value)); break;
    case 2:
      space_.phys().write16(tr.phys, static_cast<u16>(value), mem::Endian::kBig);
      break;
    case 4: space_.phys().write32(tr.phys, value, mem::Endian::kBig); break;
    default: KFI_CHECK(false, "bad width");
  }
  if (current_result_ != nullptr && debug_.data_bp_any()) {
    debug_.record_access(addr, width, /*is_write=*/true, *current_result_);
  }
  if (sink_ != nullptr) sink_->on_mem_write(addr, tr.phys, width);
}

void RiscfCpu::set_cr_field(u8 field, u32 bits4) {
  const u32 shift = (7 - field) * 4;
  regs_.cr = (regs_.cr & ~(0xFu << shift)) | ((bits4 & 0xF) << shift);
  trace_rm(kSlotCr);  // partial update: other CR fields keep their shadow
}

void RiscfCpu::record_cr0(u32 result) {
  trace_rr(kSlotXer);  // SO bit copied into CR0
  const i32 sr = static_cast<i32>(result);
  u32 bits = 0;
  if (sr < 0) bits |= 8;        // LT
  else if (sr > 0) bits |= 4;   // GT
  else bits |= 2;               // EQ
  // SO copied from XER[SO].
  if (regs_.xer & 0x80000000u) bits |= 1;
  set_cr_field(0, bits);
}

void RiscfCpu::compare(u8 crfd, i64 a, i64 b) {
  trace_rr(kSlotXer);  // SO bit copied into the CR field
  u32 bits = 0;
  if (a < b) bits |= 8;
  else if (a > b) bits |= 4;
  else bits |= 2;
  if (regs_.xer & 0x80000000u) bits |= 1;
  set_cr_field(crfd, bits);
}

bool RiscfCpu::branch_cond(u8 bo, u8 bi) {
  bool ctr_ok = true;
  if ((bo & 0x04) == 0) {
    trace_rr(kSlotCtr);
    regs_.ctr -= 1;
    trace_rm(kSlotCtr);  // decrement derives from the old CTR value
    ctr_ok = ((regs_.ctr != 0) != ((bo & 0x02) != 0));
  }
  bool cond_ok = true;
  if ((bo & 0x10) == 0) {
    trace_rr(kSlotCr);
    const bool crbit = (regs_.cr & cr_bit_mask(bi)) != 0;
    cond_ok = crbit == ((bo & 0x08) != 0);
  }
  trace_branch();
  return ctr_ok && cond_ok;
}

void RiscfCpu::taken_branch_check() {
  // BTIC enabled over invalid contents (an HID0 bit flip — the kernel
  // boots with BTIC off) fetches a stale branch target: the fetched junk
  // raises a program exception on the next taken branch (Section 5.2).
  trace_rr(kSlotHid0);  // BTIC enable bit steers every taken branch
  if ((regs_.hid0 & kHid0Btic) != 0) {
    raise(Cause::kIllegalInstruction, regs_.pc, false, /*aux=*/kSprHid0);
  }
  cycles_ += 1;
}

void RiscfCpu::require_supervisor() {
  if ((regs_.msr & kMsrPR) != 0) raise(Cause::kPrivileged);
}

bool RiscfCpu::read_spr(u32 spr, u32& value) const {
  switch (spr) {
    case kSprXer: value = regs_.xer; return true;
    case kSprLr: value = regs_.lr; return true;
    case kSprCtr: value = regs_.ctr; return true;
    case kSprDsisr: value = regs_.dsisr; return true;
    case kSprDar: value = regs_.dar; return true;
    case kSprDec: value = regs_.dec; return true;
    case kSprSdr1: value = regs_.sdr1; return true;
    case kSprSrr0: value = regs_.srr0; return true;
    case kSprSrr1: value = regs_.srr1; return true;
    case kSprSprg0: case kSprSprg1: case kSprSprg2: case kSprSprg3:
      value = regs_.sprg[spr - kSprSprg0];
      return true;
    case kSprPvr: value = 0x80010201; return true;  // MPC7455-like PVR
    case kSprHid0: value = regs_.hid0; return true;
    case kSprHid1: value = regs_.hid1; return true;
    default: {
      const auto it = spr_storage_.find(spr);
      if (it == spr_storage_.end()) return false;
      value = it->second;
      return true;
    }
  }
}

bool RiscfCpu::write_spr(u32 spr, u32 value) {
  switch (spr) {
    case kSprXer: regs_.xer = value; return true;
    case kSprLr: regs_.lr = value; return true;
    case kSprCtr: regs_.ctr = value; return true;
    case kSprDsisr: regs_.dsisr = value; return true;
    case kSprDar: regs_.dar = value; return true;
    case kSprDec: regs_.dec = value; return true;
    case kSprSdr1: regs_.sdr1 = value; return true;
    case kSprSrr0: regs_.srr0 = value; return true;
    case kSprSrr1: regs_.srr1 = value; return true;
    case kSprSprg0: case kSprSprg1: case kSprSprg2: case kSprSprg3:
      regs_.sprg[spr - kSprSprg0] = value;
      return true;
    case kSprPvr: return true;  // read-only; write ignored
    case kSprHid0: regs_.hid0 = value; return true;
    case kSprHid1: regs_.hid1 = value; return true;
    default: {
      const auto it = spr_storage_.find(spr);
      if (it == spr_storage_.end()) return false;
      it->second = value;
      return true;
    }
  }
}

Insn RiscfCpu::decode_at(Addr pc) const {
  const auto tr = space_.translate(pc, 4, mem::Access::kExecute);
  if (!tr.ok()) return Insn{};
  return decode(space_.phys().read32(tr.phys, mem::Endian::kBig));
}

void RiscfCpu::set_decode_cache_enabled(bool enabled) {
  dcache_enabled_ = enabled;
  if (enabled && dcache_.empty()) {
    dcache_.resize(kDecodeCacheEntries);
  } else if (!enabled) {
    dcache_.clear();
    dcache_.shrink_to_fit();
  }
}

void RiscfCpu::set_superblocks_enabled(bool enabled) {
  sblocks_enabled_ = enabled;
  if (enabled && sblocks_.empty()) {
    sblocks_.resize(kSuperblockEntries);
  } else if (!enabled) {
    sblocks_.clear();
    sblocks_.shrink_to_fit();
  }
}

const Insn& RiscfCpu::decode_cached(u32 phys) {
  const mem::PhysicalMemory& pm = space_.phys();
  if (!dcache_enabled_) {
    dcache_scratch_ = decode(pm.read32(phys, mem::Endian::kBig));
    return dcache_scratch_;
  }
  DecodeCacheEntry& entry = dcache_[(phys >> 2) & (kDecodeCacheEntries - 1)];
  const u64 ver = pm.page_version(phys >> mem::kPageShift);
  if (entry.tag == phys) {
    if (entry.ver == ver) {
      ++dcache_stats_.hits;
      return entry.insn;
    }
    ++dcache_stats_.invalidations;
  }
  ++dcache_stats_.misses;
  entry.tag = phys;
  entry.ver = ver;
  entry.insn = decode(pm.read32(phys, mem::Endian::kBig));
  return entry.insn;
}

isa::StepResult RiscfCpu::step() {
  isa::StepResult result;
  if (debug_.check_insn_bp(regs_.pc)) {
    result.status = isa::StepStatus::kInsnBp;
    return result;
  }
  current_result_ = &result;
  try {
    if ((regs_.msr & kMsrIR) == 0) {
      raise(Cause::kMachineCheck, regs_.pc, true);
    }
    if ((regs_.pc & 3) != 0) {
      raise(Cause::kInstrStorage, regs_.pc, true);
    }
    const auto tr = space_.translate(regs_.pc, 4, mem::Access::kExecute);
    if (!tr.ok()) {
      if (tr.fault->kind == mem::FaultKind::kBusRegion) {
        raise(Cause::kMachineCheck, regs_.pc, true);
      }
      raise(Cause::kInstrStorage, regs_.pc, true);
    }
    const Insn& insn = decode_cached(tr.phys);
    if (insn.op == Op::kInvalid) {
      raise(Cause::kIllegalInstruction, 0, false, insn.raw);
    }
    if (sink_ != nullptr) {
      // Fixed 4-byte aligned fetch: never straddles a page.
      sink_->on_insn_fetch(kSlotPc, regs_.pc, tr.phys, 4, 0, 0);
      trace_reads(insn);
    }
    execute(insn);
    if (sink_ != nullptr) trace_writes(insn);
    cycles_ += 1;
  } catch (const TrapException& te) {
    result.status = isa::StepStatus::kTrap;
    result.trap = te.trap;
    cycles_ += 1;
  }
  current_result_ = nullptr;
  return result;
}

// Per-op execute handlers.  Each is the corresponding case body of the old
// execute() switch, verbatim: fall-through ops advance the PC at the end,
// branch ops assign the PC themselves, raising ops throw before any PC
// update.  Superblocks dispatch through these pointers directly, so the
// switch is resolved once per block at build time instead of once per
// instruction.
struct RiscfOps {
  static void addi(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.rt] = (insn.ra == 0 ? 0 : c.regs_.gpr[insn.ra]) +
                           static_cast<u32>(insn.simm);
    c.regs_.pc += 4;
  }
  static void addis(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.rt] = (insn.ra == 0 ? 0 : c.regs_.gpr[insn.ra]) +
                           (static_cast<u32>(insn.simm) << 16);
    c.regs_.pc += 4;
  }
  static void addic(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.rt] = c.regs_.gpr[insn.ra] + static_cast<u32>(insn.simm);
    c.regs_.pc += 4;
  }
  static void mulli(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.rt] = c.regs_.gpr[insn.ra] * static_cast<u32>(insn.simm);
    c.cycles_ += 3;
    c.regs_.pc += 4;
  }
  static void cmpwi(RiscfCpu& c, const Insn& insn) {
    c.compare(insn.crfd, static_cast<i32>(c.regs_.gpr[insn.ra]), insn.simm);
    c.regs_.pc += 4;
  }
  static void cmplwi(RiscfCpu& c, const Insn& insn) {
    c.compare(insn.crfd, c.regs_.gpr[insn.ra], insn.uimm);
    c.regs_.pc += 4;
  }
  static void ori(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] = c.regs_.gpr[insn.rt] | insn.uimm;
    c.regs_.pc += 4;
  }
  static void oris(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] = c.regs_.gpr[insn.rt] | (insn.uimm << 16);
    c.regs_.pc += 4;
  }
  static void xori(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] = c.regs_.gpr[insn.rt] ^ insn.uimm;
    c.regs_.pc += 4;
  }
  static void andi_rec(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] = c.regs_.gpr[insn.rt] & insn.uimm;
    c.record_cr0(c.regs_.gpr[insn.ra]);
    c.regs_.pc += 4;
  }
  static void rlwinm(RiscfCpu& c, const Insn& insn) {
    // Mask spans PPC (big-endian numbered) bits mb..me inclusive; for
    // mb > me the mask wraps around.
    const u32 hi_mask = 0xFFFFFFFFu >> insn.mb;
    const u32 lo_mask =
        insn.me == 31 ? 0xFFFFFFFFu : ~((1u << (31 - insn.me)) - 1u);
    const u32 final_mask =
        insn.mb <= insn.me ? (hi_mask & lo_mask) : (hi_mask | lo_mask);
    c.regs_.gpr[insn.ra] = rotl32(c.regs_.gpr[insn.rt], insn.sh) & final_mask;
    if (insn.rc) c.record_cr0(c.regs_.gpr[insn.ra]);
    c.regs_.pc += 4;
  }
  static void load(RiscfCpu& c, const Insn& insn) {
    const Addr ea = (insn.ra == 0 ? 0 : c.regs_.gpr[insn.ra]) +
                    static_cast<u32>(insn.simm);
    const u8 w = insn.op == Op::kLwz ? 4 : insn.op == Op::kLbz ? 1 : 2;
    u32 v = c.read_mem(ea, w);
    if (insn.op == Op::kLha) v = static_cast<u32>(sign_extend32(v, 16));
    c.regs_.gpr[insn.rt] = v;
    c.regs_.pc += 4;
  }
  static void lwzu(RiscfCpu& c, const Insn& insn) {
    const Addr ea = c.regs_.gpr[insn.ra] + static_cast<u32>(insn.simm);
    c.regs_.gpr[insn.rt] = c.read_mem(ea, 4);
    c.regs_.gpr[insn.ra] = ea;
    c.regs_.pc += 4;
  }
  static void store(RiscfCpu& c, const Insn& insn) {
    const Addr ea = (insn.ra == 0 ? 0 : c.regs_.gpr[insn.ra]) +
                    static_cast<u32>(insn.simm);
    const u8 w = insn.op == Op::kStw ? 4 : insn.op == Op::kStb ? 1 : 2;
    c.write_mem(ea, w, c.regs_.gpr[insn.rt]);
    c.regs_.pc += 4;
  }
  static void stwu(RiscfCpu& c, const Insn& insn) {
    const Addr ea = c.regs_.gpr[insn.ra] + static_cast<u32>(insn.simm);
    c.write_mem(ea, 4, c.regs_.gpr[insn.rt]);
    c.regs_.gpr[insn.ra] = ea;
    c.regs_.pc += 4;
  }
  static void b(RiscfCpu& c, const Insn& insn) {
    const Addr next = c.regs_.pc + 4;
    c.taken_branch_check();
    if (insn.lk) {
      c.regs_.lr = next;
      c.trace_rw(kSlotLr);
    }
    // Relative target: the PC stays self-derived, no shadow write.
    c.regs_.pc = insn.aa ? static_cast<u32>(insn.li)
                         : c.regs_.pc + static_cast<u32>(insn.li);
  }
  static void bc(RiscfCpu& c, const Insn& insn) {
    const Addr next = c.regs_.pc + 4;
    if (c.branch_cond(insn.bo, insn.bi)) {
      c.taken_branch_check();
      if (insn.lk) {
        c.regs_.lr = next;
        c.trace_rw(kSlotLr);
      }
      c.regs_.pc = insn.aa ? static_cast<u32>(insn.bd)
                           : c.regs_.pc + static_cast<u32>(insn.bd);
      return;
    }
    if (insn.lk) {
      c.regs_.lr = next;
      c.trace_rw(kSlotLr);
    }
    c.regs_.pc = next;
  }
  static void bclr(RiscfCpu& c, const Insn& insn) {
    const Addr next = c.regs_.pc + 4;
    if (c.branch_cond(insn.bo, insn.bi)) {
      c.taken_branch_check();
      c.trace_rr(kSlotLr);
      const u32 target = c.regs_.lr & ~3u;
      if (insn.lk) {
        c.regs_.lr = next;
        c.trace_rw(kSlotLr);
      }
      c.regs_.pc = target;
      c.trace_rw(kSlotPc);  // computed transfer: PC inherits LR's shadow
      return;
    }
    if (insn.lk) {
      c.regs_.lr = next;
      c.trace_rw(kSlotLr);
    }
    c.regs_.pc = next;
  }
  static void bcctr(RiscfCpu& c, const Insn& insn) {
    const Addr next = c.regs_.pc + 4;
    if (c.branch_cond(insn.bo, insn.bi)) {
      c.taken_branch_check();
      c.trace_rr(kSlotCtr);
      const u32 target = c.regs_.ctr & ~3u;
      if (insn.lk) {
        c.regs_.lr = next;
        c.trace_rw(kSlotLr);
      }
      c.regs_.pc = target;
      c.trace_rw(kSlotPc);  // computed transfer: PC inherits CTR's shadow
      return;
    }
    if (insn.lk) {
      c.regs_.lr = next;
      c.trace_rw(kSlotLr);
    }
    c.regs_.pc = next;
  }
  [[noreturn]] static void sc(RiscfCpu& c, const Insn& insn) {
    (void)insn;
    c.regs_.pc += 4;
    c.raise(Cause::kSyscall);
  }
  static void add(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.rt] = c.regs_.gpr[insn.ra] + c.regs_.gpr[insn.rb];
    if (insn.rc) c.record_cr0(c.regs_.gpr[insn.rt]);
    c.regs_.pc += 4;
  }
  static void subf(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.rt] = c.regs_.gpr[insn.rb] - c.regs_.gpr[insn.ra];
    if (insn.rc) c.record_cr0(c.regs_.gpr[insn.rt]);
    c.regs_.pc += 4;
  }
  static void neg(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.rt] = 0u - c.regs_.gpr[insn.ra];
    c.regs_.pc += 4;
  }
  static void mullw(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.rt] = c.regs_.gpr[insn.ra] * c.regs_.gpr[insn.rb];
    c.cycles_ += 3;
    if (insn.rc) c.record_cr0(c.regs_.gpr[insn.rt]);
    c.regs_.pc += 4;
  }
  static void divw(RiscfCpu& c, const Insn& insn) {
    // PowerPC division does not trap: /0 and overflow give boundedly
    // undefined results (we use 0), matching the absence of a divide
    // crash category on the G4 (Table 4).
    const i32 a = static_cast<i32>(c.regs_.gpr[insn.ra]);
    const i32 b = static_cast<i32>(c.regs_.gpr[insn.rb]);
    c.cycles_ += 19;
    c.regs_.gpr[insn.rt] =
        (b == 0 || (a == INT32_MIN && b == -1)) ? 0 : static_cast<u32>(a / b);
    c.regs_.pc += 4;
  }
  static void divwu(RiscfCpu& c, const Insn& insn) {
    const u32 b = c.regs_.gpr[insn.rb];
    c.cycles_ += 19;
    c.regs_.gpr[insn.rt] = b == 0 ? 0 : c.regs_.gpr[insn.ra] / b;
    c.regs_.pc += 4;
  }
  static void and_(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] = c.regs_.gpr[insn.rt] & c.regs_.gpr[insn.rb];
    if (insn.rc) c.record_cr0(c.regs_.gpr[insn.ra]);
    c.regs_.pc += 4;
  }
  static void or_(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] = c.regs_.gpr[insn.rt] | c.regs_.gpr[insn.rb];
    if (insn.rc) c.record_cr0(c.regs_.gpr[insn.ra]);
    c.regs_.pc += 4;
  }
  static void xor_(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] = c.regs_.gpr[insn.rt] ^ c.regs_.gpr[insn.rb];
    if (insn.rc) c.record_cr0(c.regs_.gpr[insn.ra]);
    c.regs_.pc += 4;
  }
  static void nor(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] = ~(c.regs_.gpr[insn.rt] | c.regs_.gpr[insn.rb]);
    c.regs_.pc += 4;
  }
  static void cntlzw(RiscfCpu& c, const Insn& insn) {
    u32 v = c.regs_.gpr[insn.rt];
    u32 n = 0;
    while (n < 32 && (v & 0x80000000u) == 0) {
      ++n;
      v <<= 1;
    }
    c.regs_.gpr[insn.ra] = n;
    c.regs_.pc += 4;
  }
  static void slw(RiscfCpu& c, const Insn& insn) {
    const u32 sh = c.regs_.gpr[insn.rb] & 63;
    c.regs_.gpr[insn.ra] = sh >= 32 ? 0 : c.regs_.gpr[insn.rt] << sh;
    c.regs_.pc += 4;
  }
  static void srw(RiscfCpu& c, const Insn& insn) {
    const u32 sh = c.regs_.gpr[insn.rb] & 63;
    c.regs_.gpr[insn.ra] = sh >= 32 ? 0 : c.regs_.gpr[insn.rt] >> sh;
    c.regs_.pc += 4;
  }
  static void sraw(RiscfCpu& c, const Insn& insn) {
    const u32 sh = c.regs_.gpr[insn.rb] & 63;
    const i32 v = static_cast<i32>(c.regs_.gpr[insn.rt]);
    c.regs_.gpr[insn.ra] = static_cast<u32>(sh >= 32 ? (v >> 31) : (v >> sh));
    c.regs_.pc += 4;
  }
  static void srawi(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] =
        static_cast<u32>(static_cast<i32>(c.regs_.gpr[insn.rt]) >> insn.sh);
    c.regs_.pc += 4;
  }
  static void cmp(RiscfCpu& c, const Insn& insn) {
    c.compare(insn.crfd, static_cast<i32>(c.regs_.gpr[insn.ra]),
              static_cast<i32>(c.regs_.gpr[insn.rb]));
    c.regs_.pc += 4;
  }
  static void cmpl(RiscfCpu& c, const Insn& insn) {
    c.compare(insn.crfd, c.regs_.gpr[insn.ra], c.regs_.gpr[insn.rb]);
    c.regs_.pc += 4;
  }
  static void mfspr(RiscfCpu& c, const Insn& insn) {
    if (insn.spr != kSprLr && insn.spr != kSprCtr && insn.spr != kSprXer) {
      c.require_supervisor();
    }
    u32 v = 0;
    if (!c.read_spr(insn.spr, v)) {
      c.raise(Cause::kIllegalInstruction, 0, false, insn.raw);
    }
    c.regs_.gpr[insn.rt] = v;
    c.regs_.pc += 4;
  }
  static void mtspr(RiscfCpu& c, const Insn& insn) {
    if (insn.spr != kSprLr && insn.spr != kSprCtr && insn.spr != kSprXer) {
      c.require_supervisor();
    }
    if (!c.write_spr(insn.spr, c.regs_.gpr[insn.rt])) {
      c.raise(Cause::kIllegalInstruction, 0, false, insn.raw);
    }
    c.regs_.pc += 4;
  }
  static void mfmsr(RiscfCpu& c, const Insn& insn) {
    c.require_supervisor();
    c.regs_.gpr[insn.rt] = c.regs_.msr;
    c.regs_.pc += 4;
  }
  static void mtmsr(RiscfCpu& c, const Insn& insn) {
    c.require_supervisor();
    c.regs_.msr = c.regs_.gpr[insn.rt];
    c.regs_.pc += 4;
  }
  static void mfcr(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.rt] = c.regs_.cr;
    c.regs_.pc += 4;
  }
  static void loadx(RiscfCpu& c, const Insn& insn) {
    const Addr ea =
        (insn.ra == 0 ? 0 : c.regs_.gpr[insn.ra]) + c.regs_.gpr[insn.rb];
    const u8 w = insn.op == Op::kLwzx ? 4 : insn.op == Op::kLbzx ? 1 : 2;
    u32 v = c.read_mem(ea, w);
    if (insn.op == Op::kLhax) v = static_cast<u32>(sign_extend32(v, 16));
    c.regs_.gpr[insn.rt] = v;
    c.regs_.pc += 4;
  }
  static void storex(RiscfCpu& c, const Insn& insn) {
    const Addr ea =
        (insn.ra == 0 ? 0 : c.regs_.gpr[insn.ra]) + c.regs_.gpr[insn.rb];
    const u8 w = insn.op == Op::kStwx ? 4 : insn.op == Op::kStbx ? 1 : 2;
    c.write_mem(ea, w, c.regs_.gpr[insn.rt]);
    c.regs_.pc += 4;
  }
  static void tw(RiscfCpu& c, const Insn& insn) {
    const i32 a = static_cast<i32>(c.regs_.gpr[insn.ra]);
    const i32 b = static_cast<i32>(c.regs_.gpr[insn.rb]);
    const u32 ua = c.regs_.gpr[insn.ra], ub = c.regs_.gpr[insn.rb];
    const u8 to = insn.to;
    const bool trap = ((to & 16) && a < b) || ((to & 8) && a > b) ||
                      ((to & 4) && a == b) || ((to & 2) && ua < ub) ||
                      ((to & 1) && ua > ub);
    if (trap) c.raise(Cause::kTrapWord, 0, false, insn.raw);
    c.regs_.pc += 4;
  }
  static void twi(RiscfCpu& c, const Insn& insn) {
    const i32 a = static_cast<i32>(c.regs_.gpr[insn.ra]);
    const u32 ua = c.regs_.gpr[insn.ra];
    const u8 to = insn.to;
    const bool trap = ((to & 16) && a < insn.simm) ||
                      ((to & 8) && a > insn.simm) ||
                      ((to & 4) && a == insn.simm) ||
                      ((to & 2) && ua < static_cast<u32>(insn.simm)) ||
                      ((to & 1) && ua > static_cast<u32>(insn.simm));
    if (trap) c.raise(Cause::kTrapWord, 0, false, insn.raw);
    c.regs_.pc += 4;
  }
  static void subfic(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.rt] = static_cast<u32>(insn.simm) - c.regs_.gpr[insn.ra];
    c.regs_.pc += 4;
  }
  static void addic_rec(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.rt] = c.regs_.gpr[insn.ra] + static_cast<u32>(insn.simm);
    c.record_cr0(c.regs_.gpr[insn.rt]);
    c.regs_.pc += 4;
  }
  static void xoris(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] = c.regs_.gpr[insn.rt] ^ (insn.uimm << 16);
    c.regs_.pc += 4;
  }
  static void andis_rec(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] = c.regs_.gpr[insn.rt] & (insn.uimm << 16);
    c.record_cr0(c.regs_.gpr[insn.ra]);
    c.regs_.pc += 4;
  }
  static void rlwimi(RiscfCpu& c, const Insn& insn) {
    const u32 hi_mask = 0xFFFFFFFFu >> insn.mb;
    const u32 lo_mask =
        insn.me == 31 ? 0xFFFFFFFFu : ~((1u << (31 - insn.me)) - 1u);
    const u32 mask =
        insn.mb <= insn.me ? (hi_mask & lo_mask) : (hi_mask | lo_mask);
    c.regs_.gpr[insn.ra] = (rotl32(c.regs_.gpr[insn.rt], insn.sh) & mask) |
                           (c.regs_.gpr[insn.ra] & ~mask);
    if (insn.rc) c.record_cr0(c.regs_.gpr[insn.ra]);
    c.regs_.pc += 4;
  }
  static void rlwnm(RiscfCpu& c, const Insn& insn) {
    const u32 hi_mask = 0xFFFFFFFFu >> insn.mb;
    const u32 lo_mask =
        insn.me == 31 ? 0xFFFFFFFFu : ~((1u << (31 - insn.me)) - 1u);
    const u32 mask =
        insn.mb <= insn.me ? (hi_mask & lo_mask) : (hi_mask | lo_mask);
    c.regs_.gpr[insn.ra] =
        rotl32(c.regs_.gpr[insn.rt], c.regs_.gpr[insn.rb] & 31) & mask;
    if (insn.rc) c.record_cr0(c.regs_.gpr[insn.ra]);
    c.regs_.pc += 4;
  }
  static void andc(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] = c.regs_.gpr[insn.rt] & ~c.regs_.gpr[insn.rb];
    if (insn.rc) c.record_cr0(c.regs_.gpr[insn.ra]);
    c.regs_.pc += 4;
  }
  static void orc(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] = c.regs_.gpr[insn.rt] | ~c.regs_.gpr[insn.rb];
    c.regs_.pc += 4;
  }
  static void nand(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] = ~(c.regs_.gpr[insn.rt] & c.regs_.gpr[insn.rb]);
    c.regs_.pc += 4;
  }
  static void eqv(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] = ~(c.regs_.gpr[insn.rt] ^ c.regs_.gpr[insn.rb]);
    c.regs_.pc += 4;
  }
  static void extsb(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] =
        static_cast<u32>(sign_extend32(c.regs_.gpr[insn.rt] & 0xFF, 8));
    c.regs_.pc += 4;
  }
  static void extsh(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.ra] =
        static_cast<u32>(sign_extend32(c.regs_.gpr[insn.rt] & 0xFFFF, 16));
    c.regs_.pc += 4;
  }
  static void mulhw(RiscfCpu& c, const Insn& insn) {
    const i64 p = static_cast<i64>(static_cast<i32>(c.regs_.gpr[insn.ra])) *
                  static_cast<i32>(c.regs_.gpr[insn.rb]);
    c.regs_.gpr[insn.rt] = static_cast<u32>(static_cast<u64>(p) >> 32);
    c.cycles_ += 3;
    c.regs_.pc += 4;
  }
  static void mulhwu(RiscfCpu& c, const Insn& insn) {
    const u64 p = static_cast<u64>(c.regs_.gpr[insn.ra]) * c.regs_.gpr[insn.rb];
    c.regs_.gpr[insn.rt] = static_cast<u32>(p >> 32);
    c.cycles_ += 3;
    c.regs_.pc += 4;
  }
  static void loadu(RiscfCpu& c, const Insn& insn) {
    const Addr ea = c.regs_.gpr[insn.ra] + static_cast<u32>(insn.simm);
    const u8 w = insn.op == Op::kLbzu ? 1 : 2;
    u32 v = c.read_mem(ea, w);
    if (insn.op == Op::kLhau) v = static_cast<u32>(sign_extend32(v, 16));
    c.regs_.gpr[insn.rt] = v;
    c.regs_.gpr[insn.ra] = ea;
    c.regs_.pc += 4;
  }
  static void storeu(RiscfCpu& c, const Insn& insn) {
    const Addr ea = c.regs_.gpr[insn.ra] + static_cast<u32>(insn.simm);
    c.write_mem(ea, insn.op == Op::kStbu ? 1 : 2, c.regs_.gpr[insn.rt]);
    c.regs_.gpr[insn.ra] = ea;
    c.regs_.pc += 4;
  }
  static void lmw(RiscfCpu& c, const Insn& insn) {
    // Load multiple: rt..r31 from consecutive words.
    Addr ea = (insn.ra == 0 ? 0 : c.regs_.gpr[insn.ra]) +
              static_cast<u32>(insn.simm);
    for (u32 r = insn.rt; r < 32; ++r, ea += 4) {
      c.regs_.gpr[r] = c.read_mem(ea, 4);
    }
    c.regs_.pc += 4;
  }
  static void stmw(RiscfCpu& c, const Insn& insn) {
    Addr ea = (insn.ra == 0 ? 0 : c.regs_.gpr[insn.ra]) +
              static_cast<u32>(insn.simm);
    for (u32 r = insn.rt; r < 32; ++r, ea += 4) {
      c.write_mem(ea, 4, c.regs_.gpr[r]);
    }
    c.regs_.pc += 4;
  }
  static void lf(RiscfCpu& c, const Insn& insn) {
    // FP load: the memory access (and its faults) happen; the loaded
    // value goes to the unmodeled FP register file.
    const Addr ea = (insn.ra == 0 ? 0 : c.regs_.gpr[insn.ra]) +
                    static_cast<u32>(insn.simm);
    c.read_mem(ea, 4);
    if (insn.op == Op::kLfd) c.read_mem(ea + 4, 4);
    c.cycles_ += 1;
    c.regs_.pc += 4;
  }
  static void lfu(RiscfCpu& c, const Insn& insn) {
    const Addr ea = c.regs_.gpr[insn.ra] + static_cast<u32>(insn.simm);
    c.read_mem(ea, 4);
    if (insn.op == Op::kLfdu) c.read_mem(ea + 4, 4);
    c.regs_.gpr[insn.ra] = ea;
    c.cycles_ += 1;
    c.regs_.pc += 4;
  }
  static void stf(RiscfCpu& c, const Insn& insn) {
    const Addr ea = (insn.ra == 0 ? 0 : c.regs_.gpr[insn.ra]) +
                    static_cast<u32>(insn.simm);
    c.write_mem(ea, 4, 0);  // unmodeled FP register contents
    if (insn.op == Op::kStfd) c.write_mem(ea + 4, 4, 0);
    c.cycles_ += 1;
    c.regs_.pc += 4;
  }
  static void stfu(RiscfCpu& c, const Insn& insn) {
    const Addr ea = c.regs_.gpr[insn.ra] + static_cast<u32>(insn.simm);
    c.write_mem(ea, 4, 0);
    if (insn.op == Op::kStfdu) c.write_mem(ea + 4, 4, 0);
    c.regs_.gpr[insn.ra] = ea;
    c.cycles_ += 1;
    c.regs_.pc += 4;
  }
  static void fp_arith(RiscfCpu& c, const Insn& insn) {
    (void)insn;
    c.cycles_ += 3;
    c.regs_.pc += 4;
  }
  static void vec_arith(RiscfCpu& c, const Insn& insn) {
    (void)insn;
    c.cycles_ += 2;
    c.regs_.pc += 4;
  }
  static void lwarx(RiscfCpu& c, const Insn& insn) {
    const Addr ea =
        (insn.ra == 0 ? 0 : c.regs_.gpr[insn.ra]) + c.regs_.gpr[insn.rb];
    c.regs_.gpr[insn.rt] = c.read_mem(ea, 4);
    c.regs_.pc += 4;
  }
  static void stwcx(RiscfCpu& c, const Insn& insn) {
    const Addr ea =
        (insn.ra == 0 ? 0 : c.regs_.gpr[insn.ra]) + c.regs_.gpr[insn.rb];
    c.write_mem(ea, 4, c.regs_.gpr[insn.rt]);
    c.set_cr_field(0, 2);  // EQ: store succeeded
    c.regs_.pc += 4;
  }
  static void dcbz(RiscfCpu& c, const Insn& insn) {
    // Zero a 32-byte cache block: a potent memory-corruption source
    // when reached through corrupted code.
    const Addr ea =
        ((insn.ra == 0 ? 0 : c.regs_.gpr[insn.ra]) + c.regs_.gpr[insn.rb]) &
        ~31u;
    for (u32 off = 0; off < 32; off += 4) c.write_mem(ea + off, 4, 0);
    c.regs_.pc += 4;
  }
  static void dcbt(RiscfCpu& c, const Insn& insn) {
    (void)insn;
    c.cycles_ += 1;  // cache touch/maintenance: harmless
    c.regs_.pc += 4;
  }
  static void mftb(RiscfCpu& c, const Insn& insn) {
    c.regs_.gpr[insn.rt] = static_cast<u32>(c.cycles_);
    c.regs_.pc += 4;
  }
  static void mtcrf(RiscfCpu& c, const Insn& insn) {
    c.regs_.cr = c.regs_.gpr[insn.rt];
    c.regs_.pc += 4;
  }
  static void cr_logical(RiscfCpu& c, const Insn& insn) {
    (void)insn;
    c.cycles_ += 1;  // CR-field shuffling: no modeled effect
    c.regs_.pc += 4;
  }
  static void barrier(RiscfCpu& c, const Insn& insn) {
    (void)insn;
    c.cycles_ += 2;
    c.regs_.pc += 4;
  }
  [[noreturn]] static void invalid(RiscfCpu& c, const Insn& insn) {
    c.raise(Cause::kIllegalInstruction, 0, false, insn.raw);
  }
};

namespace {

using OpFn = void (*)(RiscfCpu&, const Insn&);

const std::array<OpFn, kNumOps>& op_table() {
  static const std::array<OpFn, kNumOps> table = [] {
    std::array<OpFn, kNumOps> t{};
    auto set = [&t](Op op, OpFn fn) { t[static_cast<size_t>(op)] = fn; };
    set(Op::kInvalid, &RiscfOps::invalid);
    set(Op::kAddi, &RiscfOps::addi);
    set(Op::kAddis, &RiscfOps::addis);
    set(Op::kAddic, &RiscfOps::addic);
    set(Op::kMulli, &RiscfOps::mulli);
    set(Op::kCmpwi, &RiscfOps::cmpwi);
    set(Op::kCmplwi, &RiscfOps::cmplwi);
    set(Op::kOri, &RiscfOps::ori);
    set(Op::kOris, &RiscfOps::oris);
    set(Op::kXori, &RiscfOps::xori);
    set(Op::kAndiRec, &RiscfOps::andi_rec);
    set(Op::kRlwinm, &RiscfOps::rlwinm);
    set(Op::kLwz, &RiscfOps::load);
    set(Op::kLwzu, &RiscfOps::lwzu);
    set(Op::kLbz, &RiscfOps::load);
    set(Op::kLhz, &RiscfOps::load);
    set(Op::kLha, &RiscfOps::load);
    set(Op::kStw, &RiscfOps::store);
    set(Op::kStwu, &RiscfOps::stwu);
    set(Op::kStb, &RiscfOps::store);
    set(Op::kSth, &RiscfOps::store);
    set(Op::kB, &RiscfOps::b);
    set(Op::kBc, &RiscfOps::bc);
    set(Op::kBclr, &RiscfOps::bclr);
    set(Op::kBcctr, &RiscfOps::bcctr);
    set(Op::kSc, &RiscfOps::sc);
    set(Op::kAdd, &RiscfOps::add);
    set(Op::kSubf, &RiscfOps::subf);
    set(Op::kNeg, &RiscfOps::neg);
    set(Op::kMullw, &RiscfOps::mullw);
    set(Op::kDivw, &RiscfOps::divw);
    set(Op::kDivwu, &RiscfOps::divwu);
    set(Op::kAnd, &RiscfOps::and_);
    set(Op::kOr, &RiscfOps::or_);
    set(Op::kXor, &RiscfOps::xor_);
    set(Op::kNor, &RiscfOps::nor);
    set(Op::kCntlzw, &RiscfOps::cntlzw);
    set(Op::kSlw, &RiscfOps::slw);
    set(Op::kSrw, &RiscfOps::srw);
    set(Op::kSraw, &RiscfOps::sraw);
    set(Op::kSrawi, &RiscfOps::srawi);
    set(Op::kCmp, &RiscfOps::cmp);
    set(Op::kCmpl, &RiscfOps::cmpl);
    set(Op::kMfspr, &RiscfOps::mfspr);
    set(Op::kMtspr, &RiscfOps::mtspr);
    set(Op::kMfmsr, &RiscfOps::mfmsr);
    set(Op::kMtmsr, &RiscfOps::mtmsr);
    set(Op::kMfcr, &RiscfOps::mfcr);
    set(Op::kLwzx, &RiscfOps::loadx);
    set(Op::kStwx, &RiscfOps::storex);
    set(Op::kLbzx, &RiscfOps::loadx);
    set(Op::kStbx, &RiscfOps::storex);
    set(Op::kLhzx, &RiscfOps::loadx);
    set(Op::kLhax, &RiscfOps::loadx);
    set(Op::kSthx, &RiscfOps::storex);
    set(Op::kTw, &RiscfOps::tw);
    set(Op::kTwi, &RiscfOps::twi);
    set(Op::kSync, &RiscfOps::barrier);
    set(Op::kIsync, &RiscfOps::barrier);
    set(Op::kDcbf, &RiscfOps::barrier);
    set(Op::kIcbi, &RiscfOps::barrier);
    set(Op::kLbzu, &RiscfOps::loadu);
    set(Op::kLhzu, &RiscfOps::loadu);
    set(Op::kLhau, &RiscfOps::loadu);
    set(Op::kStbu, &RiscfOps::storeu);
    set(Op::kSthu, &RiscfOps::storeu);
    set(Op::kLmw, &RiscfOps::lmw);
    set(Op::kStmw, &RiscfOps::stmw);
    set(Op::kLfs, &RiscfOps::lf);
    set(Op::kLfsu, &RiscfOps::lfu);
    set(Op::kLfd, &RiscfOps::lf);
    set(Op::kLfdu, &RiscfOps::lfu);
    set(Op::kStfs, &RiscfOps::stf);
    set(Op::kStfsu, &RiscfOps::stfu);
    set(Op::kStfd, &RiscfOps::stf);
    set(Op::kStfdu, &RiscfOps::stfu);
    set(Op::kFpArith, &RiscfOps::fp_arith);
    set(Op::kVecArith, &RiscfOps::vec_arith);
    set(Op::kSubfic, &RiscfOps::subfic);
    set(Op::kAddicRec, &RiscfOps::addic_rec);
    set(Op::kXoris, &RiscfOps::xoris);
    set(Op::kAndisRec, &RiscfOps::andis_rec);
    set(Op::kRlwimi, &RiscfOps::rlwimi);
    set(Op::kRlwnm, &RiscfOps::rlwnm);
    set(Op::kAndc, &RiscfOps::andc);
    set(Op::kOrc, &RiscfOps::orc);
    set(Op::kNand, &RiscfOps::nand);
    set(Op::kEqv, &RiscfOps::eqv);
    set(Op::kExtsb, &RiscfOps::extsb);
    set(Op::kExtsh, &RiscfOps::extsh);
    set(Op::kMulhw, &RiscfOps::mulhw);
    set(Op::kMulhwu, &RiscfOps::mulhwu);
    set(Op::kLwarx, &RiscfOps::lwarx);
    set(Op::kStwcx, &RiscfOps::stwcx);
    set(Op::kDcbz, &RiscfOps::dcbz);
    set(Op::kDcbt, &RiscfOps::dcbt);
    set(Op::kMftb, &RiscfOps::mftb);
    set(Op::kMtcrf, &RiscfOps::mtcrf);
    set(Op::kCrLogical, &RiscfOps::cr_logical);
    set(Op::kMcrf, &RiscfOps::cr_logical);
    for (const OpFn fn : t) {
      KFI_CHECK(fn != nullptr, "riscf op handler table incomplete");
    }
    return t;
  }();
  return table;
}

}  // namespace

void RiscfCpu::execute(const Insn& insn) {
  op_table()[static_cast<size_t>(insn.op)](*this, insn);
}

bool RiscfCpu::block_terminator(const Insn& insn) {
  switch (insn.op) {
    // Control transfers end the straight-line run; syscalls hand control
    // to the kernel glue; mtmsr can toggle MSR.IR/DR/EE, which the hoisted
    // per-block translation check and the machine loop's timer-eligibility
    // test must observe at a block boundary.
    case Op::kB: case Op::kBc: case Op::kBclr: case Op::kBcctr:
    case Op::kSc: case Op::kMtmsr:
      return true;
    default:
      return false;
  }
}

bool RiscfCpu::build_block(Superblock& blk, Addr vpc, u32 phys0) {
  const mem::PhysicalMemory& pm = space_.phys();
  blk.tag = 0xFFFFFFFFu;
  blk.insns.clear();
  blk.vpc = vpc;
  blk.page = phys0 >> mem::kPageShift;
  blk.ver = pm.page_version(blk.page);
  u32 phys = phys0;
  while (blk.insns.size() < kMaxBlockInsns &&
         (phys >> mem::kPageShift) == blk.page) {
    const Insn insn = decode(pm.read32(phys, mem::Endian::kBig));
    // Invalid encodings single-step: step() raises with insn.raw as aux.
    if (insn.op == Op::kInvalid) break;
    blk.insns.push_back(
        {insn, op_table()[static_cast<size_t>(insn.op)], phys});
    phys += 4;
    if (block_terminator(insn)) break;
  }
  if (blk.insns.empty()) return false;
  blk.tag = phys0;
  return true;
}

isa::StepResult RiscfCpu::step_block(const isa::BlockLimits& limits,
                                     u64* consumed) {
  *consumed = 1;
  if (!sblocks_enabled_) return step();
  // Same order as step(): the breakpoint check precedes everything.  The
  // single-step fallbacks below re-check it harmlessly (a non-matching
  // check has no effect, and a matching one already returned here).
  if (debug_.check_insn_bp(regs_.pc)) {
    isa::StepResult result;
    result.status = isa::StepStatus::kInsnBp;
    return result;
  }
  // Translation off or an unaligned/unfetchable pc: step() raises with
  // its own bookkeeping.  MSR.IR can only change in-block via mtmsr or a
  // trap, both of which end the block, so checking at dispatch is exact;
  // non-branch instructions advance the pc by 4, keeping it aligned.
  if ((regs_.msr & kMsrIR) == 0 || (regs_.pc & 3) != 0) return step();
  const auto tr = space_.translate(regs_.pc, 4, mem::Access::kExecute);
  if (!tr.ok()) return step();
  mem::PhysicalMemory& pm = space_.phys();
  Superblock& blk = sblocks_[(tr.phys >> 2) & (kSuperblockEntries - 1)];
  bool hit = false;
  if (blk.tag == tr.phys && blk.vpc == regs_.pc) {
    if (blk.ver == pm.page_version(blk.page)) {
      hit = true;
    } else {
      ++sb_stats_.invalidations;
    }
  }
  if (hit) {
    ++sb_stats_.hits;
  } else {
    ++sb_stats_.misses;
    if (!build_block(blk, regs_.pc, tr.phys)) return step();
  }
  ++sb_stats_.dispatches;

  isa::StepResult result;
  current_result_ = &result;
  const u64 cycle_bound = limits.cycle_bound == 0 ? ~0ull : limits.cycle_bound;
  const u64 max_insns = limits.max_insns == 0 ? ~0ull : limits.max_insns;
  const u64 ver = blk.ver;
  const u32 page = blk.page;
  const u32 n = static_cast<u32>(blk.insns.size());
  // No instruction arms the breakpoint (only the harness does, between
  // run() calls), so an unarmed unit at dispatch stays unarmed for the
  // whole block and the per-insn check can be skipped.
  const bool bp_armed = debug_.insn_bp_armed();
  u64 done = 0;
  bool bp_stop = false;
  try {
    for (u32 i = 0; i < n; ++i) {
      if (i != 0) {
        // The machine loop's per-iteration order, inlined: step budget,
        // cycle-driven events, then the instruction breakpoint.
        if (done >= max_insns) break;
        if (cycles_ >= cycle_bound) break;
        if (bp_armed && debug_.check_insn_bp(regs_.pc)) {
          result.status = isa::StepStatus::kInsnBp;
          bp_stop = true;
          break;
        }
      }
      const BlockInsn& bi = blk.insns[i];
      if (sink_ != nullptr) {
        // Fixed 4-byte aligned fetch: never straddles a page.
        sink_->on_insn_fetch(kSlotPc, regs_.pc, bi.phys, 4, 0, 0);
        trace_reads(bi.insn);
      }
      bi.fn(*this, bi.insn);
      if (sink_ != nullptr) trace_writes(bi.insn);
      cycles_ += 1;
      ++done;
      if (result.num_data_hits > 0) break;
      // A store into this block's own page (self-modification, injector
      // flip) may have rewritten the remaining cached instructions:
      // re-dispatch so they re-decode from current bytes.
      if (pm.page_version(page) != ver) break;
    }
  } catch (const TrapException& te) {
    result.status = isa::StepStatus::kTrap;
    result.trap = te.trap;
    cycles_ += 1;
  }
  current_result_ = nullptr;
  sb_stats_.block_insns += done;
  // Executed instructions each stand for one machine-loop iteration; a
  // trap or breakpoint stop consumed one more (exactly what the old
  // per-step loop charged against harness step budgets).
  *consumed =
      result.status == isa::StepStatus::kTrap || bp_stop ? done + 1 : done;
  return result;
}

void RiscfCpu::trace_reads(const Insn& insn) {
  const auto r = [this](u32 slot) {
    sink_->on_reg_read(static_cast<trace::RegSlot>(slot));
  };
  // (ra|0) operands read the literal zero when ra == 0, not r0.
  const auto ra0 = [&] {
    if (insn.ra != 0) r(insn.ra);
  };
  switch (insn.op) {
    case Op::kAddi: case Op::kAddis:
    case Op::kLwz: case Op::kLbz: case Op::kLhz: case Op::kLha:
    case Op::kLfs: case Op::kLfd:
    case Op::kStfs: case Op::kStfd:
    case Op::kLmw:
      ra0();
      break;
    case Op::kAddic: case Op::kAddicRec: case Op::kMulli:
    case Op::kCmpwi: case Op::kCmplwi: case Op::kSubfic: case Op::kTwi:
    case Op::kNeg:
    case Op::kLwzu: case Op::kLbzu: case Op::kLhzu: case Op::kLhau:
    case Op::kLfsu: case Op::kLfdu: case Op::kStfsu: case Op::kStfdu:
      r(insn.ra);
      break;
    case Op::kOri: case Op::kOris: case Op::kXori: case Op::kXoris:
    case Op::kAndiRec: case Op::kAndisRec: case Op::kRlwinm:
    case Op::kSrawi: case Op::kExtsb: case Op::kExtsh: case Op::kCntlzw:
    case Op::kMtcrf: case Op::kMtmsr: case Op::kMtspr:
      r(insn.rt);
      break;
    case Op::kAdd: case Op::kSubf: case Op::kMullw:
    case Op::kDivw: case Op::kDivwu: case Op::kMulhw: case Op::kMulhwu:
    case Op::kCmp: case Op::kCmpl: case Op::kTw:
      r(insn.ra);
      r(insn.rb);
      break;
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
    case Op::kAndc: case Op::kOrc: case Op::kNand: case Op::kEqv:
    case Op::kSlw: case Op::kSrw: case Op::kSraw: case Op::kRlwnm:
      r(insn.rt);
      r(insn.rb);
      break;
    case Op::kRlwimi:  // inserts into ra: destination bits are also a source
      r(insn.rt);
      r(insn.ra);
      break;
    case Op::kStw: case Op::kStb: case Op::kSth:
      ra0();
      r(insn.rt);
      break;
    case Op::kStwu: case Op::kStbu: case Op::kSthu:
      r(insn.ra);
      r(insn.rt);
      break;
    case Op::kLwzx: case Op::kLbzx: case Op::kLhzx: case Op::kLhax:
    case Op::kLwarx: case Op::kDcbz:
      ra0();
      r(insn.rb);
      break;
    case Op::kStwx: case Op::kStbx: case Op::kSthx: case Op::kStwcx:
      ra0();
      r(insn.rb);
      r(insn.rt);
      break;
    case Op::kStmw:
      ra0();
      for (u32 g = insn.rt; g < kNumGprs; ++g) r(g);
      break;
    case Op::kMfspr:
      r(spr_slot(insn.spr));
      break;
    case Op::kMfmsr:
      r(kSlotMsr);
      break;
    case Op::kMfcr:
      r(kSlotCr);
      break;
    default:
      // Branches, CR helpers, and SPR-less ops hook themselves (or touch
      // no registers).
      break;
  }
}

void RiscfCpu::trace_writes(const Insn& insn) {
  const auto w = [this](u32 slot) {
    sink_->on_reg_write(static_cast<trace::RegSlot>(slot));
  };
  switch (insn.op) {
    case Op::kAddi: case Op::kAddis: case Op::kAddic: case Op::kAddicRec:
    case Op::kMulli: case Op::kSubfic:
    case Op::kAdd: case Op::kSubf: case Op::kNeg: case Op::kMullw:
    case Op::kDivw: case Op::kDivwu: case Op::kMulhw: case Op::kMulhwu:
    case Op::kLwz: case Op::kLbz: case Op::kLhz: case Op::kLha:
    case Op::kLwzx: case Op::kLbzx: case Op::kLhzx: case Op::kLhax:
    case Op::kLwarx: case Op::kMftb:
    case Op::kMfspr: case Op::kMfmsr: case Op::kMfcr:
      w(insn.rt);
      break;
    case Op::kOri: case Op::kOris: case Op::kXori: case Op::kXoris:
    case Op::kAndiRec: case Op::kAndisRec: case Op::kRlwinm:
    case Op::kRlwimi: case Op::kRlwnm:
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
    case Op::kAndc: case Op::kOrc: case Op::kNand: case Op::kEqv:
    case Op::kSlw: case Op::kSrw: case Op::kSraw: case Op::kSrawi:
    case Op::kCntlzw: case Op::kExtsb: case Op::kExtsh:
      w(insn.ra);
      break;
    case Op::kLwzu: case Op::kLbzu: case Op::kLhzu: case Op::kLhau:
      w(insn.rt);
      w(insn.ra);
      break;
    case Op::kStwu: case Op::kStbu: case Op::kSthu:
    case Op::kLfsu: case Op::kLfdu: case Op::kStfsu: case Op::kStfdu:
      w(insn.ra);
      break;
    case Op::kLmw:
      for (u32 g = insn.rt; g < kNumGprs; ++g) w(g);
      break;
    case Op::kMtspr:
      w(spr_slot(insn.spr));
      break;
    case Op::kMtmsr:
      w(kSlotMsr);
      break;
    case Op::kMtcrf:
      w(kSlotCr);  // whole-CR move, unlike the field-wise merges
      break;
    default:
      break;
  }
}

isa::CpuSnapshot RiscfCpu::snapshot() const {
  isa::CpuSnapshot snap;
  snap.cycles = cycles_;
  snap.words.reserve(kNumGprs + 16 + spr_storage_.size());
  for (u32 i = 0; i < kNumGprs; ++i) snap.words.push_back(regs_.gpr[i]);
  snap.words.push_back(regs_.pc);
  snap.words.push_back(regs_.lr);
  snap.words.push_back(regs_.ctr);
  snap.words.push_back(regs_.cr);
  snap.words.push_back(regs_.xer);
  snap.words.push_back(regs_.msr);
  snap.words.push_back(regs_.srr0);
  snap.words.push_back(regs_.srr1);
  snap.words.push_back(regs_.dsisr);
  snap.words.push_back(regs_.dar);
  snap.words.push_back(regs_.dec);
  snap.words.push_back(regs_.sdr1);
  for (int i = 0; i < 4; ++i) snap.words.push_back(regs_.sprg[i]);
  snap.words.push_back(regs_.hid0);
  snap.words.push_back(regs_.hid1);
  for (const auto& [spr, value] : spr_storage_) snap.words.push_back(value);
  return snap;
}

void RiscfCpu::restore(const isa::CpuSnapshot& snap) {
  KFI_CHECK(snap.words.size() == kNumGprs + 18 + spr_storage_.size(),
            "riscf snapshot size mismatch");
  size_t i = 0;
  for (u32 g = 0; g < kNumGprs; ++g) regs_.gpr[g] = snap.words[i++];
  regs_.pc = snap.words[i++];
  regs_.lr = snap.words[i++];
  regs_.ctr = snap.words[i++];
  regs_.cr = snap.words[i++];
  regs_.xer = snap.words[i++];
  regs_.msr = snap.words[i++];
  regs_.srr0 = snap.words[i++];
  regs_.srr1 = snap.words[i++];
  regs_.dsisr = snap.words[i++];
  regs_.dar = snap.words[i++];
  regs_.dec = snap.words[i++];
  regs_.sdr1 = snap.words[i++];
  for (int s = 0; s < 4; ++s) regs_.sprg[s] = snap.words[i++];
  regs_.hid0 = snap.words[i++];
  regs_.hid1 = snap.words[i++];
  for (auto& [spr, value] : spr_storage_) value = snap.words[i++];
  cycles_ = snap.cycles;
  debug_.clear_all();
}

}  // namespace kfi::riscf
