#include "riscf/cpu.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"
#include "riscf/sysregs.hpp"

namespace kfi::riscf {

namespace {

u32 rotl32(u32 v, u32 n) { return n == 0 ? v : (v << n) | (v >> (32 - n)); }

}  // namespace

RiscfCpu::RiscfCpu(mem::AddressSpace& space)
    : space_(space), sysregs_(std::make_unique<RiscfSysRegs>(*this)) {
  // Pre-touch every inert supervisor SPR so snapshots have a fixed shape.
  for (const u32 spr : inert_supervisor_sprs()) spr_storage_[spr] = 0;
}

RiscfCpu::~RiscfCpu() = default;

isa::SystemRegisterBank& RiscfCpu::sysregs() { return *sysregs_; }

void RiscfCpu::raise(Cause cause, Addr addr, bool has_addr, u32 aux) {
  isa::Trap trap;
  trap.cause = static_cast<u32>(cause);
  trap.pc = regs_.pc;
  trap.addr = addr;
  trap.has_addr = has_addr;
  trap.aux = aux;
  if (cause == Cause::kDataStorage || cause == Cause::kAlignment ||
      cause == Cause::kProtection) {
    regs_.dar = addr;
    regs_.dsisr = 0x40000000;
  }
  // A machine check with MSR.ME cleared is a checkstop: the processor
  // stops dead.  aux=1 flags this so the kernel runtime can treat it as a
  // hang rather than a handled exception.
  if (cause == Cause::kMachineCheck && (regs_.msr & kMsrME) == 0) {
    trap.aux = 1;
  }
  throw TrapException{trap};
}

void RiscfCpu::check_alignment(Addr ea, u8 width) {
  // Like the MPC7455, most unaligned accesses are handled in hardware
  // (with a cycle penalty); the alignment interrupt fires only when an
  // unaligned access straddles a cache-line boundary.
  if (width == 1 || (ea & (width - 1)) == 0) return;
  if ((ea & 31) + width > 32) raise(Cause::kAlignment, ea, true);
  cycles_ += 3;
}

u32 RiscfCpu::read_mem(Addr addr, u8 width) {
  if ((regs_.msr & kMsrDR) == 0) raise(Cause::kMachineCheck, addr, true);
  check_alignment(addr, width);
  const auto tr = space_.translate(addr, width, mem::Access::kRead);
  if (!tr.ok()) {
    if (tr.fault->kind == mem::FaultKind::kBusRegion) {
      raise(Cause::kMachineCheck, addr, true);
    }
    raise(Cause::kDataStorage, addr, true);
  }
  cycles_ += 2;
  u32 value = 0;
  switch (width) {
    case 1: value = space_.phys().read8(tr.phys); break;
    case 2: value = space_.phys().read16(tr.phys, mem::Endian::kBig); break;
    case 4: value = space_.phys().read32(tr.phys, mem::Endian::kBig); break;
    default: KFI_CHECK(false, "bad width");
  }
  if (current_result_ != nullptr) {
    debug_.record_access(addr, width, /*is_write=*/false, *current_result_);
  }
  if (sink_ != nullptr) sink_->on_mem_read(addr, tr.phys, width);
  return value;
}

void RiscfCpu::write_mem(Addr addr, u8 width, u32 value) {
  if ((regs_.msr & kMsrDR) == 0) raise(Cause::kMachineCheck, addr, true);
  check_alignment(addr, width);
  const auto tr = space_.translate(addr, width, mem::Access::kWrite);
  if (!tr.ok()) {
    switch (tr.fault->kind) {
      case mem::FaultKind::kBusRegion:
        raise(Cause::kMachineCheck, addr, true);
      case mem::FaultKind::kNoWrite:
        // Store to a protected page: the paper's Table 4 "bus error
        // (protection fault)" category.
        raise(Cause::kProtection, addr, true);
      default:
        raise(Cause::kDataStorage, addr, true);
    }
  }
  cycles_ += 2;
  switch (width) {
    case 1: space_.phys().write8(tr.phys, static_cast<u8>(value)); break;
    case 2:
      space_.phys().write16(tr.phys, static_cast<u16>(value), mem::Endian::kBig);
      break;
    case 4: space_.phys().write32(tr.phys, value, mem::Endian::kBig); break;
    default: KFI_CHECK(false, "bad width");
  }
  if (current_result_ != nullptr) {
    debug_.record_access(addr, width, /*is_write=*/true, *current_result_);
  }
  if (sink_ != nullptr) sink_->on_mem_write(addr, tr.phys, width);
}

void RiscfCpu::set_cr_field(u8 field, u32 bits4) {
  const u32 shift = (7 - field) * 4;
  regs_.cr = (regs_.cr & ~(0xFu << shift)) | ((bits4 & 0xF) << shift);
  trace_rm(kSlotCr);  // partial update: other CR fields keep their shadow
}

void RiscfCpu::record_cr0(u32 result) {
  trace_rr(kSlotXer);  // SO bit copied into CR0
  const i32 sr = static_cast<i32>(result);
  u32 bits = 0;
  if (sr < 0) bits |= 8;        // LT
  else if (sr > 0) bits |= 4;   // GT
  else bits |= 2;               // EQ
  // SO copied from XER[SO].
  if (regs_.xer & 0x80000000u) bits |= 1;
  set_cr_field(0, bits);
}

void RiscfCpu::compare(u8 crfd, i64 a, i64 b) {
  trace_rr(kSlotXer);  // SO bit copied into the CR field
  u32 bits = 0;
  if (a < b) bits |= 8;
  else if (a > b) bits |= 4;
  else bits |= 2;
  if (regs_.xer & 0x80000000u) bits |= 1;
  set_cr_field(crfd, bits);
}

bool RiscfCpu::branch_cond(u8 bo, u8 bi) {
  bool ctr_ok = true;
  if ((bo & 0x04) == 0) {
    trace_rr(kSlotCtr);
    regs_.ctr -= 1;
    trace_rm(kSlotCtr);  // decrement derives from the old CTR value
    ctr_ok = ((regs_.ctr != 0) != ((bo & 0x02) != 0));
  }
  bool cond_ok = true;
  if ((bo & 0x10) == 0) {
    trace_rr(kSlotCr);
    const bool crbit = (regs_.cr & cr_bit_mask(bi)) != 0;
    cond_ok = crbit == ((bo & 0x08) != 0);
  }
  trace_branch();
  return ctr_ok && cond_ok;
}

void RiscfCpu::taken_branch_check() {
  // BTIC enabled over invalid contents (an HID0 bit flip — the kernel
  // boots with BTIC off) fetches a stale branch target: the fetched junk
  // raises a program exception on the next taken branch (Section 5.2).
  trace_rr(kSlotHid0);  // BTIC enable bit steers every taken branch
  if ((regs_.hid0 & kHid0Btic) != 0) {
    raise(Cause::kIllegalInstruction, regs_.pc, false, /*aux=*/kSprHid0);
  }
  cycles_ += 1;
}

void RiscfCpu::require_supervisor() {
  if ((regs_.msr & kMsrPR) != 0) raise(Cause::kPrivileged);
}

bool RiscfCpu::read_spr(u32 spr, u32& value) const {
  switch (spr) {
    case kSprXer: value = regs_.xer; return true;
    case kSprLr: value = regs_.lr; return true;
    case kSprCtr: value = regs_.ctr; return true;
    case kSprDsisr: value = regs_.dsisr; return true;
    case kSprDar: value = regs_.dar; return true;
    case kSprDec: value = regs_.dec; return true;
    case kSprSdr1: value = regs_.sdr1; return true;
    case kSprSrr0: value = regs_.srr0; return true;
    case kSprSrr1: value = regs_.srr1; return true;
    case kSprSprg0: case kSprSprg1: case kSprSprg2: case kSprSprg3:
      value = regs_.sprg[spr - kSprSprg0];
      return true;
    case kSprPvr: value = 0x80010201; return true;  // MPC7455-like PVR
    case kSprHid0: value = regs_.hid0; return true;
    case kSprHid1: value = regs_.hid1; return true;
    default: {
      const auto it = spr_storage_.find(spr);
      if (it == spr_storage_.end()) return false;
      value = it->second;
      return true;
    }
  }
}

bool RiscfCpu::write_spr(u32 spr, u32 value) {
  switch (spr) {
    case kSprXer: regs_.xer = value; return true;
    case kSprLr: regs_.lr = value; return true;
    case kSprCtr: regs_.ctr = value; return true;
    case kSprDsisr: regs_.dsisr = value; return true;
    case kSprDar: regs_.dar = value; return true;
    case kSprDec: regs_.dec = value; return true;
    case kSprSdr1: regs_.sdr1 = value; return true;
    case kSprSrr0: regs_.srr0 = value; return true;
    case kSprSrr1: regs_.srr1 = value; return true;
    case kSprSprg0: case kSprSprg1: case kSprSprg2: case kSprSprg3:
      regs_.sprg[spr - kSprSprg0] = value;
      return true;
    case kSprPvr: return true;  // read-only; write ignored
    case kSprHid0: regs_.hid0 = value; return true;
    case kSprHid1: regs_.hid1 = value; return true;
    default: {
      const auto it = spr_storage_.find(spr);
      if (it == spr_storage_.end()) return false;
      it->second = value;
      return true;
    }
  }
}

Insn RiscfCpu::decode_at(Addr pc) const {
  const auto tr = space_.translate(pc, 4, mem::Access::kExecute);
  if (!tr.ok()) return Insn{};
  return decode(space_.phys().read32(tr.phys, mem::Endian::kBig));
}

void RiscfCpu::set_decode_cache_enabled(bool enabled) {
  dcache_enabled_ = enabled;
  if (enabled && dcache_.empty()) {
    dcache_.resize(kDecodeCacheEntries);
  } else if (!enabled) {
    dcache_.clear();
    dcache_.shrink_to_fit();
  }
}

const Insn& RiscfCpu::decode_cached(u32 phys) {
  const mem::PhysicalMemory& pm = space_.phys();
  if (!dcache_enabled_) {
    dcache_scratch_ = decode(pm.read32(phys, mem::Endian::kBig));
    return dcache_scratch_;
  }
  DecodeCacheEntry& entry = dcache_[(phys >> 2) & (kDecodeCacheEntries - 1)];
  const u64 ver = pm.page_version(phys >> mem::kPageShift);
  if (entry.tag == phys) {
    if (entry.ver == ver) {
      ++dcache_stats_.hits;
      return entry.insn;
    }
    ++dcache_stats_.invalidations;
  }
  ++dcache_stats_.misses;
  entry.tag = phys;
  entry.ver = ver;
  entry.insn = decode(pm.read32(phys, mem::Endian::kBig));
  return entry.insn;
}

isa::StepResult RiscfCpu::step() {
  isa::StepResult result;
  if (debug_.check_insn_bp(regs_.pc)) {
    result.status = isa::StepStatus::kInsnBp;
    return result;
  }
  current_result_ = &result;
  try {
    if ((regs_.msr & kMsrIR) == 0) {
      raise(Cause::kMachineCheck, regs_.pc, true);
    }
    if ((regs_.pc & 3) != 0) {
      raise(Cause::kInstrStorage, regs_.pc, true);
    }
    const auto tr = space_.translate(regs_.pc, 4, mem::Access::kExecute);
    if (!tr.ok()) {
      if (tr.fault->kind == mem::FaultKind::kBusRegion) {
        raise(Cause::kMachineCheck, regs_.pc, true);
      }
      raise(Cause::kInstrStorage, regs_.pc, true);
    }
    const Insn& insn = decode_cached(tr.phys);
    if (insn.op == Op::kInvalid) {
      raise(Cause::kIllegalInstruction, 0, false, insn.raw);
    }
    if (sink_ != nullptr) {
      // Fixed 4-byte aligned fetch: never straddles a page.
      sink_->on_insn_fetch(kSlotPc, regs_.pc, tr.phys, 4, 0, 0);
      trace_reads(insn);
    }
    execute(insn);
    if (sink_ != nullptr) trace_writes(insn);
    cycles_ += 1;
  } catch (const TrapException& te) {
    result.status = isa::StepStatus::kTrap;
    result.trap = te.trap;
    cycles_ += 1;
  }
  current_result_ = nullptr;
  return result;
}

void RiscfCpu::execute(const Insn& insn) {
  u32* gpr = regs_.gpr;
  const Addr next = regs_.pc + 4;

  switch (insn.op) {
    case Op::kAddi:
      gpr[insn.rt] = (insn.ra == 0 ? 0 : gpr[insn.ra]) +
                     static_cast<u32>(insn.simm);
      break;
    case Op::kAddis:
      gpr[insn.rt] = (insn.ra == 0 ? 0 : gpr[insn.ra]) +
                     (static_cast<u32>(insn.simm) << 16);
      break;
    case Op::kAddic:
      gpr[insn.rt] = gpr[insn.ra] + static_cast<u32>(insn.simm);
      break;
    case Op::kMulli:
      gpr[insn.rt] = gpr[insn.ra] * static_cast<u32>(insn.simm);
      cycles_ += 3;
      break;
    case Op::kCmpwi:
      compare(insn.crfd, static_cast<i32>(gpr[insn.ra]), insn.simm);
      break;
    case Op::kCmplwi:
      compare(insn.crfd, gpr[insn.ra], insn.uimm);
      break;
    case Op::kOri:
      gpr[insn.ra] = gpr[insn.rt] | insn.uimm;
      break;
    case Op::kOris:
      gpr[insn.ra] = gpr[insn.rt] | (insn.uimm << 16);
      break;
    case Op::kXori:
      gpr[insn.ra] = gpr[insn.rt] ^ insn.uimm;
      break;
    case Op::kAndiRec:
      gpr[insn.ra] = gpr[insn.rt] & insn.uimm;
      record_cr0(gpr[insn.ra]);
      break;
    case Op::kRlwinm: {
      // Mask spans PPC (big-endian numbered) bits mb..me inclusive; for
      // mb > me the mask wraps around.
      const u32 hi_mask = 0xFFFFFFFFu >> insn.mb;
      const u32 lo_mask =
          insn.me == 31 ? 0xFFFFFFFFu : ~((1u << (31 - insn.me)) - 1u);
      const u32 final_mask =
          insn.mb <= insn.me ? (hi_mask & lo_mask) : (hi_mask | lo_mask);
      gpr[insn.ra] = rotl32(gpr[insn.rt], insn.sh) & final_mask;
      if (insn.rc) record_cr0(gpr[insn.ra]);
      break;
    }
    case Op::kLwz: case Op::kLbz: case Op::kLhz: case Op::kLha: {
      const Addr ea = (insn.ra == 0 ? 0 : gpr[insn.ra]) +
                      static_cast<u32>(insn.simm);
      const u8 w = insn.op == Op::kLwz ? 4 : insn.op == Op::kLbz ? 1 : 2;
      u32 v = read_mem(ea, w);
      if (insn.op == Op::kLha) v = static_cast<u32>(sign_extend32(v, 16));
      gpr[insn.rt] = v;
      break;
    }
    case Op::kLwzu: {
      const Addr ea = gpr[insn.ra] + static_cast<u32>(insn.simm);
      gpr[insn.rt] = read_mem(ea, 4);
      gpr[insn.ra] = ea;
      break;
    }
    case Op::kStw: case Op::kStb: case Op::kSth: {
      const Addr ea = (insn.ra == 0 ? 0 : gpr[insn.ra]) +
                      static_cast<u32>(insn.simm);
      const u8 w = insn.op == Op::kStw ? 4 : insn.op == Op::kStb ? 1 : 2;
      write_mem(ea, w, gpr[insn.rt]);
      break;
    }
    case Op::kStwu: {
      const Addr ea = gpr[insn.ra] + static_cast<u32>(insn.simm);
      write_mem(ea, 4, gpr[insn.rt]);
      gpr[insn.ra] = ea;
      break;
    }
    case Op::kB: {
      taken_branch_check();
      if (insn.lk) {
        regs_.lr = next;
        trace_rw(kSlotLr);
      }
      // Relative target: the PC stays self-derived, no shadow write.
      regs_.pc = insn.aa ? static_cast<u32>(insn.li)
                         : regs_.pc + static_cast<u32>(insn.li);
      return;
    }
    case Op::kBc: {
      if (branch_cond(insn.bo, insn.bi)) {
        taken_branch_check();
        if (insn.lk) {
          regs_.lr = next;
          trace_rw(kSlotLr);
        }
        regs_.pc = insn.aa ? static_cast<u32>(insn.bd)
                           : regs_.pc + static_cast<u32>(insn.bd);
        return;
      }
      if (insn.lk) {
        regs_.lr = next;
        trace_rw(kSlotLr);
      }
      break;
    }
    case Op::kBclr: {
      if (branch_cond(insn.bo, insn.bi)) {
        taken_branch_check();
        trace_rr(kSlotLr);
        const u32 target = regs_.lr & ~3u;
        if (insn.lk) {
          regs_.lr = next;
          trace_rw(kSlotLr);
        }
        regs_.pc = target;
        trace_rw(kSlotPc);  // computed transfer: PC inherits LR's shadow
        return;
      }
      if (insn.lk) {
        regs_.lr = next;
        trace_rw(kSlotLr);
      }
      break;
    }
    case Op::kBcctr: {
      if (branch_cond(insn.bo, insn.bi)) {
        taken_branch_check();
        trace_rr(kSlotCtr);
        const u32 target = regs_.ctr & ~3u;
        if (insn.lk) {
          regs_.lr = next;
          trace_rw(kSlotLr);
        }
        regs_.pc = target;
        trace_rw(kSlotPc);  // computed transfer: PC inherits CTR's shadow
        return;
      }
      if (insn.lk) {
        regs_.lr = next;
        trace_rw(kSlotLr);
      }
      break;
    }
    case Op::kSc:
      regs_.pc = next;
      raise(Cause::kSyscall);
    case Op::kAdd:
      gpr[insn.rt] = gpr[insn.ra] + gpr[insn.rb];
      if (insn.rc) record_cr0(gpr[insn.rt]);
      break;
    case Op::kSubf:
      gpr[insn.rt] = gpr[insn.rb] - gpr[insn.ra];
      if (insn.rc) record_cr0(gpr[insn.rt]);
      break;
    case Op::kNeg:
      gpr[insn.rt] = 0u - gpr[insn.ra];
      break;
    case Op::kMullw:
      gpr[insn.rt] = gpr[insn.ra] * gpr[insn.rb];
      cycles_ += 3;
      if (insn.rc) record_cr0(gpr[insn.rt]);
      break;
    case Op::kDivw: {
      // PowerPC division does not trap: /0 and overflow give boundedly
      // undefined results (we use 0), matching the absence of a divide
      // crash category on the G4 (Table 4).
      const i32 a = static_cast<i32>(gpr[insn.ra]);
      const i32 b = static_cast<i32>(gpr[insn.rb]);
      cycles_ += 19;
      gpr[insn.rt] =
          (b == 0 || (a == INT32_MIN && b == -1)) ? 0 : static_cast<u32>(a / b);
      break;
    }
    case Op::kDivwu: {
      const u32 b = gpr[insn.rb];
      cycles_ += 19;
      gpr[insn.rt] = b == 0 ? 0 : gpr[insn.ra] / b;
      break;
    }
    case Op::kAnd:
      gpr[insn.ra] = gpr[insn.rt] & gpr[insn.rb];
      if (insn.rc) record_cr0(gpr[insn.ra]);
      break;
    case Op::kOr:
      gpr[insn.ra] = gpr[insn.rt] | gpr[insn.rb];
      if (insn.rc) record_cr0(gpr[insn.ra]);
      break;
    case Op::kXor:
      gpr[insn.ra] = gpr[insn.rt] ^ gpr[insn.rb];
      if (insn.rc) record_cr0(gpr[insn.ra]);
      break;
    case Op::kNor:
      gpr[insn.ra] = ~(gpr[insn.rt] | gpr[insn.rb]);
      break;
    case Op::kCntlzw: {
      u32 v = gpr[insn.rt];
      u32 n = 0;
      while (n < 32 && (v & 0x80000000u) == 0) {
        ++n;
        v <<= 1;
      }
      gpr[insn.ra] = n;
      break;
    }
    case Op::kSlw: {
      const u32 sh = gpr[insn.rb] & 63;
      gpr[insn.ra] = sh >= 32 ? 0 : gpr[insn.rt] << sh;
      break;
    }
    case Op::kSrw: {
      const u32 sh = gpr[insn.rb] & 63;
      gpr[insn.ra] = sh >= 32 ? 0 : gpr[insn.rt] >> sh;
      break;
    }
    case Op::kSraw: {
      const u32 sh = gpr[insn.rb] & 63;
      const i32 v = static_cast<i32>(gpr[insn.rt]);
      gpr[insn.ra] = static_cast<u32>(sh >= 32 ? (v >> 31) : (v >> sh));
      break;
    }
    case Op::kSrawi:
      gpr[insn.ra] =
          static_cast<u32>(static_cast<i32>(gpr[insn.rt]) >> insn.sh);
      break;
    case Op::kCmp:
      compare(insn.crfd, static_cast<i32>(gpr[insn.ra]),
              static_cast<i32>(gpr[insn.rb]));
      break;
    case Op::kCmpl:
      compare(insn.crfd, gpr[insn.ra], gpr[insn.rb]);
      break;
    case Op::kMfspr: {
      if (insn.spr != kSprLr && insn.spr != kSprCtr && insn.spr != kSprXer) {
        require_supervisor();
      }
      u32 v = 0;
      if (!read_spr(insn.spr, v)) {
        raise(Cause::kIllegalInstruction, 0, false, insn.raw);
      }
      gpr[insn.rt] = v;
      break;
    }
    case Op::kMtspr: {
      if (insn.spr != kSprLr && insn.spr != kSprCtr && insn.spr != kSprXer) {
        require_supervisor();
      }
      if (!write_spr(insn.spr, gpr[insn.rt])) {
        raise(Cause::kIllegalInstruction, 0, false, insn.raw);
      }
      break;
    }
    case Op::kMfmsr:
      require_supervisor();
      gpr[insn.rt] = regs_.msr;
      break;
    case Op::kMtmsr:
      require_supervisor();
      regs_.msr = gpr[insn.rt];
      break;
    case Op::kMfcr:
      gpr[insn.rt] = regs_.cr;
      break;
    case Op::kLwzx: case Op::kLbzx: case Op::kLhzx: case Op::kLhax: {
      const Addr ea = (insn.ra == 0 ? 0 : gpr[insn.ra]) + gpr[insn.rb];
      const u8 w = insn.op == Op::kLwzx ? 4 : insn.op == Op::kLbzx ? 1 : 2;
      u32 v = read_mem(ea, w);
      if (insn.op == Op::kLhax) v = static_cast<u32>(sign_extend32(v, 16));
      gpr[insn.rt] = v;
      break;
    }
    case Op::kStwx: case Op::kStbx: case Op::kSthx: {
      const Addr ea = (insn.ra == 0 ? 0 : gpr[insn.ra]) + gpr[insn.rb];
      const u8 w = insn.op == Op::kStwx ? 4 : insn.op == Op::kStbx ? 1 : 2;
      write_mem(ea, w, gpr[insn.rt]);
      break;
    }
    case Op::kTw: {
      const i32 a = static_cast<i32>(gpr[insn.ra]);
      const i32 b = static_cast<i32>(gpr[insn.rb]);
      const u32 ua = gpr[insn.ra], ub = gpr[insn.rb];
      const u8 to = insn.to;
      const bool trap = ((to & 16) && a < b) || ((to & 8) && a > b) ||
                        ((to & 4) && a == b) || ((to & 2) && ua < ub) ||
                        ((to & 1) && ua > ub);
      if (trap) raise(Cause::kTrapWord, 0, false, insn.raw);
      break;
    }
    case Op::kTwi: {
      const i32 a = static_cast<i32>(gpr[insn.ra]);
      const u32 ua = gpr[insn.ra];
      const u8 to = insn.to;
      const bool trap = ((to & 16) && a < insn.simm) ||
                        ((to & 8) && a > insn.simm) ||
                        ((to & 4) && a == insn.simm) ||
                        ((to & 2) && ua < static_cast<u32>(insn.simm)) ||
                        ((to & 1) && ua > static_cast<u32>(insn.simm));
      if (trap) raise(Cause::kTrapWord, 0, false, insn.raw);
      break;
    }
    case Op::kSubfic:
      gpr[insn.rt] = static_cast<u32>(insn.simm) - gpr[insn.ra];
      break;
    case Op::kAddicRec:
      gpr[insn.rt] = gpr[insn.ra] + static_cast<u32>(insn.simm);
      record_cr0(gpr[insn.rt]);
      break;
    case Op::kXoris:
      gpr[insn.ra] = gpr[insn.rt] ^ (insn.uimm << 16);
      break;
    case Op::kAndisRec:
      gpr[insn.ra] = gpr[insn.rt] & (insn.uimm << 16);
      record_cr0(gpr[insn.ra]);
      break;
    case Op::kRlwimi: {
      const u32 hi_mask = 0xFFFFFFFFu >> insn.mb;
      const u32 lo_mask =
          insn.me == 31 ? 0xFFFFFFFFu : ~((1u << (31 - insn.me)) - 1u);
      const u32 mask =
          insn.mb <= insn.me ? (hi_mask & lo_mask) : (hi_mask | lo_mask);
      gpr[insn.ra] = (rotl32(gpr[insn.rt], insn.sh) & mask) |
                     (gpr[insn.ra] & ~mask);
      if (insn.rc) record_cr0(gpr[insn.ra]);
      break;
    }
    case Op::kRlwnm: {
      const u32 hi_mask = 0xFFFFFFFFu >> insn.mb;
      const u32 lo_mask =
          insn.me == 31 ? 0xFFFFFFFFu : ~((1u << (31 - insn.me)) - 1u);
      const u32 mask =
          insn.mb <= insn.me ? (hi_mask & lo_mask) : (hi_mask | lo_mask);
      gpr[insn.ra] = rotl32(gpr[insn.rt], gpr[insn.rb] & 31) & mask;
      if (insn.rc) record_cr0(gpr[insn.ra]);
      break;
    }
    case Op::kAndc:
      gpr[insn.ra] = gpr[insn.rt] & ~gpr[insn.rb];
      if (insn.rc) record_cr0(gpr[insn.ra]);
      break;
    case Op::kOrc:
      gpr[insn.ra] = gpr[insn.rt] | ~gpr[insn.rb];
      break;
    case Op::kNand:
      gpr[insn.ra] = ~(gpr[insn.rt] & gpr[insn.rb]);
      break;
    case Op::kEqv:
      gpr[insn.ra] = ~(gpr[insn.rt] ^ gpr[insn.rb]);
      break;
    case Op::kExtsb:
      gpr[insn.ra] = static_cast<u32>(sign_extend32(gpr[insn.rt] & 0xFF, 8));
      break;
    case Op::kExtsh:
      gpr[insn.ra] =
          static_cast<u32>(sign_extend32(gpr[insn.rt] & 0xFFFF, 16));
      break;
    case Op::kMulhw: {
      const i64 p = static_cast<i64>(static_cast<i32>(gpr[insn.ra])) *
                    static_cast<i32>(gpr[insn.rb]);
      gpr[insn.rt] = static_cast<u32>(static_cast<u64>(p) >> 32);
      cycles_ += 3;
      break;
    }
    case Op::kMulhwu: {
      const u64 p = static_cast<u64>(gpr[insn.ra]) * gpr[insn.rb];
      gpr[insn.rt] = static_cast<u32>(p >> 32);
      cycles_ += 3;
      break;
    }
    case Op::kLbzu: case Op::kLhzu: case Op::kLhau: {
      const Addr ea = gpr[insn.ra] + static_cast<u32>(insn.simm);
      const u8 w = insn.op == Op::kLbzu ? 1 : 2;
      u32 v = read_mem(ea, w);
      if (insn.op == Op::kLhau) v = static_cast<u32>(sign_extend32(v, 16));
      gpr[insn.rt] = v;
      gpr[insn.ra] = ea;
      break;
    }
    case Op::kStbu: case Op::kSthu: {
      const Addr ea = gpr[insn.ra] + static_cast<u32>(insn.simm);
      write_mem(ea, insn.op == Op::kStbu ? 1 : 2, gpr[insn.rt]);
      gpr[insn.ra] = ea;
      break;
    }
    case Op::kLmw: {
      // Load multiple: rt..r31 from consecutive words.
      Addr ea = (insn.ra == 0 ? 0 : gpr[insn.ra]) +
                static_cast<u32>(insn.simm);
      for (u32 r = insn.rt; r < 32; ++r, ea += 4) {
        gpr[r] = read_mem(ea, 4);
      }
      break;
    }
    case Op::kStmw: {
      Addr ea = (insn.ra == 0 ? 0 : gpr[insn.ra]) +
                static_cast<u32>(insn.simm);
      for (u32 r = insn.rt; r < 32; ++r, ea += 4) {
        write_mem(ea, 4, gpr[r]);
      }
      break;
    }
    case Op::kLfs: case Op::kLfd: {
      // FP load: the memory access (and its faults) happen; the loaded
      // value goes to the unmodeled FP register file.
      const Addr ea = (insn.ra == 0 ? 0 : gpr[insn.ra]) +
                      static_cast<u32>(insn.simm);
      read_mem(ea, 4);
      if (insn.op == Op::kLfd) read_mem(ea + 4, 4);
      cycles_ += 1;
      break;
    }
    case Op::kLfsu: case Op::kLfdu: {
      const Addr ea = gpr[insn.ra] + static_cast<u32>(insn.simm);
      read_mem(ea, 4);
      if (insn.op == Op::kLfdu) read_mem(ea + 4, 4);
      gpr[insn.ra] = ea;
      cycles_ += 1;
      break;
    }
    case Op::kStfs: case Op::kStfd: {
      const Addr ea = (insn.ra == 0 ? 0 : gpr[insn.ra]) +
                      static_cast<u32>(insn.simm);
      write_mem(ea, 4, 0);  // unmodeled FP register contents
      if (insn.op == Op::kStfd) write_mem(ea + 4, 4, 0);
      cycles_ += 1;
      break;
    }
    case Op::kStfsu: case Op::kStfdu: {
      const Addr ea = gpr[insn.ra] + static_cast<u32>(insn.simm);
      write_mem(ea, 4, 0);
      if (insn.op == Op::kStfdu) write_mem(ea + 4, 4, 0);
      gpr[insn.ra] = ea;
      cycles_ += 1;
      break;
    }
    case Op::kFpArith:
      cycles_ += 3;
      break;
    case Op::kVecArith:
      cycles_ += 2;
      break;
    case Op::kLwarx: {
      const Addr ea = (insn.ra == 0 ? 0 : gpr[insn.ra]) + gpr[insn.rb];
      gpr[insn.rt] = read_mem(ea, 4);
      break;
    }
    case Op::kStwcx: {
      const Addr ea = (insn.ra == 0 ? 0 : gpr[insn.ra]) + gpr[insn.rb];
      write_mem(ea, 4, gpr[insn.rt]);
      set_cr_field(0, 2);  // EQ: store succeeded
      break;
    }
    case Op::kDcbz: {
      // Zero a 32-byte cache block: a potent memory-corruption source
      // when reached through corrupted code.
      const Addr ea =
          ((insn.ra == 0 ? 0 : gpr[insn.ra]) + gpr[insn.rb]) & ~31u;
      for (u32 off = 0; off < 32; off += 4) write_mem(ea + off, 4, 0);
      break;
    }
    case Op::kDcbt:
      cycles_ += 1;  // cache touch/maintenance: harmless
      break;
    case Op::kMftb:
      gpr[insn.rt] = static_cast<u32>(cycles_);
      break;
    case Op::kMtcrf:
      regs_.cr = gpr[insn.rt];
      break;
    case Op::kCrLogical: case Op::kMcrf:
      cycles_ += 1;  // CR-field shuffling: no modeled effect
      break;
    case Op::kSync: case Op::kIsync: case Op::kDcbf: case Op::kIcbi:
      cycles_ += 2;
      break;
    case Op::kInvalid:
      raise(Cause::kIllegalInstruction, 0, false, insn.raw);
  }
  regs_.pc = next;
}

void RiscfCpu::trace_reads(const Insn& insn) {
  const auto r = [this](u32 slot) {
    sink_->on_reg_read(static_cast<trace::RegSlot>(slot));
  };
  // (ra|0) operands read the literal zero when ra == 0, not r0.
  const auto ra0 = [&] {
    if (insn.ra != 0) r(insn.ra);
  };
  switch (insn.op) {
    case Op::kAddi: case Op::kAddis:
    case Op::kLwz: case Op::kLbz: case Op::kLhz: case Op::kLha:
    case Op::kLfs: case Op::kLfd:
    case Op::kStfs: case Op::kStfd:
    case Op::kLmw:
      ra0();
      break;
    case Op::kAddic: case Op::kAddicRec: case Op::kMulli:
    case Op::kCmpwi: case Op::kCmplwi: case Op::kSubfic: case Op::kTwi:
    case Op::kNeg:
    case Op::kLwzu: case Op::kLbzu: case Op::kLhzu: case Op::kLhau:
    case Op::kLfsu: case Op::kLfdu: case Op::kStfsu: case Op::kStfdu:
      r(insn.ra);
      break;
    case Op::kOri: case Op::kOris: case Op::kXori: case Op::kXoris:
    case Op::kAndiRec: case Op::kAndisRec: case Op::kRlwinm:
    case Op::kSrawi: case Op::kExtsb: case Op::kExtsh: case Op::kCntlzw:
    case Op::kMtcrf: case Op::kMtmsr: case Op::kMtspr:
      r(insn.rt);
      break;
    case Op::kAdd: case Op::kSubf: case Op::kMullw:
    case Op::kDivw: case Op::kDivwu: case Op::kMulhw: case Op::kMulhwu:
    case Op::kCmp: case Op::kCmpl: case Op::kTw:
      r(insn.ra);
      r(insn.rb);
      break;
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
    case Op::kAndc: case Op::kOrc: case Op::kNand: case Op::kEqv:
    case Op::kSlw: case Op::kSrw: case Op::kSraw: case Op::kRlwnm:
      r(insn.rt);
      r(insn.rb);
      break;
    case Op::kRlwimi:  // inserts into ra: destination bits are also a source
      r(insn.rt);
      r(insn.ra);
      break;
    case Op::kStw: case Op::kStb: case Op::kSth:
      ra0();
      r(insn.rt);
      break;
    case Op::kStwu: case Op::kStbu: case Op::kSthu:
      r(insn.ra);
      r(insn.rt);
      break;
    case Op::kLwzx: case Op::kLbzx: case Op::kLhzx: case Op::kLhax:
    case Op::kLwarx: case Op::kDcbz:
      ra0();
      r(insn.rb);
      break;
    case Op::kStwx: case Op::kStbx: case Op::kSthx: case Op::kStwcx:
      ra0();
      r(insn.rb);
      r(insn.rt);
      break;
    case Op::kStmw:
      ra0();
      for (u32 g = insn.rt; g < kNumGprs; ++g) r(g);
      break;
    case Op::kMfspr:
      r(spr_slot(insn.spr));
      break;
    case Op::kMfmsr:
      r(kSlotMsr);
      break;
    case Op::kMfcr:
      r(kSlotCr);
      break;
    default:
      // Branches, CR helpers, and SPR-less ops hook themselves (or touch
      // no registers).
      break;
  }
}

void RiscfCpu::trace_writes(const Insn& insn) {
  const auto w = [this](u32 slot) {
    sink_->on_reg_write(static_cast<trace::RegSlot>(slot));
  };
  switch (insn.op) {
    case Op::kAddi: case Op::kAddis: case Op::kAddic: case Op::kAddicRec:
    case Op::kMulli: case Op::kSubfic:
    case Op::kAdd: case Op::kSubf: case Op::kNeg: case Op::kMullw:
    case Op::kDivw: case Op::kDivwu: case Op::kMulhw: case Op::kMulhwu:
    case Op::kLwz: case Op::kLbz: case Op::kLhz: case Op::kLha:
    case Op::kLwzx: case Op::kLbzx: case Op::kLhzx: case Op::kLhax:
    case Op::kLwarx: case Op::kMftb:
    case Op::kMfspr: case Op::kMfmsr: case Op::kMfcr:
      w(insn.rt);
      break;
    case Op::kOri: case Op::kOris: case Op::kXori: case Op::kXoris:
    case Op::kAndiRec: case Op::kAndisRec: case Op::kRlwinm:
    case Op::kRlwimi: case Op::kRlwnm:
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
    case Op::kAndc: case Op::kOrc: case Op::kNand: case Op::kEqv:
    case Op::kSlw: case Op::kSrw: case Op::kSraw: case Op::kSrawi:
    case Op::kCntlzw: case Op::kExtsb: case Op::kExtsh:
      w(insn.ra);
      break;
    case Op::kLwzu: case Op::kLbzu: case Op::kLhzu: case Op::kLhau:
      w(insn.rt);
      w(insn.ra);
      break;
    case Op::kStwu: case Op::kStbu: case Op::kSthu:
    case Op::kLfsu: case Op::kLfdu: case Op::kStfsu: case Op::kStfdu:
      w(insn.ra);
      break;
    case Op::kLmw:
      for (u32 g = insn.rt; g < kNumGprs; ++g) w(g);
      break;
    case Op::kMtspr:
      w(spr_slot(insn.spr));
      break;
    case Op::kMtmsr:
      w(kSlotMsr);
      break;
    case Op::kMtcrf:
      w(kSlotCr);  // whole-CR move, unlike the field-wise merges
      break;
    default:
      break;
  }
}

isa::CpuSnapshot RiscfCpu::snapshot() const {
  isa::CpuSnapshot snap;
  snap.cycles = cycles_;
  snap.words.reserve(kNumGprs + 16 + spr_storage_.size());
  for (u32 i = 0; i < kNumGprs; ++i) snap.words.push_back(regs_.gpr[i]);
  snap.words.push_back(regs_.pc);
  snap.words.push_back(regs_.lr);
  snap.words.push_back(regs_.ctr);
  snap.words.push_back(regs_.cr);
  snap.words.push_back(regs_.xer);
  snap.words.push_back(regs_.msr);
  snap.words.push_back(regs_.srr0);
  snap.words.push_back(regs_.srr1);
  snap.words.push_back(regs_.dsisr);
  snap.words.push_back(regs_.dar);
  snap.words.push_back(regs_.dec);
  snap.words.push_back(regs_.sdr1);
  for (int i = 0; i < 4; ++i) snap.words.push_back(regs_.sprg[i]);
  snap.words.push_back(regs_.hid0);
  snap.words.push_back(regs_.hid1);
  for (const auto& [spr, value] : spr_storage_) snap.words.push_back(value);
  return snap;
}

void RiscfCpu::restore(const isa::CpuSnapshot& snap) {
  KFI_CHECK(snap.words.size() == kNumGprs + 18 + spr_storage_.size(),
            "riscf snapshot size mismatch");
  size_t i = 0;
  for (u32 g = 0; g < kNumGprs; ++g) regs_.gpr[g] = snap.words[i++];
  regs_.pc = snap.words[i++];
  regs_.lr = snap.words[i++];
  regs_.ctr = snap.words[i++];
  regs_.cr = snap.words[i++];
  regs_.xer = snap.words[i++];
  regs_.msr = snap.words[i++];
  regs_.srr0 = snap.words[i++];
  regs_.srr1 = snap.words[i++];
  regs_.dsisr = snap.words[i++];
  regs_.dar = snap.words[i++];
  regs_.dec = snap.words[i++];
  regs_.sdr1 = snap.words[i++];
  for (int s = 0; s < 4; ++s) regs_.sprg[s] = snap.words[i++];
  regs_.hid0 = snap.words[i++];
  regs_.hid1 = snap.words[i++];
  for (auto& [spr, value] : spr_storage_) value = snap.words[i++];
  cycles_ = snap.cycles;
  debug_.clear_all();
}

}  // namespace kfi::riscf
