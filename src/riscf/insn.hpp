// Decoded-instruction representation for the riscf (G4-like) processor.
//
// Every instruction is exactly 32 bits.  A single-bit error therefore stays
// confined to one instruction — it can change the opcode (often landing in
// the large reserved regions of the primary/extended opcode space, hence
// the G4's high Illegal Instruction rate), a register number, or an
// immediate, but it can never re-align the instruction stream the way the
// cisca decoder can (Figures 14 vs. 15 of the paper).
#pragma once

#include <string>

#include "common/types.hpp"
#include "isa/opclass.hpp"

namespace kfi::riscf {

enum class Op : u8 {
  kInvalid = 0,
  // D-form arithmetic/logical with immediate.
  kAddi, kAddis, kAddic, kMulli,
  kCmpwi, kCmplwi,
  kOri, kOris, kXori, kAndiRec,
  kRlwinm,
  // D-form loads/stores.
  kLwz, kLwzu, kLbz, kLhz, kLha, kStw, kStwu, kStb, kSth,
  // Branches.
  kB, kBc, kBclr, kBcctr,
  kSc,
  // X-form register-register.
  kAdd, kSubf, kNeg, kMullw, kDivw, kDivwu,
  kAnd, kOr, kXor, kNor, kCntlzw,
  kSlw, kSrw, kSraw, kSrawi,
  kCmp, kCmpl,
  // Moves to/from special registers.
  kMfspr, kMtspr, kMfmsr, kMtmsr, kMfcr,
  // X-form loads/stores.
  kLwzx, kStwx, kLbzx, kStbx, kLhzx, kLhax, kSthx,
  // Traps and barriers.
  kTw, kTwi, kSync, kIsync, kDcbf, kIcbi,
  // Realistic-density additions: load/store with update, multiples, FP
  // loads/stores (FP register file not modeled; memory side effects are),
  // FP/vector arithmetic (timing no-ops), CR logicals, cache-block ops.
  kLbzu, kLhzu, kLhau, kStbu, kSthu,
  kLmw, kStmw,
  kLfs, kLfsu, kLfd, kLfdu, kStfs, kStfsu, kStfd, kStfdu,
  kFpArith, kVecArith,
  kSubfic, kAddicRec, kXoris, kAndisRec, kRlwimi, kRlwnm,
  kAndc, kOrc, kNand, kEqv, kExtsb, kExtsh, kMulhw, kMulhwu,
  kLwarx, kStwcx, kDcbz, kDcbt, kMftb, kMtcrf, kCrLogical, kMcrf,
};

struct Insn {
  Op op = Op::kInvalid;
  u32 raw = 0;
  u8 rt = 0;   // target/source register (rS for stores)
  u8 ra = 0;
  u8 rb = 0;
  i32 simm = 0;   // sign-extended D field
  u32 uimm = 0;   // zero-extended D field
  u8 crfd = 0;    // condition field for cmp*
  u8 bo = 0, bi = 0;
  i32 bd = 0;     // branch displacement (bytes, sign-extended)
  i32 li = 0;     // I-form displacement (bytes)
  bool aa = false, lk = false, rc = false;
  u32 spr = 0;
  u8 sh = 0, mb = 0, me = 0;  // rlwinm fields
  u8 to = 0;                  // tw condition field

  std::string to_string() const;
};

/// Decode one 32-bit instruction word.  Reserved encodings give kInvalid.
Insn decode(u32 word);

/// Functional-unit class of an opcode (ALU / load-store / branch /
/// system); FP and vector arithmetic count as kAlu, cache management and
/// SPR/MSR/CR traffic as kSystem.
isa::OpClass opclass(Op op);

}  // namespace kfi::riscf
