#include "riscf/insn.hpp"

#include <cstdio>
#include <sstream>

namespace kfi::riscf {

namespace {

const char* mnemonic(const Insn& insn) {
  switch (insn.op) {
    case Op::kAddi: return "addi";
    case Op::kAddis: return "addis";
    case Op::kAddic: return "addic";
    case Op::kMulli: return "mulli";
    case Op::kCmpwi: return "cmpwi";
    case Op::kCmplwi: return "cmplwi";
    case Op::kOri: return "ori";
    case Op::kOris: return "oris";
    case Op::kXori: return "xori";
    case Op::kAndiRec: return "andi.";
    case Op::kRlwinm: return insn.rc ? "rlwinm." : "rlwinm";
    case Op::kLwz: return "lwz";
    case Op::kLwzu: return "lwzu";
    case Op::kLbz: return "lbz";
    case Op::kLhz: return "lhz";
    case Op::kLha: return "lha";
    case Op::kStw: return "stw";
    case Op::kStwu: return "stwu";
    case Op::kStb: return "stb";
    case Op::kSth: return "sth";
    case Op::kB: return insn.lk ? "bl" : "b";
    case Op::kBc: return "bc";
    case Op::kBclr: return insn.lk ? "bclrl" : "bclr";
    case Op::kBcctr: return insn.lk ? "bctrl" : "bctr";
    case Op::kSc: return "sc";
    case Op::kAdd: return insn.rc ? "add." : "add";
    case Op::kSubf: return insn.rc ? "subf." : "subf";
    case Op::kNeg: return "neg";
    case Op::kMullw: return insn.rc ? "mullw." : "mullw";
    case Op::kDivw: return "divw";
    case Op::kDivwu: return "divwu";
    case Op::kAnd: return insn.rc ? "and." : "and";
    case Op::kOr: return insn.rc ? "or." : "or";
    case Op::kXor: return insn.rc ? "xor." : "xor";
    case Op::kNor: return "nor";
    case Op::kCntlzw: return "cntlzw";
    case Op::kSlw: return "slw";
    case Op::kSrw: return "srw";
    case Op::kSraw: return "sraw";
    case Op::kSrawi: return "srawi";
    case Op::kCmp: return "cmpw";
    case Op::kCmpl: return "cmplw";
    case Op::kMfspr: return "mfspr";
    case Op::kMtspr: return "mtspr";
    case Op::kMfmsr: return "mfmsr";
    case Op::kMtmsr: return "mtmsr";
    case Op::kMfcr: return "mfcr";
    case Op::kLwzx: return "lwzx";
    case Op::kStwx: return "stwx";
    case Op::kLbzx: return "lbzx";
    case Op::kStbx: return "stbx";
    case Op::kLhzx: return "lhzx";
    case Op::kLhax: return "lhax";
    case Op::kSthx: return "sthx";
    case Op::kTw: return "tw";
    case Op::kSync: return "sync";
    case Op::kIsync: return "isync";
    case Op::kDcbf: return "dcbf";
    case Op::kIcbi: return "icbi";
    case Op::kTwi: return "twi";
    case Op::kLbzu: return "lbzu";
    case Op::kLhzu: return "lhzu";
    case Op::kLhau: return "lhau";
    case Op::kStbu: return "stbu";
    case Op::kSthu: return "sthu";
    case Op::kLmw: return "lmw";
    case Op::kStmw: return "stmw";
    case Op::kLfs: return "lfs";
    case Op::kLfsu: return "lfsu";
    case Op::kLfd: return "lfd";
    case Op::kLfdu: return "lfdu";
    case Op::kStfs: return "stfs";
    case Op::kStfsu: return "stfsu";
    case Op::kStfd: return "stfd";
    case Op::kStfdu: return "stfdu";
    case Op::kFpArith: return "fp-arith";
    case Op::kVecArith: return "vec-arith";
    case Op::kSubfic: return "subfic";
    case Op::kAddicRec: return "addic.";
    case Op::kXoris: return "xoris";
    case Op::kAndisRec: return "andis.";
    case Op::kRlwimi: return "rlwimi";
    case Op::kRlwnm: return "rlwnm";
    case Op::kAndc: return "andc";
    case Op::kOrc: return "orc";
    case Op::kNand: return "nand";
    case Op::kEqv: return "eqv";
    case Op::kExtsb: return "extsb";
    case Op::kExtsh: return "extsh";
    case Op::kMulhw: return "mulhw";
    case Op::kMulhwu: return "mulhwu";
    case Op::kLwarx: return "lwarx";
    case Op::kStwcx: return "stwcx.";
    case Op::kDcbz: return "dcbz";
    case Op::kDcbt: return "dcbt";
    case Op::kMftb: return "mftb";
    case Op::kMtcrf: return "mtcrf";
    case Op::kCrLogical: return "cr-logical";
    case Op::kMcrf: return "mcrf";
    case Op::kInvalid: return "(illegal)";
  }
  return "?";
}

}  // namespace

std::string Insn::to_string() const {
  std::ostringstream os;
  os << mnemonic(*this);
  char buf[64];
  switch (op) {
    case Op::kAddi: case Op::kAddis: case Op::kAddic: case Op::kMulli:
      std::snprintf(buf, sizeof(buf), " r%u,r%u,%d", rt, ra, simm);
      os << buf;
      break;
    case Op::kCmpwi:
      std::snprintf(buf, sizeof(buf), " r%u,%d", ra, simm);
      os << buf;
      break;
    case Op::kCmplwi:
      std::snprintf(buf, sizeof(buf), " r%u,%u", ra, uimm);
      os << buf;
      break;
    case Op::kOri: case Op::kOris: case Op::kXori: case Op::kAndiRec:
      std::snprintf(buf, sizeof(buf), " r%u,r%u,%u", ra, rt, uimm);
      os << buf;
      break;
    case Op::kRlwinm:
      std::snprintf(buf, sizeof(buf), " r%u,r%u,%u,%u,%u", ra, rt, sh, mb, me);
      os << buf;
      break;
    case Op::kLwz: case Op::kLwzu: case Op::kLbz: case Op::kLhz:
    case Op::kLha: case Op::kStw: case Op::kStwu: case Op::kStb:
    case Op::kSth: case Op::kLbzu: case Op::kLhzu: case Op::kLhau:
    case Op::kStbu: case Op::kSthu: case Op::kLmw: case Op::kStmw:
    case Op::kLfs: case Op::kLfsu: case Op::kLfd: case Op::kLfdu:
    case Op::kStfs: case Op::kStfsu: case Op::kStfd: case Op::kStfdu:
      std::snprintf(buf, sizeof(buf), " r%u,%d(r%u)", rt, simm, ra);
      os << buf;
      break;
    case Op::kB:
      std::snprintf(buf, sizeof(buf), " %+d", li);
      os << buf;
      break;
    case Op::kBc:
      std::snprintf(buf, sizeof(buf), " %u,%u,%+d", bo, bi, bd);
      os << buf;
      break;
    case Op::kAdd: case Op::kSubf: case Op::kMullw: case Op::kDivw:
    case Op::kDivwu:
      std::snprintf(buf, sizeof(buf), " r%u,r%u,r%u", rt, ra, rb);
      os << buf;
      break;
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
    case Op::kSlw: case Op::kSrw: case Op::kSraw:
      std::snprintf(buf, sizeof(buf), " r%u,r%u,r%u", ra, rt, rb);
      os << buf;
      break;
    case Op::kSrawi:
      std::snprintf(buf, sizeof(buf), " r%u,r%u,%u", ra, rt, sh);
      os << buf;
      break;
    case Op::kNeg: case Op::kCntlzw:
      std::snprintf(buf, sizeof(buf), " r%u,r%u", rt, ra);
      os << buf;
      break;
    case Op::kCmp: case Op::kCmpl:
      std::snprintf(buf, sizeof(buf), " r%u,r%u", ra, rb);
      os << buf;
      break;
    case Op::kMfspr:
      if (spr == 8) {
        std::snprintf(buf, sizeof(buf), " r%u (mflr)", rt);
      } else {
        std::snprintf(buf, sizeof(buf), " r%u,%u", rt, spr);
      }
      os << buf;
      break;
    case Op::kMtspr:
      if (spr == 8) {
        std::snprintf(buf, sizeof(buf), " r%u (mtlr)", rt);
      } else {
        std::snprintf(buf, sizeof(buf), " %u,r%u", spr, rt);
      }
      os << buf;
      break;
    case Op::kMfmsr: case Op::kMfcr:
      std::snprintf(buf, sizeof(buf), " r%u", rt);
      os << buf;
      break;
    case Op::kMtmsr:
      std::snprintf(buf, sizeof(buf), " r%u", rt);
      os << buf;
      break;
    case Op::kLwzx: case Op::kStwx: case Op::kLbzx: case Op::kStbx:
    case Op::kLhzx: case Op::kLhax: case Op::kSthx:
      std::snprintf(buf, sizeof(buf), " r%u,r%u,r%u", rt, ra, rb);
      os << buf;
      break;
    case Op::kTw:
      std::snprintf(buf, sizeof(buf), " %u,r%u,r%u", to, ra, rb);
      os << buf;
      break;
    default:
      break;
  }
  return os.str();
}

isa::OpClass opclass(Op op) {
  switch (op) {
    // Integer, FP and vector arithmetic/logical, compares, CR logicals.
    case Op::kAddi: case Op::kAddis: case Op::kAddic: case Op::kMulli:
    case Op::kCmpwi: case Op::kCmplwi:
    case Op::kOri: case Op::kOris: case Op::kXori: case Op::kAndiRec:
    case Op::kRlwinm: case Op::kRlwimi: case Op::kRlwnm:
    case Op::kAdd: case Op::kSubf: case Op::kNeg: case Op::kMullw:
    case Op::kDivw: case Op::kDivwu:
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
    case Op::kCntlzw:
    case Op::kSlw: case Op::kSrw: case Op::kSraw: case Op::kSrawi:
    case Op::kCmp: case Op::kCmpl:
    case Op::kSubfic: case Op::kAddicRec: case Op::kXoris:
    case Op::kAndisRec:
    case Op::kAndc: case Op::kOrc: case Op::kNand: case Op::kEqv:
    case Op::kExtsb: case Op::kExtsh: case Op::kMulhw: case Op::kMulhwu:
    case Op::kFpArith: case Op::kVecArith: case Op::kCrLogical:
      return isa::OpClass::kAlu;
    case Op::kLwz: case Op::kLwzu: case Op::kLbz: case Op::kLhz:
    case Op::kLha: case Op::kStw: case Op::kStwu: case Op::kStb:
    case Op::kSth:
    case Op::kLwzx: case Op::kStwx: case Op::kLbzx: case Op::kStbx:
    case Op::kLhzx: case Op::kLhax: case Op::kSthx:
    case Op::kLbzu: case Op::kLhzu: case Op::kLhau: case Op::kStbu:
    case Op::kSthu:
    case Op::kLmw: case Op::kStmw:
    case Op::kLfs: case Op::kLfsu: case Op::kLfd: case Op::kLfdu:
    case Op::kStfs: case Op::kStfsu: case Op::kStfd: case Op::kStfdu:
    case Op::kLwarx: case Op::kStwcx:
      return isa::OpClass::kLoadStore;
    case Op::kB: case Op::kBc: case Op::kBclr: case Op::kBcctr:
      return isa::OpClass::kBranch;
    // Privileged state, traps, barriers, cache management.
    case Op::kSc: case Op::kTw: case Op::kTwi:
    case Op::kMfspr: case Op::kMtspr: case Op::kMfmsr: case Op::kMtmsr:
    case Op::kMfcr: case Op::kMtcrf: case Op::kMcrf: case Op::kMftb:
    case Op::kSync: case Op::kIsync:
    case Op::kDcbf: case Op::kIcbi: case Op::kDcbz: case Op::kDcbt:
      return isa::OpClass::kSystem;
    case Op::kInvalid:
      return isa::OpClass::kOther;
  }
  return isa::OpClass::kOther;
}

}  // namespace kfi::riscf
