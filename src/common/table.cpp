#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace kfi {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "| " << cell << std::string(widths[c] - cell.size(), ' ') << " ";
    }
    os << "|\n";
  };

  emit_row(header_);
  for (size_t c = 0; c < widths.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string format_count_percent(unsigned long long count, double fraction) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%llu (%.1f%%)", count, fraction * 100.0);
  return buf;
}

}  // namespace kfi
