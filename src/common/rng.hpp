// Deterministic random number generation.
//
// Every random decision in kfisim — injection target selection, bit
// positions, workload jitter, datagram loss on the simulated crash-data
// channel — is drawn from an explicitly seeded Rng, so any campaign
// (CampaignSpec includes its seed) is bit-for-bit reproducible.  The
// generator is xoshiro256**, seeded through splitmix64 per its authors'
// recommendation.
#pragma once

#include <array>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace kfi {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
u64 splitmix64(u64& state);

/// xoshiro256** generator with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(u64 seed);

  /// Uniform 64-bit value.
  u64 next_u64();

  /// Uniform 32-bit value.
  u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform integer in [0, bound). bound must be > 0.
  u64 below(u64 bound);

  /// Uniform integer in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi);

  /// True with probability p (p in [0,1]).
  bool chance(double p);

  /// Uniform double in [0,1).
  double next_double();

  /// Uniform bit index within a word of `bits` bits (e.g. 32).
  u32 bit_index(u32 bits) { return static_cast<u32>(below(bits)); }

  /// Poisson-distributed count with the given mean (Knuth's
  /// product-of-uniforms method; draw count varies with the result, which
  /// is fine because every consumer pre-draws schedules at plan time).
  u32 poisson(double mean);

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    KFI_CHECK(!v.empty(), "Rng::pick from empty vector");
    return v[static_cast<size_t>(below(v.size()))];
  }

  /// Derive an independent child generator (stable given call order).
  Rng split();

  /// Raw state capture/restore (for snapshot/reboot semantics).
  std::array<u64, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<u64, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  u64 s_[4];
};

}  // namespace kfi
