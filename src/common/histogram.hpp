// Bucketed histograms used for the crash-latency (cycles-to-crash)
// distributions of Figure 16 and for general result summaries.
//
// The paper reports latency in fixed buckets: <=3k, <=10k, <=100k, <=1M,
// <=10M, <=100M, <=1G, >1G CPU cycles.  LatencyBuckets reproduces exactly
// those edges so bench output lines up with the figure series.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace kfi {

/// Histogram over explicit upper-edge buckets plus an overflow bucket.
class BucketHistogram {
 public:
  /// `upper_edges` must be strictly increasing; a sample s falls in the
  /// first bucket with s <= edge, or in the overflow bucket.
  explicit BucketHistogram(std::vector<u64> upper_edges);

  void add(u64 sample);

  /// Number of buckets including the final overflow bucket.
  size_t bucket_count() const { return counts_.size(); }
  u64 count(size_t bucket) const;
  u64 total() const { return total_; }

  /// Fraction of samples in a bucket (0 if histogram empty).
  double fraction(size_t bucket) const;

  /// Human-readable label, e.g. "<=10k" or ">1G".
  std::string label(size_t bucket) const;

  /// All fractions, in bucket order.
  std::vector<double> fractions() const;

  void merge(const BucketHistogram& other);

 private:
  std::vector<u64> edges_;
  std::vector<u64> counts_;  // edges_.size() + 1 entries
  u64 total_ = 0;
};

/// The paper's Figure 16 cycles-to-crash buckets.
BucketHistogram make_latency_histogram();

/// Labels for the Figure 16 buckets, in order.
const std::vector<std::string>& latency_bucket_labels();

}  // namespace kfi
