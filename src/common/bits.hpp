// Bit manipulation helpers shared by the encoders, decoders, and the fault
// injectors.  The paper's error model is a single-bit flip in a data word,
// instruction, or register (Section 3.5); flip_bit is the primitive every
// injector uses.
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"

namespace kfi {

/// Flip bit `bit` (0 = LSB) of a value.
template <typename T>
constexpr T flip_bit(T value, u32 bit) {
  return static_cast<T>(value ^ (T{1} << bit));
}

/// Extract bits [lo, lo+len) of a 32-bit word (lo counted from LSB).
constexpr u32 bits32(u32 value, u32 lo, u32 len) {
  return (value >> lo) & ((len >= 32) ? 0xFFFFFFFFu : ((1u << len) - 1u));
}

/// Insert `field` into bits [lo, lo+len) of `value`.
constexpr u32 set_bits32(u32 value, u32 lo, u32 len, u32 field) {
  const u32 mask = ((len >= 32) ? 0xFFFFFFFFu : ((1u << len) - 1u)) << lo;
  return (value & ~mask) | ((field << lo) & mask);
}

/// Test bit `bit` of a value.
template <typename T>
constexpr bool test_bit(T value, u32 bit) {
  return ((value >> bit) & T{1}) != 0;
}

/// Sign-extend the low `bits` bits of `value` to 32 bits.
constexpr i32 sign_extend32(u32 value, u32 bits) {
  const u32 shift = 32 - bits;
  return static_cast<i32>(value << shift) >> shift;
}

/// Population count.
constexpr u32 popcount32(u32 v) {
  u32 c = 0;
  while (v) {
    v &= v - 1;
    ++c;
  }
  return c;
}

}  // namespace kfi
