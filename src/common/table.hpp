// Minimal ASCII table renderer used by the analysis/report layer to print
// the reproduction of the paper's tables (Tables 5 and 6) and figure data
// series in a shape directly comparable with the published numbers.
#pragma once

#include <string>
#include <vector>

namespace kfi {

/// Column-aligned ASCII table.  Rows may have fewer cells than the header;
/// missing cells render empty.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a separator line under the header.
  std::string render() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used throughout report printing.
std::string format_percent(double fraction, int decimals = 1);
std::string format_count_percent(unsigned long long count, double fraction);

}  // namespace kfi
