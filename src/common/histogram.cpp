#include "common/histogram.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace kfi {

namespace {

std::string human_edge(u64 edge) {
  if (edge >= 1000000000ULL && edge % 1000000000ULL == 0)
    return std::to_string(edge / 1000000000ULL) + "G";
  if (edge >= 1000000ULL && edge % 1000000ULL == 0)
    return std::to_string(edge / 1000000ULL) + "M";
  if (edge >= 1000ULL && edge % 1000ULL == 0)
    return std::to_string(edge / 1000ULL) + "k";
  return std::to_string(edge);
}

}  // namespace

BucketHistogram::BucketHistogram(std::vector<u64> upper_edges)
    : edges_(std::move(upper_edges)) {
  KFI_CHECK(!edges_.empty(), "histogram needs at least one edge");
  KFI_CHECK(std::is_sorted(edges_.begin(), edges_.end()) &&
                std::adjacent_find(edges_.begin(), edges_.end()) == edges_.end(),
            "histogram edges must be strictly increasing");
  counts_.assign(edges_.size() + 1, 0);
}

void BucketHistogram::add(u64 sample) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), sample);
  counts_[static_cast<size_t>(it - edges_.begin())] += 1;
  ++total_;
}

u64 BucketHistogram::count(size_t bucket) const {
  KFI_CHECK(bucket < counts_.size(), "bucket out of range");
  return counts_[bucket];
}

double BucketHistogram::fraction(size_t bucket) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bucket)) / static_cast<double>(total_);
}

std::string BucketHistogram::label(size_t bucket) const {
  KFI_CHECK(bucket < counts_.size(), "bucket out of range");
  if (bucket == edges_.size()) return ">" + human_edge(edges_.back());
  return "<=" + human_edge(edges_[bucket]);
}

std::vector<double> BucketHistogram::fractions() const {
  std::vector<double> out(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) out[i] = fraction(i);
  return out;
}

void BucketHistogram::merge(const BucketHistogram& other) {
  KFI_CHECK(edges_ == other.edges_, "merging histograms with different edges");
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

BucketHistogram make_latency_histogram() {
  return BucketHistogram({3000ULL, 10000ULL, 100000ULL, 1000000ULL,
                          10000000ULL, 100000000ULL, 1000000000ULL});
}

const std::vector<std::string>& latency_bucket_labels() {
  static const std::vector<std::string> kLabels = [] {
    const BucketHistogram h = make_latency_histogram();
    std::vector<std::string> labels;
    for (size_t i = 0; i < h.bucket_count(); ++i) labels.push_back(h.label(i));
    return labels;
  }();
  return kLabels;
}

}  // namespace kfi
