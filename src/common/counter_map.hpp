// Ordered string-keyed counters used for outcome and crash-cause tallies.
// Keys keep first-insertion order so report output is stable run to run.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace kfi {

class CounterMap {
 public:
  void add(const std::string& key, u64 delta = 1);

  u64 get(const std::string& key) const;
  u64 total() const { return total_; }
  double fraction(const std::string& key) const;

  /// Keys in first-insertion order.
  const std::vector<std::string>& keys() const { return order_; }

  void merge(const CounterMap& other);
  bool empty() const { return total_ == 0; }

 private:
  std::unordered_map<std::string, u64> counts_;
  std::vector<std::string> order_;
  u64 total_ = 0;
};

}  // namespace kfi
