// Error handling used across kfisim.
//
// Simulator-internal invariant violations (bugs in *our* code, not injected
// faults) throw kfi::InternalError.  Injected faults never throw: they flow
// through each CPU's trap machinery so the injection framework can observe
// and classify them, exactly as the paper's crash handlers did.
#pragma once

#include <stdexcept>
#include <string>

namespace kfi {

/// Thrown on violation of a simulator invariant. Never used to model an
/// injected fault; those surface as architectural traps.
class InternalError : public std::runtime_error {
 public:
  explicit InternalError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void raise_internal(const char* file, int line,
                                 const std::string& message);

}  // namespace kfi

/// Check a simulator invariant; throws InternalError with location info.
#define KFI_CHECK(cond, message)                         \
  do {                                                   \
    if (!(cond)) {                                       \
      ::kfi::raise_internal(__FILE__, __LINE__, (message)); \
    }                                                    \
  } while (false)
