// Error handling used across kfisim.
//
// Simulator-internal invariant violations (bugs in *our* code, not injected
// faults) throw kfi::InternalError.  Injected faults never throw: they flow
// through each CPU's trap machinery so the injection framework can observe
// and classify them, exactly as the paper's crash handlers did.
//
// All harness-level exception types derive from kfi::Error so campaign
// supervisors can catch "anything wrong with the harness" in one clause
// while still distinguishing the typed cases (stall interrupts, journal
// corruption) they handle specially.
#pragma once

#include <stdexcept>
#include <string>

namespace kfi {

/// Base class of every kfisim-defined exception.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on violation of a simulator invariant. Never used to model an
/// injected fault; those surface as architectural traps.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Thrown out of kernel::Machine::run when the campaign supervisor's
/// wall-clock watchdog (or the per-run step budget) interrupts a wedged
/// simulation.  The machine is left mid-run; the only valid next operation
/// is a snapshot restore ("reboot").
class StallInterrupt : public Error {
 public:
  explicit StallInterrupt(const std::string& what) : Error(what) {}
};

[[noreturn]] void raise_internal(const char* file, int line,
                                 const std::string& message);

}  // namespace kfi

/// Check a simulator invariant; throws InternalError with location info.
#define KFI_CHECK(cond, message)                         \
  do {                                                   \
    if (!(cond)) {                                       \
      ::kfi::raise_internal(__FILE__, __LINE__, (message)); \
    }                                                    \
  } while (false)
