#include "common/rng.hpp"

#include <cmath>

namespace kfi {

u64 splitmix64(u64& state) {
  u64 z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(u64 seed) {
  u64 sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

u64 Rng::next_u64() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::below(u64 bound) {
  KFI_CHECK(bound > 0, "Rng::below(0)");
  // Debiased via rejection sampling on the top of the range.
  const u64 threshold = (0ULL - bound) % bound;
  for (;;) {
    const u64 r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

u64 Rng::range(u64 lo, u64 hi) {
  KFI_CHECK(lo <= hi, "Rng::range lo > hi");
  return lo + below(hi - lo + 1);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

u32 Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  KFI_CHECK(mean <= 1024.0, "Rng::poisson mean too large");
  // Knuth: count uniform draws until their product falls below e^-mean.
  // Exact and deterministic; fine for the modest rates campaigns use.
  const double limit = std::exp(-mean);
  double product = 1.0;
  u32 n = 0;
  for (;;) {
    product *= next_double();
    if (product <= limit) return n;
    ++n;
  }
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace kfi
