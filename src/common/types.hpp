// Core fixed-width aliases and the simulated machine's address type.
//
// Both simulated processors (cisca, the P4-like CISC; riscf, the G4-like
// RISC) are 32-bit machines, mirroring the Pentium 4 and PowerPC G4 targets
// of the DSN'04 study.  All simulated addresses are kfi::Addr.
#pragma once

#include <cstddef>
#include <cstdint>

namespace kfi {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// A 32-bit virtual (or physical) address on a simulated machine.
using Addr = u32;

/// CPU cycle count. Latency measurements (cycles-to-crash) use this type.
using Cycles = u64;

}  // namespace kfi
