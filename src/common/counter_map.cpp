#include "common/counter_map.hpp"

namespace kfi {

void CounterMap::add(const std::string& key, u64 delta) {
  auto [it, inserted] = counts_.try_emplace(key, 0);
  if (inserted) order_.push_back(key);
  it->second += delta;
  total_ += delta;
}

u64 CounterMap::get(const std::string& key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

double CounterMap::fraction(const std::string& key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(get(key)) / static_cast<double>(total_);
}

void CounterMap::merge(const CounterMap& other) {
  for (const auto& key : other.order_) add(key, other.get(key));
}

}  // namespace kfi
