#include "common/error.hpp"

#include <sstream>

namespace kfi {

void raise_internal(const char* file, int line, const std::string& message) {
  std::ostringstream os;
  os << file << ":" << line << ": " << message;
  throw InternalError(os.str());
}

}  // namespace kfi
