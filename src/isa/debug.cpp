#include "isa/debug.hpp"

#include "common/error.hpp"

namespace kfi::isa {

void DebugUnit::arm_insn_bp(Addr addr) { insn_bp_ = addr; }
void DebugUnit::disarm_insn_bp() { insn_bp_.reset(); }

bool DebugUnit::check_insn_bp(Addr pc) {
  if (insn_bp_ && *insn_bp_ == pc) {
    insn_bp_.reset();
    return true;
  }
  return false;
}

void DebugUnit::arm_data_bp(u32 index, Addr addr, u32 len, bool on_read,
                            bool on_write) {
  KFI_CHECK(index < kNumDataBps, "data breakpoint index out of range");
  KFI_CHECK(len > 0, "data breakpoint length must be > 0");
  data_bps_[index] = DataBp{addr, len, on_read, on_write};
}

void DebugUnit::disarm_data_bp(u32 index) {
  KFI_CHECK(index < kNumDataBps, "data breakpoint index out of range");
  data_bps_[index].reset();
}

bool DebugUnit::data_bp_armed(u32 index) const {
  KFI_CHECK(index < kNumDataBps, "data breakpoint index out of range");
  return data_bps_[index].has_value();
}

void DebugUnit::record_access(Addr addr, u32 len, bool is_write,
                              StepResult& result) {
  for (u32 i = 0; i < kNumDataBps; ++i) {
    if (!data_bps_[i]) continue;
    const DataBp& bp = *data_bps_[i];
    const bool overlap = addr < bp.addr + bp.len && bp.addr < addr + len;
    if (!overlap) continue;
    if ((is_write && bp.on_write) || (!is_write && bp.on_read)) {
      result.add_data_hit(DataBpHit{static_cast<u8>(i), addr, is_write});
    }
  }
}

void DebugUnit::clear_all() {
  insn_bp_.reset();
  for (auto& bp : data_bps_) bp.reset();
}

}  // namespace kfi::isa
