#include "isa/sysreg.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace kfi::isa {

void SystemRegisterBank::flip_bit(u32 index, u32 bit) {
  KFI_CHECK(index < count(), "system register index out of range");
  KFI_CHECK(bit < info(index).bits, "system register bit out of range");
  write(index, kfi::flip_bit(read(index), bit));
}

u32 SystemRegisterBank::index_of(const std::string& name) const {
  for (u32 i = 0; i < count(); ++i) {
    if (info(i).name == name) return i;
  }
  KFI_CHECK(false, "no system register named " + name);
  return 0;
}

}  // namespace kfi::isa
