// Simulated debug registers.
//
// The paper's injector (Section 3.3) drives everything through the CPUs'
// debugging features: one Debug Address Register holds an instruction
// breakpoint for code injections (reported *before* the instruction
// executes), and data memory breakpoints trap reads/writes for stack and
// data injections (reported *after* the access).  DebugUnit models exactly
// that contract for both simulated CPUs.
#pragma once

#include <array>
#include <optional>

#include "common/types.hpp"
#include "isa/trap.hpp"

namespace kfi::isa {

class DebugUnit {
 public:
  static constexpr u32 kNumDataBps = 2;

  /// Arm the (single) instruction breakpoint.  It fires once when fetch
  /// reaches `addr`, before the instruction executes, then disarms —
  /// matching the paper's inject-on-first-reach usage.
  void arm_insn_bp(Addr addr);
  void disarm_insn_bp();
  bool insn_bp_armed() const { return insn_bp_.has_value(); }

  /// Returns true exactly once when pc matches the armed breakpoint.
  bool check_insn_bp(Addr pc);

  /// Arm data breakpoint `index` covering [addr, addr+len).
  void arm_data_bp(u32 index, Addr addr, u32 len, bool on_read, bool on_write);
  void disarm_data_bp(u32 index);
  bool data_bp_armed(u32 index) const;

  /// True when any data breakpoint is armed.  Inline so the CPU models'
  /// memory fast paths can skip the out-of-line record_access call (a
  /// no-op with nothing armed) in ordinary execution.
  bool data_bp_any() const {
    for (const auto& bp : data_bps_) {
      if (bp.has_value()) return true;
    }
    return false;
  }

  /// Called by CPU models after every completed data access.
  void record_access(Addr addr, u32 len, bool is_write, StepResult& result);

  void clear_all();

 private:
  struct DataBp {
    Addr addr = 0;
    u32 len = 0;
    bool on_read = false;
    bool on_write = false;
  };

  std::optional<Addr> insn_bp_;
  std::array<std::optional<DataBp>, kNumDataBps> data_bps_{};
};

}  // namespace kfi::isa
