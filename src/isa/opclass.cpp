#include "isa/opclass.hpp"

namespace kfi::isa {

std::string opclass_name(OpClass cls) {
  switch (cls) {
    case OpClass::kAlu: return "alu";
    case OpClass::kLoadStore: return "loadstore";
    case OpClass::kBranch: return "branch";
    case OpClass::kSystem: return "system";
    case OpClass::kOther: return "other";
    case OpClass::kNumClasses: break;
  }
  return "unknown";
}

std::optional<OpClass> parse_opclass(const std::string& name) {
  if (name == "alu") return OpClass::kAlu;
  if (name == "loadstore" || name == "load-store" || name == "load_store") {
    return OpClass::kLoadStore;
  }
  if (name == "branch") return OpClass::kBranch;
  if (name == "system") return OpClass::kSystem;
  if (name == "other") return OpClass::kOther;
  return std::nullopt;
}

}  // namespace kfi::isa
