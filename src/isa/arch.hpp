// Target architecture tags, named after the machines they stand in for.
#pragma once

#include <string>

namespace kfi::isa {

enum class Arch {
  kCisca,  // the P4-like variable-length CISC machine
  kRiscf,  // the G4-like fixed-width RISC machine
};

inline std::string arch_name(Arch arch) {
  return arch == Arch::kCisca ? "cisca(P4)" : "riscf(G4)";
}

}  // namespace kfi::isa
