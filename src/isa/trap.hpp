// Architectural trap descriptions.
//
// Each simulated CPU reports traps with its own cause namespace (cisca's
// page fault / #GP / #UD / #TS / #DE / #BR versus riscf's DSI / program /
// alignment / machine check).  The kernel runtime and the outcome
// classifier map these onto the paper's crash-cause categories (Tables 3
// and 4).
#pragma once

#include <string>

#include "common/types.hpp"

namespace kfi::isa {

/// Raw architectural trap as raised by a CPU model.  `cause` is an
/// arch-specific enum value (cisca::Cause or riscf::Cause) cast to u32.
struct Trap {
  u32 cause = 0;
  Addr pc = 0;        // address of the faulting instruction
  Addr addr = 0;      // faulting data/target address when has_addr
  bool has_addr = false;
  u32 aux = 0;        // arch-specific detail (e.g. selector, opcode bits)
};

enum class StepStatus : u8 {
  kOk,       // instruction retired normally
  kTrap,     // instruction raised an architectural trap
  kHalted,   // CPU executed its halt/idle instruction
  kInsnBp,   // instruction breakpoint fired; instruction NOT executed
};

/// A data breakpoint report.  Real debug hardware (and the paper's
/// injector) reports data breakpoints *after* the access completes.
struct DataBpHit {
  u8 bp_index = 0;
  Addr addr = 0;
  bool is_write = false;
};

struct StepResult {
  StepStatus status = StepStatus::kOk;
  Trap trap{};  // valid when status == kTrap
  u8 num_data_hits = 0;
  DataBpHit data_hits[2]{};

  void add_data_hit(const DataBpHit& hit) {
    if (num_data_hits < 2) data_hits[num_data_hits++] = hit;
  }
};

}  // namespace kfi::isa
