// Uniform view over a CPU's *system* registers for register-injection
// campaigns.
//
// The paper targets only system registers (Section 5.2): on the P4 the
// system flags, control registers, debug registers, stack pointer, FS/GS
// segment registers and memory-management registers; on the G4 the 99
// supervisor-model registers (memory management, configuration,
// performance monitor, exception handling, cache/memory subsystem).  Each
// CPU model publishes its bank through this interface so the injector can
// enumerate, read, and bit-flip them without knowing the architecture.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace kfi::isa {

struct SysRegInfo {
  std::string name;
  u32 bits = 32;  // architectural width
};

class SystemRegisterBank {
 public:
  virtual ~SystemRegisterBank() = default;

  virtual u32 count() const = 0;
  virtual const SysRegInfo& info(u32 index) const = 0;
  virtual u32 read(u32 index) const = 0;
  virtual void write(u32 index, u32 value) = 0;

  /// Flip one bit of register `index` (bit < info(index).bits).
  void flip_bit(u32 index, u32 bit);

  /// Index of the register with the given name; throws if absent.
  u32 index_of(const std::string& name) const;
};

}  // namespace kfi::isa
