// Architecture-neutral CPU interface.
//
// The injection framework (src/inject) drives both simulated processors
// through this interface: step one instruction, observe traps and
// breakpoint hits, read the cycle counter (the paper's cycles-to-crash
// instrument), snapshot/restore register state (the "reboot" fast path),
// and reach the system-register bank for register campaigns.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "isa/debug.hpp"
#include "isa/sysreg.hpp"
#include "isa/trap.hpp"
#include "trace/sink.hpp"

namespace kfi::isa {

/// Opaque register-state snapshot; produced and consumed by the same CPU.
struct CpuSnapshot {
  std::vector<u32> words;
  u64 cycles = 0;
};

/// Counters for the per-CPU predecoded-instruction cache.
struct DecodeCacheStats {
  u64 hits = 0;
  u64 misses = 0;
  /// Tag matched but a page write-version moved: a store / injected flip /
  /// reboot rewrote cached code and the entry was re-decoded.
  u64 invalidations = 0;

  double hit_rate() const {
    const u64 total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Bounds one superblock dispatch so multi-instruction execution can never
/// overshoot an event the machine loop would have delivered between single
/// steps (stop_cycles, timer delivery, rate-mode firing cycles, harness
/// step budgets).
struct BlockLimits {
  /// Stop BEFORE executing an instruction once cycles() >= cycle_bound
  /// (0 = unbounded).  The machine loop re-checks its cycle-driven events
  /// at exactly the same cycle count the single-step loop would have.
  u64 cycle_bound = 0;
  /// Execute at most this many instructions (0 = unbounded); the harness
  /// step budget divides exactly into block dispatches.
  u64 max_insns = 0;
};

/// Counters for the per-CPU superblock (multi-instruction trace) cache.
struct SuperblockStats {
  u64 hits = 0;
  u64 misses = 0;
  /// Tag matched but the page write-version moved: a store / injected
  /// flip / reboot rewrote cached code and the block was rebuilt.
  u64 invalidations = 0;
  /// Block dispatches (hit or freshly built) and instructions retired
  /// through them; their ratio is the mean block length.
  u64 dispatches = 0;
  u64 block_insns = 0;

  double hit_rate() const {
    const u64 total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
  double mean_block_len() const {
    return dispatches == 0 ? 0.0 : static_cast<double>(block_insns) /
                                       static_cast<double>(dispatches);
  }
};

class CpuCore {
 public:
  virtual ~CpuCore() = default;

  /// Execute (at most) one instruction.  If an instruction breakpoint is
  /// armed at the current pc, returns kInsnBp without executing.
  virtual StepResult step() = 0;

  virtual Addr pc() const = 0;
  virtual void set_pc(Addr pc) = 0;

  /// Retired-cycle counter (performance register analogue).
  virtual Cycles cycles() const = 0;
  /// Charge extra cycles (used by the kernel runtime to model the hardware
  /// and software exception-handling stages of Figure 3).
  virtual void add_cycles(Cycles n) = 0;

  virtual DebugUnit& debug() = 0;

  virtual SystemRegisterBank& sysregs() = 0;

  /// Current stack pointer (ESP / r1), used by the stack injector to find
  /// the live stack of the targeted kernel process.
  virtual Addr stack_pointer() const = 0;

  virtual CpuSnapshot snapshot() const = 0;
  virtual void restore(const CpuSnapshot& snap) = 0;

  /// Attach (nullptr detaches) an observational error-propagation trace
  /// sink.  Hook sites are guarded null checks, so execution — cycle
  /// counts, memory traffic, RNG draws — is bit-identical with or without
  /// a sink attached (the campaign fingerprint cross-checks enforce it).
  /// Default: tracing unsupported, attach is a no-op.
  virtual void set_trace_sink(trace::TraceSink* /*sink*/) {}

  /// Trace register slot backing system-register bank index `index`, or
  /// trace::kNoSlot when that bank member is not shadowed.  Lets the
  /// injector seed taint at the exact register it flipped.
  virtual trace::RegSlot sysreg_slot(u32 /*index*/) const {
    return trace::kNoSlot;
  }

  /// Predecoded-instruction cache control.  The cache is bit-exact — it
  /// only skips re-decoding bytes proven unchanged via page write
  /// versions — so toggling it must never alter execution, a property the
  /// campaign fingerprint cross-checks enforce.  Default: no cache.
  virtual void set_decode_cache_enabled(bool /*enabled*/) {}
  virtual bool decode_cache_enabled() const { return false; }
  virtual DecodeCacheStats decode_cache_stats() const { return {}; }

  /// Execute a superblock: a cached straight-line run of predecoded
  /// instructions starting at the current pc, dispatched through per-op
  /// handler pointers so fetch→decode→dispatch is paid once per block.
  /// Semantics are bit-identical to calling step() `*consumed` times: the
  /// same trap, breakpoint, and trace-hook ordering, the same cycle
  /// charges, bounded exactly by `limits`.  `*consumed` is the number of
  /// machine-loop iterations the dispatch stands for (executed
  /// instructions, plus one for a trap or breakpoint stop — exactly what
  /// a step() would have charged against a harness step budget).
  /// Default: superblocks unsupported, single step.
  virtual StepResult step_block(const BlockLimits& /*limits*/,
                                u64* consumed) {
    *consumed = 1;
    return step();
  }
  virtual void set_superblocks_enabled(bool /*enabled*/) {}
  virtual bool superblocks_enabled() const { return false; }
  virtual SuperblockStats superblock_stats() const { return {}; }
};

}  // namespace kfi::isa
