// Coarse functional-unit classification of instructions, shared by both
// ISAs.  Used by opclass-targeted fault-model campaigns (inject only
// instructions of one class) and by the per-class outcome breakdown in
// the report — the "per-unit vulnerability" axis the 2004 paper could not
// sweep.
//
// The taxonomy is deliberately coarse: integer/FP arithmetic, logic and
// condition-register updates are kAlu; anything whose primary effect is a
// memory access is kLoadStore; control transfers are kBranch; privileged
// state, traps, cache management and I/O are kSystem.  Padding and
// undecodable encodings fall into kOther.
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"

namespace kfi::isa {

enum class OpClass : u8 {
  kAlu = 0,
  kLoadStore,
  kBranch,
  kSystem,
  kOther,
  kNumClasses,
};

/// Stable lower-case name ("alu", "loadstore", "branch", "system",
/// "other") — also the accepted --opclass spelling.
std::string opclass_name(OpClass cls);

/// Parse an --opclass spelling; accepts the names above plus the
/// "load-store"/"load_store" variants.  nullopt for anything else.
std::optional<OpClass> parse_opclass(const std::string& name);

}  // namespace kfi::isa
