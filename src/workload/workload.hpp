// Workload programs: the UnixBench stand-in.
//
// In the paper, UnixBench served three purposes: it exercised the kernel so
// injected errors could activate, its profile identified the hottest kernel
// functions (the code-injection targets), and instrumented benchmark
// programs detected fail-silence violations.  These workloads do the same:
// each is a deterministic script of system calls with host-side expected
// values; any wrong return value, wrong buffer contents, or inconsistent
// kernel counter at the end is a fail-silence violation.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "kernel/abi.hpp"
#include "kernel/machine.hpp"

namespace kfi::workload {

struct SyscallRequest {
  kernel::Syscall nr;
  u32 a0 = 0, a1 = 0, a2 = 0;
};

/// A deterministic benchmark program.  Usage per run:
///   reset(seed); while (auto r = next()) { issue; if (!check(...)) fsv; }
///   if (!final_check(...)) fsv;
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Restart the script.  Must also (re)write any user-buffer inputs into
  /// the machine before the syscalls that consume them (done inside next()).
  virtual void reset(u64 seed) = 0;

  /// The next system call to issue, or nullopt when the script is done.
  /// May write input data into the machine's user-buffer region.
  virtual std::optional<SyscallRequest> next(kernel::Machine& machine) = 0;

  /// Validate the completed syscall (return value + output buffers).
  /// Returning false flags a fail-silence violation.
  virtual bool check(kernel::Machine& machine, u32 ret) = 0;

  /// Syscalls issued so far in this run.
  virtual u32 issued() const = 0;

  /// Workload-specific end-of-run state validation (e.g. no packet lost).
  virtual bool state_check(kernel::Machine& machine) { return true; }

  /// End-of-run validation.  Only externally observable state counts: the
  /// paper's benchmarks could not see kernel-internal bookkeeping, so a
  /// silently skewed internal counter is NOT a fail-silence violation.
  bool final_check(kernel::Machine& machine) { return state_check(machine); }

  /// Approximate syscall count per run (for budget estimation).
  virtual u32 length() const = 0;
};

/// The disk "pattern byte" formula baked into the kernel image; workloads
/// validate reads of pristine blocks against it.
constexpr u8 disk_pattern(u32 block, u32 offset) {
  return static_cast<u8>((block * 31 + offset * 7 + 3) & 0xFF);
}

/// Factory functions; `scale` multiplies the script length.
std::unique_ptr<Workload> make_fileops(u32 scale = 1);
std::unique_ptr<Workload> make_pipe_loop(u32 scale = 1);
std::unique_ptr<Workload> make_syscall_mix(u32 scale = 1);
std::unique_ptr<Workload> make_context_switch(u32 scale = 1);
std::unique_ptr<Workload> make_mem_hog(u32 scale = 1);

/// The full suite in UnixBench spirit: all of the above, interleaved into
/// one script.
std::unique_ptr<Workload> make_suite(u32 scale = 1);

}  // namespace kfi::workload
