// Kernel profiling (the paper's kernprof step).
//
// Runs a workload on a fault-free machine with function-entry counting
// enabled and reports the most frequently used kernel functions covering
// at least the requested share of all entries — the paper selected
// functions representing >= 95% of kernel usage as code-injection targets
// (Sections 1 and 3.5).
#pragma once

#include <string>
#include <vector>

#include "kernel/machine.hpp"
#include "workload/workload.hpp"

namespace kfi::workload {

struct HotFunction {
  std::string name;
  Addr addr = 0;
  u32 size = 0;
  u64 entries = 0;
  double share = 0.0;        // fraction of all function entries
  double cumulative = 0.0;   // running share in rank order
};

/// Profile `wl` on a freshly restored machine; returns functions in
/// descending entry order, truncated at `coverage` cumulative share.
/// The machine is restored to its boot snapshot before and after.
std::vector<HotFunction> profile_hot_functions(kernel::Machine& machine,
                                               Workload& wl,
                                               double coverage = 0.95,
                                               u64 seed = 1);

}  // namespace kfi::workload
