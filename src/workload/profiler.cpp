#include "workload/profiler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace kfi::workload {

std::vector<HotFunction> profile_hot_functions(kernel::Machine& machine,
                                               Workload& wl, double coverage,
                                               u64 seed) {
  machine.restore(machine.boot_snapshot());
  machine.set_profiling(true);
  wl.reset(seed);
  while (auto req = wl.next(machine)) {
    const kernel::Event ev = machine.syscall(req->nr, req->a0, req->a1, req->a2);
    KFI_CHECK(ev.kind == kernel::EventKind::kSyscallDone,
              "fault-free profiling run crashed — kernel bug");
    wl.check(machine, ev.ret);
  }
  machine.set_profiling(false);

  const auto& counts = machine.profile_counts();
  const auto& funcs = machine.image().functions;
  u64 total = 0;
  for (const u64 c : counts) total += c;
  KFI_CHECK(total > 0, "profiling run recorded no function entries");

  std::vector<HotFunction> hot;
  for (u32 i = 0; i < funcs.size(); ++i) {
    if (counts[i] == 0) continue;
    hot.push_back(HotFunction{funcs[i].name, funcs[i].addr, funcs[i].size,
                              counts[i],
                              static_cast<double>(counts[i]) /
                                  static_cast<double>(total),
                              0.0});
  }
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    return a.entries > b.entries;
  });

  double cumulative = 0.0;
  size_t keep = hot.size();
  for (size_t i = 0; i < hot.size(); ++i) {
    cumulative += hot[i].share;
    hot[i].cumulative = cumulative;
    if (cumulative >= coverage) {
      keep = i + 1;
      break;
    }
  }
  hot.resize(keep);
  machine.restore(machine.boot_snapshot());
  return hot;
}

}  // namespace kfi::workload
