#include "workload/workload.hpp"

#include <deque>

#include "common/error.hpp"
#include "kernel/layout.hpp"

namespace kfi::workload {

namespace {

using kernel::Machine;
using kernel::Syscall;

constexpr Addr kWriteBuf = kernel::kUserBufBase;
constexpr Addr kReadBuf = kernel::kUserBufBase + 0x1000;

/// Deterministic payload byte for workload-generated data.
u8 payload_byte(u64 seed, u32 step, u32 i) {
  u64 s = seed ^ (static_cast<u64>(step) << 32) ^ i;
  return static_cast<u8>(splitmix64(s));
}

/// Read a word at an address the KERNEL returned.  A corrupted kernel can
/// hand back a wild pointer; dereferencing it would crash the benchmark
/// process on real hardware — which the instrumentation reports as a
/// detected error, not a host fault.
bool safe_read32(Machine& machine, Addr addr, u32& value) {
  const auto tr = machine.space().translate(addr, 4, mem::Access::kRead);
  if (!tr.ok()) return false;
  value = machine.space().phys().read32(tr.phys, machine.space().endian());
  return true;
}

/// Common bookkeeping: issued-syscall counting for the base final_check.
class WorkloadBase : public Workload {
 public:
  u32 issued() const override { return issued_; }

 protected:
  void base_reset(u64 seed) {
    seed_ = seed;
    step_ = 0;
    issued_ = 0;
  }
  SyscallRequest issue(Syscall nr, u32 a0 = 0, u32 a1 = 0, u32 a2 = 0) {
    ++issued_;
    last_ = SyscallRequest{nr, a0, a1, a2};
    return last_;
  }

  u64 seed_ = 0;
  u32 step_ = 0;
  u32 issued_ = 0;
  SyscallRequest last_{Syscall::kGetpid};
};

// ------------------------------------------------------------- fileops ---

/// Write/read-back cycles over files 1-3 plus pattern-verified reads of the
/// pristine file 0 (UnixBench "fsdisk" spirit).
class FileOps final : public WorkloadBase {
 public:
  explicit FileOps(u32 scale) : rounds_(40 * scale) {}

  std::string name() const override { return "fileops"; }
  u32 length() const override { return rounds_ * 3; }

  void reset(u64 seed) override {
    base_reset(seed);
    for (u32 f = 0; f < kernel::kNumFiles; ++f) pos_[f] = 0;
    // Host mirror of every file's content, initialized to the disk image.
    for (u32 f = 0; f < kernel::kNumFiles; ++f) {
      for (u32 b = 0; b < 16; ++b) {
        for (u32 i = 0; i < kernel::kBlockSize; ++i) {
          mirror_[f][b][i] = disk_pattern(f * 16 + b, i);
        }
      }
    }
    round_ = 0;
    phase_ = 0;
  }

  std::optional<SyscallRequest> next(Machine& machine) override {
    if (round_ >= rounds_) return std::nullopt;
    ++step_;
    switch (phase_) {
      case 0: {  // verify-read of file 0
        phase_ = 1;
        expect_block_ = pos_[0] / kernel::kBlockSize;
        expect_file_ = 0;
        advance_pos(0);
        return issue(Syscall::kRead, 0, kReadBuf, kernel::kBlockSize);
      }
      case 1: {  // write a fresh block to file 1+((round)%3)
        phase_ = 2;
        const u32 f = 1 + (round_ % 3);
        const u32 block = pos_[f] / kernel::kBlockSize;
        for (u32 i = 0; i < kernel::kBlockSize; ++i) {
          const u8 v = payload_byte(seed_, step_, i);
          machine.space().vwrite8(kWriteBuf + i, v);
          mirror_[f][block][i] = v;
        }
        write_file_ = f;
        advance_pos(f);
        return issue(Syscall::kWrite, f, kWriteBuf, kernel::kBlockSize);
      }
      default: {  // read back the block just written (after rewind)
        phase_ = 0;
        ++round_;
        const u32 f = write_file_;
        // Rewind one block so the read hits what we just wrote.
        pos_[f] = (pos_[f] + 16 * kernel::kBlockSize - kernel::kBlockSize) %
                  (16 * kernel::kBlockSize);
        machine.write_global("file_table", pos_[f], f, "pos");
        expect_block_ = pos_[f] / kernel::kBlockSize;
        expect_file_ = f;
        advance_pos(f);
        return issue(Syscall::kRead, f, kReadBuf, kernel::kBlockSize);
      }
    }
  }

  bool check(Machine& machine, u32 ret) override {
    if (last_.nr == Syscall::kWrite) return ret == kernel::kBlockSize;
    if (ret != kernel::kBlockSize) return false;
    for (u32 i = 0; i < kernel::kBlockSize; ++i) {
      if (machine.space().vread8(kReadBuf + i) !=
          mirror_[expect_file_][expect_block_][i]) {
        return false;
      }
    }
    return true;
  }

 private:
  void advance_pos(u32 f) {
    pos_[f] = (pos_[f] + kernel::kBlockSize) % (16 * kernel::kBlockSize);
  }

  u32 rounds_;
  u32 round_ = 0;
  u32 phase_ = 0;
  u32 pos_[kernel::kNumFiles] = {};
  u32 write_file_ = 1;
  u32 expect_file_ = 0, expect_block_ = 0;
  u8 mirror_[kernel::kNumFiles][16][kernel::kBlockSize] = {};
};

// ------------------------------------------------------------ pipeloop ---

/// Send/receive bursts through the loopback network stack (UnixBench pipe
/// throughput spirit): packets must come back intact and in order.
class PipeLoop final : public WorkloadBase {
 public:
  explicit PipeLoop(u32 scale) : bursts_(25 * scale) {}

  std::string name() const override { return "pipeloop"; }
  u32 length() const override { return bursts_ * 10; }

  void reset(u64 seed) override {
    base_reset(seed);
    burst_ = 0;
    in_burst_ = 0;
    draining_ = false;
    drain_tries_ = 0;
    inflight_.clear();
  }

  std::optional<SyscallRequest> next(Machine& machine) override {
    if (draining_) {
      if (inflight_.empty() || drain_tries_ > 400) {
        if (burst_ >= bursts_) return std::nullopt;
        draining_ = false;
        in_burst_ = 0;
      } else {
        ++drain_tries_;
        ++step_;
        // Alternate yield (let ksoftirqd deliver) and recv.
        if (drain_tries_ % 2 == 1) return issue(Syscall::kYield);
        return issue(Syscall::kRecv, kReadBuf, kernel::kSkbDataSize);
      }
    }
    if (in_burst_ < 4) {
      ++step_;
      const u32 len = 16 + (payload_byte(seed_, step_, 0) % 64);
      std::vector<u8> payload(len);
      for (u32 i = 0; i < len; ++i) {
        payload[i] = payload_byte(seed_, step_, i + 1);
        machine.space().vwrite8(kWriteBuf + i, payload[i]);
      }
      inflight_.push_back(std::move(payload));
      ++in_burst_;
      return issue(Syscall::kSend, kWriteBuf, len);
    }
    ++burst_;
    draining_ = true;
    drain_tries_ = 0;
    ++step_;
    return issue(Syscall::kYield);
  }

  bool check(Machine& machine, u32 ret) override {
    switch (last_.nr) {
      case Syscall::kSend:
        return ret == last_.a1 && !inflight_.empty();
      case Syscall::kRecv: {
        if (ret == 0) return true;  // nothing delivered yet
        if (inflight_.empty()) return false;  // phantom packet
        const std::vector<u8>& expect = inflight_.front();
        if (ret != expect.size()) return false;
        for (u32 i = 0; i < ret; ++i) {
          if (machine.space().vread8(kReadBuf + i) != expect[i]) return false;
        }
        inflight_.pop_front();
        return true;
      }
      default:
        return true;
    }
  }

  bool state_check(Machine& /*machine*/) override {
    // All packets must eventually arrive; losing one silently is an FSV.
    return inflight_.empty();
  }

 private:
  u32 bursts_;
  u32 burst_ = 0;
  u32 in_burst_ = 0;
  bool draining_ = false;
  u32 drain_tries_ = 0;
  std::deque<std::vector<u8>> inflight_;
};

// ---------------------------------------------------------- syscallmix ---

/// Tight getpid/alloc/free/yield mix (UnixBench syscall-overhead spirit).
class SyscallMix final : public WorkloadBase {
 public:
  explicit SyscallMix(u32 scale) : rounds_(60 * scale) {}

  std::string name() const override { return "syscallmix"; }
  u32 length() const override { return rounds_ * 4; }

  void reset(u64 seed) override {
    base_reset(seed);
    round_ = 0;
    phase_ = 0;
    held_.clear();
  }

  std::optional<SyscallRequest> next(Machine& /*machine*/) override {
    if (round_ >= rounds_) {
      if (!held_.empty()) {  // release everything at the end
        ++step_;
        const u32 page = held_.back();
        held_.pop_back();
        return issue(Syscall::kFree, page);
      }
      return std::nullopt;
    }
    ++step_;
    switch (phase_++ & 3) {
      case 0:
        return issue(Syscall::kGetpid);
      case 1:
        return issue(Syscall::kAlloc);
      case 2:
        if (!held_.empty()) {
          const u32 page = held_.front();
          held_.erase(held_.begin());
          return issue(Syscall::kFree, page);
        }
        return issue(Syscall::kYield);
      default:
        ++round_;
        return issue(Syscall::kYield);
    }
  }

  bool check(Machine& machine, u32 ret) override {
    switch (last_.nr) {
      case Syscall::kGetpid:
        return ret == 1;  // task 0's pid
      case Syscall::kAlloc: {
        if (ret == 0) return held_.size() >= kernel::kNumPages;  // exhausted
        // The kernel stamps page^0x5A5A5A5A into the first word.
        u32 stamp = 0;
        if (!safe_read32(machine, ret, stamp)) return false;  // wild pointer
        if (stamp != (ret ^ 0x5A5A5A5Au)) return false;
        held_.push_back(ret);
        return true;
      }
      case Syscall::kFree:
        return ret == 0;
      default:
        return ret == 0;
    }
  }

 private:
  u32 rounds_;
  u32 round_ = 0;
  u32 phase_ = 0;
  std::vector<u32> held_;
};

// ------------------------------------------------------- contextswitch ---

/// Scheduler-heavy mix: dirty buffers then yield repeatedly so kupdate,
/// kjournald and ksoftirqd all get stack time (UnixBench context-switch
/// spirit) — this is what parks frames on the kernel-thread stacks that
/// the stack-injection campaign then corrupts.
class ContextSwitch final : public WorkloadBase {
 public:
  explicit ContextSwitch(u32 scale) : rounds_(50 * scale) {}

  std::string name() const override { return "ctxswitch"; }
  u32 length() const override { return rounds_ * 4; }

  void reset(u64 seed) override {
    base_reset(seed);
    round_ = 0;
    phase_ = 0;
  }

  std::optional<SyscallRequest> next(Machine& machine) override {
    if (round_ >= rounds_) return std::nullopt;
    ++step_;
    switch (phase_++ & 3) {
      case 0: {
        for (u32 i = 0; i < kernel::kBlockSize; ++i) {
          machine.space().vwrite8(kWriteBuf + i, payload_byte(seed_, step_, i));
        }
        return issue(Syscall::kWrite, 3, kWriteBuf, kernel::kBlockSize);
      }
      case 1:
      case 2:
        return issue(Syscall::kYield);
      default:
        ++round_;
        return issue(Syscall::kGetpid);
    }
  }

  bool check(Machine& /*machine*/, u32 ret) override {
    switch (last_.nr) {
      case Syscall::kWrite:
        return ret == kernel::kBlockSize;
      case Syscall::kGetpid:
        return ret == 1;
      default:
        return ret == 0;
    }
  }

 private:
  u32 rounds_;
  u32 round_ = 0;
  u32 phase_ = 0;
};

// -------------------------------------------------------------- memhog ---

/// Allocate the whole page pool, verify uniqueness, free it, repeat.
class MemHog final : public WorkloadBase {
 public:
  explicit MemHog(u32 scale) : cycles_(6 * scale) {}

  std::string name() const override { return "memhog"; }
  u32 length() const override { return cycles_ * 2 * kernel::kNumPages; }

  void reset(u64 seed) override {
    base_reset(seed);
    cycle_ = 0;
    held_.clear();
    allocating_ = true;
  }

  std::optional<SyscallRequest> next(Machine& /*machine*/) override {
    if (cycle_ >= cycles_) return std::nullopt;
    ++step_;
    if (allocating_) {
      if (held_.size() < kernel::kNumPages) return issue(Syscall::kAlloc);
      allocating_ = false;
    }
    if (!held_.empty()) {
      const u32 page = held_.back();
      held_.pop_back();
      return issue(Syscall::kFree, page);
    }
    allocating_ = true;
    ++cycle_;
    return issue(Syscall::kAlloc);
  }

  bool check(Machine& machine, u32 ret) override {
    switch (last_.nr) {
      case Syscall::kAlloc: {
        if (ret == 0) return false;  // pool must never be empty here
        u32 stamp = 0;
        if (!safe_read32(machine, ret, stamp)) return false;  // wild pointer
        if (stamp != (ret ^ 0x5A5A5A5Au)) return false;
        for (const u32 held : held_) {
          if (held == ret) return false;  // double allocation
        }
        held_.push_back(ret);
        return true;
      }
      case Syscall::kFree:
        return ret == 0;
      default:
        return true;
    }
  }

 private:
  u32 cycles_;
  u32 cycle_ = 0;
  bool allocating_ = true;
  std::vector<u32> held_;
};

// --------------------------------------------------------------- suite ---

/// Sequential concatenation of all benchmark programs.
class Suite final : public Workload {
 public:
  explicit Suite(u32 scale) {
    parts_.push_back(make_syscall_mix(scale));
    parts_.push_back(make_fileops(scale));
    parts_.push_back(make_pipe_loop(scale));
    parts_.push_back(make_context_switch(scale));
    parts_.push_back(make_mem_hog(scale));
  }

  std::string name() const override { return "unixbench-suite"; }

  u32 length() const override {
    u32 total = 0;
    for (const auto& p : parts_) total += p->length();
    return total;
  }

  void reset(u64 seed) override {
    for (u32 i = 0; i < parts_.size(); ++i) parts_[i]->reset(seed + i);
    index_ = 0;
  }

  u32 issued() const override {
    u32 total = 0;
    for (const auto& p : parts_) total += p->issued();
    return total;
  }

  bool state_check(kernel::Machine& machine) override {
    for (const auto& p : parts_) {
      if (!p->state_check(machine)) return false;
    }
    return true;
  }

  std::optional<SyscallRequest> next(kernel::Machine& machine) override {
    while (index_ < parts_.size()) {
      if (auto req = parts_[index_]->next(machine)) return req;
      ++index_;
    }
    return std::nullopt;
  }

  bool check(kernel::Machine& machine, u32 ret) override {
    KFI_CHECK(index_ < parts_.size(), "check after suite completion");
    return parts_[index_]->check(machine, ret);
  }

 private:
  std::vector<std::unique_ptr<Workload>> parts_;
  size_t index_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_fileops(u32 scale) {
  return std::make_unique<FileOps>(scale);
}
std::unique_ptr<Workload> make_pipe_loop(u32 scale) {
  return std::make_unique<PipeLoop>(scale);
}
std::unique_ptr<Workload> make_syscall_mix(u32 scale) {
  return std::make_unique<SyscallMix>(scale);
}
std::unique_ptr<Workload> make_context_switch(u32 scale) {
  return std::make_unique<ContextSwitch>(scale);
}
std::unique_ptr<Workload> make_mem_hog(u32 scale) {
  return std::make_unique<MemHog>(scale);
}
std::unique_ptr<Workload> make_suite(u32 scale) {
  return std::make_unique<Suite>(scale);
}

}  // namespace kfi::workload
