// kir backend for the riscf (G4-like) machine.
//
// Lowers the portable kernel into PowerPC-idiom code: stwu-created stack
// frames with the link register saved in the frame, locals held in
// callee-saved GPRs (r14+) so values live in registers for a long time
// (the paper's explanation for the longer G4 code-error latencies,
// Figure 16(C)), arguments in r3..r10, r13 as the small-data base, and —
// crucially — every scalar/struct field stored in a full 32-bit word
// regardless of its declared width.  Small-range values therefore leave
// their high bits unused, which is the sparseness that masks so many G4
// stack and data errors (paper Sections 4 and 5.5).
#include <memory>

#include "common/error.hpp"
#include "kir/backend.hpp"
#include "riscf/encode.hpp"
#include "riscf/regs.hpp"

namespace kfi::kir {

namespace {

using riscf::Asm;

constexpr u8 kDataBase = 13;  // r13: small-data base register (EABI-style)
constexpr u8 kSlotRegs[6] = {5, 6, 7, 8, 9, 10};  // volatile eval registers
constexpr u8 kScratchA = 11;
constexpr u8 kScratchB = 12;
constexpr u8 kFirstLocalReg = 14;
constexpr u8 kLastLocalReg = 30;  // r31 reserved as an extra temporary

struct GlobalInfo {
  DataObject object;
};

class RiscfBackend final : public Backend {
 public:
  RiscfBackend(Addr code_base, Addr data_base)
      : asm_(code_base), data_base_(data_base) {}

  // ---- data ----
  GlobalId declare_scalar(const std::string& name, Width width, u32 init,
                          bool initialized) override {
    GlobalInfo info;
    info.object.name = name;
    // Word-per-item layout: an unsigned char flag still occupies a full
    // aligned word; its upper 24 bits are never meaningful.
    info.object.elem_size = 4;
    info.object.count = 1;
    info.object.initialized = initialized;
    info.object.fields.push_back(FieldLayout{"", 0, width, 4});
    const GlobalId id = add_global(std::move(info), 4);
    if (initialized && init != 0) set_initial(id, 0, 0, init);
    return id;
  }

  GlobalId declare_array(const std::string& name, Width width, u32 count,
                         bool initialized, bool structural) override {
    // Byte/halfword buffers stay naturally packed (char arrays are
    // contiguous on every ABI); the word-per-item sparseness applies to
    // scalars and struct fields, not bulk buffers.
    GlobalInfo info;
    info.object.name = name;
    info.object.elem_size = static_cast<u32>(width);
    info.object.count = count;
    info.object.initialized = initialized;
    info.object.fields.push_back(
        FieldLayout{"", 0, width, static_cast<u32>(width)});
    info.object.structural = structural;
    return add_global(std::move(info), static_cast<u32>(width));
  }

  GlobalId declare_struct_array(const std::string& name,
                                const StructDecl& decl, u32 count,
                                bool initialized) override {
    GlobalInfo info;
    info.object.name = name;
    info.object.count = count;
    info.object.initialized = initialized;
    u32 offset = 0;
    for (const FieldDecl& f : decl.fields) {
      info.object.fields.push_back(FieldLayout{f.name, offset, f.width, 4});
      offset += 4;  // one full word per field
    }
    info.object.elem_size = offset;
    return add_global(std::move(info), 4);
  }

  void set_initial(GlobalId g, u32 index, u32 field, u32 value) override {
    const DataObject& obj = globals_.at(g).object;
    const FieldLayout& f = obj.field(field);
    const u32 off = obj.addr - data_base_ + index * obj.elem_size + f.offset;
    KFI_CHECK(off + f.storage_bytes <= data_.size(), "set_initial out of range");
    for (u32 i = 0; i < f.storage_bytes; ++i) {
      data_[off + i] =
          static_cast<u8>(value >> (8 * (f.storage_bytes - 1 - i)));  // BE
    }
  }

  Addr global_addr(GlobalId g) const override { return globals_.at(g).object.addr; }
  u32 global_elem_size(GlobalId g) const override {
    return globals_.at(g).object.elem_size;
  }
  u32 field_offset(GlobalId g, u32 field) const override {
    return globals_.at(g).object.field(field).offset;
  }

  // ---- functions ----
  FuncId declare_function(const std::string& name, u32 num_params) override {
    funcs_.push_back(FuncInfo{name, num_params, asm_.new_label(), 0, 0});
    return static_cast<FuncId>(funcs_.size() - 1);
  }

  void begin_function(FuncId func) override {
    KFI_CHECK(cur_func_ < 0, "begin_function while another function is open");
    cur_func_ = static_cast<i32>(func);
    num_locals_ = funcs_[func].num_params;  // params become leading locals
    depth_ = 0;
    body_started_ = false;
    asm_.bind(funcs_[func].label);
    funcs_[func].start = asm_.here();
  }

  void end_function() override {
    KFI_CHECK(cur_func_ >= 0, "end_function without begin_function");
    KFI_CHECK(depth_ == 0, "eval stack not empty at end_function");
    funcs_[static_cast<u32>(cur_func_)].size =
        asm_.here() - funcs_[static_cast<u32>(cur_func_)].start;
    cur_func_ = -1;
  }

  LocalId add_local(const std::string& /*name*/) override {
    KFI_CHECK(!body_started_, "add_local after first instruction");
    KFI_CHECK(kFirstLocalReg + num_locals_ <= kLastLocalReg,
              "out of callee-saved locals");
    return num_locals_++;
  }

  LocalId param(u32 index) const override {
    KFI_CHECK(index < funcs_[static_cast<u32>(cur_func_)].num_params,
              "param index out of range");
    return index;
  }

  // ---- expression stack ----
  void push_const(u32 value) override {
    ensure_prologue();
    asm_.li32(push_slot(), value);
  }

  void push_local(LocalId local) override {
    ensure_prologue();
    asm_.mr(push_slot(), local_reg(local));
  }

  void pop_local(LocalId local) override {
    ensure_prologue();
    asm_.mr(local_reg(local), pop_slot());
  }

  void push_global_addr(GlobalId g) override {
    ensure_prologue();
    asm_.li32(push_slot(), globals_.at(g).object.addr);
  }

  void load_global(GlobalId g, u32 field) override {
    ensure_prologue();
    const DataObject& obj = globals_.at(g).object;
    const FieldLayout& f = obj.field(field);
    if (near_r13(obj, f.offset)) {
      emit_load_off(push_slot(), kDataBase, sdata_off(obj, f.offset), f);
    } else {
      emit_obj_base(obj, f.offset);
      emit_load_off(push_slot(), kScratchB, 0, f);
    }
  }

  void store_global(GlobalId g, u32 field) override {
    ensure_prologue();
    const DataObject& obj = globals_.at(g).object;
    const FieldLayout& f = obj.field(field);
    if (near_r13(obj, f.offset)) {
      emit_store_off(pop_slot(), kDataBase, sdata_off(obj, f.offset), f);
    } else {
      emit_obj_base(obj, f.offset);
      emit_store_off(pop_slot(), kScratchB, 0, f);
    }
  }

  void load_elem(GlobalId g, u32 field) override {
    ensure_prologue();
    const DataObject& obj = globals_.at(g).object;
    const FieldLayout& f = obj.field(field);
    const u8 idx = pop_slot();
    const u8 dst = push_slot();  // same register
    emit_index(idx, obj);
    emit_obj_base(obj, f.offset);
    emit_load_x(dst, kScratchB, kScratchA, f);
  }

  void store_elem(GlobalId g, u32 field) override {
    ensure_prologue();
    const DataObject& obj = globals_.at(g).object;
    const FieldLayout& f = obj.field(field);
    const u8 idx = pop_slot();
    const u8 val = pop_slot();
    emit_index(idx, obj);
    emit_obj_base(obj, f.offset);
    emit_store_x(val, kScratchB, kScratchA, f);
  }

  void elem_addr(GlobalId g) override {
    ensure_prologue();
    const DataObject& obj = globals_.at(g).object;
    const u8 idx = pop_slot();
    const u8 dst = push_slot();
    emit_index(idx, obj);
    emit_obj_base(obj, 0);
    asm_.add(dst, kScratchB, kScratchA);
  }

  void load_ind(Width width) override {
    ensure_prologue();
    const u8 addr = pop_slot();
    const u8 dst = push_slot();
    const FieldLayout f{"", 0, width, static_cast<u32>(width)};
    emit_load_off(dst, addr, 0, f);
  }

  void store_ind(Width width) override {
    ensure_prologue();
    const u8 addr = pop_slot();
    const u8 val = pop_slot();
    const FieldLayout f{"", 0, width, static_cast<u32>(width)};
    emit_store_off(val, addr, 0, f);
  }

  void binop(BinOp op) override {
    ensure_prologue();
    const u8 b = pop_slot();
    const u8 a = kSlotRegs[depth_ - 1];
    switch (op) {
      case BinOp::kAdd: asm_.add(a, a, b); break;
      case BinOp::kSub: asm_.subf(a, b, a); break;  // a = a - b
      case BinOp::kMul: asm_.mullw(a, a, b); break;
      case BinOp::kDivU: asm_.divwu(a, a, b); break;
      case BinOp::kDivS: asm_.divw(a, a, b); break;
      case BinOp::kAnd: asm_.and_(a, a, b); break;
      case BinOp::kOr: asm_.or_(a, a, b); break;
      case BinOp::kXor: asm_.xor_(a, a, b); break;
      case BinOp::kShl: asm_.slw(a, a, b); break;
      case BinOp::kShrU: asm_.srw(a, a, b); break;
      case BinOp::kShrS: asm_.sraw(a, a, b); break;
    }
  }

  void dup() override {
    ensure_prologue();
    const u8 src = kSlotRegs[depth_ - 1];
    asm_.mr(push_slot(), src);
  }

  void drop() override {
    ensure_prologue();
    pop_slot();
  }

  // ---- control flow ----
  LabelId new_label() override { return asm_.new_label(); }
  void bind(LabelId label) override {
    ensure_prologue();
    asm_.bind(label);
  }
  void jump(LabelId label) override {
    ensure_prologue();
    asm_.b(label);
  }

  void branch_if_zero(LabelId label) override {
    ensure_prologue();
    const u8 r = pop_slot();
    asm_.cmpwi(r, 0);
    asm_.beq(label);
  }

  void branch_if_nonzero(LabelId label) override {
    ensure_prologue();
    const u8 r = pop_slot();
    asm_.cmpwi(r, 0);
    asm_.bne(label);
  }

  void branch_cmp(Cond cond, LabelId label) override {
    ensure_prologue();
    const u8 b = pop_slot();
    const u8 a = pop_slot();
    const bool is_unsigned = cond == Cond::kLtU || cond == Cond::kLeU ||
                             cond == Cond::kGtU || cond == Cond::kGeU;
    if (is_unsigned) {
      asm_.cmplw(a, b);
    } else {
      asm_.cmpw(a, b);
    }
    switch (cond) {
      case Cond::kEq: asm_.beq(label); break;
      case Cond::kNe: asm_.bne(label); break;
      case Cond::kLtS: case Cond::kLtU: asm_.blt(label); break;
      case Cond::kLeS: case Cond::kLeU: asm_.ble(label); break;
      case Cond::kGtS: case Cond::kGtU: asm_.bgt(label); break;
      case Cond::kGeS: case Cond::kGeU: asm_.bge(label); break;
    }
  }

  void call(FuncId func, u32 num_args) override {
    ensure_prologue();
    KFI_CHECK(depth_ == num_args, "call requires eval stack == args");
    KFI_CHECK(num_args <= 6, "too many call arguments");
    // Move slots r5.. into argument registers r3.. (ascending is safe:
    // destination index is always below source index).
    for (u32 i = 0; i < num_args; ++i) {
      asm_.mr(static_cast<u8>(3 + i), kSlotRegs[i]);
    }
    depth_ = 0;
    asm_.bl(funcs_[func].label);
    asm_.mr(push_slot(), 3);  // result
  }

  void ret() override {
    ensure_prologue();
    const u8 r = pop_slot();
    KFI_CHECK(depth_ == 0, "eval stack not empty at ret");
    asm_.mr(3, r);
    emit_epilogue();
  }

  // ---- intrinsics ----
  void spin_lock(GlobalId lock) override { emit_spin(lock, /*acquire=*/true); }
  void spin_unlock(GlobalId lock) override { emit_spin(lock, /*acquire=*/false); }

  void bug() override {
    ensure_prologue();
    // Linux/PPC 2.4 BUG(): an all-zero word, which is an illegal encoding.
    asm_.emit_word(0);
  }

  void panic() override {
    ensure_prologue();
    // Panic hypercall: sc with r0 = the reserved panic number.
    asm_.li32(0, 0x7F01);
    asm_.sc();
  }

  void bump_percpu_counter(u32 offset) override {
    ensure_prologue();
    asm_.mfspr(kScratchA, riscf::kSprSprg0);  // per-CPU base pointer
    asm_.lwz(kScratchB, static_cast<i32>(offset), kScratchA);
    asm_.addi(kScratchB, kScratchB, 1);
    asm_.stw(kScratchB, static_cast<i32>(offset), kScratchA);
  }

  void define_switch_function(FuncId func, GlobalId tasks, u32 sp_field) override {
    KFI_CHECK(cur_func_ < 0, "define_switch_function inside a function");
    const DataObject& obj = globals_.at(tasks).object;
    const FieldLayout& sp = obj.field(sp_field);
    asm_.bind(funcs_[func].label);
    funcs_[func].start = asm_.here();
    // void __switch_to(prev r3, next r4): saves all non-volatiles + LR.
    asm_.stwu(riscf::kSp, -kSwitchFrame, riscf::kSp);
    asm_.mflr(0);
    asm_.stw(0, kSwitchFrame - 4, riscf::kSp);
    for (u8 r = 14; r <= 31; ++r) {
      asm_.stw(r, 8 + 4 * (r - 14), riscf::kSp);
    }
    // tasks[prev].sp = r1
    emit_task_sp_addr(3, obj, sp);  // r11 = &tasks[prev].sp
    asm_.stw(riscf::kSp, 0, kScratchA);
    // r1 = tasks[next].sp
    emit_task_sp_addr(4, obj, sp);
    asm_.lwz(riscf::kSp, 0, kScratchA);
    for (u8 r = 14; r <= 31; ++r) {
      asm_.lwz(r, 8 + 4 * (r - 14), riscf::kSp);
    }
    asm_.lwz(0, kSwitchFrame - 4, riscf::kSp);
    asm_.mtlr(0);
    asm_.lwz(riscf::kSp, 0, riscf::kSp);  // back-chain restore
    asm_.blr();
    funcs_[func].size = asm_.here() - funcs_[func].start;
  }

  Addr prepare_initial_stack(mem::AddressSpace& space, Addr stack_top,
                             Addr entry) const override {
    const Addr sp = stack_top - kSwitchFrame;
    for (u32 off = 0; off < kSwitchFrame; off += 4) space.vwrite32(sp + off, 0);
    space.vwrite32(sp, stack_top);                 // back chain
    space.vwrite32(sp + kSwitchFrame - 4, entry);  // saved LR slot
    return sp;
  }

  Image finish() override {
    KFI_CHECK(cur_func_ < 0, "finish with open function");
    Image image;
    image.arch = isa::Arch::kRiscf;
    image.code_base = asm_.base();
    image.data_base = data_base_;
    image.data = data_;
    for (const FuncInfo& f : funcs_) {
      image.functions.push_back(FuncSymbol{f.name, f.start, f.size});
    }
    for (const GlobalInfo& g : globals_) image.objects.push_back(g.object);
    image.code = asm_.finish();
    return image;
  }

 private:
  static constexpr u32 kSwitchFrame = 88;  // 18 GPRs + LR + header

  struct FuncInfo {
    std::string name;
    u32 num_params;
    Asm::Label label;
    Addr start;
    u32 size;
  };

  GlobalId add_global(GlobalInfo info, u32 align) {
    // Structural objects pack from the bottom of the data section; bulk
    // payload arrays (page-cache/kmalloc analogues) live past the fixed
    // kBulkDataOffset so the data-injection window below it contains only
    // the kernel's structures plus natural slack.
    u32& cursor = info.object.structural ? data_cursor_ : bulk_cursor_;
    cursor = (cursor + align - 1) & ~(align - 1);
    if (info.object.structural) {
      KFI_CHECK(cursor + info.object.size() <= kBulkDataOffset,
                "structural data exceeds the injection window");
    }
    info.object.addr = data_base_ + cursor;
    cursor += info.object.size();
    const u32 extent = std::max(data_cursor_, bulk_cursor_);
    if (extent > data_.size()) data_.resize(extent, 0);
    globals_.push_back(std::move(info));
    return static_cast<GlobalId>(globals_.size() - 1);
  }

  u8 push_slot() {
    KFI_CHECK(depth_ < 6, "riscf eval stack overflow");
    return kSlotRegs[depth_++];
  }

  u8 pop_slot() {
    KFI_CHECK(depth_ > 0, "riscf eval stack underflow");
    return kSlotRegs[--depth_];
  }

  u8 local_reg(LocalId local) const {
    KFI_CHECK(kFirstLocalReg + local <= kLastLocalReg, "local out of range");
    return static_cast<u8>(kFirstLocalReg + local);
  }

  i32 sdata_off(const DataObject& obj, u32 extra) const {
    const i32 off = static_cast<i32>(obj.addr - data_base_ + extra);
    KFI_CHECK(off >= -32768 && off <= 32767, "small-data offset out of range");
    return off;
  }

  bool near_r13(const DataObject& obj, u32 extra) const {
    const i64 off = static_cast<i64>(obj.addr) - data_base_ + extra;
    return off >= -32768 && off <= 32767;
  }

  /// Load kScratchB with the address of obj[0] + extra: r13-relative for
  /// the small-data window, a full li32 for the far bulk region.
  void emit_obj_base(const DataObject& obj, u32 extra) {
    if (near_r13(obj, extra)) {
      asm_.addi(kScratchB, kDataBase, sdata_off(obj, extra));
    } else {
      asm_.li32(kScratchB, obj.addr + extra);
    }
  }

  /// r11 = index * elem_size (index register is preserved).
  void emit_index(u8 idx, const DataObject& obj) {
    const u32 es = obj.elem_size;
    if ((es & (es - 1)) == 0) {
      u32 sh = 0;
      while ((1u << sh) != es) ++sh;
      if (sh == 0) {
        asm_.mr(kScratchA, idx);
      } else {
        asm_.rlwinm(kScratchA, idx, static_cast<u8>(sh), 0,
                    static_cast<u8>(31 - sh));  // slwi
      }
    } else {
      asm_.mulli(kScratchA, idx, static_cast<i32>(es));
    }
  }

  /// Generated code accesses a field at its DECLARED width even though the
  /// layout reserves a full word: an unsigned char flag is one lbz from
  /// the word's low byte.  The remaining padding bytes of the slot are
  /// never loaded by anyone — which is exactly why so many G4 data/stack
  /// errors activate (the word is accessed) yet never manifest (the
  /// flipped bit sat in padding): the paper's sparseness mechanism.
  static i32 value_adjust(const FieldLayout& f) {
    // Big-endian: the value's bytes sit at the END of the storage slot.
    return static_cast<i32>(f.storage_bytes) - static_cast<i32>(f.width);
  }

  void emit_load_off(u8 dst, u8 base, i32 off, const FieldLayout& f) {
    switch (f.width) {
      case Width::kU8: asm_.lbz(dst, off + value_adjust(f), base); break;
      case Width::kU16: asm_.lhz(dst, off + value_adjust(f), base); break;
      case Width::kU32: asm_.lwz(dst, off, base); break;
    }
  }

  void emit_store_off(u8 src, u8 base, i32 off, const FieldLayout& f) {
    switch (f.width) {
      case Width::kU8: asm_.stb(src, off + value_adjust(f), base); break;
      case Width::kU16: asm_.sth(src, off + value_adjust(f), base); break;
      case Width::kU32: asm_.stw(src, off, base); break;
    }
  }

  void emit_load_x(u8 dst, u8 base, u8 index, const FieldLayout& f) {
    if (value_adjust(f) != 0) asm_.addi(base, base, value_adjust(f));
    switch (f.width) {
      case Width::kU8: asm_.lbzx(dst, base, index); break;
      case Width::kU16: asm_.lhzx(dst, base, index); break;
      case Width::kU32: asm_.lwzx(dst, base, index); break;
    }
  }

  void emit_store_x(u8 src, u8 base, u8 index, const FieldLayout& f) {
    if (value_adjust(f) != 0) asm_.addi(base, base, value_adjust(f));
    switch (f.width) {
      case Width::kU8: asm_.stbx(src, base, index); break;
      case Width::kU16: asm_.sthx(src, base, index); break;
      case Width::kU32: asm_.stwx(src, base, index); break;
    }
  }

  void emit_task_sp_addr(u8 idx_reg, const DataObject& obj,
                         const FieldLayout& sp) {
    // r11 = data_base + (obj - data_base) + idx*elem + sp.offset
    asm_.mulli(kScratchA, idx_reg, static_cast<i32>(obj.elem_size));
    asm_.addi(kScratchA, kScratchA, sdata_off(obj, sp.offset));
    asm_.add(kScratchA, kScratchA, kDataBase);
  }

  void ensure_prologue() {
    KFI_CHECK(cur_func_ >= 0, "code emitted outside a function");
    if (body_started_) return;
    body_started_ = true;
    const FuncInfo& f = funcs_[static_cast<u32>(cur_func_)];
    cur_frame_ = frame_size();
    asm_.stwu(riscf::kSp, -static_cast<i32>(cur_frame_), riscf::kSp);
    asm_.mflr(0);
    asm_.stw(0, static_cast<i32>(cur_frame_) - 4, riscf::kSp);
    for (u32 i = 0; i < num_locals_; ++i) {
      asm_.stw(local_reg(i), 8 + 4 * static_cast<i32>(i), riscf::kSp);
    }
    // Move incoming arguments (r3..) into their callee-saved homes.
    for (u32 i = 0; i < f.num_params; ++i) {
      asm_.mr(local_reg(i), static_cast<u8>(3 + i));
    }
  }

  u32 frame_size() const {
    // Header (8) + one save slot per local register + LR slot, rounded to 8.
    const u32 raw = 8 + 4 * num_locals_ + 4;
    return (raw + 7) & ~7u;
  }

  void emit_epilogue() {
    asm_.lwz(0, static_cast<i32>(cur_frame_) - 4, riscf::kSp);
    asm_.mtlr(0);
    for (u32 i = 0; i < num_locals_; ++i) {
      asm_.lwz(local_reg(i), 8 + 4 * static_cast<i32>(i), riscf::kSp);
    }
    // Restore the stack pointer through the back chain stwu wrote at
    // frame creation.  This is the load-bearing idiom behind the paper's
    // G4 Stack Overflow category: corrupt the back-chain word on the
    // stack and the next exception's entry wrapper finds r1 out of range.
    asm_.lwz(riscf::kSp, 0, riscf::kSp);
    asm_.blr();
  }

  void emit_spin(GlobalId lock, bool acquire) {
    ensure_prologue();
    const DataObject& obj = globals_.at(lock).object;
    const FieldLayout& lock_f = obj.field(0);
    const FieldLayout& magic_f = obj.field(1);
    if (spinlock_checks_) {
      asm_.lwz(kScratchA, sdata_off(obj, magic_f.offset), kDataBase);
      asm_.li32(kScratchB, kSpinlockMagic);
      asm_.cmpw(kScratchA, kScratchB);
      const Asm::Label ok = asm_.new_label();
      asm_.beq(ok);
      asm_.emit_word(0);  // BUG(): illegal word
      asm_.bind(ok);
    }
    asm_.li(kScratchA, acquire ? 1 : 0);
    asm_.stw(kScratchA, sdata_off(obj, lock_f.offset), kDataBase);
  }

  Asm asm_;
  Addr data_base_;
  std::vector<u8> data_;
  u32 data_cursor_ = 0;
  u32 bulk_cursor_ = kBulkDataOffset;
  std::vector<GlobalInfo> globals_;
  std::vector<FuncInfo> funcs_;
  i32 cur_func_ = -1;
  u32 num_locals_ = 0;
  u32 cur_frame_ = 0;
  u32 depth_ = 0;
  bool body_started_ = false;
};

}  // namespace

std::unique_ptr<Backend> make_riscf_backend(Addr code_base, Addr data_base) {
  return std::make_unique<RiscfBackend>(code_base, data_base);
}

}  // namespace kfi::kir
