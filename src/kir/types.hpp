// Core types of the kernel IR (kir).
//
// The miniature kernel is written ONCE against the abstract Backend
// interface; the two backends compile it into real cisca and riscf machine
// code with each architecture's idioms.  Width is the *declared* logical
// width of a data item; how it is laid out is a backend decision — and that
// decision is one of the paper's central variables (packed 8/16/32-bit
// items on the P4 versus word-per-item layouts on the G4, Section 5.5).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace kfi::kir {

enum class Width : u8 { kU8 = 1, kU16 = 2, kU32 = 4 };

/// Binary operators; comparison is expressed via CondBranch instead of
/// materialized booleans (matching how compilers of the era emitted code).
enum class BinOp : u8 {
  kAdd, kSub, kMul, kDivU, kDivS,
  kAnd, kOr, kXor,
  kShl, kShrU, kShrS,
};

/// Branch conditions for compare-and-branch.
enum class Cond : u8 {
  kEq, kNe,
  kLtS, kLeS, kGtS, kGeS,
  kLtU, kLeU, kGtU, kGeU,
};

using GlobalId = u32;
using FuncId = u32;
using LocalId = u32;
using LabelId = u32;

struct FieldDecl {
  std::string name;
  Width width = Width::kU32;
};

struct StructDecl {
  std::string name;
  std::vector<FieldDecl> fields;
};

}  // namespace kfi::kir
