#include "kir/image.hpp"

namespace kfi::kir {

const FuncSymbol& Image::function(const std::string& name) const {
  const FuncSymbol* sym = find_function(name);
  KFI_CHECK(sym != nullptr, "no function symbol named " + name);
  return *sym;
}

const FuncSymbol* Image::find_function(const std::string& name) const {
  for (const auto& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const FuncSymbol* Image::function_at(Addr addr) const {
  for (const auto& f : functions) {
    if (addr >= f.addr && addr < f.addr + f.size) return &f;
  }
  return nullptr;
}

const DataObject& Image::object(const std::string& name) const {
  for (const auto& o : objects) {
    if (o.name == name) return o;
  }
  KFI_CHECK(false, "no data object named " + name);
  return objects.front();
}

const DataObject* Image::object_at(Addr addr) const {
  for (const auto& o : objects) {
    if (addr >= o.addr && addr < o.addr + o.size()) return &o;
  }
  return nullptr;
}

}  // namespace kfi::kir
