// kir backend for the cisca (P4-like) machine.
//
// Lowers the portable kernel into IA-32-idiom code: EBP stack frames with
// the exact prologue/epilogue shape of the paper's Figure 7 disassembly
// (push ebp / mov ebp,esp / push edi,esi,ebx / ... / lea -12(ebp),esp /
// pops / ret), locals spilled to the frame, arguments on the stack, and
// struct fields PACKED at their declared widths so kernel data is dense —
// the property that makes P4 data/stack errors manifest at 56-66% versus
// the G4's 21% (paper Section 4).
#include <memory>

#include "cisca/encode.hpp"
#include "cisca/regs.hpp"
#include "common/error.hpp"
#include "kir/backend.hpp"

namespace kfi::kir {

namespace {

using cisca::Asm;
using cisca::MemOperand;
using cisca::Op;

constexpr u8 kSlotRegs[6] = {cisca::kEax, cisca::kEcx, cisca::kEdx,
                             cisca::kEbx, cisca::kEsi, cisca::kEdi};

MemOperand abs_mem(Addr addr) {
  MemOperand m;
  m.disp = static_cast<i32>(addr);
  return m;
}

MemOperand reg_mem(u8 base, i32 disp) {
  MemOperand m;
  m.base = base;
  m.disp = disp;
  return m;
}

struct GlobalInfo {
  DataObject object;
  bool is_struct = false;
};

class CiscaBackend final : public Backend {
 public:
  CiscaBackend(Addr code_base, Addr data_base)
      : asm_(code_base), data_base_(data_base) {}

  // ---- data ----
  GlobalId declare_scalar(const std::string& name, Width width, u32 init,
                          bool initialized) override {
    GlobalInfo info;
    info.object.name = name;
    info.object.elem_size = static_cast<u32>(width);
    info.object.count = 1;
    info.object.initialized = initialized;
    info.object.fields.push_back(
        FieldLayout{"", 0, width, static_cast<u32>(width)});
    const GlobalId id = add_global(std::move(info), static_cast<u32>(width));
    if (initialized && init != 0) set_initial(id, 0, 0, init);
    return id;
  }

  GlobalId declare_array(const std::string& name, Width width, u32 count,
                         bool initialized, bool structural) override {
    GlobalInfo info;
    info.object.name = name;
    info.object.elem_size = static_cast<u32>(width);
    info.object.count = count;
    info.object.initialized = initialized;
    info.object.fields.push_back(
        FieldLayout{"", 0, width, static_cast<u32>(width)});
    info.object.structural = structural;
    return add_global(std::move(info), static_cast<u32>(width));
  }

  GlobalId declare_struct_array(const std::string& name,
                                const StructDecl& decl, u32 count,
                                bool initialized) override {
    GlobalInfo info;
    info.object.name = name;
    info.object.count = count;
    info.object.initialized = initialized;
    info.is_struct = true;
    // Packed layout with natural alignment per field (IA-32 style).
    u32 offset = 0;
    u32 max_align = 1;
    for (const FieldDecl& f : decl.fields) {
      const u32 w = static_cast<u32>(f.width);
      offset = (offset + w - 1) & ~(w - 1);
      info.object.fields.push_back(FieldLayout{f.name, offset, f.width, w});
      offset += w;
      max_align = std::max(max_align, w);
    }
    info.object.elem_size = (offset + max_align - 1) & ~(max_align - 1);
    return add_global(std::move(info), max_align);
  }

  void set_initial(GlobalId g, u32 index, u32 field, u32 value) override {
    const DataObject& obj = globals_.at(g).object;
    const FieldLayout& f = obj.field(field);
    const u32 off = obj.addr - data_base_ + index * obj.elem_size + f.offset;
    KFI_CHECK(off + f.storage_bytes <= data_.size(), "set_initial out of range");
    for (u32 i = 0; i < f.storage_bytes; ++i) {
      data_[off + i] = static_cast<u8>(value >> (8 * i));  // little-endian
    }
  }

  Addr global_addr(GlobalId g) const override { return globals_.at(g).object.addr; }
  u32 global_elem_size(GlobalId g) const override {
    return globals_.at(g).object.elem_size;
  }
  u32 field_offset(GlobalId g, u32 field) const override {
    return globals_.at(g).object.field(field).offset;
  }

  // ---- functions ----
  FuncId declare_function(const std::string& name, u32 num_params) override {
    funcs_.push_back(FuncInfo{name, num_params, asm_.new_label(), 0, 0});
    return static_cast<FuncId>(funcs_.size() - 1);
  }

  void begin_function(FuncId func) override {
    KFI_CHECK(cur_func_ < 0, "begin_function while another function is open");
    cur_func_ = static_cast<i32>(func);
    num_locals_ = 0;
    depth_ = 0;
    body_started_ = false;
    asm_.bind(funcs_[func].label);
    funcs_[func].start = asm_.here();
  }

  void end_function() override {
    KFI_CHECK(cur_func_ >= 0, "end_function without begin_function");
    KFI_CHECK(depth_ == 0, "eval stack not empty at end_function");
    funcs_[static_cast<u32>(cur_func_)].size =
        asm_.here() - funcs_[static_cast<u32>(cur_func_)].start;
    cur_func_ = -1;
  }

  LocalId add_local(const std::string& /*name*/) override {
    KFI_CHECK(!body_started_, "add_local after first instruction");
    return funcs_[static_cast<u32>(cur_func_)].num_params + num_locals_++;
  }

  LocalId param(u32 index) const override {
    KFI_CHECK(index < funcs_[static_cast<u32>(cur_func_)].num_params,
              "param index out of range");
    return index;
  }

  // ---- expression stack ----
  void push_const(u32 value) override {
    ensure_prologue();
    asm_.mov_r_imm(push_slot(), value);
  }

  void push_local(LocalId local) override {
    ensure_prologue();
    asm_.mov_r_rm(push_slot(), local_mem(local));
  }

  void pop_local(LocalId local) override {
    ensure_prologue();
    asm_.mov_rm_r(local_mem(local), pop_slot());
  }

  void push_global_addr(GlobalId g) override {
    ensure_prologue();
    asm_.mov_r_imm(push_slot(), globals_.at(g).object.addr);
  }

  void load_global(GlobalId g, u32 field) override {
    ensure_prologue();
    const DataObject& obj = globals_.at(g).object;
    const FieldLayout& f = obj.field(field);
    emit_load(push_slot(), abs_mem(obj.addr + f.offset), f.width);
  }

  void store_global(GlobalId g, u32 field) override {
    ensure_prologue();
    const DataObject& obj = globals_.at(g).object;
    const FieldLayout& f = obj.field(field);
    emit_store(abs_mem(obj.addr + f.offset), pop_slot(), f.width);
  }

  void load_elem(GlobalId g, u32 field) override {
    ensure_prologue();
    const DataObject& obj = globals_.at(g).object;
    const FieldLayout& f = obj.field(field);
    const u8 idx = pop_slot();
    const u8 dst = push_slot();  // same register as idx
    emit_load(dst, scaled_mem(obj, f, idx), f.width);
  }

  void store_elem(GlobalId g, u32 field) override {
    ensure_prologue();
    const DataObject& obj = globals_.at(g).object;
    const FieldLayout& f = obj.field(field);
    const u8 idx = pop_slot();
    const u8 val = pop_slot();
    emit_store(scaled_mem(obj, f, idx), val, f.width);
  }

  void elem_addr(GlobalId g) override {
    ensure_prologue();
    const DataObject& obj = globals_.at(g).object;
    const u8 idx = pop_slot();
    const u8 dst = push_slot();
    FieldLayout whole{"", 0, Width::kU32, 4};
    asm_.lea(dst, scaled_mem(obj, whole, idx));
  }

  void load_ind(Width width) override {
    ensure_prologue();
    const u8 addr = pop_slot();
    const u8 dst = push_slot();
    emit_load(dst, reg_mem(addr, 0), width);
  }

  void store_ind(Width width) override {
    ensure_prologue();
    const u8 addr = pop_slot();
    const u8 val = pop_slot();
    emit_store(reg_mem(addr, 0), val, width);
  }

  void binop(BinOp op) override {
    ensure_prologue();
    const u8 b = pop_slot();
    const u8 a = kSlotRegs[depth_ - 1];
    switch (op) {
      case BinOp::kAdd: asm_.alu_rr(Op::kAdd, a, b); break;
      case BinOp::kSub: asm_.alu_rr(Op::kSub, a, b); break;
      case BinOp::kAnd: asm_.alu_rr(Op::kAnd, a, b); break;
      case BinOp::kOr: asm_.alu_rr(Op::kOr, a, b); break;
      case BinOp::kXor: asm_.alu_rr(Op::kXor, a, b); break;
      case BinOp::kMul: asm_.imul_rr(a, b); break;
      case BinOp::kDivU:
      case BinOp::kDivS:
        // eax = eax / ecx with edx as the high half: requires the two
        // operands to be the bottom of the stack, like compiler codegen.
        KFI_CHECK(a == cisca::kEax && b == cisca::kEcx,
                  "division requires depth-2 eval stack");
        if (op == BinOp::kDivU) {
          asm_.mov_r_imm(cisca::kEdx, 0);
          asm_.div_r(cisca::kEcx);
        } else {
          asm_.cdq();
          asm_.idiv_r(cisca::kEcx);
        }
        break;
      case BinOp::kShl:
      case BinOp::kShrU:
      case BinOp::kShrS: {
        const Op shift_op = op == BinOp::kShl   ? Op::kShl
                            : op == BinOp::kShrU ? Op::kShr
                                                 : Op::kSar;
        if (b == cisca::kEcx) {
          emit_shift_cl(shift_op, a);
        } else {
          // The count must reach CL without clobbering any live slot:
          // swap it into ecx, shift, swap back.  If the value itself sits
          // in ecx, it rides along into b's register and back.
          asm_.xchg_rr(cisca::kEcx, b);
          emit_shift_cl(shift_op, a == cisca::kEcx ? b : a);
          asm_.xchg_rr(cisca::kEcx, b);
        }
        break;
      }
    }
  }

  void dup() override {
    ensure_prologue();
    const u8 src = kSlotRegs[depth_ - 1];
    asm_.mov_rr(push_slot(), src);
  }

  void drop() override {
    ensure_prologue();
    pop_slot();
  }

  // ---- control flow ----
  LabelId new_label() override { return asm_.new_label(); }
  void bind(LabelId label) override {
    ensure_prologue();
    asm_.bind(label);
  }
  void jump(LabelId label) override {
    ensure_prologue();
    asm_.jmp(label);
  }

  void branch_if_zero(LabelId label) override {
    ensure_prologue();
    const u8 r = pop_slot();
    asm_.test_rr(r, r);
    asm_.jcc(cisca::kCondE, label);
  }

  void branch_if_nonzero(LabelId label) override {
    ensure_prologue();
    const u8 r = pop_slot();
    asm_.test_rr(r, r);
    asm_.jcc(cisca::kCondNE, label);
  }

  void branch_cmp(Cond cond, LabelId label) override {
    ensure_prologue();
    const u8 b = pop_slot();
    const u8 a = pop_slot();
    asm_.alu_rr(Op::kCmp, a, b);
    asm_.jcc(cond_code(cond), label);
  }

  void call(FuncId func, u32 num_args) override {
    ensure_prologue();
    KFI_CHECK(depth_ == num_args, "call requires eval stack == args");
    // cdecl-flavored: first argument pushed first; callee indexes from the
    // top of the caller frame.
    for (u32 i = 0; i < num_args; ++i) asm_.push_r(kSlotRegs[i]);
    depth_ = 0;
    asm_.call(funcs_[func].label);
    if (num_args > 0) asm_.alu_r_imm(Op::kAdd, cisca::kEsp, num_args * 4);
    const u8 dst = push_slot();
    KFI_CHECK(dst == cisca::kEax, "call result slot must be eax");
  }

  void ret() override {
    ensure_prologue();
    const u8 r = pop_slot();
    KFI_CHECK(r == cisca::kEax, "return value must end in eax");
    KFI_CHECK(depth_ == 0, "eval stack not empty at ret");
    emit_epilogue();
  }

  // ---- intrinsics ----
  void spin_lock(GlobalId lock) override { emit_spin(lock, /*acquire=*/true); }
  void spin_unlock(GlobalId lock) override { emit_spin(lock, /*acquire=*/false); }

  void bug() override {
    ensure_prologue();
    asm_.ud2();
  }

  void panic() override {
    ensure_prologue();
    asm_.int_(0x82);
  }

  void bump_percpu_counter(u32 offset) override {
    ensure_prologue();
    MemOperand m;
    m.seg = cisca::SegOverride::kFs;
    m.disp = static_cast<i32>(offset);
    asm_.inc_rm(m);
  }

  void define_switch_function(FuncId func, GlobalId tasks, u32 sp_field) override {
    KFI_CHECK(cur_func_ < 0, "define_switch_function inside a function");
    const DataObject& obj = globals_.at(tasks).object;
    const FieldLayout& sp = obj.field(sp_field);
    asm_.bind(funcs_[func].label);
    funcs_[func].start = asm_.here();
    // void __switch_to(prev_idx, next_idx): raw-stack routine, no EBP frame.
    // Args at [esp+4] (next, pushed last... see call convention: first arg
    // pushed first => prev at [esp+8], next at [esp+4]).
    asm_.mov_r_rm(cisca::kEax, reg_mem(cisca::kEsp, 8));  // prev
    asm_.mov_r_rm(cisca::kEdx, reg_mem(cisca::kEsp, 4));  // next
    asm_.push_r(cisca::kEbp);
    asm_.push_r(cisca::kEbx);
    asm_.push_r(cisca::kEsi);
    asm_.push_r(cisca::kEdi);
    // Scale the task indices by the (packed, non-power-of-two) struct size.
    emit_imul_imm(cisca::kEax, obj.elem_size);
    emit_imul_imm(cisca::kEdx, obj.elem_size);
    const MemOperand prev_sp =
        reg_mem(cisca::kEax, static_cast<i32>(obj.addr + sp.offset));
    const MemOperand next_sp =
        reg_mem(cisca::kEdx, static_cast<i32>(obj.addr + sp.offset));
    asm_.mov_rm_r(prev_sp, cisca::kEsp);
    asm_.mov_r_rm(cisca::kEsp, next_sp);
    asm_.pop_r(cisca::kEdi);
    asm_.pop_r(cisca::kEsi);
    asm_.pop_r(cisca::kEbx);
    asm_.pop_r(cisca::kEbp);
    asm_.ret();
    funcs_[func].size = asm_.here() - funcs_[func].start;
  }

  Addr prepare_initial_stack(mem::AddressSpace& space, Addr stack_top,
                             Addr entry) const override {
    // Layout expected by __switch_to's restore path: [edi esi ebx ebp ret].
    const Addr sp = stack_top - 20;
    for (u32 i = 0; i < 4; ++i) space.vwrite32(sp + i * 4, 0);
    space.vwrite32(sp + 16, entry);
    return sp;
  }

  Image finish() override {
    KFI_CHECK(cur_func_ < 0, "finish with open function");
    Image image;
    image.arch = isa::Arch::kCisca;
    image.code_base = asm_.base();
    image.data_base = data_base_;
    image.data = data_;
    for (const FuncInfo& f : funcs_) {
      image.functions.push_back(FuncSymbol{f.name, f.start, f.size});
    }
    for (const GlobalInfo& g : globals_) image.objects.push_back(g.object);
    image.code = asm_.finish();
    return image;
  }

 private:
  struct FuncInfo {
    std::string name;
    u32 num_params;
    Asm::Label label;
    Addr start;
    u32 size;
  };

  GlobalId add_global(GlobalInfo info, u32 align) {
    // Structural objects pack from the bottom of the data section; bulk
    // payload arrays (page-cache/kmalloc analogues) live past the fixed
    // kBulkDataOffset so the data-injection window below it contains only
    // the kernel's structures plus natural slack.
    u32& cursor = info.object.structural ? data_cursor_ : bulk_cursor_;
    cursor = (cursor + align - 1) & ~(align - 1);
    if (info.object.structural) {
      KFI_CHECK(cursor + info.object.size() <= kBulkDataOffset,
                "structural data exceeds the injection window");
    }
    info.object.addr = data_base_ + cursor;
    cursor += info.object.size();
    const u32 extent = std::max(data_cursor_, bulk_cursor_);
    if (extent > data_.size()) data_.resize(extent, 0);
    globals_.push_back(std::move(info));
    return static_cast<GlobalId>(globals_.size() - 1);
  }

  u8 push_slot() {
    KFI_CHECK(depth_ < 6, "cisca eval stack overflow");
    return kSlotRegs[depth_++];
  }

  u8 pop_slot() {
    KFI_CHECK(depth_ > 0, "cisca eval stack underflow");
    return kSlotRegs[--depth_];
  }

  MemOperand local_mem(LocalId local) const {
    const FuncInfo& f = funcs_[static_cast<u32>(cur_func_)];
    if (local < f.num_params) {
      // First-pushed arg sits highest: param i at [ebp + 8 + 4*(n-1-i)].
      return reg_mem(cisca::kEbp,
                     8 + 4 * static_cast<i32>(f.num_params - 1 - local));
    }
    // Locals below the three saved registers.
    const u32 slot = local - f.num_params;
    return reg_mem(cisca::kEbp, -16 - 4 * static_cast<i32>(slot));
  }


  MemOperand scaled_mem(const DataObject& obj, const FieldLayout& f, u8 idx) {
    MemOperand m;
    if (obj.elem_size == 1 || obj.elem_size == 2 || obj.elem_size == 4 ||
        obj.elem_size == 8) {
      m.base = MemOperand::kNoReg;
      m.index = idx;
      m.scale = static_cast<u8>(obj.elem_size);
      m.disp = static_cast<i32>(obj.addr + f.offset);
      return m;
    }
    // Non-power-of-two element size: multiply the index in place.
    emit_imul_imm(idx, obj.elem_size);
    m.base = idx;
    m.disp = static_cast<i32>(obj.addr + f.offset);
    return m;
  }

  void emit_imul_imm(u8 reg, u32 value) {
    // 3-operand imul reg, reg, imm32 (0x69 /r id, mod=3).
    std::vector<u8> bytes = {0x69,
                             static_cast<u8>(0xC0 | (reg << 3) | reg)};
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<u8>(value >> (8 * i)));
    asm_.emit_bytes(bytes);
  }

  void emit_shift_cl(Op op, u8 reg) {
    u8 group = 0;
    switch (op) {
      case Op::kShl: group = 4; break;
      case Op::kShr: group = 5; break;
      case Op::kSar: group = 7; break;
      default: KFI_CHECK(false, "bad shift");
    }
    asm_.emit_bytes({0xD3, static_cast<u8>(0xC0 | (group << 3) | reg)});
  }

  void emit_load(u8 dst, const MemOperand& mem, Width width) {
    switch (width) {
      case Width::kU8: asm_.movzx_r_rm8(dst, mem); break;
      case Width::kU16: asm_.movzx_r_rm16(dst, mem); break;
      case Width::kU32: asm_.mov_r_rm(dst, mem); break;
    }
  }

  void emit_store(const MemOperand& mem, u8 src, Width width) {
    switch (width) {
      case Width::kU8:
        KFI_CHECK(src < 4, "8-bit store needs a low-byte register");
        asm_.mov_rm_r8(mem, src);
        break;
      case Width::kU16: asm_.mov_rm_r16(mem, src); break;
      case Width::kU32: asm_.mov_rm_r(mem, src); break;
    }
  }

  void ensure_prologue() {
    KFI_CHECK(cur_func_ >= 0, "code emitted outside a function");
    if (body_started_) return;
    body_started_ = true;
    // Figure-7-faithful frame: push ebp; mov ebp,esp; push edi/esi/ebx;
    // sub esp, 4*locals.
    asm_.push_r(cisca::kEbp);
    asm_.mov_rr(cisca::kEbp, cisca::kEsp);
    asm_.push_r(cisca::kEdi);
    asm_.push_r(cisca::kEsi);
    asm_.push_r(cisca::kEbx);
    if (num_locals_ > 0) {
      asm_.alu_r_imm(Op::kSub, cisca::kEsp, num_locals_ * 4);
    }
  }

  void emit_epilogue() {
    // lea -12(ebp),esp ; pop ebx; pop esi; pop edi; pop ebp; ret
    asm_.lea(cisca::kEsp, reg_mem(cisca::kEbp, -12));
    asm_.pop_r(cisca::kEbx);
    asm_.pop_r(cisca::kEsi);
    asm_.pop_r(cisca::kEdi);
    asm_.pop_r(cisca::kEbp);
    asm_.ret();
  }

  void emit_spin(GlobalId lock, bool acquire) {
    ensure_prologue();
    const DataObject& obj = globals_.at(lock).object;
    const FieldLayout& lock_f = obj.field(0);
    const FieldLayout& magic_f = obj.field(1);
    if (spinlock_checks_) {
      // Figure 13: cmpl $0xdead4ead, magic; je ok; ud2; ok: set the lock.
      asm_.alu_rm_imm(Op::kCmp, abs_mem(obj.addr + magic_f.offset),
                      kSpinlockMagic);
      const Asm::Label ok = asm_.new_label();
      asm_.jcc(cisca::kCondE, ok);
      asm_.ud2();
      asm_.bind(ok);
    }
    if (lock_f.width == Width::kU8) {
      asm_.mov_rm8_imm(abs_mem(obj.addr + lock_f.offset), acquire ? 1 : 0);
    } else {
      asm_.mov_rm_imm(abs_mem(obj.addr + lock_f.offset), acquire ? 1 : 0);
    }
  }

  static u8 cond_code(Cond cond) {
    switch (cond) {
      case Cond::kEq: return cisca::kCondE;
      case Cond::kNe: return cisca::kCondNE;
      case Cond::kLtS: return cisca::kCondL;
      case Cond::kLeS: return cisca::kCondLE;
      case Cond::kGtS: return cisca::kCondG;
      case Cond::kGeS: return cisca::kCondGE;
      case Cond::kLtU: return cisca::kCondB;
      case Cond::kLeU: return cisca::kCondBE;
      case Cond::kGtU: return cisca::kCondA;
      case Cond::kGeU: return cisca::kCondAE;
    }
    return cisca::kCondE;
  }

  Asm asm_;
  Addr data_base_;
  std::vector<u8> data_;
  u32 data_cursor_ = 0;
  u32 bulk_cursor_ = kBulkDataOffset;
  std::vector<GlobalInfo> globals_;
  std::vector<FuncInfo> funcs_;
  i32 cur_func_ = -1;
  u32 num_locals_ = 0;
  u32 depth_ = 0;
  bool body_started_ = false;
};

}  // namespace

std::unique_ptr<Backend> make_cisca_backend(Addr code_base, Addr data_base) {
  return std::make_unique<CiscaBackend>(code_base, data_base);
}

}  // namespace kfi::kir
