// Abstract code-generation backend ("portable kernel assembler").
//
// The miniature kernel (src/kernel) is written once against this
// stack-machine-style interface.  Each backend lowers the same logical
// program into its architecture's idiom:
//
//   CiscaBackend (P4-like)                RiscfBackend (G4-like)
//   ----------------------                ----------------------
//   locals live on the EBP frame          locals live in callee-saved GPRs
//   struct fields packed at declared      every field gets a full 32-bit
//     width (8/16/32-bit accesses)          word (unused high bits)
//   args passed on the stack              args passed in r3..r10
//   push ebp / mov ebp,esp prologue       stwu r1,-N(r1) / mflr prologue
//   4 KB kernel stacks                    8 KB kernel stacks
//
// These are exactly the architectural/ABI contrasts the paper credits for
// the difference in stack/data error sensitivity and crash latency.
//
// Evaluation discipline: a small expression stack (depth <= 6).  At a call
// the stack must hold exactly the arguments.  Control flow uses
// compare-and-branch rather than materialized booleans.
#pragma once

#include <memory>
#include <string>

#include "kir/image.hpp"
#include "kir/types.hpp"
#include "mem/address_space.hpp"

namespace kfi::kir {

class Backend {
 public:
  virtual ~Backend() = default;

  // ---- data declarations (module scope, before any function body) ----
  virtual GlobalId declare_scalar(const std::string& name, Width width,
                                  u32 init, bool initialized = true) = 0;
  virtual GlobalId declare_array(const std::string& name, Width width,
                                 u32 count, bool initialized = true,
                                 bool structural = true) = 0;
  virtual GlobalId declare_struct_array(const std::string& name,
                                        const StructDecl& decl, u32 count,
                                        bool initialized = true) = 0;
  /// Write an initial value into element `index`, field `field`.
  virtual void set_initial(GlobalId global, u32 index, u32 field, u32 value) = 0;
  /// Final address of a global (available before finish()).
  virtual Addr global_addr(GlobalId global) const = 0;
  virtual u32 global_elem_size(GlobalId global) const = 0;
  virtual u32 field_offset(GlobalId global, u32 field) const = 0;

  // ---- functions ----
  virtual FuncId declare_function(const std::string& name, u32 num_params) = 0;
  virtual void begin_function(FuncId func) = 0;
  virtual void end_function() = 0;
  virtual LocalId add_local(const std::string& name) = 0;
  /// Parameters are locals 0..num_params-1.
  virtual LocalId param(u32 index) const = 0;

  // ---- expression stack ----
  virtual void push_const(u32 value) = 0;
  virtual void push_local(LocalId local) = 0;
  virtual void pop_local(LocalId local) = 0;
  virtual void push_global_addr(GlobalId global) = 0;

  /// Static-address loads/stores of global[0].field.
  virtual void load_global(GlobalId global, u32 field = 0) = 0;
  virtual void store_global(GlobalId global, u32 field = 0) = 0;

  /// Dynamic element access: load pops the index; store pops the index,
  /// then the value (push value first, then index).
  virtual void load_elem(GlobalId global, u32 field = 0) = 0;
  virtual void store_elem(GlobalId global, u32 field = 0) = 0;
  /// Pops index, pushes &global[index] (element base, not field).
  virtual void elem_addr(GlobalId global) = 0;

  /// Indirect access through a computed address (pops addr; store also
  /// pops the value pushed before the addr).
  virtual void load_ind(Width width) = 0;
  virtual void store_ind(Width width) = 0;

  virtual void binop(BinOp op) = 0;
  virtual void dup() = 0;
  virtual void drop() = 0;

  // ---- control flow ----
  virtual LabelId new_label() = 0;
  virtual void bind(LabelId label) = 0;
  virtual void jump(LabelId label) = 0;
  /// Pops one value; branches if it is zero / nonzero.
  virtual void branch_if_zero(LabelId label) = 0;
  virtual void branch_if_nonzero(LabelId label) = 0;
  /// Pops b then a; branches if (a cond b).
  virtual void branch_cmp(Cond cond, LabelId label) = 0;

  /// Pops `num_args` arguments (first-pushed = first parameter) and calls;
  /// pushes the return value.  Stack depth must equal num_args.
  virtual void call(FuncId func, u32 num_args) = 0;
  /// Pops the return value and returns from the current function.
  virtual void ret() = 0;

  // ---- kernel intrinsics ----
  /// Inline spinlock acquire/release with the Linux SPINLOCK_DEBUG magic
  /// check (paper Figure 13): compares lock.magic against kSpinlockMagic
  /// and executes BUG() on mismatch.
  virtual void spin_lock(GlobalId lock) = 0;
  virtual void spin_unlock(GlobalId lock) = 0;
  /// Disable the SPINLOCK_DEBUG magic checks (a !CONFIG_DEBUG_SPINLOCK
  /// kernel build); used by the ablation benches.
  void set_spinlock_checks(bool enabled) { spinlock_checks_ = enabled; }
  bool spinlock_checks() const { return spinlock_checks_; }
  /// BUG(): ud2 on cisca, an all-zero illegal word on riscf — both raise
  /// the architecture's invalid/illegal-instruction exception, as the
  /// real Linux implementations did.
  virtual void bug() = 0;
  /// panic(): explicit software panic (OS self-detected error).
  virtual void panic() = 0;
  /// Increment a per-CPU counter through the architecture's per-CPU
  /// addressing idiom: an FS-segment-relative access on cisca (so FS/GS
  /// register corruption eventually #GPs, paper Section 5.2) and an
  /// SPRG0-based access on riscf (supervisor scratch registers held
  /// per-CPU pointers in real PowerPC kernels).
  virtual void bump_percpu_counter(u32 offset) = 0;
  /// Emit the stack-switching context switch: a function body that takes
  /// (prev_index, next_index), saves callee state on the current stack,
  /// stores SP into tasks[prev].<sp_field>, loads SP from
  /// tasks[next].<sp_field>, restores, and returns on the new stack.
  virtual void define_switch_function(FuncId func, GlobalId tasks,
                                      u32 sp_field) = 0;

  // ---- host-side helpers ----
  /// Seed a fresh task stack in simulated memory so the first switch to it
  /// "returns" into `entry`.  Returns the initial saved SP value to store
  /// in the task struct.  (Boot-loader role; uses the machine endianness.)
  virtual Addr prepare_initial_stack(mem::AddressSpace& space, Addr stack_top,
                                     Addr entry) const = 0;

  /// Finish code generation and produce the image.
  virtual Image finish() = 0;

 protected:
  bool spinlock_checks_ = true;
};

/// The Linux 2.4 spinlock debug magic (paper Figure 13).
constexpr u32 kSpinlockMagic = 0xDEAD4EADu;

/// Offset within the data section where bulk payload arrays begin.  The
/// data-injection campaign samples uniformly over [0, kBulkDataOffset): a
/// fixed-size window on BOTH machines, like the paper's fixed 46,000
/// random locations per platform.  The G4-like kernel's word-per-item
/// structures fill more of this window, which is why its data campaign
/// activates more errors — mostly benign padding hits (the paper's 1.5%%
/// vs 0.5%% activation and 21.7%% vs 66%% manifestation asymmetry).
constexpr u32 kBulkDataOffset = 0x10000;

std::unique_ptr<Backend> make_cisca_backend(Addr code_base, Addr data_base);
std::unique_ptr<Backend> make_riscf_backend(Addr code_base, Addr data_base);

}  // namespace kfi::kir
