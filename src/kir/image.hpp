// Compiled kernel image: machine code, initialized data, and the symbol /
// data-object tables the injection framework navigates.
//
// The symbol table plays the role kernel profiling (kernprof) and
// System.map played in the paper: the code injector picks target functions
// by name and address range, and the data injector picks random locations
// inside the kernel data objects (Section 3.2, STEP 1).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "isa/arch.hpp"
#include "kir/types.hpp"

namespace kfi::kir {

struct FuncSymbol {
  std::string name;
  Addr addr = 0;
  u32 size = 0;  // bytes
};

struct FieldLayout {
  std::string name;
  u32 offset = 0;  // within element
  Width width = Width::kU32;
  u32 storage_bytes = 4;  // bytes the backend actually reserved
};

/// A kernel data object (scalar, array, or struct array) with its final
/// backend-specific layout.
struct DataObject {
  std::string name;
  Addr addr = 0;
  u32 elem_size = 0;   // bytes per element after layout
  u32 count = 1;       // elements
  bool initialized = true;  // false => BSS-like (zeroed)
  /// False for bulk payload arrays (cached blocks, page pool, skb data) —
  /// the analogue of page-cache/kmalloc memory, which lives outside the
  /// kernel's data section that the paper's data campaign targeted.
  bool structural = true;
  std::vector<FieldLayout> fields;  // one entry (unnamed) for scalars/arrays

  u32 size() const { return elem_size * count; }
  const FieldLayout& field(u32 index) const {
    KFI_CHECK(index < fields.size(), "field index out of range");
    return fields[index];
  }
  const FieldLayout& field_named(const std::string& field_name) const {
    for (const auto& f : fields) {
      if (f.name == field_name) return f;
    }
    KFI_CHECK(false, "no field named " + field_name + " in " + name);
    return fields.front();
  }
};

struct Image {
  isa::Arch arch = isa::Arch::kCisca;
  Addr code_base = 0;
  std::vector<u8> code;
  Addr data_base = 0;
  std::vector<u8> data;  // initialized image; BSS tail is zeros
  std::vector<FuncSymbol> functions;
  std::vector<DataObject> objects;

  const FuncSymbol& function(const std::string& name) const;
  const FuncSymbol* find_function(const std::string& name) const;
  /// Function containing the given code address, if any.
  const FuncSymbol* function_at(Addr addr) const;
  const DataObject& object(const std::string& name) const;
  const DataObject* object_at(Addr addr) const;

  u32 data_size() const { return static_cast<u32>(data.size()); }
};

/// A finalized image is immutable after codegen; Machines only ever read
/// it (injections corrupt the copy loaded into simulated memory, never the
/// image itself), so one built image can be shared by any number of
/// concurrently running Machines.
using ImagePtr = std::shared_ptr<const Image>;

}  // namespace kfi::kir
