// Architectural exception causes of the cisca (P4-like) processor.
//
// These correspond to the IA-32 exceptions behind the paper's Table 3 crash
// categories: #PF (classified by the kernel as "NULL pointer" vs. "bad
// paging"), #UD ("invalid instruction"), #GP ("general protection fault"),
// #TS ("invalid TSS"), #DE ("divide error"), #BR ("bounds trap"), plus the
// software-raised kernel panic.  Notably there is NO stack-overflow
// exception — the paper's central P4 observation.
#pragma once

#include <string>

#include "common/types.hpp"

namespace kfi::cisca {

enum class Cause : u32 {
  kNone = 0,
  kDivideError,        // #DE: div/idiv overflow or divide by zero
  kBreakpointTrap,     // int3 reached (unexpected in kernel => bug)
  kBoundsTrap,         // #BR: bound instruction limit violation
  kInvalidOpcode,      // #UD: undefined encoding, incl. ud2 used by BUG()
  kGeneralProtection,  // #GP: segment limit, bad selector, CR0 state, ...
  kPageFault,          // #PF: access to unmapped / protected page
  kInvalidTss,         // #TS: task-return with corrupt nested-task linkage
  kKernelPanic,        // software panic hypercall (panic())
  kSyscall,            // int 0x80: system call entry (not a failure)
  kSyscallReturn,      // int 0x83: return-to-user stub (not a failure)
};

std::string cause_name(Cause cause);

/// True for causes that represent kernel failures rather than the normal
/// syscall entry/exit traps.
bool is_fatal(Cause cause);

}  // namespace kfi::cisca
