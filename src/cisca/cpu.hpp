// Instruction-level interpreter for the cisca (P4-like) processor.
//
// Faithful to the properties the paper's analysis rests on:
//   * variable-length fetch/decode, so corrupted text re-aligns the stream
//     (Figure 14) — the CPU re-fetches and re-decodes from memory on every
//     step, so injected text bits take effect exactly like on hardware;
//   * 8/16/32-bit memory operands with packed kernel data (the reason data
//     and stack errors manifest more than on the G4);
//   * IA-32-style exceptions with NO stack-overflow report: a corrupted ESP
//     simply keeps running until something faults (Section 5.1);
//   * protected-mode state in CR0 and selector-checked FS/GS segments, so
//     system-register flips surface as #GP/#TS exactly as in Section 5.2;
//   * a cycle counter standing in for the performance registers used to
//     measure cycles-to-crash.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cisca/cause.hpp"
#include "cisca/decode.hpp"
#include "cisca/regs.hpp"
#include "isa/cpu.hpp"
#include "mem/address_space.hpp"

namespace kfi::cisca {

/// One descriptor in the simulated GDT: valid FS/GS selectors map to a
/// base+limit window; anything else #GPs on use.
struct SegDescriptor {
  u32 selector;
  u32 base;
  u32 limit;  // highest valid offset
};

class CiscaSysRegs;  // defined in sysregs.hpp
struct CiscaOps;     // per-op execute handlers (cpu.cpp)

class CiscaCpu final : public isa::CpuCore {
 public:
  /// Optional hardware extension from the paper's Section 7 proposal:
  /// extend PUSH/POP semantics to check ESP against the current kernel
  /// stack bounds and raise an explicit fault.  Off by default (faithful
  /// P4); the ablation bench turns it on.
  struct Options {
    bool stack_limit_check = false;
  };

  explicit CiscaCpu(mem::AddressSpace& space) : CiscaCpu(space, Options{}) {}
  CiscaCpu(mem::AddressSpace& space, Options options);
  ~CiscaCpu() override;

  CiscaCpu(const CiscaCpu&) = delete;
  CiscaCpu& operator=(const CiscaCpu&) = delete;

  // isa::CpuCore
  isa::StepResult step() override;
  Addr pc() const override { return regs_.eip; }
  void set_pc(Addr pc) override { regs_.eip = pc; }
  Cycles cycles() const override { return cycles_; }
  void add_cycles(Cycles n) override { cycles_ += n; }
  isa::DebugUnit& debug() override { return debug_; }
  isa::SystemRegisterBank& sysregs() override;
  Addr stack_pointer() const override { return regs_.gpr[kEsp]; }
  isa::CpuSnapshot snapshot() const override;
  void restore(const isa::CpuSnapshot& snap) override;
  void set_decode_cache_enabled(bool enabled) override;
  bool decode_cache_enabled() const override { return dcache_enabled_; }
  isa::DecodeCacheStats decode_cache_stats() const override {
    return dcache_stats_;
  }
  isa::StepResult step_block(const isa::BlockLimits& limits,
                             u64* consumed) override;
  void set_superblocks_enabled(bool enabled) override;
  bool superblocks_enabled() const override { return sblocks_enabled_; }
  isa::SuperblockStats superblock_stats() const override { return sb_stats_; }
  void set_trace_sink(trace::TraceSink* sink) override { sink_ = sink; }
  trace::RegSlot sysreg_slot(u32 index) const override;

  RegFile& regs() { return regs_; }
  const RegFile& regs() const { return regs_; }
  mem::AddressSpace& space() { return space_; }

  /// Set the bounds used by the optional PUSH/POP stack-limit extension.
  void set_stack_bounds(Addr lo, Addr hi) {
    stack_lo_ = lo;
    stack_hi_ = hi;
  }
  const Options& options() const { return options_; }

  /// Decode (without executing) the instruction at `pc`; diagnostics only.
  DecodeResult decode_at(Addr pc) const;

 private:
  friend class CiscaSysRegs;
  friend struct CiscaOps;
  struct TrapException {
    isa::Trap trap;
  };

  /// Superblock cache: straight-line runs of predecoded instructions plus
  /// their pre-resolved execute handlers, direct-mapped on the physical
  /// address of the first byte.  A block never leaves its first physical
  /// page (each member instruction's full decode window must fit in the
  /// page, so re-aligned corrupted streams still decode identically), and
  /// is valid only while that page's write version is unchanged — the
  /// same lazy invalidation as the decode cache, so stores, injected
  /// flips, and reboots into cached code force a rebuild.
  struct BlockInsn {
    Insn insn{};
    void (*fn)(CiscaCpu&, const Insn&) = nullptr;
    u32 phys = kNoPage;  // first-byte physical address (fetch-hook span)
  };
  struct Superblock {
    u32 tag = kNoPage;  // physical address of the first byte
    Addr vpc = 0;       // virtual pc (guards against phys aliasing)
    u32 page = 0;
    u64 ver = 0;
    std::vector<BlockInsn> insns;
  };
  static constexpr u32 kSuperblockEntries = 2048;
  static constexpr u32 kMaxBlockInsns = 32;

  /// (Re)build the block starting at vpc/phys0 in place; false when no
  /// block can start here (page-end decode window, invalid or faulting
  /// first instruction) and the caller must single-step.
  bool build_block(Superblock& blk, Addr vpc, u32 phys0);
  static bool block_terminator(const Insn& insn);

  /// Predecoded-instruction cache: direct-mapped on the physical address
  /// of the first instruction byte.  An entry is valid only while the
  /// write versions of every page it decoded from are unchanged (variable-
  /// length instructions can straddle two non-contiguous physical pages),
  /// so any store, injected flip, or reboot that touches cached code makes
  /// the entry re-decode — exactly the invalidation hardware trace caches
  /// need, done lazily with no store-side hooks.
  struct DecodeCacheEntry {
    u32 tag = kNoPage;    // physical address of the first byte
    Addr vpc = 0;         // virtual pc (guards against phys aliasing)
    u32 page2 = kNoPage;  // second physical page, when straddling
    u64 ver1 = 0;
    u64 ver2 = 0;
    DecodeResult dec{};
    u8 byte0 = 0;  // first window byte (the #UD aux on invalid opcodes)
  };
  static constexpr u32 kDecodeCacheEntries = 4096;

  /// Fetch + decode at `pc`, through the cache when enabled.  The returned
  /// reference is valid until the next call.
  const DecodeCacheEntry& decode_cached(Addr pc);

  [[noreturn]] void raise(Cause cause, Addr addr = 0, bool has_addr = false,
                          u32 aux = 0);
  FetchWindow fetch_window(Addr pc) const;
  u32 effective_addr(const MemOperand& mem);
  u32 resolve_seg_base(SegOverride seg, u32 offset);
  u32 read_mem(Addr addr, u8 width);
  void write_mem(Addr addr, u8 width, u32 value);
  u32 read_operand(const Operand& op, u8 width);
  void write_operand(const Operand& op, u8 width, u32 value);
  u32 read_reg(u8 reg, u8 width) const;
  void write_reg(u8 reg, u8 width, u32 value);
  void push32(u32 value);
  u32 pop32();
  void check_stack_extension(Addr new_esp);
  void set_flags_logic(u32 result, u8 width);
  void set_flags_add(u64 a, u64 b, u64 carry_in, u8 width);
  void set_flags_sub(u64 a, u64 b, u64 borrow_in, u8 width);
  bool eval_cond(u8 cond) const;
  void execute(const Insn& insn);

  // Trace-hook shorthands: one predictable null check when tracing is off,
  // mirroring the current_result_ guard on debug-access recording.
  void trace_rr(trace::RegSlot slot) const {
    if (sink_ != nullptr) sink_->on_reg_read(slot);
  }
  void trace_rw(trace::RegSlot slot) {
    if (sink_ != nullptr) sink_->on_reg_write(slot);
  }
  void trace_rm(trace::RegSlot slot) {
    if (sink_ != nullptr) sink_->on_reg_merge(slot);
  }
  void trace_branch() const {
    if (sink_ != nullptr) sink_->on_branch_decision();
  }

  mem::AddressSpace& space_;
  Options options_;
  RegFile regs_;
  isa::DebugUnit debug_;
  Cycles cycles_ = 0;
  isa::StepResult* current_result_ = nullptr;
  trace::TraceSink* sink_ = nullptr;
  Addr stack_lo_ = 0, stack_hi_ = 0;
  bool halted_pending_ = false;
  bool dcache_enabled_ = false;
  std::vector<DecodeCacheEntry> dcache_;  // allocated when enabled
  DecodeCacheEntry dcache_scratch_;       // uncacheable results
  isa::DecodeCacheStats dcache_stats_;
  bool sblocks_enabled_ = false;
  std::vector<Superblock> sblocks_;  // allocated when enabled
  isa::SuperblockStats sb_stats_;
  std::unique_ptr<CiscaSysRegs> sysregs_;
};

/// The simulated GDT entries for FS/GS (fixed at boot, like the kernel's).
const SegDescriptor* lookup_descriptor(u32 selector);

}  // namespace kfi::cisca
