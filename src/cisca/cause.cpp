#include "cisca/cause.hpp"

namespace kfi::cisca {

std::string cause_name(Cause cause) {
  switch (cause) {
    case Cause::kNone: return "none";
    case Cause::kDivideError: return "divide-error";
    case Cause::kBreakpointTrap: return "breakpoint-trap";
    case Cause::kBoundsTrap: return "bounds-trap";
    case Cause::kInvalidOpcode: return "invalid-opcode";
    case Cause::kGeneralProtection: return "general-protection";
    case Cause::kPageFault: return "page-fault";
    case Cause::kInvalidTss: return "invalid-tss";
    case Cause::kKernelPanic: return "kernel-panic";
    case Cause::kSyscall: return "syscall";
    case Cause::kSyscallReturn: return "syscall-return";
  }
  return "unknown";
}

bool is_fatal(Cause cause) {
  switch (cause) {
    case Cause::kNone:
    case Cause::kSyscall:
    case Cause::kSyscallReturn:
      return false;
    default:
      return true;
  }
}

}  // namespace kfi::cisca
