#include "cisca/cpu.hpp"

#include <algorithm>
#include <array>

#include "cisca/sysregs.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"

namespace kfi::cisca {

namespace {

// Fixed GDT: the two data segments the kernel loads into FS and GS at boot
// (per-CPU data windows).  Any other selector value #GPs on use, which is
// how a bit flip in FS/GS eventually crashes — often only after a very
// long latency, because these segments are rarely referenced (the paper
// measured >1G cycles for FS/GS errors).
constexpr SegDescriptor kGdt[] = {
    {0x30, 0xC0003000u, 0x7F},  // FS: per-cpu window
    {0x38, 0xC0003080u, 0x7F},  // GS: per-cpu window
};

constexpr u32 kWidthMask[5] = {0, 0xFFu, 0xFFFFu, 0, 0xFFFFFFFFu};
constexpr u32 kSignBit[5] = {0, 0x80u, 0x8000u, 0, 0x80000000u};

bool parity_even(u32 v) { return (popcount32(v & 0xFF) & 1) == 0; }

constexpr size_t kNumOps = static_cast<size_t>(Op::kFwait) + 1;

}  // namespace

const SegDescriptor* lookup_descriptor(u32 selector) {
  for (const auto& d : kGdt) {
    if (d.selector == selector) return &d;
  }
  return nullptr;
}

CiscaCpu::CiscaCpu(mem::AddressSpace& space, Options options)
    : space_(space), options_(options),
      sysregs_(std::make_unique<CiscaSysRegs>(*this)) {}

CiscaCpu::~CiscaCpu() = default;

isa::SystemRegisterBank& CiscaCpu::sysregs() { return *sysregs_; }

void CiscaCpu::raise(Cause cause, Addr addr, bool has_addr, u32 aux) {
  isa::Trap trap;
  trap.cause = static_cast<u32>(cause);
  trap.pc = regs_.eip;
  trap.addr = addr;
  trap.has_addr = has_addr;
  trap.aux = aux;
  if (cause == Cause::kPageFault) regs_.cr2 = addr;
  throw TrapException{trap};
}

FetchWindow CiscaCpu::fetch_window(Addr pc) const {
  FetchWindow window;
  window.pc = pc;
  // One translation per page touched: fill from the first page, then (only
  // if the window straddles a boundary) from the next.
  const auto tr = space_.translate(pc, 1, mem::Access::kExecute);
  if (!tr.ok()) return window;
  window.phys = tr.phys;
  const u32 in_page = mem::kPageSize - (pc & (mem::kPageSize - 1));
  const u32 first = std::min<u32>(kMaxInsnBytes, in_page);
  space_.phys().read_bytes(tr.phys, window.bytes, first);
  window.valid = static_cast<u8>(first);
  if (first < kMaxInsnBytes) {
    const auto tr2 = space_.translate(pc + first, 1, mem::Access::kExecute);
    if (tr2.ok()) {
      window.phys_page2 = tr2.phys >> mem::kPageShift;
      space_.phys().read_bytes(tr2.phys, window.bytes + first,
                               kMaxInsnBytes - first);
      window.valid = kMaxInsnBytes;
    }
  }
  return window;
}

void CiscaCpu::set_decode_cache_enabled(bool enabled) {
  dcache_enabled_ = enabled;
  if (enabled && dcache_.empty()) {
    dcache_.resize(kDecodeCacheEntries);
  } else if (!enabled) {
    dcache_.clear();
    dcache_.shrink_to_fit();
  }
}

void CiscaCpu::set_superblocks_enabled(bool enabled) {
  sblocks_enabled_ = enabled;
  if (enabled && sblocks_.empty()) {
    sblocks_.resize(kSuperblockEntries);
  } else if (!enabled) {
    sblocks_.clear();
    sblocks_.shrink_to_fit();
  }
}

const CiscaCpu::DecodeCacheEntry& CiscaCpu::decode_cached(Addr pc) {
  if (!dcache_enabled_) {
    const FetchWindow window = fetch_window(pc);
    dcache_scratch_.tag = window.phys;
    dcache_scratch_.page2 = window.phys_page2;
    dcache_scratch_.dec = decode(window);
    dcache_scratch_.byte0 = window.bytes[0];
    return dcache_scratch_;
  }
  // One translation either way; on a hit it also revalidates that pc is
  // still fetchable under the current (boot-time) mapping.
  const auto tr = space_.translate(pc, 1, mem::Access::kExecute);
  if (!tr.ok()) {
    FetchWindow window;  // empty: decode reports a fetch fault at pc
    window.pc = pc;
    dcache_scratch_.tag = kNoPage;
    dcache_scratch_.page2 = kNoPage;
    dcache_scratch_.dec = decode(window);
    dcache_scratch_.byte0 = 0;
    return dcache_scratch_;
  }
  const mem::PhysicalMemory& pm = space_.phys();
  DecodeCacheEntry& entry = dcache_[tr.phys & (kDecodeCacheEntries - 1)];
  if (entry.tag == tr.phys && entry.vpc == pc) {
    const bool fresh =
        entry.ver1 == pm.page_version(tr.phys >> mem::kPageShift) &&
        (entry.page2 == kNoPage ||
         entry.ver2 == pm.page_version(entry.page2));
    if (fresh) {
      ++dcache_stats_.hits;
      return entry;
    }
    ++dcache_stats_.invalidations;
  }
  ++dcache_stats_.misses;
  const FetchWindow window = fetch_window(pc);
  entry.tag = tr.phys;
  entry.vpc = pc;
  entry.page2 = window.phys_page2;
  entry.ver1 = pm.page_version(tr.phys >> mem::kPageShift);
  entry.ver2 = entry.page2 == kNoPage ? 0 : pm.page_version(entry.page2);
  entry.dec = decode(window);
  entry.byte0 = window.bytes[0];
  return entry;
}

DecodeResult CiscaCpu::decode_at(Addr pc) const {
  return decode(fetch_window(pc));
}

u32 CiscaCpu::resolve_seg_base(SegOverride seg, u32 offset) {
  if (seg == SegOverride::kNone) return offset;
  trace_rr(seg == SegOverride::kFs ? kSlotFs : kSlotGs);
  const u32 selector = (seg == SegOverride::kFs) ? regs_.fs : regs_.gs;
  const SegDescriptor* desc = lookup_descriptor(selector);
  if (desc == nullptr) {
    raise(Cause::kGeneralProtection, 0, false, selector);
  }
  if (offset > desc->limit) {
    raise(Cause::kGeneralProtection, 0, false, selector);
  }
  return desc->base + offset;
}

u32 CiscaCpu::effective_addr(const MemOperand& mem) {
  u32 addr = static_cast<u32>(mem.disp);
  if (mem.base != MemOperand::kNoReg) {
    trace_rr(mem.base);
    addr += regs_.gpr[mem.base];
  }
  if (mem.index != MemOperand::kNoReg) {
    trace_rr(mem.index);
    addr += regs_.gpr[mem.index] * mem.scale;
  }
  return resolve_seg_base(mem.seg, addr);
}

u32 CiscaCpu::read_mem(Addr addr, u8 width) {
  const auto tr = space_.translate(addr, width, mem::Access::kRead);
  if (!tr.ok()) raise(Cause::kPageFault, addr, true);
  cycles_ += 2;
  u32 value = 0;
  switch (width) {
    case 1: value = space_.phys().read8(tr.phys); break;
    case 2: value = space_.phys().read16(tr.phys, mem::Endian::kLittle); break;
    case 4: value = space_.phys().read32(tr.phys, mem::Endian::kLittle); break;
    default: KFI_CHECK(false, "bad width");
  }
  if (current_result_ != nullptr && debug_.data_bp_any()) {
    debug_.record_access(addr, width, /*is_write=*/false, *current_result_);
  }
  if (sink_ != nullptr) sink_->on_mem_read(addr, tr.phys, width);
  return value;
}

void CiscaCpu::write_mem(Addr addr, u8 width, u32 value) {
  const auto tr = space_.translate(addr, width, mem::Access::kWrite);
  if (!tr.ok()) {
    // With CR0.WP cleared (a possible register-injection effect), the
    // supervisor ignores write protection, like real IA-32.
    const bool wp_off = !test_bit(regs_.cr0, kCr0WP);
    const bool only_wp = tr.fault->kind == mem::FaultKind::kNoWrite;
    if (!(wp_off && only_wp)) raise(Cause::kPageFault, addr, true);
  }
  const auto rd = space_.translate(addr, width, mem::Access::kRead);
  const u32 phys = rd.ok() ? rd.phys : tr.phys;
  cycles_ += 2;
  switch (width) {
    case 1: space_.phys().write8(phys, static_cast<u8>(value)); break;
    case 2:
      space_.phys().write16(phys, static_cast<u16>(value), mem::Endian::kLittle);
      break;
    case 4: space_.phys().write32(phys, value, mem::Endian::kLittle); break;
    default: KFI_CHECK(false, "bad width");
  }
  if (current_result_ != nullptr && debug_.data_bp_any()) {
    debug_.record_access(addr, width, /*is_write=*/true, *current_result_);
  }
  if (sink_ != nullptr) sink_->on_mem_write(addr, phys, width);
}

u32 CiscaCpu::read_reg(u8 reg, u8 width) const {
  trace_rr(width == 1 && reg >= 4 ? static_cast<trace::RegSlot>(reg - 4)
                                  : static_cast<trace::RegSlot>(reg));
  if (width == 1) {
    // IA-32 r8 numbering: 0-3 = low bytes, 4-7 = high bytes of eax..ebx.
    if (reg < 4) return regs_.gpr[reg] & 0xFF;
    return (regs_.gpr[reg - 4] >> 8) & 0xFF;
  }
  if (width == 2) return regs_.gpr[reg] & 0xFFFF;
  return regs_.gpr[reg];
}

void CiscaCpu::write_reg(u8 reg, u8 width, u32 value) {
  // Sub-register writes preserve the rest of the GPR, so their shadow
  // unions instead of overwriting (whole-register shadow granularity).
  const auto slot = width == 1 && reg >= 4 ? static_cast<trace::RegSlot>(reg - 4)
                                           : static_cast<trace::RegSlot>(reg);
  if (width == 4) {
    trace_rw(slot);
  } else {
    trace_rm(slot);
  }
  if (width == 1) {
    if (reg < 4) {
      regs_.gpr[reg] = (regs_.gpr[reg] & ~0xFFu) | (value & 0xFF);
    } else {
      regs_.gpr[reg - 4] =
          (regs_.gpr[reg - 4] & ~0xFF00u) | ((value & 0xFF) << 8);
    }
    return;
  }
  if (width == 2) {
    regs_.gpr[reg] = (regs_.gpr[reg] & ~0xFFFFu) | (value & 0xFFFF);
    return;
  }
  regs_.gpr[reg] = value;
}

u32 CiscaCpu::read_operand(const Operand& op, u8 width) {
  switch (op.kind) {
    case OperandKind::kReg: return read_reg(op.reg, width);
    case OperandKind::kMem: return read_mem(effective_addr(op.mem), width);
    case OperandKind::kImm: return static_cast<u32>(op.imm) & kWidthMask[width];
    case OperandKind::kNone: break;
  }
  KFI_CHECK(false, "read of empty operand");
  return 0;
}

void CiscaCpu::write_operand(const Operand& op, u8 width, u32 value) {
  switch (op.kind) {
    case OperandKind::kReg: write_reg(op.reg, width, value); return;
    case OperandKind::kMem: write_mem(effective_addr(op.mem), width, value); return;
    default: KFI_CHECK(false, "write to non-lvalue operand");
  }
}

void CiscaCpu::check_stack_extension(Addr new_esp) {
  // Paper Section 7: "stack overflow detection ... could be added by
  // extending the semantics of PUSH and POP instructions ... to enable
  // checking for a memory access beyond the currently allocated stack."
  if (!options_.stack_limit_check || stack_hi_ == 0) return;
  if (new_esp < stack_lo_ || new_esp > stack_hi_) {
    raise(Cause::kGeneralProtection, new_esp, true, /*aux=*/0x5057 /* 'PW' */);
  }
}

void CiscaCpu::push32(u32 value) {
  trace_rr(kEsp);  // address formation; the ESP decrement itself is
                   // self-derived and keeps ESP's own shadow
  const u32 new_esp = regs_.gpr[kEsp] - 4;
  check_stack_extension(new_esp);
  write_mem(new_esp, 4, value);
  regs_.gpr[kEsp] = new_esp;
}

u32 CiscaCpu::pop32() {
  trace_rr(kEsp);
  const u32 esp = regs_.gpr[kEsp];
  check_stack_extension(esp);
  const u32 value = read_mem(esp, 4);
  regs_.gpr[kEsp] = esp + 4;
  return value;
}

void CiscaCpu::set_flags_logic(u32 result, u8 width) {
  const u32 masked = result & kWidthMask[width];
  u32 f = regs_.eflags;
  f = set_bits32(f, kFlagCF, 1, 0);
  f = set_bits32(f, kFlagOF, 1, 0);
  f = set_bits32(f, kFlagZF, 1, masked == 0);
  f = set_bits32(f, kFlagSF, 1, (masked & kSignBit[width]) != 0);
  f = set_bits32(f, kFlagPF, 1, parity_even(masked));
  regs_.eflags = f;
  trace_rm(kSlotEflags);
}

void CiscaCpu::set_flags_add(u64 a, u64 b, u64 carry_in, u8 width) {
  const u64 mask = kWidthMask[width];
  const u64 sum = (a & mask) + (b & mask) + carry_in;
  const u32 masked = static_cast<u32>(sum & mask);
  const bool carry = sum > mask;
  const bool sa = (a & kSignBit[width]) != 0;
  const bool sb = (b & kSignBit[width]) != 0;
  const bool sr = (masked & kSignBit[width]) != 0;
  u32 f = regs_.eflags;
  f = set_bits32(f, kFlagCF, 1, carry);
  f = set_bits32(f, kFlagOF, 1, (sa == sb) && (sr != sa));
  f = set_bits32(f, kFlagZF, 1, masked == 0);
  f = set_bits32(f, kFlagSF, 1, sr);
  f = set_bits32(f, kFlagPF, 1, parity_even(masked));
  regs_.eflags = f;
  trace_rm(kSlotEflags);
}

void CiscaCpu::set_flags_sub(u64 a, u64 b, u64 borrow_in, u8 width) {
  const u64 mask = kWidthMask[width];
  const u64 diff = (a & mask) - (b & mask) - borrow_in;
  const u32 masked = static_cast<u32>(diff & mask);
  const bool borrow = (a & mask) < (b & mask) + borrow_in;
  const bool sa = (a & kSignBit[width]) != 0;
  const bool sb = (b & kSignBit[width]) != 0;
  const bool sr = (masked & kSignBit[width]) != 0;
  u32 f = regs_.eflags;
  f = set_bits32(f, kFlagCF, 1, borrow);
  f = set_bits32(f, kFlagOF, 1, (sa != sb) && (sr != sa));
  f = set_bits32(f, kFlagZF, 1, masked == 0);
  f = set_bits32(f, kFlagSF, 1, sr);
  f = set_bits32(f, kFlagPF, 1, parity_even(masked));
  regs_.eflags = f;
  trace_rm(kSlotEflags);
}

bool CiscaCpu::eval_cond(u8 cond) const {
  trace_rr(kSlotEflags);
  trace_branch();
  const bool cf = test_bit(regs_.eflags, kFlagCF);
  const bool zf = test_bit(regs_.eflags, kFlagZF);
  const bool sf = test_bit(regs_.eflags, kFlagSF);
  const bool of = test_bit(regs_.eflags, kFlagOF);
  const bool pf = test_bit(regs_.eflags, kFlagPF);
  switch (cond & 0x0E) {
    case kCondO: return (cond & 1) ? !of : of;
    case kCondB: return (cond & 1) ? !cf : cf;
    case kCondE: return (cond & 1) ? !zf : zf;
    case kCondBE: return (cond & 1) ? !(cf || zf) : (cf || zf);
    case kCondS: return (cond & 1) ? !sf : sf;
    case kCondP: return (cond & 1) ? !pf : pf;
    case kCondL: return (cond & 1) ? !(sf != of) : (sf != of);
    case kCondLE: return (cond & 1) ? !(zf || sf != of) : (zf || sf != of);
  }
  return false;
}

isa::StepResult CiscaCpu::step() {
  isa::StepResult result;
  if (debug_.check_insn_bp(regs_.eip)) {
    result.status = isa::StepStatus::kInsnBp;
    return result;
  }
  current_result_ = &result;
  try {
    // Loss of protected mode or paging (e.g. a CR0 bit flip) is immediately
    // fatal in a protected-mode kernel: the very next fetch #GPs.
    if (!test_bit(regs_.cr0, kCr0PE) || !test_bit(regs_.cr0, kCr0PG)) {
      raise(Cause::kGeneralProtection, 0, false, regs_.cr0);
    }
    const DecodeCacheEntry& entry = decode_cached(regs_.eip);
    const DecodeResult& dec = entry.dec;
    if (dec.fetch_fault) {
      raise(Cause::kPageFault, dec.fault_addr, true);
    }
    if (dec.insn.op == Op::kInvalid) {
      raise(Cause::kInvalidOpcode, 0, false, entry.byte0);
    }
    if (sink_ != nullptr) {
      // Variable-length fetch: split the byte span across the (up to two)
      // physical pages so injected code bytes are seen wherever they live.
      const u32 len = dec.insn.length;
      const u32 in_page = mem::kPageSize - (entry.tag & (mem::kPageSize - 1));
      const u32 len1 = std::min(len, in_page);
      const u32 phys2 = (len1 < len && entry.page2 != kNoPage)
                            ? (entry.page2 << mem::kPageShift)
                            : 0;
      sink_->on_insn_fetch(kSlotEip, regs_.eip, entry.tag, len1, phys2,
                           phys2 != 0 ? len - len1 : 0);
    }
    execute(dec.insn);
    cycles_ += 1;
  } catch (const TrapException& te) {
    result.status = isa::StepStatus::kTrap;
    result.trap = te.trap;
    cycles_ += 1;
  }
  if (result.status == isa::StepStatus::kOk && halted_pending_) {
    halted_pending_ = false;
    result.status = isa::StepStatus::kHalted;
  }
  current_result_ = nullptr;
  return result;
}

// Per-op execute handlers.  Each is the corresponding case body of the old
// execute() switch, verbatim: fall-through ops advance EIP at the end,
// branch ops assign EIP and charge their taken-branch cycles, raising ops
// throw before any EIP update.  Superblocks dispatch through these
// pointers directly, so the switch is resolved once per block at build
// time instead of once per instruction.
struct CiscaOps {
  static void add(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u32 a = c.read_operand(insn.dst, w);
    const u32 b = c.read_operand(insn.src, w);
    const u32 cin =
        (insn.op == Op::kAdc && test_bit(c.regs_.eflags, kFlagCF)) ? 1 : 0;
    c.set_flags_add(a, b, cin, w);
    c.write_operand(insn.dst, w, a + b + cin);
    c.regs_.eip += insn.length;
  }
  static void sub(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u32 a = c.read_operand(insn.dst, w);
    const u32 b = c.read_operand(insn.src, w);
    const u32 bin =
        (insn.op == Op::kSbb && test_bit(c.regs_.eflags, kFlagCF)) ? 1 : 0;
    c.set_flags_sub(a, b, bin, w);
    c.write_operand(insn.dst, w, a - b - bin);
    c.regs_.eip += insn.length;
  }
  static void cmp(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u32 a = c.read_operand(insn.dst, w);
    const u32 b = c.read_operand(insn.src, w);
    c.set_flags_sub(a, b, 0, w);
    c.regs_.eip += insn.length;
  }
  static void logic(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u32 a = c.read_operand(insn.dst, w);
    const u32 b = c.read_operand(insn.src, w);
    const u32 r = insn.op == Op::kAnd ? (a & b)
                  : insn.op == Op::kOr ? (a | b)
                                       : (a ^ b);
    c.set_flags_logic(r, w);
    c.write_operand(insn.dst, w, r);
    c.regs_.eip += insn.length;
  }
  static void test(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u32 a = c.read_operand(insn.dst, w);
    const u32 b = c.read_operand(insn.src, w);
    c.set_flags_logic(a & b, w);
    c.regs_.eip += insn.length;
  }
  static void mov(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u32 v = c.read_operand(insn.src, w);
    c.write_operand(insn.dst, w, v);
    c.regs_.eip += insn.length;
  }
  static void movzx(CiscaCpu& c, const Insn& insn) {
    const u32 v = c.read_operand(insn.src, insn.src_width);
    c.write_operand(insn.dst, 4, v);
    c.regs_.eip += insn.length;
  }
  static void movsx(CiscaCpu& c, const Insn& insn) {
    const u32 v = c.read_operand(insn.src, insn.src_width);
    c.write_operand(insn.dst, 4,
                    static_cast<u32>(sign_extend32(v, insn.src_width * 8)));
    c.regs_.eip += insn.length;
  }
  static void lea(CiscaCpu& c, const Insn& insn) {
    // lea computes the address without the segment-base contribution.
    u32 addr = static_cast<u32>(insn.src.mem.disp);
    if (insn.src.mem.base != MemOperand::kNoReg) {
      c.trace_rr(insn.src.mem.base);
      addr += c.regs_.gpr[insn.src.mem.base];
    }
    if (insn.src.mem.index != MemOperand::kNoReg) {
      c.trace_rr(insn.src.mem.index);
      addr += c.regs_.gpr[insn.src.mem.index] * insn.src.mem.scale;
    }
    c.write_reg(insn.dst.reg, 4, addr);
    c.regs_.eip += insn.length;
  }
  static void xchg(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u32 a = c.read_operand(insn.dst, w);
    const u32 b = c.read_operand(insn.src, w);
    c.write_operand(insn.dst, w, b);
    c.write_operand(insn.src, w, a);
    c.regs_.eip += insn.length;
  }
  static void inc(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u32 a = c.read_operand(insn.dst, w);
    const bool cf = test_bit(c.regs_.eflags, kFlagCF);
    c.set_flags_add(a, 1, 0, w);
    c.regs_.eflags =
        set_bits32(c.regs_.eflags, kFlagCF, 1, cf);  // inc keeps CF
    c.write_operand(insn.dst, w, a + 1);
    c.regs_.eip += insn.length;
  }
  static void dec(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u32 a = c.read_operand(insn.dst, w);
    const bool cf = test_bit(c.regs_.eflags, kFlagCF);
    c.set_flags_sub(a, 1, 0, w);
    c.regs_.eflags = set_bits32(c.regs_.eflags, kFlagCF, 1, cf);
    c.write_operand(insn.dst, w, a - 1);
    c.regs_.eip += insn.length;
  }
  static void push(CiscaCpu& c, const Insn& insn) {
    const u32 v = insn.dst.kind == OperandKind::kImm
                      ? static_cast<u32>(insn.dst.imm)
                      : c.read_operand(insn.dst, 4);
    c.push32(v);
    c.regs_.eip += insn.length;
  }
  static void pop(CiscaCpu& c, const Insn& insn) {
    const u32 v = c.pop32();
    c.write_operand(insn.dst, 4, v);
    c.regs_.eip += insn.length;
  }
  static void pushf(CiscaCpu& c, const Insn& insn) {
    c.trace_rr(kSlotEflags);
    c.push32(c.regs_.eflags);
    c.regs_.eip += insn.length;
  }
  static void popf(CiscaCpu& c, const Insn& insn) {
    c.regs_.eflags = (c.pop32() & ~0x2u) | 0x2u;
    c.trace_rw(kSlotEflags);
    c.regs_.eip += insn.length;
  }
  static void leave(CiscaCpu& c, const Insn& insn) {
    c.trace_rr(kEbp);
    c.trace_rw(kEsp);
    c.regs_.gpr[kEsp] = c.regs_.gpr[kEbp];
    c.regs_.gpr[kEbp] = c.pop32();
    c.trace_rw(kEbp);
    c.regs_.eip += insn.length;
  }
  static void jcc(CiscaCpu& c, const Insn& insn) {
    const Addr next = c.regs_.eip + insn.length;
    if (c.eval_cond(insn.cond)) {
      c.regs_.eip = next + insn.rel;
      c.cycles_ += 1;
      return;
    }
    c.regs_.eip = next;
  }
  static void jmp(CiscaCpu& c, const Insn& insn) {
    const Addr next = c.regs_.eip + insn.length;
    if (insn.src_width == 4) {  // indirect
      c.regs_.eip = c.read_operand(insn.dst, 4);
      // Only computed targets taint EIP; relative displacements advance
      // it from itself, keeping the PC shadow meaningful.
      c.trace_rw(kSlotEip);
    } else {
      c.regs_.eip = next + insn.rel;
    }
    c.cycles_ += 1;
  }
  static void call(CiscaCpu& c, const Insn& insn) {
    const Addr next = c.regs_.eip + insn.length;
    u32 target;
    if (insn.src_width == 4) {
      target = c.read_operand(insn.dst, 4);
    } else {
      target = next + insn.rel;
    }
    c.push32(next);
    c.regs_.eip = target;
    if (insn.src_width == 4) c.trace_rw(kSlotEip);
    c.cycles_ += 2;
  }
  static void ret(CiscaCpu& c, const Insn& insn) {
    const u32 ra = c.pop32();
    c.regs_.gpr[kEsp] += static_cast<u32>(insn.rel);
    c.regs_.eip = ra;
    c.trace_rw(kSlotEip);
    c.cycles_ += 2;
  }
  static void iret(CiscaCpu& c, const Insn& insn) {
    (void)insn;
    // Nested-task return: with EFLAGS.NT set the CPU attempts a task
    // backlink through the TSS; our kernel never uses hardware tasks, so
    // the linkage is invalid and the CPU raises #TS — precisely the
    // paper's observed consequence of an NT bit flip.
    c.trace_rr(kSlotEflags);
    if (test_bit(c.regs_.eflags, kFlagNT)) {
      c.raise(Cause::kInvalidTss, 0, false, c.regs_.tr);
    }
    const u32 ra = c.pop32();
    c.pop32();  // cs (ignored)
    c.regs_.eflags = (c.pop32() & ~0x2u) | 0x2u;
    c.trace_rw(kSlotEflags);
    c.regs_.eip = ra;
    c.trace_rw(kSlotEip);
    c.cycles_ += 3;
  }
  static void nop(CiscaCpu& c, const Insn& insn) {
    c.regs_.eip += insn.length;
  }
  static void hlt(CiscaCpu& c, const Insn& insn) {
    c.halted_pending_ = true;
    c.regs_.eip += insn.length;
  }
  [[noreturn]] static void ud2(CiscaCpu& c, const Insn& insn) {
    (void)insn;
    c.raise(Cause::kInvalidOpcode, 0, false, 0x0F0B);
  }
  [[noreturn]] static void int3(CiscaCpu& c, const Insn& insn) {
    (void)insn;
    c.raise(Cause::kBreakpointTrap);
  }
  [[noreturn]] static void int_(CiscaCpu& c, const Insn& insn) {
    c.regs_.eip += insn.length;  // trap handlers see the return address
    switch (insn.int_vector) {
      case 0x80: c.raise(Cause::kSyscall);
      case 0x82: c.raise(Cause::kKernelPanic);
      case 0x83: c.raise(Cause::kSyscallReturn);
      default: c.raise(Cause::kGeneralProtection, 0, false, insn.int_vector);
    }
  }
  static void bound(CiscaCpu& c, const Insn& insn) {
    const u32 v = c.read_reg(insn.dst.reg, 4);
    const u32 base = c.effective_addr(insn.src.mem);
    const u32 lo = c.read_mem(base, 4);
    const u32 hi = c.read_mem(base + 4, 4);
    if (static_cast<i32>(v) < static_cast<i32>(lo) ||
        static_cast<i32>(v) > static_cast<i32>(hi)) {
      c.raise(Cause::kBoundsTrap, 0, false, v);
    }
    c.regs_.eip += insn.length;
  }
  static void rotate(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u32 bits = w * 8;
    u32 count = c.read_operand(insn.src, 1) & 31;
    u32 v = c.read_operand(insn.dst, w);
    count %= bits;
    if (count != 0) {
      if (insn.op == Op::kRol || insn.op == Op::kRcl) {
        v = (v << count) | (v >> (bits - count));
      } else {
        v = (v >> count) | (v << (bits - count));
      }
      v &= kWidthMask[w];
      c.regs_.eflags = set_bits32(c.regs_.eflags, kFlagCF, 1, v & 1);
      c.trace_rm(kSlotEflags);
    }
    c.write_operand(insn.dst, w, v);
    c.regs_.eip += insn.length;
  }
  static void shift(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u32 bits = w * 8;
    const u32 count = c.read_operand(insn.src, 1) & 31;
    u32 v = c.read_operand(insn.dst, w);
    if (count != 0) {
      u32 r;
      bool cf;
      if (insn.op == Op::kShl) {
        cf = count <= bits && test_bit(v, bits - count);
        r = count >= bits ? 0 : (v << count);
      } else if (insn.op == Op::kShr) {
        cf = count <= bits && test_bit(v, count - 1);
        r = count >= bits ? 0 : (v >> count);
      } else {
        const i32 sv = static_cast<i32>(sign_extend32(v, bits));
        cf = test_bit(static_cast<u32>(sv >> (count - 1)), 0);
        r = static_cast<u32>(sv >> (count >= bits ? bits - 1 : count));
      }
      r &= kWidthMask[w];
      c.set_flags_logic(r, w);
      c.regs_.eflags = set_bits32(c.regs_.eflags, kFlagCF, 1, cf);
      c.write_operand(insn.dst, w, r);
    }
    c.regs_.eip += insn.length;
  }
  static void not_(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u32 v = c.read_operand(insn.dst, w);
    c.write_operand(insn.dst, w, ~v);
    c.regs_.eip += insn.length;
  }
  static void neg(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u32 v = c.read_operand(insn.dst, w);
    c.set_flags_sub(0, v, 0, w);
    c.write_operand(insn.dst, w, 0u - v);
    c.regs_.eip += insn.length;
  }
  static void mul(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u64 a = c.read_reg(kEax, w);
    const u64 b = c.read_operand(insn.dst, w);
    const u64 r = a * b;
    c.cycles_ += 6;
    if (w == 1) {
      c.write_reg(kEax, 2, static_cast<u32>(r));
    } else {
      c.write_reg(kEax, w, static_cast<u32>(r & kWidthMask[w]));
      c.write_reg(kEdx, w, static_cast<u32>((r >> (w * 8)) & kWidthMask[w]));
    }
    const bool high = (r >> (w * 8)) != 0;
    c.regs_.eflags = set_bits32(c.regs_.eflags, kFlagCF, 1, high);
    c.regs_.eflags = set_bits32(c.regs_.eflags, kFlagOF, 1, high);
    c.trace_rm(kSlotEflags);
    c.regs_.eip += insn.length;
  }
  static void imul(CiscaCpu& c, const Insn& insn) {
    if (insn.src_width == 4 && insn.dst.kind == OperandKind::kReg) {
      // 3-operand form: dst = src * imm.
      const i64 r =
          static_cast<i64>(static_cast<i32>(c.read_operand(insn.src, 4))) *
          insn.rel;
      c.write_reg(insn.dst.reg, 4, static_cast<u32>(r));
      c.cycles_ += 6;
      c.regs_.eip += insn.length;
      return;
    }
    const i64 a = static_cast<i32>(c.read_operand(insn.dst, 4));
    const i64 b = static_cast<i32>(c.read_operand(insn.src, 4));
    c.write_reg(insn.dst.reg, 4, static_cast<u32>(a * b));
    c.cycles_ += 6;
    c.regs_.eip += insn.length;
  }
  static void div(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    const u32 divisor = c.read_operand(insn.dst, w);
    c.cycles_ += 20;
    if (divisor == 0) c.raise(Cause::kDivideError);
    if (w == 4) {
      c.trace_rr(kEdx);
      c.trace_rr(kEax);
      const u64 dividend =
          (static_cast<u64>(c.regs_.gpr[kEdx]) << 32) | c.regs_.gpr[kEax];
      if (insn.op == Op::kDiv) {
        const u64 q = dividend / divisor;
        if (q > 0xFFFFFFFFULL) c.raise(Cause::kDivideError);
        c.regs_.gpr[kEax] = static_cast<u32>(q);
        c.regs_.gpr[kEdx] = static_cast<u32>(dividend % divisor);
      } else {
        const i64 sdividend = static_cast<i64>(dividend);
        const i64 sdiv = static_cast<i32>(divisor);
        const i64 q = sdividend / sdiv;
        if (q > 0x7FFFFFFFLL || q < -0x80000000LL) c.raise(Cause::kDivideError);
        c.regs_.gpr[kEax] = static_cast<u32>(q);
        c.regs_.gpr[kEdx] = static_cast<u32>(sdividend % sdiv);
      }
      c.trace_rw(kEax);
      c.trace_rw(kEdx);
    } else {
      const u32 dividend = c.read_reg(kEax, 2) | (c.read_reg(kEdx, 2) << 16);
      const u32 q = dividend / divisor;
      if (q > kWidthMask[w]) c.raise(Cause::kDivideError);
      c.write_reg(kEax, w, q);
      c.write_reg(kEdx, w, dividend % divisor);
    }
    c.regs_.eip += insn.length;
  }
  static void cwde(CiscaCpu& c, const Insn& insn) {
    c.trace_rr(kEax);
    c.trace_rw(kEax);
    c.regs_.gpr[kEax] =
        static_cast<u32>(sign_extend32(c.regs_.gpr[kEax] & 0xFFFF, 16));
    c.regs_.eip += insn.length;
  }
  static void cdq(CiscaCpu& c, const Insn& insn) {
    c.trace_rr(kEax);
    c.trace_rw(kEdx);
    c.regs_.gpr[kEdx] = (c.regs_.gpr[kEax] & 0x80000000u) ? 0xFFFFFFFFu : 0;
    c.regs_.eip += insn.length;
  }
  static void jecxz(CiscaCpu& c, const Insn& insn) {
    const Addr next = c.regs_.eip + insn.length;
    c.trace_rr(kEcx);
    c.trace_branch();
    if (c.regs_.gpr[kEcx] == 0) {
      c.regs_.eip = next + insn.rel;
      c.cycles_ += 1;
      return;
    }
    c.regs_.eip = next;
  }
  static void loop(CiscaCpu& c, const Insn& insn) {
    const Addr next = c.regs_.eip + insn.length;
    c.trace_rr(kEcx);
    c.regs_.gpr[kEcx] -= 1;
    c.trace_rw(kEcx);
    bool take = c.regs_.gpr[kEcx] != 0;
    if (insn.src_width == 1) {  // loope / loopne
      const bool zf = test_bit(c.regs_.eflags, kFlagZF);
      c.trace_rr(kSlotEflags);
      take = take && (insn.cond == 1 ? zf : !zf);
    }
    c.trace_branch();
    if (take) {
      c.regs_.eip = next + insn.rel;
      c.cycles_ += 1;
      return;
    }
    c.regs_.eip = next;
  }
  static void mov_from_cr(CiscaCpu& c, const Insn& insn) {
    u32 v = 0;
    switch (insn.src.reg) {
      case 0: v = c.regs_.cr0; c.trace_rr(kSlotCr0); break;
      case 2: v = c.regs_.cr2; c.trace_rr(kSlotCr2); break;
      case 3: v = c.regs_.cr3; c.trace_rr(kSlotCr3); break;
      case 4: v = c.regs_.cr4; c.trace_rr(kSlotCr4); break;
      default: c.raise(Cause::kInvalidOpcode);
    }
    c.write_reg(insn.dst.reg, 4, v);
    c.regs_.eip += insn.length;
  }
  static void mov_to_cr(CiscaCpu& c, const Insn& insn) {
    const u32 v = c.read_operand(insn.src, 4);
    switch (insn.dst.reg) {
      case 0: c.regs_.cr0 = v; c.trace_rw(kSlotCr0); break;
      case 2: c.regs_.cr2 = v; c.trace_rw(kSlotCr2); break;
      case 3: c.regs_.cr3 = v; c.trace_rw(kSlotCr3); break;
      case 4: c.regs_.cr4 = v; c.trace_rw(kSlotCr4); break;
      default: c.raise(Cause::kInvalidOpcode);
    }
    c.regs_.eip += insn.length;
  }
  static void mov_from_seg(CiscaCpu& c, const Insn& insn) {
    c.trace_rr(insn.src.reg == 4 ? kSlotFs : kSlotGs);
    const u32 v = insn.src.reg == 4 ? c.regs_.fs : c.regs_.gs;
    c.write_operand(insn.dst, 2, v);
    c.regs_.eip += insn.length;
  }
  static void mov_to_seg(CiscaCpu& c, const Insn& insn) {
    const u32 v = c.read_operand(insn.src, 2);
    if (insn.dst.reg == 4) {
      c.regs_.fs = v;
      c.trace_rw(kSlotFs);
    } else {
      c.regs_.gs = v;
      c.trace_rw(kSlotGs);
    }
    c.regs_.eip += insn.length;
  }
  static void string(CiscaCpu& c, const Insn& insn) {
    // String ops honor DF and the REP prefixes; REP executes in bounded
    // slices per step (like the interruptible hardware ops) by leaving
    // EIP unchanged until ECX reaches zero (or the REPE/REPNE condition
    // stops a cmps/scas).
    const u8 w = insn.width;
    const u32 delta = test_bit(c.regs_.eflags, kFlagDF)
                          ? static_cast<u32>(-static_cast<i32>(w))
                          : w;
    const bool repeated = insn.rep || insn.repne;
    u32 iterations = repeated ? 16 : 1;
    bool stop = !repeated;
    while (iterations-- > 0) {
      if (repeated) {
        c.trace_rr(kEcx);
        c.trace_branch();
        if (c.regs_.gpr[kEcx] == 0) {
          stop = true;
          break;
        }
      }
      switch (insn.op) {
        case Op::kMovs: {
          c.trace_rr(kEsi);
          c.trace_rr(kEdi);
          const u32 v = c.read_mem(c.regs_.gpr[kEsi], w);
          c.write_mem(c.regs_.gpr[kEdi], w, v);
          c.regs_.gpr[kEsi] += delta;
          c.regs_.gpr[kEdi] += delta;
          break;
        }
        case Op::kStos:
          c.trace_rr(kEdi);
          c.write_mem(c.regs_.gpr[kEdi], w, c.read_reg(kEax, w));
          c.regs_.gpr[kEdi] += delta;
          break;
        case Op::kLods:
          c.trace_rr(kEsi);
          c.write_reg(kEax, w, c.read_mem(c.regs_.gpr[kEsi], w));
          c.regs_.gpr[kEsi] += delta;
          break;
        case Op::kScas: {
          c.trace_rr(kEdi);
          const u32 m = c.read_mem(c.regs_.gpr[kEdi], w);
          c.set_flags_sub(c.read_reg(kEax, w), m, 0, w);
          c.regs_.gpr[kEdi] += delta;
          break;
        }
        case Op::kCmps: {
          c.trace_rr(kEsi);
          c.trace_rr(kEdi);
          const u32 a = c.read_mem(c.regs_.gpr[kEsi], w);
          const u32 b = c.read_mem(c.regs_.gpr[kEdi], w);
          c.set_flags_sub(a, b, 0, w);
          c.regs_.gpr[kEsi] += delta;
          c.regs_.gpr[kEdi] += delta;
          break;
        }
        default:
          break;
      }
      if (repeated) {
        c.regs_.gpr[kEcx] -= 1;
        if (insn.op == Op::kScas || insn.op == Op::kCmps) {
          const bool zf = test_bit(c.regs_.eflags, kFlagZF);
          if ((insn.rep && !zf) || (insn.repne && zf)) {
            stop = true;
            break;
          }
        }
        if (c.regs_.gpr[kEcx] == 0) stop = true;
      }
    }
    if (!stop) return;  // resume the REP at the same EIP next step
    c.regs_.eip += insn.length;
  }
  static void pusha(CiscaCpu& c, const Insn& insn) {
    const u32 saved_esp = c.regs_.gpr[kEsp];
    for (const u8 r : {kEax, kEcx, kEdx, kEbx}) {
      c.trace_rr(r);
      c.push32(c.regs_.gpr[r]);
    }
    c.push32(saved_esp);
    for (const u8 r : {kEbp, kEsi, kEdi}) {
      c.trace_rr(r);
      c.push32(c.regs_.gpr[r]);
    }
    c.regs_.eip += insn.length;
  }
  static void popa(CiscaCpu& c, const Insn& insn) {
    for (const u8 r : {kEdi, kEsi, kEbp}) {
      c.regs_.gpr[r] = c.pop32();
      c.trace_rw(r);
    }
    c.pop32();  // esp image discarded
    for (const u8 r : {kEbx, kEdx, kEcx, kEax}) {
      c.regs_.gpr[r] = c.pop32();
      c.trace_rw(r);
    }
    c.regs_.eip += insn.length;
  }
  static void salc(CiscaCpu& c, const Insn& insn) {
    c.trace_rr(kSlotEflags);
    c.write_reg(kEax, 1, test_bit(c.regs_.eflags, kFlagCF) ? 0xFF : 0x00);
    c.regs_.eip += insn.length;
  }
  static void xlat(CiscaCpu& c, const Insn& insn) {
    c.trace_rr(kEbx);
    c.write_reg(kEax, 1,
                c.read_mem(c.regs_.gpr[kEbx] + c.read_reg(kEax, 1), 1));
    c.regs_.eip += insn.length;
  }
  static void clc(CiscaCpu& c, const Insn& insn) {
    c.regs_.eflags = set_bits32(c.regs_.eflags, kFlagCF, 1, 0);
    c.regs_.eip += insn.length;
  }
  static void stc(CiscaCpu& c, const Insn& insn) {
    c.regs_.eflags = set_bits32(c.regs_.eflags, kFlagCF, 1, 1);
    c.regs_.eip += insn.length;
  }
  static void cmc(CiscaCpu& c, const Insn& insn) {
    c.regs_.eflags ^= 1u << kFlagCF;
    c.regs_.eip += insn.length;
  }
  static void cld(CiscaCpu& c, const Insn& insn) {
    c.regs_.eflags = set_bits32(c.regs_.eflags, kFlagDF, 1, 0);
    c.regs_.eip += insn.length;
  }
  static void std(CiscaCpu& c, const Insn& insn) {
    c.regs_.eflags = set_bits32(c.regs_.eflags, kFlagDF, 1, 1);
    c.regs_.eip += insn.length;
  }
  static void cli(CiscaCpu& c, const Insn& insn) {
    c.regs_.eflags = set_bits32(c.regs_.eflags, kFlagIF, 1, 0);
    c.regs_.eip += insn.length;
  }
  static void sti(CiscaCpu& c, const Insn& insn) {
    c.regs_.eflags = set_bits32(c.regs_.eflags, kFlagIF, 1, 1);
    c.regs_.eip += insn.length;
  }
  static void fpu(CiscaCpu& c, const Insn& insn) {
    // x87 with a memory operand touches memory (and can fault); the FP
    // register file itself is not modeled.
    if (insn.dst.kind == OperandKind::kMem) {
      c.read_mem(c.effective_addr(insn.dst.mem), 4);
    }
    c.cycles_ += 3;
    c.regs_.eip += insn.length;
  }
  static void enter(CiscaCpu& c, const Insn& insn) {
    c.trace_rr(kEbp);
    c.push32(c.regs_.gpr[kEbp]);
    c.trace_rr(kEsp);
    c.regs_.gpr[kEbp] = c.regs_.gpr[kEsp];
    c.trace_rw(kEbp);
    c.regs_.gpr[kEsp] -= static_cast<u32>(insn.rel);
    c.regs_.eip += insn.length;
  }
  static void retf(CiscaCpu& c, const Insn& insn) {
    const u32 ra = c.pop32();
    c.pop32();  // cs selector (garbage here)
    c.regs_.gpr[kEsp] += static_cast<u32>(insn.rel);
    c.regs_.eip = ra;
    c.trace_rw(kSlotEip);
    c.cycles_ += 3;
  }
  static void into(CiscaCpu& c, const Insn& insn) {
    c.trace_rr(kSlotEflags);
    if (test_bit(c.regs_.eflags, kFlagOF)) c.raise(Cause::kBoundsTrap);
    c.regs_.eip += insn.length;
  }
  [[noreturn]] static void far(CiscaCpu& c, const Insn& insn) {
    (void)insn;
    // Far transfers load a code selector; anything reached through a
    // corrupted stream carries a garbage selector: #GP.
    c.raise(Cause::kGeneralProtection, 0, false, 0xFA12);
  }
  static void aam(CiscaCpu& c, const Insn& insn) {
    const u32 divisor = static_cast<u32>(insn.src.imm) & 0xFF;
    if (divisor == 0) c.raise(Cause::kDivideError);
    const u32 al = c.read_reg(kEax, 1);
    c.write_reg(kEax, 2, ((al / divisor) << 8) | (al % divisor));
    c.regs_.eip += insn.length;
  }
  static void aad(CiscaCpu& c, const Insn& insn) {
    const u32 mult = static_cast<u32>(insn.src.imm) & 0xFF;
    const u32 ax = c.read_reg(kEax, 2);
    c.write_reg(kEax, 2, ((ax >> 8) * mult + (ax & 0xFF)) & 0xFF);
    c.regs_.eip += insn.length;
  }
  static void arpl(CiscaCpu& c, const Insn& insn) {
    c.cycles_ += 1;  // flat segments: no modeled effect
    c.regs_.eip += insn.length;
  }
  static void insouts(CiscaCpu& c, const Insn& insn) {
    const u8 w = insn.width;
    if (insn.src_width == 1) {
      c.trace_rr(kEsi);
      c.read_mem(c.regs_.gpr[kEsi], w);  // outs reads [esi]
      c.regs_.gpr[kEsi] += w;
    } else {
      c.trace_rr(kEdi);
      c.write_mem(c.regs_.gpr[kEdi], w, 0);  // ins writes port data to [edi]
      c.regs_.gpr[kEdi] += w;
    }
    c.cycles_ += 10;
    c.regs_.eip += insn.length;
  }
  static void inout(CiscaCpu& c, const Insn& insn) {
    c.cycles_ += 20;  // port I/O: no devices behind it here
    c.regs_.eip += insn.length;
  }
  [[noreturn]] static void invalid(CiscaCpu& c, const Insn& insn) {
    (void)insn;
    c.raise(Cause::kInvalidOpcode);
  }
};

namespace {

using OpFn = void (*)(CiscaCpu&, const Insn&);

const std::array<OpFn, kNumOps>& op_table() {
  static const std::array<OpFn, kNumOps> table = [] {
    std::array<OpFn, kNumOps> t{};
    auto set = [&t](Op op, OpFn fn) { t[static_cast<size_t>(op)] = fn; };
    set(Op::kInvalid, &CiscaOps::invalid);
    set(Op::kAdd, &CiscaOps::add);
    set(Op::kAdc, &CiscaOps::add);
    set(Op::kSub, &CiscaOps::sub);
    set(Op::kSbb, &CiscaOps::sub);
    set(Op::kCmp, &CiscaOps::cmp);
    set(Op::kAnd, &CiscaOps::logic);
    set(Op::kOr, &CiscaOps::logic);
    set(Op::kXor, &CiscaOps::logic);
    set(Op::kTest, &CiscaOps::test);
    set(Op::kMov, &CiscaOps::mov);
    set(Op::kMovzx, &CiscaOps::movzx);
    set(Op::kMovsx, &CiscaOps::movsx);
    set(Op::kLea, &CiscaOps::lea);
    set(Op::kXchg, &CiscaOps::xchg);
    set(Op::kInc, &CiscaOps::inc);
    set(Op::kDec, &CiscaOps::dec);
    set(Op::kPush, &CiscaOps::push);
    set(Op::kPop, &CiscaOps::pop);
    set(Op::kPushf, &CiscaOps::pushf);
    set(Op::kPopf, &CiscaOps::popf);
    set(Op::kLeave, &CiscaOps::leave);
    set(Op::kJcc, &CiscaOps::jcc);
    set(Op::kJmp, &CiscaOps::jmp);
    set(Op::kCall, &CiscaOps::call);
    set(Op::kRet, &CiscaOps::ret);
    set(Op::kIret, &CiscaOps::iret);
    set(Op::kNop, &CiscaOps::nop);
    set(Op::kHlt, &CiscaOps::hlt);
    set(Op::kUd2, &CiscaOps::ud2);
    set(Op::kInt, &CiscaOps::int_);
    set(Op::kInt3, &CiscaOps::int3);
    set(Op::kBound, &CiscaOps::bound);
    set(Op::kRol, &CiscaOps::rotate);
    set(Op::kRor, &CiscaOps::rotate);
    set(Op::kRcl, &CiscaOps::rotate);
    set(Op::kRcr, &CiscaOps::rotate);
    set(Op::kShl, &CiscaOps::shift);
    set(Op::kShr, &CiscaOps::shift);
    set(Op::kSar, &CiscaOps::shift);
    set(Op::kNot, &CiscaOps::not_);
    set(Op::kNeg, &CiscaOps::neg);
    set(Op::kMul, &CiscaOps::mul);
    set(Op::kImul, &CiscaOps::imul);
    set(Op::kDiv, &CiscaOps::div);
    set(Op::kIdiv, &CiscaOps::div);
    set(Op::kCwde, &CiscaOps::cwde);
    set(Op::kCdq, &CiscaOps::cdq);
    set(Op::kJecxz, &CiscaOps::jecxz);
    set(Op::kLoop, &CiscaOps::loop);
    set(Op::kMovFromCr, &CiscaOps::mov_from_cr);
    set(Op::kMovToCr, &CiscaOps::mov_to_cr);
    set(Op::kMovFromSeg, &CiscaOps::mov_from_seg);
    set(Op::kMovToSeg, &CiscaOps::mov_to_seg);
    set(Op::kMovs, &CiscaOps::string);
    set(Op::kCmps, &CiscaOps::string);
    set(Op::kStos, &CiscaOps::string);
    set(Op::kLods, &CiscaOps::string);
    set(Op::kScas, &CiscaOps::string);
    set(Op::kPusha, &CiscaOps::pusha);
    set(Op::kPopa, &CiscaOps::popa);
    set(Op::kSalc, &CiscaOps::salc);
    set(Op::kXlat, &CiscaOps::xlat);
    set(Op::kClc, &CiscaOps::clc);
    set(Op::kStc, &CiscaOps::stc);
    set(Op::kCmc, &CiscaOps::cmc);
    set(Op::kCld, &CiscaOps::cld);
    set(Op::kStd, &CiscaOps::std);
    set(Op::kCli, &CiscaOps::cli);
    set(Op::kSti, &CiscaOps::sti);
    set(Op::kFpu, &CiscaOps::fpu);
    set(Op::kEnter, &CiscaOps::enter);
    set(Op::kRetf, &CiscaOps::retf);
    set(Op::kInto, &CiscaOps::into);
    set(Op::kJmpFar, &CiscaOps::far);
    set(Op::kCallFar, &CiscaOps::far);
    set(Op::kAam, &CiscaOps::aam);
    set(Op::kAad, &CiscaOps::aad);
    set(Op::kArpl, &CiscaOps::arpl);
    set(Op::kInsOuts, &CiscaOps::insouts);
    set(Op::kInOut, &CiscaOps::inout);
    set(Op::kFwait, &CiscaOps::nop);
    for (const OpFn fn : t) {
      KFI_CHECK(fn != nullptr, "cisca op handler table incomplete");
    }
    return t;
  }();
  return table;
}

}  // namespace

void CiscaCpu::execute(const Insn& insn) {
  op_table()[static_cast<size_t>(insn.op)](*this, insn);
}

bool CiscaCpu::block_terminator(const Insn& insn) {
  switch (insn.op) {
    // Control transfers (and REP string slices, which may repeat at the
    // same EIP) end the straight-line run.
    case Op::kJcc: case Op::kJmp: case Op::kCall: case Op::kRet:
    case Op::kIret: case Op::kRetf: case Op::kJmpFar: case Op::kCallFar:
    case Op::kJecxz: case Op::kLoop:
    case Op::kMovs: case Op::kCmps: case Op::kStos: case Op::kLods:
    case Op::kScas:
    // Syscall/privilege transitions and halts hand control to the kernel
    // glue between steps.
    case Op::kInt: case Op::kInt3: case Op::kUd2: case Op::kHlt:
    // Interrupt-flag and control-register changes alter what the machine
    // loop (timer delivery) and the hoisted per-block CR0 check may
    // observe; they must take effect at a block boundary.
    case Op::kSti: case Op::kCli: case Op::kPopf: case Op::kMovToCr:
      return true;
    default:
      return false;
  }
}

bool CiscaCpu::build_block(Superblock& blk, Addr vpc, u32 phys0) {
  const mem::PhysicalMemory& pm = space_.phys();
  blk.tag = kNoPage;
  blk.insns.clear();
  blk.vpc = vpc;
  blk.page = phys0 >> mem::kPageShift;
  blk.ver = pm.page_version(blk.page);
  Addr pc = vpc;
  u32 phys = phys0;
  while (blk.insns.size() < kMaxBlockInsns) {
    // Conservative page rule: every member instruction's full decode
    // window must fit in the block's page, so the block depends on exactly
    // one page version and can never hit a mid-instruction fetch fault.
    // Instructions starting in the last (kMaxInsnBytes - 1) bytes of a
    // page single-step instead.
    if (mem::kPageSize - (phys & mem::kPageMask) < kMaxInsnBytes) break;
    FetchWindow window;
    window.pc = pc;
    window.phys = phys;
    pm.read_bytes(phys, window.bytes, kMaxInsnBytes);
    window.valid = kMaxInsnBytes;
    const DecodeResult dec = decode(window);
    // Invalid encodings single-step: the #UD aux byte comes from the
    // decode-cache entry there.
    if (dec.fetch_fault || dec.insn.op == Op::kInvalid) break;
    blk.insns.push_back(
        {dec.insn, op_table()[static_cast<size_t>(dec.insn.op)], phys});
    const bool term = block_terminator(dec.insn);
    pc += dec.insn.length;
    phys += dec.insn.length;
    if (term) break;
  }
  if (blk.insns.empty()) return false;
  blk.tag = phys0;
  return true;
}

isa::StepResult CiscaCpu::step_block(const isa::BlockLimits& limits,
                                     u64* consumed) {
  *consumed = 1;
  if (!sblocks_enabled_) return step();
  // Same order as step(): the breakpoint check precedes everything.  The
  // single-step fallbacks below re-check it harmlessly (a non-matching
  // check has no effect, and a matching one already returned here).
  if (debug_.check_insn_bp(regs_.eip)) {
    isa::StepResult result;
    result.status = isa::StepStatus::kInsnBp;
    return result;
  }
  if (!test_bit(regs_.cr0, kCr0PE) || !test_bit(regs_.cr0, kCr0PG)) {
    return step();  // raises #GP with the step() bookkeeping
  }
  const auto tr = space_.translate(regs_.eip, 1, mem::Access::kExecute);
  if (!tr.ok()) return step();  // unfetchable pc: step() raises
  mem::PhysicalMemory& pm = space_.phys();
  Superblock& blk = sblocks_[tr.phys & (kSuperblockEntries - 1)];
  bool hit = false;
  if (blk.tag == tr.phys && blk.vpc == regs_.eip) {
    if (blk.ver == pm.page_version(blk.page)) {
      hit = true;
    } else {
      ++sb_stats_.invalidations;
    }
  }
  if (hit) {
    ++sb_stats_.hits;
  } else {
    ++sb_stats_.misses;
    if (!build_block(blk, regs_.eip, tr.phys)) return step();
  }
  ++sb_stats_.dispatches;

  isa::StepResult result;
  current_result_ = &result;
  const u64 cycle_bound = limits.cycle_bound == 0 ? ~0ull : limits.cycle_bound;
  const u64 max_insns = limits.max_insns == 0 ? ~0ull : limits.max_insns;
  const u64 ver = blk.ver;
  const u32 page = blk.page;
  const u32 n = static_cast<u32>(blk.insns.size());
  // No instruction arms the breakpoint (only the harness does, between
  // run() calls), so an unarmed unit at dispatch stays unarmed for the
  // whole block and the per-insn check can be skipped.
  const bool bp_armed = debug_.insn_bp_armed();
  u64 done = 0;
  bool bp_stop = false;
  try {
    for (u32 i = 0; i < n; ++i) {
      if (i != 0) {
        // The machine loop's per-iteration order, inlined: step budget,
        // cycle-driven events, then the instruction breakpoint.
        if (done >= max_insns) break;
        if (cycles_ >= cycle_bound) break;
        if (bp_armed && debug_.check_insn_bp(regs_.eip)) {
          result.status = isa::StepStatus::kInsnBp;
          bp_stop = true;
          break;
        }
      }
      const BlockInsn& bi = blk.insns[i];
      if (sink_ != nullptr) {
        // Block instructions never straddle pages (see build_block), so
        // the span is always single-page — same bytes as the step() hook.
        sink_->on_insn_fetch(kSlotEip, regs_.eip, bi.phys, bi.insn.length, 0,
                             0);
      }
      bi.fn(*this, bi.insn);
      cycles_ += 1;
      ++done;
      if (result.num_data_hits > 0) break;
      if (halted_pending_) break;
      // A store into this block's own page (self-modification, injector
      // flip) may have rewritten the remaining cached instructions:
      // re-dispatch so they re-decode from current bytes.
      if (pm.page_version(page) != ver) break;
    }
  } catch (const TrapException& te) {
    result.status = isa::StepStatus::kTrap;
    result.trap = te.trap;
    cycles_ += 1;
  }
  if (result.status == isa::StepStatus::kOk && halted_pending_) {
    halted_pending_ = false;
    result.status = isa::StepStatus::kHalted;
  }
  current_result_ = nullptr;
  sb_stats_.block_insns += done;
  // Executed instructions each stand for one machine-loop iteration; a
  // trap or breakpoint stop consumed one more (exactly what the old
  // per-step loop charged against harness step budgets).
  *consumed =
      result.status == isa::StepStatus::kTrap || bp_stop ? done + 1 : done;
  return result;
}

isa::CpuSnapshot CiscaCpu::snapshot() const {
  isa::CpuSnapshot snap;
  snap.cycles = cycles_;
  const RegFile& r = regs_;
  snap.words = {r.gpr[0], r.gpr[1], r.gpr[2], r.gpr[3], r.gpr[4], r.gpr[5],
                r.gpr[6], r.gpr[7], r.eip,    r.eflags, r.cr0,    r.cr2,
                r.cr3,    r.cr4,    r.dr[0],  r.dr[1],  r.dr[2],  r.dr[3],
                r.dr6,    r.dr7,    r.fs,     r.gs,     r.gdtr_base,
                r.gdtr_limit, r.idtr_base, r.idtr_limit, r.ldtr, r.tr};
  return snap;
}

void CiscaCpu::restore(const isa::CpuSnapshot& snap) {
  KFI_CHECK(snap.words.size() == 28, "cisca snapshot size mismatch");
  RegFile& r = regs_;
  size_t i = 0;
  for (int g = 0; g < 8; ++g) r.gpr[g] = snap.words[i++];
  r.eip = snap.words[i++];
  r.eflags = snap.words[i++];
  r.cr0 = snap.words[i++];
  r.cr2 = snap.words[i++];
  r.cr3 = snap.words[i++];
  r.cr4 = snap.words[i++];
  for (int d = 0; d < 4; ++d) r.dr[d] = snap.words[i++];
  r.dr6 = snap.words[i++];
  r.dr7 = snap.words[i++];
  r.fs = snap.words[i++];
  r.gs = snap.words[i++];
  r.gdtr_base = snap.words[i++];
  r.gdtr_limit = snap.words[i++];
  r.idtr_base = snap.words[i++];
  r.idtr_limit = snap.words[i++];
  r.ldtr = snap.words[i++];
  r.tr = snap.words[i++];
  cycles_ = snap.cycles;
  debug_.clear_all();
  halted_pending_ = false;
}

}  // namespace kfi::cisca
