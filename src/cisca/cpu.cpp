#include "cisca/cpu.hpp"

#include <algorithm>

#include "cisca/sysregs.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"

namespace kfi::cisca {

namespace {

// Fixed GDT: the two data segments the kernel loads into FS and GS at boot
// (per-CPU data windows).  Any other selector value #GPs on use, which is
// how a bit flip in FS/GS eventually crashes — often only after a very
// long latency, because these segments are rarely referenced (the paper
// measured >1G cycles for FS/GS errors).
constexpr SegDescriptor kGdt[] = {
    {0x30, 0xC0003000u, 0x7F},  // FS: per-cpu window
    {0x38, 0xC0003080u, 0x7F},  // GS: per-cpu window
};

constexpr u32 kWidthMask[5] = {0, 0xFFu, 0xFFFFu, 0, 0xFFFFFFFFu};
constexpr u32 kSignBit[5] = {0, 0x80u, 0x8000u, 0, 0x80000000u};

bool parity_even(u32 v) { return (popcount32(v & 0xFF) & 1) == 0; }

}  // namespace

const SegDescriptor* lookup_descriptor(u32 selector) {
  for (const auto& d : kGdt) {
    if (d.selector == selector) return &d;
  }
  return nullptr;
}

CiscaCpu::CiscaCpu(mem::AddressSpace& space, Options options)
    : space_(space), options_(options),
      sysregs_(std::make_unique<CiscaSysRegs>(*this)) {}

CiscaCpu::~CiscaCpu() = default;

isa::SystemRegisterBank& CiscaCpu::sysregs() { return *sysregs_; }

void CiscaCpu::raise(Cause cause, Addr addr, bool has_addr, u32 aux) {
  isa::Trap trap;
  trap.cause = static_cast<u32>(cause);
  trap.pc = regs_.eip;
  trap.addr = addr;
  trap.has_addr = has_addr;
  trap.aux = aux;
  if (cause == Cause::kPageFault) regs_.cr2 = addr;
  throw TrapException{trap};
}

FetchWindow CiscaCpu::fetch_window(Addr pc) const {
  FetchWindow window;
  window.pc = pc;
  // One translation per page touched: fill from the first page, then (only
  // if the window straddles a boundary) from the next.
  const auto tr = space_.translate(pc, 1, mem::Access::kExecute);
  if (!tr.ok()) return window;
  window.phys = tr.phys;
  const u32 in_page = mem::kPageSize - (pc & (mem::kPageSize - 1));
  const u32 first = std::min<u32>(kMaxInsnBytes, in_page);
  space_.phys().read_bytes(tr.phys, window.bytes, first);
  window.valid = static_cast<u8>(first);
  if (first < kMaxInsnBytes) {
    const auto tr2 = space_.translate(pc + first, 1, mem::Access::kExecute);
    if (tr2.ok()) {
      window.phys_page2 = tr2.phys >> mem::kPageShift;
      space_.phys().read_bytes(tr2.phys, window.bytes + first,
                               kMaxInsnBytes - first);
      window.valid = kMaxInsnBytes;
    }
  }
  return window;
}

void CiscaCpu::set_decode_cache_enabled(bool enabled) {
  dcache_enabled_ = enabled;
  if (enabled && dcache_.empty()) {
    dcache_.resize(kDecodeCacheEntries);
  } else if (!enabled) {
    dcache_.clear();
    dcache_.shrink_to_fit();
  }
}

const CiscaCpu::DecodeCacheEntry& CiscaCpu::decode_cached(Addr pc) {
  if (!dcache_enabled_) {
    const FetchWindow window = fetch_window(pc);
    dcache_scratch_.tag = window.phys;
    dcache_scratch_.page2 = window.phys_page2;
    dcache_scratch_.dec = decode(window);
    dcache_scratch_.byte0 = window.bytes[0];
    return dcache_scratch_;
  }
  // One translation either way; on a hit it also revalidates that pc is
  // still fetchable under the current (boot-time) mapping.
  const auto tr = space_.translate(pc, 1, mem::Access::kExecute);
  if (!tr.ok()) {
    FetchWindow window;  // empty: decode reports a fetch fault at pc
    window.pc = pc;
    dcache_scratch_.tag = kNoPage;
    dcache_scratch_.page2 = kNoPage;
    dcache_scratch_.dec = decode(window);
    dcache_scratch_.byte0 = 0;
    return dcache_scratch_;
  }
  const mem::PhysicalMemory& pm = space_.phys();
  DecodeCacheEntry& entry = dcache_[tr.phys & (kDecodeCacheEntries - 1)];
  if (entry.tag == tr.phys && entry.vpc == pc) {
    const bool fresh =
        entry.ver1 == pm.page_version(tr.phys >> mem::kPageShift) &&
        (entry.page2 == kNoPage ||
         entry.ver2 == pm.page_version(entry.page2));
    if (fresh) {
      ++dcache_stats_.hits;
      return entry;
    }
    ++dcache_stats_.invalidations;
  }
  ++dcache_stats_.misses;
  const FetchWindow window = fetch_window(pc);
  entry.tag = tr.phys;
  entry.vpc = pc;
  entry.page2 = window.phys_page2;
  entry.ver1 = pm.page_version(tr.phys >> mem::kPageShift);
  entry.ver2 = entry.page2 == kNoPage ? 0 : pm.page_version(entry.page2);
  entry.dec = decode(window);
  entry.byte0 = window.bytes[0];
  return entry;
}

DecodeResult CiscaCpu::decode_at(Addr pc) const {
  return decode(fetch_window(pc));
}

u32 CiscaCpu::resolve_seg_base(SegOverride seg, u32 offset) {
  if (seg == SegOverride::kNone) return offset;
  trace_rr(seg == SegOverride::kFs ? kSlotFs : kSlotGs);
  const u32 selector = (seg == SegOverride::kFs) ? regs_.fs : regs_.gs;
  const SegDescriptor* desc = lookup_descriptor(selector);
  if (desc == nullptr) {
    raise(Cause::kGeneralProtection, 0, false, selector);
  }
  if (offset > desc->limit) {
    raise(Cause::kGeneralProtection, 0, false, selector);
  }
  return desc->base + offset;
}

u32 CiscaCpu::effective_addr(const MemOperand& mem) {
  u32 addr = static_cast<u32>(mem.disp);
  if (mem.base != MemOperand::kNoReg) {
    trace_rr(mem.base);
    addr += regs_.gpr[mem.base];
  }
  if (mem.index != MemOperand::kNoReg) {
    trace_rr(mem.index);
    addr += regs_.gpr[mem.index] * mem.scale;
  }
  return resolve_seg_base(mem.seg, addr);
}

u32 CiscaCpu::read_mem(Addr addr, u8 width) {
  const auto tr = space_.translate(addr, width, mem::Access::kRead);
  if (!tr.ok()) raise(Cause::kPageFault, addr, true);
  cycles_ += 2;
  u32 value = 0;
  switch (width) {
    case 1: value = space_.phys().read8(tr.phys); break;
    case 2: value = space_.phys().read16(tr.phys, mem::Endian::kLittle); break;
    case 4: value = space_.phys().read32(tr.phys, mem::Endian::kLittle); break;
    default: KFI_CHECK(false, "bad width");
  }
  if (current_result_ != nullptr) {
    debug_.record_access(addr, width, /*is_write=*/false, *current_result_);
  }
  if (sink_ != nullptr) sink_->on_mem_read(addr, tr.phys, width);
  return value;
}

void CiscaCpu::write_mem(Addr addr, u8 width, u32 value) {
  const auto tr = space_.translate(addr, width, mem::Access::kWrite);
  if (!tr.ok()) {
    // With CR0.WP cleared (a possible register-injection effect), the
    // supervisor ignores write protection, like real IA-32.
    const bool wp_off = !test_bit(regs_.cr0, kCr0WP);
    const bool only_wp = tr.fault->kind == mem::FaultKind::kNoWrite;
    if (!(wp_off && only_wp)) raise(Cause::kPageFault, addr, true);
  }
  const auto rd = space_.translate(addr, width, mem::Access::kRead);
  const u32 phys = rd.ok() ? rd.phys : tr.phys;
  cycles_ += 2;
  switch (width) {
    case 1: space_.phys().write8(phys, static_cast<u8>(value)); break;
    case 2:
      space_.phys().write16(phys, static_cast<u16>(value), mem::Endian::kLittle);
      break;
    case 4: space_.phys().write32(phys, value, mem::Endian::kLittle); break;
    default: KFI_CHECK(false, "bad width");
  }
  if (current_result_ != nullptr) {
    debug_.record_access(addr, width, /*is_write=*/true, *current_result_);
  }
  if (sink_ != nullptr) sink_->on_mem_write(addr, phys, width);
}

u32 CiscaCpu::read_reg(u8 reg, u8 width) const {
  trace_rr(width == 1 && reg >= 4 ? static_cast<trace::RegSlot>(reg - 4)
                                  : static_cast<trace::RegSlot>(reg));
  if (width == 1) {
    // IA-32 r8 numbering: 0-3 = low bytes, 4-7 = high bytes of eax..ebx.
    if (reg < 4) return regs_.gpr[reg] & 0xFF;
    return (regs_.gpr[reg - 4] >> 8) & 0xFF;
  }
  if (width == 2) return regs_.gpr[reg] & 0xFFFF;
  return regs_.gpr[reg];
}

void CiscaCpu::write_reg(u8 reg, u8 width, u32 value) {
  // Sub-register writes preserve the rest of the GPR, so their shadow
  // unions instead of overwriting (whole-register shadow granularity).
  const auto slot = width == 1 && reg >= 4 ? static_cast<trace::RegSlot>(reg - 4)
                                           : static_cast<trace::RegSlot>(reg);
  if (width == 4) {
    trace_rw(slot);
  } else {
    trace_rm(slot);
  }
  if (width == 1) {
    if (reg < 4) {
      regs_.gpr[reg] = (regs_.gpr[reg] & ~0xFFu) | (value & 0xFF);
    } else {
      regs_.gpr[reg - 4] =
          (regs_.gpr[reg - 4] & ~0xFF00u) | ((value & 0xFF) << 8);
    }
    return;
  }
  if (width == 2) {
    regs_.gpr[reg] = (regs_.gpr[reg] & ~0xFFFFu) | (value & 0xFFFF);
    return;
  }
  regs_.gpr[reg] = value;
}

u32 CiscaCpu::read_operand(const Operand& op, u8 width) {
  switch (op.kind) {
    case OperandKind::kReg: return read_reg(op.reg, width);
    case OperandKind::kMem: return read_mem(effective_addr(op.mem), width);
    case OperandKind::kImm: return static_cast<u32>(op.imm) & kWidthMask[width];
    case OperandKind::kNone: break;
  }
  KFI_CHECK(false, "read of empty operand");
  return 0;
}

void CiscaCpu::write_operand(const Operand& op, u8 width, u32 value) {
  switch (op.kind) {
    case OperandKind::kReg: write_reg(op.reg, width, value); return;
    case OperandKind::kMem: write_mem(effective_addr(op.mem), width, value); return;
    default: KFI_CHECK(false, "write to non-lvalue operand");
  }
}

void CiscaCpu::check_stack_extension(Addr new_esp) {
  // Paper Section 7: "stack overflow detection ... could be added by
  // extending the semantics of PUSH and POP instructions ... to enable
  // checking for a memory access beyond the currently allocated stack."
  if (!options_.stack_limit_check || stack_hi_ == 0) return;
  if (new_esp < stack_lo_ || new_esp > stack_hi_) {
    raise(Cause::kGeneralProtection, new_esp, true, /*aux=*/0x5057 /* 'PW' */);
  }
}

void CiscaCpu::push32(u32 value) {
  trace_rr(kEsp);  // address formation; the ESP decrement itself is
                   // self-derived and keeps ESP's own shadow
  const u32 new_esp = regs_.gpr[kEsp] - 4;
  check_stack_extension(new_esp);
  write_mem(new_esp, 4, value);
  regs_.gpr[kEsp] = new_esp;
}

u32 CiscaCpu::pop32() {
  trace_rr(kEsp);
  const u32 esp = regs_.gpr[kEsp];
  check_stack_extension(esp);
  const u32 value = read_mem(esp, 4);
  regs_.gpr[kEsp] = esp + 4;
  return value;
}

void CiscaCpu::set_flags_logic(u32 result, u8 width) {
  const u32 masked = result & kWidthMask[width];
  u32 f = regs_.eflags;
  f = set_bits32(f, kFlagCF, 1, 0);
  f = set_bits32(f, kFlagOF, 1, 0);
  f = set_bits32(f, kFlagZF, 1, masked == 0);
  f = set_bits32(f, kFlagSF, 1, (masked & kSignBit[width]) != 0);
  f = set_bits32(f, kFlagPF, 1, parity_even(masked));
  regs_.eflags = f;
  trace_rm(kSlotEflags);
}

void CiscaCpu::set_flags_add(u64 a, u64 b, u64 carry_in, u8 width) {
  const u64 mask = kWidthMask[width];
  const u64 sum = (a & mask) + (b & mask) + carry_in;
  const u32 masked = static_cast<u32>(sum & mask);
  const bool carry = sum > mask;
  const bool sa = (a & kSignBit[width]) != 0;
  const bool sb = (b & kSignBit[width]) != 0;
  const bool sr = (masked & kSignBit[width]) != 0;
  u32 f = regs_.eflags;
  f = set_bits32(f, kFlagCF, 1, carry);
  f = set_bits32(f, kFlagOF, 1, (sa == sb) && (sr != sa));
  f = set_bits32(f, kFlagZF, 1, masked == 0);
  f = set_bits32(f, kFlagSF, 1, sr);
  f = set_bits32(f, kFlagPF, 1, parity_even(masked));
  regs_.eflags = f;
  trace_rm(kSlotEflags);
}

void CiscaCpu::set_flags_sub(u64 a, u64 b, u64 borrow_in, u8 width) {
  const u64 mask = kWidthMask[width];
  const u64 diff = (a & mask) - (b & mask) - borrow_in;
  const u32 masked = static_cast<u32>(diff & mask);
  const bool borrow = (a & mask) < (b & mask) + borrow_in;
  const bool sa = (a & kSignBit[width]) != 0;
  const bool sb = (b & kSignBit[width]) != 0;
  const bool sr = (masked & kSignBit[width]) != 0;
  u32 f = regs_.eflags;
  f = set_bits32(f, kFlagCF, 1, borrow);
  f = set_bits32(f, kFlagOF, 1, (sa != sb) && (sr != sa));
  f = set_bits32(f, kFlagZF, 1, masked == 0);
  f = set_bits32(f, kFlagSF, 1, sr);
  f = set_bits32(f, kFlagPF, 1, parity_even(masked));
  regs_.eflags = f;
  trace_rm(kSlotEflags);
}

bool CiscaCpu::eval_cond(u8 cond) const {
  trace_rr(kSlotEflags);
  trace_branch();
  const bool cf = test_bit(regs_.eflags, kFlagCF);
  const bool zf = test_bit(regs_.eflags, kFlagZF);
  const bool sf = test_bit(regs_.eflags, kFlagSF);
  const bool of = test_bit(regs_.eflags, kFlagOF);
  const bool pf = test_bit(regs_.eflags, kFlagPF);
  switch (cond & 0x0E) {
    case kCondO: return (cond & 1) ? !of : of;
    case kCondB: return (cond & 1) ? !cf : cf;
    case kCondE: return (cond & 1) ? !zf : zf;
    case kCondBE: return (cond & 1) ? !(cf || zf) : (cf || zf);
    case kCondS: return (cond & 1) ? !sf : sf;
    case kCondP: return (cond & 1) ? !pf : pf;
    case kCondL: return (cond & 1) ? !(sf != of) : (sf != of);
    case kCondLE: return (cond & 1) ? !(zf || sf != of) : (zf || sf != of);
  }
  return false;
}

isa::StepResult CiscaCpu::step() {
  isa::StepResult result;
  if (debug_.check_insn_bp(regs_.eip)) {
    result.status = isa::StepStatus::kInsnBp;
    return result;
  }
  current_result_ = &result;
  try {
    // Loss of protected mode or paging (e.g. a CR0 bit flip) is immediately
    // fatal in a protected-mode kernel: the very next fetch #GPs.
    if (!test_bit(regs_.cr0, kCr0PE) || !test_bit(regs_.cr0, kCr0PG)) {
      raise(Cause::kGeneralProtection, 0, false, regs_.cr0);
    }
    const DecodeCacheEntry& entry = decode_cached(regs_.eip);
    const DecodeResult& dec = entry.dec;
    if (dec.fetch_fault) {
      raise(Cause::kPageFault, dec.fault_addr, true);
    }
    if (dec.insn.op == Op::kInvalid) {
      raise(Cause::kInvalidOpcode, 0, false, entry.byte0);
    }
    if (sink_ != nullptr) {
      // Variable-length fetch: split the byte span across the (up to two)
      // physical pages so injected code bytes are seen wherever they live.
      const u32 len = dec.insn.length;
      const u32 in_page = mem::kPageSize - (entry.tag & (mem::kPageSize - 1));
      const u32 len1 = std::min(len, in_page);
      const u32 phys2 = (len1 < len && entry.page2 != kNoPage)
                            ? (entry.page2 << mem::kPageShift)
                            : 0;
      sink_->on_insn_fetch(kSlotEip, regs_.eip, entry.tag, len1, phys2,
                           phys2 != 0 ? len - len1 : 0);
    }
    execute(dec.insn);
    cycles_ += 1;
  } catch (const TrapException& te) {
    result.status = isa::StepStatus::kTrap;
    result.trap = te.trap;
    cycles_ += 1;
  }
  if (result.status == isa::StepStatus::kOk && halted_pending_) {
    halted_pending_ = false;
    result.status = isa::StepStatus::kHalted;
  }
  current_result_ = nullptr;
  return result;
}

void CiscaCpu::execute(const Insn& insn) {
  const Addr next = regs_.eip + insn.length;
  const u8 w = insn.width;

  switch (insn.op) {
    case Op::kAdd: case Op::kAdc: {
      const u32 a = read_operand(insn.dst, w);
      const u32 b = read_operand(insn.src, w);
      const u32 cin = (insn.op == Op::kAdc && test_bit(regs_.eflags, kFlagCF)) ? 1 : 0;
      set_flags_add(a, b, cin, w);
      write_operand(insn.dst, w, a + b + cin);
      break;
    }
    case Op::kSub: case Op::kSbb: {
      const u32 a = read_operand(insn.dst, w);
      const u32 b = read_operand(insn.src, w);
      const u32 bin = (insn.op == Op::kSbb && test_bit(regs_.eflags, kFlagCF)) ? 1 : 0;
      set_flags_sub(a, b, bin, w);
      write_operand(insn.dst, w, a - b - bin);
      break;
    }
    case Op::kCmp: {
      const u32 a = read_operand(insn.dst, w);
      const u32 b = read_operand(insn.src, w);
      set_flags_sub(a, b, 0, w);
      break;
    }
    case Op::kAnd: case Op::kOr: case Op::kXor: {
      const u32 a = read_operand(insn.dst, w);
      const u32 b = read_operand(insn.src, w);
      const u32 r = insn.op == Op::kAnd ? (a & b)
                    : insn.op == Op::kOr ? (a | b)
                                         : (a ^ b);
      set_flags_logic(r, w);
      write_operand(insn.dst, w, r);
      break;
    }
    case Op::kTest: {
      const u32 a = read_operand(insn.dst, w);
      const u32 b = read_operand(insn.src, w);
      set_flags_logic(a & b, w);
      break;
    }
    case Op::kMov: {
      const u32 v = read_operand(insn.src, w);
      write_operand(insn.dst, w, v);
      break;
    }
    case Op::kMovzx: {
      const u32 v = read_operand(insn.src, insn.src_width);
      write_operand(insn.dst, 4, v);
      break;
    }
    case Op::kMovsx: {
      const u32 v = read_operand(insn.src, insn.src_width);
      write_operand(insn.dst, 4,
                    static_cast<u32>(sign_extend32(v, insn.src_width * 8)));
      break;
    }
    case Op::kLea: {
      // lea computes the address without the segment-base contribution.
      u32 addr = static_cast<u32>(insn.src.mem.disp);
      if (insn.src.mem.base != MemOperand::kNoReg) {
        trace_rr(insn.src.mem.base);
        addr += regs_.gpr[insn.src.mem.base];
      }
      if (insn.src.mem.index != MemOperand::kNoReg) {
        trace_rr(insn.src.mem.index);
        addr += regs_.gpr[insn.src.mem.index] * insn.src.mem.scale;
      }
      write_reg(insn.dst.reg, 4, addr);
      break;
    }
    case Op::kXchg: {
      const u32 a = read_operand(insn.dst, w);
      const u32 b = read_operand(insn.src, w);
      write_operand(insn.dst, w, b);
      write_operand(insn.src, w, a);
      break;
    }
    case Op::kInc: {
      const u32 a = read_operand(insn.dst, w);
      const bool cf = test_bit(regs_.eflags, kFlagCF);
      set_flags_add(a, 1, 0, w);
      regs_.eflags = set_bits32(regs_.eflags, kFlagCF, 1, cf);  // inc keeps CF
      write_operand(insn.dst, w, a + 1);
      break;
    }
    case Op::kDec: {
      const u32 a = read_operand(insn.dst, w);
      const bool cf = test_bit(regs_.eflags, kFlagCF);
      set_flags_sub(a, 1, 0, w);
      regs_.eflags = set_bits32(regs_.eflags, kFlagCF, 1, cf);
      write_operand(insn.dst, w, a - 1);
      break;
    }
    case Op::kPush: {
      const u32 v = insn.dst.kind == OperandKind::kImm
                        ? static_cast<u32>(insn.dst.imm)
                        : read_operand(insn.dst, 4);
      push32(v);
      break;
    }
    case Op::kPop: {
      const u32 v = pop32();
      write_operand(insn.dst, 4, v);
      break;
    }
    case Op::kPushf:
      trace_rr(kSlotEflags);
      push32(regs_.eflags);
      break;
    case Op::kPopf:
      regs_.eflags = (pop32() & ~0x2u) | 0x2u;
      trace_rw(kSlotEflags);
      break;
    case Op::kLeave: {
      trace_rr(kEbp);
      trace_rw(kEsp);
      regs_.gpr[kEsp] = regs_.gpr[kEbp];
      regs_.gpr[kEbp] = pop32();
      trace_rw(kEbp);
      break;
    }
    case Op::kJcc:
      if (eval_cond(insn.cond)) {
        regs_.eip = next + insn.rel;
        cycles_ += 1;
        return;
      }
      break;
    case Op::kJmp:
      if (insn.src_width == 4) {  // indirect
        regs_.eip = read_operand(insn.dst, 4);
        // Only computed targets taint EIP; relative displacements advance
        // it from itself, keeping the PC shadow meaningful.
        trace_rw(kSlotEip);
      } else {
        regs_.eip = next + insn.rel;
      }
      cycles_ += 1;
      return;
    case Op::kCall: {
      u32 target;
      if (insn.src_width == 4) {
        target = read_operand(insn.dst, 4);
      } else {
        target = next + insn.rel;
      }
      push32(next);
      regs_.eip = target;
      if (insn.src_width == 4) trace_rw(kSlotEip);
      cycles_ += 2;
      return;
    }
    case Op::kRet: {
      const u32 ra = pop32();
      regs_.gpr[kEsp] += static_cast<u32>(insn.rel);
      regs_.eip = ra;
      trace_rw(kSlotEip);
      cycles_ += 2;
      return;
    }
    case Op::kIret: {
      // Nested-task return: with EFLAGS.NT set the CPU attempts a task
      // backlink through the TSS; our kernel never uses hardware tasks, so
      // the linkage is invalid and the CPU raises #TS — precisely the
      // paper's observed consequence of an NT bit flip.
      trace_rr(kSlotEflags);
      if (test_bit(regs_.eflags, kFlagNT)) {
        raise(Cause::kInvalidTss, 0, false, regs_.tr);
      }
      const u32 ra = pop32();
      pop32();  // cs (ignored)
      regs_.eflags = (pop32() & ~0x2u) | 0x2u;
      trace_rw(kSlotEflags);
      regs_.eip = ra;
      trace_rw(kSlotEip);
      cycles_ += 3;
      return;
    }
    case Op::kNop:
      break;
    case Op::kHlt:
      halted_pending_ = true;
      break;
    case Op::kUd2:
      raise(Cause::kInvalidOpcode, 0, false, 0x0F0B);
    case Op::kInt3:
      raise(Cause::kBreakpointTrap);
    case Op::kInt: {
      regs_.eip = next;  // trap handlers see the return address
      switch (insn.int_vector) {
        case 0x80: raise(Cause::kSyscall);
        case 0x82: raise(Cause::kKernelPanic);
        case 0x83: raise(Cause::kSyscallReturn);
        default: raise(Cause::kGeneralProtection, 0, false, insn.int_vector);
      }
    }
    case Op::kBound: {
      const u32 v = read_reg(insn.dst.reg, 4);
      const u32 base = effective_addr(insn.src.mem);
      const u32 lo = read_mem(base, 4);
      const u32 hi = read_mem(base + 4, 4);
      if (static_cast<i32>(v) < static_cast<i32>(lo) ||
          static_cast<i32>(v) > static_cast<i32>(hi)) {
        raise(Cause::kBoundsTrap, 0, false, v);
      }
      break;
    }
    case Op::kRol: case Op::kRor: case Op::kRcl: case Op::kRcr: {
      const u32 bits = w * 8;
      u32 count = read_operand(insn.src, 1) & 31;
      u32 v = read_operand(insn.dst, w);
      count %= bits;
      if (count != 0) {
        if (insn.op == Op::kRol || insn.op == Op::kRcl) {
          v = (v << count) | (v >> (bits - count));
        } else {
          v = (v >> count) | (v << (bits - count));
        }
        v &= kWidthMask[w];
        regs_.eflags = set_bits32(regs_.eflags, kFlagCF, 1, v & 1);
        trace_rm(kSlotEflags);
      }
      write_operand(insn.dst, w, v);
      break;
    }
    case Op::kShl: case Op::kShr: case Op::kSar: {
      const u32 bits = w * 8;
      const u32 count = read_operand(insn.src, 1) & 31;
      u32 v = read_operand(insn.dst, w);
      if (count != 0) {
        u32 r;
        bool cf;
        if (insn.op == Op::kShl) {
          cf = count <= bits && test_bit(v, bits - count);
          r = count >= bits ? 0 : (v << count);
        } else if (insn.op == Op::kShr) {
          cf = count <= bits && test_bit(v, count - 1);
          r = count >= bits ? 0 : (v >> count);
        } else {
          const i32 sv = static_cast<i32>(
              sign_extend32(v, bits));
          cf = test_bit(static_cast<u32>(sv >> (count - 1)), 0);
          r = static_cast<u32>(sv >> (count >= bits ? bits - 1 : count));
        }
        r &= kWidthMask[w];
        set_flags_logic(r, w);
        regs_.eflags = set_bits32(regs_.eflags, kFlagCF, 1, cf);
        write_operand(insn.dst, w, r);
      }
      break;
    }
    case Op::kNot: {
      const u32 v = read_operand(insn.dst, w);
      write_operand(insn.dst, w, ~v);
      break;
    }
    case Op::kNeg: {
      const u32 v = read_operand(insn.dst, w);
      set_flags_sub(0, v, 0, w);
      write_operand(insn.dst, w, 0u - v);
      break;
    }
    case Op::kMul: {
      const u64 a = read_reg(kEax, w);
      const u64 b = read_operand(insn.dst, w);
      const u64 r = a * b;
      cycles_ += 6;
      if (w == 1) {
        write_reg(kEax, 2, static_cast<u32>(r));
      } else {
        write_reg(kEax, w, static_cast<u32>(r & kWidthMask[w]));
        write_reg(kEdx, w, static_cast<u32>((r >> (w * 8)) & kWidthMask[w]));
      }
      const bool high = (r >> (w * 8)) != 0;
      regs_.eflags = set_bits32(regs_.eflags, kFlagCF, 1, high);
      regs_.eflags = set_bits32(regs_.eflags, kFlagOF, 1, high);
      trace_rm(kSlotEflags);
      break;
    }
    case Op::kImul: {
      if (insn.src_width == 4 && insn.dst.kind == OperandKind::kReg) {
        // 3-operand form: dst = src * imm.
        const i64 r = static_cast<i64>(static_cast<i32>(read_operand(insn.src, 4))) *
                      insn.rel;
        write_reg(insn.dst.reg, 4, static_cast<u32>(r));
        cycles_ += 6;
        break;
      }
      const i64 a = static_cast<i32>(read_operand(insn.dst, 4));
      const i64 b = static_cast<i32>(read_operand(insn.src, 4));
      write_reg(insn.dst.reg, 4, static_cast<u32>(a * b));
      cycles_ += 6;
      break;
    }
    case Op::kDiv: case Op::kIdiv: {
      const u32 divisor = read_operand(insn.dst, w);
      cycles_ += 20;
      if (divisor == 0) raise(Cause::kDivideError);
      if (w == 4) {
        trace_rr(kEdx);
        trace_rr(kEax);
        const u64 dividend =
            (static_cast<u64>(regs_.gpr[kEdx]) << 32) | regs_.gpr[kEax];
        if (insn.op == Op::kDiv) {
          const u64 q = dividend / divisor;
          if (q > 0xFFFFFFFFULL) raise(Cause::kDivideError);
          regs_.gpr[kEax] = static_cast<u32>(q);
          regs_.gpr[kEdx] = static_cast<u32>(dividend % divisor);
        } else {
          const i64 sdividend = static_cast<i64>(dividend);
          const i64 sdiv = static_cast<i32>(divisor);
          const i64 q = sdividend / sdiv;
          if (q > 0x7FFFFFFFLL || q < -0x80000000LL) raise(Cause::kDivideError);
          regs_.gpr[kEax] = static_cast<u32>(q);
          regs_.gpr[kEdx] = static_cast<u32>(sdividend % sdiv);
        }
        trace_rw(kEax);
        trace_rw(kEdx);
      } else {
        const u32 dividend = read_reg(kEax, 2) | (read_reg(kEdx, 2) << 16);
        const u32 q = dividend / divisor;
        if (q > kWidthMask[w]) raise(Cause::kDivideError);
        write_reg(kEax, w, q);
        write_reg(kEdx, w, dividend % divisor);
      }
      break;
    }
    case Op::kCwde:
      trace_rr(kEax);
      trace_rw(kEax);
      regs_.gpr[kEax] = static_cast<u32>(sign_extend32(regs_.gpr[kEax] & 0xFFFF, 16));
      break;
    case Op::kCdq:
      trace_rr(kEax);
      trace_rw(kEdx);
      regs_.gpr[kEdx] = (regs_.gpr[kEax] & 0x80000000u) ? 0xFFFFFFFFu : 0;
      break;
    case Op::kJecxz:
      trace_rr(kEcx);
      trace_branch();
      if (regs_.gpr[kEcx] == 0) {
        regs_.eip = next + insn.rel;
        cycles_ += 1;
        return;
      }
      break;
    case Op::kLoop: {
      trace_rr(kEcx);
      regs_.gpr[kEcx] -= 1;
      trace_rw(kEcx);
      bool take = regs_.gpr[kEcx] != 0;
      if (insn.src_width == 1) {  // loope / loopne
        const bool zf = test_bit(regs_.eflags, kFlagZF);
        trace_rr(kSlotEflags);
        take = take && (insn.cond == 1 ? zf : !zf);
      }
      trace_branch();
      if (take) {
        regs_.eip = next + insn.rel;
        cycles_ += 1;
        return;
      }
      break;
    }
    case Op::kMovFromCr: {
      u32 v = 0;
      switch (insn.src.reg) {
        case 0: v = regs_.cr0; trace_rr(kSlotCr0); break;
        case 2: v = regs_.cr2; trace_rr(kSlotCr2); break;
        case 3: v = regs_.cr3; trace_rr(kSlotCr3); break;
        case 4: v = regs_.cr4; trace_rr(kSlotCr4); break;
        default: raise(Cause::kInvalidOpcode);
      }
      write_reg(insn.dst.reg, 4, v);
      break;
    }
    case Op::kMovToCr: {
      const u32 v = read_operand(insn.src, 4);
      switch (insn.dst.reg) {
        case 0: regs_.cr0 = v; trace_rw(kSlotCr0); break;
        case 2: regs_.cr2 = v; trace_rw(kSlotCr2); break;
        case 3: regs_.cr3 = v; trace_rw(kSlotCr3); break;
        case 4: regs_.cr4 = v; trace_rw(kSlotCr4); break;
        default: raise(Cause::kInvalidOpcode);
      }
      break;
    }
    case Op::kMovFromSeg: {
      trace_rr(insn.src.reg == 4 ? kSlotFs : kSlotGs);
      const u32 v = insn.src.reg == 4 ? regs_.fs : regs_.gs;
      write_operand(insn.dst, 2, v);
      break;
    }
    case Op::kMovToSeg: {
      const u32 v = read_operand(insn.src, 2);
      if (insn.dst.reg == 4) {
        regs_.fs = v;
        trace_rw(kSlotFs);
      } else {
        regs_.gs = v;
        trace_rw(kSlotGs);
      }
      break;
    }
    case Op::kMovs: case Op::kCmps: case Op::kStos: case Op::kLods:
    case Op::kScas: {
      // String ops honor DF and the REP prefixes; REP executes in bounded
      // slices per step (like the interruptible hardware ops) by leaving
      // EIP unchanged until ECX reaches zero (or the REPE/REPNE condition
      // stops a cmps/scas).
      const u32 delta = test_bit(regs_.eflags, kFlagDF)
                            ? static_cast<u32>(-static_cast<i32>(w))
                            : w;
      const bool repeated = insn.rep || insn.repne;
      u32 iterations = repeated ? 16 : 1;
      bool stop = !repeated;
      while (iterations-- > 0) {
        if (repeated) {
          trace_rr(kEcx);
          trace_branch();
          if (regs_.gpr[kEcx] == 0) {
            stop = true;
            break;
          }
        }
        switch (insn.op) {
          case Op::kMovs: {
            trace_rr(kEsi);
            trace_rr(kEdi);
            const u32 v = read_mem(regs_.gpr[kEsi], w);
            write_mem(regs_.gpr[kEdi], w, v);
            regs_.gpr[kEsi] += delta;
            regs_.gpr[kEdi] += delta;
            break;
          }
          case Op::kStos:
            trace_rr(kEdi);
            write_mem(regs_.gpr[kEdi], w, read_reg(kEax, w));
            regs_.gpr[kEdi] += delta;
            break;
          case Op::kLods:
            trace_rr(kEsi);
            write_reg(kEax, w, read_mem(regs_.gpr[kEsi], w));
            regs_.gpr[kEsi] += delta;
            break;
          case Op::kScas: {
            trace_rr(kEdi);
            const u32 m = read_mem(regs_.gpr[kEdi], w);
            set_flags_sub(read_reg(kEax, w), m, 0, w);
            regs_.gpr[kEdi] += delta;
            break;
          }
          case Op::kCmps: {
            trace_rr(kEsi);
            trace_rr(kEdi);
            const u32 a = read_mem(regs_.gpr[kEsi], w);
            const u32 b = read_mem(regs_.gpr[kEdi], w);
            set_flags_sub(a, b, 0, w);
            regs_.gpr[kEsi] += delta;
            regs_.gpr[kEdi] += delta;
            break;
          }
          default:
            break;
        }
        if (repeated) {
          regs_.gpr[kEcx] -= 1;
          if (insn.op == Op::kScas || insn.op == Op::kCmps) {
            const bool zf = test_bit(regs_.eflags, kFlagZF);
            if ((insn.rep && !zf) || (insn.repne && zf)) {
              stop = true;
              break;
            }
          }
          if (regs_.gpr[kEcx] == 0) stop = true;
        }
      }
      if (!stop) return;  // resume the REP at the same EIP next step
      break;
    }
    case Op::kPusha: {
      const u32 saved_esp = regs_.gpr[kEsp];
      for (const u8 r : {kEax, kEcx, kEdx, kEbx}) {
        trace_rr(r);
        push32(regs_.gpr[r]);
      }
      push32(saved_esp);
      for (const u8 r : {kEbp, kEsi, kEdi}) {
        trace_rr(r);
        push32(regs_.gpr[r]);
      }
      break;
    }
    case Op::kPopa: {
      for (const u8 r : {kEdi, kEsi, kEbp}) {
        regs_.gpr[r] = pop32();
        trace_rw(r);
      }
      pop32();  // esp image discarded
      for (const u8 r : {kEbx, kEdx, kEcx, kEax}) {
        regs_.gpr[r] = pop32();
        trace_rw(r);
      }
      break;
    }
    case Op::kSalc:
      trace_rr(kSlotEflags);
      write_reg(kEax, 1, test_bit(regs_.eflags, kFlagCF) ? 0xFF : 0x00);
      break;
    case Op::kXlat:
      trace_rr(kEbx);
      write_reg(kEax, 1,
                read_mem(regs_.gpr[kEbx] + read_reg(kEax, 1), 1));
      break;
    case Op::kClc:
      regs_.eflags = set_bits32(regs_.eflags, kFlagCF, 1, 0);
      break;
    case Op::kStc:
      regs_.eflags = set_bits32(regs_.eflags, kFlagCF, 1, 1);
      break;
    case Op::kCmc:
      regs_.eflags ^= 1u << kFlagCF;
      break;
    case Op::kCld:
      regs_.eflags = set_bits32(regs_.eflags, kFlagDF, 1, 0);
      break;
    case Op::kStd:
      regs_.eflags = set_bits32(regs_.eflags, kFlagDF, 1, 1);
      break;
    case Op::kCli:
      regs_.eflags = set_bits32(regs_.eflags, kFlagIF, 1, 0);
      break;
    case Op::kSti:
      regs_.eflags = set_bits32(regs_.eflags, kFlagIF, 1, 1);
      break;
    case Op::kFpu:
      // x87 with a memory operand touches memory (and can fault); the FP
      // register file itself is not modeled.
      if (insn.dst.kind == OperandKind::kMem) {
        read_mem(effective_addr(insn.dst.mem), 4);
      }
      cycles_ += 3;
      break;
    case Op::kEnter: {
      trace_rr(kEbp);
      push32(regs_.gpr[kEbp]);
      trace_rr(kEsp);
      regs_.gpr[kEbp] = regs_.gpr[kEsp];
      trace_rw(kEbp);
      regs_.gpr[kEsp] -= static_cast<u32>(insn.rel);
      break;
    }
    case Op::kRetf: {
      const u32 ra = pop32();
      pop32();  // cs selector (garbage here)
      regs_.gpr[kEsp] += static_cast<u32>(insn.rel);
      regs_.eip = ra;
      trace_rw(kSlotEip);
      cycles_ += 3;
      return;
    }
    case Op::kInto:
      trace_rr(kSlotEflags);
      if (test_bit(regs_.eflags, kFlagOF)) raise(Cause::kBoundsTrap);
      break;
    case Op::kJmpFar:
    case Op::kCallFar:
      // Far transfers load a code selector; anything reached through a
      // corrupted stream carries a garbage selector: #GP.
      raise(Cause::kGeneralProtection, 0, false, 0xFA12);
    case Op::kAam: {
      const u32 divisor = static_cast<u32>(insn.src.imm) & 0xFF;
      if (divisor == 0) raise(Cause::kDivideError);
      const u32 al = read_reg(kEax, 1);
      write_reg(kEax, 2, ((al / divisor) << 8) | (al % divisor));
      break;
    }
    case Op::kAad: {
      const u32 mult = static_cast<u32>(insn.src.imm) & 0xFF;
      const u32 ax = read_reg(kEax, 2);
      write_reg(kEax, 2, ((ax >> 8) * mult + (ax & 0xFF)) & 0xFF);
      break;
    }
    case Op::kArpl:
      cycles_ += 1;  // flat segments: no modeled effect
      break;
    case Op::kInsOuts: {
      if (insn.src_width == 1) {
        trace_rr(kEsi);
        read_mem(regs_.gpr[kEsi], w);  // outs reads [esi]
        regs_.gpr[kEsi] += w;
      } else {
        trace_rr(kEdi);
        write_mem(regs_.gpr[kEdi], w, 0);  // ins writes port data to [edi]
        regs_.gpr[kEdi] += w;
      }
      cycles_ += 10;
      break;
    }
    case Op::kInOut:
      cycles_ += 20;  // port I/O: no devices behind it here
      break;
    case Op::kFwait:
      break;
    case Op::kInvalid:
      raise(Cause::kInvalidOpcode);
  }
  regs_.eip = next;
}

isa::CpuSnapshot CiscaCpu::snapshot() const {
  isa::CpuSnapshot snap;
  snap.cycles = cycles_;
  const RegFile& r = regs_;
  snap.words = {r.gpr[0], r.gpr[1], r.gpr[2], r.gpr[3], r.gpr[4], r.gpr[5],
                r.gpr[6], r.gpr[7], r.eip,    r.eflags, r.cr0,    r.cr2,
                r.cr3,    r.cr4,    r.dr[0],  r.dr[1],  r.dr[2],  r.dr[3],
                r.dr6,    r.dr7,    r.fs,     r.gs,     r.gdtr_base,
                r.gdtr_limit, r.idtr_base, r.idtr_limit, r.ldtr, r.tr};
  return snap;
}

void CiscaCpu::restore(const isa::CpuSnapshot& snap) {
  KFI_CHECK(snap.words.size() == 28, "cisca snapshot size mismatch");
  RegFile& r = regs_;
  size_t i = 0;
  for (int g = 0; g < 8; ++g) r.gpr[g] = snap.words[i++];
  r.eip = snap.words[i++];
  r.eflags = snap.words[i++];
  r.cr0 = snap.words[i++];
  r.cr2 = snap.words[i++];
  r.cr3 = snap.words[i++];
  r.cr4 = snap.words[i++];
  for (int d = 0; d < 4; ++d) r.dr[d] = snap.words[i++];
  r.dr6 = snap.words[i++];
  r.dr7 = snap.words[i++];
  r.fs = snap.words[i++];
  r.gs = snap.words[i++];
  r.gdtr_base = snap.words[i++];
  r.gdtr_limit = snap.words[i++];
  r.idtr_base = snap.words[i++];
  r.idtr_limit = snap.words[i++];
  r.ldtr = snap.words[i++];
  r.tr = snap.words[i++];
  cycles_ = snap.cycles;
  debug_.clear_all();
  halted_pending_ = false;
}

}  // namespace kfi::cisca
