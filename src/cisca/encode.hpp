// Assembler for the cisca (P4-like) processor.
//
// Emits machine code into a growing byte buffer with label/fixup support.
// Used by the kir CiscaBackend to compile the miniature kernel, by tests to
// build exact instruction sequences (including the paper's Figure 7/8/14
// worked examples), and by the code-injection studies that need known
// encodings to corrupt.
#pragma once

#include <string>
#include <vector>

#include "cisca/insn.hpp"
#include "common/types.hpp"

namespace kfi::cisca {

class Asm {
 public:
  using Label = u32;

  explicit Asm(Addr base) : base_(base) {}

  Addr base() const { return base_; }
  /// Address of the next byte to be emitted.
  Addr here() const { return base_ + static_cast<u32>(buf_.size()); }
  u32 size() const { return static_cast<u32>(buf_.size()); }

  Label new_label();
  void bind(Label label);
  Addr label_addr(Label label) const;

  // --- moves ---
  void mov_r_imm(u8 reg, u32 imm);                 // mov r32, imm32
  void mov_r8_imm(u8 reg, u8 imm);                 // mov r8, imm8
  void mov_r_rm(u8 reg, const MemOperand& mem);    // mov r32, [mem]
  void mov_rm_r(const MemOperand& mem, u8 reg);    // mov [mem], r32
  void mov_r8_rm(u8 reg, const MemOperand& mem);   // mov r8, [mem]
  void mov_rm_r8(const MemOperand& mem, u8 reg);   // mov [mem], r8
  void mov_r16_rm(u8 reg, const MemOperand& mem);  // mov16 r, [mem]
  void mov_rm_r16(const MemOperand& mem, u8 reg);  // mov16 [mem], r
  void mov_rr(u8 dst, u8 src);                     // mov r32, r32
  void mov_rm_imm(const MemOperand& mem, u32 imm); // mov dword [mem], imm
  void mov_rm8_imm(const MemOperand& mem, u8 imm); // mov byte [mem], imm
  void movzx_r_rm8(u8 reg, const MemOperand& mem);
  void movzx_r_rm16(u8 reg, const MemOperand& mem);
  void movsx_r_rm8(u8 reg, const MemOperand& mem);
  void movsx_r_rm16(u8 reg, const MemOperand& mem);

  // --- ALU (op in {kAdd,kOr,kAdc,kSbb,kAnd,kSub,kXor,kCmp}) ---
  void alu_rr(Op op, u8 dst, u8 src);
  void alu_r_rm(Op op, u8 reg, const MemOperand& mem);
  void alu_rm_r(Op op, const MemOperand& mem, u8 reg);
  void alu_r_imm(Op op, u8 reg, u32 imm);
  void alu_rm_imm(Op op, const MemOperand& mem, u32 imm);
  void alu_rm8_imm(Op op, const MemOperand& mem, u8 imm);
  void cmp_rm8_imm(const MemOperand& mem, u8 imm) { alu_rm8_imm(Op::kCmp, mem, imm); }

  void test_rr(u8 a, u8 b);
  void test_r_imm(u8 reg, u32 imm);

  // --- shifts ---
  void shift_r_imm(Op op, u8 reg, u8 count);

  // --- mul/div ---
  void imul_rr(u8 dst, u8 src);          // imul r32, r32
  void mul_r(u8 reg);                    // edx:eax = eax * r
  void div_r(u8 reg);                    // unsigned divide edx:eax by r
  void idiv_r(u8 reg);
  void cdq();

  // --- stack ---
  void push_r(u8 reg);
  void pop_r(u8 reg);
  void push_imm(u32 imm);
  void push_rm(const MemOperand& mem);
  void leave();
  void pushf();
  void popf();

  // --- control flow ---
  void jcc(u8 cond, Label label);  // rel32 form
  void jmp(Label label);           // rel32 form
  void jmp_short(i8 rel);          // raw rel8 (for example reconstruction)
  void call(Label label);
  void call_addr(Addr target);     // rel32 to absolute target
  void call_rm(const MemOperand& mem);  // indirect call through memory
  void jmp_rm(const MemOperand& mem);   // indirect jump through memory
  void ret();
  void ret_imm(u16 bytes);

  // --- lea / misc ---
  void lea(u8 reg, const MemOperand& mem);
  void inc_r(u8 reg);
  void dec_r(u8 reg);
  void inc_rm(const MemOperand& mem);
  void dec_rm(const MemOperand& mem);
  void xchg_rr(u8 a, u8 b);
  void nop();
  void hlt();
  void ud2();
  void int3();
  void int_(u8 vector);
  void iret();
  void bound(u8 reg, const MemOperand& mem);
  void mov_to_cr(u8 cr, u8 reg);
  void mov_from_cr(u8 reg, u8 cr);
  void mov_to_seg(bool gs, u8 reg);  // mov fs/gs, r32(low 16)

  /// Raw bytes (tests, data-in-text).
  void emit_bytes(const std::vector<u8>& bytes);

  /// Finalize: apply fixups; returns the image.  Asm must not be reused.
  std::vector<u8> finish();

 private:
  void emit8(u8 b) { buf_.push_back(b); }
  void emit16(u16 v);
  void emit32(u32 v);
  void emit_modrm_mem(u8 reg_field, const MemOperand& mem);
  void emit_modrm_reg(u8 reg_field, u8 rm_reg);
  void emit_seg_prefix(const MemOperand& mem);
  void emit_rel32_fixup(Label label);
  static u8 alu_index(Op op);

  struct Fixup {
    u32 patch_offset;  // where the rel32 bytes live
    u32 insn_end;      // offset just past the instruction
    Label label;
  };

  Addr base_;
  std::vector<u8> buf_;
  std::vector<i64> labels_;  // bound offset or -1
  std::vector<Fixup> fixups_;
  bool finished_ = false;
};

}  // namespace kfi::cisca
