#include "cisca/sysregs.hpp"

#include <array>

#include "cisca/cpu.hpp"
#include "common/error.hpp"

namespace kfi::cisca {

namespace {

// Register bank layout; indices are stable and used by campaign logs.
enum SysRegIndex : u32 {
  kSrEflags = 0,
  kSrCr0, kSrCr2, kSrCr3, kSrCr4,
  kSrDr0, kSrDr1, kSrDr2, kSrDr3, kSrDr6, kSrDr7,
  kSrEsp, kSrEip,
  kSrFs, kSrGs,
  kSrGdtrBase, kSrGdtrLimit, kSrIdtrBase, kSrIdtrLimit,
  kSrLdtr, kSrTr,
  kSrCount,
};

const std::array<isa::SysRegInfo, kSrCount>& reg_infos() {
  static const std::array<isa::SysRegInfo, kSrCount> kInfos = {{
      {"EFLAGS", 32}, {"CR0", 32},  {"CR2", 32},        {"CR3", 32},
      {"CR4", 32},    {"DR0", 32},  {"DR1", 32},        {"DR2", 32},
      {"DR3", 32},    {"DR6", 32},  {"DR7", 32},        {"ESP", 32},
      {"EIP", 32},    {"FS", 16},   {"GS", 16},         {"GDTR_BASE", 32},
      {"GDTR_LIMIT", 16}, {"IDTR_BASE", 32}, {"IDTR_LIMIT", 16},
      {"LDTR", 16},   {"TR", 16},
  }};
  return kInfos;
}

}  // namespace

trace::RegSlot CiscaCpu::sysreg_slot(u32 index) const {
  // Bank order above; ESP aliases its GPR slot so register-campaign seeds
  // and the execute() hooks agree on one shadow location per register.
  static constexpr trace::RegSlot kSlots[kSrCount] = {
      kSlotEflags, kSlotCr0,  kSlotCr2,
      kSlotCr3,    kSlotCr4,  kSlotDr0,
      kSlotDr0 + 1, kSlotDr0 + 2, kSlotDr0 + 3,
      kSlotDr6,    kSlotDr7,  kEsp,
      kSlotEip,    kSlotFs,   kSlotGs,
      kSlotGdtrBase, kSlotGdtrLimit, kSlotIdtrBase, kSlotIdtrLimit,
      kSlotLdtr,   kSlotTr,
  };
  return index < kSrCount ? kSlots[index] : trace::kNoSlot;
}

u32 CiscaSysRegs::count() const { return kSrCount; }

const isa::SysRegInfo& CiscaSysRegs::info(u32 index) const {
  KFI_CHECK(index < kSrCount, "cisca sysreg index out of range");
  return reg_infos()[index];
}

u32 CiscaSysRegs::read(u32 index) const {
  const RegFile& r = cpu_.regs_;
  switch (index) {
    case kSrEflags: return r.eflags;
    case kSrCr0: return r.cr0;
    case kSrCr2: return r.cr2;
    case kSrCr3: return r.cr3;
    case kSrCr4: return r.cr4;
    case kSrDr0: return r.dr[0];
    case kSrDr1: return r.dr[1];
    case kSrDr2: return r.dr[2];
    case kSrDr3: return r.dr[3];
    case kSrDr6: return r.dr6;
    case kSrDr7: return r.dr7;
    case kSrEsp: return r.gpr[kEsp];
    case kSrEip: return r.eip;
    case kSrFs: return r.fs;
    case kSrGs: return r.gs;
    case kSrGdtrBase: return r.gdtr_base;
    case kSrGdtrLimit: return r.gdtr_limit;
    case kSrIdtrBase: return r.idtr_base;
    case kSrIdtrLimit: return r.idtr_limit;
    case kSrLdtr: return r.ldtr;
    case kSrTr: return r.tr;
  }
  KFI_CHECK(false, "cisca sysreg index out of range");
  return 0;
}

void CiscaSysRegs::write(u32 index, u32 value) {
  RegFile& r = cpu_.regs_;
  switch (index) {
    case kSrEflags: r.eflags = value; return;
    case kSrCr0: r.cr0 = value; return;
    case kSrCr2: r.cr2 = value; return;
    case kSrCr3: r.cr3 = value; return;
    case kSrCr4: r.cr4 = value; return;
    case kSrDr0: r.dr[0] = value; return;
    case kSrDr1: r.dr[1] = value; return;
    case kSrDr2: r.dr[2] = value; return;
    case kSrDr3: r.dr[3] = value; return;
    case kSrDr6: r.dr6 = value; return;
    case kSrDr7: r.dr7 = value; return;
    case kSrEsp: r.gpr[kEsp] = value; return;
    case kSrEip: r.eip = value; return;
    case kSrFs: r.fs = value & 0xFFFF; return;
    case kSrGs: r.gs = value & 0xFFFF; return;
    case kSrGdtrBase: r.gdtr_base = value; return;
    case kSrGdtrLimit: r.gdtr_limit = value & 0xFFFF; return;
    case kSrIdtrBase: r.idtr_base = value; return;
    case kSrIdtrLimit: r.idtr_limit = value & 0xFFFF; return;
    case kSrLdtr: r.ldtr = value & 0xFFFF; return;
    case kSrTr: r.tr = value & 0xFFFF; return;
  }
  KFI_CHECK(false, "cisca sysreg index out of range");
}

}  // namespace kfi::cisca
