#include "cisca/insn.hpp"

#include <cstdio>
#include <sstream>

namespace kfi::cisca {

const char* gpr_name(u8 reg) {
  static const char* kNames[8] = {"eax", "ecx", "edx", "ebx",
                                  "esp", "ebp", "esi", "edi"};
  return reg < 8 ? kNames[reg] : "r?";
}

namespace {

const char* gpr8_name(u8 reg) {
  static const char* kNames[8] = {"al", "cl", "dl", "bl",
                                  "ah", "ch", "dh", "bh"};
  return reg < 8 ? kNames[reg] : "r8?";
}

const char* cond_name(u8 cond) {
  static const char* kNames[16] = {"o", "no", "b", "ae", "e", "ne", "be", "a",
                                   "s", "ns", "p", "np", "l", "ge", "le", "g"};
  return cond < 16 ? kNames[cond] : "?";
}

const char* op_mnemonic(Op op) {
  switch (op) {
    case Op::kAdd: return "add";
    case Op::kOr: return "or";
    case Op::kAdc: return "adc";
    case Op::kSbb: return "sbb";
    case Op::kAnd: return "and";
    case Op::kSub: return "sub";
    case Op::kXor: return "xor";
    case Op::kCmp: return "cmp";
    case Op::kTest: return "test";
    case Op::kMov: return "mov";
    case Op::kMovzx: return "movzx";
    case Op::kMovsx: return "movsx";
    case Op::kLea: return "lea";
    case Op::kXchg: return "xchg";
    case Op::kInc: return "inc";
    case Op::kDec: return "dec";
    case Op::kPush: return "push";
    case Op::kPop: return "pop";
    case Op::kJmp: return "jmp";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kLeave: return "leave";
    case Op::kPushf: return "pushf";
    case Op::kPopf: return "popf";
    case Op::kNop: return "nop";
    case Op::kHlt: return "hlt";
    case Op::kUd2: return "ud2";
    case Op::kInt3: return "int3";
    case Op::kIret: return "iret";
    case Op::kBound: return "bound";
    case Op::kRol: return "rol";
    case Op::kRor: return "ror";
    case Op::kRcl: return "rcl";
    case Op::kRcr: return "rcr";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kSar: return "sar";
    case Op::kNot: return "not";
    case Op::kNeg: return "neg";
    case Op::kMul: return "mul";
    case Op::kImul: return "imul";
    case Op::kDiv: return "div";
    case Op::kIdiv: return "idiv";
    case Op::kCwde: return "cwde";
    case Op::kCdq: return "cdq";
    case Op::kJecxz: return "jecxz";
    case Op::kLoop: return "loop";
    case Op::kMovFromCr: return "mov(cr)";
    case Op::kMovToCr: return "mov(cr)";
    case Op::kMovFromSeg: return "mov(seg)";
    case Op::kMovToSeg: return "mov(seg)";
    case Op::kJcc: return "j";
    case Op::kInt: return "int";
    case Op::kMovs: return "movs";
    case Op::kCmps: return "cmps";
    case Op::kStos: return "stos";
    case Op::kLods: return "lods";
    case Op::kScas: return "scas";
    case Op::kPusha: return "pusha";
    case Op::kPopa: return "popa";
    case Op::kSalc: return "salc";
    case Op::kXlat: return "xlat";
    case Op::kClc: return "clc";
    case Op::kStc: return "stc";
    case Op::kCmc: return "cmc";
    case Op::kCld: return "cld";
    case Op::kStd: return "std";
    case Op::kCli: return "cli";
    case Op::kSti: return "sti";
    case Op::kFpu: return "(x87)";
    case Op::kEnter: return "enter";
    case Op::kRetf: return "retf";
    case Op::kInto: return "into";
    case Op::kJmpFar: return "ljmp";
    case Op::kCallFar: return "lcall";
    case Op::kAam: return "aam";
    case Op::kAad: return "aad";
    case Op::kArpl: return "arpl";
    case Op::kInsOuts: return "ins/outs";
    case Op::kInOut: return "in/out";
    case Op::kFwait: return "fwait";
    case Op::kInvalid: return "(bad)";
  }
  return "?";
}

std::string mem_str(const MemOperand& m) {
  std::ostringstream os;
  if (m.seg == SegOverride::kFs) os << "%fs:";
  if (m.seg == SegOverride::kGs) os << "%gs:";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", static_cast<u32>(m.disp));
  os << buf << "(";
  if (m.base != MemOperand::kNoReg) os << "%" << gpr_name(m.base);
  if (m.index != MemOperand::kNoReg) {
    os << ",%" << gpr_name(m.index) << "," << static_cast<int>(m.scale);
  }
  os << ")";
  return os.str();
}

std::string operand_str(const Operand& o, u8 width) {
  switch (o.kind) {
    case OperandKind::kNone: return "";
    case OperandKind::kReg:
      return std::string("%") + (width == 1 ? gpr8_name(o.reg) : gpr_name(o.reg));
    case OperandKind::kMem: return mem_str(o.mem);
    case OperandKind::kImm: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "$0x%llx",
                    static_cast<unsigned long long>(static_cast<u64>(o.imm)));
      return buf;
    }
  }
  return "";
}

}  // namespace

std::string Insn::to_string() const {
  std::ostringstream os;
  if (op == Op::kJcc) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%+d", rel);
    os << "j" << cond_name(cond) << " " << buf;
    return os.str();
  }
  if (op == Op::kInt) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "$0x%x", int_vector);
    os << "int " << buf;
    return os.str();
  }
  os << op_mnemonic(op);
  if (op == Op::kJmp || op == Op::kCall) {
    if (src_width == 4) {  // indirect form
      os << " *" << operand_str(dst, 4);
    } else {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%+d", rel);
      os << " " << buf;
    }
    return os.str();
  }
  // AT&T order: src, dst.
  const std::string src_s = operand_str(src, op == Op::kMovzx || op == Op::kMovsx
                                                 ? src_width
                                                 : width);
  const std::string dst_s = operand_str(dst, op == Op::kMovzx || op == Op::kMovsx
                                                 ? 4
                                                 : width);
  if (!src_s.empty() && !dst_s.empty()) {
    os << " " << src_s << "," << dst_s;
  } else if (!dst_s.empty()) {
    os << " " << dst_s;
  }
  return os.str();
}

isa::OpClass opclass(Op op) {
  switch (op) {
    // Arithmetic, logic, shifts, flag manipulation: the integer ALU.
    case Op::kAdd: case Op::kOr: case Op::kAdc: case Op::kSbb:
    case Op::kAnd: case Op::kSub: case Op::kXor: case Op::kCmp:
    case Op::kTest: case Op::kLea:
    case Op::kInc: case Op::kDec:
    case Op::kRol: case Op::kRor: case Op::kRcl: case Op::kRcr:
    case Op::kShl: case Op::kShr: case Op::kSar:
    case Op::kNot: case Op::kNeg: case Op::kMul: case Op::kImul:
    case Op::kDiv: case Op::kIdiv:
    case Op::kCwde: case Op::kCdq: case Op::kSalc:
    case Op::kClc: case Op::kStc: case Op::kCmc: case Op::kCld:
    case Op::kStd: case Op::kAam: case Op::kAad:
      return isa::OpClass::kAlu;
    // Data movement; push/pop, string and x87 ops all carry an implicit
    // memory access.
    case Op::kMov: case Op::kMovzx: case Op::kMovsx: case Op::kXchg:
    case Op::kPush: case Op::kPop: case Op::kPushf: case Op::kPopf:
    case Op::kPusha: case Op::kPopa:
    case Op::kMovs: case Op::kCmps: case Op::kStos: case Op::kLods:
    case Op::kScas: case Op::kXlat:
    case Op::kEnter: case Op::kLeave:
    case Op::kFpu:
      return isa::OpClass::kLoadStore;
    case Op::kJcc: case Op::kJmp: case Op::kCall: case Op::kRet:
    case Op::kRetf: case Op::kJecxz: case Op::kLoop:
    case Op::kJmpFar: case Op::kCallFar:
      return isa::OpClass::kBranch;
    // Privileged state, traps, and I/O.
    case Op::kHlt: case Op::kUd2: case Op::kInt: case Op::kInt3:
    case Op::kIret: case Op::kInto: case Op::kBound: case Op::kArpl:
    case Op::kMovFromCr: case Op::kMovToCr:
    case Op::kMovFromSeg: case Op::kMovToSeg:
    case Op::kCli: case Op::kSti:
    case Op::kInsOuts: case Op::kInOut: case Op::kFwait:
      return isa::OpClass::kSystem;
    case Op::kNop: case Op::kInvalid:
      return isa::OpClass::kOther;
  }
  return isa::OpClass::kOther;
}

}  // namespace kfi::cisca
