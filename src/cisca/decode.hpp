// Variable-length instruction decoder for the cisca (P4-like) processor.
//
// The decoder consumes a prefetched byte window.  If it runs off the end of
// the window (which the CPU sizes to stop at unfetchable memory), the
// result is a fetch fault at the exact byte that could not be read — this
// is how executing past a page boundary into unmapped memory raises a page
// fault mid-instruction, one of the crash paths for re-aligned instruction
// streams.
//
// Design note on opcode density: like real IA-32, the map is intentionally
// dense — the overwhelming majority of byte values begin *some* valid
// instruction.  This is a load-bearing property: it is why a bit flip in
// kernel text on the P4 usually yields a different-but-valid instruction
// sequence (poor diagnosability, invalid memory access crashes) instead of
// an illegal-instruction exception, in contrast to the sparse fixed-width
// riscf map (Sections 5.3 and 5.5 of the paper).
#pragma once

#include "cisca/insn.hpp"
#include "common/types.hpp"

namespace kfi::cisca {

/// Maximum bytes one instruction may occupy:
/// prefix + opcode(2) + modrm + sib + disp32 + imm32 = 1+2+1+1+4+4 = 13.
constexpr u32 kMaxInsnBytes = 13;

/// Sentinel for "no physical page" in FetchWindow / the decode cache.
constexpr u32 kNoPage = 0xFFFFFFFFu;

struct FetchWindow {
  u8 bytes[kMaxInsnBytes] = {};
  u8 valid = 0;  // number of readable bytes starting at pc
  Addr pc = 0;
  /// Physical address of bytes[0] (kNoPage if pc is unfetchable) and the
  /// second physical page index when the window straddles a page boundary.
  /// The decode cache validates entries against these pages' write
  /// versions; pages are not physically contiguous, so both are recorded.
  u32 phys = kNoPage;
  u32 phys_page2 = kNoPage;
};

struct DecodeResult {
  Insn insn{};
  bool fetch_fault = false;  // ran past `valid` bytes
  Addr fault_addr = 0;       // first unfetchable byte when fetch_fault
};

/// Decode one instruction.  Never throws; undecodable encodings yield
/// Op::kInvalid with a length so callers can report #UD at the right pc.
DecodeResult decode(const FetchWindow& window);

}  // namespace kfi::cisca
