#include "cisca/encode.hpp"

#include "common/error.hpp"

namespace kfi::cisca {

namespace {
bool fits_i8(i32 v) { return v >= -128 && v <= 127; }
}  // namespace

Asm::Label Asm::new_label() {
  labels_.push_back(-1);
  return static_cast<Label>(labels_.size() - 1);
}

void Asm::bind(Label label) {
  KFI_CHECK(label < labels_.size(), "bind: bad label");
  KFI_CHECK(labels_[label] < 0, "bind: label already bound");
  labels_[label] = static_cast<i64>(buf_.size());
}

Addr Asm::label_addr(Label label) const {
  KFI_CHECK(label < labels_.size() && labels_[label] >= 0,
            "label_addr: unbound label");
  return base_ + static_cast<u32>(labels_[label]);
}

void Asm::emit16(u16 v) {
  emit8(static_cast<u8>(v));
  emit8(static_cast<u8>(v >> 8));
}

void Asm::emit32(u32 v) {
  emit16(static_cast<u16>(v));
  emit16(static_cast<u16>(v >> 16));
}

void Asm::emit_seg_prefix(const MemOperand& mem) {
  if (mem.seg == SegOverride::kFs) emit8(0x64);
  if (mem.seg == SegOverride::kGs) emit8(0x65);
}

void Asm::emit_modrm_reg(u8 reg_field, u8 rm_reg) {
  emit8(static_cast<u8>(0xC0 | (reg_field << 3) | rm_reg));
}

void Asm::emit_modrm_mem(u8 reg_field, const MemOperand& mem) {
  const bool has_index = mem.index != MemOperand::kNoReg;
  const bool has_base = mem.base != MemOperand::kNoReg;

  if (!has_base && !has_index) {
    // [disp32] absolute: mod=00 rm=101.
    emit8(static_cast<u8>((reg_field << 3) | 5));
    emit32(static_cast<u32>(mem.disp));
    return;
  }

  u8 scale_bits = 0;
  if (has_index) {
    switch (mem.scale) {
      case 1: scale_bits = 0; break;
      case 2: scale_bits = 1; break;
      case 4: scale_bits = 2; break;
      case 8: scale_bits = 3; break;
      default: KFI_CHECK(false, "bad SIB scale");
    }
    KFI_CHECK(mem.index != kEsp, "esp cannot be an index register");
  }

  const bool need_sib = has_index || (has_base && mem.base == kEsp);
  u8 mod;
  if (mem.disp == 0 && has_base && mem.base != kEbp) {
    mod = 0;
  } else if (fits_i8(mem.disp)) {
    mod = 1;
  } else {
    mod = 2;
  }
  if (!has_base) {
    // Index with no base: mod=00, SIB base=101, disp32 required.
    emit8(static_cast<u8>((reg_field << 3) | 4));
    emit8(static_cast<u8>((scale_bits << 6) | (mem.index << 3) | 5));
    emit32(static_cast<u32>(mem.disp));
    return;
  }

  if (need_sib) {
    emit8(static_cast<u8>((mod << 6) | (reg_field << 3) | 4));
    const u8 index_bits = has_index ? mem.index : 4;  // 4 = no index
    emit8(static_cast<u8>((scale_bits << 6) | (index_bits << 3) | mem.base));
  } else {
    emit8(static_cast<u8>((mod << 6) | (reg_field << 3) | mem.base));
  }
  if (mod == 1) emit8(static_cast<u8>(mem.disp));
  if (mod == 2) emit32(static_cast<u32>(mem.disp));
}

u8 Asm::alu_index(Op op) {
  switch (op) {
    case Op::kAdd: return 0;
    case Op::kOr: return 1;
    case Op::kAdc: return 2;
    case Op::kSbb: return 3;
    case Op::kAnd: return 4;
    case Op::kSub: return 5;
    case Op::kXor: return 6;
    case Op::kCmp: return 7;
    default: KFI_CHECK(false, "not an ALU op"); return 0;
  }
}

// --- moves ---

void Asm::mov_r_imm(u8 reg, u32 imm) {
  emit8(static_cast<u8>(0xB8 | reg));
  emit32(imm);
}

void Asm::mov_r8_imm(u8 reg, u8 imm) {
  emit8(static_cast<u8>(0xB0 | reg));
  emit8(imm);
}

void Asm::mov_r_rm(u8 reg, const MemOperand& mem) {
  emit_seg_prefix(mem);
  emit8(0x8B);
  emit_modrm_mem(reg, mem);
}

void Asm::mov_rm_r(const MemOperand& mem, u8 reg) {
  emit_seg_prefix(mem);
  emit8(0x89);
  emit_modrm_mem(reg, mem);
}

void Asm::mov_r8_rm(u8 reg, const MemOperand& mem) {
  emit_seg_prefix(mem);
  emit8(0x8A);
  emit_modrm_mem(reg, mem);
}

void Asm::mov_rm_r8(const MemOperand& mem, u8 reg) {
  emit_seg_prefix(mem);
  emit8(0x88);
  emit_modrm_mem(reg, mem);
}

void Asm::mov_r16_rm(u8 reg, const MemOperand& mem) {
  emit8(0x66);  // operand-size prefix, as real compilers emit
  emit_seg_prefix(mem);
  emit8(0x8B);
  emit_modrm_mem(reg, mem);
}

void Asm::mov_rm_r16(const MemOperand& mem, u8 reg) {
  emit8(0x66);
  emit_seg_prefix(mem);
  emit8(0x89);
  emit_modrm_mem(reg, mem);
}

void Asm::mov_rr(u8 dst, u8 src) {
  emit8(0x89);
  emit_modrm_reg(src, dst);
}

void Asm::mov_rm_imm(const MemOperand& mem, u32 imm) {
  emit_seg_prefix(mem);
  emit8(0xC7);
  emit_modrm_mem(0, mem);
  emit32(imm);
}

void Asm::mov_rm8_imm(const MemOperand& mem, u8 imm) {
  emit_seg_prefix(mem);
  emit8(0xC6);
  emit_modrm_mem(0, mem);
  emit8(imm);
}

void Asm::movzx_r_rm8(u8 reg, const MemOperand& mem) {
  emit_seg_prefix(mem);
  emit8(0x0F);
  emit8(0xB6);
  emit_modrm_mem(reg, mem);
}

void Asm::movzx_r_rm16(u8 reg, const MemOperand& mem) {
  emit_seg_prefix(mem);
  emit8(0x0F);
  emit8(0xB7);
  emit_modrm_mem(reg, mem);
}

void Asm::movsx_r_rm8(u8 reg, const MemOperand& mem) {
  emit_seg_prefix(mem);
  emit8(0x0F);
  emit8(0xBE);
  emit_modrm_mem(reg, mem);
}

void Asm::movsx_r_rm16(u8 reg, const MemOperand& mem) {
  emit_seg_prefix(mem);
  emit8(0x0F);
  emit8(0xBF);
  emit_modrm_mem(reg, mem);
}

// --- ALU ---

void Asm::alu_rr(Op op, u8 dst, u8 src) {
  emit8(static_cast<u8>((alu_index(op) << 3) | 1));  // op r/m32, r32
  emit_modrm_reg(src, dst);
}

void Asm::alu_r_rm(Op op, u8 reg, const MemOperand& mem) {
  emit_seg_prefix(mem);
  emit8(static_cast<u8>((alu_index(op) << 3) | 3));  // op r32, r/m32
  emit_modrm_mem(reg, mem);
}

void Asm::alu_rm_r(Op op, const MemOperand& mem, u8 reg) {
  emit_seg_prefix(mem);
  emit8(static_cast<u8>((alu_index(op) << 3) | 1));
  emit_modrm_mem(reg, mem);
}

void Asm::alu_r_imm(Op op, u8 reg, u32 imm) {
  const i32 simm = static_cast<i32>(imm);
  if (fits_i8(simm)) {
    emit8(0x83);
    emit_modrm_reg(alu_index(op), reg);
    emit8(static_cast<u8>(imm));
  } else {
    emit8(0x81);
    emit_modrm_reg(alu_index(op), reg);
    emit32(imm);
  }
}

void Asm::alu_rm_imm(Op op, const MemOperand& mem, u32 imm) {
  emit_seg_prefix(mem);
  const i32 simm = static_cast<i32>(imm);
  if (fits_i8(simm)) {
    emit8(0x83);
    emit_modrm_mem(alu_index(op), mem);
    emit8(static_cast<u8>(imm));
  } else {
    emit8(0x81);
    emit_modrm_mem(alu_index(op), mem);
    emit32(imm);
  }
}

void Asm::alu_rm8_imm(Op op, const MemOperand& mem, u8 imm) {
  emit_seg_prefix(mem);
  emit8(0x80);
  emit_modrm_mem(alu_index(op), mem);
  emit8(imm);
}

void Asm::test_rr(u8 a, u8 b) {
  emit8(0x85);
  emit_modrm_reg(b, a);
}

void Asm::test_r_imm(u8 reg, u32 imm) {
  emit8(0xF7);
  emit_modrm_reg(0, reg);
  emit32(imm);
}

// --- shifts ---

void Asm::shift_r_imm(Op op, u8 reg, u8 count) {
  u8 group;
  switch (op) {
    case Op::kRol: group = 0; break;
    case Op::kRor: group = 1; break;
    case Op::kShl: group = 4; break;
    case Op::kShr: group = 5; break;
    case Op::kSar: group = 7; break;
    default: KFI_CHECK(false, "not a shift op"); return;
  }
  emit8(0xC1);
  emit_modrm_reg(group, reg);
  emit8(count);
}

// --- mul/div ---

void Asm::imul_rr(u8 dst, u8 src) {
  emit8(0x0F);
  emit8(0xAF);
  emit_modrm_reg(dst, src);
}

void Asm::mul_r(u8 reg) {
  emit8(0xF7);
  emit_modrm_reg(4, reg);
}

void Asm::div_r(u8 reg) {
  emit8(0xF7);
  emit_modrm_reg(6, reg);
}

void Asm::idiv_r(u8 reg) {
  emit8(0xF7);
  emit_modrm_reg(7, reg);
}

void Asm::cdq() { emit8(0x99); }

// --- stack ---

void Asm::push_r(u8 reg) { emit8(static_cast<u8>(0x50 | reg)); }
void Asm::pop_r(u8 reg) { emit8(static_cast<u8>(0x58 | reg)); }

void Asm::push_imm(u32 imm) {
  if (fits_i8(static_cast<i32>(imm))) {
    emit8(0x6A);
    emit8(static_cast<u8>(imm));
  } else {
    emit8(0x68);
    emit32(imm);
  }
}

void Asm::push_rm(const MemOperand& mem) {
  emit_seg_prefix(mem);
  emit8(0xFF);
  emit_modrm_mem(6, mem);
}

void Asm::leave() { emit8(0xC9); }
void Asm::pushf() { emit8(0x9C); }
void Asm::popf() { emit8(0x9D); }

// --- control flow ---

void Asm::emit_rel32_fixup(Label label) {
  fixups_.push_back(Fixup{static_cast<u32>(buf_.size()),
                          static_cast<u32>(buf_.size()) + 4, label});
  emit32(0);
}

void Asm::jcc(u8 cond, Label label) {
  emit8(0x0F);
  emit8(static_cast<u8>(0x80 | cond));
  emit_rel32_fixup(label);
}

void Asm::jmp(Label label) {
  emit8(0xE9);
  emit_rel32_fixup(label);
}

void Asm::jmp_short(i8 rel) {
  emit8(0xEB);
  emit8(static_cast<u8>(rel));
}

void Asm::call(Label label) {
  emit8(0xE8);
  emit_rel32_fixup(label);
}

void Asm::call_addr(Addr target) {
  emit8(0xE8);
  const Addr after = here() + 4;
  emit32(target - after);
}

void Asm::call_rm(const MemOperand& mem) {
  emit_seg_prefix(mem);
  emit8(0xFF);
  emit_modrm_mem(2, mem);
}

void Asm::jmp_rm(const MemOperand& mem) {
  emit_seg_prefix(mem);
  emit8(0xFF);
  emit_modrm_mem(4, mem);
}

void Asm::ret() { emit8(0xC3); }

void Asm::ret_imm(u16 bytes) {
  emit8(0xC2);
  emit16(bytes);
}

// --- misc ---

void Asm::lea(u8 reg, const MemOperand& mem) {
  emit8(0x8D);
  emit_modrm_mem(reg, mem);
}

void Asm::inc_r(u8 reg) { emit8(static_cast<u8>(0x40 | reg)); }
void Asm::dec_r(u8 reg) { emit8(static_cast<u8>(0x48 | reg)); }

void Asm::inc_rm(const MemOperand& mem) {
  emit_seg_prefix(mem);
  emit8(0xFF);
  emit_modrm_mem(0, mem);
}

void Asm::dec_rm(const MemOperand& mem) {
  emit_seg_prefix(mem);
  emit8(0xFF);
  emit_modrm_mem(1, mem);
}

void Asm::xchg_rr(u8 a, u8 b) {
  if (a == kEax) {
    emit8(static_cast<u8>(0x90 | b));
  } else if (b == kEax) {
    emit8(static_cast<u8>(0x90 | a));
  } else {
    emit8(0x87);
    emit_modrm_reg(b, a);
  }
}

void Asm::nop() { emit8(0x90); }
void Asm::hlt() { emit8(0xF4); }

void Asm::ud2() {
  emit8(0x0F);
  emit8(0x0B);
}

void Asm::int3() { emit8(0xCC); }

void Asm::int_(u8 vector) {
  emit8(0xCD);
  emit8(vector);
}

void Asm::iret() { emit8(0xCF); }

void Asm::bound(u8 reg, const MemOperand& mem) {
  emit_seg_prefix(mem);
  emit8(0x62);
  emit_modrm_mem(reg, mem);
}

void Asm::mov_to_cr(u8 cr, u8 reg) {
  emit8(0x0F);
  emit8(0x22);
  emit_modrm_reg(cr, reg);
}

void Asm::mov_from_cr(u8 reg, u8 cr) {
  emit8(0x0F);
  emit8(0x20);
  emit_modrm_reg(cr, reg);
}

void Asm::mov_to_seg(bool gs, u8 reg) {
  emit8(0x8E);
  emit_modrm_reg(gs ? 5 : 4, reg);
}

void Asm::emit_bytes(const std::vector<u8>& bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::vector<u8> Asm::finish() {
  KFI_CHECK(!finished_, "Asm::finish called twice");
  finished_ = true;
  for (const Fixup& fx : fixups_) {
    KFI_CHECK(fx.label < labels_.size() && labels_[fx.label] >= 0,
              "unbound label at finish");
    const i64 target = labels_[fx.label];
    const i32 rel = static_cast<i32>(target - static_cast<i64>(fx.insn_end));
    buf_[fx.patch_offset] = static_cast<u8>(rel);
    buf_[fx.patch_offset + 1] = static_cast<u8>(rel >> 8);
    buf_[fx.patch_offset + 2] = static_cast<u8>(rel >> 16);
    buf_[fx.patch_offset + 3] = static_cast<u8>(rel >> 24);
  }
  return std::move(buf_);
}

}  // namespace kfi::cisca
