#include "cisca/decode.hpp"

#include "common/bits.hpp"

namespace kfi::cisca {

namespace {

/// Byte cursor over the fetch window; records the first out-of-bounds read.
class Cursor {
 public:
  explicit Cursor(const FetchWindow& w) : w_(w) {}

  u8 next8() {
    if (pos_ >= w_.valid) {
      oob_ = true;
      return 0;
    }
    return w_.bytes[pos_++];
  }

  u16 next16() {
    const u8 lo = next8();
    const u8 hi = next8();
    return static_cast<u16>(lo | (hi << 8));
  }

  u32 next32() {
    const u16 lo = next16();
    const u16 hi = next16();
    return static_cast<u32>(lo) | (static_cast<u32>(hi) << 16);
  }

  bool oob() const { return oob_; }
  u8 pos() const { return pos_; }

 private:
  const FetchWindow& w_;
  u8 pos_ = 0;
  bool oob_ = false;
};

/// Decodes ModRM (+SIB +disp) into an operand.  `reg_field` receives the
/// middle 3 bits (a register number or an opcode-group selector).
Operand parse_modrm(Cursor& cur, u8& reg_field, SegOverride seg) {
  const u8 modrm = cur.next8();
  const u8 mod = modrm >> 6;
  reg_field = (modrm >> 3) & 7;
  const u8 rm = modrm & 7;

  if (mod == 3) return Operand::make_reg(rm);

  MemOperand mem;
  mem.seg = seg;
  if (rm == 4) {
    const u8 sib = cur.next8();
    const u8 scale_bits = sib >> 6;
    const u8 index = (sib >> 3) & 7;
    const u8 base = sib & 7;
    mem.scale = static_cast<u8>(1u << scale_bits);
    mem.index = (index == kEsp) ? MemOperand::kNoReg : index;  // ESP: no index
    if (base == kEbp && mod == 0) {
      mem.base = MemOperand::kNoReg;
      mem.disp = static_cast<i32>(cur.next32());
    } else {
      mem.base = base;
    }
  } else if (rm == 5 && mod == 0) {
    mem.base = MemOperand::kNoReg;
    mem.disp = static_cast<i32>(cur.next32());
  } else {
    mem.base = rm;
  }

  if (mod == 1) {
    mem.disp += sign_extend32(cur.next8(), 8);
  } else if (mod == 2) {
    mem.disp += static_cast<i32>(cur.next32());
  }
  return Operand::make_mem(mem);
}

Insn invalid(u8 length) {
  Insn insn;
  insn.op = Op::kInvalid;
  insn.length = length == 0 ? 1 : length;
  return insn;
}

constexpr Op kAluOps[8] = {Op::kAdd, Op::kOr,  Op::kAdc, Op::kSbb,
                           Op::kAnd, Op::kSub, Op::kXor, Op::kCmp};

constexpr Op kShiftOps[8] = {Op::kRol, Op::kRor, Op::kRcl, Op::kRcr,
                             Op::kShl, Op::kShr, Op::kShl, Op::kSar};

constexpr Op kGroup3Ops[8] = {Op::kTest, Op::kInvalid, Op::kNot, Op::kNeg,
                              Op::kMul,  Op::kImul,    Op::kDiv, Op::kIdiv};

Insn decode_0f(Cursor& cur, SegOverride seg) {
  Insn insn;
  const u8 op2 = cur.next8();

  if (op2 == 0x0B) {  // ud2: the deliberate invalid opcode used by BUG()
    insn.op = Op::kUd2;
    return insn;
  }
  if (op2 >= 0x80 && op2 <= 0x8F) {  // jcc rel32
    insn.op = Op::kJcc;
    insn.cond = op2 & 0x0F;
    insn.rel = static_cast<i32>(cur.next32());
    return insn;
  }
  u8 reg_field = 0;
  switch (op2) {
    case 0xAF: {  // imul r32, r/m32
      insn.op = Op::kImul;
      insn.src = parse_modrm(cur, reg_field, seg);
      insn.dst = Operand::make_reg(reg_field);
      return insn;
    }
    case 0xB6: case 0xB7: case 0xBE: case 0xBF: {  // movzx / movsx
      insn.op = (op2 <= 0xB7) ? Op::kMovzx : Op::kMovsx;
      insn.src_width = (op2 & 1) ? 2 : 1;
      insn.src = parse_modrm(cur, reg_field, seg);
      insn.dst = Operand::make_reg(reg_field);
      return insn;
    }
    case 0x20: {  // mov r32, cr
      insn.op = Op::kMovFromCr;
      insn.src = parse_modrm(cur, reg_field, seg);  // rm = dest gpr (mod=3)
      insn.dst = insn.src;
      insn.src = Operand::make_reg(reg_field);  // reg field = CR number
      return insn;
    }
    case 0x22: {  // mov cr, r32
      insn.op = Op::kMovToCr;
      insn.src = parse_modrm(cur, reg_field, seg);
      insn.dst = Operand::make_reg(reg_field);  // CR number
      return insn;
    }
    default:
      return invalid(cur.pos());
  }
}

Insn decode_inner(Cursor& cur) {
  Insn insn;
  SegOverride seg = SegOverride::kNone;
  bool opsize16 = false;

  // Prefix bytes, as on real IA-32: segment overrides (ES/CS/SS/DS are
  // no-ops under the flat kernel segments), operand-size, lock, rep.
  u8 op = cur.next8();
  u32 prefixes = 0;
  for (;;) {
    bool is_prefix = true;
    switch (op) {
      case 0x64: seg = SegOverride::kFs; break;
      case 0x65: seg = SegOverride::kGs; break;
      case 0x26: case 0x2E: case 0x36: case 0x3E: break;
      case 0x66: opsize16 = true; break;
      case 0x67: break;  // address-size override: ignored (32-bit only)
      case 0xF0: break;  // lock
      case 0xF2: insn.repne = true; break;
      case 0xF3: insn.rep = true; break;
      default: is_prefix = false;
    }
    if (!is_prefix) break;
    if (++prefixes > 4) return invalid(cur.pos());
    op = cur.next8();
  }
  const u8 w32 = opsize16 ? 2 : 4;
  auto next_imm = [&]() -> u32 {
    return opsize16 ? cur.next16() : cur.next32();
  };

  u8 reg_field = 0;

  if (op == 0x0F) return decode_0f(cur, seg);

  // 0x00-0x3F: ALU block, op = bits 5..3, form = bits 2..0.
  if (op < 0x40) {
    const u8 form = op & 7;
    if (form >= 6) return invalid(cur.pos());  // seg push/pop, BCD: undefined
    insn.op = kAluOps[(op >> 3) & 7];
    switch (form) {
      case 0:  // op r/m8, r8
      case 1: {  // op r/m16/32, r16/32
        insn.width = (form == 0) ? 1 : w32;
        insn.dst = parse_modrm(cur, reg_field, seg);
        insn.src = Operand::make_reg(reg_field);
        return insn;
      }
      case 2:  // op r8, r/m8
      case 3: {  // op r16/32, r/m16/32
        insn.width = (form == 2) ? 1 : w32;
        insn.src = parse_modrm(cur, reg_field, seg);
        insn.dst = Operand::make_reg(reg_field);
        return insn;
      }
      case 4: {  // op al, imm8
        insn.width = 1;
        insn.dst = Operand::make_reg(kEax);
        insn.src = Operand::make_imm(cur.next8());
        return insn;
      }
      case 5: {  // op eax, imm16/32
        insn.width = w32;
        insn.dst = Operand::make_reg(kEax);
        insn.src = Operand::make_imm(next_imm());
        return insn;
      }
    }
  }

  if (op >= 0x40 && op <= 0x5F) {
    insn.dst = Operand::make_reg(op & 7);
    insn.op = (op < 0x48)   ? Op::kInc
              : (op < 0x50) ? Op::kDec
              : (op < 0x58) ? Op::kPush
                            : Op::kPop;
    return insn;
  }

  switch (op) {
    case 0x27: case 0x2F: case 0x37: case 0x3F:  // daa/das/aaa/aas
      insn.op = Op::kNop;  // BCD adjusts: flag fiddling, no modeled effect
      return insn;
    case 0x60:
      insn.op = Op::kPusha;
      return insn;
    case 0x61:
      insn.op = Op::kPopa;
      return insn;
    case 0x63: {  // arpl r/m16, r16: valid but inert in a flat kernel
      insn.op = Op::kArpl;
      insn.dst = parse_modrm(cur, reg_field, seg);
      return insn;
    }
    case 0x62: {  // bound r32, m64
      insn.op = Op::kBound;
      insn.src = parse_modrm(cur, reg_field, seg);
      if (insn.src.kind != OperandKind::kMem) return invalid(cur.pos());
      insn.dst = Operand::make_reg(reg_field);
      return insn;
    }
    case 0x68: {
      insn.op = Op::kPush;
      insn.dst = Operand::make_imm(cur.next32());
      return insn;
    }
    case 0x69: {  // imul r32, r/m32, imm32
      insn.op = Op::kImul;
      insn.src = parse_modrm(cur, reg_field, seg);
      insn.dst = Operand::make_reg(reg_field);
      insn.rel = static_cast<i32>(cur.next32());  // third operand
      insn.src_width = 4;                          // marks 3-operand form
      return insn;
    }
    case 0x6A: {
      insn.op = Op::kPush;
      insn.dst = Operand::make_imm(sign_extend32(cur.next8(), 8));
      return insn;
    }
    case 0x6B: {
      insn.op = Op::kImul;
      insn.src = parse_modrm(cur, reg_field, seg);
      insn.dst = Operand::make_reg(reg_field);
      insn.rel = sign_extend32(cur.next8(), 8);
      insn.src_width = 4;
      return insn;
    }
    case 0x80: case 0x81: case 0x82: case 0x83: {  // ALU r/m, imm
      insn.width = (op == 0x80 || op == 0x82) ? 1 : w32;
      insn.dst = parse_modrm(cur, reg_field, seg);
      insn.op = kAluOps[reg_field];
      if (op == 0x81) {
        insn.src = Operand::make_imm(next_imm());
      } else {
        insn.src = Operand::make_imm(sign_extend32(cur.next8(), 8));
      }
      return insn;
    }
    case 0x84: case 0x85: {  // test r/m, r
      insn.op = Op::kTest;
      insn.width = (op == 0x84) ? 1 : w32;
      insn.dst = parse_modrm(cur, reg_field, seg);
      insn.src = Operand::make_reg(reg_field);
      return insn;
    }
    case 0x86: case 0x87: {  // xchg r/m, r
      insn.op = Op::kXchg;
      insn.width = (op == 0x86) ? 1 : w32;
      insn.dst = parse_modrm(cur, reg_field, seg);
      insn.src = Operand::make_reg(reg_field);
      return insn;
    }
    case 0x88: case 0x89: {  // mov r/m, r
      insn.op = Op::kMov;
      insn.width = (op == 0x88) ? 1 : w32;
      insn.dst = parse_modrm(cur, reg_field, seg);
      insn.src = Operand::make_reg(reg_field);
      return insn;
    }
    case 0x8A: case 0x8B: {  // mov r, r/m
      insn.op = Op::kMov;
      insn.width = (op == 0x8A) ? 1 : w32;
      insn.src = parse_modrm(cur, reg_field, seg);
      insn.dst = Operand::make_reg(reg_field);
      return insn;
    }
    case 0x8C: case 0x8E: {  // mov r/m16, sreg / mov sreg, r/m16
      const bool to_seg = (op == 0x8E);
      Operand rm = parse_modrm(cur, reg_field, seg);
      if (reg_field != 4 && reg_field != 5) return invalid(cur.pos());  // FS/GS
      insn.op = to_seg ? Op::kMovToSeg : Op::kMovFromSeg;
      insn.width = 2;
      insn.dst = to_seg ? Operand::make_reg(reg_field) : rm;
      insn.src = to_seg ? rm : Operand::make_reg(reg_field);
      return insn;
    }
    case 0x8D: {  // lea r32, m
      insn.op = Op::kLea;
      insn.src = parse_modrm(cur, reg_field, seg);
      if (insn.src.kind != OperandKind::kMem) return invalid(cur.pos());
      insn.dst = Operand::make_reg(reg_field);
      return insn;
    }
    case 0x8F: {  // pop r/m32
      insn.op = Op::kPop;
      insn.dst = parse_modrm(cur, reg_field, seg);
      if (reg_field != 0) return invalid(cur.pos());
      return insn;
    }
    case 0x90:
      insn.op = Op::kNop;
      return insn;
    case 0x91: case 0x92: case 0x93: case 0x94:
    case 0x95: case 0x96: case 0x97: {  // xchg eax, r32
      insn.op = Op::kXchg;
      insn.dst = Operand::make_reg(kEax);
      insn.src = Operand::make_reg(op & 7);
      return insn;
    }
    case 0x98:
      insn.op = Op::kCwde;
      return insn;
    case 0x99:
      insn.op = Op::kCdq;
      return insn;
    case 0x9A: {  // call far ptr16:32 — any selector is garbage here
      insn.op = Op::kCallFar;
      cur.next32();
      cur.next16();
      return insn;
    }
    case 0x9B:
      insn.op = Op::kFwait;
      return insn;
    case 0x9C:
      insn.op = Op::kPushf;
      return insn;
    case 0x9D:
      insn.op = Op::kPopf;
      return insn;
    case 0xA0: case 0xA1: {  // mov al/eax, [moffs32]
      insn.op = Op::kMov;
      insn.width = (op == 0xA0) ? 1 : 4;
      MemOperand mem;
      mem.seg = seg;
      mem.disp = static_cast<i32>(cur.next32());
      insn.src = Operand::make_mem(mem);
      insn.dst = Operand::make_reg(kEax);
      return insn;
    }
    case 0xA2: case 0xA3: {  // mov [moffs32], al/eax
      insn.op = Op::kMov;
      insn.width = (op == 0xA2) ? 1 : 4;
      MemOperand mem;
      mem.seg = seg;
      mem.disp = static_cast<i32>(cur.next32());
      insn.dst = Operand::make_mem(mem);
      insn.src = Operand::make_reg(kEax);
      return insn;
    }
    case 0xA4: case 0xA5: {  // movsb / movsd
      insn.op = Op::kMovs;
      insn.width = (op == 0xA4) ? 1 : w32;
      return insn;
    }
    case 0xA6: case 0xA7: {  // cmpsb / cmpsd
      insn.op = Op::kCmps;
      insn.width = (op == 0xA6) ? 1 : w32;
      return insn;
    }
    case 0xA8: {  // test al, imm8
      insn.op = Op::kTest;
      insn.width = 1;
      insn.dst = Operand::make_reg(kEax);
      insn.src = Operand::make_imm(cur.next8());
      return insn;
    }
    case 0xA9: {  // test eax, imm32
      insn.op = Op::kTest;
      insn.width = w32;
      insn.dst = Operand::make_reg(kEax);
      insn.src = Operand::make_imm(next_imm());
      return insn;
    }
    case 0xAA: case 0xAB: {  // stosb / stosd
      insn.op = Op::kStos;
      insn.width = (op == 0xAA) ? 1 : w32;
      return insn;
    }
    case 0xAC: case 0xAD: {  // lodsb / lodsd
      insn.op = Op::kLods;
      insn.width = (op == 0xAC) ? 1 : w32;
      return insn;
    }
    case 0xAE: case 0xAF: {  // scasb / scasd
      insn.op = Op::kScas;
      insn.width = (op == 0xAE) ? 1 : w32;
      return insn;
    }
    case 0xC0: case 0xC1: {  // shift r/m, imm8
      insn.width = (op == 0xC0) ? 1 : 4;
      insn.dst = parse_modrm(cur, reg_field, seg);
      insn.op = kShiftOps[reg_field];
      insn.src = Operand::make_imm(cur.next8() & 31);
      return insn;
    }
    case 0xC2: {
      insn.op = Op::kRet;
      insn.rel = cur.next16();  // bytes to pop after return address
      return insn;
    }
    case 0xC3:
      insn.op = Op::kRet;
      return insn;
    case 0xC4: case 0xC5: {  // les / lds: loads a garbage selector
      insn.op = Op::kCallFar;  // same modeled effect: #GP on execution
      parse_modrm(cur, reg_field, seg);
      return insn;
    }
    case 0xC6: case 0xC7: {  // mov r/m, imm
      insn.op = Op::kMov;
      insn.width = (op == 0xC6) ? 1 : w32;
      insn.dst = parse_modrm(cur, reg_field, seg);
      if (reg_field != 0) return invalid(cur.pos());
      insn.src = Operand::make_imm(insn.width == 1 ? cur.next8() : next_imm());
      return insn;
    }
    case 0xC8: {  // enter imm16, imm8
      insn.op = Op::kEnter;
      insn.rel = cur.next16();
      cur.next8();  // nesting level: ignored
      return insn;
    }
    case 0xC9:
      insn.op = Op::kLeave;
      return insn;
    case 0xCA: {  // retf imm16
      insn.op = Op::kRetf;
      insn.rel = cur.next16();
      return insn;
    }
    case 0xCB:
      insn.op = Op::kRetf;
      return insn;
    case 0xCE:
      insn.op = Op::kInto;
      return insn;
    case 0xCC:
      insn.op = Op::kInt3;
      return insn;
    case 0xCD: {
      insn.op = Op::kInt;
      insn.int_vector = cur.next8();
      return insn;
    }
    case 0xCF:
      insn.op = Op::kIret;
      return insn;
    case 0xD0: case 0xD1: case 0xD2: case 0xD3: {  // shift by 1 / by CL
      insn.width = (op & 1) ? 4 : 1;
      insn.dst = parse_modrm(cur, reg_field, seg);
      insn.op = kShiftOps[reg_field];
      if (op < 0xD2) {
        insn.src = Operand::make_imm(1);
      } else {
        insn.src = Operand::make_reg(kEcx);  // shift count in CL
      }
      return insn;
    }
    case 0xD4: {  // aam imm8: divides AL — the rare #DE source
      insn.op = Op::kAam;
      insn.src = Operand::make_imm(cur.next8());
      return insn;
    }
    case 0xD5: {  // aad imm8
      insn.op = Op::kAad;
      insn.src = Operand::make_imm(cur.next8());
      return insn;
    }
    case 0xD6:
      insn.op = Op::kSalc;
      return insn;
    case 0xD7:
      insn.op = Op::kXlat;
      return insn;
    case 0xD8: case 0xD9: case 0xDA: case 0xDB:
    case 0xDC: case 0xDD: case 0xDE: case 0xDF: {  // x87 escape
      insn.op = Op::kFpu;
      insn.dst = parse_modrm(cur, reg_field, seg);
      return insn;
    }
    case 0xE0: case 0xE1: {  // loopne / loope
      insn.op = Op::kLoop;
      insn.cond = (op == 0xE1) ? 1 : 0;  // 1 = loop-while-equal
      insn.src_width = 1;                // marks condition-checking form
      insn.rel = sign_extend32(cur.next8(), 8);
      return insn;
    }
    case 0xE2: {
      insn.op = Op::kLoop;
      insn.rel = sign_extend32(cur.next8(), 8);
      return insn;
    }
    case 0xE3: {
      insn.op = Op::kJecxz;
      insn.rel = sign_extend32(cur.next8(), 8);
      return insn;
    }
    case 0xE4: case 0xE5: case 0xE6: case 0xE7: {  // in/out al/eax, imm8
      insn.op = Op::kInOut;
      cur.next8();
      return insn;
    }
    case 0x6C: case 0x6D: case 0x6E: case 0x6F: {  // ins / outs
      insn.op = Op::kInsOuts;
      insn.width = (op & 1) ? w32 : 1;
      insn.src_width = (op >= 0x6E) ? 1 : 0;  // 1 = outs (reads [esi])
      return insn;
    }
    case 0xEA: {  // jmp far ptr16:32
      insn.op = Op::kJmpFar;
      cur.next32();
      cur.next16();
      return insn;
    }
    case 0xEC: case 0xED: case 0xEE: case 0xEF: {  // in/out al/eax, dx
      insn.op = Op::kInOut;
      return insn;
    }
    case 0xE8: {
      insn.op = Op::kCall;
      insn.rel = static_cast<i32>(cur.next32());
      return insn;
    }
    case 0xE9: {
      insn.op = Op::kJmp;
      insn.rel = static_cast<i32>(cur.next32());
      return insn;
    }
    case 0xEB: {
      insn.op = Op::kJmp;
      insn.rel = sign_extend32(cur.next8(), 8);
      return insn;
    }
    case 0xF4:
      insn.op = Op::kHlt;
      return insn;
    case 0xF1:
      insn.op = Op::kInt3;  // int1/icebp: debug trap
      return insn;
    case 0xF5:
      insn.op = Op::kCmc;
      return insn;
    case 0xF8:
      insn.op = Op::kClc;
      return insn;
    case 0xF9:
      insn.op = Op::kStc;
      return insn;
    case 0xFA:
      insn.op = Op::kCli;
      return insn;
    case 0xFB:
      insn.op = Op::kSti;
      return insn;
    case 0xFC:
      insn.op = Op::kCld;
      return insn;
    case 0xFD:
      insn.op = Op::kStd;
      return insn;
    case 0xF6: case 0xF7: {  // group 3
      insn.width = (op == 0xF6) ? 1 : 4;
      insn.dst = parse_modrm(cur, reg_field, seg);
      insn.op = kGroup3Ops[reg_field];
      if (insn.op == Op::kInvalid) return invalid(cur.pos());
      if (insn.op == Op::kTest) {
        insn.src =
            Operand::make_imm(insn.width == 1 ? cur.next8() : cur.next32());
      }
      return insn;
    }
    case 0xFE: {  // inc/dec r/m8
      insn.width = 1;
      insn.dst = parse_modrm(cur, reg_field, seg);
      if (reg_field > 1) return invalid(cur.pos());
      insn.op = reg_field == 0 ? Op::kInc : Op::kDec;
      return insn;
    }
    case 0xFF: {  // group 5
      insn.dst = parse_modrm(cur, reg_field, seg);
      switch (reg_field) {
        case 0: insn.op = Op::kInc; return insn;
        case 1: insn.op = Op::kDec; return insn;
        case 2: insn.op = Op::kCall; insn.src_width = 4; return insn;  // indirect
        case 4: insn.op = Op::kJmp; insn.src_width = 4; return insn;   // indirect
        case 6: insn.op = Op::kPush; return insn;
        default: return invalid(cur.pos());
      }
    }
    default:
      break;
  }

  if (op >= 0x70 && op <= 0x7F) {  // jcc rel8
    insn.op = Op::kJcc;
    insn.cond = op & 0x0F;
    insn.rel = sign_extend32(cur.next8(), 8);
    return insn;
  }
  if (op >= 0xB0 && op <= 0xB7) {  // mov r8, imm8
    insn.op = Op::kMov;
    insn.width = 1;
    insn.dst = Operand::make_reg(op & 7);
    insn.src = Operand::make_imm(cur.next8());
    return insn;
  }
  if (op >= 0xB8 && op <= 0xBF) {  // mov r16/32, imm
    insn.op = Op::kMov;
    insn.width = w32;
    insn.dst = Operand::make_reg(op & 7);
    insn.src = Operand::make_imm(next_imm());
    return insn;
  }

  return invalid(cur.pos());
}

}  // namespace

DecodeResult decode(const FetchWindow& window) {
  DecodeResult result;
  Cursor cur(window);
  result.insn = decode_inner(cur);
  if (cur.oob()) {
    // Ran past the readable bytes: if the window was truncated by memory
    // (valid < kMaxInsnBytes), the fetch itself faults.  A full window can
    // never overrun (max encoding fits), so this is always a fetch fault.
    result.fetch_fault = true;
    result.fault_addr = window.pc + window.valid;
    return result;
  }
  result.insn.length = cur.pos();
  return result;
}

}  // namespace kfi::cisca
