// System-register bank of the cisca (P4-like) processor.
//
// The paper's P4 register campaign targeted "system registers [that] assist
// in initializing the processor and controlling system operations": the
// system flags in EFLAGS, control registers, debug registers, the stack
// pointer, FS/GS segment registers, and memory-management registers
// (Section 5.2).  This bank exposes exactly that set (~20 registers) for
// enumeration and bit-flipping by the register injector.
#pragma once

#include "isa/sysreg.hpp"

namespace kfi::cisca {

class CiscaCpu;

class CiscaSysRegs final : public isa::SystemRegisterBank {
 public:
  explicit CiscaSysRegs(CiscaCpu& cpu) : cpu_(cpu) {}

  u32 count() const override;
  const isa::SysRegInfo& info(u32 index) const override;
  u32 read(u32 index) const override;
  void write(u32 index, u32 value) override;

 private:
  CiscaCpu& cpu_;
};

}  // namespace kfi::cisca
