// Register model of the cisca (P4-like) processor.
//
// Eight 32-bit general-purpose registers with the IA-32 names and the
// IA-32 property that matters most to the study: there are only eight, so
// compiled kernel code constantly spills to the stack through EBP frames,
// which is why stack errors hit the P4 kernel so much harder than the G4
// (Section 5.1).
#pragma once

#include "common/types.hpp"

namespace kfi::cisca {

enum Gpr : u8 {
  kEax = 0,
  kEcx = 1,
  kEdx = 2,
  kEbx = 3,
  kEsp = 4,
  kEbp = 5,
  kEsi = 6,
  kEdi = 7,
  kNumGprs = 8,
};

const char* gpr_name(u8 reg);

/// EFLAGS bit positions (IA-32 layout).  NT is the bit whose corruption the
/// paper traced to Invalid TSS crashes.
enum EflagsBit : u32 {
  kFlagCF = 0,
  kFlagPF = 2,
  kFlagZF = 6,
  kFlagSF = 7,
  kFlagIF = 9,
  kFlagDF = 10,
  kFlagOF = 11,
  kFlagNT = 14,
};

/// CR0 bit positions.  PE/WP/PG carry semantics in the simulator; the other
/// 8 architecturally-defined flag bits exist but are inert, and the
/// remaining bits are reserved — matching the paper's note that only 11 of
/// CR0's 32 bits are meaningful, so most CR0 flips are benign.
enum Cr0Bit : u32 {
  kCr0PE = 0,   // protected mode enable; cleared => #GP storm
  kCr0MP = 1,
  kCr0EM = 2,
  kCr0TS = 3,
  kCr0ET = 4,
  kCr0NE = 5,
  kCr0WP = 16,  // supervisor write-protect honoring
  kCr0AM = 18,
  kCr0NW = 29,
  kCr0CD = 30,
  kCr0PG = 31,  // paging enable; cleared => translation loss => #GP
};

/// Segment override selectors for FS/GS-relative addressing.
enum class SegOverride : u8 { kNone = 0, kFs = 1, kGs = 2 };

/// Trace register slots (trace::RegSlot values) for the shadow taint
/// engine.  GPRs occupy slots 0..7 directly (so ESP is slot kEsp); the
/// byte sub-registers AL..BH alias their parent GPR's slot — the shadow
/// model is whole-register.
enum TraceSlot : u16 {
  kSlotEip = 8,
  kSlotEflags = 9,
  kSlotCr0 = 10,
  kSlotCr2 = 11,
  kSlotCr3 = 12,
  kSlotCr4 = 13,
  kSlotDr0 = 14,  // DR0..DR3 then DR6, DR7 contiguously
  kSlotDr6 = 18,
  kSlotDr7 = 19,
  kSlotFs = 20,
  kSlotGs = 21,
  kSlotGdtrBase = 22,
  kSlotGdtrLimit = 23,
  kSlotIdtrBase = 24,
  kSlotIdtrLimit = 25,
  kSlotLdtr = 26,
  kSlotTr = 27,
  kCiscaSlotCount = 28,
};

/// Full architectural register file.
struct RegFile {
  u32 gpr[kNumGprs] = {};
  u32 eip = 0;
  u32 eflags = 0x00000202;  // IF set, reserved bit 1 set (IA-32 constant)
  u32 cr0 = 0x80010001;     // PG | WP | PE: normal protected-mode kernel
  u32 cr2 = 0;              // page-fault linear address
  u32 cr3 = 0x00001000;     // page directory base (symbolic)
  u32 cr4 = 0x000006d0;
  u32 dr[4] = {};           // debug address registers (inert storage)
  u32 dr6 = 0;
  u32 dr7 = 0;
  u32 fs = 0x30;            // selector into the simulated GDT
  u32 gs = 0x38;
  u32 gdtr_base = 0xC0002000, gdtr_limit = 0xFF;
  u32 idtr_base = 0xC0002800, idtr_limit = 0x7FF;
  u32 ldtr = 0;
  u32 tr = 0x28;            // task register (TSS selector)
};

}  // namespace kfi::cisca
