// Decoded-instruction representation for the cisca (P4-like) processor.
//
// Instructions are 1–8 bytes: optional segment-override prefix, opcode
// byte(s), optional ModRM/SIB, optional displacement, optional immediate.
// Because the length is data-dependent, a single bit flip can change how
// many bytes an instruction consumes and re-align the whole downstream
// stream into different — frequently still valid — instructions.  That is
// the paper's Figure 14 mechanism and the root of most P4-vs-G4 behavioural
// differences; the decoder preserves it faithfully.
#pragma once

#include <string>

#include "common/types.hpp"
#include "cisca/regs.hpp"
#include "isa/opclass.hpp"

namespace kfi::cisca {

enum class Op : u8 {
  kInvalid = 0,
  // ALU (dst op= src), also used for cmp (flags only).
  kAdd, kOr, kAdc, kSbb, kAnd, kSub, kXor, kCmp,
  kTest,
  kMov, kMovzx, kMovsx,
  kLea, kXchg,
  kInc, kDec,
  kPush, kPop,
  kJcc, kJmp, kCall, kRet, kLeave,
  kPushf, kPopf,
  kNop, kHlt,
  kUd2, kInt, kInt3, kIret, kBound,
  kRol, kRor, kRcl, kRcr, kShl, kShr, kSar,
  kNot, kNeg, kMul, kImul, kDiv, kIdiv,
  kCwde, kCdq,
  kJecxz, kLoop,
  kMovFromCr, kMovToCr,      // mov r32, cr / mov cr, r32
  kMovFromSeg, kMovToSeg,    // mov r/m, sreg / mov sreg, r/m (FS/GS only)
  // Realistic-density additions (all architected IA-32; several are prime
  // crash vectors when reached through re-aligned instruction streams).
  kMovs, kCmps, kStos, kLods, kScas,   // string ops (rep-able)
  kPusha, kPopa,
  kSalc, kXlat,
  kClc, kStc, kCmc, kCld, kStd, kCli, kSti,
  kFpu,        // x87 escape: memory operand side effects, no FP state
  kEnter, kRetf, kInto, kJmpFar, kCallFar,
  kAam, kAad, kArpl,
  kInsOuts,    // ins/outs: port<->[edi]/[esi]
  kInOut,      // in/out al/eax, imm/dx
  kFwait,
};

/// Condition codes (IA-32 tttn encoding).
enum Cond : u8 {
  kCondO = 0, kCondNO, kCondB, kCondAE, kCondE, kCondNE, kCondBE, kCondA,
  kCondS, kCondNS, kCondP, kCondNP, kCondL, kCondGE, kCondLE, kCondG,
};

struct MemOperand {
  static constexpr u8 kNoReg = 0xFF;
  u8 base = kNoReg;
  u8 index = kNoReg;
  u8 scale = 1;      // 1, 2, 4, 8
  i32 disp = 0;
  SegOverride seg = SegOverride::kNone;
};

enum class OperandKind : u8 { kNone, kReg, kMem, kImm };

struct Operand {
  OperandKind kind = OperandKind::kNone;
  u8 reg = 0;        // when kReg (Gpr index; or CR/seg index for mov cr/seg)
  MemOperand mem{};  // when kMem
  i64 imm = 0;       // when kImm

  static Operand make_reg(u8 r) {
    Operand o;
    o.kind = OperandKind::kReg;
    o.reg = r;
    return o;
  }
  static Operand make_mem(const MemOperand& m) {
    Operand o;
    o.kind = OperandKind::kMem;
    o.mem = m;
    return o;
  }
  static Operand make_imm(i64 v) {
    Operand o;
    o.kind = OperandKind::kImm;
    o.imm = v;
    return o;
  }
};

struct Insn {
  Op op = Op::kInvalid;
  u8 length = 1;       // total bytes consumed (valid even for kInvalid >= 1)
  u8 width = 4;        // operand width in bytes: 1, 2, or 4
  u8 cond = 0;         // for kJcc
  u8 src_width = 0;    // for movzx/movsx: source width (1 or 2)
  Operand dst{};
  Operand src{};
  i32 rel = 0;         // branch displacement (rel8/rel32, sign-extended)
  u8 int_vector = 0;   // for kInt
  bool rep = false;    // F3 prefix
  bool repne = false;  // F2 prefix

  /// Disassembly for diagnostics and the worked-example reproductions.
  std::string to_string() const;
};

/// Functional-unit class of an opcode.  Static per-Op: a kMov is counted
/// as load/store regardless of whether a given encoding touches memory —
/// the generator targets instruction bytes, not operand traffic.
isa::OpClass opclass(Op op);

}  // namespace kfi::cisca
