#include "fabric/shard.hpp"

#include <cstdlib>

namespace kfi::fabric {

std::vector<std::vector<u32>> shard_indices(u32 total, u32 shards) {
  std::vector<std::vector<u32>> out(shards == 0 ? 1 : shards);
  const u32 n = static_cast<u32>(out.size());
  const u32 base = total / n;
  const u32 extra = total % n;
  u32 next = 0;
  for (u32 s = 0; s < n; ++s) {
    const u32 len = base + (s < extra ? 1 : 0);
    out[s].reserve(len);
    for (u32 i = 0; i < len; ++i) out[s].push_back(next++);
  }
  return out;
}

std::string shard_journal_path(const std::string& prefix, u32 shard,
                               u32 shards) {
  return prefix + ".shard" + std::to_string(shard) + "of" +
         std::to_string(shards) + ".kfij";
}

std::string format_index_ranges(const std::vector<u32>& indices) {
  std::string out;
  size_t i = 0;
  while (i < indices.size()) {
    size_t j = i;
    while (j + 1 < indices.size() && indices[j + 1] == indices[j] + 1) ++j;
    if (!out.empty()) out += ",";
    out += std::to_string(indices[i]);
    if (j > i) out += "-" + std::to_string(indices[j]);
    i = j + 1;
  }
  return out;
}

std::optional<std::vector<u32>> parse_index_ranges(const std::string& text) {
  std::vector<u32> out;
  size_t pos = 0;
  auto parse_u32 = [&](u32& value) -> bool {
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
      return false;
    }
    u64 v = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      v = v * 10 + static_cast<u64>(text[pos] - '0');
      if (v > 0xFFFFFFFFull) return false;
      ++pos;
    }
    value = static_cast<u32>(v);
    return true;
  };
  while (pos < text.size()) {
    u32 lo = 0;
    if (!parse_u32(lo)) return std::nullopt;
    u32 hi = lo;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
      if (!parse_u32(hi) || hi < lo) return std::nullopt;
    }
    if (!out.empty() && lo <= out.back()) return std::nullopt;
    for (u64 i = lo; i <= hi; ++i) out.push_back(static_cast<u32>(i));
    if (pos < text.size()) {
      if (text[pos] != ',') return std::nullopt;
      ++pos;
      if (pos == text.size()) return std::nullopt;  // trailing comma
    }
  }
  return out;
}

}  // namespace kfi::fabric
