#include "fabric/splice.hpp"

#include <cstring>
#include <fstream>
#include <optional>

#include "errnoinj/errno_model.hpp"
#include "inject/fault_model.hpp"
#include "inject/plan.hpp"

namespace kfi::fabric {

namespace {

constexpr u32 kJournalMagic = 0x4B46494A;  // "KFIJ" (journal.cpp's framing)
constexpr u32 kEntryMagic = 0x4B464945;    // "KFIE"

u64 fnv1a(const u8* data, size_t size) {
  u64 h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void put32(std::vector<u8>& out, u32 v) {
  out.push_back(static_cast<u8>(v >> 24));
  out.push_back(static_cast<u8>(v >> 16));
  out.push_back(static_cast<u8>(v >> 8));
  out.push_back(static_cast<u8>(v));
}

void put64(std::vector<u8>& out, u64 v) {
  put32(out, static_cast<u32>(v >> 32));
  put32(out, static_cast<u32>(v));
}

/// FNV over every field of an entry that enters the result fingerprint
/// or the campaign merge.  Two entries for the same index must agree on
/// this digest (determinism guarantees records depend only on
/// (plan, index)); observational blocks (propagation) are deliberately
/// excluded so a traced and an untraced worker's records still splice.
u64 entry_core_digest(const inject::JournalEntry& e) {
  u64 h = 0xcbf29ce484222325ull;
  auto mix = [&h](u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  const inject::InjectionRecord& r = e.record;
  mix(e.index);
  mix(static_cast<u64>(r.outcome));
  mix(r.activated ? 1 : 0);
  mix(r.activation_cycle);
  mix(r.latency_base_cycle);
  mix(r.cycles_to_crash);
  mix(r.crashed ? 1 : 0);
  mix(r.crash_report_received ? 1 : 0);
  mix(static_cast<u64>(r.crash.cause));
  mix(r.crash.pc);
  mix(r.syscalls_completed);
  if (r.cascade_valid) {
    mix(0xCA5CADEull);
    mix(r.cascade.forced);
    mix(r.cascade.deviating_ops);
    mix(r.cascade.cascade_length);
    mix(static_cast<u64>(r.cascade.containment));
  }
  mix(e.reboots);
  mix(e.datagrams_sent);
  mix(e.datagrams_dropped);
  mix(e.simulated_cycles);
  return h;
}

bool is_quarantined(const inject::JournalEntry& e) {
  return e.record.outcome == inject::OutcomeCategory::kHarnessError;
}

/// Shared dedup core: fold `entries` into the per-index choice table.
void choose_entries(std::vector<std::optional<inject::JournalEntry>>& chosen,
                    std::vector<inject::JournalEntry>&& entries,
                    const std::string& path, SpliceStats& stats) {
  for (inject::JournalEntry& e : entries) {
    ++stats.entries;
    std::optional<inject::JournalEntry>& slot = chosen[e.index];
    if (!slot.has_value()) {
      slot = std::move(e);
      continue;
    }
    ++stats.duplicates;
    if (is_quarantined(*slot) && !is_quarantined(e)) {
      slot = std::move(e);  // a real record supersedes a harness error
      continue;
    }
    if (!is_quarantined(*slot) && !is_quarantined(e) &&
        entry_core_digest(*slot) != entry_core_digest(e)) {
      throw inject::JournalError(
          "shard journals disagree at index " + std::to_string(e.index) +
          " (" + path + "): the shard set mixes campaigns");
    }
  }
}

}  // namespace

inject::CampaignResult splice_journals(const inject::CampaignPlan& plan,
                                       const std::vector<std::string>& paths,
                                       SpliceStats* stats_out) {
  SpliceStats stats;
  const u32 total = static_cast<u32>(plan.targets.size());
  std::vector<std::optional<inject::JournalEntry>> chosen(total);

  const u64 want_plan = inject::plan_fingerprint(plan);
  const u64 want_model = inject::fault_model_fingerprint(plan.spec.model);
  const u64 want_errno =
      errnoinj::errno_model_fingerprint(plan.spec.errno_model);

  for (const std::string& path : paths) {
    inject::JournalFileData data = inject::read_journal_file(path);
    if (data.plan_fingerprint != want_plan) {
      throw inject::JournalError("shard journal " + path +
                                 " was written for a different campaign "
                                 "plan (fingerprint mismatch)");
    }
    if (data.version >= inject::kJournalVersionV3 &&
        data.fault_model_fingerprint != want_model) {
      throw inject::JournalError("shard journal " + path +
                                 " was written for a different fault model");
    }
    if (data.version >= inject::kJournalVersion &&
        data.errno_model_fingerprint != want_errno) {
      throw inject::JournalError("shard journal " + path +
                                 " was written for a different errno model");
    }
    if (data.total != total) {
      throw inject::JournalError(
          "shard journal " + path + " expects " + std::to_string(data.total) +
          " targets, plan has " + std::to_string(total));
    }
    ++stats.files;
    choose_entries(chosen, std::move(data.entries), path, stats);
  }

  inject::CampaignResult result;
  result.spec = plan.spec;
  result.nominal_cycles = plan.nominal_cycles;
  result.kernel_fraction = plan.kernel_fraction;
  result.hot_functions = plan.hot_functions;
  result.records.resize(total);
  result.done_mask.assign(total, 0);
  for (u32 i = 0; i < total; ++i) {
    if (!chosen[i].has_value()) {
      ++stats.missing;
      result.interrupted = true;
      continue;
    }
    const inject::JournalEntry& e = *chosen[i];
    result.records[i] = e.record;
    result.done_mask[i] = 1;
    result.reboots += e.reboots;
    result.datagrams_sent += e.datagrams_sent;
    result.datagrams_dropped += e.datagrams_dropped;
    result.throughput.simulated_cycles += e.simulated_cycles;
    ++stats.chosen;
    if (is_quarantined(e)) {
      ++stats.quarantined;
      ++result.quarantined;
    }
  }
  result.resumed_records = stats.chosen;
  result.fabric_spliced_duplicates = stats.duplicates;
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

SpliceStats splice_journal_files(const std::vector<std::string>& paths,
                                 const std::string& out_path) {
  if (paths.empty()) {
    throw inject::JournalError("splice needs at least one shard journal");
  }
  SpliceStats stats;
  std::optional<inject::JournalFileData> first;
  std::vector<std::optional<inject::JournalEntry>> chosen;
  for (const std::string& path : paths) {
    inject::JournalFileData data = inject::read_journal_file(path);
    if (!first.has_value()) {
      first = data;
      chosen.resize(data.total);
    } else {
      if (data.version != first->version ||
          data.plan_fingerprint != first->plan_fingerprint ||
          data.fault_model_fingerprint != first->fault_model_fingerprint ||
          data.errno_model_fingerprint != first->errno_model_fingerprint ||
          data.total != first->total) {
        throw inject::JournalError(
            "shard journal " + path +
            " does not match the first shard's header (version or "
            "fingerprint mismatch): the shard set mixes campaigns");
      }
    }
    ++stats.files;
    choose_entries(chosen, std::move(data.entries), path, stats);
  }

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw inject::JournalError("cannot create spliced journal at " +
                               out_path);
  }
  std::vector<u8> header;
  put32(header, kJournalMagic);
  put32(header, first->version);
  put64(header, first->plan_fingerprint);
  if (first->version >= inject::kJournalVersionV3) {
    put64(header, first->fault_model_fingerprint);
  }
  if (first->version >= inject::kJournalVersion) {
    put64(header, first->errno_model_fingerprint);
  }
  put32(header, first->total);
  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<long>(header.size()));
  for (u32 i = 0; i < first->total; ++i) {
    if (!chosen[i].has_value()) {
      ++stats.missing;
      continue;
    }
    ++stats.chosen;
    if (is_quarantined(*chosen[i])) ++stats.quarantined;
    std::vector<u8> payload;
    inject::serialize_journal_entry(payload, *chosen[i], first->version);
    std::vector<u8> frame;
    frame.reserve(payload.size() + 20);
    put32(frame, kEntryMagic);
    put32(frame, i);
    put32(frame, static_cast<u32>(payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());
    put64(frame, fnv1a(payload.data(), payload.size()));
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<long>(frame.size()));
  }
  out.flush();
  if (!out) {
    throw inject::JournalError("write failed for spliced journal " +
                               out_path);
  }
  return stats;
}

}  // namespace kfi::fabric
