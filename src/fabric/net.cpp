#include "fabric/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "fabric/codec.hpp"

namespace kfi::fabric {

namespace {

constexpr u32 kMsgMagic = 0x4B464E4D;  // "KFNM"
// Journal blobs dominate message size; a 16-record shard is a few KB and
// even a million-record shard stays far under this.
constexpr u32 kMaxMsgLen = 256u << 20;

using codec::Cursor;
using codec::fnv1a;
using codec::put8;
using codec::put32;
using codec::put64;
using codec::put_blob;
using codec::put_double;
using codec::put_string;

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

bool write_all(int fd, const void* data, size_t size) {
  const u8* p = static_cast<const u8*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

bool send_all(int fd, const void* data, size_t size) {
  const u8* p = static_cast<const u8*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

bool read_exact(int fd, void* data, size_t size) {
  u8* p = static_cast<u8*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-read
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

int tcp_listen(const std::string& bind_addr, u16 port, std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (err != nullptr) *err = errno_text("socket");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = "bad bind address '" + bind_addr + "'";
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (err != nullptr) *err = errno_text("bind");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 16) != 0) {
    if (err != nullptr) *err = errno_text("listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

u16 local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int tcp_connect(const std::string& host, u16 port, double timeout_seconds,
                std::string* err) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int gai = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (gai != 0 || res == nullptr) {
    if (err != nullptr) {
      *err = "cannot resolve '" + host + "': " + ::gai_strerror(gai);
    }
    return -1;
  }
  int fd = -1;
  std::string last_err = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      last_err = errno_text("socket");
      continue;
    }
    // Non-blocking connect so a black-holed host costs `timeout_seconds`,
    // not the kernel's multi-minute SYN retry budget.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      const int timeout_ms =
          timeout_seconds > 0.0 ? static_cast<int>(timeout_seconds * 1000.0)
                                : -1;
      do {
        rc = ::poll(&pfd, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc <= 0) {
        last_err = rc == 0 ? "connect timed out" : errno_text("poll");
        ::close(fd);
        fd = -1;
        continue;
      }
      int so_err = 0;
      socklen_t len = sizeof(so_err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_err, &len);
      if (so_err != 0) {
        last_err = std::string("connect: ") + std::strerror(so_err);
        ::close(fd);
        fd = -1;
        continue;
      }
    } else if (rc != 0) {
      last_err = errno_text("connect");
      ::close(fd);
      fd = -1;
      continue;
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    break;
  }
  ::freeaddrinfo(res);
  if (fd < 0 && err != nullptr) {
    *err = "connect to " + host + ":" + service + " failed: " + last_err;
  }
  return fd;
}

std::vector<u8> encode_message(const NetMessage& msg) {
  std::vector<u8> payload;
  payload.reserve(msg.body.size() + 1);
  put8(payload, static_cast<u8>(msg.type));
  payload.insert(payload.end(), msg.body.begin(), msg.body.end());

  std::vector<u8> out;
  out.reserve(payload.size() + 16);
  put32(out, kMsgMagic);
  put32(out, static_cast<u32>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put64(out, fnv1a(payload.data(), payload.size()));
  return out;
}

bool send_message(int fd, const NetMessage& msg) {
  const std::vector<u8> bytes = encode_message(msg);
  return send_all(fd, bytes.data(), bytes.size());
}

void MsgReader::feed(const u8* data, size_t size) {
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 65536) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
}

std::optional<NetMessage> MsgReader::next() {
  if (corrupted_) return std::nullopt;
  Cursor c{buf_, pos_};
  if (!c.have(8)) return std::nullopt;
  if (c.get32() != kMsgMagic) {
    corrupted_ = true;
    return std::nullopt;
  }
  const u32 len = c.get32();
  if (len < 1 || len > kMaxMsgLen) {
    corrupted_ = true;
    return std::nullopt;
  }
  if (!c.have(len + 8)) return std::nullopt;  // partial message: wait
  const size_t payload_at = c.pos;
  c.pos += len;
  const u64 checksum = c.get64();
  if (checksum != fnv1a(buf_.data() + payload_at, len)) {
    corrupted_ = true;
    return std::nullopt;
  }
  const u8 type = buf_[payload_at];
  if (type < static_cast<u8>(MsgType::kSubmit) ||
      type > static_cast<u8>(MsgType::kJournal)) {
    corrupted_ = true;
    return std::nullopt;
  }
  NetMessage msg;
  msg.type = static_cast<MsgType>(type);
  msg.body.assign(buf_.begin() + static_cast<long>(payload_at + 1),
                  buf_.begin() + static_cast<long>(payload_at + len));
  pos_ = c.pos;
  return msg;
}

std::vector<u8> encode_submit(const SubmitRequest& req) {
  std::vector<u8> out;
  put8(out, req.protocol);
  put64(out, req.expect_plan_fp);
  put32(out, req.shard);
  put32(out, req.shards);
  put8(out, req.fresh ? 1 : 0);
  put32(out, req.jobs);
  put32(out, req.retries);
  put_double(out, req.heartbeat_seconds);
  put_double(out, req.stall_seconds);
  put8(out, req.flush);
  put_string(out, req.indices);
  put_blob(out, req.spec);
  return out;
}

std::optional<SubmitRequest> decode_submit(const std::vector<u8>& body) {
  Cursor c{body, 0};
  SubmitRequest req;
  req.protocol = c.get8();
  req.expect_plan_fp = c.get64();
  req.shard = c.get32();
  req.shards = c.get32();
  req.fresh = c.get8() != 0;
  req.jobs = c.get32();
  req.retries = c.get32();
  req.heartbeat_seconds = c.get_double();
  req.stall_seconds = c.get_double();
  req.flush = c.get8();
  req.indices = c.get_string();
  req.spec = c.get_blob();
  if (!c.ok || c.pos != body.size()) return std::nullopt;
  return req;
}

std::vector<u8> encode_accept(const AcceptInfo& info) {
  std::vector<u8> out;
  put64(out, info.plan_fingerprint);
  put32(out, info.resumed);
  put32(out, info.pid);
  return out;
}

std::optional<AcceptInfo> decode_accept(const std::vector<u8>& body) {
  Cursor c{body, 0};
  AcceptInfo info;
  info.plan_fingerprint = c.get64();
  info.resumed = c.get32();
  info.pid = c.get32();
  if (!c.ok || c.pos != body.size()) return std::nullopt;
  return info;
}

std::vector<u8> encode_refusal(const Refusal& refusal) {
  std::vector<u8> out;
  put8(out, static_cast<u8>(refusal.code));
  put_string(out, refusal.reason);
  return out;
}

std::optional<Refusal> decode_refusal(const std::vector<u8>& body) {
  Cursor c{body, 0};
  Refusal refusal;
  const u8 code = c.get8();
  if (code < static_cast<u8>(RefuseCode::kSkew) ||
      code > static_cast<u8>(RefuseCode::kBadRequest)) {
    return std::nullopt;
  }
  refusal.code = static_cast<RefuseCode>(code);
  refusal.reason = c.get_string();
  if (!c.ok || c.pos != body.size()) return std::nullopt;
  return refusal;
}

std::optional<std::vector<HostSpec>> parse_host_list(const std::string& text) {
  std::vector<HostSpec> hosts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    const size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= item.size()) {
      return std::nullopt;
    }
    HostSpec spec;
    spec.host = item.substr(0, colon);
    const std::string port_text = item.substr(colon + 1);
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
      return std::nullopt;
    }
    spec.port = static_cast<u16>(port);
    hosts.push_back(std::move(spec));
    if (comma == text.size()) break;
    start = comma + 1;
  }
  if (hosts.empty()) return std::nullopt;
  return hosts;
}

}  // namespace kfi::fabric
