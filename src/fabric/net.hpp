// Fabric network transport: the multi-host control plane.
//
// A remote campaign runs over one TCP connection per (host, shard):
//
//   client                          kfi_campaignd
//     | -- KFNM kSubmit ------------->|   protocol version + spec blob +
//     |                               |   expected plan fingerprint +
//     |                               |   index slice + engine knobs
//     | <-- KFNM kAccept / kRefuse ---|   skew refused BEFORE any injection
//     | <-- KFNM kStatus ... ---------|   body = one KFFR StatusFrame
//     |        (hello/progress/       |   (heartbeats renew the client's
//     |         heartbeat/done)       |    remote lease; progress frames
//     |                               |    carry the live outcome tally)
//     | <-- KFNM kJournal ------------|   the completed shard journal,
//     |                               |   byte-for-byte
//
// Everything on the socket is a KFNM message: length-framed and
// checksummed exactly like the KFFR status frames ("KFNM" | len |
// type+body | fnv64), decoded incrementally by MsgReader so arbitrary
// TCP segmentation is survivable and corruption is flagged loudly.
// Status traffic rides INSIDE kStatus messages as ordinary KFFR frames,
// so the single-host fabric's FrameReader and StatusFrame codec are
// reused unchanged — one status vocabulary for pipes and sockets.
//
// This header also owns the shared low-level write/read helpers: every
// fabric pipe- and socket-write path retries EINTR and short writes the
// same way the journal's appends always have.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace kfi::fabric {

/// write(2) the whole buffer, retrying short writes and EINTR.  Returns
/// false on any other error (e.g. EPIPE/ECONNRESET: the peer is gone).
bool write_all(int fd, const void* data, size_t size);

/// write_all for sockets: send(2) with MSG_NOSIGNAL, so a vanished peer
/// surfaces as a false return (EPIPE) instead of a SIGPIPE.  Pipes keep
/// using write_all — the single-host worker relies on the default
/// SIGPIPE disposition for orphan suicide.
bool send_all(int fd, const void* data, size_t size);

/// read(2) exactly `size` bytes, retrying short reads and EINTR.
/// Returns false on EOF or any other error before `size` bytes arrived.
bool read_exact(int fd, void* data, size_t size);

/// Bind + listen on `bind_addr:port` (port 0 = ephemeral).  Returns the
/// listening fd, or -1 with `*err` describing the failure.
int tcp_listen(const std::string& bind_addr, u16 port, std::string* err);

/// The port a listening/connected socket is actually bound to (resolves
/// an ephemeral bind); 0 on error.
u16 local_port(int fd);

/// Connect to `host:port` with a wall-clock timeout.  Returns a blocking
/// connected fd with TCP_NODELAY set, or -1 with `*err` filled.
int tcp_connect(const std::string& host, u16 port, double timeout_seconds,
                std::string* err);

/// Bumped whenever any fabric wire format changes shape.  A daemon and
/// client disagreeing on this number refuse each other up front — the
/// same version-skew stance the spec-blob fingerprint handshake takes.
constexpr u8 kNetProtocolVersion = 1;

enum class MsgType : u8 {
  kSubmit = 1,   // client -> daemon: run one shard of a campaign
  kAccept = 2,   // daemon -> client: plan rebuilt, fingerprints agree
  kRefuse = 3,   // daemon -> client: typed refusal, nothing was run
  kStatus = 4,   // daemon -> client: one KFFR StatusFrame as the body
  kJournal = 5,  // daemon -> client: completed shard journal bytes
};

struct NetMessage {
  MsgType type = MsgType::kStatus;
  std::vector<u8> body;
};

std::vector<u8> encode_message(const NetMessage& msg);

/// encode_message + write_all in one step.
bool send_message(int fd, const NetMessage& msg);

/// Incremental KFNM decoder, same contract as wire.hpp's FrameReader:
/// feed() raw socket bytes, next() pops complete messages, corruption
/// (bad magic, bad checksum, unknown type, absurd length) latches
/// corrupted() and the peer should be dropped.
class MsgReader {
 public:
  void feed(const u8* data, size_t size);
  std::optional<NetMessage> next();
  bool corrupted() const { return corrupted_; }

 private:
  std::vector<u8> buf_;
  size_t pos_ = 0;
  bool corrupted_ = false;
};

/// Why a daemon refused a submission.  kSkew and kBadRequest are hard
/// configuration errors (the client aborts with a typed FabricError
/// before any injection runs anywhere); kBusy is transient — the shard
/// is already being run by a live session, retry after a backoff.
enum class RefuseCode : u8 {
  kSkew = 1,        // protocol version or plan fingerprint mismatch
  kBusy = 2,        // this (plan, shard) already has a live session
  kBadRequest = 3,  // malformed submission
};

struct SubmitRequest {
  u8 protocol = kNetProtocolVersion;
  u64 expect_plan_fp = 0;  // daemon refuses if its rebuilt plan differs
  u32 shard = 0;
  u32 shards = 1;
  /// Fresh run: drop any existing daemon-side journal for this
  /// (plan, shard) before running.  Re-dispatches and --resume send
  /// false, so a restarted daemon resumes its local journal and the
  /// dead host's completed indices are never re-executed.
  bool fresh = false;
  u32 jobs = 1;
  u32 retries = 1;
  double heartbeat_seconds = 1.0;
  double stall_seconds = 0.0;
  u8 flush = 0;  // inject::FlushPolicy byte
  std::string indices;  // shard.hpp range format
  std::vector<u8> spec;  // wire.hpp CampaignSpec blob
};

std::vector<u8> encode_submit(const SubmitRequest& req);
std::optional<SubmitRequest> decode_submit(const std::vector<u8>& body);

struct AcceptInfo {
  u64 plan_fingerprint = 0;
  u32 resumed = 0;  // slice indices already covered by the local journal
  u32 pid = 0;      // daemon pid (diagnostics)
};

std::vector<u8> encode_accept(const AcceptInfo& info);
std::optional<AcceptInfo> decode_accept(const std::vector<u8>& body);

struct Refusal {
  RefuseCode code = RefuseCode::kBadRequest;
  std::string reason;
};

std::vector<u8> encode_refusal(const Refusal& refusal);
std::optional<Refusal> decode_refusal(const std::vector<u8>& body);

/// One "host:port" endpoint of a campaign fabric.
struct HostSpec {
  std::string host;
  u16 port = 0;

  std::string label() const { return host + ":" + std::to_string(port); }
};

/// Parse "host1:port1,host2:port2".  Returns nullopt on malformed text,
/// an empty element, or an out-of-range port.
std::optional<std::vector<HostSpec>> parse_host_list(const std::string& text);

}  // namespace kfi::fabric
