#include "fabric/coordinator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/rng.hpp"
#include "fabric/shard.hpp"
#include "fabric/wire.hpp"

namespace kfi::fabric {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Unit {
  u32 shard = 0;
  std::vector<u32> slice;
  std::string journal;
  enum class State { kPending, kRunning, kDone } state = State::kPending;
  u32 dispatches = 0;  // launches so far (first launch gets the chaos kill)
  Clock::time_point eligible_at = Clock::time_point::min();
  StatusFrame done_frame{};
  bool have_done_frame = false;
};

struct Slot {
  u32 id = 0;
  u32 restarts = 0;  // deaths this slot has absorbed
  bool retired = false;
  Rng backoff_rng{1};
  // Running-worker state (valid while unit >= 0).
  pid_t pid = -1;
  int status_fd = -1;
  int unit = -1;
  FrameReader reader;
  Clock::time_point last_heard = Clock::time_point::min();
  bool got_done = false;
  bool got_error = false;
  std::string error_message;
};

}  // namespace

std::vector<u32> remaining_indices(const std::string& path,
                                   const std::vector<u32>& slice,
                                   u64 want_plan_fp) {
  inject::JournalFileData data;
  try {
    data = inject::read_journal_file(path);
  } catch (const inject::JournalError&) {
    return slice;  // no usable journal yet: everything remains
  }
  if (data.plan_fingerprint != want_plan_fp) {
    throw FabricError("stale shard journal " + path +
                      " belongs to a different campaign; remove it or "
                      "choose another --journal prefix");
  }
  std::vector<u8> done;
  for (const inject::JournalEntry& e : data.entries) {
    if (e.record.outcome == inject::OutcomeCategory::kHarnessError) continue;
    if (e.index >= done.size()) done.resize(e.index + 1, 0);
    done[e.index] = 1;
  }
  std::vector<u32> remaining;
  for (const u32 i : slice) {
    if (i >= done.size() || !done[i]) remaining.push_back(i);
  }
  return remaining;
}

FabricCoordinator::FabricCoordinator(FabricOptions options)
    : opt_(std::move(options)) {
  if (opt_.workers == 0) opt_.workers = 1;
  if (opt_.min_workers == 0) opt_.min_workers = 1;
  opt_.min_workers = std::min(opt_.min_workers, opt_.workers);
  if (opt_.journal_prefix.empty()) {
    throw FabricError("fabric needs a journal prefix (--journal)");
  }
  if (opt_.worker_binary.empty()) {
    throw FabricError("fabric needs the kfi_worker binary path");
  }
}

std::vector<std::string> FabricCoordinator::journal_paths(u32 total) const {
  const auto slices = shard_indices(total, opt_.workers);
  std::vector<std::string> paths;
  for (u32 s = 0; s < slices.size(); ++s) {
    if (slices[s].empty()) continue;
    paths.push_back(shard_journal_path(opt_.journal_prefix, s,
                                       static_cast<u32>(slices.size())));
  }
  return paths;
}

inject::CampaignResult FabricCoordinator::run(const inject::CampaignPlan& plan,
                                              SpliceStats* stats) {
  const Clock::time_point run_start = Clock::now();
  const u32 total = static_cast<u32>(plan.targets.size());
  const u64 plan_fp = inject::plan_fingerprint(plan);
  const std::string spec_hex = to_hex(serialize_campaign_spec(plan.spec));
  char plan_fp_hex[17];
  std::snprintf(plan_fp_hex, sizeof(plan_fp_hex), "%016llx",
                static_cast<unsigned long long>(plan_fp));

  const auto slices = shard_indices(total, opt_.workers);
  const u32 shards = static_cast<u32>(slices.size());

  std::vector<Unit> units;
  for (u32 s = 0; s < shards; ++s) {
    Unit u;
    u.shard = s;
    u.slice = slices[s];
    u.journal = shard_journal_path(opt_.journal_prefix, s, shards);
    if (u.slice.empty()) u.state = Unit::State::kDone;
    units.push_back(std::move(u));
  }

  std::vector<Slot> slots(opt_.workers);
  for (u32 s = 0; s < opt_.workers; ++s) {
    slots[s].id = s;
    slots[s].backoff_rng =
        Rng(plan_fp ^ 0xFABC0FFull ^ (0x9E3779B97F4A7C15ull * (s + 1)));
  }

  u64 deaths = 0, redispatches = 0, backoff_waits = 0;
  double backoff_seconds = 0.0;

  auto live_slots = [&slots]() {
    u32 n = 0;
    for (const Slot& s : slots) n += s.retired ? 0 : 1;
    return n;
  };

  auto kill_all = [&slots]() {
    for (Slot& s : slots) {
      if (s.pid > 0) {
        ::kill(s.pid, SIGKILL);
        ::waitpid(s.pid, nullptr, 0);
        s.pid = -1;
      }
      if (s.status_fd >= 0) {
        ::close(s.status_fd);
        s.status_fd = -1;
      }
    }
  };

  auto spawn = [&](Slot& slot, Unit& unit,
                   const std::vector<u32>& indices) {
    int fds[2];
    if (::pipe2(fds, O_CLOEXEC) != 0) {
      throw FabricError(std::string("pipe2 failed: ") + std::strerror(errno));
    }
    std::vector<std::string> args = {
        opt_.worker_binary,
        "--spec", spec_hex,
        "--expect-plan-fp", plan_fp_hex,
        "--indices", format_index_ranges(indices),
        "--journal", unit.journal,
        "--shard", std::to_string(unit.shard),
        "--shards", std::to_string(shards),
        "--status-fd", std::to_string(fds[1]),
        "--jobs", std::to_string(opt_.jobs_per_worker),
        "--heartbeat", std::to_string(opt_.heartbeat_seconds),
        "--retries", std::to_string(opt_.retries),
        "--journal-flush",
        opt_.flush == inject::FlushPolicy::kFsync ? "fsync" : "flush",
    };
    if (opt_.stall_seconds > 0.0) {
      args.push_back("--stall");
      args.push_back(std::to_string(opt_.stall_seconds));
    }
    if (opt_.chaos_kill_after > 0 && unit.dispatches == 0) {
      args.push_back("--chaos-kill-after");
      args.push_back(std::to_string(opt_.chaos_kill_after));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw FabricError(std::string("fork failed: ") + std::strerror(errno));
    }
    if (pid == 0) {
      // Child: keep the write end across exec, drop everything else.
      ::fcntl(fds[1], F_SETFD, 0);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::fprintf(stderr, "fabric: exec %s failed: %s\n", argv[0],
                   std::strerror(errno));
      ::_exit(127);
    }
    ::close(fds[1]);
    slot.pid = pid;
    slot.status_fd = fds[0];
    slot.unit = static_cast<int>(&unit - units.data());
    slot.reader = FrameReader();
    slot.last_heard = Clock::now();
    slot.got_done = false;
    slot.got_error = false;
    slot.error_message.clear();
    unit.state = Unit::State::kRunning;
    if (unit.dispatches > 0) ++redispatches;
    ++unit.dispatches;
    if (opt_.verbose) {
      std::fprintf(stderr,
                   "fabric: slot %u -> shard %u pid %d (%zu indices%s)\n",
                   slot.id, unit.shard, static_cast<int>(pid), indices.size(),
                   unit.dispatches > 1 ? ", re-dispatch" : "");
    }
  };

  // Reap a finished/dead worker and advance its unit's state machine.
  auto reap = [&](Slot& slot) {
    int status = 0;
    ::waitpid(slot.pid, &status, 0);
    ::close(slot.status_fd);
    Unit& unit = units[static_cast<size_t>(slot.unit)];
    slot.pid = -1;
    slot.status_fd = -1;
    slot.unit = -1;
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (clean && slot.got_done) {
      unit.state = Unit::State::kDone;
      if (opt_.verbose) {
        std::fprintf(stderr, "fabric: shard %u done (slot %u)\n", unit.shard,
                     slot.id);
      }
      return;
    }
    // Death: recover what the journal holds and re-dispatch the rest.
    ++deaths;
    ++slot.restarts;
    const std::vector<u32> remaining =
        remaining_indices(unit.journal, unit.slice, plan_fp);
    if (opt_.verbose) {
      std::fprintf(stderr,
                   "fabric: shard %u worker died (%s%d), %zu of %zu "
                   "indices remain%s%s\n",
                   unit.shard, WIFSIGNALED(status) ? "signal " : "exit ",
                   WIFSIGNALED(status) ? WTERMSIG(status)
                                       : WEXITSTATUS(status),
                   remaining.size(), unit.slice.size(),
                   slot.got_error ? ": " : "",
                   slot.got_error ? slot.error_message.c_str() : "");
    }
    if (remaining.empty()) {
      // Died after its last fsync'd record: nothing left to run.
      unit.state = Unit::State::kDone;
    } else {
      unit.state = Unit::State::kPending;
      double wait = 0.0;
      if (opt_.backoff_base > 0.0) {
        const double exp =
            opt_.backoff_base *
            static_cast<double>(1ull << std::min<u32>(slot.restarts - 1, 30));
        wait = std::min(opt_.backoff_cap, exp) *
               (0.5 + slot.backoff_rng.next_double());
        ++backoff_waits;
        backoff_seconds += wait;
      }
      unit.eligible_at =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(wait));
    }
    if (slot.restarts > opt_.max_restarts_per_slot) {
      slot.retired = true;
      if (opt_.verbose) {
        std::fprintf(stderr, "fabric: slot %u retired after %u deaths\n",
                     slot.id, slot.restarts);
      }
      if (live_slots() < opt_.min_workers) {
        throw FabricError(
            "fabric degraded below --min-workers (" +
            std::to_string(live_slots()) + " live < " +
            std::to_string(opt_.min_workers) +
            "); shard journals are intact — rerun to resume");
      }
    }
  };

  auto handle_frame = [&](Slot& slot, const StatusFrame& frame) {
    slot.last_heard = Clock::now();
    switch (frame.type) {
      case FrameType::kHello:
        if (frame.plan_fingerprint != plan_fp) {
          throw FabricError(
              "worker rebuilt a different plan (fingerprint mismatch): "
              "coordinator and worker binaries disagree");
        }
        break;
      case FrameType::kProgress:
      case FrameType::kHeartbeat:
        break;
      case FrameType::kDone:
        slot.got_done = true;
        if (slot.unit >= 0) {
          Unit& unit = units[static_cast<size_t>(slot.unit)];
          unit.done_frame = frame;
          unit.have_done_frame = true;
        }
        break;
      case FrameType::kError:
        slot.got_error = true;
        slot.error_message = frame.message;
        break;
    }
  };

  try {
    while (true) {
      const Clock::time_point now = Clock::now();

      // Dispatch eligible pending units to idle live slots.
      for (Unit& unit : units) {
        if (unit.state != Unit::State::kPending || unit.eligible_at > now) {
          continue;
        }
        Slot* idle = nullptr;
        for (Slot& s : slots) {
          if (!s.retired && s.unit < 0) {
            idle = &s;
            break;
          }
        }
        if (idle == nullptr) break;
        const std::vector<u32> remaining =
            remaining_indices(unit.journal, unit.slice, plan_fp);
        if (remaining.empty()) {
          unit.state = Unit::State::kDone;
          continue;
        }
        spawn(*idle, unit, remaining);
      }

      u32 pending = 0, running = 0;
      Clock::time_point next_eligible = Clock::time_point::max();
      for (const Unit& u : units) {
        if (u.state == Unit::State::kPending) {
          ++pending;
          next_eligible = std::min(next_eligible, u.eligible_at);
        } else if (u.state == Unit::State::kRunning) {
          ++running;
        }
      }
      if (pending == 0 && running == 0) break;  // every unit done

      if (running == 0) {
        // Pending work, nobody running: either we are waiting out a
        // backoff, or every slot is retired.
        if (live_slots() == 0 || live_slots() < opt_.min_workers) {
          throw FabricError(
              "fabric degraded below --min-workers with work pending; "
              "shard journals are intact — rerun to resume");
        }
        std::this_thread::sleep_until(
            std::min(next_eligible, now + std::chrono::milliseconds(100)));
        continue;
      }

      // Wait for worker traffic, a lease expiry, or a backoff expiry.
      std::vector<pollfd> fds;
      std::vector<Slot*> fd_slots;
      Clock::time_point deadline =
          now + std::chrono::milliseconds(500);
      if (pending > 0) deadline = std::min(deadline, next_eligible);
      for (Slot& s : slots) {
        if (s.unit < 0) continue;
        fds.push_back(pollfd{s.status_fd, POLLIN, 0});
        fd_slots.push_back(&s);
        deadline = std::min(
            deadline, s.last_heard +
                          std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  opt_.lease_seconds)));
      }
      int timeout_ms = static_cast<int>(std::chrono::duration_cast<
                                            std::chrono::milliseconds>(
                                            deadline - Clock::now())
                                            .count());
      timeout_ms = std::max(timeout_ms, 10);
      const int nready = ::poll(fds.data(),
                                static_cast<nfds_t>(fds.size()), timeout_ms);
      if (nready < 0 && errno != EINTR) {
        throw FabricError(std::string("poll failed: ") +
                          std::strerror(errno));
      }

      for (size_t i = 0; i < fds.size(); ++i) {
        Slot& slot = *fd_slots[i];
        if (slot.unit < 0) continue;  // reaped earlier this pass
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        u8 buf[4096];
        const ssize_t n = ::read(slot.status_fd, buf, sizeof(buf));
        if (n > 0) {
          slot.reader.feed(buf, static_cast<size_t>(n));
          while (auto frame = slot.reader.next()) handle_frame(slot, *frame);
          if (slot.reader.corrupted()) {
            // Garbled stream: the worker is not speaking the protocol.
            ::kill(slot.pid, SIGKILL);
            reap(slot);
          }
        } else if (n == 0 || (n < 0 && errno != EINTR)) {
          reap(slot);  // EOF: the worker exited or died
        }
      }

      // Lease check: silent workers are presumed wedged.
      const Clock::time_point after = Clock::now();
      for (Slot& s : slots) {
        if (s.unit < 0) continue;
        if (seconds_between(s.last_heard, after) > opt_.lease_seconds) {
          if (opt_.verbose) {
            std::fprintf(stderr,
                         "fabric: slot %u missed its lease (%.1fs), "
                         "killing pid %d\n",
                         s.id, opt_.lease_seconds, static_cast<int>(s.pid));
          }
          ::kill(s.pid, SIGKILL);
          reap(s);
        }
      }
    }
  } catch (...) {
    kill_all();
    throw;
  }
  kill_all();  // no-op on the clean path; belt and braces

  inject::CampaignResult result =
      splice_journals(plan, journal_paths(total), stats);
  result.fabric_workers = opt_.workers;
  result.fabric_worker_deaths = deaths;
  result.fabric_redispatches = redispatches;
  result.fabric_backoff_waits = backoff_waits;
  result.fabric_backoff_seconds = backoff_seconds;
  for (const Unit& u : units) {
    if (!u.have_done_frame) continue;
    result.stalls += u.done_frame.stalls;
    result.harness_retries += u.done_frame.harness_retries;
    result.retry_backoff_waits += u.done_frame.backoff_waits;
    result.retry_backoff_seconds += u.done_frame.backoff_seconds;
    result.journal_flushes += u.done_frame.executed;
  }
  result.throughput.jobs = opt_.workers * opt_.jobs_per_worker;
  result.throughput.plan_seconds = plan.plan_seconds;
  result.throughput.run_seconds = seconds_between(run_start, Clock::now());
  result.throughput.wall_seconds =
      result.throughput.plan_seconds + result.throughput.run_seconds;
  return result;
}

}  // namespace kfi::fabric
