// RemoteCoordinator: multi-host campaign execution over the fabric
// socket transport.
//
// The coordinator cuts a frozen CampaignPlan's index space into one
// shard per --hosts endpoint and submits each shard to a kfi_campaignd
// daemon over TCP (net.hpp's KFNM session protocol).  The handshake
// carries the expected plan fingerprint: a daemon whose rebuilt plan
// disagrees — or that speaks a different protocol version — refuses with
// a typed error before any injection runs anywhere.
//
// Daemons are crash domains, exactly like PR 9's worker subprocesses:
// every completed injection is flushed to the daemon's LOCAL shard
// journal, so a daemon that is kill -9ed (or whose network drops) loses
// wall-clock time only.  The coordinator holds a wall-clock lease per
// session, renewed by KFFR heartbeat/progress frames riding inside
// kStatus messages; a missed lease revokes the session, the host enters
// a deterministic-seeded exponential backoff, and the shard is
// re-dispatched.  Re-dispatches submit with fresh=false, so the daemon
// resumes its recovered journal and a dead host's completed indices are
// never re-executed on that host.  (A re-dispatch landing on a DIFFERENT
// host re-runs the slice from scratch there — benign, because records
// are pure functions of (plan, index) and the splice dedups identical
// entries.)
//
// Hosts that keep dying are retired; the fabric degrades gracefully
// until fewer than min_workers live hosts remain, then aborts with
// FabricError.  Shard journals — the daemons' and whichever the client
// already retrieved — always survive for a later resume.
//
// When a shard completes, the daemon streams its journal back
// byte-for-byte (kJournal); the client writes it next to the local
// journal prefix and finally splices every shard through the same
// splice_journals the single-host fabric uses.  The result fingerprint
// is bit-identical to the serial run of the same plan — the loopback
// parity tests pin it.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "fabric/coordinator.hpp"  // FabricError, remaining_indices
#include "fabric/net.hpp"
#include "fabric/splice.hpp"
#include "fabric/wire.hpp"
#include "inject/engine.hpp"
#include "inject/journal.hpp"
#include "inject/plan.hpp"

namespace kfi::fabric {

/// Live per-host view handed to the progress callback: what each remote
/// is doing right now, including the outcome tally its latest progress
/// frame carried.  Purely observational.
struct RemoteHostProgress {
  std::string host;   // "host:port" label
  bool connected = false;
  bool done = false;       // shard journal retrieved
  bool retired = false;    // host gave up (too many deaths)
  u32 shard = 0;
  u32 completed = 0;  // slice indices finished (incl. daemon-side resumed)
  u32 total = 0;      // slice size
  std::array<u32, kFrameOutcomeSlots> outcomes{};
};

struct RemoteOptions {
  /// Daemon endpoints; also the shard count.  Required (>= 1).
  std::vector<HostSpec> hosts;
  /// Abort (FabricError) when fewer live hosts than this remain.
  u32 min_workers = 1;
  /// Retrieved shard journals land at "<prefix>.shard<k>of<n>.kfij".
  /// Required.
  std::string journal_prefix;
  /// Fresh run: first submission per shard tells the daemon to drop any
  /// journal it holds for this (plan, shard).  false = resume (daemon-
  /// and client-side journals are kept and deduped against).
  bool fresh = true;
  /// Engine threads inside each daemon run (forwarded in the submit).
  u32 jobs_per_host = 1;
  /// Heartbeat lease: a session silent this long is revoked and its
  /// shard re-dispatched.
  double lease_seconds = 30.0;
  /// Heartbeat period requested of the daemon.
  double heartbeat_seconds = 1.0;
  /// TCP connect timeout per dispatch attempt.
  double connect_timeout_seconds = 5.0;
  /// Exponential backoff before a host's next dispatch after a death:
  /// restart r waits min(cap, base * 2^(r-1)) seconds scaled by a
  /// deterministic jitter in [0.5, 1.5) from an Rng seeded by
  /// (plan fingerprint, host index) — reruns back off identically.
  /// base = 0 retries immediately.
  double backoff_base = 0.05;
  double backoff_cap = 2.0;
  /// Deaths (connection losses, refusals, lease revocations) one host
  /// absorbs before it is retired.
  u32 max_restarts_per_host = 3;
  /// Journal durability requested of the daemon.
  inject::FlushPolicy flush = inject::FlushPolicy::kFsync;
  /// Supervisor knobs forwarded to the daemon's engine.
  u32 retries = 1;
  double stall_seconds = 0.0;
  /// Narrate session lifecycle (dispatch/death/re-dispatch) to stderr.
  bool verbose = false;
  /// Live tally sink: called (from the coordinator thread) whenever any
  /// host reports progress, with a snapshot of every host.  May be empty.
  std::function<void(const std::vector<RemoteHostProgress>&)> progress;
};

class RemoteCoordinator {
 public:
  explicit RemoteCoordinator(RemoteOptions options);

  /// Run the plan across the daemons and splice the retrieved shard
  /// journals into one result.  Throws FabricError on version/plan skew
  /// (typed, before any injection), on degradation below min_workers,
  /// and on local I/O failures; shard journals — remote and local —
  /// survive for a later resume.
  inject::CampaignResult run(const inject::CampaignPlan& plan,
                             SpliceStats* stats = nullptr);

  /// The client-side shard journal paths run() retrieves into
  /// (total = plan targets).
  std::vector<std::string> journal_paths(u32 total) const;

 private:
  RemoteOptions opt_;
};

}  // namespace kfi::fabric
