#include "fabric/remote.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "common/rng.hpp"
#include "fabric/shard.hpp"

namespace kfi::fabric {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

Clock::duration from_seconds(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

struct Unit {
  u32 shard = 0;
  std::vector<u32> slice;
  std::string journal;  // client-side path the retrieved journal lands at
  enum class State { kPending, kRunning, kDone } state = State::kPending;
  u32 dispatches = 0;
  /// A daemon accepted this shard at least once: later dispatches send
  /// fresh=false so the daemon resumes whatever its journal recovered.
  bool ever_accepted = false;
  Clock::time_point eligible_at = Clock::time_point::min();
  StatusFrame done_frame{};
  bool have_done_frame = false;
};

struct Host {
  u32 id = 0;
  HostSpec spec;
  u32 restarts = 0;  // deaths this host has absorbed
  bool retired = false;
  Rng backoff_rng{1};
  inject::FabricHostStats stats;
  // Live-session state (valid while unit >= 0).
  int fd = -1;
  int unit = -1;
  MsgReader msgs;
  FrameReader frames;
  bool accepted = false;
  bool got_error = false;
  std::string error_message;
  Clock::time_point last_heard = Clock::time_point::min();
  // Latest tally for the progress snapshot.
  u32 seen_completed = 0;
  std::array<u32, kFrameOutcomeSlots> seen_outcomes{};
};

/// Atomically land the retrieved journal bytes: a torn write must never
/// masquerade as a complete shard journal.
void write_journal_bytes(const std::string& path, const std::vector<u8>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw FabricError("cannot write retrieved journal " + tmp);
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out.flush()) {
      throw FabricError("short write retrieving journal " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw FabricError("cannot rename " + tmp + " into place: " +
                      std::strerror(errno));
  }
}

}  // namespace

RemoteCoordinator::RemoteCoordinator(RemoteOptions options)
    : opt_(std::move(options)) {
  if (opt_.hosts.empty()) {
    throw FabricError("remote fabric needs at least one --hosts endpoint");
  }
  if (opt_.min_workers == 0) opt_.min_workers = 1;
  opt_.min_workers =
      std::min<u32>(opt_.min_workers, static_cast<u32>(opt_.hosts.size()));
  if (opt_.journal_prefix.empty()) {
    throw FabricError("remote fabric needs a journal prefix (--journal)");
  }
}

std::vector<std::string> RemoteCoordinator::journal_paths(u32 total) const {
  const u32 shards = static_cast<u32>(opt_.hosts.size());
  const auto slices = shard_indices(total, shards);
  std::vector<std::string> paths;
  for (u32 s = 0; s < slices.size(); ++s) {
    if (slices[s].empty()) continue;
    paths.push_back(shard_journal_path(opt_.journal_prefix, s, shards));
  }
  return paths;
}

inject::CampaignResult RemoteCoordinator::run(const inject::CampaignPlan& plan,
                                              SpliceStats* stats) {
  const Clock::time_point run_start = Clock::now();
  const u32 total = static_cast<u32>(plan.targets.size());
  const u64 plan_fp = inject::plan_fingerprint(plan);
  const std::vector<u8> spec_blob = serialize_campaign_spec(plan.spec);
  const u32 shards = static_cast<u32>(opt_.hosts.size());
  const auto slices = shard_indices(total, shards);

  std::vector<Unit> units;
  for (u32 s = 0; s < shards; ++s) {
    Unit u;
    u.shard = s;
    u.slice = slices[s];
    u.journal = shard_journal_path(opt_.journal_prefix, s, shards);
    if (u.slice.empty()) {
      u.state = Unit::State::kDone;
    } else if (!opt_.fresh &&
               remaining_indices(u.journal, u.slice, plan_fp).empty()) {
      // Resume: this shard's journal was already retrieved complete.
      u.state = Unit::State::kDone;
    }
    units.push_back(std::move(u));
  }

  std::vector<Host> hosts(opt_.hosts.size());
  for (u32 h = 0; h < hosts.size(); ++h) {
    hosts[h].id = h;
    hosts[h].spec = opt_.hosts[h];
    hosts[h].stats.host = opt_.hosts[h].label();
    hosts[h].backoff_rng =
        Rng(plan_fp ^ 0xFABC0FFull ^ (0x9E3779B97F4A7C15ull * (h + 1)));
  }

  u64 deaths = 0, redispatches = 0, backoff_waits = 0;
  double backoff_seconds = 0.0;

  auto live_hosts = [&hosts]() {
    u32 n = 0;
    for (const Host& h : hosts) n += h.retired ? 0 : 1;
    return n;
  };

  auto close_all = [&hosts]() {
    for (Host& h : hosts) {
      if (h.fd >= 0) {
        ::close(h.fd);
        h.fd = -1;
      }
    }
  };

  auto emit_progress = [&]() {
    if (!opt_.progress) return;
    std::vector<RemoteHostProgress> snap;
    snap.reserve(hosts.size());
    for (const Host& h : hosts) {
      RemoteHostProgress p;
      p.host = h.spec.label();
      p.connected = h.fd >= 0;
      p.retired = h.retired;
      if (h.unit >= 0) {
        const Unit& u = units[static_cast<size_t>(h.unit)];
        p.shard = u.shard;
        p.completed = h.seen_completed;
        p.total = static_cast<u32>(u.slice.size());
        p.outcomes = h.seen_outcomes;
        p.done = false;
      }
      snap.push_back(std::move(p));
    }
    // Mark done shards on whichever host last ran them is gone; report
    // them via the totals of done units instead.
    opt_.progress(snap);
  };

  /// End a session (socket closed) and decide the unit's fate.  `failed`
  /// means the shard did not complete: recover via backoff + re-dispatch.
  auto end_session = [&](Host& host, bool failed, const char* why) {
    if (host.fd >= 0) {
      ::close(host.fd);
      host.fd = -1;
    }
    if (host.unit < 0) return;
    Unit& unit = units[static_cast<size_t>(host.unit)];
    host.unit = -1;
    host.msgs = MsgReader();
    host.frames = FrameReader();
    host.accepted = false;
    host.seen_completed = 0;
    host.seen_outcomes = {};
    if (!failed) {
      unit.state = Unit::State::kDone;
      host.stats.records += unit.slice.size();
      if (opt_.verbose) {
        std::fprintf(stderr, "fabric: shard %u done (host %s)\n", unit.shard,
                     host.spec.label().c_str());
      }
      return;
    }
    ++deaths;
    ++host.restarts;
    ++host.stats.deaths;
    if (opt_.verbose) {
      std::fprintf(stderr, "fabric: host %s lost shard %u (%s)%s%s\n",
                   host.spec.label().c_str(), unit.shard, why,
                   host.got_error ? ": " : "",
                   host.got_error ? host.error_message.c_str() : "");
    }
    host.got_error = false;
    host.error_message.clear();
    unit.state = Unit::State::kPending;
    double wait = 0.0;
    if (opt_.backoff_base > 0.0) {
      const double exp =
          opt_.backoff_base *
          static_cast<double>(1ull << std::min<u32>(host.restarts - 1, 30));
      wait = std::min(opt_.backoff_cap, exp) *
             (0.5 + host.backoff_rng.next_double());
      ++backoff_waits;
      backoff_seconds += wait;
      ++host.stats.backoff_waits;
      host.stats.backoff_seconds += wait;
    }
    unit.eligible_at = Clock::now() + from_seconds(wait);
    if (host.restarts > opt_.max_restarts_per_host) {
      host.retired = true;
      if (opt_.verbose) {
        std::fprintf(stderr, "fabric: host %s retired after %u deaths\n",
                     host.spec.label().c_str(), host.restarts);
      }
      if (live_hosts() < opt_.min_workers) {
        throw FabricError(
            "remote fabric degraded below --min-workers (" +
            std::to_string(live_hosts()) + " live < " +
            std::to_string(opt_.min_workers) +
            "); shard journals are intact — rerun to resume");
      }
    }
  };

  auto dispatch = [&](Host& host, Unit& unit) {
    std::string err;
    const int fd = tcp_connect(host.spec.host, host.spec.port,
                               opt_.connect_timeout_seconds, &err);
    ++host.stats.dispatches;
    if (unit.dispatches > 0) ++redispatches;
    ++unit.dispatches;
    if (fd < 0) {
      host.fd = -1;
      host.unit = static_cast<int>(&unit - units.data());
      unit.state = Unit::State::kRunning;
      end_session(host, true, err.c_str());
      return;
    }
    SubmitRequest req;
    req.expect_plan_fp = plan_fp;
    req.shard = unit.shard;
    req.shards = shards;
    req.fresh = opt_.fresh && !unit.ever_accepted;
    req.jobs = opt_.jobs_per_host;
    req.retries = opt_.retries;
    req.heartbeat_seconds = opt_.heartbeat_seconds;
    req.stall_seconds = opt_.stall_seconds;
    req.flush = static_cast<u8>(opt_.flush);
    req.indices = format_index_ranges(unit.slice);
    req.spec = spec_blob;
    host.fd = fd;
    host.unit = static_cast<int>(&unit - units.data());
    host.msgs = MsgReader();
    host.frames = FrameReader();
    host.accepted = false;
    host.last_heard = Clock::now();
    unit.state = Unit::State::kRunning;
    if (opt_.verbose) {
      std::fprintf(stderr,
                   "fabric: host %s <- shard %u (%zu indices%s%s)\n",
                   host.spec.label().c_str(), unit.shard, unit.slice.size(),
                   req.fresh ? ", fresh" : ", resume",
                   unit.dispatches > 1 ? ", re-dispatch" : "");
    }
    if (!send_message(fd, NetMessage{MsgType::kSubmit, encode_submit(req)})) {
      end_session(host, true, "submit write failed");
    }
  };

  auto handle_frame = [&](Host& host, const StatusFrame& frame) {
    host.last_heard = Clock::now();
    switch (frame.type) {
      case FrameType::kHello:
        if (frame.plan_fingerprint != plan_fp) {
          throw FabricError(
              "daemon rebuilt a different plan (fingerprint mismatch): "
              "client and daemon binaries disagree");
        }
        break;
      case FrameType::kProgress:
      case FrameType::kHeartbeat:
        if (frame.type == FrameType::kProgress ||
            frame.done > host.seen_completed) {
          host.seen_completed = frame.done;
          host.seen_outcomes = frame.outcomes;
          emit_progress();
        }
        break;
      case FrameType::kDone:
        if (host.unit >= 0) {
          Unit& unit = units[static_cast<size_t>(host.unit)];
          unit.done_frame = frame;
          unit.have_done_frame = true;
          host.seen_completed = static_cast<u32>(unit.slice.size());
          host.seen_outcomes = frame.outcomes;
          emit_progress();
        }
        break;
      case FrameType::kError:
        host.got_error = true;
        host.error_message = frame.message;
        break;
    }
  };

  /// Returns true when the session ended (socket closed) inside.
  auto handle_message = [&](Host& host, NetMessage&& msg) -> bool {
    host.last_heard = Clock::now();
    switch (msg.type) {
      case MsgType::kAccept: {
        const auto info = decode_accept(msg.body);
        if (!info) {
          end_session(host, true, "malformed accept");
          return true;
        }
        if (info->plan_fingerprint != plan_fp) {
          throw FabricError(
              "daemon accepted with a different plan fingerprint: "
              "client and daemon binaries disagree");
        }
        host.accepted = true;
        if (host.unit >= 0) {
          units[static_cast<size_t>(host.unit)].ever_accepted = true;
        }
        if (opt_.verbose && info->resumed > 0) {
          std::fprintf(stderr,
                       "fabric: host %s resumed %u journaled indices\n",
                       host.spec.label().c_str(), info->resumed);
        }
        return false;
      }
      case MsgType::kRefuse: {
        const auto refusal = decode_refusal(msg.body);
        if (!refusal) {
          end_session(host, true, "malformed refusal");
          return true;
        }
        if (refusal->code == RefuseCode::kBusy) {
          // Transient: the daemon still runs a prior session for this
          // shard (e.g. after a lease revocation the daemon outlived).
          end_session(host, true, "daemon busy, will retry");
          return true;
        }
        // kSkew / kBadRequest: hard configuration error, typed, raised
        // before any injection ran anywhere.
        throw FabricError(
            std::string("daemon ") + host.spec.label() + " refused (" +
            (refusal->code == RefuseCode::kSkew ? "version/plan skew"
                                                : "bad request") +
            "): " + refusal->reason);
      }
      case MsgType::kStatus: {
        host.frames.feed(msg.body.data(), msg.body.size());
        while (auto frame = host.frames.next()) handle_frame(host, *frame);
        if (host.frames.corrupted()) {
          end_session(host, true, "corrupt status frame");
          return true;
        }
        return false;
      }
      case MsgType::kJournal: {
        if (host.unit < 0) return false;
        Unit& unit = units[static_cast<size_t>(host.unit)];
        write_journal_bytes(unit.journal, msg.body);
        end_session(host, false, "done");
        emit_progress();
        return true;
      }
      case MsgType::kSubmit:
        end_session(host, true, "protocol violation (submit from daemon)");
        return true;
    }
    return false;
  };

  try {
    while (true) {
      const Clock::time_point now = Clock::now();

      // Dispatch eligible pending units to idle live hosts.
      for (Unit& unit : units) {
        if (unit.state != Unit::State::kPending || unit.eligible_at > now) {
          continue;
        }
        Host* idle = nullptr;
        for (Host& h : hosts) {
          if (!h.retired && h.unit < 0) {
            idle = &h;
            break;
          }
        }
        if (idle == nullptr) break;
        dispatch(*idle, unit);
      }

      u32 pending = 0, running = 0;
      Clock::time_point next_eligible = Clock::time_point::max();
      for (const Unit& u : units) {
        if (u.state == Unit::State::kPending) {
          ++pending;
          next_eligible = std::min(next_eligible, u.eligible_at);
        } else if (u.state == Unit::State::kRunning) {
          ++running;
        }
      }
      if (pending == 0 && running == 0) break;  // every unit done

      if (running == 0) {
        if (live_hosts() == 0 || live_hosts() < opt_.min_workers) {
          throw FabricError(
              "remote fabric degraded below --min-workers with work "
              "pending; shard journals are intact — rerun to resume");
        }
        std::this_thread::sleep_until(
            std::min(next_eligible, now + std::chrono::milliseconds(100)));
        continue;
      }

      // Wait for daemon traffic, a lease expiry, or a backoff expiry.
      std::vector<pollfd> fds;
      std::vector<Host*> fd_hosts;
      Clock::time_point deadline = now + std::chrono::milliseconds(500);
      if (pending > 0) deadline = std::min(deadline, next_eligible);
      for (Host& h : hosts) {
        if (h.fd < 0) continue;
        fds.push_back(pollfd{h.fd, POLLIN, 0});
        fd_hosts.push_back(&h);
        deadline = std::min(deadline,
                            h.last_heard + from_seconds(opt_.lease_seconds));
      }
      int timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - Clock::now())
              .count());
      timeout_ms = std::max(timeout_ms, 10);
      const int nready =
          ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
      if (nready < 0 && errno != EINTR) {
        throw FabricError(std::string("poll failed: ") + std::strerror(errno));
      }

      for (size_t i = 0; i < fds.size(); ++i) {
        Host& host = *fd_hosts[i];
        if (host.fd < 0) continue;  // session ended earlier this pass
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        u8 buf[65536];
        const ssize_t n = ::read(host.fd, buf, sizeof(buf));
        if (n > 0) {
          host.msgs.feed(buf, static_cast<size_t>(n));
          bool ended = false;
          while (!ended) {
            auto msg = host.msgs.next();
            if (!msg) break;
            ended = handle_message(host, std::move(*msg));
          }
          if (!ended && host.msgs.corrupted()) {
            end_session(host, true, "corrupt message stream");
          }
        } else if (n == 0 || (n < 0 && errno != EINTR)) {
          end_session(host, true,
                      n == 0 ? "connection closed" : "read failed");
        }
      }

      // Lease check: silent sessions are presumed dead.
      const Clock::time_point after = Clock::now();
      for (Host& h : hosts) {
        if (h.fd < 0) continue;
        if (seconds_between(h.last_heard, after) > opt_.lease_seconds) {
          ++h.stats.lease_revocations;
          if (opt_.verbose) {
            std::fprintf(stderr,
                         "fabric: host %s missed its lease (%.1fs), "
                         "revoking session\n",
                         h.spec.label().c_str(), opt_.lease_seconds);
          }
          end_session(h, true, "lease expired");
        }
      }
    }
  } catch (...) {
    close_all();
    throw;
  }
  close_all();

  inject::CampaignResult result =
      splice_journals(plan, journal_paths(total), stats);
  result.fabric_workers = static_cast<u32>(hosts.size());
  result.fabric_worker_deaths = deaths;
  result.fabric_redispatches = redispatches;
  result.fabric_backoff_waits = backoff_waits;
  result.fabric_backoff_seconds = backoff_seconds;
  for (const Host& h : hosts) result.fabric_hosts.push_back(h.stats);
  for (const Unit& u : units) {
    if (!u.have_done_frame) continue;
    result.stalls += u.done_frame.stalls;
    result.harness_retries += u.done_frame.harness_retries;
    result.retry_backoff_waits += u.done_frame.backoff_waits;
    result.retry_backoff_seconds += u.done_frame.backoff_seconds;
    result.journal_flushes += u.done_frame.executed;
  }
  result.throughput.jobs =
      static_cast<u32>(hosts.size()) * opt_.jobs_per_host;
  result.throughput.plan_seconds = plan.plan_seconds;
  result.throughput.run_seconds = seconds_between(run_start, Clock::now());
  result.throughput.wall_seconds =
      result.throughput.plan_seconds + result.throughput.run_seconds;
  return result;
}

}  // namespace kfi::fabric
