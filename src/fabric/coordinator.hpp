// FabricCoordinator: crash-isolated multi-process campaign execution.
//
// The coordinator cuts a frozen CampaignPlan's index space into shards
// (one unit of work per shard, each owning a stable journal path) and
// runs them on up to `workers` spawned kfi_worker subprocesses.  Workers
// are crash domains: a worker that segfaults, wedges, or is kill -9ed
// loses nothing but wall-clock time, because every completed injection
// was already fsync'd to its shard journal.  The coordinator notices the
// death (pipe EOF / waitpid, or a missed heartbeat lease), recovers the
// shard's journal, and re-dispatches the remaining indices — deduplicated
// by index against the recovered journal, so no injection ever runs
// twice — to the next free worker slot after a deterministic-seeded
// exponential backoff.
//
// Robustness state machine per unit (shard):
//
//   pending --dispatch--> running --kDone/journal-complete--> done
//      ^                     |
//      +--- backoff(eligible_at) --- death (exit!=0, signal, lease miss)
//
// and per slot: a slot that keeps killing its workers (restarts >
// max_restarts_per_slot) is retired; the fabric degrades gracefully until
// fewer than `min_workers` live slots remain, at which point it aborts
// with FabricError — leaving every shard journal on disk, so the whole
// fabric is resumable (the coordinator itself may be SIGKILLed at any
// point: shard boundaries are pure functions of (total, shards), so a
// rerun recomputes identical slices and resumes each shard's journal).
//
// When every unit is done the shard journals are spliced into one
// CampaignResult whose result_fingerprint is byte-identical to the
// single-process run of the same plan.
#pragma once

#include <string>
#include <vector>

#include "fabric/splice.hpp"
#include "inject/engine.hpp"
#include "inject/journal.hpp"
#include "inject/plan.hpp"

namespace kfi::fabric {

/// Coordinator-level failure: spawn machinery broke, a worker reported a
/// plan fingerprint mismatch, or the fabric degraded below min_workers.
/// Shard journals are always left on disk — the campaign is resumable.
struct FabricError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Indices of `slice` not yet carrying a successful record in the shard
/// journal at `path`.  Quarantined (harness-error) entries stay in the
/// remaining set — the engine re-executes them on resume, exactly like a
/// single-process resume would.  A missing or torn-at-frame-zero journal
/// means the whole slice remains; a journal for a different campaign is
/// a hard configuration error (FabricError).  Shared by the local and
/// remote coordinators.
std::vector<u32> remaining_indices(const std::string& path,
                                   const std::vector<u32>& slice,
                                   u64 want_plan_fp);

struct FabricOptions {
  /// Worker subprocess slots (>= 1); also the shard count.
  u32 workers = 2;
  /// Abort (FabricError) when fewer live slots than this remain.
  u32 min_workers = 1;
  /// Engine threads inside each worker (kfi_worker --jobs).
  u32 jobs_per_worker = 1;
  /// Shard journals live at "<prefix>.shard<k>of<n>.kfij".  Required.
  std::string journal_prefix;
  /// Path to the kfi_worker binary.  Required.
  std::string worker_binary;
  /// Heartbeat lease: a running worker that stays silent this long is
  /// presumed wedged, SIGKILLed, and its shard re-dispatched.
  double lease_seconds = 30.0;
  /// Heartbeat period requested of workers (kfi_worker --heartbeat).
  double heartbeat_seconds = 1.0;
  /// Exponential backoff before re-dispatching a dead worker's shard:
  /// restart r of slot s waits min(cap, base * 2^r) seconds scaled by a
  /// deterministic jitter in [0.5, 1.5) from an Rng seeded by
  /// (plan fingerprint, slot) — reruns back off identically.  base = 0
  /// restarts immediately.
  double backoff_base = 0.05;
  double backoff_cap = 2.0;
  /// Worker deaths a single slot absorbs before it is retired.
  u32 max_restarts_per_slot = 3;
  /// Chaos knob: each shard's FIRST worker launch self-SIGKILLs after
  /// completing this many injections (0 = off).  Restarted workers run
  /// to completion, so the campaign still finishes — the chaos tests use
  /// this for deterministic mid-campaign worker loss.
  u32 chaos_kill_after = 0;
  /// Journal durability policy for the shard journals.
  inject::FlushPolicy flush = inject::FlushPolicy::kFsync;
  /// Supervisor knobs forwarded to each worker's engine.
  u32 retries = 1;
  double stall_seconds = 0.0;
  /// Narrate worker lifecycle events (spawn/death/re-dispatch) to stderr.
  bool verbose = false;
};

class FabricCoordinator {
 public:
  explicit FabricCoordinator(FabricOptions options);

  /// Run the plan across worker subprocesses and splice the shard
  /// journals into one result.  Existing shard journals for the same
  /// plan are resumed (SIGKILL-safe: rerunning after any crash — worker
  /// or coordinator — continues where the journals stopped).  Throws
  /// FabricError when the fabric cannot make progress; the shard
  /// journals survive for a later resume.
  inject::CampaignResult run(const inject::CampaignPlan& plan,
                             SpliceStats* stats = nullptr);

  /// The shard journal paths run() uses for `plan` (total = targets).
  std::vector<std::string> journal_paths(u32 total) const;

 private:
  FabricOptions opt_;
};

}  // namespace kfi::fabric
