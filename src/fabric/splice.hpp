// Journal splicing: shard journals -> one campaign result, bit-identical
// to the single-process run.
//
// Every record depends only on (plan, index), so reassembling a campaign
// from shard journals is pure bookkeeping: records land at their plan
// index, counter deltas are order-independent per-injection sums.  The
// splice is therefore exact, not approximate — result_fingerprint of the
// spliced result equals the serial run's, which the fabric parity tests
// assert.
//
// Dedup rules (an index may appear in several entries after worker
// deaths and re-dispatches):
//   * a successful record beats a quarantined (harness-error) one —
//     mirroring the engine's own resume, which re-executes quarantined
//     indices;
//   * two successful entries for one index must serialize byte-identically
//     (determinism guarantees it; a mismatch means the shard set mixes
//     campaigns and is refused with a JournalError);
//   * counter deltas are summed once per index, from the chosen entry.
#pragma once

#include <string>
#include <vector>

#include "inject/engine.hpp"
#include "inject/journal.hpp"

namespace kfi::fabric {

struct SpliceStats {
  u64 files = 0;
  u64 entries = 0;     // intact entries read across all shards
  u64 chosen = 0;      // distinct indices carrying a record
  u64 duplicates = 0;  // redundant entries dropped by dedup
  u64 quarantined = 0; // chosen records that are harness errors
  u64 missing = 0;     // plan indices with no entry (incomplete fabric)
};

/// Merge shard journal files into a CampaignResult for `plan`.  Each file
/// is validated against the plan exactly like InjectionJournal::resume
/// (fingerprint, model fingerprints, target count); torn tails are
/// ignored, not truncated.  Missing indices leave default records with
/// `interrupted` set, so a partial fabric run still reports faithfully.
inject::CampaignResult splice_journals(const inject::CampaignPlan& plan,
                                       const std::vector<std::string>& paths,
                                       SpliceStats* stats = nullptr);

/// Plan-free splice: merge shard journal files into one journal file at
/// `out_path`, validating only that every shard's header agrees with the
/// first's (version, fingerprints, total).  The merged file is a normal
/// journal — `kfi_campaign --journal out --resume` picks it up.  Frames
/// are written in index order at the shards' common version.
SpliceStats splice_journal_files(const std::vector<std::string>& paths,
                                 const std::string& out_path);

}  // namespace kfi::fabric
