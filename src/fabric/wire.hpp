// Fabric wire formats: the coordinator <-> worker control plane.
//
// Two byte formats live here, both big-endian like the journal and the
// crash datagrams:
//
//   * CampaignSpec blobs — the coordinator hands each kfi_worker its
//     campaign spec as a hex-encoded binary blob on the command line.
//     Workers rebuild the plan from the spec (plan building is
//     deterministic) and refuse to run if the rebuilt plan's fingerprint
//     differs from the one the coordinator expected, so any drift between
//     the two processes' builds is caught before the first injection.
//
//   * StatusFrames — length-framed, checksummed messages a worker writes
//     to its status pipe: HELLO when the plan is built, PROGRESS per
//     completed injection, HEARTBEAT on a wall-clock tick (so a lease
//     can outlive one long injection), DONE with the run's supervisor
//     totals, ERROR with a message on a fatal worker exception.  The
//     coordinator's FrameReader consumes the pipe incrementally: frames
//     may arrive split or coalesced, and a torn final frame (worker
//     SIGKILLed mid-write) is simply never completed — the death is
//     detected by waitpid, not by the stream.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "inject/plan.hpp"

namespace kfi::fabric {

/// Serialize every plan-relevant field of a CampaignSpec (the same set
/// plan_fingerprint hashes, plus the bit-exact perf knobs so workers run
/// the same configuration they would in-process).
std::vector<u8> serialize_campaign_spec(const inject::CampaignSpec& spec);

/// Inverse of serialize_campaign_spec.  Returns nullopt on truncated
/// input or out-of-range enum bytes (never throws, never overreads).
std::optional<inject::CampaignSpec> deserialize_campaign_spec(
    const std::vector<u8>& in);

/// Lower-case hex codec for passing blobs through argv.
std::string to_hex(const std::vector<u8>& bytes);
std::optional<std::vector<u8>> from_hex(const std::string& hex);

enum class FrameType : u8 {
  kHello = 1,      // plan built: fingerprint + shard + pid
  kProgress = 2,   // one more slice index completed
  kHeartbeat = 3,  // wall-clock liveness tick
  kDone = 4,       // slice finished: supervisor totals
  kError = 5,      // fatal worker error: message
};

/// Outcome-count slots carried by progress/heartbeat/done frames: one
/// per inject::OutcomeCategory, in enum order (the live tally a remote
/// coordinator renders per host).  Sized here so the wire layout is
/// explicit; wire.cpp asserts it matches the enum.
constexpr size_t kFrameOutcomeSlots = 6;

/// One decoded control-plane message.  Fields are meaningful per type
/// (unused ones stay zero); the wire layout is uniform so the codec has
/// exactly one serializer.
struct StatusFrame {
  FrameType type = FrameType::kHeartbeat;
  // kHello
  u64 plan_fingerprint = 0;
  u32 shard = 0;
  u32 pid = 0;
  // kProgress
  u32 done = 0;   // completed indices in this worker's slice (incl. resumed)
  u32 total = 0;  // slice size
  /// Live outcome tally over the slice so far (resumed + executed),
  /// indexed by inject::OutcomeCategory.  Zeroes when the sender does
  /// not track outcomes.
  std::array<u32, kFrameOutcomeSlots> outcomes{};
  // kDone
  u64 executed = 0;
  u64 quarantined = 0;
  u64 stalls = 0;
  u64 harness_retries = 0;
  u64 backoff_waits = 0;
  double backoff_seconds = 0.0;
  // kError
  std::string message;
};

std::vector<u8> encode_frame(const StatusFrame& frame);

/// Incremental frame decoder over a byte stream.  feed() appends raw pipe
/// bytes; next() pops the earliest complete frame, or nullopt while the
/// buffer holds only a partial frame.  A checksum or magic mismatch
/// latches corrupted() — the coordinator treats that worker as faulty.
class FrameReader {
 public:
  void feed(const u8* data, size_t size);
  std::optional<StatusFrame> next();
  bool corrupted() const { return corrupted_; }

 private:
  std::vector<u8> buf_;
  size_t pos_ = 0;  // consumed prefix, compacted lazily
  bool corrupted_ = false;
};

}  // namespace kfi::fabric
