// Shard math: how a frozen plan's index space is cut across worker
// processes, and how index sets travel on a worker's command line.
//
// Shard boundaries are pure functions of (total, shards): the coordinator
// can be SIGKILLed and restarted and will recompute the same slices, so
// every shard journal file it finds on disk still means what it meant.
// Slices are contiguous and near-equal (the first `total % shards` slices
// get one extra index), matching how the single-process engine's merge
// is index-ordered.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace kfi::fabric {

/// Cut [0, total) into `shards` contiguous near-equal slices.  Trailing
/// slices may be empty when shards > total (their workers have nothing to
/// do and complete immediately).
std::vector<std::vector<u32>> shard_indices(u32 total, u32 shards);

/// Canonical journal path for one shard of a fabric campaign:
/// "<prefix>.shard<k>of<n>.kfij".  Stable across coordinator restarts.
std::string shard_journal_path(const std::string& prefix, u32 shard,
                               u32 shards);

/// Render a sorted unique index set as compact ranges: "0-5,9,12-14".
/// Empty set renders as "" (a worker with an empty slice is legal).
std::string format_index_ranges(const std::vector<u32>& indices);

/// Inverse of format_index_ranges.  Returns nullopt on malformed text,
/// unsorted ranges, or overlaps — the result is always sorted and unique.
std::optional<std::vector<u32>> parse_index_ranges(const std::string& text);

}  // namespace kfi::fabric
