#include "fabric/wire.hpp"

#include <cstring>

#include "fabric/codec.hpp"

namespace kfi::fabric {

namespace {

constexpr u8 kSpecVersion = 1;
constexpr u32 kFrameMagic = 0x4B464652;  // "KFFR"

using codec::Cursor;
using codec::fnv1a;
using codec::put8;
using codec::put32;
using codec::put64;
using codec::put_double;
using codec::put_string;

static_assert(kFrameOutcomeSlots ==
                  static_cast<size_t>(inject::OutcomeCategory::kNumOutcomes),
              "StatusFrame outcome slots must cover every OutcomeCategory");

}  // namespace

std::vector<u8> serialize_campaign_spec(const inject::CampaignSpec& spec) {
  std::vector<u8> out;
  put8(out, kSpecVersion);
  put8(out, static_cast<u8>(spec.arch));
  put8(out, static_cast<u8>(spec.kind));
  put32(out, spec.injections);
  put64(out, spec.seed);
  put32(out, spec.workload_scale);
  put_double(out, spec.channel_loss);
  put_double(out, spec.budget_factor);
  const kernel::MachineOptions& m = spec.machine;
  put64(out, m.timer_period);
  put64(out, m.user_cycles_mean);
  put8(out, m.g4_stack_wrapper ? 1 : 0);
  put8(out, m.p4_stack_limit_check ? 1 : 0);
  put8(out, m.spinlock_debug ? 1 : 0);
  put64(out, m.seed);
  put8(out, m.decode_cache ? 1 : 0);
  put8(out, m.fast_reboot ? 1 : 0);
  put8(out, m.superblock ? 1 : 0);
  put8(out, m.cow_memory ? 1 : 0);
  const inject::FaultModel& f = spec.model;
  put8(out, static_cast<u8>(f.shape));
  put8(out, static_cast<u8>(f.trigger));
  put32(out, f.bits);
  put32(out, f.burst_span);
  put_double(out, f.rate);
  put8(out, static_cast<u8>(f.opclass));
  const errnoinj::ErrnoModel& e = spec.errno_model;
  put32(out, e.syscalls);
  put8(out, static_cast<u8>(e.value));
  put8(out, static_cast<u8>(e.trigger));
  put32(out, e.nth);
  put_double(out, e.rate);
  return out;
}

std::optional<inject::CampaignSpec> deserialize_campaign_spec(
    const std::vector<u8>& in) {
  Cursor c{in, 0};
  if (c.get8() != kSpecVersion) return std::nullopt;
  inject::CampaignSpec spec;
  const u8 arch = c.get8();
  if (arch > static_cast<u8>(isa::Arch::kRiscf)) return std::nullopt;
  spec.arch = static_cast<isa::Arch>(arch);
  const u8 kind = c.get8();
  if (kind > static_cast<u8>(inject::CampaignKind::kErrno)) {
    return std::nullopt;
  }
  spec.kind = static_cast<inject::CampaignKind>(kind);
  spec.injections = c.get32();
  spec.seed = c.get64();
  spec.workload_scale = c.get32();
  spec.channel_loss = c.get_double();
  spec.budget_factor = c.get_double();
  kernel::MachineOptions& m = spec.machine;
  m.timer_period = c.get64();
  m.user_cycles_mean = c.get64();
  m.g4_stack_wrapper = c.get8() != 0;
  m.p4_stack_limit_check = c.get8() != 0;
  m.spinlock_debug = c.get8() != 0;
  m.seed = c.get64();
  m.decode_cache = c.get8() != 0;
  m.fast_reboot = c.get8() != 0;
  m.superblock = c.get8() != 0;
  m.cow_memory = c.get8() != 0;
  inject::FaultModel& f = spec.model;
  const u8 shape = c.get8();
  if (shape > static_cast<u8>(inject::FaultShape::kOpclass)) {
    return std::nullopt;
  }
  f.shape = static_cast<inject::FaultShape>(shape);
  const u8 trigger = c.get8();
  if (trigger > static_cast<u8>(inject::FaultTrigger::kRate)) {
    return std::nullopt;
  }
  f.trigger = static_cast<inject::FaultTrigger>(trigger);
  f.bits = c.get32();
  f.burst_span = c.get32();
  f.rate = c.get_double();
  const u8 opclass = c.get8();
  if (opclass >= static_cast<u8>(isa::OpClass::kNumClasses)) {
    return std::nullopt;
  }
  f.opclass = static_cast<isa::OpClass>(opclass);
  errnoinj::ErrnoModel& e = spec.errno_model;
  e.syscalls = c.get32();
  const u8 value = c.get8();
  if (value > static_cast<u8>(errnoinj::ErrnoValue::kDrawnNegative)) {
    return std::nullopt;
  }
  e.value = static_cast<errnoinj::ErrnoValue>(value);
  const u8 etrigger = c.get8();
  if (etrigger > static_cast<u8>(errnoinj::ErrnoTrigger::kRate)) {
    return std::nullopt;
  }
  e.trigger = static_cast<errnoinj::ErrnoTrigger>(etrigger);
  e.nth = c.get32();
  e.rate = c.get_double();
  if (!c.ok || c.pos != in.size()) return std::nullopt;
  return spec;
}

std::string to_hex(const std::vector<u8>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const u8 b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

std::optional<std::vector<u8>> from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<u8> out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<u8>((hi << 4) | lo));
  }
  return out;
}

std::vector<u8> encode_frame(const StatusFrame& frame) {
  std::vector<u8> payload;
  put8(payload, static_cast<u8>(frame.type));
  put64(payload, frame.plan_fingerprint);
  put32(payload, frame.shard);
  put32(payload, frame.pid);
  put32(payload, frame.done);
  put32(payload, frame.total);
  for (const u32 n : frame.outcomes) put32(payload, n);
  put64(payload, frame.executed);
  put64(payload, frame.quarantined);
  put64(payload, frame.stalls);
  put64(payload, frame.harness_retries);
  put64(payload, frame.backoff_waits);
  put_double(payload, frame.backoff_seconds);
  put_string(payload, frame.message);

  std::vector<u8> out;
  out.reserve(payload.size() + 16);
  put32(out, kFrameMagic);
  put32(out, static_cast<u32>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put64(out, fnv1a(payload.data(), payload.size()));
  return out;
}

void FrameReader::feed(const u8* data, size_t size) {
  // Compact the consumed prefix before growing, so a long-lived stream
  // doesn't accumulate every frame it ever saw.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
}

std::optional<StatusFrame> FrameReader::next() {
  if (corrupted_) return std::nullopt;
  Cursor c{buf_, pos_};
  if (!c.have(8)) return std::nullopt;  // need magic + length
  if (c.get32() != kFrameMagic) {
    corrupted_ = true;
    return std::nullopt;
  }
  const u32 len = c.get32();
  if (len > (1u << 20)) {  // no legitimate frame is a megabyte
    corrupted_ = true;
    return std::nullopt;
  }
  if (!c.have(len + 8)) return std::nullopt;  // partial frame: wait
  const size_t payload_at = c.pos;
  c.pos += len;
  const u64 checksum = c.get64();
  if (checksum != fnv1a(buf_.data() + payload_at, len)) {
    corrupted_ = true;
    return std::nullopt;
  }

  Cursor p{buf_, payload_at};
  StatusFrame frame;
  const u8 type = p.get8();
  if (type < static_cast<u8>(FrameType::kHello) ||
      type > static_cast<u8>(FrameType::kError)) {
    corrupted_ = true;
    return std::nullopt;
  }
  frame.type = static_cast<FrameType>(type);
  frame.plan_fingerprint = p.get64();
  frame.shard = p.get32();
  frame.pid = p.get32();
  frame.done = p.get32();
  frame.total = p.get32();
  for (u32& n : frame.outcomes) n = p.get32();
  frame.executed = p.get64();
  frame.quarantined = p.get64();
  frame.stalls = p.get64();
  frame.harness_retries = p.get64();
  frame.backoff_waits = p.get64();
  frame.backoff_seconds = p.get_double();
  frame.message = p.get_string();
  if (!p.ok || p.pos != payload_at + len) {
    corrupted_ = true;
    return std::nullopt;
  }
  pos_ = c.pos;
  return frame;
}

}  // namespace kfi::fabric
