// Shared big-endian byte codec for the fabric's wire formats.
//
// Every fabric byte format — the CampaignSpec blob, the KFFR status
// frames, and the KFNM network messages — serializes big-endian with the
// same primitive vocabulary and parses through the same bounds-checked
// cursor (never throws, never overreads, latches `ok = false` on the
// first short read).  Keeping the primitives in one header means a new
// message type cannot invent a subtly different integer layout.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace kfi::fabric::codec {

inline u64 fnv1a(const u8* data, size_t size) {
  u64 h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline void put8(std::vector<u8>& out, u8 v) { out.push_back(v); }

inline void put32(std::vector<u8>& out, u32 v) {
  out.push_back(static_cast<u8>(v >> 24));
  out.push_back(static_cast<u8>(v >> 16));
  out.push_back(static_cast<u8>(v >> 8));
  out.push_back(static_cast<u8>(v));
}

inline void put64(std::vector<u8>& out, u64 v) {
  put32(out, static_cast<u32>(v >> 32));
  put32(out, static_cast<u32>(v));
}

inline void put_double(std::vector<u8>& out, double d) {
  u64 bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  put64(out, bits);
}

inline void put_string(std::vector<u8>& out, const std::string& s) {
  put32(out, static_cast<u32>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

inline void put_blob(std::vector<u8>& out, const std::vector<u8>& b) {
  put32(out, static_cast<u32>(b.size()));
  out.insert(out.end(), b.begin(), b.end());
}

/// Bounds-checked big-endian reader (same shape as the journal's).
struct Cursor {
  const std::vector<u8>& in;
  size_t pos;
  bool ok = true;

  bool have(size_t n) {
    if (!ok || pos > in.size() || in.size() - pos < n) ok = false;
    return ok;
  }
  u8 get8() {
    if (!have(1)) return 0;
    return in[pos++];
  }
  u32 get32() {
    if (!have(4)) return 0;
    const u32 v = (static_cast<u32>(in[pos]) << 24) |
                  (static_cast<u32>(in[pos + 1]) << 16) |
                  (static_cast<u32>(in[pos + 2]) << 8) |
                  static_cast<u32>(in[pos + 3]);
    pos += 4;
    return v;
  }
  u64 get64() {
    const u64 hi = get32();
    return (hi << 32) | get32();
  }
  double get_double() {
    const u64 bits = get64();
    double d = 0.0;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }
  std::string get_string() {
    const u32 len = get32();
    if (!have(len)) return {};
    std::string s(in.begin() + static_cast<long>(pos),
                  in.begin() + static_cast<long>(pos + len));
    pos += len;
    return s;
  }
  std::vector<u8> get_blob() {
    const u32 len = get32();
    if (!have(len)) return {};
    std::vector<u8> b(in.begin() + static_cast<long>(pos),
                      in.begin() + static_cast<long>(pos + len));
    pos += len;
    return b;
  }
};

}  // namespace kfi::fabric::codec
