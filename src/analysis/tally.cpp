#include "analysis/tally.hpp"

namespace kfi::analysis {

using inject::OutcomeCategory;

u32 OutcomeTally::denominator() const {
  if (!activation_known) return injected;
  return activated;
}

double OutcomeTally::activation_rate() const {
  if (injected == 0) return 0.0;
  return static_cast<double>(activated) / injected;
}

double OutcomeTally::manifestation_rate() const {
  const u32 den = denominator();
  if (den == 0) return 0.0;
  const u32 manifested = count(OutcomeCategory::kFailSilenceViolation) +
                         count(OutcomeCategory::kKnownCrash) +
                         count(OutcomeCategory::kHangOrUnknownCrash);
  return static_cast<double>(manifested) / den;
}

double OutcomeTally::fraction(OutcomeCategory cat) const {
  const u32 den = denominator();
  if (den == 0) return 0.0;
  return static_cast<double>(count(cat)) / den;
}

OutcomeTally tally_records(
    const std::vector<inject::InjectionRecord>& records) {
  OutcomeTally t;
  for (const auto& r : records) {
    if (r.outcome == OutcomeCategory::kHarnessError) {
      // The control host, not the target, failed this index: count it in
      // the quarantine row only.
      ++t.quarantined;
      t.outcomes[static_cast<u32>(r.outcome)] += 1;
      continue;
    }
    ++t.injected;
    if (!r.activation_known) t.activation_known = false;
    if (r.activated && r.activation_known) ++t.activated;
    t.outcomes[static_cast<u32>(r.outcome)] += 1;
    if (r.outcome == OutcomeCategory::kKnownCrash) {
      t.crash_causes.add(kernel::crash_cause_name(r.crash.cause));
      t.latency.add(r.cycles_to_crash);
    }
  }
  return t;
}

std::vector<std::pair<isa::OpClass, OutcomeTally>> tally_by_opclass(
    const std::vector<inject::InjectionRecord>& records) {
  std::vector<std::pair<isa::OpClass, OutcomeTally>> out;
  std::vector<inject::InjectionRecord> bucket;
  for (u32 c = 0; c < static_cast<u32>(isa::OpClass::kNumClasses); ++c) {
    const auto cls = static_cast<isa::OpClass>(c);
    bucket.clear();
    for (const auto& r : records) {
      if (r.target.kind == inject::CampaignKind::kCode &&
          r.target.opclass == cls) {
        bucket.push_back(r);
      }
    }
    if (bucket.empty()) continue;
    out.emplace_back(cls, tally_records(bucket));
  }
  return out;
}

}  // namespace kfi::analysis
