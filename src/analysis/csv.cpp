#include "analysis/csv.hpp"

#include <ostream>

#include "common/histogram.hpp"

namespace kfi::analysis {

namespace {

/// The target's primary coordinate, per campaign kind (the first fault
/// site; a rate-mode target can legitimately have none).
std::string target_of(const inject::InjectionTarget& t) {
  if (t.sites.empty()) return "(none)";
  const inject::FaultSite& s = t.site();
  char buf[64];
  switch (t.kind) {
    case inject::CampaignKind::kCode:
      std::snprintf(buf, sizeof(buf), "%s+0x%x", t.function.c_str(), s.addr);
      return buf;
    case inject::CampaignKind::kData:
      std::snprintf(buf, sizeof(buf), "0x%08x", s.addr);
      return buf;
    case inject::CampaignKind::kStack:
      std::snprintf(buf, sizeof(buf), "task%u@%.2f", s.task, s.depth_frac);
      return buf;
    case inject::CampaignKind::kRegister:
      return t.reg_name.empty() ? "reg" + std::to_string(s.reg_index)
                                : t.reg_name;
    case inject::CampaignKind::kErrno:
      // site.task carries the eligible-invocation index for errno targets.
      std::snprintf(buf, sizeof(buf), "invocation%u", s.task);
      return buf;
  }
  return "";
}

u32 bit_of(const inject::InjectionTarget& t) {
  return t.sites.empty() ? 0 : t.site().bit;
}

}  // namespace

void write_records_csv(std::ostream& os,
                       const std::vector<inject::InjectionRecord>& records) {
  os << "index,kind,target,bit,outcome,activated,activation_cycle,"
        "crash_cause,crash_pc,crash_addr,cycles_to_crash,"
        "syscalls_completed\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    os << i << ',' << campaign_kind_name(r.target.kind) << ','
       << target_of(r.target) << ',' << bit_of(r.target) << ','
       << outcome_name(r.outcome) << ',' << (r.activated ? 1 : 0) << ','
       << r.activation_cycle << ',';
    if (r.crashed) {
      char buf[32];
      os << kernel::crash_cause_name(r.crash.cause) << ',';
      std::snprintf(buf, sizeof(buf), "0x%08x", r.crash.pc);
      os << buf << ',';
      std::snprintf(buf, sizeof(buf), "0x%08x", r.crash.addr);
      os << buf << ',' << r.cycles_to_crash;
    } else {
      os << ",,,";
    }
    os << ',' << r.syscalls_completed << '\n';
  }
}

void write_propagation_csv(
    std::ostream& os, const std::vector<inject::InjectionRecord>& records) {
  os << "index,kind,target,bit,outcome,seeded,used,seed_insn,first_use_insn,"
        "first_use_latency,max_depth,tainted_regs_peak,tainted_bytes_peak,"
        "tainted_reads,tainted_writes,tainted_branches,pc_tainted_insns,"
        "objects_crossed,silent_overwrites,syscall_result_tainted,"
        "priv_transitions,live_at_end,live_regs_at_end,live_bytes_at_end\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    if (!r.propagation_valid) continue;
    const trace::PropagationSummary& p = r.propagation;
    os << i << ',' << campaign_kind_name(r.target.kind) << ','
       << target_of(r.target) << ',' << bit_of(r.target) << ','
       << outcome_name(r.outcome) << ',' << (p.seeded ? 1 : 0) << ','
       << (p.used ? 1 : 0) << ',' << p.seed_insn << ',' << p.first_use_insn
       << ',' << p.first_use_latency << ',' << p.max_depth << ','
       << p.tainted_regs_peak << ',' << p.tainted_bytes_peak << ','
       << p.tainted_reads << ',' << p.tainted_writes << ','
       << p.tainted_branches << ',' << p.pc_tainted_insns << ','
       << p.objects_crossed << ',' << p.silent_overwrites << ','
       << (p.syscall_result_tainted ? 1 : 0) << ',' << p.priv_transitions
       << ',' << (p.live_at_end ? 1 : 0) << ',' << p.live_regs_at_end << ','
       << p.live_bytes_at_end << '\n';
  }
}

void write_tally_csv(std::ostream& os, const OutcomeTally& tally) {
  os << "key,value\n";
  os << "injected," << tally.injected << '\n';
  os << "activated,"
     << (tally.activation_known ? std::to_string(tally.activated) : "NA")
     << '\n';
  for (u32 c = 0; c < static_cast<u32>(inject::OutcomeCategory::kNumOutcomes);
       ++c) {
    os << outcome_name(static_cast<inject::OutcomeCategory>(c)) << ','
       << tally.outcomes[c] << '\n';
  }
  for (const auto& cause : tally.crash_causes.keys()) {
    os << "cause: " << cause << ',' << tally.crash_causes.get(cause) << '\n';
  }
}

void write_latency_csv(std::ostream& os, const OutcomeTally& tally) {
  os << "bucket,count,fraction\n";
  for (size_t b = 0; b < tally.latency.bucket_count(); ++b) {
    os << tally.latency.label(b) << ',' << tally.latency.count(b) << ','
       << tally.latency.fraction(b) << '\n';
  }
}

}  // namespace kfi::analysis
