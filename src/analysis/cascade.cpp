#include "analysis/cascade.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "common/table.hpp"
#include "errnoinj/errno_model.hpp"

namespace kfi::analysis {

using errnoinj::CascadeClass;

namespace {

std::string pct(double fraction) { return format_percent(fraction, 1); }

void fold(CascadeTally& t, const inject::InjectionRecord& r) {
  ++t.injected;
  const errnoinj::CascadeSummary& cs = r.cascade;
  if (cs.forced == 0) return;
  ++t.forced_runs;
  t.forced_events += cs.forced;
  switch (cs.containment) {
    case CascadeClass::kNone:
      break;  // unreachable for forced runs, but harmless
    case CascadeClass::kContained:
      ++t.contained;
      break;
    case CascadeClass::kPropagated:
      ++t.propagated;
      break;
    case CascadeClass::kSilent:
      ++t.silent;
      break;
  }
  if (cs.checked_at_site) ++t.checked_at_site;
  if (cs.state_deviation) ++t.state_deviations;
  if (r.crashed) ++t.crashes;
  t.lengths.add(cs.cascade_length);
}

}  // namespace

CascadeTally::CascadeTally() : lengths(make_cascade_length_histogram()) {}

double CascadeTally::containment_rate() const {
  const u32 n = classified();
  return n == 0 ? 0.0 : static_cast<double>(contained + silent) / n;
}

double CascadeTally::fraction_contained() const {
  const u32 n = classified();
  return n == 0 ? 0.0 : static_cast<double>(contained) / n;
}

double CascadeTally::fraction_propagated() const {
  const u32 n = classified();
  return n == 0 ? 0.0 : static_cast<double>(propagated) / n;
}

double CascadeTally::fraction_silent() const {
  const u32 n = classified();
  return n == 0 ? 0.0 : static_cast<double>(silent) / n;
}

BucketHistogram make_cascade_length_histogram() {
  return BucketHistogram({1, 2, 4, 8, 16, 64});
}

CascadeTally tally_cascades(
    const std::vector<inject::InjectionRecord>& records) {
  CascadeTally t;
  for (const auto& r : records) {
    if (r.cascade_valid) fold(t, r);
  }
  return t;
}

std::vector<std::pair<std::string, CascadeTally>> tally_cascades_by_syscall(
    const std::vector<inject::InjectionRecord>& records) {
  // Keyed by syscall number so rows come out in ABI order, then named.
  std::map<u32, CascadeTally> by_nr;
  for (const auto& r : records) {
    if (!r.cascade_valid || r.cascade.forced == 0) continue;
    fold(by_nr[r.cascade.first_forced_syscall], r);
  }
  std::vector<std::pair<std::string, CascadeTally>> out;
  out.reserve(by_nr.size());
  for (auto& [nr, tally] : by_nr) {
    out.emplace_back(errnoinj::syscall_name(nr), std::move(tally));
  }
  return out;
}

std::string render_cascades(
    const std::string& title, const CascadeTally& overall,
    const std::vector<std::pair<std::string, CascadeTally>>& by_syscall) {
  std::ostringstream os;
  os << "Errno cascade analysis — " << title << "\n";
  os << "  injections=" << overall.injected
     << " forced_runs=" << overall.forced_runs
     << " forced_events=" << overall.forced_events
     << " containment=" << pct(overall.containment_rate())
     << " checked_at_site="
     << (overall.forced_runs == 0
             ? pct(0.0)
             : pct(static_cast<double>(overall.checked_at_site) /
                   overall.forced_runs))
     << " state_deviations=" << overall.state_deviations
     << " crashes=" << overall.crashes << "\n";

  AsciiTable table({"Syscall", "Forced runs", "Contained", "Propagated",
                    "Silent", "Checked at site"});
  auto add_row = [&table](const std::string& name, const CascadeTally& t) {
    table.add_row({name, std::to_string(t.forced_runs),
                   pct(t.fraction_contained()), pct(t.fraction_propagated()),
                   pct(t.fraction_silent()),
                   t.forced_runs == 0
                       ? pct(0.0)
                       : pct(static_cast<double>(t.checked_at_site) /
                             t.forced_runs)});
  };
  for (const auto& [name, t] : by_syscall) add_row(name, t);
  add_row("(all)", overall);
  os << table.render();

  os << "Cascade length (workload ops, forced runs)\n";
  AsciiTable lengths({"Bucket", "Count", "Share"});
  for (size_t b = 0; b < overall.lengths.bucket_count(); ++b) {
    lengths.add_row({overall.lengths.label(b),
                     std::to_string(overall.lengths.count(b)),
                     pct(overall.lengths.fraction(b))});
  }
  os << lengths.render();
  return os.str();
}

void write_cascade_csv(std::ostream& os,
                       const std::vector<inject::InjectionRecord>& records) {
  os << "index,outcome,forced,first_forced_op,first_forced_syscall,"
        "natural_ret,forced_ret,deviating_ops,cascade_length,containment,"
        "checked_at_site,state_deviation,crashed,syscalls_completed\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    if (!r.cascade_valid) continue;
    const errnoinj::CascadeSummary& cs = r.cascade;
    os << i << ',' << outcome_name(r.outcome) << ',' << cs.forced << ','
       << cs.first_forced_op << ','
       << (cs.forced > 0 ? errnoinj::syscall_name(cs.first_forced_syscall)
                         : std::string())
       << ',' << cs.natural_ret << ',' << cs.forced_ret << ','
       << cs.deviating_ops << ',' << cs.cascade_length << ','
       << errnoinj::cascade_class_name(cs.containment) << ','
       << (cs.checked_at_site ? 1 : 0) << ',' << (cs.state_deviation ? 1 : 0)
       << ',' << (r.crashed ? 1 : 0) << ',' << r.syscalls_completed << '\n';
  }
}

}  // namespace kfi::analysis
