// Aggregation of injection records into the paper's reporting shapes:
// Table 5/6 outcome rows, crash-cause distributions (Figures 4-6, 10-12),
// and cycles-to-crash histograms (Figure 16).
#pragma once

#include <utility>
#include <vector>

#include "common/counter_map.hpp"
#include "common/histogram.hpp"
#include "inject/record.hpp"

namespace kfi::analysis {

struct OutcomeTally {
  u32 injected = 0;
  u32 activated = 0;
  /// Indices the harness failed to execute (quarantined by the campaign
  /// supervisor).  Reported separately and excluded from `injected` so
  /// harness failures never skew the paper's outcome percentages.
  u32 quarantined = 0;
  bool activation_known = true;  // false for register campaigns
  u32 outcomes[static_cast<u32>(inject::OutcomeCategory::kNumOutcomes)] = {};
  CounterMap crash_causes;                    // known crashes only
  BucketHistogram latency = make_latency_histogram();  // known crashes

  u32 count(inject::OutcomeCategory cat) const {
    return outcomes[static_cast<u32>(cat)];
  }
  /// Denominator for the per-category percentages: activated errors when
  /// activation is monitored, injected errors otherwise (paper convention
  /// for the register rows).
  u32 denominator() const;
  double activation_rate() const;  // of injected
  /// Manifested = FSV + known crash + hang/unknown, over the denominator.
  double manifestation_rate() const;
  double fraction(inject::OutcomeCategory cat) const;
};

OutcomeTally tally_records(const std::vector<inject::InjectionRecord>& records);

/// Per-instruction-class tallies for opclass-targeted (and plain code)
/// campaigns: one entry per OpClass that actually received injections, in
/// OpClass order.
std::vector<std::pair<isa::OpClass, OutcomeTally>> tally_by_opclass(
    const std::vector<inject::InjectionRecord>& records);

}  // namespace kfi::analysis
