#include "analysis/propagation.hpp"

#include <algorithm>
#include <sstream>

#include "common/table.hpp"

namespace kfi::analysis {

BucketHistogram make_first_use_histogram() {
  return BucketHistogram({10, 100, 1'000, 10'000, 100'000, 1'000'000});
}

BucketHistogram make_depth_histogram() {
  return BucketHistogram({1, 2, 4, 8, 16, 64});
}

PropagationTally::PropagationTally()
    : first_use_latency(make_first_use_histogram()),
      depth(make_depth_histogram()) {}

PropagationTally tally_propagation(
    const std::vector<inject::InjectionRecord>& records) {
  PropagationTally tally;
  for (const auto& r : records) {
    if (!r.propagation_valid) continue;
    const trace::PropagationSummary& p = r.propagation;
    ++tally.traced;
    if (!p.seeded) continue;
    ++tally.seeded;
    if (p.used) {
      ++tally.used;
      tally.first_use_latency.add(p.first_use_latency);
      tally.depth.add(p.max_depth);
    }
    if (p.live_at_end) ++tally.live_at_end;
    if (!p.live_at_end && p.silent_overwrites > 0) ++tally.erased;
    if (p.pc_tainted_insns > 0) ++tally.pc_tainted;
    if (p.objects_crossed > 0) ++tally.crossed_subsystem;
    if (p.priv_transitions > 0) ++tally.priv_crossings;
    if (p.syscall_result_tainted) {
      ++tally.syscall_result_tainted;
      if (r.outcome != inject::OutcomeCategory::kFailSilenceViolation) {
        ++tally.fsv_missed_by_checks;
      }
    }
    if (p.max_depth > tally.max_depth_peak) tally.max_depth_peak = p.max_depth;
    tally.silent_overwrites += p.silent_overwrites;
  }
  return tally;
}

std::string render_propagation(const std::string& title,
                               const PropagationTally& tally) {
  std::ostringstream os;
  os << "Error propagation — " << title << "\n";
  if (tally.traced == 0) {
    os << "  (no traced records)\n";
    return os.str();
  }

  const double seeded = static_cast<double>(tally.seeded);
  auto of_seeded = [seeded](u32 n) {
    return seeded > 0.0
               ? format_percent(static_cast<double>(n) / seeded, 1)
               : std::string("n/a");
  };
  AsciiTable table({"Signal", "Runs", "Of seeded"});
  table.add_row({"traced", std::to_string(tally.traced), ""});
  table.add_row({"seeded (flip marked)", std::to_string(tally.seeded),
                 of_seeded(tally.seeded)});
  table.add_row({"used (value consumed)", std::to_string(tally.used),
                 of_seeded(tally.used)});
  table.add_row({"live at end of run", std::to_string(tally.live_at_end),
                 of_seeded(tally.live_at_end)});
  table.add_row({"silently erased", std::to_string(tally.erased),
                 of_seeded(tally.erased)});
  table.add_row({"reached instruction fetch", std::to_string(tally.pc_tainted),
                 of_seeded(tally.pc_tainted)});
  table.add_row({"crossed into another object",
                 std::to_string(tally.crossed_subsystem),
                 of_seeded(tally.crossed_subsystem)});
  table.add_row({"live across privilege switch",
                 std::to_string(tally.priv_crossings),
                 of_seeded(tally.priv_crossings)});
  table.add_row({"tainted syscall result",
                 std::to_string(tally.syscall_result_tainted),
                 of_seeded(tally.syscall_result_tainted)});
  table.add_row({"FSV missed by checks",
                 std::to_string(tally.fsv_missed_by_checks),
                 of_seeded(tally.fsv_missed_by_checks)});
  os << table.render();
  os << "  max chain depth: " << tally.max_depth_peak
     << " hops; silent overwrites: " << tally.silent_overwrites << "\n";

  AsciiTable dist({"First use (insns)", "Runs", "Fraction", "|",
                   "Depth (hops)", "Runs", "Fraction"});
  const size_t rows =
      std::max(tally.first_use_latency.bucket_count(),
               tally.depth.bucket_count());
  for (size_t b = 0; b < rows; ++b) {
    std::vector<std::string> row;
    if (b < tally.first_use_latency.bucket_count()) {
      row.push_back(tally.first_use_latency.label(b));
      row.push_back(std::to_string(tally.first_use_latency.count(b)));
      row.push_back(format_percent(tally.first_use_latency.fraction(b), 1));
    } else {
      row.insert(row.end(), {"", "", ""});
    }
    row.push_back("|");
    if (b < tally.depth.bucket_count()) {
      row.push_back(tally.depth.label(b));
      row.push_back(std::to_string(tally.depth.count(b)));
      row.push_back(format_percent(tally.depth.fraction(b), 1));
    } else {
      row.insert(row.end(), {"", "", ""});
    }
    dist.add_row(row);
  }
  os << dist.render();
  return os.str();
}

}  // namespace kfi::analysis
