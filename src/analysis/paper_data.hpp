// The published numbers from the DSN'04 paper, used by the benchmark
// harness to print measured-vs-paper comparisons for every table and
// figure.  Table and pie-chart percentages are exact transcriptions;
// Figure 16 latency series are approximate values read off the plots,
// anchored to the percentages the text states explicitly (e.g. "about 80%
// of stack-error crashes on the G4 are within 3,000 cycles").
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "inject/record.hpp"
#include "isa/arch.hpp"

namespace kfi::analysis {

/// A named percentage distribution (sums to ~100).
using PaperDist = std::vector<std::pair<std::string, double>>;

/// One row of Table 5 (P4) / Table 6 (G4); percentages as in the paper:
/// activation w.r.t. injected, everything else w.r.t. activated (or
/// injected for the register rows).
struct PaperTableRow {
  u32 injected = 0;
  double activated_pct = -1.0;  // -1 = N/A (register rows)
  double not_manifested_pct = 0;
  double fsv_pct = 0;
  double known_crash_pct = 0;
  double hang_unknown_pct = 0;
};

/// Tables 5/6.
PaperTableRow paper_table_row(isa::Arch arch, inject::CampaignKind kind);

/// Figures 4/5: overall crash-cause distribution (percent of known
/// crashes).  Keys match kernel::crash_cause_name().
PaperDist paper_overall_crash_causes(isa::Arch arch);

/// Figures 6/10/11/12: per-campaign crash-cause distributions.
PaperDist paper_campaign_crash_causes(isa::Arch arch,
                                      inject::CampaignKind kind);

/// Figure 16(A)-(D): cycles-to-crash distribution per campaign, in the
/// paper's buckets (<=3k, <=10k, ..., >1G); percent of known crashes.
std::vector<double> paper_latency_distribution(isa::Arch arch,
                                               inject::CampaignKind kind);

}  // namespace kfi::analysis
