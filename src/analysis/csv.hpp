// CSV export of campaign results, for downstream analysis outside this
// library (R/pandas/gnuplot).  One row per injection record, plus compact
// summary writers for tallies and latency histograms.
#pragma once

#include <iosfwd>
#include <vector>

#include "analysis/tally.hpp"
#include "inject/record.hpp"

namespace kfi::analysis {

/// Header + one row per record:
/// index,kind,target,bit,outcome,activated,activation_cycle,
/// crash_cause,crash_pc,crash_addr,cycles_to_crash,syscalls_completed
void write_records_csv(std::ostream& os,
                       const std::vector<inject::InjectionRecord>& records);

/// One row per traced record (propagation_valid): the full
/// PropagationSummary next to the record's outcome, for downstream
/// propagation studies.  Untraced records are skipped.
void write_propagation_csv(
    std::ostream& os, const std::vector<inject::InjectionRecord>& records);

/// Two-column key,value summary of a tally.
void write_tally_csv(std::ostream& os, const OutcomeTally& tally);

/// bucket,count,fraction rows of the cycles-to-crash histogram.
void write_latency_csv(std::ostream& os, const OutcomeTally& tally);

}  // namespace kfi::analysis
