// Aggregation of per-injection CascadeSummary digests (the errno
// injector's output) into campaign-level distributions and report
// segments.  Where the physical campaigns reproduce the paper's Table 5/6
// failure taxonomy, errno campaigns measure the *interface* dimension of
// OS error sensitivity: how far a forced error return at the syscall
// boundary cascades through the workload's subsequent operations, and
// whether the workload's own checks contain it at the faulted call.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/counter_map.hpp"
#include "common/histogram.hpp"
#include "inject/record.hpp"

namespace kfi::analysis {

/// Campaign-level aggregate over errno records (records without
/// cascade_valid are skipped; physical campaigns tally to zero).
struct CascadeTally {
  u32 injected = 0;      // records carrying a cascade summary
  u32 forced_runs = 0;   // runs where >=1 error return was forced
  u64 forced_events = 0; // total forced error returns across all runs

  // Containment classes, over forced runs (the errno analogue of the
  // paper's outcome columns).
  u32 contained = 0;   // deviation confined to the faulted call
  u32 propagated = 0;  // deviation reached later ops / crash / final state
  u32 silent = 0;      // forced error, zero observable deviation

  u32 checked_at_site = 0;   // faulted call itself failed a check
  u32 state_deviations = 0;  // final workload state check failed
  u32 crashes = 0;           // forced runs ending in a kernel crash

  /// Cascade lengths (workload ops from first forced error to last
  /// deviation), forced runs only.
  BucketHistogram lengths;

  /// Classified forced runs (the containment-rate denominator).
  u32 classified() const { return contained + propagated + silent; }
  /// Contained + silent over classified: the fraction of forced error
  /// returns the workload either absorbed at the call site or never
  /// noticed deviating at all.
  double containment_rate() const;
  double fraction_contained() const;
  double fraction_propagated() const;
  double fraction_silent() const;

  CascadeTally();
};

/// Cascade-length buckets: <=1, <=2, <=4, <=8, <=16, <=64, >64 workload
/// operations from the forced call to the last deviating operation.
BucketHistogram make_cascade_length_histogram();

CascadeTally tally_cascades(
    const std::vector<inject::InjectionRecord>& records);

/// Per-syscall sub-tallies keyed by the *first forced* syscall of each
/// run, in syscall-number order; runs with no forced error are excluded
/// (they have no syscall to attribute).
std::vector<std::pair<std::string, CascadeTally>> tally_cascades_by_syscall(
    const std::vector<inject::InjectionRecord>& records);

/// Report segment: overall digest plus the per-syscall containment table
/// and the cascade-length histogram, in the same measured-table style as
/// report.hpp's segments.
std::string render_cascades(
    const std::string& title, const CascadeTally& overall,
    const std::vector<std::pair<std::string, CascadeTally>>& by_syscall);

/// One row per errno record (cascade_valid): the full CascadeSummary next
/// to the record's outcome.  Physical records are skipped.
void write_cascade_csv(std::ostream& os,
                       const std::vector<inject::InjectionRecord>& records);

}  // namespace kfi::analysis
