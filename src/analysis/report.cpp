#include "analysis/report.hpp"

#include <cstdio>
#include <sstream>

#include "common/table.hpp"

namespace kfi::analysis {

using inject::CampaignKind;
using inject::OutcomeCategory;

namespace {

std::string pct(double fraction, int decimals = 1) {
  return format_percent(fraction, decimals);
}

std::string pct_of_100(double percent) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", percent);
  return buf;
}

}  // namespace

std::string render_failure_table(
    isa::Arch arch,
    const std::vector<std::pair<CampaignKind, OutcomeTally>>& rows) {
  std::ostringstream os;
  os << "Activation and failure distribution — " << isa::arch_name(arch)
     << " (measured | paper)\n";
  // The quarantine column only appears when a supervisor actually
  // quarantined something; clean campaigns render the paper's exact shape.
  bool any_quarantined = false;
  for (const auto& [kind, tally] : rows) {
    if (tally.quarantined > 0) any_quarantined = true;
  }
  std::vector<std::string> headers = {
      "Campaign", "Injected", "Activated", "Not Manifested",
      "Fail Silence Violation", "Known Crash", "Hang/Unknown Crash"};
  if (any_quarantined) headers.push_back("Quarantined");
  AsciiTable table(headers);
  for (const auto& [kind, tally] : rows) {
    const PaperTableRow paper = paper_table_row(arch, kind);
    auto cell = [](double measured, double published) {
      return pct(measured) + " | " + pct_of_100(published);
    };
    std::string activated;
    if (!tally.activation_known) {
      activated = "N/A | N/A";
    } else {
      activated = cell(tally.activation_rate(), paper.activated_pct);
    }
    std::vector<std::string> row = {
        campaign_kind_name(kind),
        std::to_string(tally.injected) + " | " +
            std::to_string(paper.injected),
        activated,
        cell(tally.fraction(OutcomeCategory::kNotManifested),
             paper.not_manifested_pct),
        cell(tally.fraction(OutcomeCategory::kFailSilenceViolation),
             paper.fsv_pct),
        cell(tally.fraction(OutcomeCategory::kKnownCrash),
             paper.known_crash_pct),
        cell(tally.fraction(OutcomeCategory::kHangOrUnknownCrash),
             paper.hang_unknown_pct)};
    if (any_quarantined) {
      row.push_back(std::to_string(tally.quarantined) + " | -");
    }
    table.add_row(row);
  }
  os << table.render();
  return os.str();
}

std::string render_cause_comparison(isa::Arch arch, const std::string& title,
                                    const OutcomeTally& tally,
                                    const PaperDist& paper) {
  std::ostringstream os;
  os << title << " — " << isa::arch_name(arch) << " (known crashes: "
     << tally.count(OutcomeCategory::kKnownCrash) << ")\n";
  AsciiTable table({"Crash cause", "Measured", "Paper"});
  // Paper-listed causes first, in the paper's order.
  std::vector<std::string> listed;
  for (const auto& [name, percent] : paper) {
    listed.push_back(name);
    table.add_row({name, pct(tally.crash_causes.fraction(name)),
                   pct_of_100(percent)});
  }
  // Any measured cause the paper does not list.
  for (const auto& name : tally.crash_causes.keys()) {
    bool found = false;
    for (const auto& l : listed) {
      if (l == name) {
        found = true;
        break;
      }
    }
    if (!found) {
      table.add_row({name, pct(tally.crash_causes.fraction(name)), "-"});
    }
  }
  os << table.render();
  return os.str();
}

std::string render_latency_comparison(const std::string& title,
                                      CampaignKind kind,
                                      const OutcomeTally& cisca_tally,
                                      const OutcomeTally& riscf_tally) {
  std::ostringstream os;
  os << title << " — cycles-to-crash distribution (measured | paper)\n";
  AsciiTable table({"Bucket", "Pentium-like (cisca)", "PPC-like (riscf)"});
  const auto paper_p4 =
      paper_latency_distribution(isa::Arch::kCisca, kind);
  const auto paper_g4 =
      paper_latency_distribution(isa::Arch::kRiscf, kind);
  const auto& labels = latency_bucket_labels();
  for (size_t i = 0; i < labels.size(); ++i) {
    table.add_row({labels[i],
                   pct(cisca_tally.latency.fraction(i)) + " | " +
                       pct_of_100(paper_p4[i]),
                   pct(riscf_tally.latency.fraction(i)) + " | " +
                       pct_of_100(paper_g4[i])});
  }
  os << table.render();
  return os.str();
}

std::string render_opclass_breakdown(
    isa::Arch arch,
    const std::vector<std::pair<isa::OpClass, OutcomeTally>>& rows) {
  std::ostringstream os;
  os << "Outcome by instruction class — " << isa::arch_name(arch) << "\n";
  AsciiTable table({"Class", "Injected", "Activated", "Not Manifested",
                    "Fail Silence Violation", "Known Crash",
                    "Hang/Unknown Crash"});
  for (const auto& [cls, tally] : rows) {
    table.add_row({
        isa::opclass_name(cls),
        std::to_string(tally.injected),
        tally.activation_known ? pct(tally.activation_rate())
                               : std::string("N/A"),
        pct(tally.fraction(OutcomeCategory::kNotManifested)),
        pct(tally.fraction(OutcomeCategory::kFailSilenceViolation)),
        pct(tally.fraction(OutcomeCategory::kKnownCrash)),
        pct(tally.fraction(OutcomeCategory::kHangOrUnknownCrash)),
    });
  }
  os << table.render();
  return os.str();
}

std::string render_profile(const std::vector<workload::HotFunction>& hot) {
  std::ostringstream os;
  os << "Kernel usage profile (functions covering >=95% of entries)\n";
  AsciiTable table({"Function", "Entries", "Share", "Cumulative"});
  for (const auto& fn : hot) {
    table.add_row({fn.name, std::to_string(fn.entries), pct(fn.share),
                   pct(fn.cumulative)});
  }
  os << table.render();
  return os.str();
}

std::string summarize_campaign(const inject::CampaignResult& result) {
  // On an interrupted run, tally only the indices that actually carry a
  // record so the partial totals line up with what the journal holds.
  const OutcomeTally t =
      result.interrupted
          ? tally_records(inject::completed_records(result))
          : tally_records(result.records);
  std::ostringstream os;
  os << isa::arch_name(result.spec.arch) << " "
     << campaign_kind_name(result.spec.kind);
  // Non-default fault models change what a row means; say so in the log
  // line (the default stays byte-identical to the pre-FaultModel output).
  if (result.spec.kind == CampaignKind::kErrno) {
    os << " [" << result.spec.errno_model.name() << "]";
  } else if (!result.spec.model.is_legacy()) {
    os << " [" << result.spec.model.name() << "]";
  }
  os << ": injected=" << t.injected
     << " activated="
     << (t.activation_known ? std::to_string(t.activated) : std::string("N/A"))
     << " manifested=" << pct(t.manifestation_rate())
     << " crashes=" << t.count(OutcomeCategory::kKnownCrash)
     << " hangs/unknown=" << t.count(OutcomeCategory::kHangOrUnknownCrash)
     << " fsv=" << t.count(OutcomeCategory::kFailSilenceViolation)
     << " reboots=" << result.reboots << " datagrams_lost="
     << result.datagrams_dropped << "/" << result.datagrams_sent;
  // Supervisor segment: only printed when the fault-tolerance machinery
  // had something to report, so plain campaign summaries are unchanged.
  if (result.interrupted || result.quarantined > 0 ||
      result.resumed_records > 0 || result.journal_flushes > 0 ||
      result.harness_retries > 0 || result.retry_backoff_waits > 0) {
    os << " | supervisor:";
    if (result.interrupted) {
      os << " INTERRUPTED (" << result.executed() << "/"
         << result.records.size() << " done)";
    }
    os << " quarantined=" << result.quarantined << " stalls="
       << result.stalls << " retries=" << result.harness_retries
       << " resumed=" << result.resumed_records << " journal_flushes="
       << result.journal_flushes;
    if (result.retry_backoff_waits > 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " backoff=%llu(%.2fs)",
                    static_cast<unsigned long long>(
                        result.retry_backoff_waits),
                    result.retry_backoff_seconds);
      os << buf << " [";
      bool first = true;
      for (size_t w = 0; w < result.worker_backoff_waits.size(); ++w) {
        if (result.worker_backoff_waits[w] == 0) continue;
        if (!first) os << ",";
        os << "w" << w << ":" << result.worker_backoff_waits[w];
        first = false;
      }
      os << "]";
    }
  }
  // Fabric segment: multi-process campaigns report their harness churn
  // here — worker deaths, shard re-dispatches, and restart backoff are
  // operational events, deliberately kept out of the paper denominators
  // above (a killed worker's injections simply re-run elsewhere).
  if (result.fabric_workers > 0) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  " | fabric: workers=%u deaths=%llu redispatched=%llu "
                  "backoff=%llu(%.2fs) spliced_dups=%llu",
                  result.fabric_workers,
                  static_cast<unsigned long long>(
                      result.fabric_worker_deaths),
                  static_cast<unsigned long long>(
                      result.fabric_redispatches),
                  static_cast<unsigned long long>(
                      result.fabric_backoff_waits),
                  result.fabric_backoff_seconds,
                  static_cast<unsigned long long>(
                      result.fabric_spliced_duplicates));
    os << buf;
  }
  // Per-host segment: the multi-host coordinator's supervisor ledger —
  // re-dispatches, lease revocations, reconnect backoff — one entry per
  // daemon endpoint.  Operational like the fabric segment above: none of
  // it enters the paper denominators.
  if (!result.fabric_hosts.empty()) {
    os << " | hosts:";
    for (const inject::FabricHostStats& h : result.fabric_hosts) {
      char buf[192];
      std::snprintf(
          buf, sizeof(buf),
          " %s{dispatches=%llu deaths=%llu lease_revoked=%llu "
          "backoff=%llu(%.2fs) records=%llu}",
          h.host.c_str(), static_cast<unsigned long long>(h.dispatches),
          static_cast<unsigned long long>(h.deaths),
          static_cast<unsigned long long>(h.lease_revocations),
          static_cast<unsigned long long>(h.backoff_waits),
          h.backoff_seconds, static_cast<unsigned long long>(h.records));
      os << buf;
    }
  }
  const inject::CampaignThroughput& tp = result.throughput;
  if (tp.jobs > 0) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  " | jobs=%u wall=%.2fs (plan=%.2fs run=%.2fs) %.1f inj/s "
                  "%.1f Msim-cyc/s",
                  tp.jobs, tp.wall_seconds, tp.plan_seconds, tp.run_seconds,
                  tp.injections_per_second(result.records.size()),
                  tp.simulated_cycles_per_second() / 1e6);
    os << buf;
  }
  return os.str();
}

}  // namespace kfi::analysis
