#include "analysis/paper_data.hpp"

#include "common/error.hpp"

namespace kfi::analysis {

using inject::CampaignKind;
using isa::Arch;

PaperTableRow paper_table_row(Arch arch, CampaignKind kind) {
  // Table 5 (P4) and Table 6 (G4), transcribed.
  if (arch == Arch::kCisca) {
    switch (kind) {
      case CampaignKind::kStack: return {10143, 29.3, 43.9, 0.0, 38.2, 17.9};
      case CampaignKind::kRegister: return {3866, -1.0, 89.5, 0.0, 7.9, 2.6};
      case CampaignKind::kData: return {46000, 0.5, 34.1, 0.0, 42.5, 23.4};
      case CampaignKind::kCode: return {1790, 54.9, 31.4, 1.3, 46.3, 21.0};
      case CampaignKind::kErrno: break;  // no paper row: falls to the check
    }
  } else {
    switch (kind) {
      case CampaignKind::kStack: return {3017, 39.9, 78.9, 0.0, 14.3, 7.0};
      case CampaignKind::kRegister: return {3967, -1.0, 95.1, 0.0, 1.7, 3.1};
      case CampaignKind::kData: return {46000, 1.5, 78.3, 1.0, 7.8, 12.9};
      case CampaignKind::kCode: return {2188, 64.7, 41.0, 2.3, 40.7, 16.0};
      case CampaignKind::kErrno: break;  // no paper row: falls to the check
    }
  }
  KFI_CHECK(false, "bad table row request");
  return {};
}

PaperDist paper_overall_crash_causes(Arch arch) {
  if (arch == Arch::kCisca) {
    // Figure 4 (total 1992).
    return {{"Bad Paging", 43.2},     {"NULL Pointer", 27.5},
            {"Invalid Instruction", 16.0},
            {"General Protection Fault", 12.1},
            {"Invalid TSS", 1.0},     {"Kernel Panic", 0.1},
            {"Divide Error", 0.1},    {"Bounds Trap", 0.1}};
  }
  // Figure 5 (total 872).
  return {{"Bad Area", 66.9},      {"Illegal Instruction", 16.3},
          {"Stack Overflow", 12.7}, {"Alignment", 1.6},
          {"Machine Check", 1.4},   {"Bus Error", 0.7},
          {"Bad Trap", 0.4},        {"Kernel Panic", 0.1}};
}

PaperDist paper_campaign_crash_causes(Arch arch, CampaignKind kind) {
  if (arch == Arch::kCisca) {
    switch (kind) {
      case CampaignKind::kStack:  // Figure 6 left (total 1136)
        return {{"Bad Paging", 45.4},
                {"NULL Pointer", 31.5},
                {"Invalid Instruction", 15.9},
                {"General Protection Fault", 5.5},
                {"Invalid TSS", 1.0},
                {"Kernel Panic", 0.4},
                {"Divide Error", 0.2}};
      case CampaignKind::kRegister:  // Figure 10 left (total 305)
        return {{"Bad Paging", 37.4},
                {"General Protection Fault", 35.1},
                {"NULL Pointer", 18.4},
                {"Invalid Instruction", 6.2},
                {"Invalid TSS", 3.0}};
      case CampaignKind::kCode:  // Figure 11 left (total 455)
        return {{"Bad Paging", 38.0},
                {"NULL Pointer", 31.9},
                {"Invalid Instruction", 24.2},
                {"General Protection Fault", 5.5},
                {"Divide Error", 0.2}};
      case CampaignKind::kData:  // Figure 12 left (total 96)
        return {{"Bad Paging", 52.1},
                {"NULL Pointer", 28.1},
                {"Invalid Instruction", 17.7},
                {"General Protection Fault", 2.1}};
      case CampaignKind::kErrno: break;  // no paper data: falls to the check
    }
  } else {
    switch (kind) {
      case CampaignKind::kStack:  // Figure 6 right (total 172)
        return {{"Bad Area", 53.5},
                {"Stack Overflow", 41.9},
                {"Illegal Instruction", 2.9},
                {"Alignment", 1.2},
                {"Machine Check", 0.6}};
      case CampaignKind::kRegister:  // Figure 10 right (total 69)
        return {{"Bad Area", 75.4},
                {"Illegal Instruction", 11.6},
                {"Machine Check", 4.3},
                {"Stack Overflow", 4.3},
                {"Alignment", 1.4},
                {"Bus Error", 1.4},
                {"Bad Trap", 1.4}};
      case CampaignKind::kCode:  // Figure 11 right (total 576)
        return {{"Bad Area", 49.5},
                {"Illegal Instruction", 41.5},
                {"Stack Overflow", 4.7},
                {"Alignment", 1.9},
                {"Bus Error", 1.2},
                {"Machine Check", 0.5},
                {"Kernel Panic", 0.5},
                {"Bad Trap", 0.2}};
      case CampaignKind::kData:  // Figure 12 right (total 55)
        return {{"Bad Area", 89.1},
                {"Illegal Instruction", 9.1},
                {"Alignment", 1.8}};
      case CampaignKind::kErrno: break;  // no paper data: falls to the check
    }
  }
  KFI_CHECK(false, "bad crash-cause request");
  return {};
}

std::vector<double> paper_latency_distribution(Arch arch, CampaignKind kind) {
  // Figure 16, read off the plots (approximate; anchored to the
  // percentages stated in Section 6's text).  Buckets:
  // <=3k, <=10k, <=100k, <=1M, <=10M, <=100M, <=1G, >1G.
  if (arch == Arch::kCisca) {
    switch (kind) {
      case CampaignKind::kStack:  // "80% in the range 3,000 to 100,000"
        return {8, 35, 45, 6, 3, 2, 1, 0};
      case CampaignKind::kRegister:  // "70% of crashes within 10K cycles"
        return {40, 30, 10, 5, 5, 5, 3, 2};
      case CampaignKind::kCode:  // "shorter latency (70% within 10,000)"
        return {25, 45, 15, 6, 4, 3, 2, 0};
      case CampaignKind::kData:  // "similar on both platforms", long tail
        return {10, 15, 30, 20, 15, 5, 3, 2};
      case CampaignKind::kErrno: break;  // no paper data: falls to the check
    }
  } else {
    switch (kind) {
      case CampaignKind::kStack:  // "80% ... within 3,000 CPU cycles"
        return {80, 6, 5, 4, 3, 1, 1, 0};
      case CampaignKind::kRegister:  // "35% within 3000", SP/SPRG2 10M-100M
        return {35, 5, 5, 5, 15, 25, 8, 2};
      case CampaignKind::kCode:  // "almost 90% above 10,000", "50% 10k-100k"
        return {5, 5, 50, 20, 12, 5, 3, 0};
      case CampaignKind::kData:
        return {10, 15, 30, 20, 15, 5, 3, 2};
      case CampaignKind::kErrno: break;  // no paper data: falls to the check
    }
  }
  KFI_CHECK(false, "bad latency request");
  return {};
}

}  // namespace kfi::analysis
