// Aggregation of per-injection PropagationSummary digests (the trace
// subsystem's output) into campaign-level distributions and report
// segments.  This extends the paper's Figure 16 crash-latency analysis
// with the propagation path between flip and failure: dormancy before
// first use, producer->consumer chain depth, subsystem crossings, and
// shadow-state fail-silence evidence the paper could only infer from
// golden-run output comparison.
#pragma once

#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "inject/record.hpp"

namespace kfi::analysis {

/// Campaign-level aggregate over traced records (records without
/// propagation_valid are skipped; untraced campaigns tally to zero).
struct PropagationTally {
  u32 traced = 0;   // records carrying a propagation summary
  u32 seeded = 0;   // flip site actually marked (mirrors activation)
  u32 used = 0;     // corrupted value consumed at least once
  u32 live_at_end = 0;   // taint still live when the run ended
  u32 erased = 0;        // seeded but fully overwritten clean by run end
  u32 pc_tainted = 0;    // taint reached instruction fetch
  u32 crossed_subsystem = 0;  // tainted writes hit another named object
  u32 priv_crossings = 0;     // runs with taint live across a priv switch

  /// Fail-silence evidence: the syscall return value handed back to the
  /// workload was tainted.
  u32 syscall_result_tainted = 0;
  /// Fail-silence-violation runs flagged by the shadow state alone: the
  /// tainted result crossed the kernel boundary, yet the workload's
  /// value/state checks classified the run as something other than an
  /// FSV.  These are the silent data corruptions the paper's check-based
  /// detection could not see.
  u32 fsv_missed_by_checks = 0;

  u64 max_depth_peak = 0;      // deepest chain in any record
  u64 silent_overwrites = 0;   // total tainted-state clean overwrites

  BucketHistogram first_use_latency;  // instructions of dormancy
  BucketHistogram depth;              // producer->consumer hops

  PropagationTally();
};

/// Instruction-count buckets for first-use (dormancy) latency.  Edges
/// mirror the spirit of the Figure 16 cycle buckets at instruction
/// granularity: <=10, <=100, <=1k, <=10k, <=100k, <=1M, >1M insns.
BucketHistogram make_first_use_histogram();

/// Producer->consumer chain-length buckets: <=1, <=2, <=4, <=8, <=16,
/// <=64, >64 hops (the taint engine saturates depth at 255).
BucketHistogram make_depth_histogram();

PropagationTally tally_propagation(
    const std::vector<inject::InjectionRecord>& records);

/// Report segment: the propagation digest of one campaign, rendered in
/// the same measured-table style as report.hpp's segments.
std::string render_propagation(const std::string& title,
                               const PropagationTally& tally);

}  // namespace kfi::analysis
