// Report rendering: measured-vs-paper tables for every experiment the
// benchmark harness reproduces.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/paper_data.hpp"
#include "analysis/tally.hpp"
#include "inject/campaign.hpp"

namespace kfi::analysis {

/// Table 5/6 reproduction: one row per campaign kind for one arch.
std::string render_failure_table(
    isa::Arch arch,
    const std::vector<std::pair<inject::CampaignKind, OutcomeTally>>& rows);

/// Crash-cause distribution with the paper's expectation side by side
/// (Figures 4/5 when `overall`, else Figures 6/10/11/12 per campaign).
std::string render_cause_comparison(isa::Arch arch, const std::string& title,
                                    const OutcomeTally& tally,
                                    const PaperDist& paper);

/// Figure 16 reproduction: latency buckets, measured vs paper, both archs.
std::string render_latency_comparison(const std::string& title,
                                      inject::CampaignKind kind,
                                      const OutcomeTally& cisca_tally,
                                      const OutcomeTally& riscf_tally);

/// Outcome distribution split by instruction class (code campaigns under
/// the opclass-targeted fault model, or any code campaign's natural mix).
std::string render_opclass_breakdown(
    isa::Arch arch,
    const std::vector<std::pair<isa::OpClass, OutcomeTally>>& rows);

/// Hot-function profile table (the paper's >=95% usage selection).
std::string render_profile(const std::vector<workload::HotFunction>& hot);

/// One-line campaign summary for logs.
std::string summarize_campaign(const inject::CampaignResult& result);

}  // namespace kfi::analysis
