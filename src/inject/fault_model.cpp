#include "inject/fault_model.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "inject/record.hpp"

namespace kfi::inject {

u32 FaultModel::flips_per_event() const {
  switch (shape) {
    case FaultShape::kMultiBit: return bits;
    case FaultShape::kBurst: return burst_span;
    case FaultShape::kSingleBit:
    case FaultShape::kOpclass: return 1;
  }
  return 1;
}

void FaultModel::validate(CampaignKind kind) const {
  if (shape == FaultShape::kMultiBit && (bits < 1 || bits > 32)) {
    throw FaultModelError("fault model: --bits must be in 1..32, got " +
                          std::to_string(bits));
  }
  if (shape != FaultShape::kMultiBit && bits != 1) {
    throw FaultModelError(
        "fault model: --bits only applies to the multi-bit shape, got " +
        std::to_string(bits));
  }
  if (shape == FaultShape::kBurst && (burst_span < 2 || burst_span > 32)) {
    throw FaultModelError("fault model: --burst span must be in 2..32, got " +
                          std::to_string(burst_span));
  }
  if (shape == FaultShape::kOpclass && kind != CampaignKind::kCode) {
    throw FaultModelError(
        "fault model: --opclass targeting requires --kind code, got --kind " +
        campaign_kind_name(kind));
  }
  if (shape == FaultShape::kOpclass &&
      opclass >= isa::OpClass::kNumClasses) {
    throw FaultModelError("fault model: bad opclass value " +
                          std::to_string(static_cast<u32>(opclass)));
  }
  if (trigger == FaultTrigger::kRate) {
    if (!std::isfinite(rate) || rate <= 0.0) {
      throw FaultModelError(
          "fault model: --rate must be a positive event count per run, got " +
          std::to_string(rate));
    }
    if (rate > 1024.0) {
      throw FaultModelError("fault model: --rate above 1024 events/run, got " +
                            std::to_string(rate));
    }
  } else if (rate != 0.0) {
    throw FaultModelError("fault model: rate set without the rate trigger, got " +
                          std::to_string(rate));
  }
  if (kind == CampaignKind::kErrno && !is_legacy()) {
    // Errno campaigns corrupt nothing physical; a non-default physical
    // fault model combined with one is a contradiction, refused up front.
    throw FaultModelError(
        "fault model: physical fault-model knobs (" + name() +
        ") cannot be combined with an errno campaign");
  }
}

std::string FaultModel::name() const {
  std::string s;
  switch (shape) {
    case FaultShape::kSingleBit: s = "single-bit"; break;
    case FaultShape::kMultiBit:
      s = "multi-bit k=" + std::to_string(bits);
      break;
    case FaultShape::kBurst:
      s = "burst span=" + std::to_string(burst_span);
      break;
    case FaultShape::kOpclass:
      s = "opclass=" + isa::opclass_name(opclass);
      break;
  }
  if (trigger == FaultTrigger::kRate) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " rate=%.3g/run", rate);
    s += buf;
  }
  return s;
}

u64 fault_model_fingerprint(const FaultModel& model) {
  u64 h = 0xcbf29ce484222325ull;
  auto mix = [&h](u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  mix(static_cast<u64>(model.shape));
  mix(static_cast<u64>(model.trigger));
  mix(model.bits);
  mix(model.burst_span);
  u64 rate_bits = 0;
  std::memcpy(&rate_bits, &model.rate, sizeof(rate_bits));
  mix(rate_bits);
  mix(static_cast<u64>(model.opclass));
  return h;
}

}  // namespace kfi::inject
