// CampaignPlan: STEP 1 of the paper's Figure 2, frozen into a value.
//
// Everything a campaign decides before the first injection — calibration,
// the hot-function profile, the pre-generated targets, and the per-run
// random seeds — is computed once, up front, on a single machine.  The
// result is an immutable plan that any number of worker Machines can
// execute in any order: because every per-injection random decision is
// derived from the plan's pre-drawn seeds (not from shared mutable RNG
// state), the merged campaign result is bit-identical no matter how many
// workers ran it.
#pragma once

#include <vector>

#include "errnoinj/errno_model.hpp"
#include "inject/fault_model.hpp"
#include "inject/record.hpp"
#include "kernel/machine.hpp"
#include "workload/profiler.hpp"

namespace kfi::inject {

struct CampaignSpec {
  isa::Arch arch = isa::Arch::kCisca;
  CampaignKind kind = CampaignKind::kCode;
  u32 injections = 200;
  u64 seed = 1;
  u32 workload_scale = 1;
  kernel::MachineOptions machine{};
  /// UDP crash-data datagram loss probability (unknown-crash source).
  double channel_loss = 0.03;
  /// Hang budget as a multiple of the calibrated fault-free run length.
  double budget_factor = 3.0;
  /// What gets corrupted and when; the default is the paper's single-bit
  /// single-shot model, which keeps the plan bit-identical to a
  /// pre-FaultModel build.  Validated (FaultModelError) at plan build.
  FaultModel model{};
  /// The errno-campaign model (kind == kErrno only; must be enabled for
  /// errno campaigns and disabled — the default — for every other kind).
  /// Validated (ErrnoModelError) at plan build.
  errnoinj::ErrnoModel errno_model{};
};

/// The frozen inputs of one campaign.  Building a plan runs codegen,
/// calibration, profiling, and target generation exactly once; executing
/// it (serial or parallel) touches none of that machinery again.
struct CampaignPlan {
  CampaignSpec spec;
  /// The built kernel image, shared read-only by every worker Machine.
  kir::ImagePtr image;
  u64 nominal_cycles = 0;      // calibrated fault-free run length
  double kernel_fraction = 0.15;
  u64 budget_cycles = 0;       // watchdog hang budget
  /// kErrno: eligible syscall invocations observed in the fault-free
  /// calibration run (the invocation-index draw window).
  u64 eligible_invocations = 0;
  std::vector<workload::HotFunction> hot_functions;
  std::vector<InjectionTarget> targets;
  /// Pre-drawn per-injection run seeds (one per target, in target order);
  /// seed targets[i]'s workload schedule, in-run decisions, and crash-data
  /// datagram loss.
  std::vector<u64> run_seeds;
  /// Wall-clock seconds spent building the plan (codegen + calibration +
  /// profile + target generation).
  double plan_seconds = 0.0;
};

/// Run the workload fault-free on a freshly restored machine; returns the
/// calibrated run length in cycles and checks output validity.
u64 calibrate_workload(kernel::Machine& machine, workload::Workload& wl,
                       u64 seed);

/// Kernel-time share of the calibrated run, read off the machine right
/// after calibrate_workload().  Falls back to the ExperimentRunner default
/// when the calibration was degenerate.
double calibrated_kernel_fraction(const kernel::Machine& machine,
                                  u64 nominal_cycles);

/// Build the full plan for a spec (codegen, boot, calibrate, profile,
/// generate targets, pre-draw seeds).
CampaignPlan build_campaign_plan(const CampaignSpec& spec);

/// Machine options for the campaign's (and every worker's) machine.
kernel::MachineOptions campaign_machine_options(const CampaignSpec& spec);

/// FNV-1a over every determinism-relevant input of a plan: the spec
/// (including the semantics-affecting machine options), the calibration
/// results, and all pre-generated targets and per-run seeds.  The
/// injection journal stamps this into its header so a resume can refuse a
/// journal written for a different campaign.  The bit-exact perf knobs
/// (decode cache, fast reboot) are deliberately excluded: a journal may
/// be resumed with either setting.
u64 plan_fingerprint(const CampaignPlan& plan);

}  // namespace kfi::inject
