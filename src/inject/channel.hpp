// Remote crash-data collection (the paper's NFTAPE extension).
//
// The paper's crash handlers packaged the crash cause, cycles-to-crash and
// frame pointers into a UDP-like packet and handed it straight to the
// network card's packet-sending function, bypassing the possibly-broken
// filesystem; a remote collector stored it.  UDP is best-effort, so some
// crash dumps never arrive — those crashes land in the "Hang/Unknown
// Crash" column of Tables 5 and 6.  UdpChannel models exactly that
// best-effort datagram semantics with a seeded loss probability.
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "kernel/crash.hpp"

namespace kfi::inject {

struct Packet {
  std::vector<u8> bytes;
};

/// Best-effort datagram channel with seeded loss.
class UdpChannel {
 public:
  UdpChannel(double loss_probability, u64 seed)
      : loss_(loss_probability), base_seed_(seed), rng_(seed) {}

  /// Re-derive the loss RNG from one injection run's pre-drawn seed.  The
  /// campaign engine calls this (via ExperimentRunner) before every
  /// experiment so that whether a crash dump survives the channel depends
  /// only on (channel seed, run seed) — never on how many datagrams other
  /// injections sent first.  That history-independence is what lets
  /// parallel workers with private channel replicas merge bit-identically
  /// with a serial run.
  void begin_run(u64 run_seed);

  /// Returns false if the datagram was dropped in flight.
  bool send(Packet packet);
  std::optional<Packet> receive();

  u64 sent() const { return sent_; }
  u64 dropped() const { return dropped_; }

 private:
  double loss_;
  u64 base_seed_;
  Rng rng_;
  std::deque<Packet> in_flight_;
  u64 sent_ = 0;
  u64 dropped_ = 0;
};

/// Kernel-side data-deposit module: serializes a crash report into a
/// self-describing datagram (and parses it back on the collector side).
class DataDeposit {
 public:
  static Packet serialize(u32 sequence, const kernel::CrashReport& report);
  struct Parsed {
    u32 sequence = 0;
    kernel::CrashReport report;
  };
  /// Returns nullopt for malformed packets (corrupted in flight).
  static std::optional<Parsed> parse(const Packet& packet);
};

/// Control-host-side collector: drains a channel, indexes reports by
/// sequence number, ignores duplicates.
class CrashCollector {
 public:
  /// Drain everything currently queued in the channel.
  void poll(UdpChannel& channel);

  bool has(u32 sequence) const { return reports_.contains(sequence); }
  /// Lookup without commitment: nullptr when no report arrived for
  /// `sequence` (the datagram was lost or never sent).
  const kernel::CrashReport* find(u32 sequence) const;
  /// Checked access: throws kfi::Error (never UB) when no report exists
  /// for `sequence` — use find()/has() when absence is an expected case.
  const kernel::CrashReport& get(u32 sequence) const;
  size_t count() const { return reports_.size(); }

 private:
  std::unordered_map<u32, kernel::CrashReport> reports_;
};

}  // namespace kfi::inject
