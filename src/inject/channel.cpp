#include "inject/channel.hpp"

#include <cstring>

#include "common/error.hpp"

namespace kfi::inject {

namespace {

constexpr u32 kMagic = 0x4B464944;  // "KFID"

void put32(std::vector<u8>& out, u32 v) {
  out.push_back(static_cast<u8>(v >> 24));
  out.push_back(static_cast<u8>(v >> 16));
  out.push_back(static_cast<u8>(v >> 8));
  out.push_back(static_cast<u8>(v));
}

void put64(std::vector<u8>& out, u64 v) {
  put32(out, static_cast<u32>(v >> 32));
  put32(out, static_cast<u32>(v));
}

u32 get32(const std::vector<u8>& in, size_t& pos) {
  const u32 v = (static_cast<u32>(in[pos]) << 24) |
                (static_cast<u32>(in[pos + 1]) << 16) |
                (static_cast<u32>(in[pos + 2]) << 8) |
                static_cast<u32>(in[pos + 3]);
  pos += 4;
  return v;
}

u64 get64(const std::vector<u8>& in, size_t& pos) {
  const u64 hi = get32(in, pos);
  return (hi << 32) | get32(in, pos);
}

}  // namespace

void UdpChannel::begin_run(u64 run_seed) {
  u64 mix = base_seed_ ^ (run_seed + 0x9E3779B97F4A7C15ull);
  rng_ = Rng(splitmix64(mix));
}

bool UdpChannel::send(Packet packet) {
  ++sent_;
  if (rng_.chance(loss_)) {
    ++dropped_;
    return false;
  }
  in_flight_.push_back(std::move(packet));
  return true;
}

std::optional<Packet> UdpChannel::receive() {
  if (in_flight_.empty()) return std::nullopt;
  Packet p = std::move(in_flight_.front());
  in_flight_.pop_front();
  return p;
}

Packet DataDeposit::serialize(u32 sequence, const kernel::CrashReport& report) {
  Packet p;
  put32(p.bytes, kMagic);
  put32(p.bytes, sequence);
  put32(p.bytes, static_cast<u32>(report.cause));
  put32(p.bytes, report.pc);
  put32(p.bytes, report.addr);
  put32(p.bytes, report.has_addr ? 1 : 0);
  put64(p.bytes, report.cycles_to_crash);
  put32(p.bytes, static_cast<u32>(report.detail.size()));
  p.bytes.insert(p.bytes.end(), report.detail.begin(), report.detail.end());
  return p;
}

std::optional<DataDeposit::Parsed> DataDeposit::parse(const Packet& packet) {
  const auto& b = packet.bytes;
  // Fixed header: magic, sequence, cause, pc, addr, has_addr (4 bytes
  // each) + cycles_to_crash (8) + detail length (4) = 36 bytes.  Anything
  // shorter is a truncated datagram; rejecting it here is what keeps the
  // get32/get64 reads below in bounds.
  constexpr size_t kHeaderBytes = 36;
  if (b.size() < kHeaderBytes) return std::nullopt;
  size_t pos = 0;
  if (get32(b, pos) != kMagic) return std::nullopt;
  Parsed out;
  out.sequence = get32(b, pos);
  const u32 cause = get32(b, pos);
  if (cause >= static_cast<u32>(kernel::CrashCause::kNumCauses)) {
    return std::nullopt;
  }
  out.report.cause = static_cast<kernel::CrashCause>(cause);
  out.report.pc = get32(b, pos);
  out.report.addr = get32(b, pos);
  out.report.has_addr = get32(b, pos) != 0;
  out.report.cycles_to_crash = get64(b, pos);
  const u32 detail_len = get32(b, pos);
  if (pos + detail_len > b.size()) return std::nullopt;
  out.report.detail.assign(b.begin() + static_cast<long>(pos),
                           b.begin() + static_cast<long>(pos + detail_len));
  return out;
}

void CrashCollector::poll(UdpChannel& channel) {
  while (auto packet = channel.receive()) {
    if (auto parsed = DataDeposit::parse(*packet)) {
      reports_.emplace(parsed->sequence, std::move(parsed->report));
    }
  }
}

const kernel::CrashReport* CrashCollector::find(u32 sequence) const {
  const auto it = reports_.find(sequence);
  return it == reports_.end() ? nullptr : &it->second;
}

const kernel::CrashReport& CrashCollector::get(u32 sequence) const {
  const kernel::CrashReport* report = find(sequence);
  if (report == nullptr) {
    throw Error("no crash report collected for sequence " +
                std::to_string(sequence));
  }
  return *report;
}

}  // namespace kfi::inject
