#include "inject/record.hpp"

#include "common/error.hpp"

namespace kfi::inject {

FaultSite& InjectionTarget::site() {
  KFI_CHECK(!sites.empty(), "target has no fault sites");
  return sites.front();
}

const FaultSite& InjectionTarget::site() const {
  KFI_CHECK(!sites.empty(), "target has no fault sites");
  return sites.front();
}

InjectionTarget InjectionTarget::code(Addr entry, Addr addr, u32 insn_len,
                                      u32 bit, std::string function) {
  InjectionTarget t;
  t.kind = CampaignKind::kCode;
  t.code_entry = entry;
  t.function = std::move(function);
  FaultSite s;
  s.addr = addr;
  s.insn_len = insn_len;
  s.bit = bit;
  t.sites.push_back(s);
  return t;
}

InjectionTarget InjectionTarget::data(Addr addr, u32 bit) {
  InjectionTarget t;
  t.kind = CampaignKind::kData;
  FaultSite s;
  s.addr = addr;
  s.bit = bit;
  t.sites.push_back(s);
  return t;
}

InjectionTarget InjectionTarget::stack(u32 task, double depth_frac, u32 bit,
                                       double at_frac) {
  InjectionTarget t;
  t.kind = CampaignKind::kStack;
  t.inject_at_frac = at_frac;
  FaultSite s;
  s.task = task;
  s.depth_frac = depth_frac;
  s.bit = bit;
  t.sites.push_back(s);
  return t;
}

InjectionTarget InjectionTarget::sysreg(u32 reg_index, u32 bit,
                                        double at_frac) {
  InjectionTarget t;
  t.kind = CampaignKind::kRegister;
  t.inject_at_frac = at_frac;
  FaultSite s;
  s.reg_index = reg_index;
  s.bit = bit;
  t.sites.push_back(s);
  return t;
}

InjectionTarget InjectionTarget::errno_return(u32 invocation, u32 ret) {
  InjectionTarget t;
  t.kind = CampaignKind::kErrno;
  FaultSite s;
  s.task = invocation;  // eligible-invocation index (field overload)
  s.bit = ret;          // forced return word (field overload)
  t.sites.push_back(s);
  return t;
}

LegacyTargetFields legacy_target_fields(const InjectionTarget& target) {
  LegacyTargetFields f;
  f.kind = target.kind;
  f.function = target.function;
  f.reg_name = target.reg_name;
  f.inject_at_frac = target.inject_at_frac;
  if (target.sites.empty()) return f;
  const FaultSite& s = target.sites.front();
  switch (target.kind) {
    case CampaignKind::kCode:
      f.code_entry = target.code_entry;
      f.code_addr = s.addr;
      f.code_insn_len = s.insn_len;
      f.code_bit = s.bit;
      break;
    case CampaignKind::kData:
      f.data_addr = s.addr;
      f.data_bit = s.bit;
      break;
    case CampaignKind::kStack:
      f.stack_task = s.task;
      f.stack_depth_frac = s.depth_frac;
      f.stack_bit = s.bit;
      break;
    case CampaignKind::kRegister:
      f.reg_index = s.reg_index;
      f.reg_bit = s.bit;
      break;
    case CampaignKind::kErrno:
      // Errno targets never take the legacy (pre-FaultModel) paths: the
      // campaign family postdates them, so v1/v2 journals and the legacy
      // fingerprint layout can never contain one.
      KFI_CHECK(false, "errno targets have no legacy field view");
      break;
  }
  return f;
}

InjectionTarget target_from_legacy_fields(const LegacyTargetFields& legacy) {
  InjectionTarget t;
  switch (legacy.kind) {
    case CampaignKind::kCode:
      t = InjectionTarget::code(legacy.code_entry, legacy.code_addr,
                                legacy.code_insn_len, legacy.code_bit,
                                legacy.function);
      break;
    case CampaignKind::kData:
      t = InjectionTarget::data(legacy.data_addr, legacy.data_bit);
      break;
    case CampaignKind::kStack:
      t = InjectionTarget::stack(legacy.stack_task, legacy.stack_depth_frac,
                                 legacy.stack_bit, legacy.inject_at_frac);
      break;
    case CampaignKind::kRegister:
      t = InjectionTarget::sysreg(legacy.reg_index, legacy.reg_bit,
                                  legacy.inject_at_frac);
      break;
    case CampaignKind::kErrno:
      KFI_CHECK(false, "errno targets have no legacy field view");
      break;
  }
  t.function = legacy.function;
  t.reg_name = legacy.reg_name;
  t.inject_at_frac = legacy.inject_at_frac;
  return t;
}

std::string campaign_kind_name(CampaignKind kind) {
  switch (kind) {
    case CampaignKind::kStack: return "stack";
    case CampaignKind::kRegister: return "register";
    case CampaignKind::kData: return "data";
    case CampaignKind::kCode: return "code";
    case CampaignKind::kErrno: return "errno";
  }
  return "unknown";
}

std::string outcome_name(OutcomeCategory outcome) {
  switch (outcome) {
    case OutcomeCategory::kNotActivated: return "Not Activated";
    case OutcomeCategory::kNotManifested: return "Not Manifested";
    case OutcomeCategory::kFailSilenceViolation: return "Fail Silence Violation";
    case OutcomeCategory::kKnownCrash: return "Known Crash";
    case OutcomeCategory::kHangOrUnknownCrash: return "Hang/Unknown Crash";
    case OutcomeCategory::kHarnessError: return "Harness Error (quarantined)";
    case OutcomeCategory::kNumOutcomes: break;
  }
  return "unknown";
}

}  // namespace kfi::inject
