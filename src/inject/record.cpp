#include "inject/record.hpp"

namespace kfi::inject {

std::string campaign_kind_name(CampaignKind kind) {
  switch (kind) {
    case CampaignKind::kStack: return "stack";
    case CampaignKind::kRegister: return "register";
    case CampaignKind::kData: return "data";
    case CampaignKind::kCode: return "code";
  }
  return "unknown";
}

std::string outcome_name(OutcomeCategory outcome) {
  switch (outcome) {
    case OutcomeCategory::kNotActivated: return "Not Activated";
    case OutcomeCategory::kNotManifested: return "Not Manifested";
    case OutcomeCategory::kFailSilenceViolation: return "Fail Silence Violation";
    case OutcomeCategory::kKnownCrash: return "Known Crash";
    case OutcomeCategory::kHangOrUnknownCrash: return "Hang/Unknown Crash";
    case OutcomeCategory::kHarnessError: return "Harness Error (quarantined)";
    case OutcomeCategory::kNumOutcomes: break;
  }
  return "unknown";
}

}  // namespace kfi::inject
