// Injection campaign vocabulary: targets, outcome categories, and the
// per-injection record the framework logs.
//
// The outcome categories are exactly the paper's Table 2 plus its Table
// 5/6 reporting convention: crashes whose dump reached the remote
// collector are "known crashes"; crashes whose crash-data packet was lost
// merge with hangs into the "Hang/Unknown Crash" column.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "errnoinj/cascade.hpp"
#include "isa/arch.hpp"
#include "isa/opclass.hpp"
#include "kernel/crash.hpp"
#include "trace/summary.hpp"

namespace kfi::inject {

/// kErrno is the non-physical campaign family: nothing is corrupted, the
/// injector forces error returns at the syscall boundary instead.
enum class CampaignKind : u8 { kStack = 0, kRegister, kData, kCode, kErrno };

std::string campaign_kind_name(CampaignKind kind);

/// One corruption site: where one fault event lands.  Which fields carry
/// meaning depends on the target's CampaignKind; unused fields stay zero
/// so sites hash and serialize uniformly.
struct FaultSite {
  /// kCode: the corrupted instruction's address.  kData: the word-aligned
  /// data word.  Unused for stack/register sites.
  Addr addr = 0;
  /// Bit within the corrupted unit.  Code on cisca indexes the
  /// instruction's bytes in memory order (bit 0 = LSB of the first byte);
  /// everything else indexes the 32-bit word / register value.
  u32 bit = 0;
  /// kCode: length in bytes of the targeted instruction.  The default 1
  /// means "whole unit" — on riscf the generator always stores 4 (every
  /// instruction is one 32-bit word), and a site with insn_len = 1 on
  /// riscf is likewise treated as the whole word by the flip path.
  u32 insn_len = 1;
  /// kStack: which kernel task's stack, and the depth within its live
  /// frames (0 = at SP, 1 = stack top), resolved at injection time.
  u32 task = 0;
  double depth_frac = 0.0;
  /// kRegister: system-register index.
  u32 reg_index = 0;
  // kErrno overloads two existing fields so errno sites hash, journal and
  // fingerprint through the same paths as physical ones: `task` carries
  // the eligible-invocation index to force, `bit` the forced return word.
  /// Rate-triggered models: when this site's fault event fires, as a
  /// fraction of the nominal run length.  Sites are kept sorted by this.
  double at_frac = 0.0;
};

/// One pre-generated injection target (STEP 1 of the paper's Figure 2):
/// an ordered list of FaultSites plus the per-kind context shared by all
/// of them.  The legacy single-bit model generates exactly one site;
/// multi-bit and burst shapes put their k flips of the same unit into k
/// sites; rate-triggered models pre-draw one site list entry per Poisson
/// event (possibly empty, possibly spanning several units).
struct InjectionTarget {
  CampaignKind kind = CampaignKind::kCode;

  /// kCode: the activation breakpoint sits at the FUNCTION ENTRY (the
  /// profiled "instruction breakpoint location based on selected kernel
  /// functions"); the flip is applied to the chosen instruction when the
  /// function is first entered.
  Addr code_entry = 0;
  std::string function;
  /// kCode: functional-unit class of the (first) targeted instruction;
  /// fills the per-class outcome breakdown and is the selection predicate
  /// under the opclass-targeted fault model.
  isa::OpClass opclass = isa::OpClass::kOther;

  /// kRegister: name of the (first) targeted register, resolved by the
  /// runner at injection time.
  std::string reg_name;

  /// When (fraction of the nominal run) single-shot deferred injections
  /// (stack, register) fire.  Rate-triggered schedules use per-site
  /// at_frac instead.
  double inject_at_frac = 0.0;

  /// The fault sites, in application order (sorted by at_frac for rate
  /// schedules).  Empty only for a rate target whose Poisson draw was 0.
  std::vector<FaultSite> sites;

  /// The first (for the legacy model: only) site.  Checked access.
  FaultSite& site();
  const FaultSite& site() const;

  // Per-kind constructors for the single-event shapes.
  static InjectionTarget code(Addr entry, Addr addr, u32 insn_len, u32 bit,
                              std::string function = {});
  static InjectionTarget data(Addr addr, u32 bit);
  static InjectionTarget stack(u32 task, double depth_frac, u32 bit,
                               double at_frac = 0.0);
  static InjectionTarget sysreg(u32 reg_index, u32 bit, double at_frac = 0.0);
  /// kErrno: force return `ret` at eligible invocation `invocation`.
  /// Rate-triggered errno targets append more sites (sorted, unique
  /// invocation indices); a Poisson draw of 0 leaves `sites` empty.
  static InjectionTarget errno_return(u32 invocation, u32 ret);
};

/// The pre-FaultModel flat view of a target: the 15 per-kind fields the
/// v1/v2 journal layout and the legacy plan fingerprint were defined
/// over.  Derived from the first site; exact for every single-site
/// target, which is the only kind those consumers ever see.
struct LegacyTargetFields {
  CampaignKind kind = CampaignKind::kCode;
  Addr code_entry = 0;
  Addr code_addr = 0;
  u32 code_insn_len = 1;
  u32 code_bit = 0;
  std::string function;
  Addr data_addr = 0;
  u32 data_bit = 0;
  u32 stack_task = 0;
  double stack_depth_frac = 0.0;
  u32 stack_bit = 0;
  u32 reg_index = 0;
  u32 reg_bit = 0;
  std::string reg_name;
  double inject_at_frac = 0.0;
};

LegacyTargetFields legacy_target_fields(const InjectionTarget& target);

/// Rebuild a target from the flat legacy view (journal v1/v2 read path).
InjectionTarget target_from_legacy_fields(const LegacyTargetFields& legacy);

/// Table 2 outcome categories (with the Table 5/6 known/unknown split),
/// plus one harness-side category the paper's tables do not have:
/// kHarnessError marks an injection the *control host* failed to execute
/// (a worker exception or a wall-clock stall, retried and then
/// quarantined).  It says nothing about the target's error sensitivity,
/// so the analysis layer reports it separately and keeps it out of every
/// paper-convention denominator.
enum class OutcomeCategory : u8 {
  kNotActivated = 0,
  kNotManifested,
  kFailSilenceViolation,
  kKnownCrash,
  kHangOrUnknownCrash,
  kHarnessError,
  kNumOutcomes,
};

std::string outcome_name(OutcomeCategory outcome);

struct InjectionRecord {
  InjectionTarget target;
  OutcomeCategory outcome = OutcomeCategory::kNotActivated;

  bool activated = false;
  bool activation_known = true;  // false for register injections (fn 1)
  Cycles activation_cycle = 0;
  /// Baseline for cycles_to_crash, following the paper: activation for
  /// code/stack errors, injection for data and register errors (their
  /// footnote 5 and the Section 6 discussion of latent data errors).
  Cycles latency_base_cycle = 0;

  bool crashed = false;
  bool crash_report_received = false;  // survived the UDP channel
  kernel::CrashReport crash{};
  Cycles cycles_to_crash = 0;

  u32 syscalls_completed = 0;

  /// Error-propagation digest, filled only when the campaign ran with
  /// tracing enabled (propagation_valid).  Observational: deliberately
  /// excluded from result_fingerprint, so traced and untraced campaigns
  /// fingerprint identically.
  trace::PropagationSummary propagation{};
  bool propagation_valid = false;

  /// Cascade digest of a forced-errno run (kErrno campaigns only).
  /// Unlike propagation this is *part of the result*: it is mixed into
  /// result_fingerprint and journaled from v4 on.
  errnoinj::CascadeSummary cascade{};
  bool cascade_valid = false;

  // kHarnessError only: what went wrong in the harness and how many
  // attempts (initial + retries) were consumed before quarantining.
  std::string harness_error;
  u32 harness_attempts = 0;
};

}  // namespace kfi::inject
