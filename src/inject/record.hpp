// Injection campaign vocabulary: targets, outcome categories, and the
// per-injection record the framework logs.
//
// The outcome categories are exactly the paper's Table 2 plus its Table
// 5/6 reporting convention: crashes whose dump reached the remote
// collector are "known crashes"; crashes whose crash-data packet was lost
// merge with hangs into the "Hang/Unknown Crash" column.
#pragma once

#include <string>

#include "common/types.hpp"
#include "isa/arch.hpp"
#include "kernel/crash.hpp"
#include "trace/summary.hpp"

namespace kfi::inject {

enum class CampaignKind : u8 { kStack = 0, kRegister, kData, kCode };

std::string campaign_kind_name(CampaignKind kind);

/// One pre-generated injection target (STEP 1 of the paper's Figure 2).
/// Fields are populated per kind; unused fields stay zero.
struct InjectionTarget {
  CampaignKind kind = CampaignKind::kCode;

  // kCode: a pre-selected instruction in a hot kernel function.  The
  // activation breakpoint sits at the FUNCTION ENTRY (the profiled
  // "instruction breakpoint location based on selected kernel
  // functions"); the bit flip is applied to the chosen instruction when
  // the function is first entered.
  Addr code_entry = 0;  // breakpoint (function entry)
  Addr code_addr = 0;   // corrupted instruction
  u32 code_insn_len = 1;   // bytes (1 on riscf means "the whole word")
  u32 code_bit = 0;        // bit within the instruction (LSB of first byte=0)
  std::string function;

  // kData: a random location in the kernel data section (word + bit).
  Addr data_addr = 0;  // word-aligned
  u32 data_bit = 0;    // 0..31 within the word

  // kStack: a random word in the live stack of a random kernel process,
  // resolved against the stack pointer at injection time.
  u32 stack_task = 0;
  double stack_depth_frac = 0.0;  // 0 = at SP, 1 = stack top
  u32 stack_bit = 0;              // 0..31

  // kRegister: a system register and bit.
  u32 reg_index = 0;
  u32 reg_bit = 0;
  std::string reg_name;

  // When (fraction of the nominal workload duration) deferred injections
  // (stack, register) fire.
  double inject_at_frac = 0.0;
};

/// Table 2 outcome categories (with the Table 5/6 known/unknown split),
/// plus one harness-side category the paper's tables do not have:
/// kHarnessError marks an injection the *control host* failed to execute
/// (a worker exception or a wall-clock stall, retried and then
/// quarantined).  It says nothing about the target's error sensitivity,
/// so the analysis layer reports it separately and keeps it out of every
/// paper-convention denominator.
enum class OutcomeCategory : u8 {
  kNotActivated = 0,
  kNotManifested,
  kFailSilenceViolation,
  kKnownCrash,
  kHangOrUnknownCrash,
  kHarnessError,
  kNumOutcomes,
};

std::string outcome_name(OutcomeCategory outcome);

struct InjectionRecord {
  InjectionTarget target;
  OutcomeCategory outcome = OutcomeCategory::kNotActivated;

  bool activated = false;
  bool activation_known = true;  // false for register injections (fn 1)
  Cycles activation_cycle = 0;
  /// Baseline for cycles_to_crash, following the paper: activation for
  /// code/stack errors, injection for data and register errors (their
  /// footnote 5 and the Section 6 discussion of latent data errors).
  Cycles latency_base_cycle = 0;

  bool crashed = false;
  bool crash_report_received = false;  // survived the UDP channel
  kernel::CrashReport crash{};
  Cycles cycles_to_crash = 0;

  u32 syscalls_completed = 0;

  /// Error-propagation digest, filled only when the campaign ran with
  /// tracing enabled (propagation_valid).  Observational: deliberately
  /// excluded from result_fingerprint, so traced and untraced campaigns
  /// fingerprint identically.
  trace::PropagationSummary propagation{};
  bool propagation_valid = false;

  // kHarnessError only: what went wrong in the harness and how many
  // attempts (initial + retries) were consumed before quarantining.
  std::string harness_error;
  u32 harness_attempts = 0;
};

}  // namespace kfi::inject
