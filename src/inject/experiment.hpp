// ExperimentRunner: executes one injection experiment end to end
// (STEP 2 and STEP 3 of the paper's Figure 2).
//
// Protocols, following Section 3.3:
//   code:     arm the instruction breakpoint at the target; when fetch
//             reaches it (before execution), flip the chosen bit of the
//             instruction bytes — the error then persists for the rest of
//             the run; activation = breakpoint reached.
//   stack /
//   data:     insert the error first (flip the bit), then arm a data
//             memory breakpoint over the word.  A write hit means the
//             error was overwritten: re-inject and mark activated.  A read
//             hit consumes the corrupted value: mark activated and stop
//             monitoring.  No hit by the end of the run: restore the
//             original value, not activated.
//   register: flip the bit of the system register at a random point of
//             the run; activation cannot be monitored (paper footnote 1).
//
// Outcomes follow Table 2, with crashes whose crash-data datagram was lost
// on the UDP channel merging into Hang/Unknown Crash as in Tables 5/6.
#pragma once

#include "inject/channel.hpp"
#include "inject/record.hpp"
#include "inject/watchdog.hpp"
#include "common/rng.hpp"
#include "kernel/machine.hpp"
#include "workload/workload.hpp"

namespace kfi::inject {

class ExperimentRunner {
 public:
  ExperimentRunner(kernel::Machine& machine, workload::Workload& wl,
                   UdpChannel& channel, CrashCollector& collector,
                   u64 nominal_cycles, u64 budget_cycles,
                   double kernel_fraction = 0.15);

  /// Run one injection; `sequence` tags the crash-data datagram.
  InjectionRecord run_one(const InjectionTarget& target, u64 run_seed,
                          u32 sequence);

  const Watchdog& watchdog() const { return watchdog_; }
  u64 nominal_cycles() const { return nominal_; }
  /// Simulated cycles consumed by all run_one() calls so far (campaign
  /// throughput observability; deterministic, so it merges bit-identically
  /// across workers).
  u64 simulated_cycles() const { return simulated_cycles_; }

 private:
  /// Flip bit `bit` (0..31) of the 32-bit value at word_addr, respecting
  /// the machine's endianness.
  void flip_value_bit(Addr word_addr, u32 bit);
  void flip_code_bit(const InjectionTarget& target);
  /// Resolve the live stack-word address for a stack target; returns 0 if
  /// the chosen process currently has no live stack words.
  Addr resolve_stack_addr(const InjectionTarget& target) const;
  /// Returns false when the flip landed in the user-mode window of a
  /// context-dependent register (EFLAGS/ESP/EIP on cisca, SP/MSR/SRR0/1 on
  /// riscf): the corrupted user context is replaced at the next kernel
  /// entry, so nothing reaches kernel state.
  bool inject_register(const InjectionTarget& target);

  kernel::Machine& machine_;
  workload::Workload& wl_;
  UdpChannel& channel_;
  CrashCollector& collector_;
  u64 nominal_;
  Watchdog watchdog_;
  double kernel_fraction_;
  u64 simulated_cycles_ = 0;
  Rng rng_{0x5eed};
};

}  // namespace kfi::inject
