// ExperimentRunner: executes one injection experiment end to end
// (STEP 2 and STEP 3 of the paper's Figure 2).
//
// Protocols, following Section 3.3:
//   code:     arm the instruction breakpoint at the target; when fetch
//             reaches it (before execution), flip the chosen bit of the
//             instruction bytes — the error then persists for the rest of
//             the run; activation = breakpoint reached.
//   stack /
//   data:     insert the error first (flip the bit), then arm a data
//             memory breakpoint over the word.  A write hit means the
//             error was overwritten: re-inject and mark activated.  A read
//             hit consumes the corrupted value: mark activated and stop
//             monitoring.  No hit by the end of the run: restore the
//             original value, not activated.
//   register: flip the bit of the system register at a random point of
//             the run; activation cannot be monitored (paper footnote 1).
//
// Outcomes follow Table 2, with crashes whose crash-data datagram was lost
// on the UDP channel merging into Hang/Unknown Crash as in Tables 5/6.
//
// Fault models: every protocol above applies the target's whole FaultSite
// list (one site under the paper's default model; k sites for multi-bit /
// burst shapes).  Under the rate trigger the Section 3.3 monitors are
// replaced by a cycle-triggered hook: the pre-drawn event schedule bounds
// each Machine::run slice, and each due site is applied when the machine
// stops at its cycle — activation is unknowable, as for registers.
#pragma once

#include <vector>

#include "errnoinj/injector.hpp"
#include "inject/channel.hpp"
#include "inject/fault_model.hpp"
#include "inject/record.hpp"
#include "common/rng.hpp"
#include "kernel/machine.hpp"
#include "trace/taint.hpp"
#include "workload/workload.hpp"

namespace kfi::inject {

class ExperimentRunner {
 public:
  ExperimentRunner(kernel::Machine& machine, workload::Workload& wl,
                   UdpChannel& channel, CrashCollector& collector,
                   u64 nominal_cycles, u64 budget_cycles,
                   double kernel_fraction = 0.15);

  /// Run one injection; `sequence` tags the crash-data datagram.
  InjectionRecord run_one(const InjectionTarget& target, u64 run_seed,
                          u32 sequence);

  /// Select the fault model the campaign froze into its plan (the
  /// trigger decides the run_one protocol; shapes are already encoded in
  /// the targets' site lists).  Defaults to the paper's legacy model.
  void set_fault_model(const FaultModel& model) { model_ = model; }

  /// Attach (or detach, with nullptr) the errno injector for kErrno
  /// campaigns.  The caller owns the injector and must also install it on
  /// the machine (Machine::set_syscall_result_hook); run_one() arms it
  /// with each target's frozen schedule and disarms it afterwards.
  void set_errno_injector(errnoinj::ErrnoInjector* injector) {
    errno_injector_ = injector;
  }

  /// Attach (or detach, with nullptr) an error-propagation taint engine.
  /// When attached, every run_one() seeds the engine at the exact flipped
  /// byte (register slot, memory byte, or instruction byte) and stores the
  /// finalized PropagationSummary in the record.  The caller must also
  /// attach the engine to the machine (Machine::set_trace_sink) so the CPU
  /// and glue hooks feed it; this stays strictly observational.
  void set_taint_engine(trace::TaintEngine* taint) { taint_ = taint; }

  /// Hang-budget bookkeeping (absorbed from the old standalone Watchdog):
  /// each run_one() "reboots" the machine back to the boot snapshot and
  /// runs it for at most budget_cycles before declaring a hang.
  u64 budget_cycles() const { return budget_cycles_; }
  u64 reboots() const { return reboots_; }
  u64 nominal_cycles() const { return nominal_; }
  /// Simulated cycles consumed by all run_one() calls so far (campaign
  /// throughput observability; deterministic, so it merges bit-identically
  /// across workers).
  u64 simulated_cycles() const { return simulated_cycles_; }

 private:
  /// Restore the boot snapshot ("reboot") before an experiment.
  void reboot();
  /// Flip bit `bit` (0..31) of the 32-bit value at word_addr, respecting
  /// the machine's endianness; seeds the taint engine (when attached) at
  /// the flipped byte.
  void flip_value_bit(Addr word_addr, u32 bit);
  /// Flip several bits of the same word (multi-bit / burst shapes); each
  /// flipped byte is seeded into the taint engine.
  void flip_value_bits(Addr word_addr, const std::vector<u32>& bits);
  /// Flip one code site (cisca: the instruction's byte stream in memory
  /// order; riscf: the 32-bit word).  Any write path bumps the page write
  /// version, so predecoded instruction caches invalidate automatically.
  void flip_code_site(const FaultSite& site);
  /// Mark the byte at `va` as the taint seed (no-op without an engine).
  void seed_taint_byte(Addr va);
  /// Resolve the live stack-word address for one stack site; returns 0 if
  /// the chosen process currently has no live stack words.
  Addr resolve_stack_addr(const FaultSite& site) const;
  /// Flip the target's register sites (all of the same register; bits are
  /// clamped to the architectural width and deduped so a clamp collision
  /// cannot silently cancel a flip).  Returns false when the single
  /// context-window draw lands the use in user context (EFLAGS/ESP/EIP on
  /// cisca, SP/MSR/SRR0/1 on riscf): the corrupted user context is
  /// replaced at the next kernel entry, so nothing reaches kernel state.
  bool inject_register(const InjectionTarget& target);
  /// Rate-trigger path: apply one scheduled site now.  Returns true when
  /// kernel state was actually corrupted.
  bool apply_rate_site(const InjectionTarget& target, const FaultSite& site,
                       InjectionRecord& record);
  /// kErrno protocol: no breakpoints, no corruption — arm the injector
  /// with the target's schedule, run the workload, and fold the per-op
  /// check results into the record's CascadeSummary.
  InjectionRecord run_errno(const InjectionTarget& target, u64 run_seed,
                            u32 sequence);

  kernel::Machine& machine_;
  workload::Workload& wl_;
  UdpChannel& channel_;
  CrashCollector& collector_;
  u64 nominal_;
  u64 budget_cycles_;
  u64 reboots_ = 0;
  double kernel_fraction_;
  u64 simulated_cycles_ = 0;
  trace::TaintEngine* taint_ = nullptr;
  errnoinj::ErrnoInjector* errno_injector_ = nullptr;
  FaultModel model_{};
  Rng rng_{0x5eed};
};

}  // namespace kfi::inject
