#include "inject/experiment.hpp"

#include "common/error.hpp"
#include "kernel/abi.hpp"
#include "kernel/layout.hpp"

namespace kfi::inject {

using kernel::Event;
using kernel::EventKind;

/// Share of context-register uses attributable to kernel context under the
/// triggered-use model (the workloads are syscall-dominated).
constexpr double kContextRegKernelShare = 0.6;

ExperimentRunner::ExperimentRunner(kernel::Machine& machine,
                                   workload::Workload& wl, UdpChannel& channel,
                                   CrashCollector& collector,
                                   u64 nominal_cycles, u64 budget_cycles,
                                   double kernel_fraction)
    : machine_(machine),
      wl_(wl),
      channel_(channel),
      collector_(collector),
      nominal_(nominal_cycles),
      budget_cycles_(budget_cycles),
      kernel_fraction_(kernel_fraction) {}

void ExperimentRunner::reboot() {
  machine_.restore(machine_.boot_snapshot());
  ++reboots_;
}

void ExperimentRunner::seed_taint_byte(Addr va) {
  if (taint_ == nullptr) return;
  const u32 phys = machine_.space().translate(va, 1, mem::Access::kRead).phys;
  taint_->seed_memory(va, phys, 1);
}

void ExperimentRunner::flip_value_bit(Addr word_addr, u32 bit) {
  mem::AddressSpace& space = machine_.space();
  space.vwrite32(word_addr, space.vread32(word_addr) ^ (1u << bit));
  // Seed the taint mark at the byte the flip landed in (the word is stored
  // in the machine's endianness; bit 0 is the LSB of the 32-bit value).
  seed_taint_byte(machine_.arch() == isa::Arch::kRiscf
                      ? word_addr + (3 - bit / 8)
                      : word_addr + bit / 8);
}

void ExperimentRunner::flip_code_bit(const InjectionTarget& target) {
  if (machine_.arch() == isa::Arch::kRiscf) {
    flip_value_bit(target.code_addr, target.code_bit);
    return;
  }
  // cisca: instructions are byte streams; the bit indexes them in memory
  // order (bit 0 = LSB of the first byte).
  machine_.space().vflip_bit(target.code_addr + target.code_bit / 8,
                             target.code_bit % 8);
  seed_taint_byte(target.code_addr + target.code_bit / 8);
}

Addr ExperimentRunner::resolve_stack_addr(const InjectionTarget& target) const {
  const u32 task = target.stack_task % kernel::kNumTasks;
  Addr sp;
  if (task == machine_.current_task()) {
    sp = machine_.cpu().stack_pointer();
  } else {
    sp = machine_.read_global("task_structs", task, "sp");
  }
  const Addr base = machine_.task_stack_base(task);
  const Addr top = machine_.task_stack_top(task);
  if (sp < base || sp > top) sp = top;  // implausible: treat stack as empty
  // Random location across the plausibly-used part of the stack: the live
  // frames plus a dead zone below the stack pointer that deeper call
  // chains and interrupts will claim.  Words in the dead zone activate by
  // write (re-injected per Section 3.3) or not at all — this is what
  // keeps activation below 100% for pre-planned stack targets.
  const u32 dead_zone = (top - base) / 8;
  const Addr lo = sp - base > dead_zone ? sp - dead_zone : base;
  const u32 words = (top - lo) / 4;
  if (words < 2) return 0;
  const u32 pick = static_cast<u32>(target.stack_depth_frac *
                                    static_cast<double>(words - 1));
  return lo + 4 * pick;
}

namespace {

/// Registers whose live value alternates between user and kernel context.
/// The paper's trigger is "a system register is used"; for these, a large
/// share of uses happen in user context, where the corrupted value is
/// replaced from the task state at the next kernel entry.
bool is_context_register(isa::Arch arch, const std::string& name) {
  if (arch == isa::Arch::kCisca) {
    return name == "ESP" || name == "EIP" || name == "EFLAGS";
  }
  return name == "SRR0" || name == "SRR1" || name == "MSR";
}

}  // namespace

bool ExperimentRunner::inject_register(const InjectionTarget& target) {
  isa::SystemRegisterBank& bank = machine_.cpu().sysregs();
  const u32 index = target.reg_index % bank.count();
  const u32 bit = target.reg_bit % bank.info(index).bits;
  if (is_context_register(machine_.arch(), bank.info(index).name) &&
      !rng_.chance(kContextRegKernelShare)) {
    // Use landed in user context: the flip corrupts state the kernel
    // replaces on entry.  Injected but with no kernel-visible effect.
    return false;
  }
  bank.flip_bit(index, bit);
  return true;
}

InjectionRecord ExperimentRunner::run_one(const InjectionTarget& target,
                                          u64 run_seed, u32 sequence) {
  InjectionRecord record;
  record.target = target;

  reboot();  // fresh boot state for every experiment
  wl_.reset(run_seed);
  rng_ = Rng(run_seed ^ 0xC0117E47u);  // per-run decisions (context window)
  channel_.begin_run(run_seed);  // per-run loss decisions (determinism)
  if (taint_ != nullptr) taint_->reset();  // fresh shadow state too

  isa::CpuCore& cpu = machine_.cpu();
  const u64 start = cpu.cycles();
  const u64 budget_end = start + budget_cycles_;

  // Deferred-injection setup.
  bool pending_deferred = target.kind == CampaignKind::kStack ||
                          target.kind == CampaignKind::kRegister;
  const u64 inject_at =
      start + static_cast<u64>(target.inject_at_frac *
                               static_cast<double>(nominal_));
  Addr watched_word = 0;
  u32 watched_bit = 0;

  switch (target.kind) {
    case CampaignKind::kCode:
      // Breakpoint at the selected function's entry; the flip is applied
      // to the chosen instruction when the function is first reached.
      cpu.debug().arm_insn_bp(target.code_entry != 0 ? target.code_entry
                                                     : target.code_addr);
      break;
    case CampaignKind::kData:
      watched_word = target.data_addr;
      watched_bit = target.data_bit;
      flip_value_bit(watched_word, watched_bit);
      // Data-error latency runs from injection: latent errors can sit
      // unconsumed for a long time (the paper's long-tail discussion).
      record.activation_cycle = cpu.cycles();
      record.latency_base_cycle = cpu.cycles();
      cpu.debug().arm_data_bp(0, watched_word, 4, /*on_read=*/true,
                              /*on_write=*/true);
      break;
    default:
      break;
  }
  if (target.kind == CampaignKind::kRegister) {
    record.activation_known = false;
  }

  bool fsv = false;
  bool hang = false;
  bool completed = false;
  bool monitoring = target.kind == CampaignKind::kData;  // bp armed now
  // Whether the latency baseline has been fixed (cycle 0 is a legitimate
  // baseline for data errors injected at run start).
  bool latency_base_set = target.kind == CampaignKind::kData;

  while (!record.crashed && !hang) {
    auto req = wl_.next(machine_);
    if (!req) {
      completed = true;
      break;
    }
    machine_.begin_syscall(req->nr, req->a0, req->a1, req->a2);
    record.syscalls_completed += 1;

    bool syscall_done = false;
    while (!syscall_done && !record.crashed && !hang) {
      u64 stop = budget_end;
      if (pending_deferred && inject_at < stop) stop = inject_at;
      const Event ev = machine_.run(stop);
      switch (ev.kind) {
        case EventKind::kCycleStop: {
          if (pending_deferred && cpu.cycles() >= inject_at) {
            pending_deferred = false;
            if (target.kind == CampaignKind::kRegister) {
              record.target.reg_name =
                  machine_.cpu().sysregs().info(
                      target.reg_index % machine_.cpu().sysregs().count()).name;
              if (inject_register(target)) {
                record.activation_cycle = cpu.cycles();
                // Register latency runs from injection (paper footnote 5).
                record.latency_base_cycle = cpu.cycles();
                latency_base_set = true;
                if (taint_ != nullptr) {
                  // Seed the register's shadow slot.  The bank write above
                  // is injector traffic, not program traffic, so it does
                  // not pass through the CPU's trace hooks; seeding here
                  // is what makes the flip visible to the engine.
                  taint_->seed_register(machine_.cpu().sysreg_slot(
                      target.reg_index % machine_.cpu().sysregs().count()));
                }
              }
            } else {  // stack
              watched_word = resolve_stack_addr(target);
              watched_bit = target.stack_bit;
              if (watched_word != 0) {
                flip_value_bit(watched_word, watched_bit);
                record.activation_cycle = cpu.cycles();
                cpu.debug().arm_data_bp(0, watched_word, 4, true, true);
                monitoring = true;
              }
            }
            break;
          }
          hang = true;
          break;
        }
        case EventKind::kInsnBp: {
          // Code injection: the selected function was entered; corrupt the
          // chosen instruction before execution proceeds.
          flip_code_bit(target);
          record.activated = true;
          record.activation_cycle = cpu.cycles();
          record.latency_base_cycle = cpu.cycles();
          latency_base_set = true;
          break;
        }
        case EventKind::kDataBp: {
          if (!record.activated) {
            record.activated = true;
            record.activation_cycle = cpu.cycles();
            // Stack latency runs from activation (first access).
            if (target.kind == CampaignKind::kStack) {
              record.latency_base_cycle = cpu.cycles();
              latency_base_set = true;
            }
          }
          if (ev.hit.is_write) {
            // The write overwrote the error: re-inject (Section 3.3).
            flip_value_bit(watched_word, watched_bit);
          } else {
            // Read access consumed the corrupted value.
            cpu.debug().disarm_data_bp(0);
            monitoring = false;
          }
          break;
        }
        case EventKind::kSyscallDone: {
          syscall_done = true;
          if (!wl_.check(machine_, ev.ret)) fsv = true;
          break;
        }
        case EventKind::kCrash: {
          record.crashed = true;
          record.crash = ev.crash;
          if (!record.activated) {
            // Consumed through an unmonitored path (e.g. the exception
            // glue): the crash itself proves activation.
            record.activated = true;
            if (record.activation_cycle == 0) record.activation_cycle = start;
          }
          if (!latency_base_set) {
            record.latency_base_cycle = record.activation_cycle != 0
                                            ? record.activation_cycle
                                            : start;
          }
          record.cycles_to_crash =
              ev.crash.cycles_to_crash - record.latency_base_cycle;
          break;
        }
        case EventKind::kCheckstop: {
          hang = true;
          break;
        }
        case EventKind::kIdle:
          KFI_CHECK(false, "machine idle mid-syscall");
          break;
      }
    }
  }

  // STEP 3: classify and (for crashes) deposit the crash data remotely.
  if (record.crashed) {
    kernel::CrashReport wire = record.crash;
    wire.cycles_to_crash = record.cycles_to_crash;
    channel_.send(DataDeposit::serialize(sequence, wire));
    collector_.poll(channel_);
    record.crash_report_received = collector_.has(sequence);
    record.outcome = record.crash_report_received
                         ? OutcomeCategory::kKnownCrash
                         : OutcomeCategory::kHangOrUnknownCrash;
  } else if (hang) {
    record.activated = record.activated || !record.activation_known;
    record.outcome = OutcomeCategory::kHangOrUnknownCrash;
  } else {
    KFI_CHECK(completed, "run neither completed nor failed");
    if (!wl_.final_check(machine_)) fsv = true;
    if (fsv) {
      // Output corruption proves the error was consumed, even if it slipped
      // through an unmonitored path (e.g. the exception glue).
      record.activated = record.activated || record.activation_known;
      record.outcome = OutcomeCategory::kFailSilenceViolation;
    } else if (!record.activated && target.kind != CampaignKind::kRegister) {
      // Paper Section 3.3: breakpoint never reached — the original value
      // is restored and the error marked as not activated.  (The reboot
      // before the next experiment restores it here.)
      record.outcome = OutcomeCategory::kNotActivated;
    } else {
      record.outcome = OutcomeCategory::kNotManifested;
    }
  }
  if (monitoring) cpu.debug().disarm_data_bp(0);
  cpu.debug().disarm_insn_bp();
  simulated_cycles_ += cpu.cycles() - start;
  if (taint_ != nullptr) {
    record.propagation = taint_->finalize();
    record.propagation_valid = true;
  }
  return record;
}

}  // namespace kfi::inject
