#include "inject/experiment.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "kernel/abi.hpp"
#include "kernel/layout.hpp"

namespace kfi::inject {

using kernel::Event;
using kernel::EventKind;

/// Share of context-register uses attributable to kernel context under the
/// triggered-use model (the workloads are syscall-dominated).
constexpr double kContextRegKernelShare = 0.6;

ExperimentRunner::ExperimentRunner(kernel::Machine& machine,
                                   workload::Workload& wl, UdpChannel& channel,
                                   CrashCollector& collector,
                                   u64 nominal_cycles, u64 budget_cycles,
                                   double kernel_fraction)
    : machine_(machine),
      wl_(wl),
      channel_(channel),
      collector_(collector),
      nominal_(nominal_cycles),
      budget_cycles_(budget_cycles),
      kernel_fraction_(kernel_fraction) {}

void ExperimentRunner::reboot() {
  machine_.restore(machine_.boot_snapshot());
  ++reboots_;
}

void ExperimentRunner::seed_taint_byte(Addr va) {
  if (taint_ == nullptr) return;
  const u32 phys = machine_.space().translate(va, 1, mem::Access::kRead).phys;
  taint_->seed_memory(va, phys, 1);
}

void ExperimentRunner::flip_value_bit(Addr word_addr, u32 bit) {
  mem::AddressSpace& space = machine_.space();
  space.vwrite32(word_addr, space.vread32(word_addr) ^ (1u << bit));
  // Seed the taint mark at the byte the flip landed in (the word is stored
  // in the machine's endianness; bit 0 is the LSB of the 32-bit value).
  seed_taint_byte(machine_.arch() == isa::Arch::kRiscf
                      ? word_addr + (3 - bit / 8)
                      : word_addr + bit / 8);
}

void ExperimentRunner::flip_value_bits(Addr word_addr,
                                       const std::vector<u32>& bits) {
  for (const u32 bit : bits) flip_value_bit(word_addr, bit);
}

void ExperimentRunner::flip_code_site(const FaultSite& site) {
  if (machine_.arch() == isa::Arch::kRiscf) {
    flip_value_bit(site.addr, site.bit);
    return;
  }
  // cisca: instructions are byte streams; the bit indexes them in memory
  // order (bit 0 = LSB of the first byte).
  machine_.space().vflip_bit(site.addr + site.bit / 8, site.bit % 8);
  seed_taint_byte(site.addr + site.bit / 8);
}

Addr ExperimentRunner::resolve_stack_addr(const FaultSite& site) const {
  const u32 task = site.task % kernel::kNumTasks;
  Addr sp;
  if (task == machine_.current_task()) {
    sp = machine_.cpu().stack_pointer();
  } else {
    sp = machine_.read_global("task_structs", task, "sp");
  }
  const Addr base = machine_.task_stack_base(task);
  const Addr top = machine_.task_stack_top(task);
  if (sp < base || sp > top) sp = top;  // implausible: treat stack as empty
  // Random location across the plausibly-used part of the stack: the live
  // frames plus a dead zone below the stack pointer that deeper call
  // chains and interrupts will claim.  Words in the dead zone activate by
  // write (re-injected per Section 3.3) or not at all — this is what
  // keeps activation below 100% for pre-planned stack targets.
  const u32 dead_zone = (top - base) / 8;
  const Addr lo = sp - base > dead_zone ? sp - dead_zone : base;
  const u32 words = (top - lo) / 4;
  if (words < 2) return 0;
  const u32 pick =
      static_cast<u32>(site.depth_frac * static_cast<double>(words - 1));
  return lo + 4 * pick;
}

namespace {

/// Registers whose live value alternates between user and kernel context.
/// The paper's trigger is "a system register is used"; for these, a large
/// share of uses happen in user context, where the corrupted value is
/// replaced from the task state at the next kernel entry.
bool is_context_register(isa::Arch arch, const std::string& name) {
  if (arch == isa::Arch::kCisca) {
    return name == "ESP" || name == "EIP" || name == "EFLAGS";
  }
  return name == "SRR0" || name == "SRR1" || name == "MSR";
}

}  // namespace

bool ExperimentRunner::inject_register(const InjectionTarget& target) {
  isa::SystemRegisterBank& bank = machine_.cpu().sysregs();
  const u32 index = target.site().reg_index % bank.count();
  const u32 width = bank.info(index).bits;
  if (is_context_register(machine_.arch(), bank.info(index).name) &&
      !rng_.chance(kContextRegKernelShare)) {
    // Use landed in user context: the flip corrupts state the kernel
    // replaces on entry.  Injected but with no kernel-visible effect.
    return false;
  }
  // All sites name the same register; clamp each bit to the architectural
  // width and dedup so a clamp collision cannot flip a bit back.
  std::vector<u32> bits;
  for (const FaultSite& s : target.sites) {
    const u32 bit = s.bit % width;
    if (std::find(bits.begin(), bits.end(), bit) == bits.end()) {
      bits.push_back(bit);
    }
  }
  for (const u32 bit : bits) bank.flip_bit(index, bit);
  return true;
}

bool ExperimentRunner::apply_rate_site(const InjectionTarget& target,
                                       const FaultSite& site,
                                       InjectionRecord& record) {
  switch (target.kind) {
    case CampaignKind::kCode:
      // Corrupt the instruction in place; the page write-version bump
      // invalidates any predecoded cache line covering it.
      flip_code_site(site);
      return true;
    case CampaignKind::kData:
      flip_value_bit(site.addr, site.bit);
      return true;
    case CampaignKind::kStack: {
      // Stack geometry is only meaningful at firing time: resolve the live
      // word now, not at plan time.
      const Addr addr = resolve_stack_addr(site);
      if (addr == 0) return false;
      flip_value_bit(addr, site.bit);
      return true;
    }
    case CampaignKind::kRegister: {
      isa::SystemRegisterBank& bank = machine_.cpu().sysregs();
      const u32 index = site.reg_index % bank.count();
      if (record.target.reg_name.empty()) {
        record.target.reg_name = bank.info(index).name;
      }
      const u32 bit = site.bit % bank.info(index).bits;
      if (is_context_register(machine_.arch(), bank.info(index).name) &&
          !rng_.chance(kContextRegKernelShare)) {
        return false;
      }
      bank.flip_bit(index, bit);
      if (taint_ != nullptr) {
        taint_->seed_register(machine_.cpu().sysreg_slot(index));
      }
      return true;
    }
    case CampaignKind::kErrno:
      KFI_CHECK(false, "errno campaigns never take the rate-site path");
      break;
  }
  return false;
}

InjectionRecord ExperimentRunner::run_errno(const InjectionTarget& target,
                                            u64 run_seed, u32 sequence) {
  KFI_CHECK(errno_injector_ != nullptr,
            "errno campaign run without an attached ErrnoInjector");
  InjectionRecord record;
  record.target = target;

  reboot();  // fresh boot state for every experiment
  wl_.reset(run_seed);
  rng_ = Rng(run_seed ^ 0xC0117E47u);  // parity with the physical path
  channel_.begin_run(run_seed);
  if (taint_ != nullptr) taint_->reset();

  // The frozen per-run schedule: one ScheduledError per site (the plan
  // stored the invocation index in site.task and the forced return in
  // site.bit; see FaultSite's kErrno field overloads).
  std::vector<errnoinj::ScheduledError> schedule;
  schedule.reserve(target.sites.size());
  for (const FaultSite& s : target.sites) {
    errnoinj::ScheduledError e;
    e.index = s.task;
    e.ret = s.bit;
    schedule.push_back(e);
  }
  errno_injector_->arm(std::move(schedule));

  isa::CpuCore& cpu = machine_.cpu();
  const u64 start = cpu.cycles();
  const u64 budget_end = start + budget_cycles_;

  errnoinj::CascadeTracker tracker;
  bool fsv = false;
  bool hang = false;
  bool completed = false;
  bool latency_base_set = false;
  u32 ops_completed = 0;
  size_t forces_seen = 0;

  while (!record.crashed && !hang) {
    auto req = wl_.next(machine_);
    if (!req) {
      completed = true;
      break;
    }
    machine_.begin_syscall(req->nr, req->a0, req->a1, req->a2);
    record.syscalls_completed += 1;

    bool syscall_done = false;
    while (!syscall_done && !record.crashed && !hang) {
      const Event ev = machine_.run(budget_end);
      switch (ev.kind) {
        case EventKind::kCycleStop:
          hang = true;
          break;
        case EventKind::kSyscallDone: {
          syscall_done = true;
          const bool ok = wl_.check(machine_, ev.ret);
          if (!ok) fsv = true;
          // Forces are delivered exactly at syscall completion, so the
          // delta in the injector's log is this op's force count.
          const u32 newly = static_cast<u32>(
              errno_injector_->forced().size() - forces_seen);
          forces_seen = errno_injector_->forced().size();
          if (newly > 0 && !record.activated) {
            // Activation == the first forced return was delivered; the
            // latency baseline runs from there (cf. code/stack errors).
            record.activated = true;
            record.activation_cycle = cpu.cycles();
            record.latency_base_cycle = cpu.cycles();
            latency_base_set = true;
          }
          tracker.record_op(ops_completed, newly, ok);
          ++ops_completed;
          break;
        }
        case EventKind::kCrash: {
          record.crashed = true;
          record.crash = ev.crash;
          if (!latency_base_set) {
            record.latency_base_cycle =
                record.activation_cycle != 0 ? record.activation_cycle : start;
          }
          record.cycles_to_crash =
              ev.crash.cycles_to_crash - record.latency_base_cycle;
          break;
        }
        case EventKind::kCheckstop:
          hang = true;
          break;
        case EventKind::kInsnBp:
        case EventKind::kDataBp:
          KFI_CHECK(false, "stray breakpoint in an errno run");
          break;
        case EventKind::kIdle:
          KFI_CHECK(false, "machine idle mid-syscall");
          break;
      }
    }
  }

  const std::vector<errnoinj::ForcedError> forced = errno_injector_->forced();
  errno_injector_->disarm();

  const bool final_ok = completed ? wl_.final_check(machine_) : true;
  if (!final_ok) fsv = true;

  record.cascade = tracker.finalize(completed, final_ok, ops_completed);
  if (!forced.empty()) {
    record.cascade.first_forced_syscall = forced.front().syscall;
    record.cascade.natural_ret = forced.front().natural_ret;
    record.cascade.forced_ret = forced.front().forced_ret;
  }
  record.cascade_valid = true;

  // STEP 3: classify and (for crashes) deposit the crash data remotely.
  if (record.crashed) {
    kernel::CrashReport wire = record.crash;
    wire.cycles_to_crash = record.cycles_to_crash;
    channel_.send(DataDeposit::serialize(sequence, wire));
    collector_.poll(channel_);
    record.crash_report_received = collector_.has(sequence);
    record.outcome = record.crash_report_received
                         ? OutcomeCategory::kKnownCrash
                         : OutcomeCategory::kHangOrUnknownCrash;
  } else if (hang) {
    record.outcome = OutcomeCategory::kHangOrUnknownCrash;
  } else if (forced.empty()) {
    // The schedule never fired (index beyond the run's eligible
    // invocations, or an empty Poisson draw): nothing was injected.
    record.outcome = OutcomeCategory::kNotActivated;
  } else if (fsv) {
    record.outcome = OutcomeCategory::kFailSilenceViolation;
  } else {
    record.outcome = OutcomeCategory::kNotManifested;
  }
  simulated_cycles_ += cpu.cycles() - start;
  if (taint_ != nullptr) {
    record.propagation = taint_->finalize();
    record.propagation_valid = true;
  }
  return record;
}

InjectionRecord ExperimentRunner::run_one(const InjectionTarget& target,
                                          u64 run_seed, u32 sequence) {
  if (target.kind == CampaignKind::kErrno) {
    return run_errno(target, run_seed, sequence);
  }
  InjectionRecord record;
  record.target = target;

  reboot();  // fresh boot state for every experiment
  wl_.reset(run_seed);
  rng_ = Rng(run_seed ^ 0xC0117E47u);  // per-run decisions (context window)
  channel_.begin_run(run_seed);  // per-run loss decisions (determinism)
  if (taint_ != nullptr) taint_->reset();  // fresh shadow state too

  isa::CpuCore& cpu = machine_.cpu();
  const u64 start = cpu.cycles();
  const u64 budget_end = start + budget_cycles_;

  // Rate trigger: the plan pre-drew a Poisson event schedule into the
  // site list (sorted by at_frac); no Section 3.3 monitor is armed, and
  // each site fires when the machine reaches its cycle.
  const bool rate_mode = model_.trigger == FaultTrigger::kRate;
  size_t next_site = 0;
  bool rate_applied_any = false;
  auto site_cycle = [&](const FaultSite& s) {
    return start + static_cast<u64>(s.at_frac * static_cast<double>(nominal_));
  };

  // Deferred-injection setup (single-shot stack/register).
  bool pending_deferred =
      !rate_mode && (target.kind == CampaignKind::kStack ||
                     target.kind == CampaignKind::kRegister);
  const u64 inject_at =
      start + static_cast<u64>(target.inject_at_frac *
                               static_cast<double>(nominal_));
  Addr watched_word = 0;
  std::vector<u32> watched_bits;
  auto site_bits = [&target]() {
    std::vector<u32> bits;
    bits.reserve(target.sites.size());
    for (const FaultSite& s : target.sites) bits.push_back(s.bit);
    return bits;
  };

  if (!rate_mode) {
    switch (target.kind) {
      case CampaignKind::kCode:
        // Breakpoint at the selected function's entry; the flips are
        // applied to the chosen instruction when the function is first
        // reached.
        cpu.debug().arm_insn_bp(target.code_entry != 0 ? target.code_entry
                                                       : target.site().addr);
        break;
      case CampaignKind::kData:
        // Every site of a multi-bit/burst shape lands in the same word.
        watched_word = target.site().addr;
        watched_bits = site_bits();
        flip_value_bits(watched_word, watched_bits);
        // Data-error latency runs from injection: latent errors can sit
        // unconsumed for a long time (the paper's long-tail discussion).
        record.activation_cycle = cpu.cycles();
        record.latency_base_cycle = cpu.cycles();
        cpu.debug().arm_data_bp(0, watched_word, 4, /*on_read=*/true,
                                /*on_write=*/true);
        break;
      default:
        break;
    }
  }
  if (rate_mode || target.kind == CampaignKind::kRegister) {
    // No monitor can observe a use of the corrupted state (registers,
    // paper footnote 1) — and rate-mode flips are likewise unmonitored.
    record.activation_known = false;
  }

  bool fsv = false;
  bool hang = false;
  bool completed = false;
  bool monitoring =
      !rate_mode && target.kind == CampaignKind::kData;  // bp armed now
  // Whether the latency baseline has been fixed (cycle 0 is a legitimate
  // baseline for data errors injected at run start).
  bool latency_base_set = monitoring;

  while (!record.crashed && !hang) {
    auto req = wl_.next(machine_);
    if (!req) {
      completed = true;
      break;
    }
    machine_.begin_syscall(req->nr, req->a0, req->a1, req->a2);
    record.syscalls_completed += 1;

    bool syscall_done = false;
    while (!syscall_done && !record.crashed && !hang) {
      u64 stop = budget_end;
      if (pending_deferred && inject_at < stop) stop = inject_at;
      if (rate_mode && next_site < target.sites.size()) {
        const u64 at = site_cycle(target.sites[next_site]);
        if (at < stop) stop = at;
      }
      const Event ev = machine_.run(stop);
      switch (ev.kind) {
        case EventKind::kCycleStop: {
          if (pending_deferred && cpu.cycles() >= inject_at) {
            pending_deferred = false;
            if (target.kind == CampaignKind::kRegister) {
              record.target.reg_name =
                  machine_.cpu().sysregs().info(
                      target.site().reg_index %
                      machine_.cpu().sysregs().count()).name;
              if (inject_register(target)) {
                record.activation_cycle = cpu.cycles();
                // Register latency runs from injection (paper footnote 5).
                record.latency_base_cycle = cpu.cycles();
                latency_base_set = true;
                if (taint_ != nullptr) {
                  // Seed the register's shadow slot.  The bank write above
                  // is injector traffic, not program traffic, so it does
                  // not pass through the CPU's trace hooks; seeding here
                  // is what makes the flip visible to the engine.
                  taint_->seed_register(machine_.cpu().sysreg_slot(
                      target.site().reg_index %
                      machine_.cpu().sysregs().count()));
                }
              }
            } else {  // stack
              watched_word = resolve_stack_addr(target.site());
              watched_bits = site_bits();
              if (watched_word != 0) {
                flip_value_bits(watched_word, watched_bits);
                record.activation_cycle = cpu.cycles();
                cpu.debug().arm_data_bp(0, watched_word, 4, true, true);
                monitoring = true;
              }
            }
            break;
          }
          if (rate_mode && next_site < target.sites.size() &&
              cpu.cycles() >= site_cycle(target.sites[next_site])) {
            while (next_site < target.sites.size() &&
                   cpu.cycles() >= site_cycle(target.sites[next_site])) {
              const FaultSite& s = target.sites[next_site++];
              if (apply_rate_site(target, s, record)) {
                rate_applied_any = true;
                if (!latency_base_set) {
                  record.activation_cycle = cpu.cycles();
                  record.latency_base_cycle = cpu.cycles();
                  latency_base_set = true;
                }
              }
            }
            break;
          }
          hang = true;
          break;
        }
        case EventKind::kInsnBp: {
          // Code injection: the selected function was entered; corrupt the
          // chosen instruction before execution proceeds.
          for (const FaultSite& s : target.sites) flip_code_site(s);
          record.activated = true;
          record.activation_cycle = cpu.cycles();
          record.latency_base_cycle = cpu.cycles();
          latency_base_set = true;
          break;
        }
        case EventKind::kDataBp: {
          if (!record.activated) {
            record.activated = true;
            record.activation_cycle = cpu.cycles();
            // Stack latency runs from activation (first access).
            if (target.kind == CampaignKind::kStack) {
              record.latency_base_cycle = cpu.cycles();
              latency_base_set = true;
            }
          }
          if (ev.hit.is_write) {
            // The write overwrote the error: re-inject (Section 3.3).
            flip_value_bits(watched_word, watched_bits);
          } else {
            // Read access consumed the corrupted value.
            cpu.debug().disarm_data_bp(0);
            monitoring = false;
          }
          break;
        }
        case EventKind::kSyscallDone: {
          syscall_done = true;
          if (!wl_.check(machine_, ev.ret)) fsv = true;
          break;
        }
        case EventKind::kCrash: {
          record.crashed = true;
          record.crash = ev.crash;
          if (!record.activated) {
            // Consumed through an unmonitored path (e.g. the exception
            // glue): the crash itself proves activation.
            record.activated = true;
            if (record.activation_cycle == 0) record.activation_cycle = start;
          }
          if (!latency_base_set) {
            record.latency_base_cycle = record.activation_cycle != 0
                                            ? record.activation_cycle
                                            : start;
          }
          record.cycles_to_crash =
              ev.crash.cycles_to_crash - record.latency_base_cycle;
          break;
        }
        case EventKind::kCheckstop: {
          hang = true;
          break;
        }
        case EventKind::kIdle:
          KFI_CHECK(false, "machine idle mid-syscall");
          break;
      }
    }
  }

  // STEP 3: classify and (for crashes) deposit the crash data remotely.
  if (record.crashed) {
    kernel::CrashReport wire = record.crash;
    wire.cycles_to_crash = record.cycles_to_crash;
    channel_.send(DataDeposit::serialize(sequence, wire));
    collector_.poll(channel_);
    record.crash_report_received = collector_.has(sequence);
    record.outcome = record.crash_report_received
                         ? OutcomeCategory::kKnownCrash
                         : OutcomeCategory::kHangOrUnknownCrash;
  } else if (hang) {
    record.activated = record.activated || !record.activation_known;
    record.outcome = OutcomeCategory::kHangOrUnknownCrash;
  } else {
    KFI_CHECK(completed, "run neither completed nor failed");
    if (!wl_.final_check(machine_)) fsv = true;
    if (fsv) {
      // Output corruption proves the error was consumed, even if it slipped
      // through an unmonitored path (e.g. the exception glue).
      record.activated = record.activated || record.activation_known;
      record.outcome = OutcomeCategory::kFailSilenceViolation;
    } else if (rate_mode && !rate_applied_any) {
      // Every scheduled flip missed kernel state (user-context register
      // windows, empty stacks) or the schedule was empty: provably nothing
      // was injected, so the clean run is a non-activation, and that is
      // known despite the rate trigger being unmonitorable in general.
      record.activation_known = true;
      record.outcome = OutcomeCategory::kNotActivated;
    } else if (!record.activated && !rate_mode &&
               target.kind != CampaignKind::kRegister) {
      // Paper Section 3.3: breakpoint never reached — the original value
      // is restored and the error marked as not activated.  (The reboot
      // before the next experiment restores it here.)
      record.outcome = OutcomeCategory::kNotActivated;
    } else {
      record.outcome = OutcomeCategory::kNotManifested;
    }
  }
  if (monitoring) cpu.debug().disarm_data_bp(0);
  cpu.debug().disarm_insn_bp();
  simulated_cycles_ += cpu.cycles() - start;
  if (taint_ != nullptr) {
    record.propagation = taint_->finalize();
    record.propagation_valid = true;
  }
  return record;
}

}  // namespace kfi::inject
