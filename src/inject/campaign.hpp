// CampaignController: the NFTAPE control host (paper Figure 1).
//
// Orchestrates one injection campaign end to end: builds the target
// machine, calibrates the workload, profiles the kernel to select hot
// functions, pre-generates the campaign's injection targets, then runs the
// automated inject/monitor/collect loop, "rebooting" (snapshot restore)
// after every manifested outcome via the watchdog.
#pragma once

#include <functional>
#include <vector>

#include "inject/experiment.hpp"
#include "inject/record.hpp"
#include "inject/target_gen.hpp"
#include "kernel/machine.hpp"

namespace kfi::inject {

struct CampaignSpec {
  isa::Arch arch = isa::Arch::kCisca;
  CampaignKind kind = CampaignKind::kCode;
  u32 injections = 200;
  u64 seed = 1;
  u32 workload_scale = 1;
  kernel::MachineOptions machine{};
  /// UDP crash-data datagram loss probability (unknown-crash source).
  double channel_loss = 0.03;
  /// Hang budget as a multiple of the calibrated fault-free run length.
  double budget_factor = 3.0;
};

struct CampaignResult {
  CampaignSpec spec;
  std::vector<InjectionRecord> records;
  u64 nominal_cycles = 0;  // calibrated fault-free run length
  std::vector<workload::HotFunction> hot_functions;
  u64 reboots = 0;
  u64 datagrams_sent = 0;
  u64 datagrams_dropped = 0;
};

using ProgressFn = std::function<void(u32 done, u32 total)>;

/// Run a full campaign (Figure 2's automated process).
CampaignResult run_campaign(const CampaignSpec& spec,
                            const ProgressFn& progress = {});

/// Convenience for worked-example reproductions: run a single targeted
/// injection on a caller-provided machine/workload pair.
InjectionRecord run_single_injection(kernel::Machine& machine,
                                     workload::Workload& wl,
                                     const InjectionTarget& target,
                                     u64 seed = 1);

}  // namespace kfi::inject
