// CampaignController: the NFTAPE control host (paper Figure 1).
//
// A campaign is a three-layer pipeline:
//   CampaignPlan    (plan.hpp)    — STEP 1 frozen: calibration, profile,
//                                   pre-generated targets, pre-drawn seeds
//   CampaignEngine  (engine.hpp)  — worker Machines execute the plan,
//                                   serial or parallel
//   deterministic merge           — records at their target index,
//                                   counters summed; bit-identical for any
//                                   worker count
// run_campaign() below is the one-call convenience path through all three.
#pragma once

#include "inject/engine.hpp"
#include "inject/plan.hpp"
#include "inject/record.hpp"
#include "kernel/machine.hpp"
#include "trace/taint.hpp"

namespace kfi::inject {

/// Run a full campaign (Figure 2's automated process): build the plan,
/// execute it on `jobs` workers (0 = hardware concurrency), merge.  The
/// result is bit-identical for the same spec regardless of `jobs`, and —
/// because tracing is observational — regardless of `trace`.
CampaignResult run_campaign(const CampaignSpec& spec,
                            const ProgressFn& progress = {}, u32 jobs = 1,
                            bool trace = false);

/// Convenience for worked-example reproductions: run a single targeted
/// injection on a caller-provided machine/workload pair.  Calibrates the
/// machine the same way run_campaign does (shared helpers in plan.hpp),
/// including the kernel-time fraction.  When `taint` is non-null the run
/// is traced through it (sink attached for the run, detached after) and
/// the record carries a PropagationSummary.
InjectionRecord run_single_injection(kernel::Machine& machine,
                                     workload::Workload& wl,
                                     const InjectionTarget& target,
                                     u64 seed = 1,
                                     trace::TaintEngine* taint = nullptr,
                                     const FaultModel& model = {});

/// The records an (possibly interrupted) campaign actually produced:
/// resumed + executed indices, in target order.  For a completed campaign
/// this is simply a copy of result.records.
std::vector<InjectionRecord> completed_records(const CampaignResult& result);

/// FNV-1a over every determinism-relevant field of a merged campaign
/// result.  Two results with equal fingerprints ran bit-identically; the
/// scaling bench, the fast-path cross-check, and CI all compare campaigns
/// through this one function (jobs counts, decode cache on/off, fast vs
/// full-copy reboot).
u64 result_fingerprint(const CampaignResult& result);

}  // namespace kfi::inject
