// Watchdog: the hardware monitor card of the paper's Figure 1.
//
// Detects hangs by cycle budget and performs the automated "reboot"
// (snapshot restore) after any manifested outcome, counting reboots the
// way the physical watchdog cards drove machine restarts.
#pragma once

#include "common/types.hpp"
#include "kernel/machine.hpp"

namespace kfi::inject {

class Watchdog {
 public:
  explicit Watchdog(u64 budget_cycles) : budget_(budget_cycles) {}

  u64 budget() const { return budget_; }

  /// Deadline for a run beginning at `start_cycles`.
  u64 deadline(u64 start_cycles) const { return start_cycles + budget_; }

  /// Restore the machine to its boot snapshot ("reboot") and count it.
  void reboot(kernel::Machine& machine) {
    machine.restore(machine.boot_snapshot());
    ++reboots_;
  }

  u64 reboots() const { return reboots_; }

 private:
  u64 budget_;
  u64 reboots_ = 0;
};

}  // namespace kfi::inject
