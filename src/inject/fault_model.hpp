// FaultModel: what gets corrupted and when.
//
// The 2004 paper injects exactly one single-bit flip per run, applied at
// activation (single-shot).  That model stays the default — and stays
// bit-identical end to end: a legacy-model plan fingerprints, journals
// and executes exactly as it did before fault models existed.  On top of
// it the model adds:
//
//   shape    kSingleBit  one flipped bit per fault event (the paper)
//            kMultiBit   k distinct random bits of the same unit
//            kBurst      `burst_span` adjacent bits of the same unit
//            kOpclass    single-bit, but the targeted instruction is
//                        drawn only from one functional-unit class
//                        (code campaigns only)
//   trigger  kSingleShot one fault event per run, applied by the paper's
//                        Section 3.3 protocol (breakpoints, deferred
//                        injection)
//            kRate       a Poisson process in simulated cycles: the
//                        per-run event count and event times are
//                        pre-drawn from the plan's seeded RNG, so rate
//                        campaigns stay deterministic and resumable
//
// Everything the model decides is frozen into the CampaignPlan's
// InjectionTarget FaultSite lists at plan time; the runner only replays
// the schedule.
#pragma once

#include <string>

#include "common/error.hpp"
#include "common/types.hpp"
#include "isa/opclass.hpp"

namespace kfi::inject {

enum class CampaignKind : u8;

enum class FaultShape : u8 { kSingleBit = 0, kMultiBit, kBurst, kOpclass };
enum class FaultTrigger : u8 { kSingleShot = 0, kRate };

/// Typed failure for an inconsistent or out-of-range fault model (bad
/// CLI knobs, opclass shape on a non-code campaign, ...).
class FaultModelError : public Error {
 public:
  explicit FaultModelError(const std::string& what) : Error(what) {}
};

struct FaultModel {
  FaultShape shape = FaultShape::kSingleBit;
  FaultTrigger trigger = FaultTrigger::kSingleShot;
  /// kMultiBit: distinct bits flipped per fault event (1..32).
  u32 bits = 1;
  /// kBurst: adjacent bits flipped per fault event (2..32).
  u32 burst_span = 2;
  /// kRate: expected fault events per nominal run length (> 0).
  double rate = 0.0;
  /// kOpclass: functional-unit class the targeted instruction must have.
  isa::OpClass opclass = isa::OpClass::kAlu;

  /// The paper's model — and the bit-identical-to-seed fast path.
  bool is_legacy() const {
    return shape == FaultShape::kSingleBit && trigger == FaultTrigger::kSingleShot;
  }

  /// Bits flipped by one fault event under this shape.
  u32 flips_per_event() const;

  /// Throws FaultModelError when the knobs are out of range or do not fit
  /// the campaign kind.  Every plan build calls this first.
  void validate(CampaignKind kind) const;

  /// Human-readable summary, e.g. "multi-bit k=4" or
  /// "single-bit rate=2.0/run".
  std::string name() const;
};

/// FNV-1a over the model's knobs.  Stamped into journal v3 headers so a
/// resume can refuse a journal written under a different fault model even
/// when the rest of the plan matches.
u64 fault_model_fingerprint(const FaultModel& model);

}  // namespace kfi::inject
