// CampaignEngine: executes a frozen CampaignPlan across worker Machines,
// under a fault-tolerant supervisor.
//
// Each worker owns a private replica of the experiment apparatus — a
// Machine booted from the plan's shared immutable kernel image, a
// Workload, a UdpChannel, a CrashCollector, and an ExperimentRunner — and
// claims injection indices from a shared counter.  Because every
// injection experiment starts from the boot snapshot and draws all of its
// randomness from the plan's pre-drawn per-run seed, a record depends
// only on (plan, index): the merged CampaignResult is bit-identical to a
// serial run of the same plan, which the parity tests assert.  The merge
// is deterministic by construction: records land at their target index,
// and the reboot / datagram / drop / cycle counters are order-independent
// per-injection sums.
//
// The supervisor layer makes the campaign durable and partial-failure
// tolerant (the NFTAPE control host's job in the paper's Figure 1):
//   * journal      — completed records are flushed to an append-only
//                    journal as they finish; a killed campaign resumes by
//                    skipping journaled indices, bit-identically.
//   * isolation    — an exception escaping one injection retries that
//                    index on a freshly built worker rig, then quarantines
//                    it as a harness-error record; the campaign continues.
//   * watchdog     — a supervisor thread monitors per-worker heartbeats;
//                    an injection exceeding its wall budget is interrupted
//                    via the machine's HarnessInterrupt and quarantined
//                    instead of wedging the run.
//   * cancel       — a cooperative cancel flag (e.g. set from SIGINT)
//                    stops workers at the next injection boundary with the
//                    journal flushed, so the run can be resumed.
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "inject/plan.hpp"

namespace kfi::inject {

class InjectionJournal;

/// Observability for the run itself (wall-clock, not simulated, so it is
/// deliberately excluded from the determinism contract).
struct CampaignThroughput {
  u32 jobs = 0;  // worker threads used; 0 = result predates the engine
  double plan_seconds = 0.0;  // codegen + calibration + profile + targets
  double run_seconds = 0.0;   // injection execution (all workers)
  double wall_seconds = 0.0;  // plan + run
  /// Simulated cycles consumed by all injection runs (summed per worker).
  u64 simulated_cycles = 0;
  /// Private (non-shared) resident memory pages held by worker machines at
  /// campaign end: the COW observability for bench/campaign_scaling.  With
  /// copy-on-write boot-snapshot sharing these stay small and roughly flat
  /// per worker (dirty pages only); without it every worker holds a full
  /// image.  0 when no worker executed anything.
  u64 worker_private_pages = 0;   // summed across workers
  u32 max_worker_private_pages = 0;  // largest single worker

  double injections_per_second(size_t injections) const {
    return run_seconds > 0.0
               ? static_cast<double>(injections) / run_seconds
               : 0.0;
  }
  double simulated_cycles_per_second() const {
    return run_seconds > 0.0
               ? static_cast<double>(simulated_cycles) / run_seconds
               : 0.0;
  }
};

/// One remote host's supervisor ledger for a multi-host fabric run:
/// what the coordinator had to do to keep that host's shards moving.
struct FabricHostStats {
  std::string host;             // "host:port" endpoint label
  u64 dispatches = 0;           // shard submissions sent (incl. re-sends)
  u64 deaths = 0;               // connection losses / refusals / EOFs
  u64 lease_revocations = 0;    // heartbeat leases the coordinator revoked
  u64 backoff_waits = 0;        // reconnect backoff sleeps charged
  double backoff_seconds = 0.0;
  u64 records = 0;              // journal records this host delivered
};

struct CampaignResult {
  CampaignSpec spec;
  std::vector<InjectionRecord> records;
  /// records[i] is only meaningful where done_mask[i] != 0; an
  /// uninterrupted campaign has every index done.  (Interrupted runs
  /// leave default records at unexecuted indices.)
  std::vector<u8> done_mask;
  u64 nominal_cycles = 0;  // calibrated fault-free run length
  double kernel_fraction = 0.15;
  std::vector<workload::HotFunction> hot_functions;
  u64 reboots = 0;
  u64 datagrams_sent = 0;
  u64 datagrams_dropped = 0;
  CampaignThroughput throughput;

  // Supervisor observability (operational, excluded from the result
  // fingerprint just like throughput).
  u64 quarantined = 0;       // harness-error records (incl. stalls)
  u64 stalls = 0;            // wall-clock watchdog / step-budget trips
  u64 harness_retries = 0;   // retry attempts consumed before success
  u64 resumed_records = 0;   // records recovered from the journal
  u64 journal_flushes = 0;   // journal appends flushed this run
  bool interrupted = false;  // cancelled before every index completed
  /// Retry-backoff observability: waits taken before harness-error
  /// retries, total and per engine worker (worker_backoff_waits[w] is
  /// worker thread w's count; empty when no worker ran).
  u64 retry_backoff_waits = 0;
  double retry_backoff_seconds = 0.0;
  std::vector<u64> worker_backoff_waits;

  // Fabric observability, filled by the multi-process coordinator (zero
  // for in-process runs).  Like the supervisor block these never enter
  // the result fingerprint or the paper denominators: a worker death is
  // a harness event, not an injection outcome.
  u32 fabric_workers = 0;         // subprocess slots the fabric ran with
  u64 fabric_worker_deaths = 0;   // abnormal worker exits (incl. SIGKILL)
  u64 fabric_redispatches = 0;    // shard re-assignments after a death
  u64 fabric_backoff_waits = 0;   // restart backoff sleeps taken
  double fabric_backoff_seconds = 0.0;
  u64 fabric_spliced_duplicates = 0;  // identical dup entries dropped
  /// Per-host supervisor ledger, filled by the multi-host coordinator
  /// (empty for in-process and single-host fabric runs).  Operational
  /// only — like every fabric_* field it never touches the result
  /// fingerprint or the paper denominators.
  std::vector<FabricHostStats> fabric_hosts;

  /// Indices actually carrying a record (resumed + executed).
  u64 executed() const {
    u64 n = 0;
    for (const u8 d : done_mask) n += d;
    return n;
  }
};

using ProgressFn = std::function<void(u32 done, u32 total)>;

/// Supervisor knobs for one engine run.  The default-constructed control
/// is the plain in-memory campaign: no journal, one retry, watchdog off.
struct RunControl {
  /// Durable record sink; also the source of resumed indices (its
  /// recovered() entries are skipped and pre-merged).  May be null.
  InjectionJournal* journal = nullptr;
  /// Harness-error retries per index before quarantining (each retry runs
  /// on a freshly built worker rig).
  u32 retries = 1;
  /// Exponential backoff before each harness-error retry: retry attempt a
  /// (1-based) waits min(cap, base * 2^(a-1)) seconds, scaled by a
  /// deterministic jitter in [0.5, 1.5) drawn from a per-worker Rng
  /// seeded by (plan seed, worker id) — every run of the same plan waits
  /// the same amounts.  base = 0 restores the immediate retry.  Purely
  /// wall-clock: results are bit-identical with any backoff settings.
  double retry_backoff_base = 0.02;
  double retry_backoff_cap = 1.0;
  /// Optional index slice: execute only these plan indices (sorted,
  /// unique, all < plan.targets.size()).  The fabric gives each worker
  /// process its shard this way.  Records land at their plan index as
  /// usual; completion (`interrupted`) is judged against the slice.
  /// Null = every index.
  const std::vector<u32>* indices = nullptr;
  /// Wall-clock budget for a single injection; exceeding it interrupts
  /// the machine and quarantines the index.  0 disables the watchdog.
  double stall_seconds = 0.0;
  /// Max simulation-loop steps per Machine::run call (0 = unlimited);
  /// catches livelocks that stop advancing the cycle counter.
  u64 step_budget = 0;
  /// Cooperative cancel (e.g. set by a SIGINT handler): workers stop
  /// claiming indices, the journal stays flushed, run() returns the
  /// partial result with `interrupted` set.  May be null.
  const std::atomic<bool>* cancel = nullptr;
  /// Test/chaos hook invoked before every injection attempt; a throw is
  /// treated exactly like a harness fault inside that attempt.
  std::function<void(u32 index, u32 attempt)> harness_fault_hook;
  /// Observational per-record hook, invoked once per completed index
  /// (after the record is merged and journaled), serialized with the
  /// progress callback.  The campaign daemon uses it to stream a live
  /// outcome tally; resumed (journal-recovered) records do NOT pass
  /// through it — read them from the journal's recovered() instead.
  std::function<void(u32 index, const InjectionRecord& record)>
      record_observer;
  /// Error-propagation tracing: each worker rig gets a TaintEngine wired
  /// to its machine, and every record carries a PropagationSummary.
  /// Strictly observational — the result fingerprint is bit-identical
  /// with tracing on or off (the parity tests and
  /// bench/propagation_overhead enforce it).
  bool trace = false;
  /// Test knob: install a disabled ErrnoInjector on every rig of a
  /// physical campaign.  A hook that declines every call must leave the
  /// result fingerprint bit-identical to a hook-free run (the seam parity
  /// tests enforce it).  Ignored for kErrno campaigns (which always
  /// install their injector).
  bool errno_hook_probe = false;
};

class CampaignEngine {
 public:
  /// `jobs` worker threads; 0 = hardware concurrency, 1 (default) = serial
  /// on the calling thread.
  explicit CampaignEngine(u32 jobs = 1) : jobs_(jobs) {}

  /// Resolve a jobs knob: 0 -> hardware concurrency (min 1), else as-is.
  static u32 resolve_jobs(u32 requested);

  u32 jobs() const { return resolve_jobs(jobs_); }

  /// Execute the plan under `control` and merge worker results
  /// deterministically.  `progress` (if set) is serialized and reports
  /// monotone completion counts, not execution order; a throwing progress
  /// callback aborts the campaign cleanly (workers stop at the next
  /// injection boundary, the journal keeps every completed record) and
  /// the exception is rethrown to the caller after the pool drains.
  CampaignResult run(const CampaignPlan& plan, const ProgressFn& progress = {},
                     const RunControl& control = {}) const;

 private:
  u32 jobs_;
};

}  // namespace kfi::inject
