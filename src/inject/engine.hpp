// CampaignEngine: executes a frozen CampaignPlan across worker Machines.
//
// Each worker owns a private replica of the experiment apparatus — a
// Machine booted from the plan's shared immutable kernel image, a
// Workload, a UdpChannel, a CrashCollector, and an ExperimentRunner — and
// claims injection indices from a shared counter.  Because every
// injection experiment starts from the boot snapshot and draws all of its
// randomness from the plan's pre-drawn per-run seed, a record depends
// only on (plan, index): the merged CampaignResult is bit-identical to a
// serial run of the same plan, which the parity tests assert.  The merge
// is deterministic by construction: records land at their target index,
// and the reboot / datagram / drop / cycle counters are order-independent
// per-worker sums.
#pragma once

#include <functional>
#include <vector>

#include "inject/plan.hpp"

namespace kfi::inject {

/// Observability for the run itself (wall-clock, not simulated, so it is
/// deliberately excluded from the determinism contract).
struct CampaignThroughput {
  u32 jobs = 0;  // worker threads used; 0 = result predates the engine
  double plan_seconds = 0.0;  // codegen + calibration + profile + targets
  double run_seconds = 0.0;   // injection execution (all workers)
  double wall_seconds = 0.0;  // plan + run
  /// Simulated cycles consumed by all injection runs (summed per worker).
  u64 simulated_cycles = 0;

  double injections_per_second(size_t injections) const {
    return run_seconds > 0.0
               ? static_cast<double>(injections) / run_seconds
               : 0.0;
  }
  double simulated_cycles_per_second() const {
    return run_seconds > 0.0
               ? static_cast<double>(simulated_cycles) / run_seconds
               : 0.0;
  }
};

struct CampaignResult {
  CampaignSpec spec;
  std::vector<InjectionRecord> records;
  u64 nominal_cycles = 0;  // calibrated fault-free run length
  double kernel_fraction = 0.15;
  std::vector<workload::HotFunction> hot_functions;
  u64 reboots = 0;
  u64 datagrams_sent = 0;
  u64 datagrams_dropped = 0;
  CampaignThroughput throughput;
};

using ProgressFn = std::function<void(u32 done, u32 total)>;

class CampaignEngine {
 public:
  /// `jobs` worker threads; 0 = hardware concurrency, 1 (default) = serial
  /// on the calling thread.
  explicit CampaignEngine(u32 jobs = 1) : jobs_(jobs) {}

  /// Resolve a jobs knob: 0 -> hardware concurrency (min 1), else as-is.
  static u32 resolve_jobs(u32 requested);

  u32 jobs() const { return resolve_jobs(jobs_); }

  /// Execute the plan and merge worker results deterministically.
  /// `progress` (if set) is serialized and reports monotone completion
  /// counts, not execution order.
  CampaignResult run(const CampaignPlan& plan,
                     const ProgressFn& progress = {}) const;

 private:
  u32 jobs_;
};

}  // namespace kfi::inject
