// InjectionJournal: append-only on-disk log of completed injections.
//
// The paper's NFTAPE control host survived its own 18,000-injection
// campaigns because collection was restart-safe: every finished experiment
// was durable before the next one started.  This is our equivalent.  Each
// completed InjectionRecord is serialized and flushed as it finishes,
// together with the per-injection counter deltas (reboots, datagrams,
// simulated cycles) that the campaign merge sums.  A killed campaign can
// then be resumed: the engine skips journaled indices and seeds its merge
// totals from the journaled deltas, so the resumed CampaignResult is
// bit-identical to an uninterrupted run (inject::result_fingerprint is the
// arbiter; the kill/resume parity tests enforce it).
//
// File format (all integers big-endian, matching the datagram idiom):
//   header:  magic "KFIJ" | version u32 | plan_fingerprint u64
//            | [v3+: fault_model_fingerprint u64] | total u32
//   entry:   magic "KFIE" | index u32 | payload_len u32 | payload bytes
//            | fnv1a64(payload) u64
// The payload is the serialized JournalEntry body.  A torn tail entry
// (process killed mid-write) fails the length or checksum test; resume
// truncates the file back to the last intact entry and the lost index is
// simply re-executed.
//
// Versioning: v1 entries end at the counter deltas; v2 appends the
// error-propagation block (PropagationSummary); v3 stamps the campaign's
// fault-model fingerprint into the header and serializes the target as
// its FaultSite list instead of the old flat per-kind fields; v4
// (current) additionally stamps the errno-model fingerprint into the
// header and appends the cascade block (CascadeSummary) to each entry.
// resume() accepts all four and keeps appending in the file's own
// version, so a v1/v2/v3 journal stays a uniform file end to end (its
// single-site targets round-trip losslessly through the flat legacy
// layout); v1 records simply resume with propagation_valid = false, and
// pre-v4 records with cascade_valid = false.  Multi-site targets only
// ever appear in v3+ files: pre-v3 journals can only have been written
// for legacy (single-bit single-shot) plans, whose plan fingerprint any
// other model fails to match.  Errno targets (kind = kErrno) only ever
// appear in v4 files — the v3 reader rejects the kind byte — and a v4
// journal written for a different errno model is refused on resume via
// the header fingerprint, exactly like a foreign fault model.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "inject/record.hpp"

namespace kfi::inject {

struct CampaignPlan;

/// On-disk journal format versions this build reads.  New journals are
/// always written at kJournalVersion.
constexpr u32 kJournalVersionV1 = 1;  // pre-propagation entries
constexpr u32 kJournalVersionV2 = 2;  // + PropagationSummary block
constexpr u32 kJournalVersionV3 = 3;  // + fault-model header, site lists
constexpr u32 kJournalVersion = 4;    // + errno-model header, cascade block

/// Typed failure for journal open/resume problems (missing file, foreign
/// campaign fingerprint, malformed header).
class JournalError : public Error {
 public:
  explicit JournalError(const std::string& what) : Error(what) {}
};

/// One durable unit: a completed record plus the counter deltas its
/// execution contributed to the campaign merge.
struct JournalEntry {
  u32 index = 0;
  InjectionRecord record;
  u64 reboots = 0;
  u64 datagrams_sent = 0;
  u64 datagrams_dropped = 0;
  u64 simulated_cycles = 0;
};

class InjectionJournal {
 public:
  /// Start a fresh journal at `path` (truncates any existing file) for
  /// the given plan.
  static InjectionJournal create(const std::string& path,
                                 const CampaignPlan& plan);

  /// Open an existing journal for resume: validates the header against
  /// the plan's fingerprint, loads every intact entry, and truncates away
  /// a torn tail so subsequent appends start at a clean boundary.
  /// Throws JournalError if the file is missing, malformed, or was
  /// written for a different plan.
  static InjectionJournal resume(const std::string& path,
                                 const CampaignPlan& plan);

  InjectionJournal(InjectionJournal&&) = default;
  InjectionJournal& operator=(InjectionJournal&&) = default;

  /// Serialize, append, and flush one entry.  Thread-safe.  Throws
  /// JournalError if the filesystem rejects the write (disk full, etc.).
  void append(const JournalEntry& entry);

  /// Entries recovered by resume() (empty for a created journal).
  const std::vector<JournalEntry>& recovered() const { return recovered_; }

  /// The file's format version: kJournalVersion for created journals, the
  /// on-disk header's version for resumed ones (appends match it).
  u32 version() const { return version_; }

  /// Appends flushed to disk by this process.  Thread-safe.
  u64 flushes() const;

  const std::string& path() const { return path_; }

 private:
  InjectionJournal(std::string path, u32 version,
                   std::vector<JournalEntry> recovered);

  std::string path_;
  u32 version_ = kJournalVersion;
  std::vector<JournalEntry> recovered_;
  std::unique_ptr<std::mutex> mutex_;  // heap so the journal stays movable
  u64 flushes_ = 0;
};

/// Record (de)serialization, exposed for round-trip tests.  deserialize
/// advances `pos` and returns nullopt (without reading out of bounds) on
/// truncated or malformed input.  `version` selects the entry layout (v1
/// has no propagation block).
void serialize_journal_entry(std::vector<u8>& out, const JournalEntry& entry,
                             u32 version = kJournalVersion);
std::optional<JournalEntry> deserialize_journal_entry(
    const std::vector<u8>& in, size_t& pos, u32 version = kJournalVersion);

}  // namespace kfi::inject
