// InjectionJournal: append-only on-disk log of completed injections.
//
// The paper's NFTAPE control host survived its own 18,000-injection
// campaigns because collection was restart-safe: every finished experiment
// was durable before the next one started.  This is our equivalent.  Each
// completed InjectionRecord is serialized and made durable as it finishes
// (fdatasync per append under the default FlushPolicy::kFsync),
// together with the per-injection counter deltas (reboots, datagrams,
// simulated cycles) that the campaign merge sums.  A killed campaign can
// then be resumed: the engine skips journaled indices and seeds its merge
// totals from the journaled deltas, so the resumed CampaignResult is
// bit-identical to an uninterrupted run (inject::result_fingerprint is the
// arbiter; the kill/resume parity tests enforce it).
//
// File format (all integers big-endian, matching the datagram idiom):
//   header:  magic "KFIJ" | version u32 | plan_fingerprint u64
//            | [v3+: fault_model_fingerprint u64] | total u32
//   entry:   magic "KFIE" | index u32 | payload_len u32 | payload bytes
//            | fnv1a64(payload) u64
// The payload is the serialized JournalEntry body.  A torn tail entry
// (process killed mid-write) fails the length or checksum test; resume
// truncates the file back to the last intact entry and the lost index is
// simply re-executed.
//
// Versioning: v1 entries end at the counter deltas; v2 appends the
// error-propagation block (PropagationSummary); v3 stamps the campaign's
// fault-model fingerprint into the header and serializes the target as
// its FaultSite list instead of the old flat per-kind fields; v4
// (current) additionally stamps the errno-model fingerprint into the
// header and appends the cascade block (CascadeSummary) to each entry.
// resume() accepts all four and keeps appending in the file's own
// version, so a v1/v2/v3 journal stays a uniform file end to end (its
// single-site targets round-trip losslessly through the flat legacy
// layout); v1 records simply resume with propagation_valid = false, and
// pre-v4 records with cascade_valid = false.  Multi-site targets only
// ever appear in v3+ files: pre-v3 journals can only have been written
// for legacy (single-bit single-shot) plans, whose plan fingerprint any
// other model fails to match.  Errno targets (kind = kErrno) only ever
// appear in v4 files — the v3 reader rejects the kind byte — and a v4
// journal written for a different errno model is refused on resume via
// the header fingerprint, exactly like a foreign fault model.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "inject/record.hpp"

namespace kfi::inject {

struct CampaignPlan;

/// On-disk journal format versions this build reads.  New journals are
/// always written at kJournalVersion.
constexpr u32 kJournalVersionV1 = 1;  // pre-propagation entries
constexpr u32 kJournalVersionV2 = 2;  // + PropagationSummary block
constexpr u32 kJournalVersionV3 = 3;  // + fault-model header, site lists
constexpr u32 kJournalVersion = 4;    // + errno-model header, cascade block

/// Durability of each append.  kFsync (the default) pushes every frame
/// through fdatasync so a machine crash — not just a process crash —
/// cannot lose an acknowledged injection; kFlush only flushes the
/// userspace buffer to the kernel (the pre-fsync behavior), trading
/// durability for append latency on slow disks.  Either way a torn tail
/// frame is detected and truncated on resume.
enum class FlushPolicy : u8 { kFsync = 0, kFlush = 1 };

/// Typed failure for journal open/resume problems (missing file, foreign
/// campaign fingerprint, malformed header).
class JournalError : public Error {
 public:
  explicit JournalError(const std::string& what) : Error(what) {}
};

/// One durable unit: a completed record plus the counter deltas its
/// execution contributed to the campaign merge.
struct JournalEntry {
  u32 index = 0;
  InjectionRecord record;
  u64 reboots = 0;
  u64 datagrams_sent = 0;
  u64 datagrams_dropped = 0;
  u64 simulated_cycles = 0;
};

/// Everything read_journal_file() can recover from a journal on disk
/// without a plan in hand: the header fields and every intact entry.
/// The fabric's splice tool consumes this directly (shards are matched
/// by comparing header fingerprints against each other, not against a
/// rebuilt plan); InjectionJournal::resume() layers the plan validation
/// on top.
struct JournalFileData {
  u32 version = kJournalVersion;
  u64 plan_fingerprint = 0;
  u64 fault_model_fingerprint = 0;  // 0 before v3
  u64 errno_model_fingerprint = 0;  // 0 before v4
  u32 total = 0;                    // plan target count
  std::vector<JournalEntry> entries;
  /// Byte offset one past the last intact frame; anything after it is a
  /// torn tail (process killed mid-write) the caller may truncate away.
  size_t intact_end = 0;
  size_t file_size = 0;
};

/// Parse a journal file: validated header plus every intact entry, torn
/// tail detected but NOT truncated (read-only).  Throws JournalError if
/// the file is missing or the header is malformed.
JournalFileData read_journal_file(const std::string& path);

class InjectionJournal {
 public:
  /// Start a fresh journal at `path` (truncates any existing file) for
  /// the given plan.
  static InjectionJournal create(const std::string& path,
                                 const CampaignPlan& plan,
                                 FlushPolicy policy = FlushPolicy::kFsync);

  /// Open an existing journal for resume: validates the header against
  /// the plan's fingerprint, loads every intact entry, and truncates away
  /// a torn tail so subsequent appends start at a clean boundary.
  /// Throws JournalError if the file is missing, malformed, or was
  /// written for a different plan.
  static InjectionJournal resume(const std::string& path,
                                 const CampaignPlan& plan,
                                 FlushPolicy policy = FlushPolicy::kFsync);

  InjectionJournal(InjectionJournal&& other) noexcept;
  InjectionJournal& operator=(InjectionJournal&& other) noexcept;
  ~InjectionJournal();

  /// Serialize, append, and make one entry durable per the flush policy.
  /// Thread-safe.  Throws JournalError if the filesystem rejects the
  /// write (disk full, etc.).
  void append(const JournalEntry& entry);

  /// Entries recovered by resume() (empty for a created journal).
  const std::vector<JournalEntry>& recovered() const { return recovered_; }

  /// The file's format version: kJournalVersion for created journals, the
  /// on-disk header's version for resumed ones (appends match it).
  u32 version() const { return version_; }

  FlushPolicy flush_policy() const { return policy_; }

  /// Appends flushed to disk by this process.  Thread-safe.
  u64 flushes() const;

  const std::string& path() const { return path_; }

 private:
  InjectionJournal(std::string path, u32 version, int fd, FlushPolicy policy,
                   std::vector<JournalEntry> recovered);

  std::string path_;
  u32 version_ = kJournalVersion;
  int fd_ = -1;  // held open for the journal's lifetime (O_APPEND)
  FlushPolicy policy_ = FlushPolicy::kFsync;
  std::vector<JournalEntry> recovered_;
  std::unique_ptr<std::mutex> mutex_;  // heap so the journal stays movable
  u64 flushes_ = 0;
};

/// Parse a flush-policy knob ("fsync" or "flush"); nullopt otherwise.
std::optional<FlushPolicy> parse_flush_policy(const std::string& name);

/// Record (de)serialization, exposed for round-trip tests.  deserialize
/// advances `pos` and returns nullopt (without reading out of bounds) on
/// truncated or malformed input.  `version` selects the entry layout (v1
/// has no propagation block).
void serialize_journal_entry(std::vector<u8>& out, const JournalEntry& entry,
                             u32 version = kJournalVersion);
std::optional<JournalEntry> deserialize_journal_entry(
    const std::vector<u8>& in, size_t& pos, u32 version = kJournalVersion);

}  // namespace kfi::inject
