#include "inject/campaign.hpp"

#include "inject/experiment.hpp"

namespace kfi::inject {

CampaignResult run_campaign(const CampaignSpec& spec, const ProgressFn& progress,
                            u32 jobs) {
  const CampaignPlan plan = build_campaign_plan(spec);
  return CampaignEngine(jobs).run(plan, progress);
}

InjectionRecord run_single_injection(kernel::Machine& machine,
                                     workload::Workload& wl,
                                     const InjectionTarget& target, u64 seed) {
  const u64 nominal = calibrate_workload(machine, wl, seed);
  const double kernel_fraction = calibrated_kernel_fraction(machine, nominal);
  UdpChannel channel(0.0, seed);
  CrashCollector collector;
  ExperimentRunner runner(machine, wl, channel, collector, nominal,
                          static_cast<u64>(3.0 * static_cast<double>(nominal)) +
                              2 * machine.options().timer_period,
                          kernel_fraction);
  return runner.run_one(target, seed, 0);
}

}  // namespace kfi::inject
