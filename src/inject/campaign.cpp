#include "inject/campaign.hpp"

#include "common/error.hpp"

namespace kfi::inject {

namespace {

/// Calibrate the fault-free run: total cycles and output validity.
u64 calibrate(kernel::Machine& machine, workload::Workload& wl, u64 seed) {
  machine.restore(machine.boot_snapshot());
  wl.reset(seed);
  const u64 start = machine.cpu().cycles();
  while (auto req = wl.next(machine)) {
    const kernel::Event ev =
        machine.syscall(req->nr, req->a0, req->a1, req->a2);
    KFI_CHECK(ev.kind == kernel::EventKind::kSyscallDone,
              "fault-free calibration run crashed");
    KFI_CHECK(wl.check(machine, ev.ret),
              "fault-free calibration run failed validation");
  }
  KFI_CHECK(wl.final_check(machine),
            "fault-free calibration run failed final validation");
  return machine.cpu().cycles() - start;
}

}  // namespace

CampaignResult run_campaign(const CampaignSpec& spec,
                            const ProgressFn& progress) {
  CampaignResult result;
  result.spec = spec;

  kernel::MachineOptions mopts = spec.machine;
  mopts.seed ^= spec.seed;
  kernel::Machine machine(spec.arch, mopts);
  auto wl = workload::make_suite(spec.workload_scale);

  result.nominal_cycles = calibrate(machine, *wl, spec.seed);
  const double kernel_fraction =
      result.nominal_cycles == 0
          ? 0.15
          : 1.0 - static_cast<double>(machine.user_cycles()) /
                      static_cast<double>(result.nominal_cycles);
  result.hot_functions =
      workload::profile_hot_functions(machine, *wl, 0.95, spec.seed);

  TargetGenerator generator(machine.image(), result.hot_functions,
                            machine.cpu().sysregs().count(),
                            spec.seed * 0x9E3779B9u + 17);
  const std::vector<InjectionTarget> targets =
      generator.generate(spec.kind, spec.injections);

  UdpChannel channel(spec.channel_loss, spec.seed ^ 0xC0FFEE);
  CrashCollector collector;
  const u64 budget = static_cast<u64>(spec.budget_factor *
                                      static_cast<double>(result.nominal_cycles)) +
                     2 * mopts.timer_period;
  ExperimentRunner runner(machine, *wl, channel, collector,
                          result.nominal_cycles, budget, kernel_fraction);

  Rng seeds(spec.seed ^ 0xDADA);
  result.records.reserve(targets.size());
  for (u32 i = 0; i < targets.size(); ++i) {
    result.records.push_back(runner.run_one(targets[i], seeds.next_u64(), i));
    if (progress) progress(i + 1, static_cast<u32>(targets.size()));
  }
  result.reboots = runner.watchdog().reboots();
  result.datagrams_sent = channel.sent();
  result.datagrams_dropped = channel.dropped();
  return result;
}

InjectionRecord run_single_injection(kernel::Machine& machine,
                                     workload::Workload& wl,
                                     const InjectionTarget& target, u64 seed) {
  const u64 nominal = calibrate(machine, wl, seed);
  UdpChannel channel(0.0, seed);
  CrashCollector collector;
  ExperimentRunner runner(machine, wl, channel, collector, nominal,
                          static_cast<u64>(3.0 * static_cast<double>(nominal)) +
                              2 * machine.options().timer_period);
  return runner.run_one(target, seed, 0);
}

}  // namespace kfi::inject
