#include "inject/campaign.hpp"

#include "inject/experiment.hpp"

namespace kfi::inject {

CampaignResult run_campaign(const CampaignSpec& spec, const ProgressFn& progress,
                            u32 jobs, bool trace) {
  const CampaignPlan plan = build_campaign_plan(spec);
  RunControl control;
  control.trace = trace;
  return CampaignEngine(jobs).run(plan, progress, control);
}

InjectionRecord run_single_injection(kernel::Machine& machine,
                                     workload::Workload& wl,
                                     const InjectionTarget& target, u64 seed,
                                     trace::TaintEngine* taint,
                                     const FaultModel& model) {
  const u64 nominal = calibrate_workload(machine, wl, seed);
  const double kernel_fraction = calibrated_kernel_fraction(machine, nominal);
  UdpChannel channel(0.0, seed);
  CrashCollector collector;
  ExperimentRunner runner(machine, wl, channel, collector, nominal,
                          static_cast<u64>(3.0 * static_cast<double>(nominal)) +
                              2 * machine.options().timer_period,
                          kernel_fraction);
  runner.set_fault_model(model);
  if (taint != nullptr) {
    machine.set_trace_sink(taint);
    runner.set_taint_engine(taint);
  }
  InjectionRecord record = runner.run_one(target, seed, 0);
  if (taint != nullptr) machine.set_trace_sink(nullptr);
  return record;
}

std::vector<InjectionRecord> completed_records(const CampaignResult& result) {
  if (result.done_mask.size() != result.records.size()) {
    return result.records;  // pre-supervisor result: everything counts
  }
  std::vector<InjectionRecord> out;
  out.reserve(result.records.size());
  for (size_t i = 0; i < result.records.size(); ++i) {
    if (result.done_mask[i]) out.push_back(result.records[i]);
  }
  return out;
}

u64 result_fingerprint(const CampaignResult& result) {
  u64 h = 0xcbf29ce484222325ull;
  auto mix = [&h](u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  mix(result.nominal_cycles);
  mix(result.reboots);
  mix(result.datagrams_sent);
  mix(result.datagrams_dropped);
  for (const auto& r : result.records) {
    mix(static_cast<u64>(r.outcome));
    mix(r.activated ? 1 : 0);
    mix(r.activation_cycle);
    mix(r.latency_base_cycle);
    mix(r.cycles_to_crash);
    mix(r.crashed ? 1 : 0);
    mix(r.crash_report_received ? 1 : 0);
    mix(static_cast<u64>(r.crash.cause));
    mix(r.crash.pc);
    mix(r.syscalls_completed);
    if (r.cascade_valid) {
      // The cascade digest is part of an errno campaign's result (unlike
      // the observational propagation block).  Physical campaigns never
      // set cascade_valid, so their fingerprints are byte-identical to
      // pre-errno builds.
      mix(0xCA5CADEull);  // domain separator
      mix(r.cascade.forced);
      mix(r.cascade.first_forced_op);
      mix(r.cascade.first_forced_syscall);
      mix(r.cascade.natural_ret);
      mix(r.cascade.forced_ret);
      mix(r.cascade.deviating_ops);
      mix(r.cascade.cascade_length);
      mix(static_cast<u64>(r.cascade.containment));
      mix(r.cascade.checked_at_site ? 1 : 0);
      mix(r.cascade.state_deviation ? 1 : 0);
    }
  }
  return h;
}

}  // namespace kfi::inject
