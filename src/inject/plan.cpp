#include "inject/plan.hpp"

#include <chrono>
#include <cstring>

#include "common/error.hpp"
#include "inject/target_gen.hpp"

namespace kfi::inject {

u64 calibrate_workload(kernel::Machine& machine, workload::Workload& wl,
                       u64 seed) {
  machine.restore(machine.boot_snapshot());
  wl.reset(seed);
  const u64 start = machine.cpu().cycles();
  while (auto req = wl.next(machine)) {
    const kernel::Event ev =
        machine.syscall(req->nr, req->a0, req->a1, req->a2);
    KFI_CHECK(ev.kind == kernel::EventKind::kSyscallDone,
              "fault-free calibration run crashed");
    KFI_CHECK(wl.check(machine, ev.ret),
              "fault-free calibration run failed validation");
  }
  KFI_CHECK(wl.final_check(machine),
            "fault-free calibration run failed final validation");
  return machine.cpu().cycles() - start;
}

double calibrated_kernel_fraction(const kernel::Machine& machine,
                                  u64 nominal_cycles) {
  if (nominal_cycles == 0) return 0.15;
  return 1.0 - static_cast<double>(machine.user_cycles()) /
                   static_cast<double>(nominal_cycles);
}

kernel::MachineOptions campaign_machine_options(const CampaignSpec& spec) {
  kernel::MachineOptions mopts = spec.machine;
  mopts.seed ^= spec.seed;
  return mopts;
}

namespace {

/// Calibration-time hook that counts eligible syscall invocations without
/// ever forcing a result — the errno plan's draw-window measurement.
class EligibleCounter final : public kernel::SyscallResultHook {
 public:
  explicit EligibleCounter(const errnoinj::ErrnoModel& model)
      : model_(model) {}
  bool on_syscall_result(kernel::Syscall nr, u32* ret) override {
    (void)ret;
    if (model_.eligible(nr)) ++count_;
    return false;
  }
  u64 count() const { return count_; }

 private:
  const errnoinj::ErrnoModel& model_;
  u64 count_ = 0;
};

}  // namespace

CampaignPlan build_campaign_plan(const CampaignSpec& spec) {
  const auto t0 = std::chrono::steady_clock::now();

  spec.model.validate(spec.kind);
  spec.errno_model.validate();
  if (spec.kind == CampaignKind::kErrno && !spec.errno_model.enabled()) {
    throw errnoinj::ErrnoModelError(
        "errno model: an errno campaign needs eligible syscalls "
        "(--errno-syscalls)");
  }
  if (spec.kind != CampaignKind::kErrno && spec.errno_model.enabled()) {
    throw errnoinj::ErrnoModelError(
        "errno model: errno knobs set on a physical campaign (--kind " +
        campaign_kind_name(spec.kind) + ")");
  }

  CampaignPlan plan;
  plan.spec = spec;
  plan.image =
      kernel::build_shared_kernel_image(spec.arch, spec.machine.spinlock_debug);

  const kernel::MachineOptions mopts = campaign_machine_options(spec);
  kernel::Machine machine(spec.arch, mopts, plan.image);
  auto wl = workload::make_suite(spec.workload_scale);

  // The counting hook declines every call, so installing it during the
  // errno-plan calibration leaves nominal_cycles bit-identical to an
  // uninstrumented calibration (the hook-parity tests pin this).
  EligibleCounter counter(spec.errno_model);
  if (spec.kind == CampaignKind::kErrno) {
    machine.set_syscall_result_hook(&counter);
  }
  plan.nominal_cycles = calibrate_workload(machine, *wl, spec.seed);
  machine.set_syscall_result_hook(nullptr);
  plan.eligible_invocations = counter.count();
  plan.kernel_fraction =
      calibrated_kernel_fraction(machine, plan.nominal_cycles);
  plan.hot_functions =
      workload::profile_hot_functions(machine, *wl, 0.95, spec.seed);

  TargetGenerator generator(*plan.image, plan.hot_functions,
                            machine.cpu().sysregs().count(),
                            spec.seed * 0x9E3779B9u + 17);
  plan.targets =
      spec.kind == CampaignKind::kErrno
          ? generator.generate_errno(spec.errno_model, spec.injections,
                                     plan.eligible_invocations)
          : generator.generate(spec.kind, spec.injections, spec.model);

  plan.budget_cycles = static_cast<u64>(spec.budget_factor *
                                        static_cast<double>(plan.nominal_cycles)) +
                       2 * mopts.timer_period;

  Rng seeds(spec.seed ^ 0xDADA);
  plan.run_seeds.reserve(plan.targets.size());
  for (size_t i = 0; i < plan.targets.size(); ++i) {
    plan.run_seeds.push_back(seeds.next_u64());
  }

  plan.plan_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return plan;
}

u64 plan_fingerprint(const CampaignPlan& plan) {
  u64 h = 0xcbf29ce484222325ull;
  auto mix = [&h](u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  auto mix_double = [&mix](double d) {
    u64 bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  auto mix_string = [&mix](const std::string& s) {
    mix(s.size());
    for (const char c : s) mix(static_cast<u8>(c));
  };

  const CampaignSpec& spec = plan.spec;
  mix(static_cast<u64>(spec.arch));
  mix(static_cast<u64>(spec.kind));
  mix(spec.injections);
  mix(spec.seed);
  mix(spec.workload_scale);
  mix_double(spec.channel_loss);
  mix_double(spec.budget_factor);
  mix(spec.machine.timer_period);
  mix(spec.machine.user_cycles_mean);
  mix(spec.machine.g4_stack_wrapper ? 1 : 0);
  mix(spec.machine.p4_stack_limit_check ? 1 : 0);
  mix(spec.machine.spinlock_debug ? 1 : 0);
  mix(spec.machine.seed);

  // The legacy (single-bit single-shot) model mixes nothing of itself and
  // hashes each target through its flat legacy view, reproducing the
  // pre-FaultModel byte stream exactly — old journals keep resuming.
  // Any other model mixes its knobs plus the full site lists.
  const bool legacy = plan.spec.model.is_legacy() &&
                      spec.kind != CampaignKind::kErrno;
  if (!legacy && !plan.spec.model.is_legacy()) {
    mix(0xFA017ull);  // domain separator: model block follows
    mix(static_cast<u64>(spec.model.shape));
    mix(static_cast<u64>(spec.model.trigger));
    mix(spec.model.bits);
    mix(spec.model.burst_span);
    mix_double(spec.model.rate);
    mix(static_cast<u64>(spec.model.opclass));
  }
  if (spec.kind == CampaignKind::kErrno) {
    mix(0xE4401ull);  // domain separator: errno-model block follows
    mix(errnoinj::errno_model_fingerprint(spec.errno_model));
    mix(plan.eligible_invocations);
  }

  mix(plan.nominal_cycles);
  mix_double(plan.kernel_fraction);
  mix(plan.budget_cycles);
  mix(plan.targets.size());
  for (const InjectionTarget& t : plan.targets) {
    if (legacy) {
      const LegacyTargetFields f = legacy_target_fields(t);
      mix(static_cast<u64>(f.kind));
      mix(f.code_entry);
      mix(f.code_addr);
      mix(f.code_insn_len);
      mix(f.code_bit);
      mix_string(f.function);
      mix(f.data_addr);
      mix(f.data_bit);
      mix(f.stack_task);
      mix_double(f.stack_depth_frac);
      mix(f.stack_bit);
      mix(f.reg_index);
      mix(f.reg_bit);
      mix_string(f.reg_name);
      mix_double(f.inject_at_frac);
    } else {
      mix(static_cast<u64>(t.kind));
      mix(t.code_entry);
      mix_string(t.function);
      mix(static_cast<u64>(t.opclass));
      mix_string(t.reg_name);
      mix_double(t.inject_at_frac);
      mix(t.sites.size());
      for (const FaultSite& s : t.sites) {
        mix(s.addr);
        mix(s.bit);
        mix(s.insn_len);
        mix(s.task);
        mix_double(s.depth_frac);
        mix(s.reg_index);
        mix_double(s.at_frac);
      }
    }
  }
  for (const u64 s : plan.run_seeds) mix(s);
  return h;
}

}  // namespace kfi::inject
