#include "inject/target_gen.hpp"

#include "cisca/decode.hpp"
#include "common/error.hpp"
#include "kernel/abi.hpp"
#include "kir/backend.hpp"

namespace kfi::inject {

TargetGenerator::TargetGenerator(const kir::Image& image,
                                 std::vector<workload::HotFunction> hot,
                                 u32 sysreg_count, u64 seed)
    : image_(image),
      hot_(std::move(hot)),
      sysreg_count_(sysreg_count),
      rng_(seed) {
  KFI_CHECK(!hot_.empty(), "target generator needs hot functions");
  u64 acc = 0;
  for (const auto& fn : hot_) {
    acc += fn.entries;
    hot_weights_.push_back(acc);
  }
  offsets_cache_.resize(hot_.size());
  // The data campaign samples a FIXED window of the kernel data section
  // on both machines (like the paper's equal-sized campaigns over each
  // kernel's data section).  Bulk payload arrays live beyond the window;
  // slack inside it is simply data that is never used (not activated).
  data_words_total_ = kir::kBulkDataOffset / 4;
}

const std::vector<u32>& TargetGenerator::insn_offsets(
    const workload::HotFunction& fn) {
  // Find the cache slot for this hot function.
  size_t slot = 0;
  for (; slot < hot_.size(); ++slot) {
    if (hot_[slot].addr == fn.addr) break;
  }
  KFI_CHECK(slot < hot_.size(), "unknown hot function");
  std::vector<u32>& cached = offsets_cache_[slot];
  if (!cached.empty()) return cached;

  if (image_.arch == isa::Arch::kRiscf) {
    for (u32 off = 0; off + 4 <= fn.size; off += 4) cached.push_back(off);
    return cached;
  }
  // cisca: decode walk from the function entry.
  u32 off = 0;
  while (off < fn.size) {
    cached.push_back(off);
    cisca::FetchWindow window;
    window.pc = fn.addr + off;
    const u32 code_off = fn.addr - image_.code_base + off;
    for (u32 k = 0; k < cisca::kMaxInsnBytes && code_off + k < image_.code.size();
         ++k) {
      window.bytes[k] = image_.code[code_off + k];
      window.valid = static_cast<u8>(k + 1);
    }
    const cisca::DecodeResult dec = cisca::decode(window);
    off += dec.insn.length;
  }
  return cached;
}

InjectionTarget TargetGenerator::next_code() {
  InjectionTarget t;
  t.kind = CampaignKind::kCode;
  // Weighted pick by profiled usage: hot functions get proportionally
  // more injections, mirroring the paper's profiling-driven selection.
  const u64 pick = rng_.below(hot_weights_.back());
  size_t idx = 0;
  while (hot_weights_[idx] <= pick) ++idx;
  const workload::HotFunction& fn = hot_[idx];
  t.function = fn.name;

  t.code_entry = fn.addr;
  const auto& offsets = insn_offsets(fn);
  const u32 off = offsets[rng_.below(offsets.size())];
  t.code_addr = fn.addr + off;
  if (image_.arch == isa::Arch::kRiscf) {
    t.code_insn_len = 4;
    t.code_bit = rng_.bit_index(32);
  } else {
    // Length of the chosen instruction bounds the bit choice.
    const u32 next_off = [&] {
      for (size_t i = 0; i + 1 < offsets.size(); ++i) {
        if (offsets[i] == off) return offsets[i + 1];
      }
      return fn.size;
    }();
    t.code_insn_len = std::max(1u, next_off - off);
    t.code_bit = rng_.bit_index(t.code_insn_len * 8);
  }
  return t;
}

InjectionTarget TargetGenerator::next_stack() {
  InjectionTarget t;
  t.kind = CampaignKind::kStack;
  t.stack_task = static_cast<u32>(rng_.below(kernel::kNumTasks));
  t.stack_depth_frac = rng_.next_double();
  t.stack_bit = rng_.bit_index(32);
  t.inject_at_frac = 0.1 + 0.7 * rng_.next_double();
  return t;
}

InjectionTarget TargetGenerator::next_data() {
  InjectionTarget t;
  t.kind = CampaignKind::kData;
  t.data_addr =
      image_.data_base + 4 * static_cast<u32>(rng_.below(data_words_total_));
  t.data_bit = rng_.bit_index(32);
  return t;
}

InjectionTarget TargetGenerator::next_register() {
  InjectionTarget t;
  t.kind = CampaignKind::kRegister;
  t.reg_index = static_cast<u32>(rng_.below(sysreg_count_));
  t.reg_bit = rng_.bit_index(32);  // clamped to the register width on use
  t.inject_at_frac = 0.1 + 0.7 * rng_.next_double();
  return t;
}

InjectionTarget TargetGenerator::next(CampaignKind kind) {
  switch (kind) {
    case CampaignKind::kCode: return next_code();
    case CampaignKind::kStack: return next_stack();
    case CampaignKind::kData: return next_data();
    case CampaignKind::kRegister: return next_register();
  }
  KFI_CHECK(false, "bad campaign kind");
  return {};
}

std::vector<InjectionTarget> TargetGenerator::generate(CampaignKind kind,
                                                       u32 count) {
  std::vector<InjectionTarget> targets;
  targets.reserve(count);
  for (u32 i = 0; i < count; ++i) targets.push_back(next(kind));
  return targets;
}

}  // namespace kfi::inject
