#include "inject/target_gen.hpp"

#include <algorithm>

#include "cisca/decode.hpp"
#include "common/error.hpp"
#include "kernel/abi.hpp"
#include "kir/backend.hpp"
#include "riscf/insn.hpp"

namespace kfi::inject {

TargetGenerator::TargetGenerator(const kir::Image& image,
                                 std::vector<workload::HotFunction> hot,
                                 u32 sysreg_count, u64 seed)
    : image_(image),
      hot_(std::move(hot)),
      sysreg_count_(sysreg_count),
      rng_(seed) {
  KFI_CHECK(!hot_.empty(), "target generator needs hot functions");
  u64 acc = 0;
  for (const auto& fn : hot_) {
    acc += fn.entries;
    hot_weights_.push_back(acc);
  }
  points_cache_.resize(hot_.size());
  // The data campaign samples a FIXED window of the kernel data section
  // on both machines (like the paper's equal-sized campaigns over each
  // kernel's data section).  Bulk payload arrays live beyond the window;
  // slack inside it is simply data that is never used (not activated).
  data_words_total_ = kir::kBulkDataOffset / 4;
}

const std::vector<TargetGenerator::CodePoint>& TargetGenerator::code_points(
    const workload::HotFunction& fn) {
  // Find the cache slot for this hot function.
  size_t slot = 0;
  for (; slot < hot_.size(); ++slot) {
    if (hot_[slot].addr == fn.addr) break;
  }
  KFI_CHECK(slot < hot_.size(), "unknown hot function");
  std::vector<CodePoint>& cached = points_cache_[slot];
  if (!cached.empty()) return cached;

  if (image_.arch == isa::Arch::kRiscf) {
    for (u32 off = 0; off + 4 <= fn.size; off += 4) {
      CodePoint p;
      p.off = off;
      p.len = 4;
      const u32 code_off = fn.addr - image_.code_base + off;
      // Words are stored big-endian, matching the riscf CPU's fetch.
      const u32 word = (static_cast<u32>(image_.code[code_off]) << 24) |
                       (static_cast<u32>(image_.code[code_off + 1]) << 16) |
                       (static_cast<u32>(image_.code[code_off + 2]) << 8) |
                       static_cast<u32>(image_.code[code_off + 3]);
      p.cls = riscf::opclass(riscf::decode(word).op);
      cached.push_back(p);
    }
    return cached;
  }
  // cisca: decode walk from the function entry.
  u32 off = 0;
  while (off < fn.size) {
    cisca::FetchWindow window;
    window.pc = fn.addr + off;
    const u32 code_off = fn.addr - image_.code_base + off;
    for (u32 k = 0; k < cisca::kMaxInsnBytes && code_off + k < image_.code.size();
         ++k) {
      window.bytes[k] = image_.code[code_off + k];
      window.valid = static_cast<u8>(k + 1);
    }
    const cisca::DecodeResult dec = cisca::decode(window);
    CodePoint p;
    p.off = off;
    p.cls = cisca::opclass(dec.insn.op);
    cached.push_back(p);
    off += dec.insn.length;
  }
  // Lengths from consecutive boundaries: the final instruction is clipped
  // at the function end, exactly as the pre-FaultModel generator did.
  for (size_t i = 0; i < cached.size(); ++i) {
    const u32 next_off = i + 1 < cached.size() ? cached[i + 1].off : fn.size;
    cached[i].len = std::max(1u, next_off - cached[i].off);
  }
  return cached;
}

InjectionTarget TargetGenerator::next_code(const FaultModel& model) {
  const bool by_class = model.shape == FaultShape::kOpclass;
  // Weighted pick by profiled usage: hot functions get proportionally
  // more injections, mirroring the paper's profiling-driven selection.
  // Under opclass targeting, functions without a single instruction of
  // the class are re-drawn (bounded rejection sampling — deterministic,
  // since every draw comes from the plan RNG).
  for (u32 attempt = 0; attempt < 4096; ++attempt) {
    const u64 pick = rng_.below(hot_weights_.back());
    size_t idx = 0;
    while (hot_weights_[idx] <= pick) ++idx;
    const workload::HotFunction& fn = hot_[idx];
    const auto& points = code_points(fn);

    const CodePoint* point = nullptr;
    if (by_class) {
      std::vector<u32> candidates;
      for (u32 i = 0; i < points.size(); ++i) {
        if (points[i].cls == model.opclass) candidates.push_back(i);
      }
      if (candidates.empty()) continue;  // re-draw a function
      point = &points[candidates[rng_.below(candidates.size())]];
    } else {
      point = &points[rng_.below(points.size())];
    }

    const u32 width =
        image_.arch == isa::Arch::kRiscf ? 32 : point->len * 8;
    InjectionTarget t = InjectionTarget::code(
        fn.addr, fn.addr + point->off,
        image_.arch == isa::Arch::kRiscf ? 4 : point->len,
        rng_.bit_index(width), fn.name);
    t.opclass = point->cls;
    return t;
  }
  throw FaultModelError("no " + isa::opclass_name(model.opclass) +
                        " instructions among the hot functions");
}

InjectionTarget TargetGenerator::next_stack() {
  const u32 task = static_cast<u32>(rng_.below(kernel::kNumTasks));
  const double depth = rng_.next_double();
  const u32 bit = rng_.bit_index(32);
  return InjectionTarget::stack(task, depth, bit,
                                0.1 + 0.7 * rng_.next_double());
}

InjectionTarget TargetGenerator::next_data() {
  const Addr addr =
      image_.data_base + 4 * static_cast<u32>(rng_.below(data_words_total_));
  return InjectionTarget::data(addr, rng_.bit_index(32));
}

InjectionTarget TargetGenerator::next_register() {
  const u32 index = static_cast<u32>(rng_.below(sysreg_count_));
  const u32 bit = rng_.bit_index(32);  // clamped to the register width on use
  return InjectionTarget::sysreg(index, bit, 0.1 + 0.7 * rng_.next_double());
}

InjectionTarget TargetGenerator::next_unit(CampaignKind kind,
                                           const FaultModel& model) {
  switch (kind) {
    case CampaignKind::kCode: return next_code(model);
    case CampaignKind::kStack: return next_stack();
    case CampaignKind::kData: return next_data();
    case CampaignKind::kRegister: return next_register();
    case CampaignKind::kErrno:
      KFI_CHECK(false, "errno targets are generated by next_errno");
      break;
  }
  KFI_CHECK(false, "bad campaign kind");
  return {};
}

u32 TargetGenerator::unit_bits(CampaignKind kind, const FaultSite& site) const {
  if (kind == CampaignKind::kCode && image_.arch != isa::Arch::kRiscf) {
    return site.insn_len * 8;
  }
  return 32;  // data/stack word, register value, riscf instruction word
}

void TargetGenerator::expand_shape(InjectionTarget& target,
                                   const FaultModel& model) {
  if (target.sites.empty()) return;
  const FaultSite base = target.sites.back();
  const u32 width = unit_bits(target.kind, base);

  if (model.shape == FaultShape::kMultiBit && model.bits > 1) {
    // k distinct bits of the same unit; rejection sampling keeps them
    // distinct without disturbing the draw for other units.
    const u32 k = std::min(model.bits, width);
    std::vector<u32> chosen{base.bit};
    while (chosen.size() < k) {
      const u32 b = rng_.bit_index(width);
      if (std::find(chosen.begin(), chosen.end(), b) == chosen.end()) {
        chosen.push_back(b);
      }
    }
    for (size_t i = 1; i < chosen.size(); ++i) {
      FaultSite s = base;
      s.bit = chosen[i];
      target.sites.push_back(s);
    }
  } else if (model.shape == FaultShape::kBurst) {
    // `span` adjacent bits; the drawn bit anchors the burst, clipped so
    // the whole span stays inside the unit.  No extra draws.
    const u32 span = std::min(model.burst_span, width);
    const u32 start = std::min(base.bit, width - span);
    target.sites.pop_back();
    for (u32 b = 0; b < span; ++b) {
      FaultSite s = base;
      s.bit = start + b;
      target.sites.push_back(s);
    }
  }
}

InjectionTarget TargetGenerator::next_rate(CampaignKind kind,
                                           const FaultModel& model) {
  InjectionTarget t;
  t.kind = kind;
  // Pre-draw the whole Poisson schedule: event count, then per event a
  // shaped unit and a uniform firing time.  Everything the runner needs
  // is frozen here, which is what keeps rate campaigns deterministic and
  // journal-resumable.
  const u32 events = rng_.poisson(model.rate);
  std::vector<InjectionTarget> drawn;
  drawn.reserve(events);
  for (u32 e = 0; e < events; ++e) {
    InjectionTarget ev = next_unit(kind, model);
    expand_shape(ev, model);
    const double at = rng_.next_double();
    for (FaultSite& s : ev.sites) s.at_frac = at;
    drawn.push_back(std::move(ev));
  }
  std::stable_sort(drawn.begin(), drawn.end(),
                   [](const InjectionTarget& a, const InjectionTarget& b) {
                     return a.sites.front().at_frac < b.sites.front().at_frac;
                   });
  for (size_t e = 0; e < drawn.size(); ++e) {
    if (e == 0) {
      t.code_entry = drawn[e].code_entry;
      t.function = drawn[e].function;
      t.opclass = drawn[e].opclass;
    }
    t.sites.insert(t.sites.end(), drawn[e].sites.begin(),
                   drawn[e].sites.end());
  }
  return t;
}

InjectionTarget TargetGenerator::next(CampaignKind kind,
                                      const FaultModel& model) {
  if (model.trigger == FaultTrigger::kRate) return next_rate(kind, model);
  InjectionTarget t = next_unit(kind, model);
  expand_shape(t, model);
  return t;
}

std::vector<InjectionTarget> TargetGenerator::generate(CampaignKind kind,
                                                       u32 count,
                                                       const FaultModel& model) {
  std::vector<InjectionTarget> targets;
  targets.reserve(count);
  for (u32 i = 0; i < count; ++i) targets.push_back(next(kind, model));
  return targets;
}

InjectionTarget TargetGenerator::next_errno(const errnoinj::ErrnoModel& model,
                                            u64 eligible_per_run) {
  using errnoinj::ErrnoTrigger;
  using errnoinj::ErrnoValue;
  // The draw window: invocation indices in [0, eligible_per_run).  A run
  // with no eligible invocations still gets index 0 so the target exists
  // (it simply never activates), mirroring never-reached breakpoints.
  const u64 window = std::max<u64>(eligible_per_run, 1);
  auto draw_ret = [this, &model]() -> u32 {
    if (model.value == ErrnoValue::kDrawnNegative) {
      // An errno-style code in [-34, -1] (EPERM..ERANGE territory).
      return static_cast<u32>(-static_cast<i32>(rng_.range(1, 34)));
    }
    return kernel::kErrReturn;
  };

  if (model.trigger == ErrnoTrigger::kNth) {
    const u32 index = model.nth != errnoinj::ErrnoModel::kNthDraw
                          ? model.nth
                          : static_cast<u32>(rng_.below(window));
    return InjectionTarget::errno_return(index, draw_ret());
  }

  // Rate trigger: a Poisson event count, one (index, ret) pair per event,
  // sorted by index with duplicate indices collapsed (one invocation can
  // only be forced once).  All frozen at plan time.
  InjectionTarget t;
  t.kind = CampaignKind::kErrno;
  const u32 events = rng_.poisson(model.rate);
  std::vector<FaultSite> sites;
  sites.reserve(events);
  for (u32 e = 0; e < events; ++e) {
    FaultSite s;
    s.task = static_cast<u32>(rng_.below(window));
    s.bit = draw_ret();
    sites.push_back(s);
  }
  std::stable_sort(sites.begin(), sites.end(),
                   [](const FaultSite& a, const FaultSite& b) {
                     return a.task < b.task;
                   });
  for (const FaultSite& s : sites) {
    if (!t.sites.empty() && t.sites.back().task == s.task) continue;
    t.sites.push_back(s);
  }
  return t;
}

std::vector<InjectionTarget> TargetGenerator::generate_errno(
    const errnoinj::ErrnoModel& model, u32 count, u64 eligible_per_run) {
  std::vector<InjectionTarget> targets;
  targets.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    targets.push_back(next_errno(model, eligible_per_run));
  }
  return targets;
}

}  // namespace kfi::inject
