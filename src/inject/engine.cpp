#include "inject/engine.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/rng.hpp"
#include "inject/experiment.hpp"
#include "inject/journal.hpp"

namespace kfi::inject {

namespace {

/// Everything one worker accumulates; merged after the pool drains.
/// Counters are summed per completed injection (not read off the rig at
/// worker exit) so that rig rebuilds after harness faults, and journal
/// resume, merge bit-identically with an uninterrupted run.
struct WorkerTotals {
  u64 reboots = 0;
  u64 datagrams_sent = 0;
  u64 datagrams_dropped = 0;
  u64 simulated_cycles = 0;
  u64 quarantined = 0;
  u64 stalls = 0;
  u64 harness_retries = 0;
  u64 backoff_waits = 0;
  double backoff_seconds = 0.0;
  u32 private_pages = 0;  // worker machine's resident pages at exit
  std::exception_ptr error;
};

/// One worker's private experiment apparatus.  Rebuilt from scratch (off
/// the shared immutable image) when a harness fault leaves it suspect.
struct WorkerRig {
  kernel::Machine machine;
  std::unique_ptr<workload::Workload> wl;
  UdpChannel channel;
  CrashCollector collector;
  ExperimentRunner runner;
  /// Per-rig shadow-state tracker (RunControl::trace); wiring it through
  /// Machine::set_trace_sink keeps the campaign deterministic — the sink
  /// only observes.
  std::unique_ptr<trace::TaintEngine> taint;
  /// Per-rig errno injector (kErrno campaigns — or, disarmed, the
  /// RunControl::errno_hook_probe parity probe on physical campaigns).
  std::unique_ptr<errnoinj::ErrnoInjector> errno_inj;

  WorkerRig(const CampaignPlan& plan, const kernel::MachineOptions& mopts,
            const kernel::MachineSnapshot& boot_snap, bool trace,
            bool errno_probe)
      : machine(plan.spec.arch, mopts, plan.image, boot_snap),
        wl(workload::make_suite(plan.spec.workload_scale)),
        channel(plan.spec.channel_loss, plan.spec.seed ^ 0xC0FFEE),
        collector(),
        runner(machine, *wl, channel, collector, plan.nominal_cycles,
               plan.budget_cycles, plan.kernel_fraction) {
    runner.set_fault_model(plan.spec.model);
    if (trace) {
      taint = std::make_unique<trace::TaintEngine>();
      // Tainted writes are classified against the kernel image's named
      // data objects to detect subsystem crossings.
      const kir::Image* image = plan.image.get();
      taint->set_object_classifier([image](Addr va) -> i32 {
        const kir::DataObject* obj = image->object_at(va);
        if (obj == nullptr) return -1;
        return static_cast<i32>(obj - image->objects.data());
      });
      machine.set_trace_sink(taint.get());
      runner.set_taint_engine(taint.get());
    }
    if (plan.spec.kind == CampaignKind::kErrno) {
      errno_inj = std::make_unique<errnoinj::ErrnoInjector>(
          plan.spec.errno_model, kernel::syscall_result_slot(plan.spec.arch));
      errno_inj->set_taint_engine(taint.get());
      machine.set_syscall_result_hook(errno_inj.get());
      runner.set_errno_injector(errno_inj.get());
    } else if (errno_probe) {
      // Parity probe: a hook that is installed but never armed must leave
      // every result bit-identical to a hook-free rig (satellite check for
      // the Machine::syscall_result_hook seam).
      errno_inj = std::make_unique<errnoinj::ErrnoInjector>(
          errnoinj::ErrnoModel{}, kernel::syscall_result_slot(plan.spec.arch));
      machine.set_syscall_result_hook(errno_inj.get());
    }
  }
};

/// Shared between one worker and the supervisor's watchdog loop.
struct WorkerState {
  WorkerTotals totals;
  kernel::HarnessInterrupt interrupt;
  /// Wall-clock ns timestamp of the in-flight attempt's start; -1 = idle.
  /// Doubles as the attempt epoch for the watchdog's double-check.
  std::atomic<i64> busy_since_ns{-1};
  std::atomic<u32> busy_index{0};
};

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

u32 CampaignEngine::resolve_jobs(u32 requested) {
  if (requested != 0) return requested;
  const u32 hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

CampaignResult CampaignEngine::run(const CampaignPlan& plan,
                                   const ProgressFn& progress,
                                   const RunControl& ctl) const {
  const auto t0 = std::chrono::steady_clock::now();

  CampaignResult result;
  result.spec = plan.spec;
  result.nominal_cycles = plan.nominal_cycles;
  result.kernel_fraction = plan.kernel_fraction;
  result.hot_functions = plan.hot_functions;

  const u32 total = static_cast<u32>(plan.targets.size());
  result.records.resize(total);
  result.done_mask.assign(total, 0);

  // Optional index slice (the fabric's shard): claims draw from the
  // slice, completion is judged against it, records still land at their
  // plan index so a splice of shard results reassembles the full run.
  const std::vector<u32>* slice = ctl.indices;
  if (slice != nullptr) {
    for (size_t k = 0; k < slice->size(); ++k) {
      KFI_CHECK((*slice)[k] < total, "RunControl::indices out of range");
      KFI_CHECK(k == 0 || (*slice)[k] > (*slice)[k - 1],
                "RunControl::indices must be sorted and unique");
    }
  }
  const u32 count = slice != nullptr ? static_cast<u32>(slice->size()) : total;
  auto slice_at = [slice](u32 k) {
    return slice != nullptr ? (*slice)[k] : k;
  };

  // Pre-merge journaled records: their indices are skipped and their
  // counter deltas seed the merge, making the resumed result
  // bit-identical to an uninterrupted run.  Quarantined entries are
  // deliberately NOT marked done — a resume is the harness's second
  // chance at them.
  u32 resumed = 0;
  if (ctl.journal != nullptr) {
    for (const JournalEntry& e : ctl.journal->recovered()) {
      if (e.index >= total || result.done_mask[e.index]) continue;
      if (e.record.outcome == OutcomeCategory::kHarnessError) continue;
      result.records[e.index] = e.record;
      result.done_mask[e.index] = 1;
      result.reboots += e.reboots;
      result.datagrams_sent += e.datagrams_sent;
      result.datagrams_dropped += e.datagrams_dropped;
      result.throughput.simulated_cycles += e.simulated_cycles;
      ++resumed;
    }
  }
  result.resumed_records = resumed;

  // The work left is judged against the slice (for a full run the slice
  // IS the plan, so this matches the old total - resumed).
  u32 resumed_in_slice = 0;
  for (u32 k = 0; k < count; ++k) {
    if (result.done_mask[slice_at(k)]) ++resumed_in_slice;
  }
  const u32 remaining = count - resumed_in_slice;
  const u32 jobs = remaining == 0
                       ? 1
                       : std::min(resolve_jobs(jobs_), std::max(remaining, 1u));
  std::vector<std::unique_ptr<WorkerState>> states;
  for (u32 w = 0; w < jobs; ++w) {
    states.push_back(std::make_unique<WorkerState>());
    states.back()->interrupt.step_budget = ctl.step_budget;
  }

  std::atomic<u32> next_index{0};
  std::atomic<bool> abort{false};
  std::mutex progress_mutex;
  u32 done_count = resumed_in_slice;

  auto cancelled = [&abort, &ctl] {
    return abort.load(std::memory_order_relaxed) ||
           (ctl.cancel != nullptr &&
            ctl.cancel->load(std::memory_order_relaxed));
  };

  const kernel::MachineOptions mopts = campaign_machine_options(plan.spec);

  // One donor machine runs the boot writes; every worker rig (including
  // rebuilds after harness faults) adopts its boot snapshot instead of
  // re-booting.  With COW on, a fresh worker holds ZERO private pages —
  // all of memory aliases this one shared buffer — so engine residency is
  // ~1 image + per-worker dirty pages, sublinear in the job count.
  // Bit-identity is free: a worker booting itself would produce exactly
  // the donor's state (same arch, options, and image).
  std::unique_ptr<const kernel::MachineSnapshot> boot_snap;
  if (remaining > 0) {
    kernel::Machine donor(plan.spec.arch, mopts, plan.image);
    boot_snap = std::make_unique<const kernel::MachineSnapshot>(
        donor.boot_snapshot());
  }

  // One worker: claims indices dynamically (determinism is per-index, so
  // the assignment is free to load-balance), executes each with retry /
  // quarantine isolation, and journals every completed record before
  // reporting progress.
  auto worker = [&](WorkerState& st, u32 worker_id) {
    try {
      auto make_rig = [&plan, &mopts, &boot_snap, &st, &ctl] {
        auto rig = std::make_unique<WorkerRig>(plan, mopts, *boot_snap,
                                               ctl.trace,
                                               ctl.errno_hook_probe);
        rig->machine.set_harness_interrupt(&st.interrupt);
        return rig;
      };
      auto rig = make_rig();

      // Deterministic retry backoff: the wait sequence depends only on
      // (plan seed, worker id, failure count), never on wall-clock state.
      Rng backoff_rng(plan.spec.seed ^ 0xBACC0FFull ^
                      (0x9E3779B97F4A7C15ull * (worker_id + 1)));
      auto backoff_before_retry = [&st, &ctl, &backoff_rng](u32 attempt) {
        if (ctl.retry_backoff_base <= 0.0) return;
        const double exp =
            ctl.retry_backoff_base *
            static_cast<double>(1ull << std::min<u32>(attempt, 30));
        const double wait = std::min(ctl.retry_backoff_cap, exp) *
                            (0.5 + backoff_rng.next_double());
        ++st.totals.backoff_waits;
        st.totals.backoff_seconds += wait;
        std::this_thread::sleep_for(std::chrono::duration<double>(wait));
      };

      for (u32 k = next_index.fetch_add(1); k < count;
           k = next_index.fetch_add(1)) {
        const u32 i = slice_at(k);
        if (cancelled()) break;
        if (result.done_mask[i]) continue;  // journaled before this run

        JournalEntry entry;
        entry.index = i;
        const u32 max_attempts = ctl.retries + 1;
        std::string err;
        bool ok = false;
        bool stalled = false;
        u32 attempts = 0;

        for (u32 attempt = 0; attempt < max_attempts && !ok && !stalled;
             ++attempt) {
          ++attempts;
          // Publish the heartbeat for this attempt.  Clearing `requested`
          // first means a watchdog decision against a *previous* attempt
          // cannot interrupt this one (the watchdog double-checks
          // busy_since_ns before setting the flag; the residual race is
          // benign — at worst one healthy index is quarantined and the
          // campaign continues).
          st.interrupt.requested.store(false, std::memory_order_relaxed);
          st.busy_index.store(i, std::memory_order_relaxed);
          st.busy_since_ns.store(now_ns(), std::memory_order_release);
          try {
            if (ctl.harness_fault_hook) ctl.harness_fault_hook(i, attempt);
            const u64 reboots0 = rig->runner.reboots();
            const u64 sent0 = rig->channel.sent();
            const u64 dropped0 = rig->channel.dropped();
            const u64 cycles0 = rig->runner.simulated_cycles();
            result.records[i] =
                rig->runner.run_one(plan.targets[i], plan.run_seeds[i], i);
            entry.reboots = rig->runner.reboots() - reboots0;
            entry.datagrams_sent = rig->channel.sent() - sent0;
            entry.datagrams_dropped = rig->channel.dropped() - dropped0;
            entry.simulated_cycles =
                rig->runner.simulated_cycles() - cycles0;
            ok = true;
          } catch (const StallInterrupt& e) {
            // The watchdog (or step budget) pulled the machine out of a
            // livelock.  No retry: the same index would stall again.
            err = e.what();
            stalled = true;
            st.interrupt.requested.store(false, std::memory_order_relaxed);
            rig = make_rig();  // mid-run machine state is unusable
          } catch (const std::exception& e) {
            err = e.what();
            rig = make_rig();  // retry on a freshly built replica
            if (attempt + 1 < max_attempts) {
              ++st.totals.harness_retries;
              backoff_before_retry(attempt);
            }
          } catch (...) {
            err = "unknown harness error";
            rig = make_rig();
            if (attempt + 1 < max_attempts) {
              ++st.totals.harness_retries;
              backoff_before_retry(attempt);
            }
          }
        }
        st.busy_since_ns.store(-1, std::memory_order_release);

        if (ok) {
          st.totals.reboots += entry.reboots;
          st.totals.datagrams_sent += entry.datagrams_sent;
          st.totals.datagrams_dropped += entry.datagrams_dropped;
          st.totals.simulated_cycles += entry.simulated_cycles;
          entry.record = result.records[i];
        } else {
          // Quarantine: a distinct harness-error record (message
          // preserved) that keeps the index visible in the tally without
          // polluting the paper's outcome statistics.
          InjectionRecord rec;
          rec.target = plan.targets[i];
          rec.outcome = OutcomeCategory::kHarnessError;
          rec.harness_error = err.empty() ? "harness error" : err;
          rec.harness_attempts = attempts;
          result.records[i] = rec;
          entry.record = rec;
          ++st.totals.quarantined;
          if (stalled) ++st.totals.stalls;
        }
        result.done_mask[i] = 1;

        if (ctl.journal != nullptr) ctl.journal->append(entry);
        if (progress || ctl.record_observer) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          if (ctl.record_observer) ctl.record_observer(i, entry.record);
          if (progress) progress(++done_count, count);
        }
      }
      st.totals.private_pages = rig->machine.space().phys().private_pages();
    } catch (...) {
      // Fatal for the whole campaign (rig construction, journal I/O, or a
      // throwing progress callback): stop claiming everywhere, drain, and
      // rethrow after the pool joins.  Already-journaled records survive.
      st.totals.error = std::current_exception();
      abort.store(true, std::memory_order_relaxed);
    }
  };

  // Wall-clock watchdog: interrupts any attempt that outlives its budget
  // via the worker machine's HarnessInterrupt.
  std::mutex sup_mutex;
  std::condition_variable sup_cv;
  bool sup_stop = false;
  std::thread supervisor;
  if (ctl.stall_seconds > 0.0) {
    const i64 budget_ns = static_cast<i64>(ctl.stall_seconds * 1e9);
    const auto poll =
        std::chrono::nanoseconds(std::max<i64>(budget_ns / 8, 1'000'000));
    supervisor = std::thread([&states, &sup_mutex, &sup_cv, &sup_stop,
                              budget_ns, poll] {
      std::unique_lock<std::mutex> lock(sup_mutex);
      while (!sup_stop) {
        sup_cv.wait_for(lock, poll);
        if (sup_stop) break;
        const i64 now = now_ns();
        for (const auto& st : states) {
          const i64 since =
              st->busy_since_ns.load(std::memory_order_acquire);
          if (since < 0 || now - since <= budget_ns) continue;
          // Double-check the attempt epoch before interrupting.
          if (st->busy_since_ns.load(std::memory_order_acquire) == since) {
            st->interrupt.requested.store(true, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  if (remaining == 0) {
    // Fully resumed: nothing to execute, no rig to boot.
  } else if (jobs <= 1) {
    worker(*states[0], 0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (u32 w = 0; w < jobs; ++w) {
      pool.emplace_back([&worker, &states, w] { worker(*states[w], w); });
    }
    for (auto& t : pool) t.join();
  }

  if (supervisor.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(sup_mutex);
      sup_stop = true;
    }
    sup_cv.notify_all();
    supervisor.join();
  }

  if (ctl.journal != nullptr) result.journal_flushes = ctl.journal->flushes();

  for (const auto& st : states) {
    if (st->totals.error) std::rethrow_exception(st->totals.error);
  }
  for (const auto& st : states) {
    result.reboots += st->totals.reboots;
    result.datagrams_sent += st->totals.datagrams_sent;
    result.datagrams_dropped += st->totals.datagrams_dropped;
    result.throughput.simulated_cycles += st->totals.simulated_cycles;
    result.quarantined += st->totals.quarantined;
    result.stalls += st->totals.stalls;
    result.harness_retries += st->totals.harness_retries;
    result.retry_backoff_waits += st->totals.backoff_waits;
    result.retry_backoff_seconds += st->totals.backoff_seconds;
    result.worker_backoff_waits.push_back(st->totals.backoff_waits);
    result.throughput.worker_private_pages += st->totals.private_pages;
    result.throughput.max_worker_private_pages =
        std::max(result.throughput.max_worker_private_pages,
                 st->totals.private_pages);
  }
  for (u32 k = 0; k < count; ++k) {
    if (!result.done_mask[slice_at(k)]) {
      result.interrupted = true;
      break;
    }
  }

  result.throughput.jobs = jobs;
  result.throughput.plan_seconds = plan.plan_seconds;
  result.throughput.run_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.throughput.wall_seconds =
      result.throughput.plan_seconds + result.throughput.run_seconds;
  return result;
}

}  // namespace kfi::inject
