#include "inject/engine.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "inject/experiment.hpp"

namespace kfi::inject {

namespace {

/// Everything one worker accumulates; merged after the pool drains.
struct WorkerTotals {
  u64 reboots = 0;
  u64 datagrams_sent = 0;
  u64 datagrams_dropped = 0;
  u64 simulated_cycles = 0;
  std::exception_ptr error;
};

}  // namespace

u32 CampaignEngine::resolve_jobs(u32 requested) {
  if (requested != 0) return requested;
  const u32 hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

CampaignResult CampaignEngine::run(const CampaignPlan& plan,
                                   const ProgressFn& progress) const {
  const auto t0 = std::chrono::steady_clock::now();

  CampaignResult result;
  result.spec = plan.spec;
  result.nominal_cycles = plan.nominal_cycles;
  result.kernel_fraction = plan.kernel_fraction;
  result.hot_functions = plan.hot_functions;

  const u32 total = static_cast<u32>(plan.targets.size());
  result.records.resize(total);

  const u32 jobs =
      total == 0 ? 1 : std::min(resolve_jobs(jobs_), std::max(total, 1u));
  std::vector<WorkerTotals> totals(jobs);
  std::atomic<u32> next_index{0};
  std::mutex progress_mutex;
  u32 done = 0;

  // One worker: private Machine (booted from the shared image), Workload,
  // UdpChannel, CrashCollector, ExperimentRunner.  Indices are claimed
  // dynamically; determinism is per-index, so the assignment is free to
  // load-balance.
  auto worker = [&](WorkerTotals& mine) {
    try {
      const kernel::MachineOptions mopts =
          campaign_machine_options(plan.spec);
      kernel::Machine machine(plan.spec.arch, mopts, plan.image);
      auto wl = workload::make_suite(plan.spec.workload_scale);
      UdpChannel channel(plan.spec.channel_loss, plan.spec.seed ^ 0xC0FFEE);
      CrashCollector collector;
      ExperimentRunner runner(machine, *wl, channel, collector,
                              plan.nominal_cycles, plan.budget_cycles,
                              plan.kernel_fraction);
      for (u32 i = next_index.fetch_add(1); i < total;
           i = next_index.fetch_add(1)) {
        result.records[i] =
            runner.run_one(plan.targets[i], plan.run_seeds[i], i);
        if (progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          progress(++done, total);
        }
      }
      mine.reboots = runner.watchdog().reboots();
      mine.datagrams_sent = channel.sent();
      mine.datagrams_dropped = channel.dropped();
      mine.simulated_cycles = runner.simulated_cycles();
    } catch (...) {
      mine.error = std::current_exception();
    }
  };

  if (jobs <= 1) {
    worker(totals[0]);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (u32 w = 0; w < jobs; ++w) {
      pool.emplace_back([&worker, &totals, w] { worker(totals[w]); });
    }
    for (auto& t : pool) t.join();
  }

  for (const WorkerTotals& mine : totals) {
    if (mine.error) std::rethrow_exception(mine.error);
    result.reboots += mine.reboots;
    result.datagrams_sent += mine.datagrams_sent;
    result.datagrams_dropped += mine.datagrams_dropped;
    result.throughput.simulated_cycles += mine.simulated_cycles;
  }

  result.throughput.jobs = jobs;
  result.throughput.plan_seconds = plan.plan_seconds;
  result.throughput.run_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.throughput.wall_seconds =
      result.throughput.plan_seconds + result.throughput.run_seconds;
  return result;
}

}  // namespace kfi::inject
