#include "inject/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "errnoinj/errno_model.hpp"
#include "inject/plan.hpp"

namespace kfi::inject {

namespace {

constexpr u32 kJournalMagic = 0x4B46494A;  // "KFIJ"
constexpr u32 kEntryMagic = 0x4B464945;    // "KFIE"

u64 fnv1a(const u8* data, size_t size) {
  u64 h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void put8(std::vector<u8>& out, u8 v) { out.push_back(v); }

void put32(std::vector<u8>& out, u32 v) {
  out.push_back(static_cast<u8>(v >> 24));
  out.push_back(static_cast<u8>(v >> 16));
  out.push_back(static_cast<u8>(v >> 8));
  out.push_back(static_cast<u8>(v));
}

void put64(std::vector<u8>& out, u64 v) {
  put32(out, static_cast<u32>(v >> 32));
  put32(out, static_cast<u32>(v));
}

void put_double(std::vector<u8>& out, double d) {
  u64 bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  put64(out, bits);
}

void put_string(std::vector<u8>& out, const std::string& s) {
  put32(out, static_cast<u32>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked big-endian reader: every get_* returns a default and
/// latches `ok = false` once the input runs out, so malformed input can
/// never read past the buffer.
struct Cursor {
  const std::vector<u8>& in;
  size_t pos;
  bool ok = true;

  bool have(size_t n) {
    if (!ok || in.size() - pos < n || pos > in.size()) ok = false;
    return ok;
  }
  u8 get8() {
    if (!have(1)) return 0;
    return in[pos++];
  }
  u32 get32() {
    if (!have(4)) return 0;
    const u32 v = (static_cast<u32>(in[pos]) << 24) |
                  (static_cast<u32>(in[pos + 1]) << 16) |
                  (static_cast<u32>(in[pos + 2]) << 8) |
                  static_cast<u32>(in[pos + 3]);
    pos += 4;
    return v;
  }
  u64 get64() {
    const u64 hi = get32();
    return (hi << 32) | get32();
  }
  double get_double() {
    const u64 bits = get64();
    double d = 0.0;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }
  std::string get_string() {
    const u32 len = get32();
    if (!have(len)) return {};
    std::string s(in.begin() + static_cast<long>(pos),
                  in.begin() + static_cast<long>(pos + len));
    pos += len;
    return s;
  }
};

}  // namespace

void serialize_journal_entry(std::vector<u8>& out, const JournalEntry& e,
                             u32 version) {
  put32(out, e.index);

  const InjectionTarget& t = e.record.target;
  if (version >= kJournalVersionV3) {
    put8(out, static_cast<u8>(t.kind));
    put32(out, t.code_entry);
    put_string(out, t.function);
    put8(out, static_cast<u8>(t.opclass));
    put_string(out, t.reg_name);
    put_double(out, t.inject_at_frac);
    put32(out, static_cast<u32>(t.sites.size()));
    for (const FaultSite& s : t.sites) {
      put32(out, s.addr);
      put32(out, s.bit);
      put32(out, s.insn_len);
      put32(out, s.task);
      put_double(out, s.depth_frac);
      put32(out, s.reg_index);
      put_double(out, s.at_frac);
    }
  } else {
    // Pre-v3 files carry the flat single-site layout; lossless for the
    // legacy targets that are the only ones such files can contain.
    const LegacyTargetFields f = legacy_target_fields(t);
    put8(out, static_cast<u8>(f.kind));
    put32(out, f.code_entry);
    put32(out, f.code_addr);
    put32(out, f.code_insn_len);
    put32(out, f.code_bit);
    put_string(out, f.function);
    put32(out, f.data_addr);
    put32(out, f.data_bit);
    put32(out, f.stack_task);
    put_double(out, f.stack_depth_frac);
    put32(out, f.stack_bit);
    put32(out, f.reg_index);
    put32(out, f.reg_bit);
    put_string(out, f.reg_name);
    put_double(out, f.inject_at_frac);
  }

  const InjectionRecord& r = e.record;
  put8(out, static_cast<u8>(r.outcome));
  put8(out, r.activated ? 1 : 0);
  put8(out, r.activation_known ? 1 : 0);
  put64(out, r.activation_cycle);
  put64(out, r.latency_base_cycle);
  put8(out, r.crashed ? 1 : 0);
  put8(out, r.crash_report_received ? 1 : 0);
  put8(out, static_cast<u8>(r.crash.cause));
  put32(out, r.crash.pc);
  put32(out, r.crash.addr);
  put8(out, r.crash.has_addr ? 1 : 0);
  put64(out, r.crash.cycles_to_crash);
  put_string(out, r.crash.detail);
  put64(out, r.cycles_to_crash);
  put32(out, r.syscalls_completed);
  put_string(out, r.harness_error);
  put32(out, r.harness_attempts);

  put64(out, e.reboots);
  put64(out, e.datagrams_sent);
  put64(out, e.datagrams_dropped);
  put64(out, e.simulated_cycles);

  if (version >= 2) {
    const trace::PropagationSummary& p = r.propagation;
    put8(out, r.propagation_valid ? 1 : 0);
    put8(out, p.traced ? 1 : 0);
    put8(out, p.seeded ? 1 : 0);
    put64(out, p.seed_insn);
    put8(out, p.used ? 1 : 0);
    put64(out, p.first_use_insn);
    put64(out, p.first_use_latency);
    put32(out, p.max_depth);
    put32(out, p.tainted_regs_peak);
    put32(out, p.tainted_bytes_peak);
    put64(out, p.tainted_reads);
    put64(out, p.tainted_writes);
    put64(out, p.tainted_branches);
    put64(out, p.pc_tainted_insns);
    put32(out, p.objects_crossed);
    put64(out, p.silent_overwrites);
    put8(out, p.syscall_result_tainted ? 1 : 0);
    put32(out, p.priv_transitions);
    put8(out, p.live_at_end ? 1 : 0);
    put32(out, p.live_regs_at_end);
    put32(out, p.live_bytes_at_end);
  }

  if (version >= kJournalVersion) {
    const errnoinj::CascadeSummary& cs = r.cascade;
    put8(out, r.cascade_valid ? 1 : 0);
    put32(out, cs.forced);
    put32(out, cs.first_forced_op);
    put32(out, cs.first_forced_syscall);
    put32(out, cs.natural_ret);
    put32(out, cs.forced_ret);
    put32(out, cs.deviating_ops);
    put32(out, cs.cascade_length);
    put8(out, static_cast<u8>(cs.containment));
    put8(out, cs.checked_at_site ? 1 : 0);
    put8(out, cs.state_deviation ? 1 : 0);
  }
}

std::optional<JournalEntry> deserialize_journal_entry(
    const std::vector<u8>& in, size_t& pos, u32 version) {
  Cursor c{in, pos};
  JournalEntry e;
  e.index = c.get32();

  InjectionTarget& t = e.record.target;
  if (version >= kJournalVersionV3) {
    const u8 kind = c.get8();
    // Errno targets were introduced with v4; a v3 file carrying the kind
    // byte is malformed, not a forward-compatible extension.
    const u8 max_kind = version >= kJournalVersion
                            ? static_cast<u8>(CampaignKind::kErrno)
                            : static_cast<u8>(CampaignKind::kCode);
    if (kind > max_kind) return std::nullopt;
    t.kind = static_cast<CampaignKind>(kind);
    t.code_entry = c.get32();
    t.function = c.get_string();
    const u8 opclass = c.get8();
    if (opclass >= static_cast<u8>(isa::OpClass::kNumClasses)) {
      return std::nullopt;
    }
    t.opclass = static_cast<isa::OpClass>(opclass);
    t.reg_name = c.get_string();
    t.inject_at_frac = c.get_double();
    const u32 site_count = c.get32();
    // 7 fields, each at least 4 bytes: any count the remaining payload
    // cannot hold is malformed, not a huge allocation.
    if (!c.ok || site_count > (in.size() - c.pos) / 28) return std::nullopt;
    t.sites.reserve(site_count);
    for (u32 i = 0; i < site_count; ++i) {
      FaultSite s;
      s.addr = c.get32();
      s.bit = c.get32();
      s.insn_len = c.get32();
      s.task = c.get32();
      s.depth_frac = c.get_double();
      s.reg_index = c.get32();
      s.at_frac = c.get_double();
      t.sites.push_back(s);
    }
  } else {
    LegacyTargetFields f;
    const u8 kind = c.get8();
    if (kind > static_cast<u8>(CampaignKind::kCode)) return std::nullopt;
    f.kind = static_cast<CampaignKind>(kind);
    f.code_entry = c.get32();
    f.code_addr = c.get32();
    f.code_insn_len = c.get32();
    f.code_bit = c.get32();
    f.function = c.get_string();
    f.data_addr = c.get32();
    f.data_bit = c.get32();
    f.stack_task = c.get32();
    f.stack_depth_frac = c.get_double();
    f.stack_bit = c.get32();
    f.reg_index = c.get32();
    f.reg_bit = c.get32();
    f.reg_name = c.get_string();
    f.inject_at_frac = c.get_double();
    t = target_from_legacy_fields(f);
  }

  InjectionRecord& r = e.record;
  const u8 outcome = c.get8();
  if (outcome >= static_cast<u8>(OutcomeCategory::kNumOutcomes)) {
    return std::nullopt;
  }
  r.outcome = static_cast<OutcomeCategory>(outcome);
  r.activated = c.get8() != 0;
  r.activation_known = c.get8() != 0;
  r.activation_cycle = c.get64();
  r.latency_base_cycle = c.get64();
  r.crashed = c.get8() != 0;
  r.crash_report_received = c.get8() != 0;
  const u8 cause = c.get8();
  if (cause >= static_cast<u8>(kernel::CrashCause::kNumCauses)) {
    return std::nullopt;
  }
  r.crash.cause = static_cast<kernel::CrashCause>(cause);
  r.crash.pc = c.get32();
  r.crash.addr = c.get32();
  r.crash.has_addr = c.get8() != 0;
  r.crash.cycles_to_crash = c.get64();
  r.crash.detail = c.get_string();
  r.cycles_to_crash = c.get64();
  r.syscalls_completed = c.get32();
  r.harness_error = c.get_string();
  r.harness_attempts = c.get32();

  e.reboots = c.get64();
  e.datagrams_sent = c.get64();
  e.datagrams_dropped = c.get64();
  e.simulated_cycles = c.get64();

  if (version >= 2) {
    trace::PropagationSummary& p = r.propagation;
    r.propagation_valid = c.get8() != 0;
    p.traced = c.get8() != 0;
    p.seeded = c.get8() != 0;
    p.seed_insn = c.get64();
    p.used = c.get8() != 0;
    p.first_use_insn = c.get64();
    p.first_use_latency = c.get64();
    p.max_depth = c.get32();
    p.tainted_regs_peak = c.get32();
    p.tainted_bytes_peak = c.get32();
    p.tainted_reads = c.get64();
    p.tainted_writes = c.get64();
    p.tainted_branches = c.get64();
    p.pc_tainted_insns = c.get64();
    p.objects_crossed = c.get32();
    p.silent_overwrites = c.get64();
    p.syscall_result_tainted = c.get8() != 0;
    p.priv_transitions = c.get32();
    p.live_at_end = c.get8() != 0;
    p.live_regs_at_end = c.get32();
    p.live_bytes_at_end = c.get32();
  }
  // v1 payloads simply have no propagation block: the record keeps the
  // default summary with propagation_valid = false.

  if (version >= kJournalVersion) {
    errnoinj::CascadeSummary& cs = r.cascade;
    r.cascade_valid = c.get8() != 0;
    cs.forced = c.get32();
    cs.first_forced_op = c.get32();
    cs.first_forced_syscall = c.get32();
    cs.natural_ret = c.get32();
    cs.forced_ret = c.get32();
    cs.deviating_ops = c.get32();
    cs.cascade_length = c.get32();
    const u8 containment = c.get8();
    if (containment > static_cast<u8>(errnoinj::CascadeClass::kSilent)) {
      return std::nullopt;
    }
    cs.containment = static_cast<errnoinj::CascadeClass>(containment);
    cs.checked_at_site = c.get8() != 0;
    cs.state_deviation = c.get8() != 0;
  }
  // Pre-v4 payloads have no cascade block: cascade_valid stays false.

  if (!c.ok) return std::nullopt;
  pos = c.pos;
  return e;
}

namespace {

/// write(2) the whole buffer, retrying short writes and EINTR.
bool write_all(int fd, const u8* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

/// fsync the directory holding `path` so a freshly created journal file
/// survives a machine crash, not just a process crash.  Best-effort: some
/// filesystems reject directory fsync, which is not worth failing a
/// campaign over.
void sync_parent_dir(const std::string& path) {
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

JournalFileData read_journal_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JournalError("cannot open journal at " + path);
  std::vector<u8> bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  in.close();

  Cursor c{bytes, 0};
  if (c.get32() != kJournalMagic || !c.ok) {
    throw JournalError("not an injection journal: " + path);
  }
  JournalFileData data;
  data.file_size = bytes.size();
  data.version = c.get32();
  if (data.version < kJournalVersionV1 || data.version > kJournalVersion) {
    throw JournalError("journal version mismatch in " + path + ": " +
                       std::to_string(data.version) + " (this build reads " +
                       std::to_string(kJournalVersionV1) + ".." +
                       std::to_string(kJournalVersion) + ")");
  }
  data.plan_fingerprint = c.get64();
  if (data.version >= kJournalVersionV3) {
    data.fault_model_fingerprint = c.get64();
  }
  if (data.version >= kJournalVersion) {
    data.errno_model_fingerprint = c.get64();
  }
  data.total = c.get32();
  if (!c.ok) throw JournalError("truncated journal header in " + path);

  // Load intact entries; stop at the first torn or malformed frame.
  size_t good_end = c.pos;
  for (;;) {
    Cursor frame{bytes, good_end};
    if (frame.pos == bytes.size()) break;  // clean end
    if (frame.get32() != kEntryMagic || !frame.ok) break;
    const u32 index = frame.get32();
    const u32 len = frame.get32();
    if (!frame.have(len)) break;
    const size_t payload_at = frame.pos;
    frame.pos += len;
    const u64 checksum = frame.get64();
    if (!frame.ok || checksum != fnv1a(bytes.data() + payload_at, len)) break;
    size_t pos = payload_at;
    auto entry = deserialize_journal_entry(bytes, pos, data.version);
    if (!entry || pos != payload_at + len || entry->index != index ||
        entry->index >= data.total) {
      break;
    }
    data.entries.push_back(std::move(*entry));
    good_end = frame.pos;
  }
  data.intact_end = good_end;
  return data;
}

InjectionJournal::InjectionJournal(std::string path, u32 version, int fd,
                                   FlushPolicy policy,
                                   std::vector<JournalEntry> recovered)
    : path_(std::move(path)),
      version_(version),
      fd_(fd),
      policy_(policy),
      recovered_(std::move(recovered)),
      mutex_(new std::mutex) {}

InjectionJournal::InjectionJournal(InjectionJournal&& other) noexcept
    : path_(std::move(other.path_)),
      version_(other.version_),
      fd_(other.fd_),
      policy_(other.policy_),
      recovered_(std::move(other.recovered_)),
      mutex_(std::move(other.mutex_)),
      flushes_(other.flushes_) {
  other.fd_ = -1;
}

InjectionJournal& InjectionJournal::operator=(
    InjectionJournal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    version_ = other.version_;
    fd_ = other.fd_;
    policy_ = other.policy_;
    recovered_ = std::move(other.recovered_);
    mutex_ = std::move(other.mutex_);
    flushes_ = other.flushes_;
    other.fd_ = -1;
  }
  return *this;
}

InjectionJournal::~InjectionJournal() {
  if (fd_ >= 0) ::close(fd_);
}

InjectionJournal InjectionJournal::create(const std::string& path,
                                          const CampaignPlan& plan,
                                          FlushPolicy policy) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd < 0) throw JournalError("cannot create journal at " + path);
  std::vector<u8> header;
  put32(header, kJournalMagic);
  put32(header, kJournalVersion);
  put64(header, plan_fingerprint(plan));
  put64(header, fault_model_fingerprint(plan.spec.model));
  put64(header, errnoinj::errno_model_fingerprint(plan.spec.errno_model));
  put32(header, static_cast<u32>(plan.targets.size()));
  if (!write_all(fd, header.data(), header.size())) {
    ::close(fd);
    throw JournalError("cannot write journal header to " + path);
  }
  if (policy == FlushPolicy::kFsync) {
    ::fsync(fd);
    sync_parent_dir(path);
  }
  return InjectionJournal(path, kJournalVersion, fd, policy, {});
}

InjectionJournal InjectionJournal::resume(const std::string& path,
                                          const CampaignPlan& plan,
                                          FlushPolicy policy) {
  JournalFileData data = read_journal_file(path);
  if (data.plan_fingerprint != plan_fingerprint(plan)) {
    throw JournalError("journal " + path +
                       " was written for a different campaign plan "
                       "(fingerprint mismatch)");
  }
  if (data.version >= kJournalVersionV3 &&
      data.fault_model_fingerprint !=
          fault_model_fingerprint(plan.spec.model)) {
    throw JournalError("journal " + path +
                       " was written for a different fault model "
                       "(fingerprint mismatch)");
  }
  if (data.version >= kJournalVersion &&
      data.errno_model_fingerprint !=
          errnoinj::errno_model_fingerprint(plan.spec.errno_model)) {
    throw JournalError("journal " + path +
                       " was written for a different errno model "
                       "(fingerprint mismatch)");
  }
  if (data.total != plan.targets.size()) {
    throw JournalError("journal " + path + " expects " +
                       std::to_string(data.total) + " targets, plan has " +
                       std::to_string(plan.targets.size()));
  }
  if (data.intact_end < data.file_size) {
    std::filesystem::resize_file(path, data.intact_end);
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) throw JournalError("cannot reopen journal at " + path);
  return InjectionJournal(path, data.version, fd, policy,
                          std::move(data.entries));
}

void InjectionJournal::append(const JournalEntry& entry) {
  std::vector<u8> payload;
  // Append in the file's own version so a resumed v1 journal stays a
  // uniform v1 file (its header promises no propagation blocks).
  serialize_journal_entry(payload, entry, version_);
  std::vector<u8> frame;
  frame.reserve(payload.size() + 20);
  put32(frame, kEntryMagic);
  put32(frame, entry.index);
  put32(frame, static_cast<u32>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  put64(frame, fnv1a(payload.data(), payload.size()));

  const std::lock_guard<std::mutex> lock(*mutex_);
  if (fd_ < 0) throw JournalError("cannot append to journal " + path_);
  // One O_APPEND write per frame: concurrent appends never interleave,
  // and a crash mid-write leaves at most one torn frame at the tail,
  // which resume() truncates.
  if (!write_all(fd_, frame.data(), frame.size())) {
    throw JournalError("journal write failed for " + path_);
  }
  if (policy_ == FlushPolicy::kFsync && ::fdatasync(fd_) != 0) {
    throw JournalError("journal fdatasync failed for " + path_);
  }
  ++flushes_;
}

u64 InjectionJournal::flushes() const {
  const std::lock_guard<std::mutex> lock(*mutex_);
  return flushes_;
}

std::optional<FlushPolicy> parse_flush_policy(const std::string& name) {
  if (name == "fsync") return FlushPolicy::kFsync;
  if (name == "flush") return FlushPolicy::kFlush;
  return std::nullopt;
}

}  // namespace kfi::inject
