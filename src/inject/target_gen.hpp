// Target address/register generator (STEP 1 of the paper's Figure 2).
//
// Targets are pre-generated before a campaign starts, exactly as in the
// paper — which is why activation is below 100%: a pre-generated error may
// correspond to a breakpoint that is never reached or a stack/register
// state that is never consumed.
//
//   code:     a random instruction inside a profiling-selected hot kernel
//             function (weighted by usage), with a random bit of that
//             instruction ("single-bit error per instruction");
//   stack:    a randomly chosen kernel process, a random depth within its
//             live stack, and a random bit of that word;
//   data:     a random word in the kernel data section (initialized or
//             BSS) and a random bit ("single-bit error per data word");
//   register: a random register of the CPU's system-register bank and a
//             random bit of its architectural width.
//
// The FaultModel shapes what each drawn unit becomes: multi-bit and burst
// shapes expand the drawn bit into k FaultSites of the same unit, the
// opclass shape restricts code draws to one functional-unit class, and
// the rate trigger pre-draws a whole Poisson event schedule per target.
// With the default (legacy) model the RNG draw sequence is bit-for-bit
// the sequence the pre-FaultModel generator made, so legacy plans — and
// everything fingerprinted from them — are unchanged.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "errnoinj/errno_model.hpp"
#include "inject/fault_model.hpp"
#include "inject/record.hpp"
#include "kir/image.hpp"
#include "workload/profiler.hpp"

namespace kfi::inject {

class TargetGenerator {
 public:
  TargetGenerator(const kir::Image& image,
                  std::vector<workload::HotFunction> hot_functions,
                  u32 sysreg_count, u64 seed);

  InjectionTarget next(CampaignKind kind, const FaultModel& model = {});

  /// Pre-generate a whole campaign's worth of targets.
  std::vector<InjectionTarget> generate(CampaignKind kind, u32 count,
                                        const FaultModel& model = {});

  /// One errno target: the frozen per-run schedule of forced returns.
  /// `eligible_per_run` is the calibrated count of eligible syscall
  /// invocations in one fault-free run (the draw window for invocation
  /// indices).
  InjectionTarget next_errno(const errnoinj::ErrnoModel& model,
                             u64 eligible_per_run);

  /// Pre-generate a whole errno campaign.
  std::vector<InjectionTarget> generate_errno(const errnoinj::ErrnoModel& model,
                                              u32 count, u64 eligible_per_run);

  /// System-register names are resolved by the campaign controller; the
  /// generator only picks indices.
  u32 sysreg_count() const { return sysreg_count_; }

 private:
  /// One decodable instruction of a hot function: offset, byte length,
  /// and functional-unit class.
  struct CodePoint {
    u32 off = 0;
    u32 len = 1;
    isa::OpClass cls = isa::OpClass::kOther;
  };

  // Single-unit draws (one FaultSite each); the legacy draw sequences.
  InjectionTarget next_unit(CampaignKind kind, const FaultModel& model);
  InjectionTarget next_code(const FaultModel& model);
  InjectionTarget next_stack();
  InjectionTarget next_data();
  InjectionTarget next_register();

  /// Expand the freshly drawn single site into the model's shape
  /// (multi-bit: k distinct bits of the unit; burst: adjacent span).
  void expand_shape(InjectionTarget& target, const FaultModel& model);
  /// Pre-draw one rate-triggered target: Poisson event count, then one
  /// shaped unit + firing time per event, sites sorted by firing time.
  InjectionTarget next_rate(CampaignKind kind, const FaultModel& model);

  /// Bit width of the unit one site corrupts.
  u32 unit_bits(CampaignKind kind, const FaultSite& site) const;

  /// Instruction start points within a function (decode walk on cisca,
  /// every 4 bytes on riscf); cached per function.
  const std::vector<CodePoint>& code_points(const workload::HotFunction& fn);

  const kir::Image& image_;
  u64 data_words_total_ = 0;  // words in the fixed data-injection window
  std::vector<workload::HotFunction> hot_;
  std::vector<u64> hot_weights_;  // cumulative entries for weighted pick
  u32 sysreg_count_;
  Rng rng_;
  std::vector<std::vector<CodePoint>> points_cache_;
};

}  // namespace kfi::inject
