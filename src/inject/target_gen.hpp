// Target address/register generator (STEP 1 of the paper's Figure 2).
//
// Targets are pre-generated before a campaign starts, exactly as in the
// paper — which is why activation is below 100%: a pre-generated error may
// correspond to a breakpoint that is never reached or a stack/register
// state that is never consumed.
//
//   code:     a random instruction inside a profiling-selected hot kernel
//             function (weighted by usage), with a random bit of that
//             instruction ("single-bit error per instruction");
//   stack:    a randomly chosen kernel process, a random depth within its
//             live stack, and a random bit of that word;
//   data:     a random word in the kernel data section (initialized or
//             BSS) and a random bit ("single-bit error per data word");
//   register: a random register of the CPU's system-register bank and a
//             random bit of its architectural width.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "inject/record.hpp"
#include "kir/image.hpp"
#include "workload/profiler.hpp"

namespace kfi::inject {

class TargetGenerator {
 public:
  TargetGenerator(const kir::Image& image,
                  std::vector<workload::HotFunction> hot_functions,
                  u32 sysreg_count, u64 seed);

  InjectionTarget next(CampaignKind kind);

  /// Pre-generate a whole campaign's worth of targets.
  std::vector<InjectionTarget> generate(CampaignKind kind, u32 count);

  /// System-register names are resolved by the campaign controller; the
  /// generator only picks indices.
  u32 sysreg_count() const { return sysreg_count_; }

 private:
  InjectionTarget next_code();
  InjectionTarget next_stack();
  InjectionTarget next_data();
  InjectionTarget next_register();

  /// Instruction start offsets within a function (decode walk on cisca,
  /// every 4 bytes on riscf); cached per function.
  const std::vector<u32>& insn_offsets(const workload::HotFunction& fn);

  const kir::Image& image_;
  u64 data_words_total_ = 0;  // words in the fixed data-injection window
  std::vector<workload::HotFunction> hot_;
  std::vector<u64> hot_weights_;  // cumulative entries for weighted pick
  u32 sysreg_count_;
  Rng rng_;
  std::vector<std::vector<u32>> offsets_cache_;
};

}  // namespace kfi::inject
