// TaintEngine: shadow-state taint tracking from flip site to failure.
//
// One shadow byte per register slot and a sparse shadow map over touched
// physical memory.  The injector seeds a mark at the exact flipped bit's
// byte; the CPU hooks then drive a conservative per-instruction dataflow:
// every value consumed by the current instruction folds its shadow depth
// into an accumulator, and every value the instruction produces inherits
// accumulator-depth + 1.  An untainted result *clears* the destination's
// shadow — that is the silent-overwrite (fail-silence) signal the paper
// could only infer from golden-run comparison.
//
// Shadow depth is the longest producer->consumer chain from the seed
// (saturating at 255), so the summary's max_depth extends the Fig. 16
// latency analysis with a propagation-distance axis.
//
// Strictly observational: no hook mutates simulator state, consumes
// entropy, or charges cycles, so result_fingerprint is bit-identical with
// tracing on or off (enforced by tests and bench/propagation_overhead).
#pragma once

#include <array>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "trace/sink.hpp"
#include "trace/summary.hpp"

namespace kfi::trace {

class TaintEngine final : public TraceSink {
 public:
  /// Upper bound on per-CPU register slots (cisca uses 28, riscf 136).
  static constexpr u32 kMaxRegSlots = 160;

  /// Maps a virtual address to a kernel data-object id (>= 0) or -1 when
  /// the address is not inside a named object.  Used to detect taint
  /// crossing into other subsystems' data; optional.
  using ObjectClassifier = std::function<i32(Addr)>;

  void set_object_classifier(ObjectClassifier fn) { classify_ = std::move(fn); }

  /// Clear all shadow state and counters (call at the start of each run).
  void reset();

  // --- Seeding (called by the injector at the flip site) ---------------
  void seed_register(RegSlot slot);
  /// Seed `len` bytes starting at physical `phys`; `va` names the site
  /// for object classification.
  void seed_memory(Addr va, u32 phys, u32 len);

  /// Digest the trace; valid until the next reset().
  PropagationSummary finalize() const;

  // --- Raw-state inspectors (unit tests) -------------------------------
  u32 reg_depth(RegSlot slot) const { return reg_.at(slot); }
  u32 mem_depth(u32 phys) const;
  u64 insns() const { return insns_; }
  u32 tainted_regs() const { return tainted_reg_count_; }
  u32 tainted_bytes() const { return static_cast<u32>(mem_.size()); }

  // --- TraceSink --------------------------------------------------------
  void on_insn_fetch(RegSlot pc_slot, Addr pc, u32 phys1, u32 len1, u32 phys2,
                     u32 len2) override;
  void on_reg_read(RegSlot slot) override;
  void on_reg_write(RegSlot slot) override;
  void on_reg_merge(RegSlot slot) override;
  void on_mem_read(Addr va, u32 phys, u32 len) override;
  void on_mem_write(Addr va, u32 phys, u32 len) override;
  void on_branch_decision() override;
  void on_priv_transition(PrivEvent ev) override;
  void on_ctx_save(RegSlot slot, u32 phys) override;
  void on_ctx_restore(RegSlot slot, u32 phys) override;
  void on_glue_reg_set(RegSlot slot) override;
  void on_glue_mem_set(u32 phys, u32 len) override;
  void on_glue_reg_copy(RegSlot dst, RegSlot src) override;
  void on_syscall_result(RegSlot slot) override;

 private:
  static constexpr u8 kMaxDepth = 255;

  bool any_live() const { return tainted_reg_count_ > 0 || !mem_.empty(); }
  u8 propagated_depth() const;
  void use(u8 depth);                      // tainted value consumed
  void set_reg(RegSlot slot, u8 depth);    // shadow store with bookkeeping
  void set_byte(u32 phys, u8 depth);
  u8 mem_fold(u32 phys, u32 len) const;    // max depth over a byte range
  void classify_write(Addr va);

  std::array<u8, kMaxRegSlots> reg_ = {};
  std::unordered_map<u32, u8> mem_;  // physical byte -> depth
  ObjectClassifier classify_;

  u8 acc_ = 0;      // taint depth consumed by the current instruction
  u64 insns_ = 0;   // instructions since reset

  bool seeded_ = false;
  u64 seed_insn_ = 0;
  i32 seed_object_ = -1;
  bool used_ = false;
  u64 first_use_insn_ = 0;
  u8 max_depth_ = 0;
  u32 tainted_reg_count_ = 0;
  u32 tainted_regs_peak_ = 0;
  u32 tainted_bytes_peak_ = 0;
  u64 tainted_reads_ = 0;
  u64 tainted_writes_ = 0;
  u64 tainted_branches_ = 0;
  u64 pc_tainted_insns_ = 0;
  u64 silent_overwrites_ = 0;
  bool syscall_result_tainted_ = false;
  u32 priv_transitions_ = 0;
  std::unordered_set<i32> crossed_objects_;
};

}  // namespace kfi::trace
