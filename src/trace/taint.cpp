#include "trace/taint.hpp"

#include <algorithm>

namespace kfi::trace {

void TaintEngine::reset() {
  reg_.fill(0);
  mem_.clear();
  acc_ = 0;
  insns_ = 0;
  seeded_ = false;
  seed_insn_ = 0;
  seed_object_ = -1;
  used_ = false;
  first_use_insn_ = 0;
  max_depth_ = 0;
  tainted_reg_count_ = 0;
  tainted_regs_peak_ = 0;
  tainted_bytes_peak_ = 0;
  tainted_reads_ = 0;
  tainted_writes_ = 0;
  tainted_branches_ = 0;
  pc_tainted_insns_ = 0;
  silent_overwrites_ = 0;
  syscall_result_tainted_ = false;
  priv_transitions_ = 0;
  crossed_objects_.clear();
}

void TaintEngine::seed_register(RegSlot slot) {
  if (slot >= kMaxRegSlots) return;  // untraced bank member
  set_reg(slot, std::max<u8>(reg_[slot], 1));
  seeded_ = true;
  // A deferred flip can re-arm after the first mark was overwritten;
  // dormancy is measured from the latest seed before first use.
  if (!used_) seed_insn_ = insns_;
}

void TaintEngine::seed_memory(Addr va, u32 phys, u32 len) {
  for (u32 i = 0; i < len; ++i) {
    set_byte(phys + i, std::max<u8>(static_cast<u8>(mem_depth(phys + i)), 1));
  }
  seeded_ = true;
  if (!used_) seed_insn_ = insns_;
  if (classify_ && seed_object_ < 0) seed_object_ = classify_(va);
}

u32 TaintEngine::mem_depth(u32 phys) const {
  const auto it = mem_.find(phys);
  return it == mem_.end() ? 0 : it->second;
}

u8 TaintEngine::propagated_depth() const {
  return acc_ >= kMaxDepth ? kMaxDepth : static_cast<u8>(acc_ + 1);
}

void TaintEngine::use(u8 depth) {
  ++tainted_reads_;
  if (!used_) {
    used_ = true;
    first_use_insn_ = insns_;
  }
  max_depth_ = std::max(max_depth_, depth);
}

void TaintEngine::set_reg(RegSlot slot, u8 depth) {
  if (slot >= kMaxRegSlots) return;
  const u8 old = reg_[slot];
  reg_[slot] = depth;
  if (old == 0 && depth != 0) {
    ++tainted_reg_count_;
    tainted_regs_peak_ = std::max(tainted_regs_peak_, tainted_reg_count_);
  } else if (old != 0 && depth == 0) {
    --tainted_reg_count_;
  }
}

void TaintEngine::set_byte(u32 phys, u8 depth) {
  if (depth == 0) {
    mem_.erase(phys);
  } else {
    mem_[phys] = depth;
    tainted_bytes_peak_ =
        std::max(tainted_bytes_peak_, static_cast<u32>(mem_.size()));
  }
}

u8 TaintEngine::mem_fold(u32 phys, u32 len) const {
  u8 d = 0;
  for (u32 i = 0; i < len; ++i) {
    d = std::max(d, static_cast<u8>(mem_depth(phys + i)));
  }
  return d;
}

void TaintEngine::classify_write(Addr va) {
  if (!classify_) return;
  const i32 id = classify_(va);
  if (id >= 0 && id != seed_object_) crossed_objects_.insert(id);
}

void TaintEngine::on_insn_fetch(RegSlot pc_slot, Addr /*pc*/, u32 phys1,
                                u32 len1, u32 phys2, u32 len2) {
  ++insns_;
  acc_ = 0;
  // Executing through a corrupted PC: every fetch is a consumption.
  if (pc_slot < kMaxRegSlots && reg_[pc_slot] != 0) {
    ++pc_tainted_insns_;
    use(reg_[pc_slot]);
    acc_ = std::max(acc_, reg_[pc_slot]);
  }
  // Corrupted instruction bytes taint everything the instruction does.
  const u8 d1 = mem_fold(phys1, len1);
  const u8 d2 = len2 != 0 ? mem_fold(phys2, len2) : 0;
  const u8 d = std::max(d1, d2);
  if (d != 0) {
    use(d);
    acc_ = std::max(acc_, d);
  }
}

void TaintEngine::on_reg_read(RegSlot slot) {
  if (slot >= kMaxRegSlots) return;
  const u8 d = reg_[slot];
  if (d == 0) return;
  use(d);
  acc_ = std::max(acc_, d);
}

void TaintEngine::on_reg_write(RegSlot slot) {
  if (slot >= kMaxRegSlots) return;
  if (acc_ != 0) {
    set_reg(slot, propagated_depth());
    ++tainted_writes_;
  } else if (reg_[slot] != 0) {
    set_reg(slot, 0);
    ++silent_overwrites_;
  }
}

void TaintEngine::on_reg_merge(RegSlot slot) {
  if (slot >= kMaxRegSlots) return;
  if (acc_ == 0) return;  // partial update: clean result clears nothing
  set_reg(slot, std::max(reg_[slot], propagated_depth()));
  ++tainted_writes_;
}

void TaintEngine::on_mem_read(Addr /*va*/, u32 phys, u32 len) {
  const u8 d = mem_fold(phys, len);
  if (d == 0) return;
  use(d);
  acc_ = std::max(acc_, d);
}

void TaintEngine::on_mem_write(Addr va, u32 phys, u32 len) {
  if (acc_ != 0) {
    const u8 d = propagated_depth();
    for (u32 i = 0; i < len; ++i) set_byte(phys + i, d);
    ++tainted_writes_;
    classify_write(va);
  } else {
    bool was_tainted = false;
    for (u32 i = 0; i < len; ++i) {
      if (mem_depth(phys + i) != 0) {
        was_tainted = true;
        mem_.erase(phys + i);
      }
    }
    if (was_tainted) ++silent_overwrites_;
  }
}

void TaintEngine::on_branch_decision() {
  if (acc_ != 0) ++tainted_branches_;
}

void TaintEngine::on_priv_transition(PrivEvent /*ev*/) {
  if (any_live()) ++priv_transitions_;
}

void TaintEngine::on_ctx_save(RegSlot slot, u32 phys) {
  // Pure data movement by the glue: shadow moves with the value, no use
  // is recorded and no depth is added.
  const u8 d = slot < kMaxRegSlots ? reg_[slot] : 0;
  for (u32 i = 0; i < 4; ++i) set_byte(phys + i, d);
}

void TaintEngine::on_ctx_restore(RegSlot slot, u32 phys) {
  set_reg(slot, mem_fold(phys, 4));
}

void TaintEngine::on_glue_reg_set(RegSlot slot) {
  if (slot >= kMaxRegSlots) return;
  if (reg_[slot] != 0) ++silent_overwrites_;
  set_reg(slot, 0);
}

void TaintEngine::on_glue_mem_set(u32 phys, u32 len) {
  bool was_tainted = false;
  for (u32 i = 0; i < len; ++i) {
    if (mem_depth(phys + i) != 0) {
      was_tainted = true;
      mem_.erase(phys + i);
    }
  }
  if (was_tainted) ++silent_overwrites_;
}

void TaintEngine::on_glue_reg_copy(RegSlot dst, RegSlot src) {
  const u8 d = src < kMaxRegSlots ? reg_[src] : 0;
  if (dst >= kMaxRegSlots) return;
  if (d == 0 && reg_[dst] != 0) ++silent_overwrites_;
  set_reg(dst, d);
}

void TaintEngine::on_syscall_result(RegSlot slot) {
  if (slot >= kMaxRegSlots) return;
  const u8 d = reg_[slot];
  if (d == 0) return;
  syscall_result_tainted_ = true;
  use(d);
}

PropagationSummary TaintEngine::finalize() const {
  PropagationSummary s;
  s.traced = true;
  s.seeded = seeded_;
  s.seed_insn = seed_insn_;
  s.used = used_;
  s.first_use_insn = first_use_insn_;
  s.first_use_latency = used_ ? first_use_insn_ - seed_insn_ : 0;
  s.max_depth = max_depth_;
  s.tainted_regs_peak = tainted_regs_peak_;
  s.tainted_bytes_peak = tainted_bytes_peak_;
  s.tainted_reads = tainted_reads_;
  s.tainted_writes = tainted_writes_;
  s.tainted_branches = tainted_branches_;
  s.pc_tainted_insns = pc_tainted_insns_;
  s.objects_crossed = static_cast<u32>(crossed_objects_.size());
  s.silent_overwrites = silent_overwrites_;
  s.syscall_result_tainted = syscall_result_tainted_;
  s.priv_transitions = priv_transitions_;
  s.live_regs_at_end = tainted_reg_count_;
  s.live_bytes_at_end = static_cast<u32>(mem_.size());
  s.live_at_end = any_live();
  return s;
}

}  // namespace kfi::trace
