// TraceSink: the hook interface the CPU models and the machine glue drive
// while an error-propagation trace is active.
//
// The paper could only observe *outcomes* — crash cause, cycles-to-crash,
// fail-silence violations (Sections 4-5).  A simulated processor can watch
// the corrupted value itself move: every register/memory read and write,
// every ALU combine, every branch decision, and every privilege transition
// passes through one of these hooks, so a shadow-state engine (taint.hpp)
// can follow the flipped bit from injection site to failure.
//
// Design constraints (DESIGN.md "Error-propagation tracing"):
//  - Strictly observational.  Implementations must not touch simulator
//    state; every hook receives values, never references into the machine.
//  - Null-sink fast path.  CPUs guard every call site with
//    `if (sink_ != nullptr)`, exactly like the existing debug-access
//    recording guard, so tracing-off costs one predictable branch.
//  - Arch-neutral.  Registers are named by dense per-CPU `RegSlot` ids
//    (see cisca/regs.hpp and riscf/regs.hpp for the two mappings); memory
//    is named by physical byte address, which is stable across the MMU
//    and shared by CPU accesses and machine-glue context frames.
#pragma once

#include "common/types.hpp"

namespace kfi::trace {

/// Dense per-CPU register identifier for shadow state.  Each CPU model
/// publishes its own slot table; slots are stable within an architecture.
using RegSlot = u16;

/// "No such register" — returned by CpuCore::sysreg_slot for banks that
/// do not participate in tracing.
constexpr RegSlot kNoSlot = 0xFFFFu;

/// Privilege-boundary events reported by the machine glue.
enum class PrivEvent : u8 {
  kSyscallEntry = 0,  // user -> kernel via system call
  kSyscallReturn,     // kernel -> user, return value crosses the boundary
  kIsrEntry,          // interrupt/exception entry (context saved)
  kIsrReturn,         // interrupt return (context restored)
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // --- CPU-model hooks -------------------------------------------------
  // One instruction boundary.  `pc_slot` is the CPU's program-counter
  // slot; `phys1/len1` cover the fetched bytes in their first physical
  // page and `phys2/len2` the remainder when a variable-length fetch
  // straddles a page (len2 == 0 otherwise).
  virtual void on_insn_fetch(RegSlot pc_slot, Addr pc, u32 phys1, u32 len1,
                             u32 phys2, u32 len2) = 0;
  // A register value was consumed (operand read, address formation,
  // condition evaluation).
  virtual void on_reg_read(RegSlot slot) = 0;
  // A register was fully overwritten with the current instruction's
  // result (clean result clears its shadow — the silent-overwrite case).
  virtual void on_reg_write(RegSlot slot) = 0;
  // A register was partially updated (flag-setting ops preserve bits);
  // shadow is unioned, never cleared.
  virtual void on_reg_merge(RegSlot slot) = 0;
  // Memory traffic, post-translation; `va` is kept for object naming.
  virtual void on_mem_read(Addr va, u32 phys, u32 len) = 0;
  virtual void on_mem_write(Addr va, u32 phys, u32 len) = 0;
  // A conditional control-flow decision was taken this instruction.
  virtual void on_branch_decision() = 0;

  // --- Machine-glue hooks ----------------------------------------------
  // The glue's context save/restore and syscall framing move register
  // values through memory with direct physical writes that bypass the CPU
  // funnels, so the machine reports them explicitly.
  virtual void on_priv_transition(PrivEvent ev) = 0;
  // One 32-bit register value saved to / restored from a context frame.
  virtual void on_ctx_save(RegSlot slot, u32 phys) = 0;
  virtual void on_ctx_restore(RegSlot slot, u32 phys) = 0;
  // Glue overwrote a register / memory word with a harness-fresh value.
  virtual void on_glue_reg_set(RegSlot slot) = 0;
  virtual void on_glue_mem_set(u32 phys, u32 len) = 0;
  // Glue copied one register into another (e.g. PC -> SRR0 on entry).
  virtual void on_glue_reg_copy(RegSlot dst, RegSlot src) = 0;
  // A syscall return value is about to cross back to the workload: taint
  // here is direct fail-silence evidence (corrupted state escaping).
  virtual void on_syscall_result(RegSlot slot) = 0;
};

}  // namespace kfi::trace
