// PropagationSummary: the per-injection digest of one taint trace.
//
// Extends the paper's outcome-level observables (crash latency, Fig. 16;
// fail-silence violations, Tables 5/6) with the propagation path between
// them: how long the corrupted value sat dormant, how far and wide it
// spread, and whether it was still live — or already silently overwritten
// — when the run ended.  Plain data so inject/record.hpp can embed it and
// the journal can serialize it.
#pragma once

#include "common/types.hpp"

namespace kfi::trace {

struct PropagationSummary {
  bool traced = false;   // a trace sink was attached for this run
  bool seeded = false;   // the flip site was marked (activation happened)

  // Instruction indices are counted from run start by the taint engine.
  u64 seed_insn = 0;       // instruction count when the mark was planted
  bool used = false;       // the corrupted value was consumed at least once
  u64 first_use_insn = 0;  // instruction count at first consumption
  u64 first_use_latency = 0;  // first_use_insn - seed_insn (dormancy)

  u32 max_depth = 0;  // longest producer->consumer chain observed (hops)

  // High-water marks of simultaneously-tainted state.
  u32 tainted_regs_peak = 0;
  u32 tainted_bytes_peak = 0;

  u64 tainted_reads = 0;     // consumptions of tainted values
  u64 tainted_writes = 0;    // propagating writes
  u64 tainted_branches = 0;  // control-flow decisions on tainted state
  u64 pc_tainted_insns = 0;  // instructions fetched with a tainted PC

  // Distinct named kernel data objects (kir symbol table) other than the
  // seed's own object that received tainted writes — the "crossed into
  // another subsystem's data" signal.
  u32 objects_crossed = 0;

  u64 silent_overwrites = 0;  // tainted locations overwritten clean

  // Fail-silence evidence: a tainted syscall return value crossed the
  // kernel boundary toward the workload.
  bool syscall_result_tainted = false;
  u32 priv_transitions = 0;  // privilege crossings while taint was live

  // State at end of run (crash or completion).
  bool live_at_end = false;
  u32 live_regs_at_end = 0;
  u32 live_bytes_at_end = 0;
};

}  // namespace kfi::trace
