// Page-granular MMU shared by both simulated processors.
//
// Translation failures do not throw: they return a MemFault that the CPU
// models convert into their architectural exceptions — a page fault on the
// P4-like machine (classified by the Linux-like kernel as "NULL pointer"
// vs. "bad paging"), a DSI / "kernel access of bad area" on the G4-like
// machine, or a machine check when address translation is disabled via the
// MSR (one of the paper's observed G4 register-error effects).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "common/types.hpp"
#include "mem/phys_mem.hpp"

namespace kfi::mem {

// kPageSize / kPageShift live in phys_mem.hpp, next to the per-page write
// versions that share the same geometry.

enum class Access { kRead, kWrite, kExecute };

enum class FaultKind {
  kUnmapped,      // no translation for the page
  kNoRead,        // mapped but read permission missing
  kNoWrite,       // mapped but write-protected (e.g. kernel text)
  kNoExecute,     // mapped but not executable (e.g. data, stack)
  kBusRegion,     // processor-local bus / device region: raises machine check
  kTranslationOff // address translation disabled (MSR.IR/DR cleared)
};

struct MemFault {
  FaultKind kind;
  Addr addr;
  Access access;
};

struct PagePerms {
  bool read = false;
  bool write = false;
  bool execute = false;
  /// Region sits on the simulated processor-local bus; any access raises a
  /// machine-check-class fault (used for the G4 machine-check category).
  bool bus = false;
};

struct TranslateResult {
  /// Valid physical address when fault is empty.
  u32 phys = 0;
  std::optional<MemFault> fault;

  bool ok() const { return !fault.has_value(); }
};

class Mmu {
 public:
  /// Map `pages` consecutive virtual pages starting at `vaddr` (page
  /// aligned) to consecutive physical pages starting at `paddr`.
  void map(Addr vaddr, u32 paddr, u32 pages, PagePerms perms);

  /// Remove the translation for the pages (used for guard pages).
  void unmap(Addr vaddr, u32 pages);

  /// Translate one access of `len` bytes (len in {1,2,4}).  An access that
  /// crosses a page boundary is checked on both pages.
  TranslateResult translate(Addr vaddr, u32 len, Access access) const;

  bool is_mapped(Addr vaddr) const;

  /// Look up the perms of the page containing vaddr (if mapped).
  std::optional<PagePerms> perms_of(Addr vaddr) const;

 private:
  struct Entry {
    u32 pfn;  // physical frame number
    PagePerms perms;
  };

  std::unordered_map<u32, Entry> pages_;  // vpn -> entry
};

}  // namespace kfi::mem
