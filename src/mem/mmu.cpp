#include "mem/mmu.hpp"

#include "common/error.hpp"

namespace kfi::mem {

void Mmu::map(Addr vaddr, u32 paddr, u32 pages, PagePerms perms) {
  KFI_CHECK((vaddr & (kPageSize - 1)) == 0, "map: vaddr not page aligned");
  KFI_CHECK((paddr & (kPageSize - 1)) == 0, "map: paddr not page aligned");
  for (u32 i = 0; i < pages; ++i) {
    pages_[(vaddr >> kPageShift) + i] = Entry{(paddr >> kPageShift) + i, perms};
  }
}

void Mmu::unmap(Addr vaddr, u32 pages) {
  KFI_CHECK((vaddr & (kPageSize - 1)) == 0, "unmap: vaddr not page aligned");
  for (u32 i = 0; i < pages; ++i) pages_.erase((vaddr >> kPageShift) + i);
}

namespace {

std::optional<MemFault> perm_fault(const PagePerms& p, Addr vaddr,
                                   Access access) {
  if (p.bus) return MemFault{FaultKind::kBusRegion, vaddr, access};
  switch (access) {
    case Access::kRead:
      if (!p.read) return MemFault{FaultKind::kNoRead, vaddr, access};
      break;
    case Access::kWrite:
      if (!p.write) return MemFault{FaultKind::kNoWrite, vaddr, access};
      break;
    case Access::kExecute:
      if (!p.execute) return MemFault{FaultKind::kNoExecute, vaddr, access};
      break;
  }
  return std::nullopt;
}

}  // namespace

TranslateResult Mmu::translate(Addr vaddr, u32 len, Access access) const {
  TranslateResult result;
  const auto it = pages_.find(vaddr >> kPageShift);
  if (it == pages_.end()) {
    result.fault = MemFault{FaultKind::kUnmapped, vaddr, access};
    return result;
  }
  if (auto fault = perm_fault(it->second.perms, vaddr, access)) {
    result.fault = fault;
    return result;
  }
  const Addr last = vaddr + len - 1;
  if ((last >> kPageShift) != (vaddr >> kPageShift)) {
    const auto it2 = pages_.find(last >> kPageShift);
    if (it2 == pages_.end()) {
      result.fault = MemFault{FaultKind::kUnmapped, last, access};
      return result;
    }
    if (auto fault = perm_fault(it2->second.perms, last, access)) {
      result.fault = fault;
      return result;
    }
    // Split accesses across non-contiguous frames are not needed by either
    // simulated kernel; require physical contiguity for simplicity.
    KFI_CHECK(it2->second.pfn == it->second.pfn + 1,
              "page-crossing access to non-adjacent frames");
  }
  result.phys = (it->second.pfn << kPageShift) | (vaddr & (kPageSize - 1));
  return result;
}

bool Mmu::is_mapped(Addr vaddr) const {
  return pages_.contains(vaddr >> kPageShift);
}

std::optional<PagePerms> Mmu::perms_of(Addr vaddr) const {
  const auto it = pages_.find(vaddr >> kPageShift);
  if (it == pages_.end()) return std::nullopt;
  return it->second.perms;
}

}  // namespace kfi::mem
