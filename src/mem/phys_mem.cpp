#include "mem/phys_mem.hpp"

#include <cstring>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace kfi::mem {

PhysicalMemory::PhysicalMemory(u32 size_bytes) : bytes_(size_bytes, 0) {
  KFI_CHECK(size_bytes > 0, "physical memory must be non-empty");
}

void PhysicalMemory::check_range(u32 pa, u32 len) const {
  KFI_CHECK(pa + len >= pa && pa + len <= bytes_.size(),
            "physical access out of range");
}

u8 PhysicalMemory::read8(u32 pa) const {
  check_range(pa, 1);
  return bytes_[pa];
}

void PhysicalMemory::write8(u32 pa, u8 value) {
  check_range(pa, 1);
  bytes_[pa] = value;
}

u16 PhysicalMemory::read16(u32 pa, Endian endian) const {
  check_range(pa, 2);
  if (endian == Endian::kLittle) {
    return static_cast<u16>(bytes_[pa] | (bytes_[pa + 1] << 8));
  }
  return static_cast<u16>((bytes_[pa] << 8) | bytes_[pa + 1]);
}

void PhysicalMemory::write16(u32 pa, u16 value, Endian endian) {
  check_range(pa, 2);
  if (endian == Endian::kLittle) {
    bytes_[pa] = static_cast<u8>(value);
    bytes_[pa + 1] = static_cast<u8>(value >> 8);
  } else {
    bytes_[pa] = static_cast<u8>(value >> 8);
    bytes_[pa + 1] = static_cast<u8>(value);
  }
}

u32 PhysicalMemory::read32(u32 pa, Endian endian) const {
  check_range(pa, 4);
  if (endian == Endian::kLittle) {
    return static_cast<u32>(bytes_[pa]) | (static_cast<u32>(bytes_[pa + 1]) << 8) |
           (static_cast<u32>(bytes_[pa + 2]) << 16) |
           (static_cast<u32>(bytes_[pa + 3]) << 24);
  }
  return (static_cast<u32>(bytes_[pa]) << 24) |
         (static_cast<u32>(bytes_[pa + 1]) << 16) |
         (static_cast<u32>(bytes_[pa + 2]) << 8) | static_cast<u32>(bytes_[pa + 3]);
}

void PhysicalMemory::write32(u32 pa, u32 value, Endian endian) {
  check_range(pa, 4);
  if (endian == Endian::kLittle) {
    bytes_[pa] = static_cast<u8>(value);
    bytes_[pa + 1] = static_cast<u8>(value >> 8);
    bytes_[pa + 2] = static_cast<u8>(value >> 16);
    bytes_[pa + 3] = static_cast<u8>(value >> 24);
  } else {
    bytes_[pa] = static_cast<u8>(value >> 24);
    bytes_[pa + 1] = static_cast<u8>(value >> 16);
    bytes_[pa + 2] = static_cast<u8>(value >> 8);
    bytes_[pa + 3] = static_cast<u8>(value);
  }
}

void PhysicalMemory::write_bytes(u32 pa, const u8* data, u32 len) {
  check_range(pa, len);
  std::memcpy(bytes_.data() + pa, data, len);
}

void PhysicalMemory::read_bytes(u32 pa, u8* out, u32 len) const {
  check_range(pa, len);
  std::memcpy(out, bytes_.data() + pa, len);
}

void PhysicalMemory::flip_bit(u32 pa, u32 bit) {
  check_range(pa, 1);
  KFI_CHECK(bit < 8, "flip_bit: bit index within a byte");
  bytes_[pa] = kfi::flip_bit(bytes_[pa], bit);
}

void PhysicalMemory::restore(const std::vector<u8>& snap) {
  KFI_CHECK(snap.size() == bytes_.size(), "snapshot size mismatch");
  bytes_ = snap;
}

}  // namespace kfi::mem
