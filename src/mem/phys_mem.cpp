#include "mem/phys_mem.hpp"

#include <cstring>

#include "common/bits.hpp"

namespace kfi::mem {

PhysicalMemory::PhysicalMemory(u32 size_bytes)
    : bytes_(size_bytes, 0),
      page_version_((size_bytes + kPageSize - 1) / kPageSize, 0) {
  KFI_CHECK(size_bytes > 0, "physical memory must be non-empty");
}

void PhysicalMemory::write_bytes(u32 pa, const u8* data, u32 len) {
  check_range(pa, len);
  if (len == 0) return;
  for (u32 page = pa >> kPageShift; page <= (pa + len - 1) >> kPageShift;
       ++page) {
    ++page_version_[page];
  }
  std::memcpy(bytes_.data() + pa, data, len);
}

void PhysicalMemory::flip_bit(u32 pa, u32 bit) {
  check_range(pa, 1);
  KFI_CHECK(bit < 8, "flip_bit: bit index within a byte");
  mark_written(pa, 1);
  bytes_[pa] = kfi::flip_bit(bytes_[pa], bit);
}

PhysicalMemory::SnapshotPtr PhysicalMemory::snapshot_shared() {
  auto snap = std::make_shared<Snapshot>(bytes_);
  baseline_ = snap;
  baseline_version_ = page_version_;
  return snap;
}

void PhysicalMemory::restore(const SnapshotPtr& snap) {
  KFI_CHECK(snap && snap->size() == bytes_.size(), "snapshot size mismatch");
  ++restores_;
  if (snap != baseline_) {
    // Unknown snapshot: no dirty information relative to it — full copy,
    // and adopt it as the new baseline.
    full_copy(snap);
    return;
  }
  u32 copied = 0;
  const u8* src = snap->data();
  for (u32 page = 0; page < num_pages(); ++page) {
    if (page_version_[page] == baseline_version_[page]) continue;
    const u32 off = page << kPageShift;
    std::memcpy(bytes_.data() + off, src + off, page_bytes(page));
    // The page's contents just changed again, so its version must move —
    // a cached decode of the dirtied bytes is stale after the reboot.
    ++page_version_[page];
    baseline_version_[page] = page_version_[page];
    ++copied;
  }
  restore_pages_copied_ += copied;
  last_restore_pages_ = copied;
}

void PhysicalMemory::restore_full(const SnapshotPtr& snap) {
  KFI_CHECK(snap && snap->size() == bytes_.size(), "snapshot size mismatch");
  ++restores_;
  full_copy(snap);
}

void PhysicalMemory::full_copy(const SnapshotPtr& snap) {
  std::memcpy(bytes_.data(), snap->data(), bytes_.size());
  for (auto& v : page_version_) ++v;
  baseline_ = snap;
  baseline_version_ = page_version_;
  restore_pages_copied_ += num_pages();
  last_restore_pages_ = num_pages();
}

void PhysicalMemory::restore(const std::vector<u8>& snap) {
  KFI_CHECK(snap.size() == bytes_.size(), "snapshot size mismatch");
  bytes_ = snap;
  for (auto& v : page_version_) ++v;
  // A by-value restore has no identity to track, so the shared baseline
  // (if any) no longer matches memory.
  baseline_.reset();
  baseline_version_.clear();
}

}  // namespace kfi::mem
