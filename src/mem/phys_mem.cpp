#include "mem/phys_mem.hpp"

#include <cstring>

#include "common/bits.hpp"

namespace kfi::mem {

namespace {

/// Shared read source for never-written pages; immutable, so every
/// PhysicalMemory instance (and thread) can alias it.
const u8 kZeroPage[kPageSize] = {};

}  // namespace

PhysicalMemory::PhysicalMemory(u32 size_bytes)
    : size_(size_bytes),
      read_pages_((size_bytes + kPageSize - 1) / kPageSize, kZeroPage),
      write_pages_((size_bytes + kPageSize - 1) / kPageSize, nullptr),
      storage_((size_bytes + kPageSize - 1) / kPageSize),
      page_version_((size_bytes + kPageSize - 1) / kPageSize, 0) {
  KFI_CHECK(size_bytes > 0, "physical memory must be non-empty");
}

u8* PhysicalMemory::materialize(u32 page) {
  if (!storage_[page]) {
    storage_[page] = std::make_unique<u8[]>(kPageSize);
  }
  u8* p = storage_[page].get();
  const u32 valid = page_bytes(page);
  std::memcpy(p, read_pages_[page], valid);
  if (valid < kPageSize) std::memset(p + valid, 0, kPageSize - valid);
  read_pages_[page] = p;
  write_pages_[page] = p;
  return p;
}

void PhysicalMemory::set_cow_enabled(bool on) {
  cow_ = on;
  if (!on) {
    for (u32 page = 0; page < num_pages(); ++page) {
      if (write_pages_[page] == nullptr) materialize(page);
    }
  }
}

u32 PhysicalMemory::private_pages() const {
  u32 n = 0;
  for (const auto& s : storage_) n += s != nullptr ? 1 : 0;
  return n;
}

u16 PhysicalMemory::read_split16(u32 pa, Endian endian) const {
  const u8 b0 = read_pages_[pa >> kPageShift][pa & kPageMask];
  const u8 b1 = read_pages_[(pa + 1) >> kPageShift][(pa + 1) & kPageMask];
  if (endian == Endian::kLittle) return static_cast<u16>(b0 | (b1 << 8));
  return static_cast<u16>((b0 << 8) | b1);
}

u32 PhysicalMemory::read_split32(u32 pa, Endian endian) const {
  u8 b[4];
  for (u32 i = 0; i < 4; ++i) {
    b[i] = read_pages_[(pa + i) >> kPageShift][(pa + i) & kPageMask];
  }
  if (endian == Endian::kLittle) {
    return static_cast<u32>(b[0]) | (static_cast<u32>(b[1]) << 8) |
           (static_cast<u32>(b[2]) << 16) | (static_cast<u32>(b[3]) << 24);
  }
  return (static_cast<u32>(b[0]) << 24) | (static_cast<u32>(b[1]) << 16) |
         (static_cast<u32>(b[2]) << 8) | static_cast<u32>(b[3]);
}

void PhysicalMemory::write_split16(u32 pa, u16 value, Endian endian) {
  const u8 hi = static_cast<u8>(value >> 8);
  const u8 lo = static_cast<u8>(value);
  const u8 b0 = endian == Endian::kLittle ? lo : hi;
  const u8 b1 = endian == Endian::kLittle ? hi : lo;
  writable(pa >> kPageShift)[pa & kPageMask] = b0;
  writable((pa + 1) >> kPageShift)[(pa + 1) & kPageMask] = b1;
}

void PhysicalMemory::write_split32(u32 pa, u32 value, Endian endian) {
  u8 b[4];
  if (endian == Endian::kLittle) {
    for (u32 i = 0; i < 4; ++i) b[i] = static_cast<u8>(value >> (8 * i));
  } else {
    for (u32 i = 0; i < 4; ++i) b[i] = static_cast<u8>(value >> (24 - 8 * i));
  }
  for (u32 i = 0; i < 4; ++i) {
    writable((pa + i) >> kPageShift)[(pa + i) & kPageMask] = b[i];
  }
}

void PhysicalMemory::write_bytes(u32 pa, const u8* data, u32 len) {
  check_range(pa, len);
  if (len == 0) return;
  u32 off = pa;
  u32 remain = len;
  const u8* src = data;
  while (remain > 0) {
    const u32 page = off >> kPageShift;
    const u32 in_page = kPageSize - (off & kPageMask);
    const u32 chunk = remain < in_page ? remain : in_page;
    ++page_version_[page];
    std::memcpy(writable(page) + (off & kPageMask), src, chunk);
    off += chunk;
    src += chunk;
    remain -= chunk;
  }
}

void PhysicalMemory::read_bytes(u32 pa, u8* out, u32 len) const {
  check_range(pa, len);
  u32 off = pa;
  u32 remain = len;
  u8* dst = out;
  while (remain > 0) {
    const u32 in_page = kPageSize - (off & kPageMask);
    const u32 chunk = remain < in_page ? remain : in_page;
    std::memcpy(dst, read_pages_[off >> kPageShift] + (off & kPageMask),
                chunk);
    off += chunk;
    dst += chunk;
    remain -= chunk;
  }
}

void PhysicalMemory::flip_bit(u32 pa, u32 bit) {
  check_range(pa, 1);
  KFI_CHECK(bit < 8, "flip_bit: bit index within a byte");
  mark_written(pa, 1);
  u8* p = writable(pa >> kPageShift) + (pa & kPageMask);
  *p = kfi::flip_bit(*p, bit);
}

PhysicalMemory::SnapshotPtr PhysicalMemory::snapshot_shared() {
  auto snap = std::make_shared<Snapshot>(size_, 0);
  read_bytes(0, snap->data(), size_);
  baseline_ = snap;
  baseline_version_ = page_version_;
  // The snapshot holds exactly what every page holds, so aliasing it
  // changes nothing observable — but it lets private storage go.
  if (cow_) adopt_all(baseline_, /*release_storage=*/true);
  return snap;
}

void PhysicalMemory::adopt_all(const SnapshotPtr& snap, bool release_storage) {
  const u8* src = snap->data();
  for (u32 page = 0; page < num_pages(); ++page) {
    read_pages_[page] = src + (page << kPageShift);
    write_pages_[page] = nullptr;
    if (release_storage) storage_[page].reset();
  }
}

void PhysicalMemory::restore(const SnapshotPtr& snap) {
  KFI_CHECK(snap && snap->size() == size_, "snapshot size mismatch");
  ++restores_;
  if (snap != baseline_) {
    // Unknown snapshot: no dirty information relative to it — full
    // copy/adoption, and adopt it as the new baseline.
    full_copy(snap);
    return;
  }
  u32 copied = 0;
  const u8* src = snap->data();
  for (u32 page = 0; page < num_pages(); ++page) {
    if (page_version_[page] == baseline_version_[page]) continue;
    const u32 off = page << kPageShift;
    if (cow_) {
      // Re-point at the baseline instead of copying; keep the private
      // buffer for the next materialization of this (evidently hot) page.
      read_pages_[page] = src + off;
      write_pages_[page] = nullptr;
    } else {
      std::memcpy(writable(page), src + off, page_bytes(page));
    }
    // The page's contents just changed again, so its version must move —
    // a cached decode of the dirtied bytes is stale after the reboot.
    ++page_version_[page];
    baseline_version_[page] = page_version_[page];
    ++copied;
  }
  restore_pages_copied_ += copied;
  last_restore_pages_ = copied;
}

void PhysicalMemory::restore_full(const SnapshotPtr& snap) {
  KFI_CHECK(snap && snap->size() == size_, "snapshot size mismatch");
  ++restores_;
  full_copy(snap);
}

void PhysicalMemory::full_copy(const SnapshotPtr& snap) {
  if (cow_) {
    adopt_all(snap, /*release_storage=*/true);
  } else {
    const u8* src = snap->data();
    for (u32 page = 0; page < num_pages(); ++page) {
      std::memcpy(writable(page), src + (page << kPageShift),
                  page_bytes(page));
    }
  }
  for (auto& v : page_version_) ++v;
  baseline_ = snap;
  baseline_version_ = page_version_;
  restore_pages_copied_ += num_pages();
  last_restore_pages_ = num_pages();
}

std::vector<u8> PhysicalMemory::snapshot() const {
  std::vector<u8> out(size_, 0);
  read_bytes(0, out.data(), size_);
  return out;
}

void PhysicalMemory::restore(const std::vector<u8>& snap) {
  KFI_CHECK(snap.size() == size_, "snapshot size mismatch");
  for (u32 page = 0; page < num_pages(); ++page) {
    std::memcpy(writable(page), snap.data() + (page << kPageShift),
                page_bytes(page));
  }
  for (auto& v : page_version_) ++v;
  // A by-value restore has no identity to track, so the shared baseline
  // (if any) no longer matches memory.
  baseline_.reset();
  baseline_version_.clear();
}

}  // namespace kfi::mem
