#include "mem/address_space.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace kfi::mem {

AddressSpace::AddressSpace(u32 phys_bytes, Endian endian)
    : phys_(phys_bytes), endian_(endian) {}

const Region& AddressSpace::map_region(const std::string& name, Addr base,
                                       u32 size, PagePerms perms) {
  KFI_CHECK((base & (kPageSize - 1)) == 0, "region base not page aligned");
  const u32 pages = (size + kPageSize - 1) / kPageSize;
  KFI_CHECK(pages > 0, "empty region");
  const u32 paddr = next_frame_ << kPageShift;
  KFI_CHECK((next_frame_ + pages) << kPageShift <= phys_.size(),
            "out of physical memory mapping region " + name);
  next_frame_ += pages;
  mmu_.map(base, paddr, pages, perms);
  regions_.push_back(Region{name, base, pages * kPageSize, perms});
  return regions_.back();
}

const Region& AddressSpace::note_unmapped(const std::string& name, Addr base,
                                          u32 size) {
  regions_.push_back(Region{name, base, size, PagePerms{}});
  return regions_.back();
}

u32 AddressSpace::must_translate(Addr va, u32 len) const {
  // Raw accessors are for trusted host-side code (loader, injector, kernel
  // glue); they bypass permissions but still require a mapping.
  const auto it = mmu_.perms_of(va);
  if (!it.has_value()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "host access to unmapped va 0x%08x", va);
    KFI_CHECK(false, buf);
  }
  const auto res = mmu_.translate(va, len, Access::kRead);
  if (res.ok()) return res.phys;
  // Mapped but e.g. execute-only: recompute physical by hand.
  const auto res2 = mmu_.translate(va & ~(kPageSize - 1), 1, Access::kRead);
  if (res2.ok()) return res2.phys | (va & (kPageSize - 1));
  // Fall back: page exists, permissions deny read — translate manually.
  KFI_CHECK(false, "host access to unreadable page");
  return 0;
}

u8 AddressSpace::vread8(Addr va) const { return phys_.read8(must_translate(va, 1)); }
void AddressSpace::vwrite8(Addr va, u8 v) { phys_.write8(must_translate(va, 1), v); }
u16 AddressSpace::vread16(Addr va) const {
  return phys_.read16(must_translate(va, 2), endian_);
}
void AddressSpace::vwrite16(Addr va, u16 v) {
  phys_.write16(must_translate(va, 2), v, endian_);
}
u32 AddressSpace::vread32(Addr va) const {
  return phys_.read32(must_translate(va, 4), endian_);
}
void AddressSpace::vwrite32(Addr va, u32 v) {
  phys_.write32(must_translate(va, 4), v, endian_);
}

void AddressSpace::vwrite_bytes(Addr va, const u8* data, u32 len) {
  for (u32 i = 0; i < len; ++i) vwrite8(va + i, data[i]);
}

void AddressSpace::vread_bytes(Addr va, u8* out, u32 len) const {
  for (u32 i = 0; i < len; ++i) out[i] = vread8(va + i);
}

void AddressSpace::vflip_bit(Addr va, u32 bit) {
  phys_.flip_bit(must_translate(va, 1), bit);
}

const Region* AddressSpace::region_of(Addr va) const {
  for (const auto& r : regions_) {
    if (r.contains(va)) return &r;
  }
  return nullptr;
}

const Region* AddressSpace::region_named(const std::string& name) const {
  for (const auto& r : regions_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

}  // namespace kfi::mem
