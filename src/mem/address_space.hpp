// Kernel address-space construction.
//
// Mirrors the Linux 2.4 layout the paper injected into: the kernel lives
// high (base 0xC0000000), with a read-only-executable text section, a
// writable data section (initialized data + BSS), one fixed-size kernel
// stack per process with an unmapped guard page below it, and the page at
// virtual address 0 permanently unmapped so that NULL-pointer dereferences
// fault (the single largest crash category in the study).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/mmu.hpp"
#include "mem/phys_mem.hpp"

namespace kfi::mem {

/// The Linux-like kernel virtual base used by both simulated machines.
constexpr Addr kKernelBase = 0xC0000000u;

struct Region {
  std::string name;
  Addr base = 0;
  u32 size = 0;  // bytes, page multiple
  PagePerms perms;

  bool contains(Addr a) const { return a >= base && a - base < size; }
};

/// Owns the physical memory, the MMU, and the region table for one
/// simulated machine.
class AddressSpace {
 public:
  AddressSpace(u32 phys_bytes, Endian endian);

  /// Allocate physical frames and map `size` bytes (rounded up to pages) at
  /// virtual `base` with `perms`.  Returns the region record.
  const Region& map_region(const std::string& name, Addr base, u32 size,
                           PagePerms perms);

  /// Record an intentionally unmapped region (guard page, NULL page) so
  /// diagnostics can name it.
  const Region& note_unmapped(const std::string& name, Addr base, u32 size);

  /// Virtual-address accessors; callers must have translated successfully.
  u8 vread8(Addr va) const;
  void vwrite8(Addr va, u8 value);
  u16 vread16(Addr va) const;
  void vwrite16(Addr va, u16 value);
  u32 vread32(Addr va) const;
  void vwrite32(Addr va, u32 value);
  void vwrite_bytes(Addr va, const u8* data, u32 len);
  void vread_bytes(Addr va, u8* out, u32 len) const;

  /// Flip one bit of the byte at virtual address `va` (bit 0..7).
  void vflip_bit(Addr va, u32 bit);

  /// Translation including permission checks, for CPU models.
  TranslateResult translate(Addr va, u32 len, Access access) const {
    return mmu_.translate(va, len, access);
  }

  /// Which named region (mapped or noted-unmapped) contains va, if any.
  const Region* region_of(Addr va) const;
  const Region* region_named(const std::string& name) const;
  const std::vector<Region>& regions() const { return regions_; }

  PhysicalMemory& phys() { return phys_; }
  const PhysicalMemory& phys() const { return phys_; }
  Mmu& mmu() { return mmu_; }
  const Mmu& mmu() const { return mmu_; }
  Endian endian() const { return endian_; }

 private:
  u32 must_translate(Addr va, u32 len) const;

  PhysicalMemory phys_;
  Mmu mmu_;
  Endian endian_;
  std::vector<Region> regions_;
  u32 next_frame_ = 1;  // frame 0 reserved so phys 0 is never handed out
};

}  // namespace kfi::mem
