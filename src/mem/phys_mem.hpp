// Simulated physical memory.
//
// A flat byte array standing in for the 256 MB of RAM on the paper's target
// machines (we default much smaller; the miniature kernel needs well under
// 2 MB).  Byte-addressed; multi-byte accessors exist in both endiannesses
// because the P4-like machine (cisca) is little-endian while the G4-like
// machine (riscf) is big-endian, exactly as the real processors were.
//
// Snapshots of physical memory are the simulation's substitute for the
// paper's "reboot the target system" step: restoring a snapshot returns the
// machine to a known-good state in microseconds instead of minutes.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace kfi::mem {

enum class Endian { kLittle, kBig };

class PhysicalMemory {
 public:
  explicit PhysicalMemory(u32 size_bytes);

  u32 size() const { return static_cast<u32>(bytes_.size()); }

  u8 read8(u32 pa) const;
  void write8(u32 pa, u8 value);

  u16 read16(u32 pa, Endian endian) const;
  void write16(u32 pa, u16 value, Endian endian);

  u32 read32(u32 pa, Endian endian) const;
  void write32(u32 pa, u32 value, Endian endian);

  /// Bulk copy helpers for loading kernel images.
  void write_bytes(u32 pa, const u8* data, u32 len);
  void read_bytes(u32 pa, u8* out, u32 len) const;

  /// Flip a single bit of physical memory (the paper's error model).
  void flip_bit(u32 pa, u32 bit);

  /// Whole-memory snapshot / restore ("reboot").
  std::vector<u8> snapshot() const { return bytes_; }
  void restore(const std::vector<u8>& snap);

 private:
  void check_range(u32 pa, u32 len) const;

  std::vector<u8> bytes_;
};

}  // namespace kfi::mem
