// Simulated physical memory.
//
// A flat byte array standing in for the 256 MB of RAM on the paper's target
// machines (we default much smaller; the miniature kernel needs well under
// 2 MB).  Byte-addressed; multi-byte accessors exist in both endiannesses
// because the P4-like machine (cisca) is little-endian while the G4-like
// machine (riscf) is big-endian, exactly as the real processors were.
//
// Snapshots of physical memory are the simulation's substitute for the
// paper's "reboot the target system" step: restoring a snapshot returns the
// machine to a known-good state in microseconds instead of minutes.
//
// Two hot-loop services live here because every store in the system —
// workload stores executed by the CPU models, injected bit flips, kernel
// glue writes, snapshot restores — funnels through this class:
//
//   * Per-page write versions.  Each write bumps a monotonic counter for
//     the page(s) it touches.  The CPUs' predecoded-instruction caches
//     validate entries against these counters, so a store into cached code
//     (self-modification, an injected flip, a reboot) invalidates exactly
//     the stale entries — a correctness requirement in a framework whose
//     whole point is corrupting code bytes.
//
//   * Dirty-page fast reboot.  A snapshot taken via snapshot_shared()
//     becomes the restore "baseline"; restore() then copies back only the
//     pages whose version moved since the baseline was last in sync,
//     turning the per-injection reboot from O(memory size) into
//     O(pages written by the run).  Snapshots are shared immutable
//     buffers, so holding one (e.g. the boot snapshot) costs one copy
//     total, not one per holder.
#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace kfi::mem {

enum class Endian { kLittle, kBig };

/// Page geometry shared by the MMU and the dirty/version tracking.
constexpr u32 kPageSize = 4096;
constexpr u32 kPageShift = 12;

class PhysicalMemory {
 public:
  /// Immutable shared snapshot buffer; one copy no matter how many holders.
  using Snapshot = std::vector<u8>;
  using SnapshotPtr = std::shared_ptr<const Snapshot>;

  explicit PhysicalMemory(u32 size_bytes);

  u32 size() const { return static_cast<u32>(bytes_.size()); }
  u32 num_pages() const { return static_cast<u32>(page_version_.size()); }

  /// Monotonic write counter of one page; bumped by every store into the
  /// page (including snapshot restores that rewrite it).  The decode
  /// caches use this to detect stale entries.
  u64 page_version(u32 page) const { return page_version_[page]; }

  u8 read8(u32 pa) const {
    check_range(pa, 1);
    return bytes_[pa];
  }
  void write8(u32 pa, u8 value) {
    check_range(pa, 1);
    mark_written(pa, 1);
    bytes_[pa] = value;
  }

  u16 read16(u32 pa, Endian endian) const {
    check_range(pa, 2);
    if (endian == Endian::kLittle) {
      return static_cast<u16>(bytes_[pa] | (bytes_[pa + 1] << 8));
    }
    return static_cast<u16>((bytes_[pa] << 8) | bytes_[pa + 1]);
  }
  void write16(u32 pa, u16 value, Endian endian) {
    check_range(pa, 2);
    mark_written(pa, 2);
    if (endian == Endian::kLittle) {
      bytes_[pa] = static_cast<u8>(value);
      bytes_[pa + 1] = static_cast<u8>(value >> 8);
    } else {
      bytes_[pa] = static_cast<u8>(value >> 8);
      bytes_[pa + 1] = static_cast<u8>(value);
    }
  }

  u32 read32(u32 pa, Endian endian) const {
    check_range(pa, 4);
    if (endian == Endian::kLittle) {
      return static_cast<u32>(bytes_[pa]) |
             (static_cast<u32>(bytes_[pa + 1]) << 8) |
             (static_cast<u32>(bytes_[pa + 2]) << 16) |
             (static_cast<u32>(bytes_[pa + 3]) << 24);
    }
    return (static_cast<u32>(bytes_[pa]) << 24) |
           (static_cast<u32>(bytes_[pa + 1]) << 16) |
           (static_cast<u32>(bytes_[pa + 2]) << 8) |
           static_cast<u32>(bytes_[pa + 3]);
  }
  void write32(u32 pa, u32 value, Endian endian) {
    check_range(pa, 4);
    mark_written(pa, 4);
    if (endian == Endian::kLittle) {
      bytes_[pa] = static_cast<u8>(value);
      bytes_[pa + 1] = static_cast<u8>(value >> 8);
      bytes_[pa + 2] = static_cast<u8>(value >> 16);
      bytes_[pa + 3] = static_cast<u8>(value >> 24);
    } else {
      bytes_[pa] = static_cast<u8>(value >> 24);
      bytes_[pa + 1] = static_cast<u8>(value >> 16);
      bytes_[pa + 2] = static_cast<u8>(value >> 8);
      bytes_[pa + 3] = static_cast<u8>(value);
    }
  }

  /// Bulk copy helpers for loading kernel images.
  void write_bytes(u32 pa, const u8* data, u32 len);
  void read_bytes(u32 pa, u8* out, u32 len) const {
    check_range(pa, len);
    std::memcpy(out, bytes_.data() + pa, len);
  }

  /// Flip a single bit of physical memory (the paper's error model).
  void flip_bit(u32 pa, u32 bit);

  /// Whole-memory snapshot into a shared immutable buffer.  The snapshot
  /// becomes the fast-restore baseline: restore() of this exact snapshot
  /// copies back only pages written since.
  SnapshotPtr snapshot_shared();

  /// Restore ("reboot").  Dirty-page fast path when `snap` is the current
  /// baseline; falls back to a full copy (re-establishing the baseline)
  /// for any other snapshot.  Either way the memory ends bit-identical to
  /// the snapshot.
  void restore(const SnapshotPtr& snap);

  /// Restore by unconditional full copy — the pre-optimization behavior,
  /// kept as a cross-check knob so campaigns can prove the fast path is
  /// invisible to results.
  void restore_full(const SnapshotPtr& snap);

  /// Legacy by-value snapshot / restore (tests and one-off tools).
  std::vector<u8> snapshot() const { return bytes_; }
  void restore(const std::vector<u8>& snap);

  // --- restore observability (for the reboot benches) ---
  u64 restores() const { return restores_; }
  u64 restore_pages_copied() const { return restore_pages_copied_; }
  u32 last_restore_pages() const { return last_restore_pages_; }

 private:
  void check_range(u32 pa, u32 len) const {
    KFI_CHECK(pa + len >= pa && pa + len <= bytes_.size(),
              "physical access out of range");
  }

  /// Bump the write version of every page [pa, pa+len) touches.  len is
  /// at most a few bytes on the hot paths, so first/last covers it.
  void mark_written(u32 pa, u32 len) {
    const u32 first = pa >> kPageShift;
    const u32 last = (pa + len - 1) >> kPageShift;
    ++page_version_[first];
    if (last != first) ++page_version_[last];
  }

  u32 page_bytes(u32 page) const {
    const u32 off = page << kPageShift;
    const u32 remain = size() - off;
    return remain < kPageSize ? remain : kPageSize;
  }

  /// Copy every page from `snap` and re-sync the baseline to it.
  void full_copy(const SnapshotPtr& snap);

  std::vector<u8> bytes_;
  std::vector<u64> page_version_;

  /// Baseline for the dirty-page fast path: the last snapshot this memory
  /// was known bit-identical to, and the page versions at that moment.
  SnapshotPtr baseline_;
  std::vector<u64> baseline_version_;

  u64 restores_ = 0;
  u64 restore_pages_copied_ = 0;
  u32 last_restore_pages_ = 0;
};

}  // namespace kfi::mem
